// Command bcnreport regenerates every figure and result of the paper's
// evaluation into an output directory: SVG charts, CSV series and textual
// summaries, one set per experiment in DESIGN.md's index.
//
// Example:
//
//	bcnreport -out out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bcnphase/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcnreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcnreport", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		out  = fs.String("out", "out", "output directory")
		only = fs.String("only", "", "run a single experiment by ID (e.g. fig6)")
		list = fs.Bool("list", false, "list experiment IDs and exit")
		md   = fs.Bool("md", false, "also write RESULTS.md (markdown) into the output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.What)
		}
		return nil
	}
	if *only != "" {
		for _, e := range experiments.Registry() {
			if e.ID != *only {
				continue
			}
			rep, err := experiments.SafeRun(e)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			if err := rep.WriteFiles(*out); err != nil {
				return err
			}
			if *md {
				path := filepath.Join(*out, "RESULTS.md")
				if err := os.WriteFile(path, []byte(rep.Markdown()), 0o644); err != nil {
					return err
				}
			}
			fmt.Print(rep.Text())
			return nil
		}
		return fmt.Errorf("unknown experiment %q (use -list)", *only)
	}
	// Completed experiments keep their artifacts and summary even when
	// some fail; the failures surface in the exit status afterwards.
	summary, runErr := experiments.RunAll(*out)
	if *md {
		var b strings.Builder
		b.WriteString("# Regenerated results\n\n")
		for _, e := range experiments.Registry() {
			rep, err := experiments.SafeRun(e)
			if err != nil {
				fmt.Fprintf(&b, "## %s\n\nFAILED: %v\n\n", e.ID, err)
				continue
			}
			b.WriteString(rep.Markdown())
		}
		path := filepath.Join(*out, "RESULTS.md")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Print(summary)
	fmt.Printf("artifacts written to %s\n", *out)
	if runErr != nil {
		return fmt.Errorf("completed with failures: %w", runErr)
	}
	return nil
}
