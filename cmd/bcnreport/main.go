// Command bcnreport regenerates every figure and result of the paper's
// evaluation into an output directory: SVG charts, CSV series and textual
// summaries, one set per experiment in DESIGN.md's index. Artifacts are
// published atomically; SIGINT/SIGTERM or an expired -timeout stop the
// batch at the next experiment boundary with the completed artifacts
// intact and exit with the resumable status 130.
//
// Example:
//
//	bcnreport -out out/ -timeout 10m
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bcnphase/internal/experiments"
	"bcnphase/internal/invariant"
	"bcnphase/internal/runstate"
)

func main() {
	ctx, stop, fired := runstate.TrapSignals(context.Background())
	err := run(ctx, os.Args[1:])
	stop()
	if err != nil {
		if fired() || runstate.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "bcnreport:", err)
			os.Exit(runstate.ExitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "bcnreport:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bcnreport", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		out     = fs.String("out", "out", "output directory")
		only    = fs.String("only", "", "run a single experiment by ID (e.g. fig6)")
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		md      = fs.Bool("md", false, "also write RESULTS.md (markdown) into the output directory")
		invPol  = fs.String("invariants", "off", "runtime invariant checking for every solved trajectory: off, record, strict or clamp")
		timeout = fs.Duration("timeout", 0, "wall-clock budget for the whole batch; on expiry completed artifacts are kept and the exit status is the resumable 130 (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	policy, err := invariant.ParsePolicy(*invPol)
	if err != nil {
		return err
	}
	experiments.InvariantPolicy = policy
	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.What)
		}
		return nil
	}
	// Preflight: prove the output directory is usable before burning
	// minutes of computation on experiments whose artifacts can't land.
	if err := runstate.EnsureWritableDir(*out); err != nil {
		return fmt.Errorf("preflight: %w", err)
	}
	if *only != "" {
		for _, e := range experiments.Registry() {
			if e.ID != *only {
				continue
			}
			// The single-experiment path honors the same deadline as the
			// batch: an expired budget is an interruption, not a failure.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w: stopped before experiment %s: %v", runstate.ErrInterrupted, e.ID, err)
			}
			rep, err := experiments.SafeRun(e)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			if err := rep.WriteFiles(*out); err != nil {
				return err
			}
			if *md {
				path := filepath.Join(*out, "RESULTS.md")
				if err := runstate.WriteFileAtomic(path, []byte(rep.Markdown()), 0o644); err != nil {
					return err
				}
			}
			fmt.Print(rep.Text())
			return nil
		}
		return fmt.Errorf("unknown experiment %q (use -list)", *only)
	}
	// Completed experiments keep their artifacts and summary even when
	// some fail or the run is interrupted; failures surface in the exit
	// status afterwards.
	summary, reports, runErr := experiments.RunAllContext(ctx, *out)
	if *md {
		var b strings.Builder
		b.WriteString("# Regenerated results\n\n")
		for _, rep := range reports {
			b.WriteString(rep.Markdown())
		}
		path := filepath.Join(*out, "RESULTS.md")
		if err := runstate.WriteFileAtomic(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Print(summary)
	fmt.Printf("artifacts written to %s\n", *out)
	if runErr != nil {
		if runstate.Interrupted(runErr) {
			return runErr
		}
		return fmt.Errorf("completed with failures: %w", runErr)
	}
	return nil
}
