package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"bcnphase/internal/runstate"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-only", "fig4", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4_portrait.svg")); err != nil {
		t.Errorf("fig4 artifact missing: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-only", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-zzz"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMarkdownSingle(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-only", "fig4", "-out", dir, "-md"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "RESULTS.md"))
	if err != nil {
		t.Fatalf("RESULTS.md missing: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty markdown")
	}
}

// Preflight: a missing or unusable output directory fails fast with a
// clear error instead of a late partial failure mid-batch.
func TestRunPreflightRejectsUnwritableOut(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not_a_dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-only", "fig4", "-out", file})
	if err == nil {
		t.Fatal("plain file accepted as output directory")
	}
	if runstate.Interrupted(err) {
		t.Errorf("preflight failure misclassified as interruption: %v", err)
	}
}

func TestRunPreflightCreatesMissingOut(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := run(context.Background(), []string{"-only", "fig4", "-out", dir}); err != nil {
		t.Fatalf("run with missing out dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4_portrait.svg")); err != nil {
		t.Errorf("artifact missing: %v", err)
	}
}

// A pre-cancelled context is reported as "interrupted, resumable", not a
// generic failure, and leaves no artifacts behind.
func TestRunInterruptedStatus(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-out", dir})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !runstate.Interrupted(err) {
		t.Errorf("cancelled run not classified as interrupted: %v", err)
	}
}

// An expired -timeout behaves exactly like a signal: completed
// artifacts are kept, the rest of the batch is skipped, and the error
// classifies as "interrupted, resumable" so main exits 130.
func TestRunTimeoutExpiresAsInterruption(t *testing.T) {
	dir := t.TempDir()
	err := run(context.Background(), []string{"-out", dir, "-timeout", "1ns"})
	if err == nil {
		t.Fatal("expired timeout reported success")
	}
	if !runstate.Interrupted(err) {
		t.Errorf("expired timeout not classified as interrupted: %v", err)
	}
	// The single-experiment path honors the same budget.
	err = run(context.Background(), []string{"-only", "fig4", "-out", dir, "-timeout", "1ns"})
	if err == nil || !runstate.Interrupted(err) {
		t.Errorf("-only with expired timeout: %v", err)
	}
	// A generous budget changes nothing.
	if err := run(context.Background(), []string{"-only", "fig4", "-out", dir, "-timeout", "5m"}); err != nil {
		t.Fatalf("run with ample timeout: %v", err)
	}
}

func TestRunXCheckExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-only", "xcheck", "-out", dir, "-invariants", "strict"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "xcheck_drift.svg")); err != nil {
		t.Errorf("xcheck artifact missing: %v", err)
	}
	if err := run(context.Background(), []string{"-invariants", "bogus", "-out", dir}); err == nil {
		t.Error("bogus -invariants value accepted")
	}
}
