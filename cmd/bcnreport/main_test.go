package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-only", "fig4", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4_portrait.svg")); err != nil {
		t.Errorf("fig4 artifact missing: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunMarkdownSingle(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-only", "fig4", "-out", dir, "-md"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "RESULTS.md"))
	if err != nil {
		t.Fatalf("RESULTS.md missing: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty markdown")
	}
}
