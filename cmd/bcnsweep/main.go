// Command bcnsweep sweeps the gain plane (Gi, Gd) and prints a CSV of the
// three stability verdicts per grid point: the linear criterion of [4],
// the Theorem 1 sufficient condition, and the stitched-trajectory ground
// truth.
//
// Example:
//
//	bcnsweep -b-over-q0 5 -gi-lo 0.05 -gi-hi 12.8 -steps 12 > map.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"bcnphase/internal/core"
	"bcnphase/internal/linear"
	"bcnphase/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcnsweep:", err)
		os.Exit(1)
	}
}

// gainPoint is one (Gi, Gd) grid point.
type gainPoint struct {
	Gi, Gd float64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bcnsweep", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		bOverQ0 = fs.Float64("b-over-q0", 5, "buffer size as a multiple of q0")
		giLo    = fs.Float64("gi-lo", 0.05, "Gi sweep lower bound")
		giHi    = fs.Float64("gi-hi", 12.8, "Gi sweep upper bound")
		gdLo    = fs.Float64("gd-lo", 1.0/1024, "Gd sweep lower bound")
		gdHi    = fs.Float64("gd-hi", 0.5, "Gd sweep upper bound")
		steps   = fs.Int("steps", 10, "grid points per axis")
		workers = fs.Int("workers", 0, "parallel evaluations (0 = GOMAXPROCS)")
		timeout = fs.Duration("point-timeout", time.Minute, "hard deadline per grid point (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *steps < 2 {
		return fmt.Errorf("steps must be >= 2, got %d", *steps)
	}
	base := core.FigureExample()
	base.B = *bOverQ0 * base.Q0
	if base.B <= base.Q0 {
		return fmt.Errorf("buffer multiple %v leaves B <= q0", *bOverQ0)
	}

	var points []gainPoint
	for i := 0; i < *steps; i++ {
		gi := geom(*giLo, *giHi, i, *steps)
		for j := 0; j < *steps; j++ {
			points = append(points, gainPoint{Gi: gi, Gd: geom(*gdLo, *gdHi, j, *steps)})
		}
	}
	eval := func(_ context.Context, pt gainPoint) (string, error) {
		p := base
		p.Gi = pt.Gi
		p.Gd = pt.Gd
		v, err := linear.Compare(p)
		if err != nil {
			return "", err
		}
		tr, err := core.Solve(p, core.SolveOptions{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%g,%g,%d,%v,%v,%g,%s,%v,%g,%g",
			pt.Gi, pt.Gd, int(p.Case()), v.LinearStable, v.Theorem1OK,
			core.Theorem1Bound(p), tr.Outcome, tr.Outcome.StronglyStable(),
			tr.MaxQueue(), tr.Rho), nil
	}

	// Continue past bad points: every healthy row is still emitted in
	// grid order, failures are summarized, and the exit status reflects
	// the degradation.
	results, _ := sweep.Run(context.Background(), points, eval, sweep.Options{
		Workers:         *workers,
		PointTimeout:    *timeout,
		ContinueOnError: true,
	})

	fmt.Fprintln(out, "gi,gd,case,linear_stable,theorem1_ok,theorem1_bound_bits,outcome,strongly_stable,max_q_bits,rho")
	var failed []string
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, fmt.Sprintf("Gi=%g Gd=%g: %v", r.Point.Gi, r.Point.Gd, r.Err))
			continue
		}
		fmt.Fprintln(out, r.Value)
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, "bcnsweep: point failed:", f)
		}
		return fmt.Errorf("%d of %d grid points failed (first: %s)", len(failed), len(points), failed[0])
	}
	return nil
}

func geom(lo, hi float64, i, n int) float64 {
	f := float64(i) / float64(n-1)
	return lo * math.Pow(hi/lo, f)
}
