// Command bcnsweep sweeps the gain plane (Gi, Gd) and prints a CSV of the
// three stability verdicts per grid point: the linear criterion of [4],
// the Theorem 1 sufficient condition, and the stitched-trajectory ground
// truth.
//
// With -resume <dir> the run is crash-safe: every completed grid point is
// journaled (append-only JSONL WAL keyed by a content hash of the sweep
// config and point params) before the sweep moves on, SIGINT/SIGTERM
// drain in-flight points and exit with the distinct "interrupted,
// resumable" status 130, and re-running with the same -resume dir skips
// journaled points and replays their cached rows — an interrupted run
// resumed to completion produces byte-identical output (stdout and
// <dir>/map.csv) to a never-interrupted one.
//
// With -cluster <coordinator-url> the grid is not evaluated locally at
// all: it is submitted to a bcnd coordinator (see internal/cluster),
// which shards it across its worker fleet and streams back the merged
// map.csv — byte-identical to what the same flags would produce
// locally, because both sides share one canonical row evaluator.
//
// Examples:
//
//	bcnsweep -b-over-q0 5 -gi-lo 0.05 -gi-hi 12.8 -steps 12 -resume out/run1 > map.csv
//	bcnsweep -steps 23 -cluster http://127.0.0.1:8070 > map.csv
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bcnphase/internal/analytic"
	"bcnphase/internal/cluster"
	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/qos"
	"bcnphase/internal/runstate"
	"bcnphase/internal/sweep"
	"bcnphase/internal/telemetry"
)

func main() {
	ctx, stop, fired := runstate.TrapSignals(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		if fired() || runstate.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "bcnsweep:", err)
			os.Exit(runstate.ExitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "bcnsweep:", err)
		os.Exit(1)
	}
}

// The grid canon (point enumeration, identity fingerprint, journal
// keys, row evaluation, CSV layout) lives in internal/cluster so this
// command, the bcnd shard executor and the cluster coordinator cannot
// drift apart; these aliases keep bcnsweep's vocabulary.
type (
	gainPoint = cluster.GainPoint
	row       = cluster.Row
)

const csvHeader = cluster.CSVHeader

// localBatchSize is the span length the journal-free local sweep hands
// one worker slot at a time (see cluster.GainGrid.EvalBatch).
const localBatchSize = 64

// evalHook, when non-nil, observes every fresh (non-replayed) point
// evaluation; tests use it to count executions and to interrupt the
// sweep cooperatively partway through.
var evalHook func(gainPoint)

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bcnsweep", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		bOverQ0  = fs.Float64("b-over-q0", 5, "buffer size as a multiple of q0")
		giLo     = fs.Float64("gi-lo", 0.05, "Gi sweep lower bound")
		giHi     = fs.Float64("gi-hi", 12.8, "Gi sweep upper bound")
		gdLo     = fs.Float64("gd-lo", 1.0/1024, "Gd sweep lower bound")
		gdHi     = fs.Float64("gd-hi", 0.5, "Gd sweep upper bound")
		steps    = fs.Int("steps", 10, "grid points per axis")
		workers  = fs.Int("workers", 0, "parallel evaluations (0 = GOMAXPROCS)")
		timeout  = fs.Duration("point-timeout", time.Minute, "hard deadline per grid point (0 = none)")
		resume   = fs.String("resume", "", "run directory holding the journal; completed points are skipped on restart and map.csv is written here")
		invPol   = fs.String("invariants", "off", "runtime invariant checking per point: off, record, strict or clamp")
		engine   = fs.String("analytic", "on", "row engine: on or auto (sampling-free closed-form solver; exact extrema), off (classic sampled solver). Non-off -invariants forces the classic path")
		telem    = fs.String("telemetry", "", "directory to write telemetry.json (metrics summary) and trace.jsonl")
		clusterC = fs.String("cluster", "", "submit the grid to a bcnd coordinator instead of evaluating locally; comma-separated URLs name an HA replica group and the client fails over between them")
		tenant   = fs.String("tenant", "", "cluster mode: tenant key sent as Bcn-Tenant (empty = anonymous)")
		deadline = fs.Duration("deadline", 0, "cluster mode: end-to-end deadline budget sent as Bcn-Deadline-Ms (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *steps < 2 {
		return fmt.Errorf("steps must be >= 2, got %d", *steps)
	}
	// The registry always exists: the engine summary line reads the
	// analytic arc counters even without -telemetry. With -telemetry the
	// same registry is additionally dumped as a JSON metrics summary plus
	// a span trace on every exit path, including an interrupted
	// (resumable) one.
	var (
		reg    = telemetry.NewRegistry()
		tracer *telemetry.Tracer
		began  = time.Now()
		done   int
	)
	pps := reg.Gauge("bcnsweep_points_per_second", "fresh grid points evaluated per wall-clock second")
	if *telem != "" {
		if err := runstate.EnsureWritableDir(*telem); err != nil {
			return fmt.Errorf("telemetry preflight: %w", err)
		}
		tracer = telemetry.NewTracer(0, nil)
		span := tracer.Start("bcnsweep/run")
		defer func() {
			span.SetAttr("points_done", fmt.Sprint(done))
			span.End()
			if err := telemetry.DumpDir(*telem, "bcnsweep", time.Since(began).Seconds(), reg, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "bcnsweep: telemetry:", err)
			}
		}()
	}
	defer func() {
		if wall := time.Since(began).Seconds(); wall > 0 {
			pps.Set(float64(done) / wall)
		}
	}()
	solveMetrics := core.NewSolveMetrics(reg)
	analyticMetrics := analytic.NewMetrics(reg)
	policy, err := invariant.ParsePolicy(*invPol)
	if err != nil {
		return err
	}
	mode, err := analytic.ParseMode(*engine)
	if err != nil {
		return err
	}
	grid := cluster.GainGrid{
		BOverQ0: *bOverQ0,
		GiLo:    *giLo, GiHi: *giHi,
		GdLo: *gdLo, GdHi: *gdHi,
		Steps:      *steps,
		Invariants: policy.String(),
		Analytic:   mode.String(),
	}
	if base := grid.Base(); base.B <= base.Q0 {
		return fmt.Errorf("buffer multiple %v leaves B <= q0", *bOverQ0)
	}
	if err := grid.Validate(); err != nil {
		return err
	}
	if *clusterC != "" {
		var bases []string
		for _, u := range strings.Split(*clusterC, ",") {
			if u = strings.TrimSpace(u); u != "" {
				bases = append(bases, strings.TrimRight(u, "/"))
			}
		}
		if len(bases) == 0 {
			return fmt.Errorf("-cluster lists no coordinator URLs")
		}
		done, err = runCluster(ctx, bases, grid, *resume, *tenant, *deadline, out)
		return err
	}

	points := grid.Points()
	em := cluster.EvalMetrics{Solve: solveMetrics, Analytic: analyticMetrics}
	eval := func(ctx context.Context, pt gainPoint) (row, error) {
		if evalHook != nil {
			evalHook(pt)
		}
		return grid.Eval(ctx, pt, em)
	}

	// With -resume, completed points are journaled before the sweep moves
	// on and replayed (not re-executed) on restart.
	var (
		journal *runstate.Journal
		keyFn   func(gainPoint) string
	)
	if *resume != "" {
		if err := runstate.EnsureWritableDir(*resume); err != nil {
			return fmt.Errorf("preflight: %w", err)
		}
		fingerprint, err := grid.Fingerprint()
		if err != nil {
			return err
		}
		journal, err = runstate.OpenJournal(filepath.Join(*resume, runstate.JournalFileName))
		if err != nil {
			return err
		}
		defer journal.Close()
		keyFn = func(pt gainPoint) string { return cluster.PointKey(fingerprint, pt) }
	}

	// Continue past bad points: every healthy row is still emitted in
	// grid order, failures are summarized, and the exit status reflects
	// the degradation.
	opts := sweep.Options{
		Workers:         *workers,
		PointTimeout:    *timeout,
		ContinueOnError: true,
		Metrics:         sweep.NewMetrics(reg),
	}
	var results []sweep.Result[gainPoint, row]
	if journal != nil {
		// The checkpointed path stays per-point: each row must be
		// journaled before the sweep moves on, so span batching would
		// widen the crash window.
		results, _ = sweep.RunCheckpointed(ctx, points, eval, opts, journal, keyFn)
	} else {
		// Journal-free sweeps batch points per worker slot so one warm
		// analytic Solver (and one supervision round) serves a whole span.
		results, _ = sweep.RunBatched(ctx, points, localBatchSize,
			func(ctx context.Context, pts []gainPoint, rows []row) error {
				if evalHook != nil {
					for _, pt := range pts {
						evalHook(pt)
					}
				}
				return grid.EvalBatch(ctx, pts, rows, em)
			}, opts)
	}

	var csv strings.Builder
	fmt.Fprintln(&csv, csvHeader)
	var failed []string
	interrupted := 0
	for _, r := range results {
		switch {
		case r.Err == nil:
			fmt.Fprintln(&csv, r.Value.CSV)
			done++
		case ctx.Err() != nil && runstate.Interrupted(r.Err):
			// Drained by the run-level shutdown. A per-point deadline
			// (Options.PointTimeout) also surfaces as a context error but
			// with the parent context still live — that is a point
			// failure, not an interruption.
			interrupted++
		default:
			failed = append(failed, fmt.Sprintf("Gi=%g Gd=%g: %v", r.Point.Gi, r.Point.Gd, r.Err))
		}
	}
	fmt.Fprint(out, csv.String())
	for _, f := range failed {
		fmt.Fprintln(os.Stderr, "bcnsweep: point failed:", f)
	}
	if tally := sweep.TallyViolations(results); tally.Total > 0 {
		fmt.Fprintf(os.Stderr, "bcnsweep: invariants: %d of %d points dirty, %d violations total (by first predicate: %v)\n",
			tally.Dirty, tally.Points, tally.Total, tally.ByPredicate)
	}

	// Rate and engine summary: how fast the grid went and which engine
	// stitched its arcs (rk45 arcs come from ModeOff or the non-finite
	// fallback, so nonzero rk45 counts under -analytic on deserve a
	// look).
	if wall := time.Since(began).Seconds(); wall > 0 {
		fmt.Fprintf(os.Stderr, "bcnsweep: %d points in %.3gs (%.4g points/sec); arcs: analytic=%d rk45=%d (fallbacks=%d)\n",
			done, wall, float64(done)/wall,
			analyticMetrics.Arcs.With("analytic").Value(),
			analyticMetrics.Arcs.With("rk45").Value(),
			analyticMetrics.RK45Fallbacks.Value())
	}

	// An interrupted sweep exits resumable without publishing map.csv —
	// the journal already holds every completed point durably.
	if ctx.Err() != nil {
		hint := "re-run with -resume to continue"
		if *resume != "" {
			hint = fmt.Sprintf("re-run with -resume %s to continue", *resume)
		}
		err := fmt.Errorf("%w: %d of %d points done, %d pending (%s)",
			runstate.ErrInterrupted, done, len(points), interrupted, hint)
		if len(failed) > 0 {
			return errors.Join(err, fmt.Errorf("%d points failed (first: %s)", len(failed), failed[0]))
		}
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d grid points failed (first: %s)", len(failed), len(points), failed[0])
	}
	// Publish the completed map atomically into the run directory: the
	// whole sweep either has a complete map.csv or none.
	if *resume != "" {
		if err := runstate.WriteFileAtomic(filepath.Join(*resume, "map.csv"), []byte(csv.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// failoverRetryBase/Cap bound the backoff between full fruitless laps
// of the replica list. Deliberately much shorter than the shed pacer:
// a leaderless window is an election interval (sub-second), not an
// overload Retry-After. Vars so tests can tighten them.
var (
	failoverRetryBase = 250 * time.Millisecond
	failoverRetryCap  = 2 * time.Second
)

// runCluster submits the grid to a bcnd coordinator group and streams
// the merged map.csv to out. With several base URLs (an HA replica
// group) the client fails over: a transport error, a connection lost
// mid-stream, or a Bcn-Not-Leader redirect moves it to the next
// replica (or straight to the hinted leader), and the resubmission is
// idempotent by construction — the sweep fingerprint coalesces onto
// any run already in flight and journaled points replay instead of
// re-executing. Shed/drain answers are retried politely (Retry-After
// honored with jitter, capped backoff). The tenant key and deadline
// budget ride the QoS headers; the deadline is fixed at the first
// attempt so retries spend the original budget rather than minting a
// new one. Returns the number of freshly evaluated points the
// answering coordinator reported.
func runCluster(ctx context.Context, bases []string, grid cluster.GainGrid, resumeDir, tenant string, deadline time.Duration, out io.Writer) (int, error) {
	body, err := json.Marshal(grid)
	if err != nil {
		return 0, err
	}
	if resumeDir != "" {
		if err := runstate.EnsureWritableDir(resumeDir); err != nil {
			return 0, fmt.Errorf("preflight: %w", err)
		}
	}
	var deadlineAt time.Time
	if deadline > 0 {
		deadlineAt = time.Now().Add(deadline)
	}
	maxAttempts := 8 * len(bases)
	pacer := cluster.NewRetryPacer(500*time.Millisecond, 15*time.Second, 0)
	lapPacer := cluster.NewRetryPacer(failoverRetryBase, failoverRetryCap, 0)
	cur := 0
	override := ""    // one-shot target from a Bcn-Not-Leader hint
	unreachable := "" // last base that failed at the transport level
	// failover rotates to the next replica; after a full fruitless lap
	// it backs off so a briefly leaderless group (mid-election) is not
	// hammered.
	failover := func(attempt int, why string) error {
		cur = (cur + 1) % len(bases)
		fmt.Fprintf(os.Stderr, "bcnsweep: %s; failing over to %s (attempt %d/%d)\n",
			why, bases[cur], attempt, maxAttempts)
		if attempt%len(bases) != 0 {
			return nil
		}
		wait := lapPacer.Next(0)
		select {
		case <-time.After(wait):
			return nil
		case <-ctx.Done():
			return fmt.Errorf("%w: cluster submission cancelled", runstate.ErrInterrupted)
		}
	}
	for attempt := 1; ; attempt++ {
		target := bases[cur]
		if override != "" {
			target, override = override, ""
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/sweeps", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(qos.TenantHeader, tenant)
		}
		if !deadlineAt.IsZero() {
			rem := time.Until(deadlineAt)
			if rem <= 0 {
				return 0, fmt.Errorf("deadline budget spent before attempt %d", attempt)
			}
			req.Header.Set(qos.DeadlineHeader, qos.FormatDeadline(rem))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return 0, fmt.Errorf("%w: cluster submission cancelled", runstate.ErrInterrupted)
			}
			if attempt >= maxAttempts {
				return 0, fmt.Errorf("coordinator %s unreachable after %d attempts: %w", target, attempt, err)
			}
			unreachable = target
			if ferr := failover(attempt, fmt.Sprintf("coordinator %s unreachable (%v)", target, err)); ferr != nil {
				return 0, ferr
			}
			continue
		}
		if target == unreachable {
			unreachable = "" // it answered; stop distrusting it
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// Connection lost mid-stream — the classic leader-death-during-
			// response. The resubmission is idempotent, so fail over rather
			// than give up with a half map.
			if attempt >= maxAttempts {
				return 0, fmt.Errorf("response from %s cut short after %d attempts: %w", target, attempt, rerr)
			}
			unreachable = target
			if ferr := failover(attempt, fmt.Sprintf("response from %s cut short (%v)", target, rerr)); ferr != nil {
				return 0, ferr
			}
			continue
		}
		switch {
		case resp.StatusCode == http.StatusMisdirectedRequest && attempt < maxAttempts:
			// A standby answered. Follow its leader hint when it has one —
			// unless the hint names the base we just failed to reach (a
			// standby's view of the leader outlives the leader; chasing it
			// through connection-refused burns the whole attempt budget
			// during an election). Otherwise rotate until a leader emerges.
			hint := strings.TrimRight(resp.Header.Get(cluster.NotLeaderHeader), "/")
			if hint != "" && hint != target && hint != unreachable {
				override = hint
				fmt.Fprintf(os.Stderr, "bcnsweep: %s is not the leader; following its hint to %s\n", target, hint)
				continue
			}
			why := fmt.Sprintf("%s is not the leader and knows no better", target)
			if hint != "" && hint == unreachable {
				why = fmt.Sprintf("%s still hints at unreachable %s", target, hint)
			}
			if ferr := failover(attempt, why); ferr != nil {
				return 0, ferr
			}
		case resp.StatusCode == http.StatusOK:
			fresh, _ := strconv.Atoi(resp.Header.Get("Bcn-Fresh"))
			fmt.Fprintf(os.Stderr, "bcnsweep: cluster sweep %.12s done: points=%s fresh=%d replayed=%s orphan-shards=%s audited-shards=%s\n",
				resp.Header.Get("Bcn-Fingerprint"), resp.Header.Get("Bcn-Points"), fresh,
				resp.Header.Get("Bcn-Replayed"), resp.Header.Get("Bcn-Orphan-Shards"),
				resp.Header.Get("Bcn-Audited-Shards"))
			if _, err := out.Write(raw); err != nil {
				return fresh, err
			}
			if resumeDir != "" {
				if err := runstate.WriteFileAtomic(filepath.Join(resumeDir, "map.csv"), raw, 0o644); err != nil {
					return fresh, err
				}
			}
			return fresh, nil
		case cluster.RetryableStatus(resp.StatusCode) && attempt < maxAttempts:
			// The pacer jitters the coordinator's Retry-After hint so a herd
			// of shed submitters does not re-collide on the same instant.
			wait := pacer.Next(cluster.ParseRetryAfterHeader(resp.Header))
			fmt.Fprintf(os.Stderr, "bcnsweep: coordinator answered %d; retry %d/%d in %s\n",
				resp.StatusCode, attempt, maxAttempts-1, wait.Round(time.Millisecond))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return 0, fmt.Errorf("%w: cluster submission cancelled", runstate.ErrInterrupted)
			}
		case resp.StatusCode == http.StatusInternalServerError && len(bases) > 1 && attempt < maxAttempts:
			// A sweep that died with its leader (lease lost, workers
			// unreachable) answers 500; with an HA group another replica
			// can finish it, so fail over instead of giving up.
			if ferr := failover(attempt, fmt.Sprintf("sweep failed on %s: %s", target, strings.TrimSpace(string(raw)))); ferr != nil {
				return 0, ferr
			}
		default:
			return 0, fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		}
	}
}
