// Command bcnsweep sweeps the gain plane (Gi, Gd) and prints a CSV of the
// three stability verdicts per grid point: the linear criterion of [4],
// the Theorem 1 sufficient condition, and the stitched-trajectory ground
// truth.
//
// With -resume <dir> the run is crash-safe: every completed grid point is
// journaled (append-only JSONL WAL keyed by a content hash of the sweep
// config and point params) before the sweep moves on, SIGINT/SIGTERM
// drain in-flight points and exit with the distinct "interrupted,
// resumable" status 130, and re-running with the same -resume dir skips
// journaled points and replays their cached rows — an interrupted run
// resumed to completion produces byte-identical output (stdout and
// <dir>/map.csv) to a never-interrupted one.
//
// Example:
//
//	bcnsweep -b-over-q0 5 -gi-lo 0.05 -gi-hi 12.8 -steps 12 -resume out/run1 > map.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/linear"
	"bcnphase/internal/runstate"
	"bcnphase/internal/sweep"
	"bcnphase/internal/telemetry"
)

func main() {
	ctx, stop, fired := runstate.TrapSignals(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		if fired() || runstate.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "bcnsweep:", err)
			os.Exit(runstate.ExitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "bcnsweep:", err)
		os.Exit(1)
	}
}

// gainPoint is one (Gi, Gd) grid point.
type gainPoint struct {
	Gi, Gd float64
}

// sweepIdentity fingerprints everything that shapes a row's value, so a
// journal from a different sweep configuration can never poison a
// resumed run. Execution knobs (workers, timeout) are deliberately
// excluded — they do not affect results.
type sweepIdentity struct {
	Experiment string
	Format     int // bump when the CSV row layout changes
	BOverQ0    float64
	GiLo, GiHi float64
	GdLo, GdHi float64
	Steps      int
	// Invariants is the checking policy: Clamp changes trajectories and
	// every policy changes the violation columns, so rows journaled
	// under one policy must not replay under another.
	Invariants string
}

const csvHeader = "gi,gd,case,linear_stable,theorem1_ok,theorem1_bound_bits,outcome,strongly_stable,max_q_bits,rho,violations,first_violation"

// row is one evaluated grid point. Fields are exported so the -resume
// journal can round-trip it through JSON.
type row struct {
	// CSV is the rendered output line.
	CSV string
	// Violations and FirstPred summarize the point's runtime invariant
	// tallies for sweep-level aggregation.
	Violations uint64
	FirstPred  string
}

// InvariantViolations implements sweep.InvariantReporter.
func (r row) InvariantViolations() (uint64, string) { return r.Violations, r.FirstPred }

// evalHook, when non-nil, observes every fresh (non-replayed) point
// evaluation; tests use it to count executions and to interrupt the
// sweep cooperatively partway through.
var evalHook func(gainPoint)

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bcnsweep", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		bOverQ0 = fs.Float64("b-over-q0", 5, "buffer size as a multiple of q0")
		giLo    = fs.Float64("gi-lo", 0.05, "Gi sweep lower bound")
		giHi    = fs.Float64("gi-hi", 12.8, "Gi sweep upper bound")
		gdLo    = fs.Float64("gd-lo", 1.0/1024, "Gd sweep lower bound")
		gdHi    = fs.Float64("gd-hi", 0.5, "Gd sweep upper bound")
		steps   = fs.Int("steps", 10, "grid points per axis")
		workers = fs.Int("workers", 0, "parallel evaluations (0 = GOMAXPROCS)")
		timeout = fs.Duration("point-timeout", time.Minute, "hard deadline per grid point (0 = none)")
		resume  = fs.String("resume", "", "run directory holding the journal; completed points are skipped on restart and map.csv is written here")
		invPol  = fs.String("invariants", "off", "runtime invariant checking per point: off, record, strict or clamp")
		telem   = fs.String("telemetry", "", "directory to write telemetry.json (metrics summary) and trace.jsonl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *steps < 2 {
		return fmt.Errorf("steps must be >= 2, got %d", *steps)
	}
	// With -telemetry, the sweep runs fully instrumented and dumps a
	// JSON metrics summary plus a span trace on every exit path,
	// including an interrupted (resumable) one.
	var (
		reg    *telemetry.Registry
		tracer *telemetry.Tracer
		began  time.Time
		done   int
	)
	if *telem != "" {
		if err := runstate.EnsureWritableDir(*telem); err != nil {
			return fmt.Errorf("telemetry preflight: %w", err)
		}
		reg = telemetry.NewRegistry()
		tracer = telemetry.NewTracer(0, nil)
		began = time.Now()
		pps := reg.Gauge("bcnsweep_points_per_second", "fresh grid points evaluated per wall-clock second")
		span := tracer.Start("bcnsweep/run")
		defer func() {
			wall := time.Since(began).Seconds()
			if wall > 0 {
				pps.Set(float64(done) / wall)
			}
			span.SetAttr("points_done", fmt.Sprint(done))
			span.End()
			if err := telemetry.DumpDir(*telem, "bcnsweep", wall, reg, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "bcnsweep: telemetry:", err)
			}
		}()
	}
	solveMetrics := core.NewSolveMetrics(reg)
	policy, err := invariant.ParsePolicy(*invPol)
	if err != nil {
		return err
	}
	base := core.FigureExample()
	base.B = *bOverQ0 * base.Q0
	if base.B <= base.Q0 {
		return fmt.Errorf("buffer multiple %v leaves B <= q0", *bOverQ0)
	}

	var points []gainPoint
	for i := 0; i < *steps; i++ {
		gi := geom(*giLo, *giHi, i, *steps)
		for j := 0; j < *steps; j++ {
			points = append(points, gainPoint{Gi: gi, Gd: geom(*gdLo, *gdHi, j, *steps)})
		}
	}
	eval := func(ctx context.Context, pt gainPoint) (row, error) {
		if evalHook != nil {
			evalHook(pt)
		}
		// Cooperative cancellation point: a drained point fails with
		// ctx.Err (and is not journaled) instead of racing the shutdown.
		if err := ctx.Err(); err != nil {
			return row{}, err
		}
		p := base
		p.Gi = pt.Gi
		p.Gd = pt.Gd
		v, err := linear.Compare(p)
		if err != nil {
			return row{}, err
		}
		tr, err := core.Solve(p, core.SolveOptions{
			Invariants: invariant.NewPolicy(policy),
			Telemetry:  solveMetrics,
		})
		if err != nil {
			return row{}, err
		}
		return row{
			CSV: fmt.Sprintf("%g,%g,%d,%v,%v,%g,%s,%v,%g,%g,%d,%s",
				pt.Gi, pt.Gd, int(p.Case()), v.LinearStable, v.Theorem1OK,
				core.Theorem1Bound(p), tr.Outcome, tr.Outcome.StronglyStable(),
				tr.MaxQueue(), tr.Rho, tr.Violations.Total, tr.Violations.FirstPredicate()),
			Violations: tr.Violations.Total,
			FirstPred:  tr.Violations.FirstPredicate(),
		}, nil
	}

	// With -resume, completed points are journaled before the sweep moves
	// on and replayed (not re-executed) on restart.
	var (
		journal *runstate.Journal
		keyFn   func(gainPoint) string
	)
	if *resume != "" {
		if err := runstate.EnsureWritableDir(*resume); err != nil {
			return fmt.Errorf("preflight: %w", err)
		}
		identity := sweepIdentity{
			Experiment: "bcnsweep/gainmap",
			Format:     2,
			BOverQ0:    *bOverQ0,
			GiLo:       *giLo, GiHi: *giHi,
			GdLo: *gdLo, GdHi: *gdHi,
			Steps:      *steps,
			Invariants: policy.String(),
		}
		fingerprint, err := runstate.HashJSON(identity)
		if err != nil {
			return err
		}
		journal, err = runstate.OpenJournal(filepath.Join(*resume, runstate.JournalFileName))
		if err != nil {
			return err
		}
		defer journal.Close()
		keyFn = func(pt gainPoint) string {
			key, err := runstate.HashJSON(struct {
				FP     string
				Gi, Gd float64
			}{fingerprint, pt.Gi, pt.Gd})
			if err != nil { // unreachable for plain floats; fail closed as a cache miss
				return fmt.Sprintf("unhashable:%g,%g", pt.Gi, pt.Gd)
			}
			return key
		}
	}

	// Continue past bad points: every healthy row is still emitted in
	// grid order, failures are summarized, and the exit status reflects
	// the degradation.
	opts := sweep.Options{
		Workers:         *workers,
		PointTimeout:    *timeout,
		ContinueOnError: true,
		Metrics:         sweep.NewMetrics(reg),
	}
	var results []sweep.Result[gainPoint, row]
	if journal != nil {
		results, _ = sweep.RunCheckpointed(ctx, points, eval, opts, journal, keyFn)
	} else {
		results, _ = sweep.Run(ctx, points, eval, opts)
	}

	var csv strings.Builder
	fmt.Fprintln(&csv, csvHeader)
	var failed []string
	interrupted := 0
	for _, r := range results {
		switch {
		case r.Err == nil:
			fmt.Fprintln(&csv, r.Value.CSV)
			done++
		case ctx.Err() != nil && runstate.Interrupted(r.Err):
			// Drained by the run-level shutdown. A per-point deadline
			// (Options.PointTimeout) also surfaces as a context error but
			// with the parent context still live — that is a point
			// failure, not an interruption.
			interrupted++
		default:
			failed = append(failed, fmt.Sprintf("Gi=%g Gd=%g: %v", r.Point.Gi, r.Point.Gd, r.Err))
		}
	}
	fmt.Fprint(out, csv.String())
	for _, f := range failed {
		fmt.Fprintln(os.Stderr, "bcnsweep: point failed:", f)
	}
	if tally := sweep.TallyViolations(results); tally.Total > 0 {
		fmt.Fprintf(os.Stderr, "bcnsweep: invariants: %d of %d points dirty, %d violations total (by first predicate: %v)\n",
			tally.Dirty, tally.Points, tally.Total, tally.ByPredicate)
	}

	// An interrupted sweep exits resumable without publishing map.csv —
	// the journal already holds every completed point durably.
	if ctx.Err() != nil {
		hint := "re-run with -resume to continue"
		if *resume != "" {
			hint = fmt.Sprintf("re-run with -resume %s to continue", *resume)
		}
		err := fmt.Errorf("%w: %d of %d points done, %d pending (%s)",
			runstate.ErrInterrupted, done, len(points), interrupted, hint)
		if len(failed) > 0 {
			return errors.Join(err, fmt.Errorf("%d points failed (first: %s)", len(failed), failed[0]))
		}
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d grid points failed (first: %s)", len(failed), len(points), failed[0])
	}
	// Publish the completed map atomically into the run directory: the
	// whole sweep either has a complete map.csv or none.
	if *resume != "" {
		if err := runstate.WriteFileAtomic(filepath.Join(*resume, "map.csv"), []byte(csv.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func geom(lo, hi float64, i, n int) float64 {
	f := float64(i) / float64(n-1)
	return lo * math.Pow(hi/lo, f)
}
