package main

import (
	"strings"
	"testing"
)

func TestRunSweepCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-steps", "3"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "gi,gd,case,linear_stable,theorem1_ok,theorem1_bound_bits,outcome,strongly_stable,max_q_bits,rho" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+3*3 {
		t.Errorf("got %d data lines, want 9", len(lines)-1)
	}
	// Every row has the right number of fields and linear always true.
	for _, l := range lines[1:] {
		fields := strings.Split(l, ",")
		if len(fields) != 10 {
			t.Fatalf("row %q has %d fields", l, len(fields))
		}
		if fields[3] != "true" {
			t.Errorf("linear_stable = %q, want true (Proposition 1)", fields[3])
		}
	}
}

func TestRunSweepErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-steps", "1"}, &b); err == nil {
		t.Error("steps=1 accepted")
	}
	if err := run([]string{"-b-over-q0", "0.5"}, &b); err == nil {
		t.Error("B <= q0 accepted")
	}
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestGeom(t *testing.T) {
	if got := geom(1, 100, 0, 3); got != 1 {
		t.Errorf("geom start = %v", got)
	}
	if got := geom(1, 100, 2, 3); got != 100 {
		t.Errorf("geom end = %v", got)
	}
}

func TestRunSweepDegradesOnPointTimeout(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-steps", "2", "-point-timeout", "1ns"}, &b)
	if err == nil {
		t.Fatal("expired per-point deadline reported no error")
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "gi,gd,case,linear_stable,theorem1_ok,theorem1_bound_bits,outcome,strongly_stable,max_q_bits,rho" {
		t.Errorf("header lost on degraded sweep: %q", lines[0])
	}
}

func TestRunSweepParallelMatchesSerial(t *testing.T) {
	var serial, par strings.Builder
	if err := run([]string{"-steps", "3", "-workers", "1"}, &serial); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := run([]string{"-steps", "3", "-workers", "4"}, &par); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial.String() != par.String() {
		t.Error("parallel sweep output differs from serial (ordering lost?)")
	}
}
