package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bcnphase/internal/cluster"
	"bcnphase/internal/qos"
	"bcnphase/internal/runstate"
	"bcnphase/internal/telemetry"
)

func TestRunSweepCSV(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-steps", "3"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != csvHeader {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+3*3 {
		t.Errorf("got %d data lines, want 9", len(lines)-1)
	}
	// Every row has the right number of fields and linear always true.
	for _, l := range lines[1:] {
		fields := strings.Split(l, ",")
		if len(fields) != 12 {
			t.Fatalf("row %q has %d fields", l, len(fields))
		}
		if fields[3] != "true" {
			t.Errorf("linear_stable = %q, want true (Proposition 1)", fields[3])
		}
		// Without -invariants the violation columns are zero/empty.
		if fields[10] != "0" || fields[11] != "" {
			t.Errorf("row %q has nonzero violation columns with checking off", l)
		}
	}
}

// TestRunSweepInvariantsRecord runs grids under the Record policy. A
// moderate-gain grid must be clean; the default grid's extreme corner
// (Gi=12.8, Gd=0.5) legitimately drives the linearized trajectory below
// y = −C (a linearization artifact the guard exists to surface), so
// there the test asserts tally consistency, not cleanliness. The flag
// must be rejected when misspelled.
func TestRunSweepInvariantsRecord(t *testing.T) {
	var clean strings.Builder
	err := run(context.Background(), []string{
		"-steps", "2", "-invariants", "record",
		"-gi-lo", "0.4", "-gi-hi", "0.6", "-gd-lo", "0.0078125", "-gd-hi", "0.01",
	}, &clean)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, l := range strings.Split(strings.TrimSpace(clean.String()), "\n")[1:] {
		fields := strings.Split(l, ",")
		if fields[10] != "0" || fields[11] != "" {
			t.Errorf("moderate-gain point reported violations: %q", l)
		}
	}

	var wide strings.Builder
	if err := run(context.Background(), []string{"-steps", "2", "-invariants", "record"}, &wide); err != nil {
		t.Fatalf("wide run: %v", err)
	}
	dirty := 0
	for _, l := range strings.Split(strings.TrimSpace(wide.String()), "\n")[1:] {
		fields := strings.Split(l, ",")
		zero := fields[10] == "0"
		if zero != (fields[11] == "") {
			t.Errorf("violation count and first predicate disagree: %q", l)
		}
		if !zero {
			dirty++
		}
	}
	if dirty == 0 {
		t.Error("extreme-gain grid reported no violations (expected the y < -C linearization artifact)")
	}

	if err := run(context.Background(), []string{"-steps", "2", "-invariants", "bogus"}, &wide); err == nil {
		t.Error("bogus -invariants value accepted")
	}
}

// TestRunSweepResumeSeparatesPolicies ensures rows journaled under one
// invariant policy are not replayed under another (the policy is part of
// the sweep identity).
func TestRunSweepResumeSeparatesPolicies(t *testing.T) {
	dir := t.TempDir()
	var first strings.Builder
	if err := run(context.Background(), []string{"-steps", "2", "-resume", dir}, &first); err != nil {
		t.Fatalf("first: %v", err)
	}
	var evals atomic.Int64
	evalHook = func(gainPoint) { evals.Add(1) }
	var second strings.Builder
	err := run(context.Background(), []string{"-steps", "2", "-invariants", "record", "-resume", dir}, &second)
	evalHook = nil
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if evals.Load() != 4 {
		t.Errorf("changed policy executed %d points, want all 4 (no cross-policy cache hits)", evals.Load())
	}
}

func TestRunSweepErrors(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-steps", "1"}, &b); err == nil {
		t.Error("steps=1 accepted")
	}
	if err := run(context.Background(), []string{"-b-over-q0", "0.5"}, &b); err == nil {
		t.Error("B <= q0 accepted")
	}
	if err := run(context.Background(), []string{"-nope"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestGridEndpoints(t *testing.T) {
	g := cluster.GainGrid{BOverQ0: 5, GiLo: 1, GiHi: 100, GdLo: 1, GdHi: 100, Steps: 3}
	pts := g.Points()
	if len(pts) != 9 {
		t.Fatalf("len(Points) = %d, want 9", len(pts))
	}
	if pts[0].Gi != 1 || pts[0].Gd != 1 {
		t.Errorf("grid start = %+v, want (1, 1)", pts[0])
	}
	if last := pts[len(pts)-1]; last.Gi != 100 || last.Gd != 100 {
		t.Errorf("grid end = %+v, want (100, 100)", last)
	}
}

func TestRunSweepDegradesOnPointTimeout(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), []string{"-steps", "2", "-point-timeout", "1ns"}, &b)
	if err == nil {
		t.Fatal("expired per-point deadline reported no error")
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != csvHeader {
		t.Errorf("header lost on degraded sweep: %q", lines[0])
	}
}

func TestRunSweepParallelMatchesSerial(t *testing.T) {
	var serial, par strings.Builder
	if err := run(context.Background(), []string{"-steps", "3", "-workers", "1"}, &serial); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := run(context.Background(), []string{"-steps", "3", "-workers", "4"}, &par); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if serial.String() != par.String() {
		t.Error("parallel sweep output differs from serial (ordering lost?)")
	}
}

// End-to-end crash-resume: a sweep interrupted partway (cooperative
// context cancellation standing in for SIGINT — TrapSignals feeds the
// same context in main) and resumed with the same -resume dir must (a)
// never re-execute a journaled point, and (b) produce byte-identical
// stdout and map.csv to a never-interrupted run.
func TestRunSweepCrashResumeByteIdentical(t *testing.T) {
	args := func(dir string) []string {
		return []string{"-steps", "3", "-workers", "1", "-resume", dir}
	}

	// Baseline: uninterrupted run.
	baseDir := t.TempDir()
	var baseline strings.Builder
	if err := run(context.Background(), args(baseDir), &baseline); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	baseCSV, err := os.ReadFile(filepath.Join(baseDir, "map.csv"))
	if err != nil {
		t.Fatalf("baseline map.csv: %v", err)
	}

	// Interrupted run: cancel cooperatively after the 4th point starts.
	// Workers=1 keeps the cut deterministic enough: at least 3 points
	// journaled, at least one pending.
	runDir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var firstEvals atomic.Int64
	evalHook = func(gainPoint) {
		if firstEvals.Add(1) == 4 {
			cancel()
		}
	}
	var interrupted strings.Builder
	err = run(ctx, args(runDir), &interrupted)
	evalHook = nil
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !runstate.Interrupted(err) {
		t.Fatalf("interrupted run not classified resumable: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(runDir, "map.csv")); !os.IsNotExist(statErr) {
		t.Error("interrupted run published map.csv")
	}
	if _, statErr := os.Stat(filepath.Join(runDir, runstate.JournalFileName)); statErr != nil {
		t.Fatalf("interrupted run left no journal: %v", statErr)
	}

	// Resume: journaled points must not be re-executed (execution
	// counter), and the completed outputs must match the baseline byte
	// for byte.
	var resumeEvals atomic.Int64
	evalHook = func(gainPoint) { resumeEvals.Add(1) }
	var resumed strings.Builder
	err = run(context.Background(), args(runDir), &resumed)
	evalHook = nil
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	total := int64(3 * 3)
	if firstEvals.Load()+resumeEvals.Load() < total {
		t.Errorf("evals %d + %d < %d points: some points never ran", firstEvals.Load(), resumeEvals.Load(), total)
	}
	if resumeEvals.Load() >= total {
		t.Errorf("resume re-executed all %d points (journal ignored)", resumeEvals.Load())
	}
	if resumeEvals.Load() > total-3 {
		t.Errorf("resume executed %d points; at least 3 were journaled before the cut", resumeEvals.Load())
	}
	if resumed.String() != baseline.String() {
		t.Errorf("resumed stdout differs from uninterrupted baseline:\n--- baseline ---\n%s--- resumed ---\n%s",
			baseline.String(), resumed.String())
	}
	runCSV, err := os.ReadFile(filepath.Join(runDir, "map.csv"))
	if err != nil {
		t.Fatalf("resumed map.csv: %v", err)
	}
	if string(runCSV) != string(baseCSV) {
		t.Error("resumed map.csv differs from uninterrupted baseline")
	}

	// A third run replays everything from the journal: zero executions.
	var thirdEvals atomic.Int64
	evalHook = func(gainPoint) { thirdEvals.Add(1) }
	var third strings.Builder
	err = run(context.Background(), args(runDir), &third)
	evalHook = nil
	if err != nil {
		t.Fatalf("third run: %v", err)
	}
	if thirdEvals.Load() != 0 {
		t.Errorf("fully-journaled run re-executed %d points", thirdEvals.Load())
	}
	if third.String() != baseline.String() {
		t.Error("fully-replayed stdout differs from baseline")
	}
}

// A journal written under different sweep parameters must not leak rows
// into a resumed run with a different grid.
func TestRunSweepResumeIgnoresForeignJournal(t *testing.T) {
	dir := t.TempDir()
	var first strings.Builder
	if err := run(context.Background(), []string{"-steps", "2", "-resume", dir}, &first); err != nil {
		t.Fatalf("first: %v", err)
	}
	var evals atomic.Int64
	evalHook = func(gainPoint) { evals.Add(1) }
	var second strings.Builder
	err := run(context.Background(), []string{"-steps", "2", "-b-over-q0", "8", "-resume", dir}, &second)
	evalHook = nil
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if evals.Load() != 4 {
		t.Errorf("changed config executed %d points, want all 4 (no cross-config cache hits)", evals.Load())
	}
}

func TestRunSweepResumePreflight(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(context.Background(), []string{"-steps", "2", "-resume", file}, &b); err == nil {
		t.Error("plain file accepted as resume dir")
	}
}

// TestRunSweepTelemetry asserts the -telemetry contract: the run writes
// telemetry.json holding a metrics snapshot with a points/sec gauge and
// nonzero sweep/core counters, plus a span trace, and the instrumented
// run's CSV is byte-identical to an uninstrumented one.
func TestRunSweepTelemetry(t *testing.T) {
	dir := t.TempDir()
	var plain, instrumented strings.Builder
	if err := run(context.Background(), []string{"-steps", "3"}, &plain); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := run(context.Background(), []string{"-steps", "3", "-telemetry", dir}, &instrumented); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if plain.String() != instrumented.String() {
		t.Error("telemetry changed the CSV output")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
	if err != nil {
		t.Fatalf("telemetry.json: %v", err)
	}
	var sum telemetry.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("decode telemetry.json: %v", err)
	}
	if sum.Tool != "bcnsweep" || sum.WallSeconds <= 0 {
		t.Errorf("summary header: tool=%q wall=%v", sum.Tool, sum.WallSeconds)
	}
	if v := sum.Metrics.Value("sweep_points_total"); v != 9 {
		t.Errorf("sweep_points_total = %v, want 9", v)
	}
	if v := sum.Metrics.Value("bcnsweep_points_per_second"); v <= 0 {
		t.Errorf("bcnsweep_points_per_second = %v, want > 0", v)
	}
	// Default engine is analytic: the closed-form counters light up and
	// the classic solver stays untouched.
	if v := sum.Metrics.Value("analytic_solves_total"); v != 9 {
		t.Errorf("analytic_solves_total = %v, want 9", v)
	}
	if v := sum.Metrics.Value("core_solves_total"); v != 0 {
		t.Errorf("core_solves_total = %v, want 0 (analytic engine default-on)", v)
	}
	trace, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatalf("trace.jsonl: %v", err)
	}
	if !strings.Contains(string(trace), `"bcnsweep/run"`) {
		t.Errorf("trace missing run span: %s", trace)
	}
}

// TestRunSweepTelemetryPreflight rejects an unwritable telemetry target
// before doing any work.
func TestRunSweepTelemetryPreflight(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(context.Background(), []string{"-steps", "2", "-telemetry", file}, &b); err == nil {
		t.Error("plain file accepted as telemetry dir")
	}
}

// TestClusterModeStampsQoSHeadersAndRetries drives -cluster against a
// stub coordinator that sheds the first submission: the client must
// stamp the tenant and a positive decreasing deadline budget on every
// attempt, honor the Retry-After hint, and come back for the CSV.
func TestClusterModeStampsQoSHeadersAndRetries(t *testing.T) {
	type attempt struct {
		tenant string
		ms     int64
	}
	var mu sync.Mutex
	var attempts []attempt
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ms, _ := strconv.ParseInt(r.Header.Get(qos.DeadlineHeader), 10, 64)
		mu.Lock()
		attempts = append(attempts, attempt{r.Header.Get(qos.TenantHeader), ms})
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Bcn-Fresh", "4")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(csvHeader + "\n"))
	}))
	defer stub.Close()

	var out strings.Builder
	err := run(context.Background(), []string{
		"-steps", "2", "-cluster", stub.URL,
		"-tenant", "acme", "-deadline", "45s",
	}, &out)
	if err != nil {
		t.Fatalf("cluster mode: %v", err)
	}
	if !strings.HasPrefix(out.String(), csvHeader) {
		t.Errorf("output is not the coordinator CSV:\n%s", out.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(attempts) != 2 {
		t.Fatalf("coordinator saw %d attempts, want 2", len(attempts))
	}
	for i, a := range attempts {
		if a.tenant != "acme" {
			t.Errorf("attempt %d: tenant %q, want acme", i, a.tenant)
		}
		if a.ms <= 0 || a.ms > 45000 {
			t.Errorf("attempt %d: deadline budget %dms, want in (0, 45000]", i, a.ms)
		}
	}
	// The retry spent at least the Retry-After second of the fixed budget.
	if attempts[1].ms >= attempts[0].ms {
		t.Errorf("retry budget %dms did not shrink from %dms", attempts[1].ms, attempts[0].ms)
	}
}
