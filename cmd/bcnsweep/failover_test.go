package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/cluster"
)

// serveMap answers a sweep submission the way a healthy leader does:
// the merged map.csv plus the Bcn-* summary headers.
func serveMap(csv []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/sweeps" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Bcn-Fingerprint", "deadbeefdeadbeef")
		w.Header().Set("Bcn-Points", strconv.Itoa(9))
		w.Header().Set("Bcn-Fresh", strconv.Itoa(9))
		w.Header().Set("Content-Type", "text/csv")
		_, _ = w.Write(csv)
	}
}

// TestClusterFailover drives the bcnsweep -cluster client against a
// two-replica coordinator group whose first replica fails in a
// different way per case — dead before the submit, accepting then
// severing, severing mid-stream, or redirecting with Bcn-Not-Leader —
// and asserts the client always delivers a map.csv byte-identical to
// a local run: one full copy, no partial prefix, no duplicate.
func TestClusterFailover(t *testing.T) {
	// The reference map a clean local sweep produces; the fake leaders
	// serve exactly these bytes.
	var ref bytes.Buffer
	if err := run(context.Background(), []string{"-steps", "3"}, &ref); err != nil {
		t.Fatal(err)
	}
	want := ref.Bytes()

	cases := []struct {
		name string
		// first builds replica A's handler; nil means A is created dead
		// (listener closed before the client's first attempt).
		first func(t *testing.T, csv []byte, healthyURL string) http.HandlerFunc
		// healthyHits is how many submissions the healthy replica should
		// see (always 1: the failover resubmits exactly once).
	}{
		{
			name:  "leader dead before submit",
			first: nil,
		},
		{
			name: "leader dies between submit and response",
			first: func(t *testing.T, _ []byte, _ string) http.HandlerFunc {
				return func(w http.ResponseWriter, r *http.Request) {
					// Accept the submission, then die without a byte written:
					// the client sees the connection cut and must resubmit.
					panic(http.ErrAbortHandler)
				}
			},
		},
		{
			name: "leader dies mid-stream",
			first: func(t *testing.T, csv []byte, _ string) http.HandlerFunc {
				return func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set("Content-Type", "text/csv")
					_, _ = w.Write(csv[:len(csv)/2])
					if f, ok := w.(http.Flusher); ok {
						f.Flush()
					}
					panic(http.ErrAbortHandler) // sever with half the map sent
				}
			},
		},
		{
			name: "standby redirects with Bcn-Not-Leader",
			first: func(t *testing.T, _ []byte, healthyURL string) http.HandlerFunc {
				return func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set(cluster.NotLeaderHeader, healthyURL)
					w.WriteHeader(http.StatusMisdirectedRequest)
					_, _ = w.Write([]byte(`{"error":"this replica is not the leader","reason":"not-leader"}`))
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var healthyHits atomic.Int64
			healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				healthyHits.Add(1)
				serveMap(want)(w, r)
			}))
			defer healthy.Close()

			var firstURL string
			if tc.first == nil {
				dead := httptest.NewServer(http.NotFoundHandler())
				firstURL = dead.URL
				dead.Close() // connection refused from the first attempt on
			} else {
				first := httptest.NewServer(tc.first(t, want, healthy.URL))
				defer first.Close()
				firstURL = first.URL
			}

			var got bytes.Buffer
			err := run(context.Background(), []string{
				"-steps", "3", "-cluster", firstURL + "," + healthy.URL,
			}, &got)
			if err != nil {
				t.Fatalf("failover run: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("failed-over map is %d bytes, local reference is %d; outputs must be byte-identical",
					got.Len(), len(want))
			}
			if n := healthyHits.Load(); n != 1 {
				t.Errorf("healthy replica saw %d submissions, want exactly 1 (idempotent resubmit)", n)
			}
		})
	}
}

// TestClusterFailoverIgnoresStaleHint: standbys keep hinting at a dead
// leader until the next election; the client must not chase that hint
// through connection-refused on every lap. Here the only live replica
// hints at the dead one twice before winning leadership itself — the
// client has to keep coming back to it rather than burn its budget on
// the corpse.
func TestClusterFailoverIgnoresStaleHint(t *testing.T) {
	tightenFailoverPacer(t)
	var ref bytes.Buffer
	if err := run(context.Background(), []string{"-steps", "3"}, &ref); err != nil {
		t.Fatal(err)
	}
	want := ref.Bytes()

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	var hits atomic.Int64
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set(cluster.NotLeaderHeader, dead.URL)
			w.WriteHeader(http.StatusMisdirectedRequest)
			return
		}
		serveMap(want)(w, r)
	}))
	defer standby.Close()

	var got bytes.Buffer
	err := run(context.Background(), []string{
		"-steps", "3", "-cluster", dead.URL + "," + standby.URL,
	}, &got)
	if err != nil {
		t.Fatalf("run with stale hints: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("map after stale-hint elections differs from the local reference")
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("standby saw %d requests, want 3 (two denials, one success; no hint-chasing detours)", n)
	}
}

// tightenFailoverPacer shrinks the lap backoff so exhaustion-path
// tests finish in milliseconds, restoring it on cleanup.
func tightenFailoverPacer(t *testing.T) {
	t.Helper()
	base, cap := failoverRetryBase, failoverRetryCap
	failoverRetryBase, failoverRetryCap = time.Millisecond, 5*time.Millisecond
	t.Cleanup(func() { failoverRetryBase, failoverRetryCap = base, cap })
}

// TestClusterFailoverExhausted: when every replica stays unreachable
// the client gives up with an error instead of spinning forever.
func TestClusterFailoverExhausted(t *testing.T) {
	tightenFailoverPacer(t)
	a := httptest.NewServer(http.NotFoundHandler())
	b := httptest.NewServer(http.NotFoundHandler())
	a.Close()
	b.Close()
	var out bytes.Buffer
	err := run(context.Background(), []string{"-steps", "3", "-cluster", a.URL + "," + b.URL}, &out)
	if err == nil {
		t.Fatal("sweep against two dead replicas succeeded")
	}
	if out.Len() != 0 {
		t.Errorf("dead-cluster run still wrote %d bytes", out.Len())
	}
}
