// Command bcnsim runs the packet-level DCE dumbbell simulator: N sources
// through one BCN-controlled bottleneck, with optional 802.3x PAUSE.
//
// Example:
//
//	bcnsim -n 10 -c 1e9 -b 4e6 -q0 5e5 -dur 0.2 -csv queue.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"bcnphase/internal/invariant"
	"bcnphase/internal/netsim"
	"bcnphase/internal/plot"
	"bcnphase/internal/runstate"
	"bcnphase/internal/telemetry"
)

func main() {
	ctx, stop, fired := runstate.TrapSignals(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		if fired() || runstate.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "bcnsim:", err)
			os.Exit(runstate.ExitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "bcnsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bcnsim", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		n        = fs.Int("n", 10, "number of sources")
		c        = fs.Float64("c", 1e9, "bottleneck capacity (bits/s)")
		line     = fs.Float64("line", 1e9, "per-source line rate (bits/s)")
		frame    = fs.Float64("frame", 12000, "frame size (bits)")
		b        = fs.Float64("b", 4e6, "buffer size (bits)")
		q0       = fs.Float64("q0", 5e5, "queue reference (bits)")
		w        = fs.Float64("w", 2, "sigma weight")
		pm       = fs.Float64("pm", 0.2, "sampling probability")
		ru       = fs.Float64("ru", 8e6, "rate unit (bits/s)")
		gi       = fs.Float64("gi", 0.05, "increase gain")
		gd       = fs.Float64("gd", 1.0/128, "decrease gain")
		initRate = fs.Float64("rate", 2e8, "initial per-source rate (bits/s)")
		prop     = fs.Float64("prop", 1e-6, "one-way propagation delay (s)")
		dur      = fs.Float64("dur", 0.1, "simulated duration (s)")
		noBCN    = fs.Bool("nobcn", false, "disable BCN (uncontrolled or PAUSE-only baseline)")
		pause    = fs.Bool("pause", false, "enable 802.3x PAUSE")
		qsc      = fs.Float64("qsc", 0, "PAUSE high watermark (bits); default 0.75*B when -pause")
		seed     = fs.Int64("seed", 1, "start-jitter seed (0 = synchronized sources)")
		csv      = fs.String("csv", "", "write the queue series to this CSV file")
		ascii    = fs.Bool("ascii", false, "print an ASCII chart of the queue series")
		trace    = fs.String("trace", "", "write a per-event trace to this file")
		invPol   = fs.String("invariants", "off", "runtime invariant checking: off, record, strict or clamp")
		telem    = fs.String("telemetry", "", "directory to write telemetry.json (metrics summary) and trace.jsonl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := invariant.ParsePolicy(*invPol)
	if err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *telem != "" {
		if err := runstate.EnsureWritableDir(*telem); err != nil {
			return fmt.Errorf("telemetry preflight: %w", err)
		}
		reg = telemetry.NewRegistry()
		tracer := telemetry.NewTracer(0, nil)
		began := time.Now()
		span := tracer.Start("bcnsim/run")
		defer func() {
			span.End()
			if err := telemetry.DumpDir(*telem, "bcnsim", time.Since(began).Seconds(), reg, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "bcnsim: telemetry:", err)
			}
		}()
	}
	cfg := netsim.Config{
		N: *n, Capacity: *c, LineRate: *line, FrameBits: *frame,
		BufferBits: *b, PropDelay: netsim.FromSeconds(*prop),
		InitialRate: *initRate,
		BCN:         !*noBCN,
		Q0:          *q0, W: *w, Pm: *pm, Ru: *ru, Gi: *gi, Gd: *gd,
		Seed:       *seed,
		Invariants: policy,
		Metrics:    netsim.NewMetrics(reg),
	}
	if *pause {
		cfg.Pause = true
		cfg.Qsc = *qsc
		if cfg.Qsc == 0 {
			cfg.Qsc = 0.75 * *b
		}
		cfg.PauseDuration = netsim.FromSeconds(50e-6)
	}
	// The trace streams during the run, so it goes through an atomic
	// file: only a committed (complete) trace is published, a crash or
	// interruption mid-run leaves nothing truncated behind.
	var traceFile *runstate.AtomicFile
	if *trace != "" {
		af, err := runstate.CreateAtomic(*trace)
		if err != nil {
			return err
		}
		defer af.Abort()
		traceFile = af
		cfg.Trace = af
	}
	net, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	res, err := net.RunContext(ctx, *dur)
	if err != nil {
		// An interrupted run drained cooperatively; discard the partial
		// trace (Abort is deferred) and surface the resumable status.
		if runstate.Interrupted(err) {
			at := 0.0
			if res != nil && len(res.Queue.T) > 0 {
				at = res.Queue.T[len(res.Queue.T)-1]
			}
			return fmt.Errorf("%w: simulation stopped at t=%.6gs of %gs", runstate.ErrInterrupted, at, *dur)
		}
		return err
	}
	if traceFile != nil {
		if err := traceFile.Commit(); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "events:      %d\n", res.Events)
	fmt.Fprintf(out, "throughput:  %.6g bits/s (utilization %.4f)\n", res.Throughput, res.Utilization)
	fmt.Fprintf(out, "queue:       max=%.6g bits, trough after fill=%.6g bits\n", res.MaxQueueBits, res.MinQueueAfterFill)
	fmt.Fprintf(out, "drops:       %d frames (%.6g bits)\n", res.DroppedFrames, res.DroppedBits)
	fmt.Fprintf(out, "pauses:      %d\n", res.PausesSent)
	fmt.Fprintf(out, "latency:     mean=%.4gus p99=%.4gus (bottleneck sojourn)\n",
		res.MeanSojourn*1e6, res.P99Sojourn*1e6)
	fmt.Fprintf(out, "fairness:    Jain=%.4f\n", res.JainIndex)
	if cfg.BCN {
		fmt.Fprintf(out, "bcn:         %d samples, %d positive, %d negative messages\n",
			res.CPSamples, res.PosMessages, res.NegMessages)
	}
	if policy != invariant.Off {
		fmt.Fprintf(out, "invariants:  policy=%s violations=%d", policy, res.Invariants.Total)
		if res.Invariants.Total > 0 {
			fmt.Fprintf(out, " first=%s by predicate=%v", res.Invariants.FirstPredicate(), res.Invariants.ByPredicate)
		}
		fmt.Fprintln(out)
	}
	if *ascii {
		art, err := plot.ASCII("queue occupancy (bits)", 72, 18, plot.Series{
			Name: "queue", X: res.Queue.T, Y: res.Queue.V,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, art)
	}
	if *csv != "" {
		var sb strings.Builder
		sb.WriteString("t,queue_bits,agg_rate_bps\n")
		for i := range res.Queue.T {
			sb.WriteString(strconv.FormatFloat(res.Queue.T[i], 'g', 10, 64))
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(res.Queue.V[i], 'g', 10, 64))
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(res.AggRate.V[i], 'g', 10, 64))
			sb.WriteByte('\n')
		}
		if err := runstate.WriteFileAtomic(*csv, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "queue series written to %s\n", *csv)
	}
	return nil
}
