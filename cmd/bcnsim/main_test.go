package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-dur", "0.02"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"throughput:", "queue:", "drops:", "bcn:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoBCNWithPause(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-dur", "0.02", "-nobcn", "-pause"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "bcn:") {
		t.Error("bcn stats printed with -nobcn")
	}
	if !strings.Contains(out, "pauses:") {
		t.Error("missing pauses line")
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.csv")
	var b strings.Builder
	if err := run([]string{"-dur", "0.01", "-csv", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "t,queue_bits,agg_rate_bps" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 100 {
		t.Errorf("csv has only %d lines", len(lines))
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Error("invalid config accepted")
	}
	if err := run([]string{"-dur", "0"}, &b); err == nil {
		t.Error("zero duration accepted")
	}
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunASCII(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-dur", "0.01", "-ascii"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "queue occupancy") {
		t.Error("ASCII chart missing")
	}
	if !strings.Contains(b.String(), "latency:") {
		t.Error("latency line missing")
	}
}

func TestRunTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.tr")
	var b strings.Builder
	if err := run([]string{"-dur", "0.005", "-trace", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(data), "+ src=") {
		t.Error("trace missing send events")
	}
}
