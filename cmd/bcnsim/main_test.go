package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bcnphase/internal/runstate"
	"bcnphase/internal/telemetry"
)

func TestRunDefaults(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.02"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"throughput:", "queue:", "drops:", "bcn:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoBCNWithPause(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.02", "-nobcn", "-pause"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "bcn:") {
		t.Error("bcn stats printed with -nobcn")
	}
	if !strings.Contains(out, "pauses:") {
		t.Error("missing pauses line")
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.csv")
	var b strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.01", "-csv", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "t,queue_bits,agg_rate_bps" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 100 {
		t.Errorf("csv has only %d lines", len(lines))
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-n", "0"}, &b); err == nil {
		t.Error("invalid config accepted")
	}
	if err := run(context.Background(), []string{"-dur", "0"}, &b); err == nil {
		t.Error("zero duration accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunASCII(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.01", "-ascii"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "queue occupancy") {
		t.Error("ASCII chart missing")
	}
	if !strings.Contains(b.String(), "latency:") {
		t.Error("latency line missing")
	}
}

func TestRunTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.tr")
	var b strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.005", "-trace", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(data), "+ src=") {
		t.Error("trace missing send events")
	}
}

// A cancelled simulation exits with the interrupted classification and
// publishes neither a truncated CSV nor a truncated trace.
func TestRunInterruptedLeavesNoPartialArtifacts(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "q.csv")
	tr := filepath.Join(dir, "ev.tr")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	err := run(ctx, []string{"-dur", "0.05", "-csv", csv, "-trace", tr}, &b)
	if err == nil {
		t.Fatal("cancelled simulation reported success")
	}
	if !runstate.Interrupted(err) {
		t.Fatalf("cancelled simulation not classified interrupted: %v", err)
	}
	for _, p := range []string{csv, tr} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("interrupted run published %s", p)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("interrupted run left %d stray files (temp leak?)", len(entries))
	}
}

func TestRunInvariantsFlag(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.02", "-invariants", "record"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "invariants:  policy=record") {
		t.Errorf("output missing invariants summary:\n%s", b.String())
	}
	if err := run(context.Background(), []string{"-invariants", "bogus"}, &b); err == nil {
		t.Error("bogus -invariants value accepted")
	}
}

// TestRunTelemetry asserts -telemetry writes a metrics summary with
// nonzero netsim series without perturbing the simulation output.
func TestRunTelemetry(t *testing.T) {
	dir := t.TempDir()
	var plain, instrumented strings.Builder
	if err := run(context.Background(), []string{"-dur", "0.02"}, &plain); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := run(context.Background(), []string{"-dur", "0.02", "-telemetry", dir}, &instrumented); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if plain.String() != instrumented.String() {
		t.Error("telemetry changed the simulation output")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
	if err != nil {
		t.Fatalf("telemetry.json: %v", err)
	}
	var sum telemetry.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("decode telemetry.json: %v", err)
	}
	if sum.Tool != "bcnsim" {
		t.Errorf("tool = %q", sum.Tool)
	}
	if v := sum.Metrics.Value("netsim_events_total"); v <= 0 {
		t.Errorf("netsim_events_total = %v, want > 0", v)
	}
	if v := sum.Metrics.Value("netsim_runs_total"); v != 1 {
		t.Errorf("netsim_runs_total = %v, want 1", v)
	}
}
