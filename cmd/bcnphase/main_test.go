package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/telemetry"
)

func TestRunPaperDefaults(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"case 1 (spiral/spiral)",
		"overflow",
		"NOTE: linear theory declares this system stable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAmpleBuffer(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "converged") {
		t.Errorf("expected convergence:\n%s", b.String())
	}
	if strings.Contains(b.String(), "NOTE:") {
		t.Error("no disagreement expected with an ample buffer")
	}
}

func TestRunWarmup(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6", "-warmup", "1e8"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "portrait.svg")
	var b strings.Builder
	if err := run([]string{"-svg", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("svg not written: %v", err)
	}
	if !strings.Contains(string(data), "</svg>") {
		t.Error("incomplete SVG")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Error("invalid params accepted")
	}
	if err := run([]string{"-unknown-flag"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-svg", "/nonexistent-dir/x.svg"}, &b); err == nil {
		t.Error("unwritable SVG path accepted")
	}
}

func TestRunSizingAndTransient(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6", "-size", "-transient"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"max flows", "max Gi", "min Gd", "max q0", "oscillation period", "settle"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunInvariantsFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6", "-invariants", "record"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "invariants: policy=record") {
		t.Errorf("output missing invariants summary:\n%s", b.String())
	}
	if err := run([]string{"-invariants", "bogus"}, &b); err == nil {
		t.Error("bogus -invariants value accepted")
	}
}

// TestRunBrokenParamsByPolicy pins the CLI contract for invalid
// parameters: off keeps the plain validation error, strict aborts with
// a structured InvariantError naming the predicate, record completes
// with a reduced report and non-zero tallies.
func TestRunBrokenParamsByPolicy(t *testing.T) {
	broken := []string{"-gd", "-0.1"}

	var b strings.Builder
	err := run(broken, &b)
	var ie *invariant.InvariantError
	if err == nil || errors.As(err, &ie) {
		t.Errorf("policy off: want plain validation error, got %v", err)
	}

	b.Reset()
	err = run(append(broken, "-invariants", "strict"), &b)
	if !errors.As(err, &ie) {
		t.Fatalf("policy strict: want *InvariantError, got %v", err)
	}
	if ie.Violation.Predicate != core.PredParamsValid {
		t.Errorf("predicate %q, want %q", ie.Violation.Predicate, core.PredParamsValid)
	}

	b.Reset()
	if err := run(append(broken, "-invariants", "record"), &b); err != nil {
		t.Fatalf("policy record: %v", err)
	}
	got := b.String()
	for _, want := range []string{"parameters: INVALID", "first=" + core.PredParamsValid} {
		if !strings.Contains(got, want) {
			t.Errorf("record output missing %q:\n%s", want, got)
		}
	}
}

func TestRunXCheck(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6", "-xcheck"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "xcheck:") {
		t.Errorf("output missing xcheck report:\n%s", b.String())
	}
}

// TestRunTelemetry asserts -telemetry writes a metrics summary with
// solver series without perturbing the analysis output.
func TestRunTelemetry(t *testing.T) {
	dir := t.TempDir()
	var plain, instrumented strings.Builder
	if err := run(nil, &plain); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := run([]string{"-telemetry", dir}, &instrumented); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if plain.String() != instrumented.String() {
		t.Error("telemetry changed the analysis output")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
	if err != nil {
		t.Fatalf("telemetry.json: %v", err)
	}
	var sum telemetry.Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("decode telemetry.json: %v", err)
	}
	if sum.Tool != "bcnphase" {
		t.Errorf("tool = %q", sum.Tool)
	}
	if v := sum.Metrics.Value("core_solves_total"); v != 1 {
		t.Errorf("core_solves_total = %v, want 1", v)
	}
	if v := sum.Metrics.Value("core_arcs_total"); v <= 0 {
		t.Errorf("core_arcs_total = %v, want > 0", v)
	}
}
