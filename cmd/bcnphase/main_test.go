package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPaperDefaults(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"case 1 (spiral/spiral)",
		"overflow",
		"NOTE: linear theory declares this system stable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAmpleBuffer(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "converged") {
		t.Errorf("expected convergence:\n%s", b.String())
	}
	if strings.Contains(b.String(), "NOTE:") {
		t.Error("no disagreement expected with an ample buffer")
	}
}

func TestRunWarmup(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6", "-warmup", "1e8"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "portrait.svg")
	var b strings.Builder
	if err := run([]string{"-svg", path}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("svg not written: %v", err)
	}
	if !strings.Contains(string(data), "</svg>") {
		t.Error("incomplete SVG")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Error("invalid params accepted")
	}
	if err := run([]string{"-unknown-flag"}, &b); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-svg", "/nonexistent-dir/x.svg"}, &b); err == nil {
		t.Error("unwritable SVG path accepted")
	}
}

func TestRunSizingAndTransient(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-b", "14.5e6", "-size", "-transient"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{"max flows", "max Gi", "min Gd", "max q0", "oscillation period", "settle"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
