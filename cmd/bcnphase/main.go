// Command bcnphase analyzes one BCN parameter set with the phase-plane
// machinery: case classification, all stability criteria, the stitched
// trajectory verdict, and optionally an SVG phase portrait.
//
// Example:
//
//	bcnphase -n 50 -c 10e9 -q0 2.5e6 -b 5e6 -gi 4 -gd 0.0078125 -svg out.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"bcnphase/internal/analytic"
	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/invariant/xcheck"
	"bcnphase/internal/linear"
	"bcnphase/internal/plot"
	"bcnphase/internal/runstate"
	"bcnphase/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcnphase:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bcnphase", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		n      = fs.Int("n", 50, "number of flows")
		c      = fs.Float64("c", 10e9, "bottleneck capacity (bits/s)")
		ru     = fs.Float64("ru", core.DefaultRu, "rate increase unit (bits/s)")
		gi     = fs.Float64("gi", core.DefaultGi, "additive increase gain")
		gd     = fs.Float64("gd", core.DefaultGd, "multiplicative decrease gain")
		w      = fs.Float64("w", core.DefaultW, "sigma weight")
		pm     = fs.Float64("pm", core.DefaultPm, "sampling probability")
		q0     = fs.Float64("q0", 2.5e6, "queue reference (bits)")
		b      = fs.Float64("b", 5e6, "buffer size (bits)")
		svg    = fs.String("svg", "", "write the phase portrait to this SVG file")
		warmup = fs.Float64("warmup", -1, "per-source initial rate for the warm-up phase (bits/s); negative disables")
		size   = fs.Bool("size", false, "print inverse provisioning: max flows/Gi, min Gd, max q0 for this buffer")
		trans  = fs.Bool("transient", false, "print transient metrics (overshoot, period, settling)")
		invPol = fs.String("invariants", "off", "runtime invariant checking: off, record, strict or clamp")
		engine = fs.String("analytic", "on", "cross-check against the sampling-free analytic engine: on, auto, or off. Skipped automatically under a non-off -invariants policy or -warmup")
		xc     = fs.Bool("xcheck", false, "cross-validate the stitched trajectory against an independent numerical integration")
		telem  = fs.String("telemetry", "", "directory to write telemetry.json (metrics summary) and trace.jsonl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := invariant.ParsePolicy(*invPol)
	if err != nil {
		return err
	}
	mode, err := analytic.ParseMode(*engine)
	if err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *telem != "" {
		if err := runstate.EnsureWritableDir(*telem); err != nil {
			return fmt.Errorf("telemetry preflight: %w", err)
		}
		reg = telemetry.NewRegistry()
		tracer := telemetry.NewTracer(0, nil)
		began := time.Now()
		span := tracer.Start("bcnphase/run")
		defer func() {
			span.End()
			if err := telemetry.DumpDir(*telem, "bcnphase", time.Since(began).Seconds(), reg, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "bcnphase: telemetry:", err)
			}
		}()
	}
	solveMetrics := core.NewSolveMetrics(reg)
	p := core.Params{
		N: *n, C: *c, Ru: *ru, Gi: *gi, Gd: *gd, W: *w, Pm: *pm, Q0: *q0, B: *b,
	}
	chk := invariant.NewPolicy(policy)
	if err := p.Validate(); err != nil {
		if ferr := chk.Fail(core.PredParamsValid, 0, err.Error()); ferr != nil {
			return ferr
		}
		if !chk.Enabled() {
			return err
		}
		// Record/Clamp: integrate through the broken parameters and
		// report what the guards saw; the derived criteria and linear
		// comparison are meaningless here, so print a reduced analysis.
		tr, serr := core.Solve(p, core.SolveOptions{SamplesPerArc: 128, Invariants: chk, Telemetry: solveMetrics})
		if serr != nil {
			return serr
		}
		fmt.Fprintf(out, "parameters: INVALID: %v\n", err)
		fmt.Fprintf(out, "trajectory: outcome=%v  strongly stable=%v\n",
			tr.Outcome, tr.Outcome.StronglyStable())
		fmt.Fprintf(out, "invariants: policy=%s  violations=%d  first=%s  by predicate=%v\n",
			policy, tr.Violations.Total, tr.Violations.FirstPredicate(), tr.Violations.ByPredicate)
		return nil
	}

	rep, err := core.Criteria(p)
	if err != nil {
		return err
	}
	opts := core.SolveOptions{SamplesPerArc: 128, Invariants: chk, Telemetry: solveMetrics}
	if *warmup >= 0 {
		mu := *warmup
		opts.WarmupFromRate = &mu
	}
	tr, err := core.Solve(p, opts)
	if err != nil {
		return err
	}
	v, err := linear.Compare(p)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "parameters: N=%d C=%.4g Ru=%.4g Gi=%.4g Gd=%.6g w=%.3g pm=%.3g q0=%.4g B=%.4g\n",
		p.N, p.C, p.Ru, p.Gi, p.Gd, p.W, p.Pm, p.Q0, p.B)
	fmt.Fprintf(out, "derived:    a=%.6g  b=%.6g  k=%.6g  thresholds a<%.4g b<%.4g\n",
		p.A(), p.Bcoef(), p.K(), p.AThreshold(), p.BThreshold())
	fmt.Fprintf(out, "case:       %v\n", rep.Case)
	fmt.Fprintf(out, "linear analysis [4]:    stable=%v (Proposition 1: always for valid params)\n", v.LinearStable)
	fmt.Fprintf(out, "Theorem 1:  bound=%.6g bits, satisfied=%v (buffer %.6g)\n",
		rep.Theorem1Bound, rep.Theorem1OK, p.B)
	if rep.Exact {
		fmt.Fprintf(out, "first round: max1=%.6g (peak q %.6g)  min1=%.6g (trough q %.6g)\n",
			rep.Max1, p.Q0+rep.Max1, rep.Min1, p.Q0+rep.Min1)
	}
	fmt.Fprintf(out, "trajectory: outcome=%v  strongly stable=%v  rho=%.6f\n",
		tr.Outcome, tr.Outcome.StronglyStable(), tr.Rho)
	fmt.Fprintf(out, "excursion:  max q=%.6g  min q=%.6g  arcs=%d  crossings=%d\n",
		tr.MaxQueue(), tr.MinQueue(), len(tr.Segments), len(tr.Crossings))
	if tr.Rho > 0 && tr.Rho < 1 {
		fmt.Fprintf(out, "transient:  rounds to halve amplitude=%.4g\n", math.Log(0.5)/math.Log(tr.Rho))
	}
	// Engine cross-check: the sampling-free analytic engine must agree
	// with the sampled trajectory on the classification (they share the
	// closed forms bit for bit). The analytic engine knows nothing about
	// warmup starts or invariant instrumentation, so those runs skip it.
	if mode != analytic.ModeOff && policy == invariant.Off && *warmup < 0 {
		res, err := analytic.SolveOne(p, analytic.Options{Mode: mode})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "engine:     path=%s outcome=%v  exact max q=%.6g min q=%.6g\n",
			res.Path, res.Outcome, res.MaxQueue(p), res.MinQueue(p))
		if res.Outcome != tr.Outcome {
			return fmt.Errorf("analytic engine disagrees with sampled solve: %v vs %v", res.Outcome, tr.Outcome)
		}
	}
	if v.Disagreement {
		fmt.Fprintln(out, "NOTE: linear theory declares this system stable, but it is NOT strongly stable")
	}
	if policy != invariant.Off {
		fmt.Fprintf(out, "invariants: policy=%s  violations=%d", policy, tr.Violations.Total)
		if tr.Violations.Total > 0 {
			fmt.Fprintf(out, "  first=%s  by predicate=%v", tr.Violations.FirstPredicate(), tr.Violations.ByPredicate)
		}
		fmt.Fprintln(out)
	}
	if *xc {
		r, err := xcheck.CrossValidate(p, xcheck.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r)
		if err := r.Err(); err != nil {
			return err
		}
	}

	if *size {
		if nMax, err := core.MaxFlowsForBuffer(p); err == nil {
			fmt.Fprintf(out, "sizing:     max flows at B=%.4g: %d\n", p.B, nMax)
		}
		if gi, err := core.MaxGiForBuffer(p); err == nil {
			fmt.Fprintf(out, "sizing:     max Gi: %.6g\n", gi)
		}
		if gd, err := core.MinGdForBuffer(p); err == nil {
			fmt.Fprintf(out, "sizing:     min Gd: %.6g (1/%.4g)\n", gd, 1/gd)
		}
		if q0, err := core.MaxQ0ForBuffer(p); err == nil {
			fmt.Fprintf(out, "sizing:     max q0: %.6g bits\n", q0)
		}
	}
	if *trans {
		m, err := core.Transient(p, 0.05)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "transient:  overshoot=%.2f%%  undershoot=%.2f%%\n",
			100*m.OvershootRatio, 100*m.UndershootRatio)
		if m.RiseTimeValid {
			fmt.Fprintf(out, "transient:  rise time=%.4g s\n", m.RiseTime)
		}
		if m.PeriodValid {
			fmt.Fprintf(out, "transient:  oscillation period=%.4g s\n", m.OscillationPeriod)
		}
		if m.SettleValid {
			fmt.Fprintf(out, "transient:  settle to ±5%% of q0 ≈ %.4g s\n", m.SettleTime)
		}
	}

	if *svg != "" {
		chart := plot.NewChart("BCN phase portrait", "x = q - q0 (bits)", "y = N*r - C (bits/s)")
		chart.AddXY("trajectory", tr.X, tr.Y)
		chart.AddVLine(-p.Q0, "q=0", "#cc0000")
		chart.AddVLine(p.B-p.Q0, "q=B", "#cc0000")
		chart.AddMarker(plot.Marker{X: 0, Y: 0, Label: "equilibrium", Color: "#009e73"})
		// Render fully in memory, then publish atomically: a failed
		// render or a crash never leaves a truncated SVG behind.
		doc, err := chart.RenderBytes()
		if err != nil {
			return err
		}
		if err := runstate.WriteFileAtomic(*svg, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "phase portrait written to %s\n", *svg)
	}
	return nil
}
