// Command bcnd is the supervised simulation service: an HTTP daemon
// that accepts solve, sweep and netsim job specs as validated JSON,
// executes them on a bounded worker pool, and degrades gracefully under
// overload and partial failure (see internal/serve).
//
// Admission is bounded: when the waiting room is full new submissions
// are shed with 429, Retry-After and live queue-depth/utilization
// feedback. Jobs are deduplicated by content hash — resubmitting a
// completed job returns the journaled artifact byte-identically — and
// parameter regions that repeatedly abort under the strict invariant
// policy are quarantined by a circuit breaker. SIGINT/SIGTERM drain
// gracefully: admission stops (503), accepted jobs finish, the journal
// is already durable record-by-record, and the process exits 0.
//
// With -coordinator the same binary becomes a cluster sweep
// coordinator instead: it shards gain-plane grids across a fleet of
// ordinary bcnd workers (consistent hashing, work stealing, lease and
// heartbeat driven re-assignment, per-worker circuit breakers) and
// merges the results into one map.csv — see internal/cluster.
//
// Examples:
//
//	bcnd -addr 127.0.0.1:8077 -journal out/bcnd
//	bcnd -selftest
//	bcnd -url http://127.0.0.1:8077 -post job.json
//	bcnd -url http://127.0.0.1:8077 -get <key>
//	bcnd -coordinator -workers http://h1:8077,http://h2:8077 -journal out/coord
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bcnphase/internal/analytic"
	"bcnphase/internal/cluster"
	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/qos"
	"bcnphase/internal/runstate"
	"bcnphase/internal/serve"
	"bcnphase/internal/telemetry"
)

func main() {
	ctx, stop, fired := runstate.TrapSignals(context.Background())
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		if fired() || runstate.Interrupted(err) {
			fmt.Fprintln(os.Stderr, "bcnd:", err)
			os.Exit(runstate.ExitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "bcnd:", err)
		os.Exit(1)
	}
}

// startedHook, when non-nil, receives the bound listen address once the
// server is accepting; tests use it to reach an ephemeral port.
var startedHook func(addr string)

// newHTTPServer wraps a handler with the slow-client limits every
// listener in this binary must carry: a bounded header read so a peer
// that connects and never finishes its request line cannot pin a
// connection forever, and an idle timeout so abandoned keep-alive
// connections are reclaimed. Request bodies are bounded per-handler
// (MaxBytesReader), not here, because job execution legitimately
// outlives any fixed whole-request deadline.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bcnd", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // errors are returned; keep usage noise out of test output
	var (
		addr = fs.String("addr", "127.0.0.1:8077", "listen address")
		// -workers is overloaded by mode: a pool size in server mode, a
		// comma-separated list of worker base URLs in coordinator mode.
		workers      = fs.String("workers", "", "server mode: concurrently executing jobs (0/empty = default); coordinator mode: comma-separated worker base URLs")
		queueCap     = fs.Int("queue", 0, "admission queue capacity (0 = 4x workers)")
		journalDir   = fs.String("journal", "", "run directory for the artifact journal; empty keeps artifacts in memory only")
		invPol       = fs.String("invariants", "off", "invariant policy for jobs that name none: off, record, strict or clamp")
		engine       = fs.String("analytic", "on", "solve engine for jobs that name none: on or auto (sampling-free closed forms), off (classic sampled solver)")
		defTimeout   = fs.Duration("default-timeout", 30*time.Second, "per-job budget when the spec names none")
		maxTimeout   = fs.Duration("max-timeout", 2*time.Minute, "cap on the per-job budget a spec may request")
		brkFailures  = fs.Int("breaker-failures", 3, "consecutive strict aborts that quarantine a parameter region (negative disables)")
		brkCooldown  = fs.Duration("breaker-cooldown", 30*time.Second, "quarantine length for a tripped region")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for accepted jobs")
		selftest     = fs.Bool("selftest", false, "run the canary suite against an ephemeral in-process server and exit")
		telem        = fs.String("telemetry", "", "directory to dump telemetry.json (final metrics snapshot) and trace.jsonl at drain")
		clientURL    = fs.String("url", "http://127.0.0.1:8077", "server base URL for -post/-get client modes")
		postFile     = fs.String("post", "", "client mode: submit the spec in this file (- for stdin) and print the artifact")
		getKey       = fs.String("get", "", "client mode: fetch the artifact for this job key and print it")
		postRetries  = fs.Int("post-retries", 4, "client mode: extra attempts when the server sheds with 429/503 (Retry-After honored, jittered)")
		tenant       = fs.String("tenant", "", "client mode: tenant key sent as Bcn-Tenant (empty = anonymous)")
		qosClass     = fs.String("qos-class", "", "client mode: QoS class sent as Bcn-QoS-Class (interactive, standard, batch)")
		deadline     = fs.Duration("deadline", 0, "client mode: end-to-end deadline budget sent as Bcn-Deadline-Ms (0 = none)")
		coordinator  = fs.Bool("coordinator", false, "run as a cluster sweep coordinator over the -workers URLs instead of a job server")
		shardSize    = fs.Int("shard-size", 0, "coordinator mode: grid points per shard (0 = default)")
		leaseTimeout = fs.Duration("lease-timeout", 30*time.Second, "coordinator mode: per-dispatch shard lease; an unanswered shard is re-assigned after this")
		hbInterval   = fs.Duration("heartbeat-interval", time.Second, "coordinator mode: worker /statusz probe interval")
		maxSweeps    = fs.Int("max-sweeps", 2, "coordinator mode: concurrent sweeps before submissions are shed")
		auditFrac    = fs.Float64("audit-fraction", 0, "coordinator mode: fraction of completed shards re-executed on a second worker and compared bit-exactly (0 disables auditing, 1 audits everything)")
		peers        = fs.String("peers", "", "coordinator HA: comma-separated base URLs of the other coordinator replicas; enables lease-based leader election, journal replication and failover")
		selfURL      = fs.String("self", "", "coordinator HA: this replica's advertised base URL (required with -peers)")
		leaseTTL     = fs.Duration("lease-ttl", 3*time.Second, "coordinator HA: leadership lease TTL granted by the worker witnesses")

		// Closed-loop QoS (server mode; see internal/qos).
		qosOn      = fs.Bool("qos", false, "server mode: enable the closed-loop QoS layer — adaptive admission, brownout ladder, per-tenant fairness, deadline propagation, artifact cache")
		qosAlpha   = fs.Float64("qos-alpha", 0, "QoS: rate-mismatch feedback gain alpha (0 = default; stability needs alpha^2 < 4*beta)")
		qosBeta    = fs.Float64("qos-beta", 0, "QoS: queue-excursion feedback gain beta (0 = default)")
		qosTick    = fs.Duration("qos-interval", 0, "QoS: control-loop tick interval (0 = default)")
		qosTarget  = fs.Float64("qos-queue-target", 0, "QoS: queue-depth operating point q0 (0 = half the queue capacity)")
		qosHeap    = fs.Int64("qos-max-heap", 0, "QoS: live-heap bytes forcing cached-only brownout, 1.5x forces drain (0 disables)")
		qosGoros   = fs.Int("qos-max-goroutines", 0, "QoS: goroutine count forcing cached-only brownout (0 = default 20000, negative disables)")
		tenWeights = fs.String("tenant-weights", "", "QoS: per-tenant scheduling weights as name=weight pairs, comma-separated")
		tenBurst   = fs.Float64("tenant-burst", 0, "QoS: per-tenant bucket burst in seconds of fair-share rate (0 = default)")
		cacheBytes = fs.Int64("cache-bytes", 0, "QoS: artifact front-cache budget in bytes (0 = default 64 MiB, negative disables)")
		cacheTTL   = fs.Duration("cache-ttl", 0, "QoS: artifact front-cache entry TTL (0 = default 10m, negative = no expiry)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *postFile != "" && *getKey != "":
		return fmt.Errorf("-post and -get are mutually exclusive")
	case *postFile != "":
		return clientPost(ctx, *clientURL, *postFile, *postRetries,
			clientQoS{tenant: *tenant, class: *qosClass, deadline: *deadline}, out)
	case *getKey != "":
		return clientGet(ctx, *clientURL, *getKey, out)
	}
	if *coordinator {
		return runCoordinator(ctx, coordOptions{
			addr: *addr, workers: *workers, journalDir: *journalDir,
			shardSize: *shardSize, leaseTimeout: *leaseTimeout,
			hbInterval: *hbInterval, maxSweeps: *maxSweeps,
			drainTimeout: *drainTimeout, auditFraction: *auditFrac,
			peers: *peers, self: *selfURL, leaseTTL: *leaseTTL,
		}, out)
	}
	if *peers != "" || *selfURL != "" {
		return fmt.Errorf("-peers and -self are coordinator HA flags; add -coordinator")
	}

	poolWorkers := 0
	if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			return fmt.Errorf("-workers %q: want a pool size in server mode (URL lists are for -coordinator)", *workers)
		}
		poolWorkers = n
	}
	policy, err := invariant.ParsePolicy(*invPol)
	if err != nil {
		return err
	}
	mode, err := analytic.ParseMode(*engine)
	if err != nil {
		return err
	}
	if *telem != "" {
		if err := runstate.EnsureWritableDir(*telem); err != nil {
			return fmt.Errorf("telemetry preflight: %w", err)
		}
	}
	cfg := serve.Config{
		Workers:          poolWorkers,
		QueueCap:         *queueCap,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		BreakerThreshold: *brkFailures,
		BreakerCooldown:  *brkCooldown,
		Invariants:       policy,
		Analytic:         mode,
		Registry:         telemetry.NewRegistry(),
		Log:              os.Stderr,
	}
	if *qosOn {
		weights, err := parseTenantWeights(*tenWeights)
		if err != nil {
			return err
		}
		cfg.QoS = &qos.Config{
			Controller: qos.ControllerConfig{
				Alpha:       *qosAlpha,
				Beta:        *qosBeta,
				Interval:    *qosTick,
				QueueTarget: *qosTarget,
			},
			Brownout: qos.BrownoutConfig{
				MaxHeapBytes:  *qosHeap,
				MaxGoroutines: *qosGoros,
			},
			Tenant: qos.TenantConfig{
				Weights:      weights,
				BurstSeconds: *tenBurst,
			},
			CacheBytes: *cacheBytes,
			CacheTTL:   *cacheTTL,
		}
	}
	var journal *runstate.Journal
	if *journalDir != "" {
		if err := runstate.EnsureWritableDir(*journalDir); err != nil {
			return fmt.Errorf("preflight: %w", err)
		}
		journal, err = runstate.OpenJournal(filepath.Join(*journalDir, runstate.JournalFileName))
		if err != nil {
			return err
		}
		defer journal.Close()
		if d := journal.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "bcnd: journal replay dropped %d corrupt records\n", d)
		}
		fmt.Fprintf(out, "bcnd: journal %s replayed %d artifacts\n", journal.Path(), journal.Len())
		cfg.Cache = journal
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close() // stops the QoS control loop; no-op without -qos
	// The final metrics snapshot and span trace are dumped on every exit
	// path — clean drain, failed drain, selftest — so a post-mortem
	// always has the last state the process saw.
	if *telem != "" {
		start := time.Now()
		defer func() {
			if err := telemetry.DumpDir(*telem, "bcnd", time.Since(start).Seconds(), srv.Registry(), srv.Tracer()); err != nil {
				fmt.Fprintln(os.Stderr, "bcnd: telemetry:", err)
			}
		}()
	}
	if *selftest {
		return runSelftest(ctx, srv, out)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bcnd: listening on %s\n", ln.Addr())
	if startedHook != nil {
		startedHook(ln.Addr().String())
	}
	hs := newHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("bcnd: serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (503 + Retry-After), let accepted
	// jobs finish — every completed one is already fsynced in the
	// journal — then stop the listener. A clean drain exits 0; one that
	// outlives the deadline exits with the resumable status instead of
	// pretending it finished.
	fmt.Fprintln(out, "bcnd: signal received, draining")
	srv.Drain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.WaitIdle(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("%w: %v", runstate.ErrInterrupted, err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("%w: shutdown: %v", runstate.ErrInterrupted, err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return err
		}
	}
	st := srv.StatusSnapshot()
	fmt.Fprintf(out, "bcnd: drained cleanly: accepted=%d completed=%d failed=%d shed=%d artifacts=%d\n",
		st.Accepted, st.Completed, st.Failed, st.Shed, st.JournalLen)
	return nil
}

// parseTenantWeights parses the -tenant-weights flag: comma-separated
// name=weight pairs, e.g. "acme=3,batchfarm=0.5". Weights must be
// positive; unnamed tenants keep the default weight of 1.
func parseTenantWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("-tenant-weights %q: want name=weight pairs", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights %q: weight must be a positive number", pair)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

// runSelftest drives canary jobs of every kind through the full HTTP
// stack on an ephemeral port: success, byte-identical resubmit,
// malformed rejection and the health endpoints. It is the deploy-time
// "is this binary sane" check.
func runSelftest(ctx context.Context, srv *serve.Server, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := newHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	canaries := []struct {
		name string
		spec serve.Spec
	}{
		{"solve", serve.Spec{Kind: serve.KindSolve, Solve: &serve.SolveSpec{Params: core.PaperExample()}}},
		{"sweep", serve.Spec{Kind: serve.KindSweep, Sweep: &serve.SweepSpec{
			BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 1.0 / 512, GdHi: 0.1, Steps: 2,
		}}},
		{"netsim", serve.Spec{Kind: serve.KindNetsim, Netsim: &serve.NetsimSpec{
			N: 4, Capacity: 1e9, BufferBits: 4e6, Q0: 5e5, DurationSec: 0.002, Seed: 1,
		}}},
	}
	for _, c := range canaries {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: selftest interrupted", runstate.ErrInterrupted)
		}
		body, err := json.Marshal(c.spec)
		if err != nil {
			return err
		}
		first, hdr, err := postOnce(ctx, base, body)
		if err != nil {
			return fmt.Errorf("selftest %s: %w", c.name, err)
		}
		again, hdr2, err := postOnce(ctx, base, body)
		if err != nil {
			return fmt.Errorf("selftest %s resubmit: %w", c.name, err)
		}
		if hdr2.Get("X-Cache") != "hit" || !bytes.Equal(first, again) {
			return fmt.Errorf("selftest %s: resubmit not served byte-identically from cache (cache=%q)", c.name, hdr2.Get("X-Cache"))
		}
		fmt.Fprintf(out, "bcnd: selftest ok: %s (key %s)\n", c.name, hdr.Get("X-Job-Key"))
	}
	// Malformed input must be a 400, never a 500.
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte("{{{")))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("selftest: malformed spec got %d, want 400", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/readyz", "/statusz", "/metrics", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("selftest: %s got %d", path, resp.StatusCode)
		}
	}
	fmt.Fprintln(out, "bcnd: selftest ok: malformed-rejection and health endpoints")
	return nil
}

func postOnce(ctx context.Context, base string, body []byte) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return raw, resp.Header, nil
}

// coordOptions carries the coordinator-mode flag values.
type coordOptions struct {
	addr          string
	workers       string
	journalDir    string
	shardSize     int
	leaseTimeout  time.Duration
	hbInterval    time.Duration
	maxSweeps     int
	drainTimeout  time.Duration
	auditFraction float64
	// HA replica options: -peers turns the coordinator into one replica
	// of a highly-available group (see DESIGN.md §5i).
	peers    string
	self     string
	leaseTTL time.Duration
}

// parseURLList splits a comma-separated base-URL list, trimming
// whitespace and trailing slashes and rejecting non-http(s) entries.
func parseURLList(flagName, raw string) ([]string, error) {
	var urls []string
	for _, u := range strings.Split(raw, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	for _, u := range urls {
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("%s: %q is not an http(s) base URL", flagName, u)
		}
	}
	return urls, nil
}

// runCoordinator serves the cluster coordinator until a signal drains
// it. The journal (when configured) makes sweeps crash-safe: a restart
// replays every journaled point and re-executes only what is missing.
func runCoordinator(ctx context.Context, opt coordOptions, out io.Writer) error {
	urls, err := parseURLList("-workers", opt.workers)
	if err != nil {
		return err
	}
	if len(urls) == 0 {
		return fmt.Errorf("-coordinator needs -workers with at least one worker base URL")
	}
	if opt.peers != "" {
		return runHACoordinator(ctx, opt, urls, out)
	}
	if opt.self != "" {
		return fmt.Errorf("-self only applies with -peers (coordinator HA)")
	}
	ccfg := cluster.Config{
		Workers:           urls,
		ShardSize:         opt.shardSize,
		LeaseTimeout:      opt.leaseTimeout,
		HeartbeatInterval: opt.hbInterval,
		AuditFraction:     opt.auditFraction,
		Log:               os.Stderr,
	}
	if opt.journalDir != "" {
		if err := runstate.EnsureWritableDir(opt.journalDir); err != nil {
			return fmt.Errorf("preflight: %w", err)
		}
		journal, err := runstate.OpenJournal(filepath.Join(opt.journalDir, runstate.JournalFileName))
		if err != nil {
			return err
		}
		defer journal.Close()
		if d := journal.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "bcnd: journal replay dropped %d corrupt records\n", d)
		}
		fmt.Fprintf(out, "bcnd: coordinator journal %s replayed %d records\n", journal.Path(), journal.Len())
		ccfg.Journal = journal
		ccfg.MapPath = filepath.Join(opt.journalDir, "map.csv")
	}
	coord, err := cluster.New(ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	csrv, err := cluster.NewServer(cluster.ServerConfig{
		Coordinator: coord,
		MaxSweeps:   opt.maxSweeps,
		Log:         os.Stderr,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bcnd: coordinating %d workers on %s\n", len(urls), ln.Addr())
	if startedHook != nil {
		startedHook(ln.Addr().String())
	}
	hs := newHTTPServer(csrv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("bcnd: serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "bcnd: signal received, draining coordinator")
	dctx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
	defer cancel()
	if err := csrv.Drain(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("%w: %v", runstate.ErrInterrupted, err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("%w: shutdown: %v", runstate.ErrInterrupted, err)
	}
	fmt.Fprintln(out, "bcnd: coordinator drained cleanly")
	return nil
}

// runHACoordinator serves one replica of a highly-available
// coordinator group: lease-based leader election against the worker
// fleet's witnesses, live journal replication to the peer replicas,
// and leadership reporting on /statusz (DESIGN.md §5i).
func runHACoordinator(ctx context.Context, opt coordOptions, workers []string, out io.Writer) error {
	peers, err := parseURLList("-peers", opt.peers)
	if err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("-peers lists no replica URLs")
	}
	if opt.self == "" {
		return fmt.Errorf("coordinator HA needs -self, this replica's advertised base URL")
	}
	self, err := parseURLList("-self", opt.self)
	if err != nil || len(self) != 1 {
		return fmt.Errorf("-self %q: want exactly one http(s) base URL", opt.self)
	}
	if opt.journalDir == "" {
		return fmt.Errorf("coordinator HA needs -journal: the replicated journal is what a successor resumes from")
	}
	if err := runstate.EnsureWritableDir(opt.journalDir); err != nil {
		return fmt.Errorf("preflight: %w", err)
	}
	journal, err := runstate.OpenJournal(filepath.Join(opt.journalDir, runstate.JournalFileName))
	if err != nil {
		return err
	}
	defer journal.Close()
	if d := journal.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "bcnd: journal replay dropped %d corrupt records\n", d)
	}
	fmt.Fprintf(out, "bcnd: replica journal %s replayed %d records\n", journal.Path(), journal.Len())

	node, err := cluster.NewHANode(cluster.HAConfig{
		Self:      self[0],
		Peers:     peers,
		Workers:   workers,
		LeaseTTL:  opt.leaseTTL,
		Journal:   journal,
		MaxSweeps: opt.maxSweeps,
		Log:       os.Stderr,
		Coordinator: cluster.Config{
			ShardSize:         opt.shardSize,
			LeaseTimeout:      opt.leaseTimeout,
			HeartbeatInterval: opt.hbInterval,
			AuditFraction:     opt.auditFraction,
			MapPath:           filepath.Join(opt.journalDir, "map.csv"),
			Log:               os.Stderr,
		},
	})
	if err != nil {
		return err
	}
	defer node.Close()

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bcnd: HA replica %s on %s (%d peers, %d workers, lease %s)\n",
		self[0], ln.Addr(), len(peers), len(workers), opt.leaseTTL)
	if startedHook != nil {
		startedHook(ln.Addr().String())
	}
	hs := newHTTPServer(node.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("bcnd: serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "bcnd: signal received, stopping replica")
	// Stop leading first — a peer takes over within one lease TTL — then
	// close the listener. No drain: the group, not this process, owns
	// sweep completion.
	node.Close()
	dctx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("%w: shutdown: %v", runstate.ErrInterrupted, err)
	}
	fmt.Fprintln(out, "bcnd: replica stopped")
	return nil
}

// clientQoS is the QoS identity a client-mode submission carries:
// tenant key, scheduling class, and end-to-end deadline budget.
type clientQoS struct {
	tenant   string
	class    string
	deadline time.Duration
}

// clientPost submits the spec in file (or stdin for "-") and prints the
// raw artifact bytes to stdout; status metadata goes to stderr so the
// output stays byte-comparable between runs. A shed (429) or draining
// (503) response is retried up to retries extra times through a jittered
// RetryPacer, honoring the server's Retry-After feedback — the polite
// client behavior the serving layer's explicit-feedback design asks
// for. The deadline is fixed at the first attempt: each retry stamps
// the budget that remains, not a fresh one, so retries cannot extend
// what the caller granted. Other non-2xx responses become exit 1 with
// the server's error body.
func clientPost(ctx context.Context, base, file string, retries int, q clientQoS, out io.Writer) error {
	var body []byte
	var err error
	if file == "-" {
		body, err = io.ReadAll(os.Stdin)
	} else {
		body, err = os.ReadFile(file)
	}
	if err != nil {
		return err
	}
	var deadlineAt time.Time
	if q.deadline > 0 {
		deadlineAt = time.Now().Add(q.deadline)
	}
	pacer := cluster.NewRetryPacer(200*time.Millisecond, 15*time.Second, 0)
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if q.tenant != "" {
			req.Header.Set(qos.TenantHeader, q.tenant)
		}
		if q.class != "" {
			req.Header.Set(qos.ClassHeader, q.class)
		}
		if !deadlineAt.IsZero() {
			rem := time.Until(deadlineAt)
			if rem <= 0 {
				return fmt.Errorf("deadline budget spent before attempt %d", attempt+1)
			}
			req.Header.Set(qos.DeadlineHeader, qos.FormatDeadline(rem))
		}
		status, retryAfter, err := clientDo(req, out)
		if err == nil || status == 0 {
			return err // success, or a transport error retries won't help
		}
		// Only shed (429) and draining (503) are worth retrying here: a
		// 504 means the deadline budget is already doomed, and anything
		// else is a real answer.
		if attempt >= retries || (status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable) {
			return err
		}
		// The pacer jitters the server's hint up to +25% so a herd of shed
		// clients does not re-collide on the same instant — the retry
		// analogue of damping the gains.
		wait := pacer.Next(retryAfter)
		fmt.Fprintf(os.Stderr, "bcnd: shed with %d; retry %d/%d in %s\n", status, attempt+1, retries, wait.Round(time.Millisecond))
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return fmt.Errorf("%w: request cancelled", runstate.ErrInterrupted)
		}
	}
}

// clientGet fetches a completed artifact by key.
func clientGet(ctx context.Context, base, key string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+key, nil)
	if err != nil {
		return err
	}
	_, _, err = clientDo(req, out)
	return err
}

// clientDo performs one request. status is 0 for transport errors;
// retryAfter is the server's Retry-After hint, when present.
func clientDo(req *http.Request, out io.Writer) (status int, retryAfter time.Duration, err error) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return 0, 0, fmt.Errorf("%w: request cancelled", runstate.ErrInterrupted)
		}
		return 0, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, 0, err
	}
	fmt.Fprintf(os.Stderr, "bcnd: status=%d cache=%s key=%s retry-after=%s\n",
		resp.StatusCode, resp.Header.Get("X-Cache"), resp.Header.Get("X-Job-Key"), resp.Header.Get("Retry-After"))
	if secs, perr := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); perr == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, retryAfter, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	_, err = out.Write(raw)
	return resp.StatusCode, retryAfter, err
}
