package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bcnphase/internal/core"
	"bcnphase/internal/serve"
)

// startServer runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that triggers the graceful drain and returns
// run's error.
func startServer(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	startedHook = func(addr string) { addrCh <- addr }
	t.Cleanup(func() { startedHook = nil })

	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, &out) }()

	select {
	case addr := <-addrCh:
		stop := func() error {
			cancel()
			select {
			case err := <-errCh:
				if !strings.Contains(out.String(), "drained cleanly") && err == nil {
					t.Errorf("clean exit without drain summary:\n%s", out.String())
				}
				return err
			case <-time.After(10 * time.Second):
				t.Fatal("server did not exit after drain")
				return nil
			}
		}
		t.Cleanup(func() { cancel(); <-time.After(0) })
		return "http://" + addr, stop
	case err := <-errCh:
		cancel()
		t.Fatalf("server died before binding: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server never bound")
		return "", nil
	}
}

func solveBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(serve.Spec{Kind: serve.KindSolve, Solve: &serve.SolveSpec{Params: core.PaperExample()}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeSubmitAndGracefulDrain(t *testing.T) {
	base, stop := startServer(t)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(solveBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	// The signal-driven drain must return nil — the process exits 0.
	if err := stop(); err != nil {
		t.Fatalf("graceful drain returned error: %v", err)
	}
}

func TestJournalSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := solveBody(t)

	base, stop := startServer(t, "-journal", dir)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	first := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, first)
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A restarted daemon answers the resubmit from the journal without
	// re-executing, byte-identically.
	base2, stop2 := startServer(t, "-journal", dir)
	resp2, err := http.Post(base2+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	second := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("restart resubmit: status %d cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Error("artifact not byte-identical across restart")
	}
	if err := stop2(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestSelftest(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-selftest"}, &out); err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"selftest ok: solve", "selftest ok: sweep", "selftest ok: netsim", "malformed-rejection"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("selftest output missing %q:\n%s", want, out.String())
		}
	}
}

func TestClientPostAndGet(t *testing.T) {
	base, stop := startServer(t)
	defer stop()

	specFile := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(specFile, solveBody(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var posted bytes.Buffer
	if err := run(context.Background(), []string{"-url", base, "-post", specFile}, &posted); err != nil {
		t.Fatalf("-post: %v", err)
	}
	var art serve.Artifact
	if err := json.Unmarshal(posted.Bytes(), &art); err != nil {
		t.Fatalf("-post output not an artifact: %v", err)
	}
	var got bytes.Buffer
	if err := run(context.Background(), []string{"-url", base, "-get", art.Key}, &got); err != nil {
		t.Fatalf("-get: %v", err)
	}
	if !bytes.Equal(posted.Bytes(), got.Bytes()) {
		t.Error("-get bytes differ from -post bytes")
	}
}

func TestFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag": {"-definitely-not-a-flag"},
		"bad policy":   {"-invariants", "loose"},
		"post and get": {"-post", "a", "-get", "b"},
		"missing spec": {"-post", filepath.Join(t.TempDir(), "absent.json")},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeMetricsAndTelemetryDump exercises the live /metrics endpoint
// and the -telemetry drain dump in one server lifetime.
func TestServeMetricsAndTelemetryDump(t *testing.T) {
	dir := t.TempDir()
	base, stop := startServer(t, "-telemetry", dir)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(solveBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if rid := resp.Header.Get("X-Request-ID"); rid == "" {
		t.Error("job response missing X-Request-ID")
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, mresp))
	for _, want := range []string{
		"serve_accepted_total 1",
		"# TYPE serve_queue_depth gauge",
		"serve_uptime_seconds",
		`serve_job_seconds_count{kind="solve"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
	if err != nil {
		t.Fatalf("telemetry.json not written at drain: %v", err)
	}
	var sum struct {
		Tool string `json:"tool"`
	}
	if err := json.Unmarshal(raw, &sum); err != nil || sum.Tool != "bcnd" {
		t.Fatalf("telemetry.json tool = %q, err %v", sum.Tool, err)
	}
	if !strings.Contains(string(raw), "serve_completed_total") {
		t.Error("dump lacks serve counters")
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.jsonl")); err != nil {
		t.Errorf("trace.jsonl not written: %v", err)
	}
}

// TestQoSFlagsEndToEnd boots the daemon with the closed-loop QoS layer
// on and drives it with the client-mode QoS flags: the artifact comes
// back, the response carries the advertised-rate and brownout headers,
// and /metrics exports the qos_* series.
func TestQoSFlagsEndToEnd(t *testing.T) {
	base, stop := startServer(t,
		"-qos", "-tenant-weights", "acme=3,batch=0.5", "-cache-bytes", "1048576")
	specFile := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(specFile, solveBody(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var posted bytes.Buffer
	err := run(context.Background(), []string{
		"-url", base, "-post", specFile,
		"-tenant", "acme", "-qos-class", "interactive", "-deadline", "30s",
	}, &posted)
	if err != nil {
		t.Fatalf("-post with QoS flags: %v", err)
	}
	var art serve.Artifact
	if err := json.Unmarshal(posted.Bytes(), &art); err != nil {
		t.Fatalf("-post output not an artifact: %v", err)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(solveBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.Header.Get("Bcn-Advertised-Rate") == "" {
		t.Error("QoS server did not stamp Bcn-Advertised-Rate")
	}
	if got := resp.Header.Get("Bcn-Brownout-Level"); got != "full" {
		t.Errorf("Bcn-Brownout-Level = %q, want full", got)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, mresp))
	for _, want := range []string{"qos_admitted_total", "qos_advertised_rate"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestTenantWeightsFlagParsing pins the -tenant-weights grammar.
func TestTenantWeightsFlagParsing(t *testing.T) {
	got, err := parseTenantWeights("acme=3, batch=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got["acme"] != 3 || got["batch"] != 0.5 {
		t.Errorf("parsed %v", got)
	}
	if w, err := parseTenantWeights(""); err != nil || w != nil {
		t.Errorf("empty flag: %v %v", w, err)
	}
	for _, bad := range []string{"acme", "acme=", "acme=0", "acme=-1", "acme=heavy"} {
		if _, err := parseTenantWeights(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
