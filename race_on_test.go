//go:build race

package bcnphase_test

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive assertions skip under it.
const raceEnabled = true
