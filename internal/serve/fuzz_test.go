package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// FuzzDecodeSpec hammers the job-spec decoder with arbitrary bytes. The
// contract under fuzzing is the serving layer's 400-vs-500 boundary:
// every rejection must wrap ErrSpec (the handler's 400 path), never
// panic, and every accepted spec must be hashable, region-bucketable
// and stable under a re-encode round trip — otherwise a malformed
// request could reach a worker or split the dedup key space.
func FuzzDecodeSpec(f *testing.F) {
	seeds := []string{
		// Valid specs of each kind.
		`{"kind":"solve","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		`{"kind":"sweep","sweep":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}}`,
		`{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":0.002}}`,
		`{"kind":"shard","shard":{"grid":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":2},"index":0,"points":[{"gi":0.05,"gd":0.001},{"gi":0.05,"gd":0.1}]}}`,
		// Broken physics admissible only under an explicit checked policy.
		`{"kind":"solve","invariants":"strict","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":-1,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		// Execution knobs and optional fields.
		`{"kind":"solve","timeout_ms":250,"invariants":"record","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6},"start":[-2.5e6,0],"max_arcs":10}}`,
		`{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":0.002,"pause":true,"faults":{"Seed":7,"FeedbackLoss":0.3}}}`,
		// The classic rejects.
		``, `null`, `"solve"`, `[1,2,3]`, `{{{`,
		`{"kind":"dance"}`,
		`{"kind":"solve"}`,
		`{"kind":"solve","bogus":1}`,
		`{"kind":"solve","solve":{"params":{"N":-1}}}`,
		`{"kind":"solve","timeout_ms":-5,"solve":{}}`,
		`{"kind":"sweep","sweep":{"b_over_q0":5,"gi_lo":1e999,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}}`,
		`{"kind":"sweep","sweep":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":4096}}`,
		`{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":3600}}`,
		`{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":0.002,"faults":{"FeedbackLoss":2}}}`,
		`{"kind":"solve","solve":{"params":{"N":50}}} trailing`,
		// Shard rejects: spec-level policy (the grid carries it), bad index,
		// empty point list.
		`{"kind":"shard","invariants":"record","shard":{"grid":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":2},"index":0,"points":[{"gi":0.05,"gd":0.001}]}}`,
		`{"kind":"shard","shard":{"grid":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":2},"index":-1,"points":[{"gi":0.05,"gd":0.001}]}}`,
		`{"kind":"shard","shard":{"grid":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":2},"index":0,"points":[]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		sp, err := DecodeSpec(bytes.NewReader(body), DefaultMaxBodyBytes)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("rejection does not wrap ErrSpec (handler would 500, not 400): %v", err)
			}
			return
		}
		key, err := sp.Key()
		if err != nil || len(key) != 64 {
			t.Fatalf("accepted spec has no dedup key: %q, %v", key, err)
		}
		if sp.RegionKey() == "" {
			t.Fatal("accepted spec has empty breaker region")
		}
		if d := sp.Timeout(time.Second, time.Minute); d <= 0 || d > time.Minute {
			t.Fatalf("accepted spec resolves timeout %v outside (0, cap]", d)
		}
		// Round trip: the spec's own encoding must decode to the same
		// dedup key, or a resubmitted job would miss its cached artifact.
		again, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		sp2, err := DecodeSpec(bytes.NewReader(again), DefaultMaxBodyBytes)
		if err != nil {
			t.Fatalf("re-encoded accepted spec rejected: %v", err)
		}
		if key2, _ := sp2.Key(); key2 != key {
			t.Fatalf("dedup key unstable across re-encode: %s vs %s", key, key2)
		}
	})
}
