// Package serve is the long-lived serving layer of the repository: an
// HTTP job service (cmd/bcnd) that accepts simulation, sweep and
// phase-trajectory requests as validated JSON job specs, executes them
// on a supervised worker pool, and stays healthy under overload and
// partial failure.
//
// The robustness discipline mirrors the paper's own subject. Theorem 1
// is a "never overflow" criterion — keep the queue strictly inside
// (0, B) under bursty arrivals — and the serving layer applies the same
// rule to itself: the admission queue is bounded, requests beyond the
// bound are shed *before* they can overflow memory or starve in-flight
// work, and shed responses carry explicit feedback (429, Retry-After,
// live queue depth and utilization) in the spirit of RCP-style explicit
// rate feedback, so clients back off by instruction instead of by
// timeout. The other guarantees:
//
//   - Supervised execution: every job runs through sweep.One, so a
//     poisoned job (panic, hang, strict invariant abort) kills the job,
//     never the pool.
//   - Deadlines: each job gets a context deadline (spec timeout_ms
//     capped by the server maximum) propagated into netsim/sweep/solve.
//   - Circuit breaker: parameter regions that repeatedly abort under the
//     strict invariant policy are quarantined for a cooldown, failing
//     fast instead of burning workers on known-bad inputs.
//   - Idempotent dedup: specs are keyed by a runstate content hash;
//     resubmitting a completed job returns the journaled artifact
//     byte-identically, and concurrent duplicates coalesce onto one
//     execution.
//   - Graceful drain: Drain stops admission while accepted jobs finish,
//     so a SIGTERM never drops work the server said yes to.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"bcnphase/internal/analytic"
	"bcnphase/internal/cluster"
	"bcnphase/internal/core"
	"bcnphase/internal/faults"
	"bcnphase/internal/invariant"
	"bcnphase/internal/netsim"
	"bcnphase/internal/runstate"
)

// ErrSpec wraps every job-spec validation failure; handlers map it to
// HTTP 400.
var ErrSpec = errors.New("serve: invalid job spec")

// Job kinds accepted by the service.
const (
	// KindSolve solves one stitched closed-form trajectory (core.Solve).
	KindSolve = "solve"
	// KindSweep evaluates a (Gi, Gd) gain-plane grid (internal/sweep).
	KindSweep = "sweep"
	// KindNetsim runs the packet-level simulator (internal/netsim),
	// optionally with injected faults (internal/faults).
	KindNetsim = "netsim"
	// KindShard evaluates one shard of a cluster gain-plane sweep
	// (internal/cluster): a subset of a grid's points, dispatched by a
	// bcnd coordinator. Shard jobs ride the same admission control,
	// supervision, dedup and journal as every other kind.
	KindShard = "shard"
)

// Limits that keep a single job's resource appetite bounded no matter
// what the client asks for.
const (
	// MaxSweepSteps caps the per-axis resolution of a sweep job
	// (MaxSweepSteps² grid points).
	MaxSweepSteps = 32
	// MaxNetsimDuration caps the simulated time of a netsim job in
	// seconds.
	MaxNetsimDuration = 5.0
	// MaxNetsimSources caps the source count of a netsim job.
	MaxNetsimSources = 1024
	// DefaultMaxBodyBytes bounds the request body the decoder will read.
	DefaultMaxBodyBytes = 1 << 20
)

// Spec is one job request. Exactly one of Solve, Sweep, Netsim must be
// set, matching Kind.
type Spec struct {
	// Kind selects the job type: "solve", "sweep" or "netsim".
	Kind string `json:"kind"`
	// TimeoutMs is the requested wall-clock budget in milliseconds; 0
	// uses the server default, and the server maximum always caps it.
	// The timeout is an execution knob: it does not change the result,
	// so it is excluded from the job's dedup identity.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Invariants is the runtime invariant policy for the job ("off",
	// "record", "strict", "clamp"); empty uses the server default.
	// Unlike the timeout it shapes the result, so it is part of the
	// dedup identity.
	Invariants string `json:"invariants,omitempty"`
	// Analytic selects the solve engine for solve and sweep jobs ("on",
	// "auto", "off"); empty uses the server default. On/auto runs the
	// sampling-free closed-form engine (internal/analytic) whenever the
	// effective invariant policy is off; "off" keeps the classic sampled
	// core.Solve. It shapes the artifact (exact versus sampled extrema),
	// so it is part of the dedup identity. Shard jobs carry the mode
	// inside the grid instead, like the invariant policy.
	Analytic string `json:"analytic,omitempty"`

	Solve  *SolveSpec         `json:"solve,omitempty"`
	Sweep  *SweepSpec         `json:"sweep,omitempty"`
	Netsim *NetsimSpec        `json:"netsim,omitempty"`
	Shard  *cluster.ShardSpec `json:"shard,omitempty"`
}

// SolveSpec requests one stitched trajectory of the switched fluid
// model.
type SolveSpec struct {
	// Params is the full parameter set. It must pass core.Params
	// validation unless the spec explicitly names a non-off invariant
	// policy: under record/clamp core.Solve integrates through broken
	// parameters while tallying the breakage, and under strict it
	// aborts with a structured violation — which is exactly what feeds
	// the serving layer's circuit breaker.
	Params core.Params `json:"params"`
	// Start optionally overrides the initial state (x0, y0) in shifted
	// coordinates; nil means the canonical (−q0, 0).
	Start *[2]float64 `json:"start,omitempty"`
	// MaxArcs optionally bounds the stitched arc count (0 = default).
	MaxArcs int `json:"max_arcs,omitempty"`
}

// SweepSpec requests a gain-plane stability map, the serving-layer
// equivalent of cmd/bcnsweep's grid.
type SweepSpec struct {
	// BOverQ0 sets the buffer as a multiple of q0 (must leave B > q0).
	BOverQ0 float64 `json:"b_over_q0"`
	// GiLo, GiHi, GdLo, GdHi bound the geometric gain axes.
	GiLo float64 `json:"gi_lo"`
	GiHi float64 `json:"gi_hi"`
	GdLo float64 `json:"gd_lo"`
	GdHi float64 `json:"gd_hi"`
	// Steps is the per-axis resolution (2..MaxSweepSteps).
	Steps int `json:"steps"`
}

// NetsimSpec requests a packet-level dumbbell simulation.
type NetsimSpec struct {
	N            int     `json:"n"`
	Capacity     float64 `json:"capacity"`
	LineRate     float64 `json:"line_rate,omitempty"`
	FrameBits    float64 `json:"frame_bits,omitempty"`
	BufferBits   float64 `json:"buffer_bits"`
	Q0           float64 `json:"q0"`
	W            float64 `json:"w,omitempty"`
	Pm           float64 `json:"pm,omitempty"`
	Ru           float64 `json:"ru,omitempty"`
	Gi           float64 `json:"gi,omitempty"`
	Gd           float64 `json:"gd,omitempty"`
	InitialRate  float64 `json:"initial_rate,omitempty"`
	PropDelaySec float64 `json:"prop_delay_sec,omitempty"`
	DurationSec  float64 `json:"duration_sec"`
	Seed         int64   `json:"seed,omitempty"`
	Pause        bool    `json:"pause,omitempty"`
	// Faults optionally injects the deterministic fault plan; it must
	// pass faults.Config validation.
	Faults *faults.Config `json:"faults,omitempty"`
}

// DecodeSpec reads one job spec from r, rejecting unknown fields,
// trailing data, bodies beyond maxBytes and anything that fails
// Validate. It never panics on arbitrary input (fuzzed in
// fuzz_test.go); every failure wraps ErrSpec.
func DecodeSpec(r io.Reader, maxBytes int64) (Spec, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	// Limit to maxBytes+1, not maxBytes: when r is a MaxBytesReader with
	// the same budget, the read of the overflowing byte is what produces
	// the typed *http.MaxBytesError — truncating exactly at the budget
	// would swallow it into a generic unexpected-EOF decode failure.
	dec := json.NewDecoder(io.LimitReader(r, maxBytes+1))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		// Double-wrap so a typed decode failure (*http.MaxBytesError from
		// a MaxBytesReader-wrapped body) stays reachable via errors.As —
		// the handler maps it to 413, not a generic 400.
		return Spec{}, fmt.Errorf("%w: %w", ErrSpec, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: trailing data after job spec", ErrSpec)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Validate checks the spec's structural and physical feasibility.
func (sp Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if _, err := invariant.ParsePolicy(sp.Invariants); err != nil {
		return fail("%v", err)
	}
	if _, err := analytic.ParseMode(sp.Analytic); err != nil {
		return fail("%v", err)
	}
	if sp.TimeoutMs < 0 {
		return fail("timeout_ms=%d must be non-negative", sp.TimeoutMs)
	}
	set := 0
	if sp.Solve != nil {
		set++
	}
	if sp.Sweep != nil {
		set++
	}
	if sp.Netsim != nil {
		set++
	}
	if sp.Shard != nil {
		set++
	}
	if set != 1 {
		return fail("exactly one of solve, sweep, netsim, shard must be set (got %d)", set)
	}
	switch sp.Kind {
	case KindSolve:
		if sp.Solve == nil {
			return fail("kind %q requires the solve body", sp.Kind)
		}
		pol, _ := invariant.ParsePolicy(sp.Invariants)
		return sp.Solve.validate(pol)
	case KindSweep:
		if sp.Sweep == nil {
			return fail("kind %q requires the sweep body", sp.Kind)
		}
		return sp.Sweep.validate()
	case KindNetsim:
		if sp.Netsim == nil {
			return fail("kind %q requires the netsim body", sp.Kind)
		}
		return sp.Netsim.validate()
	case KindShard:
		if sp.Shard == nil {
			return fail("kind %q requires the shard body", sp.Kind)
		}
		if sp.Invariants != "" {
			// The grid's Invariants field is part of the shard's dedup
			// identity; a second spec-level policy would be ambiguous.
			return fail("shard jobs carry the invariant policy in the grid, not the spec")
		}
		if sp.Analytic != "" {
			// Likewise the engine mode: it lives in the grid fingerprint so
			// every worker in a cluster evaluates rows the same way.
			return fail("shard jobs carry the analytic mode in the grid, not the spec")
		}
		if err := sp.Shard.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return nil
	default:
		return fail("unknown kind %q (want solve, sweep, netsim or shard)", sp.Kind)
	}
}

func (s *SolveSpec) validate(pol invariant.Policy) error {
	if err := s.Params.Validate(); err != nil && pol == invariant.Off {
		return fmt.Errorf("%w: solve: %v", ErrSpec, err)
	}
	// Even under a checked policy the raw numbers must be finite-ish
	// enough to hash and bucket deterministically.
	for _, v := range []float64{s.Params.C, s.Params.Ru, s.Params.Gi, s.Params.Gd, s.Params.W, s.Params.Pm, s.Params.Q0, s.Params.B, s.Params.Qsc} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: solve: non-finite parameter %v", ErrSpec, v)
		}
	}
	if s.Start != nil {
		if !finite(s.Start[0]) || !finite(s.Start[1]) {
			return fmt.Errorf("%w: solve: start must be finite, got (%v, %v)", ErrSpec, s.Start[0], s.Start[1])
		}
	}
	if s.MaxArcs < 0 {
		return fmt.Errorf("%w: solve: max_arcs=%d must be non-negative", ErrSpec, s.MaxArcs)
	}
	return nil
}

func (s *SweepSpec) validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: sweep: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if s.Steps < 2 || s.Steps > MaxSweepSteps {
		return fail("steps=%d must be in [2, %d]", s.Steps, MaxSweepSteps)
	}
	for _, b := range []struct {
		name string
		v    float64
	}{
		{"b_over_q0", s.BOverQ0},
		{"gi_lo", s.GiLo}, {"gi_hi", s.GiHi},
		{"gd_lo", s.GdLo}, {"gd_hi", s.GdHi},
	} {
		if !finite(b.v) || b.v <= 0 {
			return fail("%s=%v must be positive and finite", b.name, b.v)
		}
	}
	if s.BOverQ0 <= 1 {
		return fail("b_over_q0=%v leaves B <= q0", s.BOverQ0)
	}
	return nil
}

func (s *NetsimSpec) validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: netsim: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if s.N <= 0 || s.N > MaxNetsimSources {
		return fail("n=%d must be in [1, %d]", s.N, MaxNetsimSources)
	}
	if !finite(s.DurationSec) || s.DurationSec <= 0 || s.DurationSec > MaxNetsimDuration {
		return fail("duration_sec=%v must be in (0, %v]", s.DurationSec, MaxNetsimDuration)
	}
	if !finite(s.PropDelaySec) || s.PropDelaySec < 0 {
		return fail("prop_delay_sec=%v must be non-negative and finite", s.PropDelaySec)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: netsim: %v", ErrSpec, err)
		}
	}
	// Everything else (capacity, buffer, gains, rates) goes through the
	// simulator's own Config.Validate so the service and the CLI agree
	// on what a runnable scenario is.
	cfg := s.config(invariant.Off)
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: netsim: %v", ErrSpec, err)
	}
	return nil
}

// config materializes the netsim configuration, filling the same
// defaults cmd/bcnsim would.
func (s *NetsimSpec) config(pol invariant.Policy) netsim.Config {
	cfg := netsim.Config{
		N: s.N, Capacity: s.Capacity, LineRate: s.LineRate,
		FrameBits: s.FrameBits, BufferBits: s.BufferBits,
		PropDelay:   netsim.FromSeconds(s.PropDelaySec),
		InitialRate: s.InitialRate,
		BCN:         true,
		Q0:          s.Q0, W: s.W, Pm: s.Pm, Ru: s.Ru, Gi: s.Gi, Gd: s.Gd,
		Seed:       s.Seed,
		Faults:     s.Faults,
		Invariants: pol,
	}
	if cfg.LineRate == 0 {
		cfg.LineRate = cfg.Capacity
	}
	if cfg.FrameBits == 0 {
		cfg.FrameBits = 12000
	}
	if cfg.W == 0 {
		cfg.W = core.DefaultW
	}
	if cfg.Pm == 0 {
		cfg.Pm = 0.2
	}
	if cfg.Ru == 0 {
		cfg.Ru = core.DefaultRu
	}
	if cfg.Gi == 0 {
		cfg.Gi = 0.05
	}
	if cfg.Gd == 0 {
		cfg.Gd = core.DefaultGd
	}
	if cfg.InitialRate == 0 {
		cfg.InitialRate = cfg.Capacity / float64(2*cfg.N)
	}
	if s.Pause {
		cfg.Pause = true
		cfg.Qsc = 0.75 * cfg.BufferBits
		cfg.PauseDuration = netsim.FromSeconds(50e-6)
	}
	return cfg
}

// specIdentity is the hashed dedup identity of a job: everything that
// shapes the artifact bytes, nothing that does not. Format bumps when
// any artifact layout changes, invalidating old journal entries instead
// of replaying them in the wrong shape.
type specIdentity struct {
	Format     int
	Kind       string
	Invariants string
	Analytic   string
	Solve      *SolveSpec
	Sweep      *SweepSpec
	Netsim     *NetsimSpec
	// Shard is omitted when nil so the identity bytes (and therefore the
	// journal keys) of every pre-existing kind are unchanged.
	Shard *cluster.ShardSpec `json:"Shard,omitempty"`
}

// artifactFormat versions every artifact layout served by this package.
// Format 2: shard results carry the row_sums/digest integrity envelope
// (cluster.SignShardResult), so pre-digest journal artifacts re-execute
// instead of replaying unsigned.
// Format 3: solve and sweep artifacts may come from the analytic engine
// (exact extrema, engine tag), so the engine mode joins the identity
// and pre-engine journal artifacts re-execute instead of replaying in
// the sampled shape.
const artifactFormat = 3

// Key returns the spec's content-hash dedup key: the hex SHA-256 of the
// canonical identity. Execution knobs (timeout_ms) are excluded, so the
// same scientific request always maps to the same artifact; the
// invariant policy is included because it changes results.
func (sp Spec) Key() (string, error) {
	pol, err := invariant.ParsePolicy(sp.Invariants)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	mode, err := analytic.ParseMode(sp.Analytic)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return runstate.HashJSON(specIdentity{
		Format:     artifactFormat,
		Kind:       sp.Kind,
		Invariants: pol.String(),  // normalize "" and "none" to "off"
		Analytic:   mode.String(), // normalize "" to "on"
		Solve:      sp.Solve,
		Sweep:      sp.Sweep,
		Netsim:     sp.Netsim,
		Shard:      sp.Shard,
	})
}

// Timeout resolves the job's wall-clock budget against the server's
// default and cap.
func (sp Spec) Timeout(def, max time.Duration) time.Duration {
	d := time.Duration(sp.TimeoutMs) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// RegionKey buckets the spec's parameter region for the circuit
// breaker: jobs whose gains land in the same binary-log buckets share a
// quarantine, so one poisoned corner of the gain plane is isolated
// without blacklisting unrelated work. The key is coarse on purpose —
// the breaker protects capacity, not correctness.
func (sp Spec) RegionKey() string {
	switch sp.Kind {
	case KindSolve:
		return fmt.Sprintf("solve:gi=%d:gd=%d:n=%d", logBucket(sp.Solve.Params.Gi), logBucket(sp.Solve.Params.Gd), sp.Solve.Params.N)
	case KindSweep:
		return fmt.Sprintf("sweep:gi=%d..%d:gd=%d..%d", logBucket(sp.Sweep.GiLo), logBucket(sp.Sweep.GiHi), logBucket(sp.Sweep.GdLo), logBucket(sp.Sweep.GdHi))
	case KindNetsim:
		return fmt.Sprintf("netsim:gi=%d:gd=%d:n=%d", logBucket(sp.Netsim.Gi), logBucket(sp.Netsim.Gd), sp.Netsim.N)
	case KindShard:
		g := sp.Shard.Grid
		return fmt.Sprintf("shard:gi=%d..%d:gd=%d..%d", logBucket(g.GiLo), logBucket(g.GiHi), logBucket(g.GdLo), logBucket(g.GdHi))
	default:
		return "unknown"
	}
}

// logBucket maps a positive value to its binary-log bucket; zero and
// non-finite values get sentinel buckets so RegionKey never panics on a
// spec that slipped past validation.
func logBucket(v float64) int {
	if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
		return math.MinInt32
	}
	return int(math.Floor(math.Log2(v)))
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
