package serve

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func newTestBreaker(clk *fakeClock) *Breaker { return NewBreaker(3, 30*time.Second, clk.now) }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	const region = "solve:gi=2:gd=-8:n=50"
	for i := 0; i < 2; i++ {
		b.Failure(region)
		if ok, _ := b.Allow(region); !ok {
			t.Fatalf("opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure(region)
	ok, retry := b.Allow(region)
	if ok {
		t.Fatal("region still admitting after threshold failures")
	}
	if retry <= 0 || retry > 30*time.Second {
		t.Errorf("retry hint %v outside (0, cooldown]", retry)
	}
	// Other regions are unaffected.
	if ok, _ := b.Allow("netsim:gi=0:gd=0:n=4"); !ok {
		t.Error("unrelated region quarantined")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	const region = "r"
	b.Failure(region)
	b.Failure(region)
	b.Success(region)
	b.Failure(region)
	b.Failure(region)
	if ok, _ := b.Allow(region); !ok {
		t.Error("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	const region = "r"
	for i := 0; i < 3; i++ {
		b.Failure(region)
	}
	if ok, _ := b.Allow(region); ok {
		t.Fatal("open region admitted")
	}
	clk.advance(31 * time.Second)
	// First caller becomes the probe; the second waits.
	if ok, _ := b.Allow(region); !ok {
		t.Fatal("half-open region refused its probe")
	}
	if ok, retry := b.Allow(region); ok {
		t.Fatal("second caller admitted during probe")
	} else if retry <= 0 {
		t.Error("probe-blocked caller got no retry hint")
	}
	// Probe success closes the region.
	b.Success(region)
	if ok, _ := b.Allow(region); !ok {
		t.Error("closed region refused work")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	const region = "r"
	for i := 0; i < 3; i++ {
		b.Failure(region)
	}
	clk.advance(31 * time.Second)
	if ok, _ := b.Allow(region); !ok {
		t.Fatal("probe refused")
	}
	b.Failure(region) // probe failed → immediate reopen
	if ok, _ := b.Allow(region); ok {
		t.Error("region closed after failed probe")
	}
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].Trips < 2 {
		t.Errorf("expected >=2 trips, snapshot %+v", snap)
	}
}

func TestBreakerReleaseKeepsHalfOpen(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	const region = "r"
	for i := 0; i < 3; i++ {
		b.Failure(region)
	}
	clk.advance(31 * time.Second)
	if ok, _ := b.Allow(region); !ok {
		t.Fatal("probe refused")
	}
	// The probe died for unrelated reasons (deadline); the next caller
	// must get to probe again rather than the region closing or jamming.
	b.Release(region)
	if ok, _ := b.Allow(region); !ok {
		t.Error("region jammed after released probe")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, time.Second, nil)
	for i := 0; i < 100; i++ {
		b.Failure("r")
	}
	if ok, _ := b.Allow("r"); !ok {
		t.Error("disabled breaker tripped")
	}
}

func TestBreakerSnapshotStates(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	b.Failure("warm")
	for i := 0; i < 3; i++ {
		b.Failure("open")
	}
	states := map[string]string{}
	for _, st := range b.Snapshot() {
		states[st.Region] = st.State
	}
	if states["warm"] != "closed" || states["open"] != "open" {
		t.Errorf("snapshot states %v", states)
	}
	clk.advance(31 * time.Second)
	for _, st := range b.Snapshot() {
		if st.Region == "open" && st.State != "half-open" {
			t.Errorf("cooled region state %s", st.State)
		}
	}
}
