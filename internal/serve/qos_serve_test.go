package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bcnphase/internal/qos"
	"bcnphase/internal/runstate"
)

// uniqueSolveSpec returns a solve spec with a distinct content key per i
// (MaxArcs is part of the spec hash), so tests can defeat the idempotent
// cache without building whole parameter sets. The offset keeps the
// values clear of the chaos-marker sentinels.
func uniqueSolveSpec(i int) Spec {
	sp := solveSpec()
	sp.Solve.MaxArcs = 1000 + i
	return sp
}

// postSpecHdr is postSpec with extra request headers.
func postSpecHdr(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestQoSHeaderStamping: every response from a QoS-enabled server
// advertises the admission rate and brownout rung, and /statusz grows a
// qos block; a server without QoS reports neither.
func TestQoSHeaderStamping(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, QoS: &qos.Config{TickInterval: -1}})
	resp := postSpec(t, ts.URL, marshalSpec(t, solveSpec()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	rate, err := strconv.ParseFloat(resp.Header.Get(qos.RateHeader), 64)
	if err != nil || rate <= 0 {
		t.Errorf("%s=%q, want positive float", qos.RateHeader, resp.Header.Get(qos.RateHeader))
	}
	if got := resp.Header.Get(qos.BrownoutHeader); got != "full" {
		t.Errorf("%s=%q, want full", qos.BrownoutHeader, got)
	}
	if resp.Header.Get(qos.StorageDegradedHeader) != "" {
		t.Errorf("healthy server stamped %s", qos.StorageDegradedHeader)
	}
	st := s.StatusSnapshot()
	if st.QoS == nil {
		t.Fatal("StatusSnapshot().QoS is nil with QoS enabled")
	}
	if st.QoS.BrownoutLevel != "full" || st.QoS.AdvertisedRate <= 0 || st.QoS.CapacityEstimate <= 0 {
		t.Errorf("qos status block = %+v", st.QoS)
	}

	plain, _ := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	if plain.StatusSnapshot().QoS != nil {
		t.Error("StatusSnapshot().QoS non-nil without QoS")
	}
}

// TestQoSMalformedHeadersRejected: garbage tenant/class/deadline headers
// are client errors — admission math never runs on unparseable keys.
func TestQoSMalformedHeadersRejected(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, QoS: &qos.Config{TickInterval: -1}})
	body := marshalSpec(t, solveSpec())
	for name, hdr := range map[string]map[string]string{
		"tenant bad byte": {qos.TenantHeader: "no spaces"},
		"tenant overlong": {qos.TenantHeader: strings.Repeat("a", 80)},
		"unknown class":   {qos.ClassHeader: "platinum"},
		"deadline text":   {qos.DeadlineHeader: "soon"},
		"deadline zero":   {qos.DeadlineHeader: "0"},
		"deadline neg":    {qos.DeadlineHeader: "-50"},
	} {
		resp := postSpecHdr(t, ts.URL, body, hdr)
		var eb errorBody
		if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusBadRequest || eb.Reason != "malformed-qos-header" {
			t.Errorf("%s: status %d reason %q", name, resp.StatusCode, eb.Reason)
		}
	}
}

// TestQoSDeadlineDoomedSheds: a request whose remaining budget is inside
// the hop margin is answered 504 up front, before it can occupy a queue
// slot or worker.
func TestQoSDeadlineDoomedSheds(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, QoS: &qos.Config{TickInterval: -1}})
	resp := postSpecHdr(t, ts.URL, marshalSpec(t, solveSpec()), map[string]string{qos.DeadlineHeader: "10"})
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout || eb.Reason != "deadline-doomed" {
		t.Fatalf("status %d reason %q, want 504 deadline-doomed", resp.StatusCode, eb.Reason)
	}
	if got := s.qos.metrics.DeadlineDoom.Value(); got != 1 {
		t.Errorf("qos_deadline_doomed = %d, want 1", got)
	}
}

// TestQoSDeadlineCancelsRunningJob: a propagated deadline caps the
// solver context, so a job that outruns its budget is cancelled
// mid-execution and classified as a deadline failure — not left running
// to be thrown away.
func TestQoSDeadlineCancelsRunningJob(t *testing.T) {
	checkGoroutines(t)
	installChaosHook(t)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, QoS: &qos.Config{TickInterval: -1}})
	sp := solveSpec()
	sp.Solve.MaxArcs = markSlow // 200ms of work against a 100ms budget
	resp := postSpecHdr(t, ts.URL, marshalSpec(t, sp), map[string]string{qos.DeadlineHeader: "100"})
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout || eb.Reason != "deadline" {
		t.Fatalf("status %d reason %q, want 504 deadline", resp.StatusCode, eb.Reason)
	}
}

// TestQoSBrownoutLadderGates walks the ladder rung by rung and checks
// what each sheds: NoNewSweeps drops sweeps but runs solves, CachedOnly
// serves hits only, Drain serves nothing — and /readyz flips unready
// from CachedOnly up.
func TestQoSBrownoutLadderGates(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, QoS: &qos.Config{TickInterval: -1}})

	cached := marshalSpec(t, uniqueSolveSpec(1))
	if resp := postSpec(t, ts.URL, cached); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up solve: %d", resp.StatusCode)
	}

	shedReason := func(resp *http.Response) string {
		t.Helper()
		var eb errorBody
		if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
			t.Fatal(err)
		}
		return eb.Reason
	}

	// NoNewSweeps: queue at 80% of capacity.
	if lvl := s.qos.wd.Observe(0.80); lvl != qos.NoNewSweeps {
		t.Fatalf("Observe(0.80) = %v", lvl)
	}
	if resp := postSpec(t, ts.URL, marshalSpec(t, sweepSpec())); resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("Retry-After") == "" || shedReason(resp) != "brownout" {
		t.Errorf("sweep at no-new-sweeps: status %d", resp.StatusCode)
	}
	if resp := postSpec(t, ts.URL, marshalSpec(t, uniqueSolveSpec(2))); resp.StatusCode != http.StatusOK {
		t.Errorf("solve at no-new-sweeps: status %d", resp.StatusCode)
	}

	// CachedOnly: queue essentially full.
	if lvl := s.qos.wd.Observe(0.96); lvl != qos.CachedOnly {
		t.Fatalf("Observe(0.96) = %v", lvl)
	}
	if resp := postSpec(t, ts.URL, marshalSpec(t, uniqueSolveSpec(3))); resp.StatusCode != http.StatusServiceUnavailable ||
		shedReason(resp) != "brownout" {
		t.Errorf("miss at cached-only: status %d", resp.StatusCode)
	}
	if resp := postSpec(t, ts.URL, cached); resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("hit at cached-only: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz at cached-only: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Drain: nothing is admitted, not even cache hits.
	s.qos.wd.Pin(qos.Drain, "test: heap beyond serving tolerance")
	if resp := postSpec(t, ts.URL, cached); resp.StatusCode != http.StatusServiceUnavailable ||
		shedReason(resp) != "brownout" {
		t.Errorf("hit at drain: status %d", resp.StatusCode)
	}
	if got := resp0Header(t, ts.URL, cached); got != "drain" {
		t.Errorf("brownout header at drain = %q", got)
	}
}

// resp0Header posts body and returns the brownout rung stamped on the
// response, whatever its status.
func resp0Header(t *testing.T, url string, body []byte) string {
	t.Helper()
	resp := postSpec(t, url, body)
	readBody(t, resp)
	return resp.Header.Get(qos.BrownoutHeader)
}

// TestQoSRateLimitSheds: with a one-token admission bucket the second
// back-to-back miss is shed 429 with pacing feedback.
func TestQoSRateLimitSheds(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, QoS: &qos.Config{
		TickInterval: -1,
		Controller:   qos.ControllerConfig{InitialRate: 1, MaxRate: 1, BurstSeconds: 0.5},
	}})
	if resp := postSpec(t, ts.URL, marshalSpec(t, uniqueSolveSpec(1))); resp.StatusCode != http.StatusOK {
		t.Fatalf("first miss: %d", resp.StatusCode)
	}
	resp := postSpec(t, ts.URL, marshalSpec(t, uniqueSolveSpec(2)))
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests || eb.Reason != "rate-limit" {
		t.Fatalf("status %d reason %q, want 429 rate-limit", resp.StatusCode, eb.Reason)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit shed missing Retry-After")
	}
	// A cache hit still answers: replay never spends admission tokens.
	if resp := postSpec(t, ts.URL, marshalSpec(t, uniqueSolveSpec(1))); resp.StatusCode != http.StatusOK ||
		resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("hit under rate limit: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got := s.qos.metrics.Shed.With("rate-limit").Value(); got != 1 {
		t.Errorf(`qos_shed{reason="rate-limit"} = %d, want 1`, got)
	}
}

// TestQoSTenantLimitSheds: under congestion a tenant that exhausts its
// fair-share bucket is shed 429 tenant-limit while another tenant is
// still admitted — the greedy tenant burns its own share, not the
// shared one.
func TestQoSTenantLimitSheds(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, QoS: &qos.Config{
		TickInterval: -1,
		Controller:   qos.ControllerConfig{InitialRate: 2, MaxRate: 2, BurstSeconds: 10},
	}})
	s.qos.tenants.Congested(true)

	var okA, shedA int
	for i := 0; i < 5; i++ {
		resp := postSpecHdr(t, ts.URL, marshalSpec(t, uniqueSolveSpec(i)), map[string]string{qos.TenantHeader: "greedy"})
		switch resp.StatusCode {
		case http.StatusOK:
			okA++
		case http.StatusTooManyRequests:
			var eb errorBody
			if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
				t.Fatal(err)
			}
			if eb.Reason != "tenant-limit" {
				t.Fatalf("greedy shed reason %q, want tenant-limit", eb.Reason)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("tenant shed missing Retry-After")
			}
			shedA++
		default:
			t.Fatalf("greedy post %d: status %d", i, resp.StatusCode)
		}
	}
	if okA == 0 || shedA == 0 {
		t.Fatalf("greedy tenant: ok=%d shed=%d, want both nonzero", okA, shedA)
	}
	// The other tenant's bucket is untouched.
	resp := postSpecHdr(t, ts.URL, marshalSpec(t, uniqueSolveSpec(100)), map[string]string{qos.TenantHeader: "modest"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("modest tenant shed alongside greedy: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	adm := s.qos.tenants.Admitted()
	if adm["greedy"] == 0 || adm["modest"] == 0 {
		t.Errorf("tenant admit ledger = %v", adm)
	}
}

// flakyStore is a serve.Cache whose Record can be flipped to fail — the
// HTTP-level stand-in for a journal hitting ENOSPC (the journal-level
// shape is covered in internal/runstate's degraded test).
type flakyStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	fail error
}

func newFlakyStore() *flakyStore { return &flakyStore{m: make(map[string][]byte)} }

func (f *flakyStore) setFail(err error) {
	f.mu.Lock()
	f.fail = err
	f.mu.Unlock()
}

func (f *flakyStore) Lookup(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[key]
	return v, ok
}

func (f *flakyStore) Record(key string, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.m[key] = append([]byte(nil), val...)
	return nil
}

func (f *flakyStore) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// TestQoSStorageDegradedBrownout: when the durable store starts failing,
// the completed job still answers 200 — marked non-durable — the ladder
// pins at cached-only, new misses shed, and both the pre-failure and the
// volatile post-failure artifacts stay servable.
func TestQoSStorageDegradedBrownout(t *testing.T) {
	checkGoroutines(t)
	store := newFlakyStore()
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, Cache: store, QoS: &qos.Config{TickInterval: -1}})

	durable := marshalSpec(t, uniqueSolveSpec(1))
	if resp := postSpec(t, ts.URL, durable); resp.StatusCode != http.StatusOK {
		t.Fatalf("durable solve: %d", resp.StatusCode)
	}

	store.setFail(fmt.Errorf("%w: append: no space left on device", runstate.ErrStorageDegraded))

	volatileSpec := marshalSpec(t, uniqueSolveSpec(2))
	resp := postSpecHdr(t, ts.URL, volatileSpec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job with failing store: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if resp.Header.Get(qos.StorageDegradedHeader) != "1" {
		t.Errorf("missing %s on volatile success", qos.StorageDegradedHeader)
	}
	var art Artifact
	if err := json.Unmarshal(readBody(t, resp), &art); err != nil || art.Solve == nil {
		t.Fatalf("volatile artifact: %v %+v", err, art)
	}

	st := s.StatusSnapshot()
	if st.QoS == nil || !st.QoS.StoragePinned || st.QoS.BrownoutLevel != "cached-only" {
		t.Fatalf("qos status after storage failure = %+v", st.QoS)
	}

	// New misses shed; both artifacts — durable and volatile — still serve.
	miss := postSpec(t, ts.URL, marshalSpec(t, uniqueSolveSpec(3)))
	var eb errorBody
	if err := json.Unmarshal(readBody(t, miss), &eb); err != nil {
		t.Fatal(err)
	}
	if miss.StatusCode != http.StatusServiceUnavailable || eb.Reason != "brownout" {
		t.Errorf("miss after pin: status %d reason %q", miss.StatusCode, eb.Reason)
	}
	if resp := postSpec(t, ts.URL, durable); resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("durable artifact lost: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if resp := postSpec(t, ts.URL, volatileSpec); resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("volatile artifact lost: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got := s.qos.metrics.StorageDegr.Value(); got != 1 {
		t.Errorf("qos_storage_degraded = %d, want 1", got)
	}
	if got := s.qos.metrics.VolatileRecs.Value(); got != 1 {
		t.Errorf("qos_volatile_records = %d, want 1", got)
	}
}

// TestQoSBackgroundTicker: a positive TickInterval runs the control loop
// in the background, and Close stops it without leaking the goroutine
// (checkGoroutines enforces the latter).
func TestQoSBackgroundTicker(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, QoS: &qos.Config{TickInterval: 2 * time.Millisecond}})
	t.Cleanup(s.Close)
	if resp := postSpec(t, ts.URL, marshalSpec(t, solveSpec())); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.qos.metrics.Ticks.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("control loop never ticked: %d", s.qos.metrics.Ticks.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
	s.Close() // idempotent
}
