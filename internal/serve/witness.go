package serve

import (
	"net/http"
	"sync"
	"time"

	"bcnphase/internal/cluster"
)

// witness is the worker-side half of the coordinator leadership
// protocol (DESIGN.md §5i). Every worker holds one: a coordinator
// replica that collects grants from a majority of the fleet's
// witnesses inside one TTL is the leader for that term. The state is
// deliberately tiny and purely local — no worker talks to another —
// because lease safety comes from quorum intersection, not from
// witness coordination: two candidates cannot both hold majorities of
// the same fleet at overlapping times unless witnesses double-grant,
// and the rules below never grant the same unexpired term twice.
//
// All expiry arithmetic uses time.Since on a time.Time captured at
// grant, i.e. the monotonic clock: a wall-clock step cannot open a
// second concurrent leadership window.
type witness struct {
	mu        sync.Mutex
	term      uint64 // highest term ever granted — the fencing floor
	holder    string
	grantedAt time.Time
	ttl       time.Duration
}

// expired reports whether the current lease has lapsed. Callers hold mu.
func (wt *witness) expired() bool {
	return wt.holder == "" || time.Since(wt.grantedAt) >= wt.ttl
}

// lease decides one lease request:
//
//   - a HIGHER term is granted when the seat is open (expired lease)
//     or the candidate already holds it (an incumbent may raise its own
//     term, e.g. after healing a partition);
//   - the CURRENT term is granted only to its holder — that is a
//     renewal, and it restarts the TTL;
//   - everything else is denied, with the response reporting the
//     fencing term and current holder so the candidate knows what term
//     to campaign at next and clients learn where the leader is.
func (wt *witness) lease(req cluster.LeaseRequest) cluster.LeaseResponse {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	grant := false
	switch {
	case req.Term > wt.term && (wt.expired() || req.Candidate == wt.holder):
		grant = true
	case req.Term == wt.term && wt.term != 0 && req.Candidate == wt.holder:
		grant = true // renewal
	}
	if grant {
		wt.term = req.Term
		wt.holder = req.Candidate
		wt.grantedAt = time.Now()
		wt.ttl = time.Duration(req.TTLMs) * time.Millisecond
	}
	resp := cluster.LeaseResponse{Granted: grant, Term: wt.term}
	if !wt.expired() {
		resp.Holder = wt.holder
		if left := wt.ttl - time.Since(wt.grantedAt); left > 0 {
			resp.TTLMsLeft = int64(left / time.Millisecond)
		}
	}
	return resp
}

// fencingTerm is the highest term this witness has granted. Shard
// dispatches carrying a lower Bcn-Term are rejected — the sender was
// deposed by whoever won this term.
func (wt *witness) fencingTerm() uint64 {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	return wt.term
}

// LeaseStatus is the witness block of /statusz.
type LeaseStatus struct {
	Term      uint64 `json:"term"`
	Holder    string `json:"holder,omitempty"`
	TTLMsLeft int64  `json:"ttl_ms_left,omitempty"`
}

func (wt *witness) status() *LeaseStatus {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	st := &LeaseStatus{Term: wt.term}
	if !wt.expired() {
		st.Holder = wt.holder
		if left := wt.ttl - time.Since(wt.grantedAt); left > 0 {
			st.TTLMsLeft = int64(left / time.Millisecond)
		}
	}
	return st
}

// handleLease is POST /v1/lease: the witness endpoint coordinators
// campaign against.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	req, err := cluster.DecodeLeaseRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Reason: "malformed-lease"})
		return
	}
	resp := s.witness.lease(req)
	if resp.Granted {
		s.metrics.leaseGrants.Inc()
		s.logf("lease: granted term %d to %s (ttl %dms)", req.Term, req.Candidate, req.TTLMs)
	} else {
		s.metrics.leaseDenials.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}
