package serve

import (
	"context"
	"strings"
	"testing"

	"bcnphase/internal/analytic"
	"bcnphase/internal/cluster"
	"bcnphase/internal/invariant"
)

// TestSpecKeySeparatesEngines: a solve computed by the analytic engine
// reports exact extrema, one computed by the sampled solver reports
// sampled ones — the cached artifacts differ, so the dedup key must too.
func TestSpecKeySeparatesEngines(t *testing.T) {
	on := solveSpec()
	off := solveSpec()
	off.Analytic = "off"
	kOn, err := on.Key()
	if err != nil {
		t.Fatal(err)
	}
	kOff, err := off.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kOn == kOff {
		t.Error("analytic on and off share a dedup key")
	}
	explicit := solveSpec()
	explicit.Analytic = "on"
	if kExp, _ := explicit.Key(); kExp != kOn {
		t.Error(`analytic "" and "on" hash differently`)
	}
}

// TestSpecRejectsBadAnalytic and shard-level analytic: shard jobs carry
// the engine choice inside the grid (part of the grid fingerprint); a
// spec-level override would desynchronize shards of one sweep.
func TestSpecRejectsBadAnalytic(t *testing.T) {
	sp := solveSpec()
	sp.Analytic = "fast"
	if err := sp.Validate(); err == nil {
		t.Error(`analytic "fast" accepted`)
	}
	body := `{"kind":"solve","analytic":"fast","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`
	if _, err := DecodeSpec(strings.NewReader(body), 0); err == nil {
		t.Error("decode accepted a bogus analytic mode")
	}
	shard := `{"kind":"shard","analytic":"on","shard":{"grid":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3},"points":[{"gi":0.05,"gd":0.001}]}}`
	if _, err := DecodeSpec(strings.NewReader(shard), 0); err == nil {
		t.Error("decode accepted a spec-level analytic mode on a shard job")
	}
}

// TestRunSolveEngineSelection: the analytic path stamps the artifact
// with the engine that produced it and agrees with the classic path on
// every verdict field; a checked invariant policy forces the classic
// path even when the engine is on.
func TestRunSolveEngineSelection(t *testing.T) {
	s := solveSpec().Solve
	jm := newJobMetrics(nil)
	fast, err := runSolve(s, invariant.Off, analytic.ModeOn, jm)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Engine != "analytic" && fast.Engine != "rk45" {
		t.Errorf("analytic result engine tag %q", fast.Engine)
	}
	slow, err := runSolve(s, invariant.Off, analytic.ModeOff, jm)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Engine != "" {
		t.Errorf("classic result carries engine tag %q", slow.Engine)
	}
	if fast.Outcome != slow.Outcome || fast.Case != slow.Case ||
		fast.StronglyStable != slow.StronglyStable ||
		fast.LinearStable != slow.LinearStable ||
		fast.Theorem1OK != slow.Theorem1OK {
		t.Errorf("engines disagree: analytic %+v classic %+v", fast, slow)
	}
	checked, err := runSolve(s, invariant.Record, analytic.ModeOn, jm)
	if err != nil {
		t.Fatal(err)
	}
	if checked.Engine != "" {
		t.Errorf("record policy still took the analytic path (engine %q)", checked.Engine)
	}
}

// TestRunSweepEnginesAgree: the batched analytic sweep and the classic
// per-point sweep must produce the same stable count and row count.
func TestRunSweepEnginesAgree(t *testing.T) {
	s := sweepSpec().Sweep
	jm := newJobMetrics(nil)
	ctx := context.Background()
	fast, err := runSweep(ctx, s, invariant.Off, analytic.ModeOn, jm)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := runSweep(ctx, s, invariant.Off, analytic.ModeOff, jm)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Points != slow.Points || fast.Failed != 0 || slow.Failed != 0 {
		t.Errorf("sweep shapes differ: analytic %d/%d failed, classic %d/%d failed",
			fast.Points, fast.Failed, slow.Points, slow.Failed)
	}
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(fast.Rows), len(slow.Rows))
	}
	// Verdict columns (gi, gd, outcome, strongly_stable) must match
	// row for row; max_q_bits may differ by sampling resolution only.
	for i := range fast.Rows {
		ff := strings.SplitN(fast.Rows[i], ",", 5)
		sf := strings.SplitN(slow.Rows[i], ",", 5)
		if ff[0] != sf[0] || ff[1] != sf[1] || ff[2] != sf[2] || ff[3] != sf[3] {
			t.Errorf("row %d: analytic %q classic %q", i, fast.Rows[i], slow.Rows[i])
		}
	}
}

// TestRunShardUsesGridEngine: shard execution honors the grid's engine
// field and produces rows identical to direct grid evaluation.
func TestRunShardUsesGridEngine(t *testing.T) {
	grid := cluster.GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 0.001, GdHi: 0.1, Steps: 3}
	pts := grid.Points()[:4]
	res, err := runShard(context.Background(), &cluster.ShardSpec{Grid: grid, Points: pts}, newJobMetrics(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(pts) {
		t.Fatalf("shard returned %d rows for %d points", len(res.Rows), len(pts))
	}
	for i, pt := range pts {
		want, err := grid.Eval(context.Background(), pt, cluster.EvalMetrics{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[i] != want {
			t.Errorf("point %+v: shard row %+v, direct row %+v", pt, res.Rows[i], want)
		}
	}
}
