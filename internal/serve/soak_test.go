package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bcnphase/internal/faults"
	"bcnphase/internal/runstate"
)

// TestSoak is the chaos soak: eight concurrent clients fire 240 mixed
// jobs — healthy solves, sweeps, fault-injected netsims, panicking
// jobs, hung jobs against short deadlines, and strict-invariant
// poison — at a deliberately undersized server (2 workers, waiting
// room of 2) backed by a real journal. The invariants asserted:
//
//   - Zero accepted-job losses: every 200-keyed artifact stays
//     retrievable, byte-identically, through drain and across a full
//     journal close/reopen restart.
//   - Every shed request gets explicit feedback: 429, Retry-After, and
//     live queue depth/utilization.
//   - Failures stay classified: panics → 500, deadlines → 504, strict
//     aborts → 422, quarantined regions → 503; nothing leaks an
//     unclassified status.
//   - The server's own accounting matches the clients' ledger.
//   - Drain refuses new work while accepted work finishes; the reopened
//     journal has zero dropped records; no goroutines leak.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	checkGoroutines(t)
	installChaosHook(t)

	jpath := filepath.Join(t.TempDir(), runstate.JournalFileName)
	j, err := runstate.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 2, QueueCap: 2, Cache: j})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const clients = 8
	const perClient = 30
	total := clients * perClient

	// The mix is built up front on the test goroutine so client
	// goroutines never touch testing.T helpers.
	bodies := make([][]byte, total)
	for n := range bodies {
		bodies[n] = marshalSpec(t, soakSpec(n, total))
	}

	var (
		mu      sync.Mutex
		oks     = map[string][]byte{} // key -> artifact bytes
		okSpecs = map[string][]byte{} // key -> a spec body producing it
		counts  = map[int]int{}
		faultsN []string // protocol violations observed by clients
	)
	flag := func(format string, args ...any) {
		faultsN = append(faultsN, fmt.Sprintf(format, args...))
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				n := c*perClient + i
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(bodies[n]))
				if err != nil {
					mu.Lock()
					flag("job %d: transport error: %v", n, err)
					mu.Unlock()
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var eb errorBody
				if resp.StatusCode != http.StatusOK {
					json.Unmarshal(body, &eb)
				}

				mu.Lock()
				counts[resp.StatusCode]++
				switch resp.StatusCode {
				case http.StatusOK:
					key := resp.Header.Get("X-Job-Key")
					if key == "" {
						flag("job %d: 200 without X-Job-Key", n)
					}
					if prev, ok := oks[key]; ok && !bytes.Equal(prev, body) {
						flag("job %d: key %s returned different bytes", n, key)
					}
					oks[key] = body
					okSpecs[key] = bodies[n]
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						flag("job %d: shed without Retry-After", n)
					}
					if eb.Reason != "shed" || eb.RetryAfterSec < 1 || eb.QueueDepth < 1 || eb.Utilization <= 0 {
						flag("job %d: shed feedback incomplete: %+v", n, eb)
					}
				case http.StatusUnprocessableEntity:
					if eb.Reason != "invariant-abort" || eb.Violation == "" {
						flag("job %d: 422 body %+v", n, eb)
					}
				case http.StatusServiceUnavailable:
					if eb.Reason != "breaker-open" || resp.Header.Get("Retry-After") == "" {
						flag("job %d: 503 during storm must be breaker-open with Retry-After: %+v", n, eb)
					}
				case http.StatusInternalServerError:
					if eb.Reason != "panic" {
						flag("job %d: 500 reason %q", n, eb.Reason)
					}
				case http.StatusGatewayTimeout:
					if eb.Reason != "deadline" {
						flag("job %d: 504 reason %q", n, eb.Reason)
					}
				default:
					flag("job %d: unclassified status %d: %s", n, resp.StatusCode, body)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if len(faultsN) > 0 {
		t.Fatalf("%d protocol violations, first: %s", len(faultsN), faultsN[0])
	}
	if counts[200] == 0 || len(oks) == 0 {
		t.Fatalf("soak produced no successes: %v", counts)
	}
	if counts[500] == 0 || counts[504] == 0 || counts[422] == 0 {
		t.Errorf("chaos mix did not exercise all failure classes: %v", counts)
	}
	t.Logf("soak statuses: %v (%d distinct artifacts)", counts, len(oks))

	// Server-side ledger vs the clients'.
	st := s.StatusSnapshot()
	if int(st.Shed) != counts[429] {
		t.Errorf("server counted %d shed, clients saw %d", st.Shed, counts[429])
	}
	if st.Shed == 0 {
		t.Error("soak never saturated admission; load shedding untested")
	}
	if int(st.BreakerRejects) != counts[503] {
		t.Errorf("server counted %d breaker rejects, clients saw %d", st.BreakerRejects, counts[503])
	}
	if int(st.Failed) != counts[422]+counts[500]+counts[504] {
		t.Errorf("server counted %d failed, clients saw %d", st.Failed, counts[422]+counts[500]+counts[504])
	}
	if j.Len() != len(oks) {
		t.Errorf("journal holds %d artifacts, clients collected %d", j.Len(), len(oks))
	}

	// Drain: new work refused with explicit feedback, accepted work kept.
	s.Drain()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(bodies[0]))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Reason != "draining" {
		t.Errorf("submit during drain: status %d reason %q", resp.StatusCode, eb.Reason)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("drain did not settle: %v", err)
	}
	// Zero accepted-job losses: every success is still retrievable.
	for key, want := range oks {
		got, err := http.Get(ts.URL + "/v1/jobs/" + key)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(got.Body)
		got.Body.Close()
		if got.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("artifact %s lost or mutated during drain (status %d)", key, got.StatusCode)
		}
	}
	ts.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the reopened journal is consistent and resubmits are
	// answered from it byte-identically without re-execution.
	j2, err := runstate.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Dropped() != 0 {
		t.Errorf("journal replay dropped %d records after soak", j2.Dropped())
	}
	if j2.Len() != len(oks) {
		t.Errorf("journal lost artifacts across restart: %d vs %d", j2.Len(), len(oks))
	}
	s2, err := New(Config{Workers: 2, Cache: j2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for key, spec := range okSpecs {
		resp, err := http.Post(ts2.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
			t.Fatalf("restart resubmit of %s: status %d cache %q", key, resp.StatusCode, resp.Header.Get("X-Cache"))
		}
		if !bytes.Equal(body, oks[key]) {
			t.Fatalf("restart resubmit of %s not byte-identical", key)
		}
	}
}

// soakSpec deals job n of the chaos mix. Poison, hangs and strict
// aborts are minorities; the bulk is healthy work, part of it from a
// small set of duplicated specs so dedup, coalescing and cache hits
// all happen under fire.
func soakSpec(n, total int) Spec {
	switch {
	case n%10 == 3: // panics inside the worker → 500, pool survives
		sp := solveSpec()
		sp.Solve.MaxArcs = markPanic
		sp.Solve.Params.Gi = 4 + float64(n%7)/8
		return sp
	case n%10 == 7: // hangs 200ms against a 20ms deadline → 504
		sp := solveSpec()
		sp.Solve.MaxArcs = markSlow
		sp.TimeoutMs = 20
		sp.Solve.Params.Gi = 4 + float64(n%5)/8
		return sp
	case n%10 == 5: // broken physics under strict → 422, then breaker 503
		sp := solveSpec()
		sp.Invariants = "strict"
		sp.Solve.Params.Gd = -1 - float64(n%3)/100
		return sp
	case n%3 == 0: // unique slow-success jobs clog the workers → shedding
		sp := solveSpec()
		sp.Solve.MaxArcs = markStall
		sp.Solve.Params.Gi = 0.5 + float64(n)/float64(total)
		return sp
	case n%7 == 2: // packet-level runs with fault injection
		sp := netsimSpec()
		sp.Netsim.Seed = int64(1 + n%4)
		sp.Netsim.Faults = &faults.Config{Seed: int64(n%3 + 1), FeedbackLoss: 0.25, FeedbackJitterNs: 10_000}
		return sp
	case n%11 == 4: // gain-plane sweeps
		return sweepSpec()
	default: // healthy solves from a small duplicated set
		sp := solveSpec()
		sp.Solve.Params.Gi = []float64{4, 2, 1, 0.5}[n%4]
		return sp
	}
}
