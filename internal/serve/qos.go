package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bcnphase/internal/qos"
)

// qosState bundles the closed-loop overload-protection machinery when
// Config.QoS is set. All pieces live in internal/qos; serve only
// threads them through the request path.
type qosState struct {
	cfg     qos.Config
	ctl     *qos.Controller
	wd      *qos.Watchdog
	tenants *qos.TenantLimiter
	fq      *qos.FairQueue
	cache   *qos.ArtifactCache
	metrics *qos.Metrics

	stop     chan struct{}
	stopOnce sync.Once
}

// newQoSState wires the QoS layer for a server: the artifact cache
// wraps the configured Cache (journal or MemCache) as its durable tier,
// the controller sizes itself on the worker pool, and the watchdog
// starts at Full.
func newQoSState(cfg *Config) *qosState {
	q := cfg.QoS.WithDefaults()
	if cfg.QoS.Controller.QueueTarget <= 0 {
		// Regulate to half the waiting room: deep enough to keep workers
		// busy, shallow enough that the shed threshold stays headroom.
		q.Controller.QueueTarget = float64(cfg.QueueCap) / 2
	}
	if q.Controller.Now == nil {
		q.Controller.Now = cfg.Now
	}
	if q.Tenant.Now == nil {
		q.Tenant.Now = cfg.Now
	}
	st := &qosState{
		cfg:     q,
		ctl:     qos.NewController(q.Controller, cfg.Workers),
		wd:      qos.NewWatchdog(q.Brownout),
		tenants: qos.NewTenantLimiter(q.Tenant),
		fq:      qos.NewFairQueue(cfg.Workers),
		cache:   qos.NewArtifactCache(cfg.Cache, q.CacheBytes, q.CacheTTL, cfg.Now),
		stop:    make(chan struct{}),
	}
	st.metrics = qos.NewMetrics(cfg.Registry, st.ctl, st.wd, st.tenants, st.cache)
	return st
}

// run is the background control loop: one Tick per interval until Close.
func (q *qosState) run(s *Server) {
	t := time.NewTicker(q.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-t.C:
			s.qosTick()
		}
	}
}

// qosTick applies one control-loop step: feed the controller the live
// queue depth, move the brownout ladder, flip tenant enforcement, and
// fold cache counters into the exported series. Tests drive it
// directly with a negative TickInterval.
func (s *Server) qosTick() {
	q := s.qos
	if q == nil {
		return
	}
	depth := len(s.queueSlots)
	frac := float64(depth) / float64(s.cfg.QueueCap)
	q.ctl.Tick(float64(depth))
	level := q.wd.Observe(frac)
	q.tenants.Congested(frac >= 0.5 || level > qos.Full)
	q.metrics.Ticks.Inc()
	q.metrics.SyncCache(q.cache)
}

// Close stops the background control loop (no-op without QoS). The
// server keeps serving; only the ticker stops.
func (s *Server) Close() {
	if s.qos != nil {
		s.qos.stopOnce.Do(func() { close(s.qos.stop) })
	}
}

// qosRequest carries the per-request QoS facts parsed from headers.
type qosRequest struct {
	tenant      string
	class       string
	classWeight float64
	hasDeadline bool
	budget      time.Duration // as parsed from the wire
	deadlineAt  time.Time     // budget anchored at parse time
}

// parseQoSHeaders validates the tenant, class and deadline headers.
// Malformed values are client errors: admission math must never run on
// garbage keys.
func (s *Server) parseQoSHeaders(r *http.Request) (*qosRequest, error) {
	tenant, err := qos.ParseTenant(r.Header.Get(qos.TenantHeader))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", qos.TenantHeader, err)
	}
	class, weight, err := qos.ParseClass(r.Header.Get(qos.ClassHeader))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", qos.ClassHeader, err)
	}
	req := &qosRequest{tenant: tenant, class: class, classWeight: weight}
	budget, ok, err := qos.ParseDeadline(r.Header.Get(qos.DeadlineHeader))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", qos.DeadlineHeader, err)
	}
	if ok {
		req.hasDeadline = true
		req.budget = budget
		req.deadlineAt = s.now().Add(budget)
	}
	return req, nil
}

// stampQoSHeaders advertises the admission rate and brownout rung on
// every response — RCP-style explicit feedback, so clients pace by
// instruction instead of probing.
func (s *Server) stampQoSHeaders(w http.ResponseWriter) {
	q := s.qos
	if q == nil {
		return
	}
	w.Header().Set(qos.RateHeader, strconv.FormatFloat(q.ctl.AdvertisedRate(), 'f', 2, 64))
	w.Header().Set(qos.BrownoutHeader, q.wd.Level().String())
}

// qosAdmit runs the QoS gates that precede the waiting room: brownout
// rung, per-tenant fair share, then the global admission rate. It
// writes the response and returns false when the request is shed.
// Order matters: the tenant gate runs before the global bucket so a
// greedy tenant burns its own share, not the shared one.
func (s *Server) qosAdmit(w http.ResponseWriter, rid, key, kind string, qr *qosRequest) bool {
	q := s.qos
	level := q.wd.Level()
	switch {
	case level >= qos.CachedOnly:
		// Cache hits were already served above; everything else sheds.
		s.qosShed(w, rid, key, "brownout", http.StatusServiceUnavailable, q.ctl.RetryAfter(),
			fmt.Sprintf("server is in %s brownout", level))
		return false
	case level == qos.NoNewSweeps && (kind == KindSweep || kind == KindShard):
		s.qosShed(w, rid, key, "brownout", http.StatusServiceUnavailable, q.ctl.RetryAfter(),
			"new sweep jobs are shed in no-new-sweeps brownout")
		return false
	}
	rate := q.ctl.AdvertisedRate()
	if !q.tenants.Allow(qr.tenant, qr.classWeight, rate) {
		s.qosShed(w, rid, key, "tenant-limit", http.StatusTooManyRequests,
			q.tenants.RetryAfter(qr.tenant, rate),
			fmt.Sprintf("tenant %s is over its fair share of %.1f jobs/s", qr.tenant, rate))
		return false
	}
	if !q.ctl.Admit() {
		s.qosShed(w, rid, key, "rate-limit", http.StatusTooManyRequests, q.ctl.RetryAfter(),
			fmt.Sprintf("admission rate %.1f jobs/s exceeded", rate))
		return false
	}
	q.tenants.CountAdmitted(qr.tenant)
	q.metrics.Admitted.Inc()
	q.metrics.TenantAdmit.With(qr.tenant).Inc()
	return true
}

// qosShed writes one QoS rejection with explicit feedback.
func (s *Server) qosShed(w http.ResponseWriter, rid, key, reason string, status int, retry time.Duration, msg string) {
	s.qos.metrics.Shed.With(reason).Inc()
	s.metrics.shed.Inc()
	s.logf("rid=%s key=%s reject=%s", rid, key, reason)
	s.reject(w, status, retry, errorBody{
		Error: msg, Reason: reason,
		QueueDepth: len(s.queueSlots), Utilization: s.utilization(),
	})
}

// qosRecordFailure handles a failed artifact Record under QoS: the
// journal is declared storage-degraded, the brownout ladder pins at
// cached-only, and the artifact is kept servable in the volatile front
// tier. The job still succeeds from the client's view — marked
// non-durable via Bcn-Storage-Degraded — because recomputing it later
// is cheaper than losing it now.
func (s *Server) qosRecordFailure(w http.ResponseWriter, rid, key string, raw []byte, err error) {
	q := s.qos
	q.wd.Pin(qos.CachedOnly, "storage degraded: "+err.Error())
	q.metrics.StorageDegr.Inc()
	q.cache.PutVolatile(key, raw)
	q.metrics.VolatileRecs.Inc()
	w.Header().Set(qos.StorageDegradedHeader, "1")
	s.logf("rid=%s key=%s storage-degraded err=%q", rid, key, err)
}

// QoSStatus is the /statusz QoS block.
type QoSStatus struct {
	AdvertisedRate   float64           `json:"advertised_rate"`
	CapacityEstimate float64           `json:"capacity_estimate"`
	ServiceTimeSec   float64           `json:"service_time_sec"`
	BrownoutLevel    string            `json:"brownout_level"`
	StoragePinned    bool              `json:"storage_pinned"`
	PinReason        string            `json:"pin_reason,omitempty"`
	Tenants          int               `json:"tenants"`
	TenantAdmitted   map[string]uint64 `json:"tenant_admitted,omitempty"`
	FairWaiting      int               `json:"fair_waiting"`
	CacheEntries     int               `json:"cache_entries"`
	CacheBytes       int64             `json:"cache_bytes"`
	CacheMaxBytes    int64             `json:"cache_max_bytes"`
}

// qosStatus assembles the QoS block, nil without QoS.
func (s *Server) qosStatus() *QoSStatus {
	q := s.qos
	if q == nil {
		return nil
	}
	pinned, reason := q.wd.Pinned()
	cs := q.cache.Stats()
	return &QoSStatus{
		AdvertisedRate:   q.ctl.AdvertisedRate(),
		CapacityEstimate: q.ctl.Capacity(),
		ServiceTimeSec:   q.ctl.ServiceTime().Seconds(),
		BrownoutLevel:    q.wd.Level().String(),
		StoragePinned:    pinned,
		PinReason:        reason,
		Tenants:          q.tenants.Tenants(),
		TenantAdmitted:   q.tenants.Admitted(),
		FairWaiting:      q.fq.Waiting(),
		CacheEntries:     cs.Entries,
		CacheBytes:       cs.Bytes,
		CacheMaxBytes:    cs.MaxBytes,
	}
}
