package serve

import (
	"sync"
	"time"

	"bcnphase/internal/telemetry"
)

// Breaker is a per-region circuit breaker over job outcomes. A region
// (Spec.RegionKey bucket of the parameter plane) that aborts under the
// strict invariant policy enough times in a row is opened: submissions
// to it fail fast with an explicit retry hint instead of occupying a
// worker just to abort again. After the cooldown the region goes
// half-open and admits exactly one probe; the probe's outcome closes or
// re-opens it. All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	regions   map[string]*breakerRegion
	// transitions, when non-nil, counts state changes by destination
	// state ("open", "half-open", "closed") on the owning server's
	// telemetry registry.
	transitions *telemetry.CounterVec
}

type breakerRegion struct {
	consecutive int       // consecutive qualifying failures while closed
	openUntil   time.Time // nonzero while open
	probing     bool      // a half-open probe is in flight
	trips       uint64    // times this region has been opened
}

// RegionStatus is one region's snapshot for /statusz.
type RegionStatus struct {
	Region      string `json:"region"`
	State       string `json:"state"` // "closed", "open", "half-open"
	Consecutive int    `json:"consecutive_failures"`
	Trips       uint64 `json:"trips"`
	// RetryAfterSec is the remaining cooldown for an open region.
	RetryAfterSec int64 `json:"retry_after_sec,omitempty"`
}

// NewBreaker builds a breaker that opens a region after threshold
// consecutive failures for the given cooldown. threshold <= 0 disables
// tripping entirely (Allow always true); now == nil uses time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		regions:   make(map[string]*breakerRegion),
	}
}

// Allow reports whether a job in the region may run now. For an open
// region it returns false with the remaining cooldown; for a region
// whose cooldown has elapsed it admits one half-open probe and blocks
// further submissions until the probe resolves via Success or Failure.
func (b *Breaker) Allow(region string) (ok bool, retryAfter time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.regions[region]
	if r == nil || r.openUntil.IsZero() {
		return true, 0
	}
	if rem := r.openUntil.Sub(b.now()); rem > 0 {
		return false, rem
	}
	// Cooldown over: half-open. One probe runs; everyone else waits for
	// its verdict (a short, bounded retry hint).
	if r.probing {
		return false, b.cooldown / 4
	}
	r.probing = true
	b.transitions.With("half-open").Inc()
	return true, 0
}

// Success records a completed job in the region, closing it.
func (b *Breaker) Success(region string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if r := b.regions[region]; r != nil {
		if !r.openUntil.IsZero() || r.probing {
			b.transitions.With("closed").Inc()
		}
		r.consecutive = 0
		r.openUntil = time.Time{}
		r.probing = false
	}
}

// Failure records a qualifying failure (a strict invariant abort) in
// the region, opening it once the consecutive count reaches the
// threshold — and immediately re-opening a half-open region whose probe
// failed.
func (b *Breaker) Failure(region string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.regions[region]
	if r == nil {
		r = &breakerRegion{}
		b.regions[region] = r
	}
	r.consecutive++
	if r.probing || r.consecutive >= b.threshold {
		r.openUntil = b.now().Add(b.cooldown)
		r.probing = false
		r.trips++
		b.transitions.With("open").Inc()
	}
}

// Release resolves a half-open probe without a verdict: the probe
// failed for reasons unrelated to the parameters (deadline, client
// kill, panic), so the region stays half-open for the next probe
// instead of being closed on no evidence or locked forever behind a
// probe that never reported back.
func (b *Breaker) Release(region string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if r := b.regions[region]; r != nil {
		r.probing = false
	}
}

// Snapshot lists every region the breaker has seen, for /statusz.
func (b *Breaker) Snapshot() []RegionStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]RegionStatus, 0, len(b.regions))
	for name, r := range b.regions {
		st := RegionStatus{Region: name, State: "closed", Consecutive: r.consecutive, Trips: r.trips}
		if !r.openUntil.IsZero() {
			if rem := r.openUntil.Sub(b.now()); rem > 0 {
				st.State = "open"
				st.RetryAfterSec = int64(rem/time.Second) + 1
			} else {
				st.State = "half-open"
			}
		}
		out = append(out, st)
	}
	return out
}
