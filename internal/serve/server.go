package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bcnphase/internal/analytic"
	"bcnphase/internal/cluster"
	"bcnphase/internal/invariant"
	"bcnphase/internal/qos"
	"bcnphase/internal/sweep"
	"bcnphase/internal/telemetry"
)

// Cache is the server's completed-artifact store, keyed by Spec.Key
// content hashes. runstate.Journal satisfies it (giving crash-safe,
// restart-surviving dedup); MemCache is the journal-less fallback.
// Implementations must be safe for concurrent use.
type Cache interface {
	// Lookup returns the stored artifact for key, if present.
	Lookup(key string) ([]byte, bool)
	// Record durably stores the artifact (valid JSON) under key.
	Record(key string, val []byte) error
	// Len is the number of stored artifacts.
	Len() int
}

// MemCache is an in-memory Cache for servers run without a journal
// directory: dedup works for the process lifetime but does not survive
// restarts.
type MemCache struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: make(map[string][]byte)} }

// Lookup implements Cache.
func (c *MemCache) Lookup(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Record implements Cache.
func (c *MemCache) Record(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), val...)
	return nil
}

// Len implements Cache.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Config configures a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers bounds concurrently executing jobs (default 4).
	Workers int
	// QueueCap bounds jobs admitted but waiting for a worker; a full
	// waiting room sheds new submissions with 429 (default 4×Workers).
	QueueCap int
	// MaxBodyBytes bounds the request body (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// DefaultTimeout is the per-job budget when the spec names none
	// (default 30s); MaxTimeout caps what a spec may ask for (default
	// 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// BreakerThreshold opens a parameter region's circuit after this
	// many consecutive strict invariant aborts (default 3; negative
	// disables the breaker). BreakerCooldown is the quarantine length
	// (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Invariants is the policy applied when a spec does not name one.
	Invariants invariant.Policy
	// Analytic is the solve-engine mode applied when a spec does not
	// name one. The zero value is analytic.ModeOn — the engine is
	// default-on, matching the CLIs.
	Analytic analytic.Mode
	// Cache stores completed artifacts for idempotent dedup; nil uses a
	// fresh MemCache.
	Cache Cache
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// Registry receives the server's metrics (and, through the shared
	// job instruments, the solver/sweep/netsim series of every executed
	// job). Nil creates a private registry, so /metrics always serves.
	// A registry must not be shared between Servers: the live gauges it
	// registers are per-server.
	Registry *telemetry.Registry
	// Log, when non-nil, receives one line per notable request event
	// (accept, finish, shed, breaker reject), each carrying the request
	// ID echoed in the X-Request-ID response header.
	Log io.Writer
	// QoS, when non-nil, enables the closed-loop overload-protection
	// layer (internal/qos): RCP-style adaptive admission with
	// Bcn-Advertised-Rate feedback, the brownout ladder, per-tenant
	// weighted fair queueing, deadline propagation, and the byte-bounded
	// artifact cache in front of Cache. Nil keeps the PR-4 static-shed
	// path byte-for-byte unchanged.
	QoS *qos.Config
}

// Server is the supervised job service. Create with New, mount
// Handler, stop with Drain.
type Server struct {
	cfg     Config
	breaker *Breaker
	cache   Cache
	now     func() time.Time

	// workerSlots and queueSlots are counting semaphores: a handler
	// holds a queue slot while waiting and a worker slot while
	// executing, so len() of each is the live depth for /statusz and
	// readiness.
	workerSlots chan struct{}
	queueSlots  chan struct{}

	mu       sync.Mutex
	draining bool
	active   int // accepted jobs not yet finished (drain waits on this)
	inflight map[string]*inflightJob
	ewmaSecs float64 // completed-job duration estimate for Retry-After

	// registry-backed telemetry: /statusz and /metrics read the same
	// series the server increments.
	registry *telemetry.Registry
	metrics  *serverMetrics
	jobm     jobMetrics
	tracer   *telemetry.Tracer

	// startMono anchors the monotonic uptime; always the real clock
	// (not cfg.Now) so uptime never runs backwards under a test clock.
	startMono time.Time
	reqSeq    atomic.Uint64

	// qos is the closed-loop overload-protection state; nil when
	// Config.QoS is nil (legacy static-shed path).
	qos *qosState

	// witness is this worker's slice of the coordinator leadership
	// quorum: it grants term leases over POST /v1/lease and supplies
	// the fencing floor that rejects a deposed leader's dispatches.
	witness witness
}

// inflightJob coalesces concurrent submissions of the same spec onto
// one execution: the leader runs, everyone else waits on done and
// serves the same bytes.
type inflightJob struct {
	done chan struct{}
	raw  []byte
	err  error
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Cache == nil {
		cfg.Cache = NewMemCache()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:         cfg,
		breaker:     NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now),
		cache:       cfg.Cache,
		now:         cfg.Now,
		workerSlots: make(chan struct{}, cfg.Workers),
		queueSlots:  make(chan struct{}, cfg.QueueCap),
		inflight:    make(map[string]*inflightJob),
		registry:    cfg.Registry,
		tracer:      telemetry.NewTracer(4096, nil),
		startMono:   time.Now(),
	}
	s.metrics = newServerMetrics(s.registry, s)
	s.jobm = newJobMetrics(s.registry)
	s.breaker.transitions = s.metrics.breakerTransitions
	if cfg.QoS != nil {
		s.qos = newQoSState(&cfg)
		// The artifact cache fronts the durable store for every lookup
		// and write-through from here on.
		s.cache = s.qos.cache
		if s.qos.cfg.TickInterval > 0 {
			go s.qos.run(s)
		}
	}
	return s, nil
}

// Registry exposes the server's metrics registry (for -telemetry dumps
// by the embedding binary).
func (s *Server) Registry() *telemetry.Registry { return s.registry }

// Tracer exposes the server's span recorder.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// nextRequestID mints a process-unique request ID. IDs appear in
// response headers, error bodies, and log lines — never inside artifact
// JSON, which must stay byte-identical for a given spec.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("req-%08x-%06d", uint32(s.startMono.UnixNano()), s.reqSeq.Add(1))
}

// logf emits one request-log line when Config.Log is set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "serve: "+format+"\n", args...)
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleGet)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.Handle("GET /metrics", s.registry.Handler())
	telemetry.RegisterPprof(mux)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Reason is a machine-readable cause: "malformed-spec", "shed",
	// "draining", "breaker-open", "deadline", "panic", "killed",
	// "invariant-abort", "not-found", "internal"; with QoS also
	// "malformed-qos-header", "deadline-doomed", "brownout",
	// "tenant-limit", "rate-limit".
	Reason string `json:"reason"`
	// RetryAfterSec mirrors the Retry-After header when retrying makes
	// sense.
	RetryAfterSec int64 `json:"retry_after_sec,omitempty"`
	// QueueDepth and Utilization are the live feedback a shed client
	// uses to pace its retry (RCP-style explicit feedback: the server
	// says how congested it is instead of silently dropping).
	QueueDepth  int     `json:"queue_depth,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	// Violation carries the invariant detail of a strict abort.
	Violation string `json:"violation,omitempty"`
	// Region is the breaker region of a quarantined request.
	Region string `json:"region,omitempty"`
	// RequestID echoes the X-Request-ID header so a failed response can
	// be correlated with the server's log lines.
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Error responses pick up the request ID the handler stamped on the
	// response headers, so every failure is correlatable with the log.
	if eb, ok := v.(errorBody); ok && eb.RequestID == "" {
		if rid := w.Header().Get("X-Request-ID"); rid != "" {
			eb.RequestID = rid
			v = eb
		}
	}
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode failure","reason":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// reject writes an error response, setting Retry-After when positive.
func (s *Server) reject(w http.ResponseWriter, status int, retryAfter time.Duration, body errorBody) {
	if retryAfter > 0 {
		secs := int64(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body.RetryAfterSec = secs
	}
	writeJSON(w, status, body)
}

// retryAfter estimates how long a shed client should wait: the waiting
// room's drain time at the observed mean job duration, clamped to
// [1s, 60s]. It is explicit feedback, not a promise.
func (s *Server) retryAfter() time.Duration {
	s.mu.Lock()
	mean := s.ewmaSecs
	s.mu.Unlock()
	if mean <= 0 {
		mean = 1
	}
	waiting := len(s.queueSlots)
	secs := mean * float64(waiting+1) / float64(s.cfg.Workers)
	switch {
	case secs < 1:
		secs = 1
	case secs > 60:
		secs = 60
	}
	return time.Duration(secs * float64(time.Second))
}

func (s *Server) utilization() float64 {
	return float64(len(s.workerSlots)) / float64(s.cfg.Workers)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginJob marks one accepted job; it fails when a drain has started,
// so acceptance and drain cannot race past each other.
func (s *Server) beginJob() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

func (s *Server) endJob() {
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
}

// observeDuration feeds the Retry-After estimator.
func (s *Server) observeDuration(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	secs := d.Seconds()
	if s.ewmaSecs == 0 {
		s.ewmaSecs = secs
		return
	}
	s.ewmaSecs = 0.8*s.ewmaSecs + 0.2*secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rid := s.nextRequestID()
	w.Header().Set("X-Request-ID", rid)
	s.stampQoSHeaders(w)
	if s.isDraining() {
		s.reject(w, http.StatusServiceUnavailable, time.Second, errorBody{
			Error: "server is draining", Reason: "draining",
		})
		return
	}
	// Fencing: a dispatch stamped with a leadership term below the
	// witness's floor comes from a deposed coordinator. Answer 409
	// stale-term — terminal, never retried — before cache, admission or
	// coalescing get a look: even a cache hit would let a dead leader
	// keep believing it leads. Requests without the header (single
	//-coordinator deployments, direct bcnsim submissions) skip the check.
	if th := r.Header.Get(cluster.TermHeader); th != "" {
		term, perr := strconv.ParseUint(th, 10, 64)
		if perr != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("malformed %s header: %v", cluster.TermHeader, perr), Reason: "malformed-term"})
			return
		}
		if floor := s.witness.fencingTerm(); term < floor {
			s.metrics.fencedJobs.Inc()
			s.logf("fenced dispatch at term %d (witnessed term %d)", term, floor)
			w.Header().Set(cluster.TermHeader, strconv.FormatUint(floor, 10))
			writeJSON(w, http.StatusConflict, errorBody{
				Error:  fmt.Sprintf("dispatch term %d is stale: this worker has witnessed term %d", term, floor),
				Reason: cluster.StaleTermReason,
			})
			return
		}
	}
	var qr *qosRequest
	if s.qos != nil {
		// The Drain rung admits nothing, not even cache hits: the
		// watchdog saw heap pressure beyond what serving can tolerate.
		if s.qos.wd.Level() >= qos.Drain {
			s.qosShed(w, rid, "", "brownout", http.StatusServiceUnavailable,
				s.qos.ctl.RetryAfter(), "server is in drain brownout")
			return
		}
		var herr error
		qr, herr = s.parseQoSHeaders(r)
		if herr != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: herr.Error(), Reason: "malformed-qos-header"})
			return
		}
		// A request that cannot finish inside its remaining budget is
		// doomed: answer now, before it occupies a queue slot or worker.
		if qr.hasDeadline && qos.Doomed(qr.budget, s.qos.cfg.HopMargin) {
			s.qos.metrics.DeadlineDoom.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorBody{
				Error:  "deadline budget cannot cover the request",
				Reason: "deadline-doomed",
			})
			return
		}
	}
	sp, err := DecodeSpec(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBodyBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error:  fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
				Reason: "body-too-large",
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Reason: "malformed-spec"})
		return
	}
	key, err := sp.Key()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Reason: "malformed-spec"})
		return
	}

	// Idempotent replay: a completed job answers from the artifact
	// store without touching admission, so resubmits are cheap even
	// under overload — and byte-identical, because the stored bytes are
	// served verbatim.
	if raw, ok := s.cache.Lookup(key); ok {
		s.metrics.cacheHits.Inc()
		s.logf("rid=%s kind=%s key=%s cache=hit", rid, sp.Kind, key)
		s.serveArtifact(w, key, raw, "hit")
		return
	}

	region := sp.RegionKey()
	if ok, retry := s.breaker.Allow(region); !ok {
		s.metrics.breakerRejects.Inc()
		s.logf("rid=%s kind=%s key=%s reject=breaker-open region=%s", rid, sp.Kind, key, region)
		s.reject(w, http.StatusServiceUnavailable, retry, errorBody{
			Error:  fmt.Sprintf("parameter region %s is quarantined after repeated invariant aborts", region),
			Reason: "breaker-open", Region: region,
		})
		return
	}

	// Closed-loop admission: brownout rung, tenant fair share, global
	// advertised rate — all with explicit Retry-After feedback.
	if s.qos != nil && !s.qosAdmit(w, rid, key, sp.Kind, qr) {
		return
	}

	// Admission: the waiting room is bounded. No free slot means the
	// paper's overflow criterion would be violated by accepting — shed
	// now, with explicit feedback, rather than queue without bound.
	select {
	case s.queueSlots <- struct{}{}:
	default:
		s.metrics.shed.Inc()
		s.logf("rid=%s kind=%s key=%s reject=shed depth=%d", rid, sp.Kind, key, len(s.queueSlots))
		s.reject(w, http.StatusTooManyRequests, s.retryAfter(), errorBody{
			Error: "admission queue full", Reason: "shed",
			QueueDepth: len(s.queueSlots), Utilization: s.utilization(),
		})
		return
	}
	releaseQueue := func() { <-s.queueSlots }

	if !s.beginJob() { // drain started while we queued
		releaseQueue()
		s.reject(w, http.StatusServiceUnavailable, time.Second, errorBody{
			Error: "server is draining", Reason: "draining",
		})
		return
	}
	defer s.endJob()
	s.metrics.accepted.Inc()
	s.logf("rid=%s kind=%s key=%s accepted", rid, sp.Kind, key)

	// Coalesce duplicates of an in-flight job onto its leader.
	job, leader := s.registerInflight(key)
	if !leader {
		releaseQueue()
		s.metrics.coalesced.Inc()
		select {
		case <-job.done:
		case <-r.Context().Done():
			s.metrics.killed.Inc()
			s.reject(w, http.StatusRequestTimeout, 0, errorBody{
				Error: "client went away while coalesced", Reason: "killed",
			})
			return
		}
		s.finishResponse(w, key, region, job.raw, job.err, "coalesced")
		return
	}

	// Wait for a worker slot; a client that disconnects while queued
	// kills its own job, nobody else's. With QoS the wait goes through
	// the weighted fair queue, so slot grants interleave tenants instead
	// of following arrival order.
	if s.qos != nil {
		waitStart := time.Now()
		if err := s.qos.fq.Acquire(r.Context(), qr.tenant, qr.classWeight); err != nil {
			releaseQueue()
			s.metrics.killed.Inc()
			s.completeInflight(key, job, nil, err)
			s.reject(w, http.StatusRequestTimeout, 0, errorBody{
				Error: "client went away while queued", Reason: "killed",
			})
			return
		}
		s.qos.metrics.ObserveWait(time.Since(waitStart))
		// The fair queue holds exactly Workers grants, so this send
		// cannot block; the channel stays the depth gauge for /statusz.
		s.workerSlots <- struct{}{}
	} else {
		select {
		case s.workerSlots <- struct{}{}:
		case <-r.Context().Done():
			releaseQueue()
			s.metrics.killed.Inc()
			s.completeInflight(key, job, nil, r.Context().Err())
			s.reject(w, http.StatusRequestTimeout, 0, errorBody{
				Error: "client went away while queued", Reason: "killed",
			})
			return
		}
	}
	releaseQueue()

	span := s.tracer.Start("job")
	span.SetAttr("rid", rid)
	span.SetAttr("kind", sp.Kind)
	span.SetAttr("region", region)
	execCtx := r.Context()
	if s.qos != nil {
		// The tenant key rides the context into downstream dispatch
		// (cluster coordinator -> worker headers); the deadline budget —
		// what is left of it after queueing — caps the solver context so
		// doomed work cancels instead of running to be thrown away.
		execCtx = qos.WithTenant(execCtx, qr.tenant)
		if qr.hasDeadline {
			var cancel context.CancelFunc
			execCtx, cancel = qos.WithBudget(execCtx, qr.deadlineAt.Sub(s.now()))
			defer cancel()
		}
	}
	start := s.now()
	wallStart := time.Now()
	raw, execErr := s.execute(execCtx, sp, key)
	wall := time.Since(wallStart)
	<-s.workerSlots
	if s.qos != nil {
		s.qos.fq.Release()
		s.qos.ctl.Completed(wall)
	}
	s.observeDuration(s.now().Sub(start))
	s.metrics.jobSeconds.With(sp.Kind).Observe(wall.Seconds())
	if execErr != nil {
		span.SetAttr("error", execErr.Error())
	}
	span.End()
	s.logf("rid=%s kind=%s key=%s finished err=%v wall=%s", rid, sp.Kind, key, execErr != nil, wall.Round(time.Microsecond))

	if execErr == nil {
		// Durability before acknowledgment, like the sweep checkpoint
		// contract: an artifact the store cannot keep is a failed job,
		// not a silently volatile success. Under QoS a storage failure
		// instead pins the cached-only brownout and serves the artifact
		// from the volatile tier, explicitly marked non-durable — the
		// computed result survives even though the journal is gone.
		if err := s.cache.Record(key, raw); err != nil {
			if s.qos != nil {
				s.qosRecordFailure(w, rid, key, raw, err)
			} else {
				execErr = fmt.Errorf("serve: record artifact: %w", err)
				raw = nil
			}
		}
	}
	s.completeInflight(key, job, raw, execErr)
	s.finishResponse(w, key, region, raw, execErr, "miss")
}

// registerInflight returns the coalescing entry for key and whether the
// caller is its leader (first submitter, responsible for execution).
func (s *Server) registerInflight(key string) (*inflightJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job, ok := s.inflight[key]; ok {
		return job, false
	}
	job := &inflightJob{done: make(chan struct{})}
	s.inflight[key] = job
	return job, true
}

// completeInflight publishes the leader's outcome to coalesced waiters
// and retires the entry (the cache answers future duplicates).
func (s *Server) completeInflight(key string, job *inflightJob, raw []byte, err error) {
	s.mu.Lock()
	job.raw, job.err = raw, err
	delete(s.inflight, key)
	s.mu.Unlock()
	close(job.done)
}

// finishResponse maps an execution outcome to its HTTP shape and feeds
// the breaker. Classification, in order: strict invariant abort
// (quarantinable property of the region), recovered panic (the job
// died, the pool did not), deadline, client kill, other failure.
func (s *Server) finishResponse(w http.ResponseWriter, key, region string, raw []byte, err error, cacheState string) {
	if err == nil {
		s.metrics.completed.Inc()
		s.breaker.Success(region)
		s.serveArtifact(w, key, raw, cacheState)
		return
	}
	s.metrics.failed.Inc()
	if v, ok := invariant.StrictAbort(err); ok {
		s.breaker.Failure(region)
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{
			Error: err.Error(), Reason: "invariant-abort",
			Violation: v.String(), Region: region,
		})
		return
	}
	// Non-strict failures release a half-open probe without closing or
	// re-opening the region: they say nothing about the parameters.
	s.breaker.Release(region)
	var pe *sweep.PanicError
	switch {
	case errors.As(err, &pe):
		writeJSON(w, http.StatusInternalServerError, errorBody{
			Error: "job panicked (worker pool unaffected): " + pe.Error(), Reason: "panic",
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{
			Error: "job deadline exceeded", Reason: "deadline",
		})
	case errors.Is(err, context.Canceled):
		s.metrics.killed.Inc()
		writeJSON(w, http.StatusRequestTimeout, errorBody{
			Error: "job cancelled", Reason: "killed",
		})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Reason: "internal"})
	}
}

func (s *Server) serveArtifact(w http.ResponseWriter, key string, raw []byte, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-Key", key)
	w.Header().Set("X-Cache", cacheState)
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rid := s.nextRequestID()
	w.Header().Set("X-Request-ID", rid)
	key := r.PathValue("key")
	raw, ok := s.cache.Lookup(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no artifact for key " + key, Reason: "not-found"})
		return
	}
	s.metrics.cacheHits.Inc()
	s.serveArtifact(w, key, raw, "hit")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		s.reject(w, http.StatusServiceUnavailable, time.Second, errorBody{
			Error: "draining", Reason: "draining",
		})
		return
	}
	if s.qos != nil {
		if level := s.qos.wd.Level(); level >= qos.CachedOnly {
			s.reject(w, http.StatusServiceUnavailable, s.qos.ctl.RetryAfter(), errorBody{
				Error: "brownout level " + level.String(), Reason: "brownout",
			})
			return
		}
	}
	if len(s.queueSlots) >= s.cfg.QueueCap {
		s.reject(w, http.StatusServiceUnavailable, s.retryAfter(), errorBody{
			Error: "admission queue at shed threshold", Reason: "shed",
			QueueDepth: len(s.queueSlots), Utilization: s.utilization(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ready\n"))
}

// Status is the /statusz snapshot. Counter fields are read from the
// telemetry registry — /statusz and /metrics can never disagree.
type Status struct {
	Draining bool `json:"draining"`
	// UptimeSec is the monotonic process uptime (real clock, immune to
	// test-clock overrides and wall-clock jumps).
	UptimeSec      float64        `json:"uptime_sec"`
	Workers        int            `json:"workers"`
	QueueCap       int            `json:"queue_cap"`
	InFlight       int            `json:"in_flight"`
	Queued         int            `json:"queued"`
	ActiveJobs     int            `json:"active_jobs"`
	Utilization    float64        `json:"utilization"`
	Accepted       uint64         `json:"accepted"`
	Completed      uint64         `json:"completed"`
	Failed         uint64         `json:"failed"`
	Shed           uint64         `json:"shed"`
	CacheHits      uint64         `json:"cache_hits"`
	Coalesced      uint64         `json:"coalesced"`
	Killed         uint64         `json:"killed"`
	BreakerRejects uint64         `json:"breaker_rejects"`
	BreakerTrips   uint64         `json:"breaker_trips"`
	JournalLen     int            `json:"journal_len"`
	Breaker        []RegionStatus `json:"breaker,omitempty"`
	// QoS is the closed-loop admission block; absent without Config.QoS.
	QoS *QoSStatus `json:"qos,omitempty"`
	// Lease is this worker's leadership-witness state: the highest
	// granted term (the fencing floor) and the current holder, if any.
	Lease *LeaseStatus `json:"lease,omitempty"`
}

// StatusSnapshot assembles the live Status.
func (s *Server) StatusSnapshot() Status {
	s.mu.Lock()
	draining, active := s.draining, s.active
	s.mu.Unlock()
	return Status{
		Draining:       draining,
		UptimeSec:      time.Since(s.startMono).Seconds(),
		Workers:        s.cfg.Workers,
		QueueCap:       s.cfg.QueueCap,
		InFlight:       len(s.workerSlots),
		Queued:         len(s.queueSlots),
		ActiveJobs:     active,
		Utilization:    s.utilization(),
		Accepted:       s.metrics.accepted.Value(),
		Completed:      s.metrics.completed.Value(),
		Failed:         s.metrics.failed.Value(),
		Shed:           s.metrics.shed.Value(),
		CacheHits:      s.metrics.cacheHits.Value(),
		Coalesced:      s.metrics.coalesced.Value(),
		Killed:         s.metrics.killed.Value(),
		BreakerRejects: s.metrics.breakerRejects.Value(),
		BreakerTrips:   s.metrics.breakerTransitions.With("open").Value(),
		JournalLen:     s.cache.Len(),
		Breaker:        s.breaker.Snapshot(),
		QoS:            s.qosStatus(),
		Lease:          s.witness.status(),
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatusSnapshot())
}

// Drain stops admission: new submissions get 503 while accepted jobs
// keep their workers. It is idempotent and returns immediately; pair it
// with WaitIdle (and http.Server.Shutdown, which waits for in-flight
// handlers) for a full graceful stop.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// WaitIdle blocks until every accepted job has finished or ctx expires.
// Combined with Drain it is the serving half of the repository's
// graceful-shutdown contract: stop admitting, finish in-flight work,
// then let the process exit 0.
func (s *Server) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		active := s.active
		s.mu.Unlock()
		if active == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain timed out with %d jobs in flight: %w", active, ctx.Err())
		case <-tick.C:
		}
	}
}

// ActiveJobs reports the accepted-but-unfinished job count.
func (s *Server) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}
