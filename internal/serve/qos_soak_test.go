package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"bcnphase/internal/qos"
)

// soakSlowBase marks soak jobs for the exec hook: every solve whose
// MaxArcs carries the base gets a fixed service time, so the soak has a
// known capacity (Workers / serviceTime) to overload against.
const soakSlowBase = 500000

// TestOverloadSoak is the QoS gating soak: four tenants — one of them
// greedy, posting with 4x the client concurrency — overload a small
// QoS-enabled server with unique jobs (no dedup relief) for a fixed
// wall-clock window while the control loop ticks. The invariants:
//
//   - Zero accepted-job losses: the server's own ledger balances
//     (accepted == completed, nothing failed or killed) and every 200
//     body is a fully-populated artifact.
//   - Per-tenant fairness: no tenant's completed-job throughput falls
//     below its fair share divided by 1.5, despite the greedy tenant
//     offering 4x the load.
//   - Every shed is explicit: only 429/503 with a Reason ever comes
//     back; nothing times out or drops.
//   - The qos_* accounting is internally consistent (per-tenant admits
//     sum to the global admit counter; the control loop ticked).
func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	checkGoroutines(t)
	setExecHook(t, func(sp Spec) {
		if sp.Kind == KindSolve && sp.Solve != nil && sp.Solve.MaxArcs >= soakSlowBase {
			time.Sleep(5 * time.Millisecond)
		}
	})

	s, ts := newTestServer(t, Config{
		Workers:  4,
		QueueCap: 16,
		QoS: &qos.Config{
			TickInterval: -1, // ticked from the loop below
			Brownout:     qos.BrownoutConfig{MaxGoroutines: -1},
		},
	})
	t.Cleanup(s.Close)

	// Control loop at a 5ms cadence for the whole soak.
	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		tk := time.NewTicker(5 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-tk.C:
				s.qosTick()
			}
		}
	}()

	// Tenants and their client concurrency: "greedy" offers 4x.
	clients := map[string]int{"greedy": 8, "t1": 2, "t2": 2, "t3": 2}
	const soakFor = 2 * time.Second

	type ledger struct {
		ok, shed429, shed503, other int
		badArtifacts                int
	}
	results := make(map[string]*ledger, len(clients))
	for tenant := range clients {
		results[tenant] = &ledger{}
	}
	var mu sync.Mutex

	var wg sync.WaitGroup
	stopAt := time.Now().Add(soakFor)
	var uniq int64
	var uniqMu sync.Mutex
	nextSpec := func() []byte {
		uniqMu.Lock()
		uniq++
		n := uniq
		uniqMu.Unlock()
		sp := solveSpec()
		sp.Solve.MaxArcs = soakSlowBase + int(n)
		b, _ := json.Marshal(sp)
		return b
	}

	for tenant, n := range clients {
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				led := ledger{}
				for time.Now().Before(stopAt) {
					resp, err := postTenant(ts.URL, tenant, nextSpec())
					if err != nil {
						led.other++
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						led.ok++
						var art Artifact
						if err := json.NewDecoder(resp.Body).Decode(&art); err != nil || art.Solve == nil || art.Solve.Outcome == "" {
							led.badArtifacts++
						}
					case http.StatusTooManyRequests:
						led.shed429++
					case http.StatusServiceUnavailable:
						led.shed503++
					default:
						led.other++
					}
					resp.Body.Close()
				}
				mu.Lock()
				r := results[tenant]
				r.ok += led.ok
				r.shed429 += led.shed429
				r.shed503 += led.shed503
				r.other += led.other
				r.badArtifacts += led.badArtifacts
				mu.Unlock()
			}(tenant)
		}
	}
	wg.Wait()
	close(tickStop)
	<-tickDone

	// Ledger balance: everything the server accepted, it completed.
	st := s.StatusSnapshot()
	if st.Failed != 0 || st.Killed != 0 {
		t.Errorf("accepted-job losses: failed=%d killed=%d", st.Failed, st.Killed)
	}
	if st.Accepted != st.Completed {
		t.Errorf("ledger imbalance: accepted=%d completed=%d", st.Accepted, st.Completed)
	}

	total := 0
	for tenant, r := range results {
		t.Logf("tenant %-6s ok=%-5d 429=%-5d 503=%-5d other=%d", tenant, r.ok, r.shed429, r.shed503, r.other)
		if r.other != 0 {
			t.Errorf("tenant %s: %d responses outside {200,429,503}", tenant, r.other)
		}
		if r.badArtifacts != 0 {
			t.Errorf("tenant %s: %d malformed artifacts on 200s", tenant, r.badArtifacts)
		}
		if r.ok == 0 {
			t.Errorf("tenant %s: starved (zero completions)", tenant)
		}
		total += r.ok
	}

	// Fairness: with the weighted fair queue interleaving tenants at the
	// worker slots, no tenant may fall below fair-share/1.5 even though
	// one tenant offers 4x the load.
	fair := float64(total) / float64(len(clients))
	for tenant, r := range results {
		if float64(r.ok) < fair/1.5 {
			t.Errorf("tenant %s: %d completions, below fair share %.0f / 1.5", tenant, r.ok, fair)
		}
	}

	// The qos_* accounting is consistent with itself.
	if st.QoS == nil {
		t.Fatal("missing qos status block")
	}
	var tenantSum uint64
	for _, n := range st.QoS.TenantAdmitted {
		tenantSum += n
	}
	if got := s.qos.metrics.Admitted.Value(); got != tenantSum {
		t.Errorf("qos_admitted=%d but per-tenant admits sum to %d", got, tenantSum)
	}
	if s.qos.metrics.Ticks.Value() == 0 {
		t.Error("control loop never ticked during soak")
	}
	if st.QoS.AdvertisedRate <= 0 {
		t.Errorf("advertised rate %.2f after soak", st.QoS.AdvertisedRate)
	}
}

// postTenant posts body as tenant without testing.T plumbing (soak
// client goroutines must not call t helpers).
func postTenant(url, tenant string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(qos.TenantHeader, tenant)
	return http.DefaultClient.Do(req)
}
