package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bcnphase/internal/core"
	"bcnphase/internal/faults"
)

// solveSpec returns a valid solve job over the paper's worked example.
func solveSpec() Spec {
	return Spec{Kind: KindSolve, Solve: &SolveSpec{Params: core.PaperExample()}}
}

func netsimSpec() Spec {
	return Spec{Kind: KindNetsim, Netsim: &NetsimSpec{
		N: 4, Capacity: 1e9, BufferBits: 4e6, Q0: 5e5, DurationSec: 0.002, Seed: 7,
	}}
}

func sweepSpec() Spec {
	return Spec{Kind: KindSweep, Sweep: &SweepSpec{
		BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 1.0 / 512, GdHi: 0.1, Steps: 3,
	}}
}

func TestDecodeSpecValid(t *testing.T) {
	for name, body := range map[string]string{
		"solve":  `{"kind":"solve","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		"sweep":  `{"kind":"sweep","sweep":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}}`,
		"netsim": `{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":0.002}}`,
	} {
		if _, err := DecodeSpec(strings.NewReader(body), 0); err != nil {
			t.Errorf("%s: valid spec rejected: %v", name, err)
		}
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"not json":         `{{{`,
		"unknown field":    `{"kind":"solve","bogus":1}`,
		"trailing data":    `{"kind":"solve","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}} extra`,
		"unknown kind":     `{"kind":"dance"}`,
		"no body":          `{"kind":"solve"}`,
		"two bodies":       `{"kind":"solve","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}},"sweep":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}}`,
		"kind/body cross":  `{"kind":"sweep","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		"bad params":       `{"kind":"solve","solve":{"params":{"N":-1,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		"bad policy":       `{"kind":"solve","invariants":"loose","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		"negative timeout": `{"kind":"solve","timeout_ms":-5,"solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":0.0078125,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`,
		"huge sweep":       `{"kind":"sweep","sweep":{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":4096}}`,
		"sweep b<=q0":      `{"kind":"sweep","sweep":{"b_over_q0":0.5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}}`,
		"netsim too long":  `{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":3600}}`,
		"netsim bad fault": `{"kind":"netsim","netsim":{"n":4,"capacity":1e9,"buffer_bits":4e6,"q0":5e5,"duration_sec":0.002,"faults":{"FeedbackLoss":2}}}`,
	}
	for name, body := range cases {
		if _, err := DecodeSpec(strings.NewReader(body), 0); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrSpec) {
			t.Errorf("%s: error does not wrap ErrSpec: %v", name, err)
		}
	}
}

// A spec with broken physics is admissible when it explicitly asks for
// a checked policy — that is the path that feeds the circuit breaker —
// but never under the default off policy.
func TestDecodeSpecBrokenParamsNeedCheckedPolicy(t *testing.T) {
	const broken = `{"kind":"solve","invariants":"%s","solve":{"params":{"N":50,"C":1e10,"Ru":8e6,"Gi":4,"Gd":-1,"W":2,"Pm":0.01,"Q0":2.5e6,"B":5e6}}}`
	for _, pol := range []string{"strict", "record", "clamp"} {
		if _, err := DecodeSpec(strings.NewReader(strings.Replace(broken, "%s", pol, 1)), 0); err != nil {
			t.Errorf("broken params under %s rejected: %v", pol, err)
		}
	}
	if _, err := DecodeSpec(strings.NewReader(strings.Replace(broken, `,"invariants":"%s"`, "", 1)), 0); err == nil {
		t.Error("broken params under off policy accepted")
	}
}

func TestSpecKeyIdentity(t *testing.T) {
	a := solveSpec()
	b := solveSpec()
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := b.Key()
	if ka != kb {
		t.Error("identical specs hash differently")
	}
	// Execution knobs do not change identity.
	b.TimeoutMs = 5000
	if kb, _ = b.Key(); ka != kb {
		t.Error("timeout_ms changed the dedup key")
	}
	// The invariant policy does ("" normalizes to "off").
	b.Invariants = "off"
	if kb, _ = b.Key(); ka != kb {
		t.Error(`"" and "off" policies hash differently`)
	}
	b.Invariants = "strict"
	if kb, _ = b.Key(); ka == kb {
		t.Error("policy change did not change the dedup key")
	}
	// Any scientific parameter does.
	c := solveSpec()
	c.Solve.Params.Gi *= 2
	if kc, _ := c.Key(); ka == kc {
		t.Error("parameter change did not change the dedup key")
	}
}

func TestSpecTimeoutResolution(t *testing.T) {
	sp := solveSpec()
	if d := sp.Timeout(30*time.Second, 2*time.Minute); d != 30*time.Second {
		t.Errorf("default timeout: got %v", d)
	}
	sp.TimeoutMs = 100
	if d := sp.Timeout(30*time.Second, 2*time.Minute); d != 100*time.Millisecond {
		t.Errorf("explicit timeout: got %v", d)
	}
	sp.TimeoutMs = int64((10 * time.Minute) / time.Millisecond)
	if d := sp.Timeout(30*time.Second, 2*time.Minute); d != 2*time.Minute {
		t.Errorf("cap not applied: got %v", d)
	}
}

func TestRegionKeyBuckets(t *testing.T) {
	a, b := solveSpec(), solveSpec()
	// Same binary-log bucket → same region.
	b.Solve.Params.Gi = a.Solve.Params.Gi * 1.01
	if a.RegionKey() != b.RegionKey() {
		t.Errorf("near-identical gains in different regions: %s vs %s", a.RegionKey(), b.RegionKey())
	}
	// A decade apart → different region.
	b.Solve.Params.Gi = a.Solve.Params.Gi * 10
	if a.RegionKey() == b.RegionKey() {
		t.Error("gains a decade apart share a region")
	}
	if ns := netsimSpec(); ns.RegionKey() == a.RegionKey() {
		t.Error("netsim and solve share a region")
	}
	if sw := sweepSpec(); !strings.HasPrefix(sw.RegionKey(), "sweep:") {
		t.Errorf("sweep region key: %s", sw.RegionKey())
	}
}

func TestNetsimSpecDefaults(t *testing.T) {
	ns := netsimSpec().Netsim
	cfg := ns.config(0)
	if cfg.LineRate != cfg.Capacity || cfg.FrameBits != 12000 || !(cfg.Gi > 0) || !(cfg.Gd > 0) {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("defaulted config invalid: %v", err)
	}
	withFaults := netsimSpec()
	withFaults.Netsim.Faults = &faults.Config{Seed: 7, FeedbackLoss: 0.2}
	if err := withFaults.Validate(); err != nil {
		t.Errorf("faulted netsim spec rejected: %v", err)
	}
}
