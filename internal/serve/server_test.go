package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bcnphase/internal/core"
	"bcnphase/internal/faults"
)

// Chaos markers: the exec hook turns jobs whose MaxArcs carries one of
// these sentinels into injected failures, so tests can poison a job
// without touching the model code.
const (
	markPanic = 777001
	markSlow  = 777002
	markStall = 777003
)

func setExecHook(t *testing.T, fn func(Spec)) {
	t.Helper()
	execHook.Store(&fn)
	t.Cleanup(func() { execHook.Store(nil) })
}

func chaosHook(sp Spec) {
	if sp.Kind != KindSolve || sp.Solve == nil {
		return
	}
	switch sp.Solve.MaxArcs {
	case markPanic:
		panic("chaos: poisoned job")
	case markSlow:
		time.Sleep(200 * time.Millisecond)
	case markStall:
		time.Sleep(50 * time.Millisecond)
	}
}

func installChaosHook(t *testing.T) {
	t.Helper()
	setExecHook(t, chaosHook)
}

// checkGoroutines asserts the test leaks no goroutines: the count must
// return to (near) its starting value once work drains. The tolerance
// absorbs runtime background goroutines; abandoned evaluations get a
// grace window to finish.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			runtime.GC()
			after := runtime.NumGoroutine()
			if after <= before+3 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func marshalSpec(t *testing.T, sp Spec) []byte {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSpec(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return buf.Bytes()
}

func TestSubmitSolveAndCacheHit(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	body := marshalSpec(t, solveSpec())

	resp := postSpec(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first submit X-Cache=%q", got)
	}
	first := readBody(t, resp)
	var art Artifact
	if err := json.Unmarshal(first, &art); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	// The paper example's buffer is deliberately undersized (Theorem 1
	// asks for ~13.8 Mbit, B is 5 Mbit), so the verdict is overflow —
	// what matters here is that the artifact is fully populated.
	if art.Kind != KindSolve || art.Solve == nil || art.Solve.Outcome == "" || art.Solve.Theorem1Bound <= 0 {
		t.Errorf("unexpected artifact: %+v %+v", art, art.Solve)
	}

	// Resubmission is answered from the store, byte-identically.
	resp2 := postSpec(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("resubmit: status %d cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if second := readBody(t, resp2); !bytes.Equal(first, second) {
		t.Error("cached artifact differs from original bytes")
	}

	// And retrievable by key.
	get, err := http.Get(ts.URL + "/v1/jobs/" + resp.Header.Get("X-Job-Key"))
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Errorf("GET by key: status %d", get.StatusCode)
	}
}

func TestSubmitMalformedNeverPanics(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty":     "",
		"garbage":   "{{{",
		"unknown":   `{"kind":"solve","zzz":1}`,
		"bad kind":  `{"kind":"zebra"}`,
		"nan sneak": `{"kind":"sweep","sweep":{"b_over_q0":5,"gi_lo":1e999,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}}`,
	} {
		resp := postSpec(t, ts.URL, []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		var eb errorBody
		if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
			t.Errorf("%s: error body not JSON: %v", name, err)
		} else if eb.Reason != "malformed-spec" {
			t.Errorf("%s: reason %q", name, eb.Reason)
		}
	}
}

func TestSubmitOversizedBodyIs413(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	huge := `{"kind":"solve","solve":{"params":{"N":` + strings.Repeat("9", 1<<20) + `}}}`
	resp := postSpec(t, ts.URL, []byte(huge))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if eb.Reason != "body-too-large" {
		t.Errorf("reason %q, want body-too-large", eb.Reason)
	}
}

func TestNetsimJobWithFaults(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	sp := netsimSpec()
	sp.Netsim.Faults = &faults.Config{Seed: 7, FeedbackLoss: 0.3, FeedbackJitterNs: 20_000}
	body := marshalSpec(t, sp)
	resp := postSpec(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var art Artifact
	if err := json.Unmarshal(readBody(t, resp), &art); err != nil {
		t.Fatal(err)
	}
	if art.Netsim == nil || art.Netsim.Events == 0 {
		t.Errorf("empty netsim artifact: %+v", art.Netsim)
	}
}

func TestSweepJob(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	resp := postSpec(t, ts.URL, marshalSpec(t, sweepSpec()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var art Artifact
	if err := json.Unmarshal(readBody(t, resp), &art); err != nil {
		t.Fatal(err)
	}
	if art.Sweep == nil || len(art.Sweep.Rows) != 9 || art.Sweep.Failed != 0 {
		t.Errorf("sweep artifact: %+v", art.Sweep)
	}
}

func TestLoadSheddingExplicitFeedback(t *testing.T) {
	checkGoroutines(t)
	installChaosHook(t)
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})

	// One slow job occupies the worker, one occupies the waiting room;
	// distinct params keep them from coalescing.
	var wg sync.WaitGroup
	launch := func(gi float64) {
		sp := solveSpec()
		sp.Solve.MaxArcs = markSlow
		sp.Solve.Params.Gi = gi
		body := marshalSpec(t, sp)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	launch(4.0)
	launch(4.5)
	// Wait until both are admitted (worker busy + queue full).
	waitFor(t, time.Second, func() bool {
		st := statusOf(t, ts.URL)
		return st.InFlight == 1 && st.Queued == 1
	})

	sp := solveSpec()
	sp.Solve.Params.Gi = 5.0
	resp := postSpec(t, ts.URL, marshalSpec(t, sp))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Reason != "shed" || eb.RetryAfterSec < 1 || eb.QueueDepth < 1 || eb.Utilization <= 0 {
		t.Errorf("shed feedback incomplete: %+v", eb)
	}
	// readyz reflects the saturated queue.
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz at shed threshold: status %d", ready.StatusCode)
	}
	wg.Wait()
}

func TestPanicIsolation(t *testing.T) {
	checkGoroutines(t)
	installChaosHook(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	poison := solveSpec()
	poison.Solve.MaxArcs = markPanic
	resp := postSpec(t, ts.URL, marshalSpec(t, poison))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned job: status %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Reason != "panic" {
		t.Errorf("reason %q, want panic", eb.Reason)
	}
	// The pool survives: a healthy job still completes.
	resp2 := postSpec(t, ts.URL, marshalSpec(t, solveSpec()))
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthy job after panic: status %d", resp2.StatusCode)
	}
}

func TestJobDeadline(t *testing.T) {
	checkGoroutines(t)
	installChaosHook(t)
	_, ts := newTestServer(t, Config{})
	sp := solveSpec()
	sp.Solve.MaxArcs = markSlow // 200ms stall
	sp.TimeoutMs = 20
	resp := postSpec(t, ts.URL, marshalSpec(t, sp))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Reason != "deadline" {
		t.Errorf("reason %q", eb.Reason)
	}
}

func TestBreakerQuarantinesRegionOverHTTP(t *testing.T) {
	checkGoroutines(t)
	clk := newFakeClock()
	_, ts := newTestServer(t, Config{BreakerThreshold: 3, BreakerCooldown: 30 * time.Second, Now: clk.now})

	broken := Spec{Kind: KindSolve, Invariants: "strict", Solve: &SolveSpec{Params: func() core.Params {
		p := core.PaperExample()
		p.Gd = -1 // invalid physics: strict policy aborts with a structured violation
		return p
	}()}}
	body := marshalSpec(t, broken)
	for i := 0; i < 3; i++ {
		resp := postSpec(t, ts.URL, body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("abort %d: status %d: %s", i, resp.StatusCode, readBody(t, resp))
		}
		var eb errorBody
		if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
			t.Fatal(err)
		}
		if eb.Reason != "invariant-abort" || eb.Violation == "" {
			t.Errorf("abort %d body: %+v", i, eb)
		}
	}
	// The region is now quarantined: same region, different params.
	sibling := Spec{Kind: KindSolve, Invariants: "strict", Solve: &SolveSpec{Params: func() core.Params {
		p := core.PaperExample()
		p.Gd = -1.01
		return p
	}()}}
	resp := postSpec(t, ts.URL, marshalSpec(t, sibling))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined region: status %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(readBody(t, resp), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Reason != "breaker-open" || resp.Header.Get("Retry-After") == "" {
		t.Errorf("breaker rejection: %+v retry=%q", eb, resp.Header.Get("Retry-After"))
	}
	// A healthy region is untouched.
	if resp := postSpec(t, ts.URL, marshalSpec(t, solveSpec())); resp.StatusCode != http.StatusOK {
		t.Errorf("healthy region rejected: %d", resp.StatusCode)
	}
	// After the cooldown a working probe closes the region again.
	clk.advance(31 * time.Second)
	fixed := solveSpec()
	fixed.Invariants = "strict"
	if resp := postSpec(t, ts.URL, marshalSpec(t, fixed)); resp.StatusCode != http.StatusOK {
		// fixed is a different region (positive Gd bucket); probe the
		// broken region itself with now-valid params is impossible, so
		// just assert statusz reports the trip.
		t.Logf("probe status %d", resp.StatusCode)
	}
	st := statusOf(t, ts.URL)
	if st.BreakerRejects == 0 || st.Failed < 3 {
		t.Errorf("statusz breaker counters: %+v", st)
	}
}

func TestDrainRefusesNewFinishesInFlight(t *testing.T) {
	checkGoroutines(t)
	installChaosHook(t)
	s, ts := newTestServer(t, Config{Workers: 2})

	slow := solveSpec()
	slow.Solve.MaxArcs = markSlow
	body := marshalSpec(t, slow)
	type result struct {
		status int
		cache  string
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{}
			return
		}
		defer resp.Body.Close()
		done <- result{resp.StatusCode, resp.Header.Get("X-Cache")}
	}()
	waitFor(t, time.Second, func() bool { return s.ActiveJobs() == 1 })

	s.Drain()
	// New work is refused with explicit feedback...
	resp := postSpec(t, ts.URL, marshalSpec(t, solveSpec()))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain admit: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining rejection missing Retry-After")
	}
	// ...while the accepted job finishes.
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight job during drain: status %d", r.status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	if !statusOf(t, ts.URL).Draining {
		t.Error("statusz does not report draining")
	}
}

func TestCoalesceConcurrentDuplicates(t *testing.T) {
	checkGoroutines(t)
	var mu sync.Mutex
	execs := 0
	setExecHook(t, func(sp Spec) {
		mu.Lock()
		execs++
		mu.Unlock()
		chaosHook(sp)
	})
	_, ts := newTestServer(t, Config{Workers: 4})
	sp := solveSpec()
	sp.Solve.MaxArcs = markSlow
	body := marshalSpec(t, sp)

	const dupes = 4
	type reply struct {
		status int
		cache  string
		body   []byte
	}
	replies := make(chan reply, dupes)
	var wg sync.WaitGroup
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				replies <- reply{}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Cache"), buf.Bytes()}
		}()
	}
	wg.Wait()
	close(replies)
	var bodies [][]byte
	coalesced := 0
	for r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("duplicate submit status %d", r.status)
		}
		if r.cache == "coalesced" {
			coalesced++
		}
		bodies = append(bodies, r.body)
	}
	for _, b := range bodies[1:] {
		if !bytes.Equal(bodies[0], b) {
			t.Error("coalesced duplicates returned different bytes")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if execs != 1 {
		t.Errorf("duplicate spec executed %d times, want 1 (coalesced=%d)", execs, coalesced)
	}
}

func TestHealthEndpoints(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200, "/statusz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	st := statusOf(t, ts.URL)
	if st.Workers == 0 || st.QueueCap == 0 {
		t.Errorf("statusz zero-valued: %+v", st)
	}
}

func TestGetUnknownArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func statusOf(t *testing.T, base string) Status {
	t.Helper()
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
