package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"

	"bcnphase/internal/analytic"
	"bcnphase/internal/cluster"
	"bcnphase/internal/core"
	"bcnphase/internal/faults"
	"bcnphase/internal/invariant"
	"bcnphase/internal/linear"
	"bcnphase/internal/netsim"
	"bcnphase/internal/sweep"
)

// Artifact is the completed-job payload. Its JSON encoding is the
// served artifact and must be deterministic for a given spec — struct
// field order is fixed and no timestamps or host state appear — so a
// resubmitted job can be answered byte-identically from the journal.
type Artifact struct {
	Key        string               `json:"key"`
	Kind       string               `json:"kind"`
	Invariants string               `json:"invariants"`
	Solve      *SolveResult         `json:"solve,omitempty"`
	Sweep      *SweepResult         `json:"sweep,omitempty"`
	Netsim     *NetsimResult        `json:"netsim,omitempty"`
	Shard      *cluster.ShardResult `json:"shard,omitempty"`
}

// SolveResult summarizes one stitched trajectory.
type SolveResult struct {
	Case           string  `json:"case"`
	Outcome        string  `json:"outcome"`
	StronglyStable bool    `json:"strongly_stable"`
	LinearStable   bool    `json:"linear_stable"`
	Theorem1OK     bool    `json:"theorem1_ok"`
	Theorem1Bound  float64 `json:"theorem1_bound_bits"`
	MaxQueueBits   float64 `json:"max_queue_bits"`
	MinQueueBits   float64 `json:"min_queue_bits"`
	Rho            float64 `json:"rho"`
	Crossings      int     `json:"crossings"`
	Violations     uint64  `json:"violations"`
	FirstViolation string  `json:"first_violation,omitempty"`
	// Engine tags which engine produced the verdict: "analytic" or
	// "rk45" (the closed-form engine's two paths); empty for the classic
	// sampled core.Solve, which any non-off invariant policy selects.
	Engine string `json:"engine,omitempty"`
}

// SweepResult carries the gain-plane map as rendered CSV rows plus the
// aggregate tallies.
type SweepResult struct {
	Header     string   `json:"header"`
	Rows       []string `json:"rows"`
	Points     int      `json:"points"`
	Failed     int      `json:"failed"`
	Violations uint64   `json:"violations"`
}

// NetsimResult summarizes one packet-level run.
type NetsimResult struct {
	Events         uint64       `json:"events"`
	SimSeconds     float64      `json:"sim_seconds"`
	Throughput     float64      `json:"throughput_bps"`
	Utilization    float64      `json:"utilization"`
	MaxQueueBits   float64      `json:"max_queue_bits"`
	MinQueueAfter  float64      `json:"min_queue_after_fill_bits"`
	DroppedFrames  uint64       `json:"dropped_frames"`
	PausesSent     uint64       `json:"pauses_sent"`
	JainIndex      float64      `json:"jain_index"`
	MalformedMsgs  uint64       `json:"malformed_msgs"`
	Faults         faults.Stats `json:"faults"`
	Violations     uint64       `json:"violations"`
	FirstViolation string       `json:"first_violation,omitempty"`
}

// execHook, when set, observes every job just as it starts executing
// on a worker goroutine; the chaos tests use it to inject panics and
// stalls into otherwise-healthy jobs. It runs inside sweep.One's
// supervision, so whatever it does stays contained. Atomic because an
// abandoned (deadline-exceeded) job goroutine may still be starting
// while a test swaps the hook.
var execHook atomic.Pointer[func(Spec)]

// execute runs one validated spec to its artifact bytes under the
// job's context deadline. Supervision (panic recovery, abandonment of a
// hung evaluation) comes from sweep.One, so execute can be handed any
// parameter set that passed validation without risking the caller's
// goroutine. A strict invariant abort surfaces as an
// *invariant.InvariantError for the breaker to classify.
func (s *Server) execute(ctx context.Context, sp Spec, key string) ([]byte, error) {
	pol, err := invariant.ParsePolicy(sp.Invariants)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if sp.Invariants == "" {
		pol = s.cfg.Invariants
	}
	mode, err := analytic.ParseMode(sp.Analytic)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if sp.Analytic == "" {
		mode = s.cfg.Analytic
	}
	if sp.Kind == KindShard {
		// A shard's policy and engine mode travel inside the grid (both
		// are part of the grid fingerprint), so every worker in a cluster
		// evaluates rows the same way regardless of its local server
		// defaults.
		pol = sp.Shard.Grid.Policy()
	}
	art, err := sweep.One(ctx, sp, func(ctx context.Context, sp Spec) (*Artifact, error) {
		if h := execHook.Load(); h != nil {
			(*h)(sp)
		}
		art := &Artifact{Key: key, Kind: sp.Kind, Invariants: pol.String()}
		switch sp.Kind {
		case KindSolve:
			res, err := runSolve(sp.Solve, pol, mode, s.jobm)
			if err != nil {
				return nil, err
			}
			art.Solve = res
		case KindSweep:
			res, err := runSweep(ctx, sp.Sweep, pol, mode, s.jobm)
			if err != nil {
				return nil, err
			}
			art.Sweep = res
		case KindNetsim:
			res, err := runNetsim(ctx, sp.Netsim, pol, s.jobm)
			if err != nil {
				return nil, err
			}
			art.Netsim = res
		case KindShard:
			res, err := runShard(ctx, sp.Shard, s.jobm)
			if err != nil {
				return nil, err
			}
			art.Shard = res
		default:
			return nil, fmt.Errorf("%w: unknown kind %q", ErrSpec, sp.Kind)
		}
		return art, nil
	}, sweep.Options{PointTimeout: sp.Timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)})
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(art)
	if err != nil {
		return nil, fmt.Errorf("serve: encode artifact: %w", err)
	}
	return raw, nil
}

func runSolve(s *SolveSpec, pol invariant.Policy, mode analytic.Mode, jm jobMetrics) (*SolveResult, error) {
	// The analytic engine carries no invariant instrumentation, so it
	// serves only uninstrumented jobs; any checked policy keeps the
	// classic sampled path below.
	if mode != analytic.ModeOff && pol == invariant.Off {
		return runSolveAnalytic(s, mode, jm)
	}
	// Solve first: under a strict policy invalid physics must surface as
	// the checker's structured abort (the breaker's signal), not as the
	// linear criterion's plain validation error.
	tr, err := core.Solve(s.Params, core.SolveOptions{
		Start:      s.Start,
		MaxArcs:    s.MaxArcs,
		Invariants: invariant.NewPolicy(pol),
		Telemetry:  jm.solve,
	})
	if err != nil {
		return nil, err
	}
	// The linear/Theorem-1 verdicts only exist for valid parameters; a
	// record/clamp run over broken physics reports them zero-valued.
	var v linear.Verdict
	var bound float64
	if s.Params.Validate() == nil {
		if v, err = linear.Compare(s.Params); err != nil {
			return nil, err
		}
		bound = core.Theorem1Bound(s.Params)
	}
	return &SolveResult{
		Case:           s.Params.Case().String(),
		Outcome:        tr.Outcome.String(),
		StronglyStable: tr.Outcome.StronglyStable(),
		LinearStable:   v.LinearStable,
		Theorem1OK:     v.Theorem1OK,
		Theorem1Bound:  bound,
		MaxQueueBits:   tr.MaxQueue(),
		MinQueueBits:   tr.MinQueue(),
		Rho:            tr.Rho,
		Crossings:      len(tr.Crossings),
		Violations:     tr.Violations.Total,
		FirstViolation: tr.Violations.FirstPredicate(),
	}, nil
}

// runSolveAnalytic answers a solve job from the sampling-free engine.
// It only runs under the off invariant policy, which guarantees the
// parameters passed core validation at spec time — so the linear and
// Theorem 1 columns always exist and need no trajectory to compute.
func runSolveAnalytic(s *SolveSpec, mode analytic.Mode, jm jobMetrics) (*SolveResult, error) {
	res, err := analytic.SolveOne(s.Params, analytic.Options{
		Mode:    mode,
		Start:   s.Start,
		MaxArcs: s.MaxArcs,
		Metrics: jm.analytic,
	})
	if err != nil {
		return nil, err
	}
	return &SolveResult{
		Case:           s.Params.Case().String(),
		Outcome:        res.Outcome.String(),
		StronglyStable: res.Outcome.StronglyStable(),
		LinearStable:   linear.SubsystemStable(s.Params, core.Increase) && linear.SubsystemStable(s.Params, core.Decrease),
		Theorem1OK:     core.Theorem1Satisfied(s.Params),
		Theorem1Bound:  core.Theorem1Bound(s.Params),
		MaxQueueBits:   res.MaxQueue(s.Params),
		MinQueueBits:   res.MinQueue(s.Params),
		Rho:            res.Rho,
		Crossings:      res.Crossings,
		Engine:         res.Path.String(),
	}, nil
}

func runSweep(ctx context.Context, s *SweepSpec, pol invariant.Policy, mode analytic.Mode, jm jobMetrics) (*SweepResult, error) {
	base := core.FigureExample()
	base.B = s.BOverQ0 * base.Q0
	var points []core.Params
	for i := 0; i < s.Steps; i++ {
		p := base
		p.Gi = geomAt(s.GiLo, s.GiHi, i, s.Steps)
		for j := 0; j < s.Steps; j++ {
			q := p
			q.Gd = geomAt(s.GdLo, s.GdHi, j, s.Steps)
			points = append(points, q)
		}
	}
	type rowVal struct {
		CSV        string
		Violations uint64
	}
	// The job already occupies one worker slot; a modest inner pool
	// keeps a single sweep job from monopolizing the host while the
	// service runs other work.
	inner := sweep.Options{Workers: 2, ContinueOnError: true, Metrics: jm.sweep}
	var results []sweep.Result[core.Params, rowVal]
	if mode != analytic.ModeOff && pol == invariant.Off {
		// Sampling-free path: batch points per worker slot so one warm
		// Solver (and one supervision round) serves a whole span.
		results, _ = sweep.RunBatched(ctx, points, execBatchSize,
			func(ctx context.Context, ps []core.Params, out []rowVal) error {
				solver := analytic.NewSolver()
				opts := analytic.Options{Mode: mode, Metrics: jm.analytic}
				for i, p := range ps {
					if err := ctx.Err(); err != nil {
						return err
					}
					r, err := solver.Solve(p, opts)
					if err != nil {
						return err
					}
					out[i] = rowVal{CSV: fmt.Sprintf("%g,%g,%s,%v,%g,%g,%d",
						p.Gi, p.Gd, r.Outcome, r.Outcome.StronglyStable(),
						r.MaxQueue(p), r.Rho, 0)}
				}
				return nil
			}, inner)
	} else {
		results, _ = sweep.Run(ctx, points, func(ctx context.Context, p core.Params) (rowVal, error) {
			if err := ctx.Err(); err != nil {
				return rowVal{}, err
			}
			tr, err := core.Solve(p, core.SolveOptions{
				Invariants: invariant.NewPolicy(pol),
				Telemetry:  jm.solve,
			})
			if err != nil {
				return rowVal{}, err
			}
			return rowVal{
				CSV: fmt.Sprintf("%g,%g,%s,%v,%g,%g,%d",
					p.Gi, p.Gd, tr.Outcome, tr.Outcome.StronglyStable(),
					tr.MaxQueue(), tr.Rho, tr.Violations.Total),
				Violations: tr.Violations.Total,
			}, nil
		}, inner)
	}
	res := &SweepResult{
		Header: "gi,gd,outcome,strongly_stable,max_q_bits,rho,violations",
		Points: len(points),
	}
	for _, r := range results {
		if r.Err != nil {
			// A strict abort anywhere in the grid is the job's verdict:
			// the region is quarantinable, and a partial map under strict
			// policy would be misleading.
			if _, ok := invariant.StrictAbort(r.Err); ok {
				return nil, r.Err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res.Failed++
			continue
		}
		res.Rows = append(res.Rows, r.Value.CSV)
		res.Violations += r.Value.Violations
	}
	return res, nil
}

// execBatchSize is the span length batched evaluations hand one worker
// slot at a time: long enough to amortize a warm Solver and the span's
// supervision cost, short enough that cancellation and work spread stay
// responsive.
const execBatchSize = 64

// runShard evaluates one cluster sweep shard through the shared
// canonical row evaluator (cluster.GainGrid.EvalBatch) — the same code
// path cmd/bcnsweep runs locally, which is what lets the coordinator
// promise a byte-identical merged map. Points run in batched spans so
// an analytic-mode grid reuses one warm Solver per span. Every point
// must produce a row: a shard with holes is worthless to the merge, so
// the first error (including a strict invariant abort, which feeds the
// worker's own region breaker) fails the whole job and the coordinator
// re-assigns it.
func runShard(ctx context.Context, s *cluster.ShardSpec, jm jobMetrics) (*cluster.ShardResult, error) {
	em := cluster.EvalMetrics{Solve: jm.solve, Analytic: jm.analytic}
	results, _ := sweep.RunBatched(ctx, s.Points, execBatchSize,
		func(ctx context.Context, pts []cluster.GainPoint, out []cluster.Row) error {
			return s.Grid.EvalBatch(ctx, pts, out, em)
		}, sweep.Options{Workers: 2, ContinueOnError: true, Metrics: jm.sweep})
	res := &cluster.ShardResult{Index: s.Index, Rows: make([]cluster.Row, len(results))}
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		res.Rows[i] = r.Value
	}
	// Sign the result where it was computed: the per-row checksums and
	// shard digest let the coordinator reject anything corrupted between
	// this goroutine and its merge.
	cluster.SignShardResult(res)
	return res, nil
}

func runNetsim(ctx context.Context, s *NetsimSpec, pol invariant.Policy, jm jobMetrics) (*NetsimResult, error) {
	cfg := s.config(pol)
	cfg.Metrics = jm.netsim
	net, err := netsim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := net.RunContext(ctx, s.DurationSec)
	if err != nil {
		return nil, err
	}
	return &NetsimResult{
		Events:         res.Events,
		SimSeconds:     res.SimSeconds,
		Throughput:     res.Throughput,
		Utilization:    res.Utilization,
		MaxQueueBits:   res.MaxQueueBits,
		MinQueueAfter:  res.MinQueueAfterFill,
		DroppedFrames:  res.DroppedFrames,
		PausesSent:     res.PausesSent,
		JainIndex:      res.JainIndex,
		MalformedMsgs:  res.MalformedMsgs,
		Faults:         res.Faults,
		Violations:     res.Invariants.Total,
		FirstViolation: res.Invariants.FirstPredicate(),
	}, nil
}

func geomAt(lo, hi float64, i, n int) float64 {
	f := float64(i) / float64(n-1)
	return lo * math.Pow(hi/lo, f)
}
