package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"bcnphase/internal/cluster"
)

// TestWitnessGrantMatrix exercises the lease grant rules one decision
// at a time: higher terms need an open seat or the incumbent, the
// current term renews only for its holder, everything else is denied.
func TestWitnessGrantMatrix(t *testing.T) {
	ttl := int64(60_000) // long: leases in this test never expire on their own
	steps := []struct {
		name      string
		req       cluster.LeaseRequest
		wantGrant bool
		wantTerm  uint64 // fencing term reported after the decision
	}{
		{"first term granted", cluster.LeaseRequest{Candidate: "A", Term: 1, TTLMs: ttl}, true, 1},
		{"renewal by holder", cluster.LeaseRequest{Candidate: "A", Term: 1, TTLMs: ttl}, true, 1},
		{"same term, rival", cluster.LeaseRequest{Candidate: "B", Term: 1, TTLMs: ttl}, false, 1},
		{"higher term, rival, live lease", cluster.LeaseRequest{Candidate: "B", Term: 2, TTLMs: ttl}, false, 1},
		{"higher term, incumbent", cluster.LeaseRequest{Candidate: "A", Term: 3, TTLMs: ttl}, true, 3},
		{"stale term, incumbent", cluster.LeaseRequest{Candidate: "A", Term: 2, TTLMs: ttl}, false, 3},
		{"stale term, rival", cluster.LeaseRequest{Candidate: "B", Term: 1, TTLMs: ttl}, false, 3},
	}
	var wt witness
	for _, st := range steps {
		resp := wt.lease(st.req)
		if resp.Granted != st.wantGrant {
			t.Fatalf("%s: granted=%v, want %v", st.name, resp.Granted, st.wantGrant)
		}
		if resp.Term != st.wantTerm {
			t.Fatalf("%s: fencing term %d, want %d", st.name, resp.Term, st.wantTerm)
		}
	}
	// Unexpired lease reports its holder so candidates learn the leader.
	if resp := wt.lease(cluster.LeaseRequest{Candidate: "B", Term: 3, TTLMs: ttl}); resp.Holder != "A" {
		t.Errorf("denial reports holder %q, want A", resp.Holder)
	}
}

// TestWitnessExpiredSeatOpens: once a lease lapses (monotonic clock), a
// higher-term rival wins the seat.
func TestWitnessExpiredSeatOpens(t *testing.T) {
	var wt witness
	if resp := wt.lease(cluster.LeaseRequest{Candidate: "A", Term: 1, TTLMs: 50}); !resp.Granted {
		t.Fatal("first grant denied")
	}
	// Rival loses while the lease is live...
	if resp := wt.lease(cluster.LeaseRequest{Candidate: "B", Term: 2, TTLMs: 50}); resp.Granted {
		t.Fatal("rival granted over a live lease")
	}
	time.Sleep(70 * time.Millisecond)
	// ...and wins after expiry. The fencing term ratchets to 2.
	resp := wt.lease(cluster.LeaseRequest{Candidate: "B", Term: 2, TTLMs: 50})
	if !resp.Granted {
		t.Fatal("rival denied an expired seat")
	}
	if wt.fencingTerm() != 2 {
		t.Fatalf("fencing term %d after term-2 grant, want 2", wt.fencingTerm())
	}
	// A deposed incumbent cannot re-take its old term.
	if resp := wt.lease(cluster.LeaseRequest{Candidate: "A", Term: 1, TTLMs: 50}); resp.Granted {
		t.Fatal("deposed leader re-granted its stale term")
	}
}

func postLease(t *testing.T, url string, req cluster.LeaseRequest) (int, cluster.LeaseResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr cluster.LeaseResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, lr
}

// TestLeaseEndpointAndFencing drives the full worker-side loop over
// HTTP: grant a term, watch /statusz report it, then see a stale-term
// dispatch fenced with 409 before any execution.
func TestLeaseEndpointAndFencing(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 1})
	defer s.Close()

	if code, _ := postLease(t, ts.URL, cluster.LeaseRequest{Candidate: "http://c0", Term: 0, TTLMs: 5000}); code != http.StatusBadRequest {
		t.Fatalf("term-0 lease answered %d, want 400", code)
	}
	code, lr := postLease(t, ts.URL, cluster.LeaseRequest{Candidate: "http://c0", Term: 7, TTLMs: 5000})
	if code != http.StatusOK || !lr.Granted || lr.Term != 7 {
		t.Fatalf("grant: code=%d resp=%+v", code, lr)
	}

	// /statusz carries the lease block.
	st := s.StatusSnapshot()
	if st.Lease == nil || st.Lease.Term != 7 || st.Lease.Holder != "http://c0" {
		t.Fatalf("statusz lease block = %+v, want term 7 held by http://c0", st.Lease)
	}

	// A dispatch stamped with a lower term is fenced: 409, stale-term
	// reason, current floor in the response header — and the job body is
	// never even parsed (an empty body would otherwise be a 400).
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.TermHeader, "6")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-term dispatch answered %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.TermHeader); got != "7" {
		t.Errorf("fence response reports floor %q, want 7", got)
	}
	var eb struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Reason != cluster.StaleTermReason {
		t.Errorf("fence reason = %q (err %v), want %q", eb.Reason, err, cluster.StaleTermReason)
	}
	if got := s.metrics.fencedJobs.Value(); got != 1 {
		t.Errorf("serve_fenced_jobs_total = %d, want 1", got)
	}

	// The current term (and any higher) passes the fence; the malformed
	// body then fails ordinary validation, proving the request reached
	// the normal path.
	req2, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set(cluster.TermHeader, strconv.FormatUint(7, 10))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusConflict {
		t.Fatal("current-term dispatch fenced")
	}
}
