package serve

import (
	"time"

	"bcnphase/internal/analytic"
	"bcnphase/internal/core"
	"bcnphase/internal/netsim"
	"bcnphase/internal/sweep"
	"bcnphase/internal/telemetry"
)

// serverMetrics is the server's registry-backed instrument set. It
// replaces the ad-hoc atomic counters of earlier revisions: /statusz,
// /metrics, and internal decisions all read the same series, so the
// numbers an operator scrapes are the numbers the server acts on.
type serverMetrics struct {
	accepted       *telemetry.Counter
	completed      *telemetry.Counter
	failed         *telemetry.Counter
	shed           *telemetry.Counter
	cacheHits      *telemetry.Counter
	coalesced      *telemetry.Counter
	killed         *telemetry.Counter
	breakerRejects *telemetry.Counter
	leaseGrants    *telemetry.Counter
	leaseDenials   *telemetry.Counter
	fencedJobs     *telemetry.Counter
	// jobSeconds is the wall-clock latency of one executed job, by kind.
	jobSeconds *telemetry.HistogramVec
	// breakerTransitions counts state changes by destination state.
	breakerTransitions *telemetry.CounterVec
}

// newServerMetrics registers the serving family on reg and wires the
// live gauges that read the server's channel semaphores.
func newServerMetrics(reg *telemetry.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		accepted:       reg.Counter("serve_accepted_total", "jobs accepted for execution"),
		completed:      reg.Counter("serve_completed_total", "jobs completed successfully"),
		failed:         reg.Counter("serve_failed_total", "jobs that finished in error"),
		shed:           reg.Counter("serve_shed_total", "submissions shed by admission control"),
		cacheHits:      reg.Counter("serve_cache_hits_total", "submissions answered from the artifact store"),
		coalesced:      reg.Counter("serve_coalesced_total", "duplicate submissions coalesced onto a leader"),
		killed:         reg.Counter("serve_killed_total", "jobs killed by client disconnect or cancellation"),
		breakerRejects: reg.Counter("serve_breaker_rejects_total", "submissions rejected by an open breaker"),
		leaseGrants:    reg.Counter("serve_lease_grants_total", "coordinator leadership leases granted by this witness"),
		leaseDenials:   reg.Counter("serve_lease_denials_total", "coordinator leadership leases denied by this witness"),
		fencedJobs:     reg.Counter("serve_fenced_jobs_total", "shard dispatches rejected for carrying a stale leadership term"),
		jobSeconds: reg.HistogramVec("serve_job_seconds",
			"wall-clock latency of one executed job", nil, "kind"),
		breakerTransitions: reg.CounterVec("serve_breaker_transitions_total",
			"circuit-breaker state transitions by destination state", "state"),
	}
	reg.GaugeFunc("serve_queue_depth", "submissions waiting for a worker",
		func() float64 { return float64(len(s.queueSlots)) })
	reg.GaugeFunc("serve_in_flight", "jobs executing on workers",
		func() float64 { return float64(len(s.workerSlots)) })
	reg.GaugeFunc("serve_utilization", "fraction of workers busy",
		func() float64 { return s.utilization() })
	reg.GaugeFunc("serve_active_jobs", "accepted jobs not yet finished",
		func() float64 { return float64(s.ActiveJobs()) })
	reg.GaugeFunc("serve_artifacts_stored", "artifacts in the completed-job store",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("serve_uptime_seconds", "monotonic process uptime",
		func() float64 { return time.Since(s.startMono).Seconds() })
	return m
}

// jobMetrics bundles the per-layer instruments handed to every executed
// job. One shared set serves all jobs — the instruments are atomic — so
// a netsim job run through bcnd lights up the same netsim_* series a
// standalone bcnsim run would.
type jobMetrics struct {
	solve    *core.SolveMetrics
	sweep    *sweep.Metrics
	netsim   *netsim.Metrics
	analytic *analytic.Metrics
}

func newJobMetrics(reg *telemetry.Registry) jobMetrics {
	return jobMetrics{
		solve:    core.NewSolveMetrics(reg),
		sweep:    sweep.NewMetrics(reg),
		netsim:   netsim.NewMetrics(reg),
		analytic: analytic.NewMetrics(reg),
	}
}
