package serve

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bcnphase/internal/telemetry"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestMetricsEndpoint drives a netsim job through the full HTTP path
// and asserts the acceptance criterion: Prometheus-format /metrics with
// nonzero event, feedback, and latency-histogram series, plus live
// /debug/pprof.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Config{Workers: 2, Registry: reg})

	// Overload the bottleneck (4 × 500 Mbps into 1 Gbps) for long
	// enough that the congestion point actually emits BCN feedback; the
	// default underloaded 2 ms spec never crosses the setpoint.
	spec := netsimSpec()
	spec.Netsim.InitialRate = 5e8
	spec.Netsim.DurationSec = 0.05
	if resp := postSpec(t, ts.URL, marshalSpec(t, spec)); resp.StatusCode != http.StatusOK {
		t.Fatalf("netsim job: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE serve_accepted_total counter",
		"serve_accepted_total 1",
		"serve_completed_total 1",
		"# TYPE serve_queue_depth gauge",
		"# TYPE serve_shed_total counter",
		"# TYPE serve_breaker_transitions_total counter",
		"# TYPE serve_job_seconds histogram",
		`serve_job_seconds_count{kind="netsim"} 1`,
		"# TYPE netsim_events_total counter",
		"# TYPE netsim_feedback_messages_total counter",
		"# TYPE netsim_sojourn_seconds histogram",
		"serve_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The netsim series must be nonzero, not merely present.
	snap := reg.Snapshot()
	if v := snap.Value("netsim_events_total"); v <= 0 {
		t.Fatalf("netsim_events_total = %v, want > 0", v)
	}
	fb, ok := snap.Get("netsim_feedback_messages_total")
	if !ok || len(fb.Series) == 0 {
		t.Fatalf("no feedback series recorded")
	}
	soj, _ := snap.Get("netsim_sojourn_seconds")
	if len(soj.Series) == 0 || soj.Series[0].Count == 0 {
		t.Fatalf("sojourn histogram empty")
	}

	if code, body := getBody(t, ts.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestRequestIDsAndStatusUptime(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	resp := postSpec(t, ts.URL, marshalSpec(t, solveSpec()))
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatalf("no X-Request-ID on job response")
	}
	resp2 := postSpec(t, ts.URL, marshalSpec(t, solveSpec()))
	rid2 := resp2.Header.Get("X-Request-ID")
	if rid2 == "" || rid2 == rid {
		t.Fatalf("request IDs not unique: %q vs %q", rid, rid2)
	}
	// Cache hit and miss must serve byte-identical artifacts even
	// though their request IDs differ: IDs live in headers only.
	if a, b := string(readBody(t, resp)), string(readBody(t, resp2)); a != b {
		t.Fatalf("artifact bytes differ between miss and hit:\n%s\n%s", a, b)
	}

	// Error responses carry the request ID in the body too.
	bad, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	raw, _ := io.ReadAll(bad.Body)
	if !bytes.Contains(raw, []byte(`"request_id":"`)) {
		t.Fatalf("error body lacks request_id: %s", raw)
	}

	st := s.StatusSnapshot()
	if st.UptimeSec <= 0 {
		t.Fatalf("uptime = %v, want > 0", st.UptimeSec)
	}
	time.Sleep(5 * time.Millisecond)
	if st2 := s.StatusSnapshot(); st2.UptimeSec <= st.UptimeSec {
		t.Fatalf("uptime not monotonic: %v then %v", st.UptimeSec, st2.UptimeSec)
	}
	if st.Accepted != 1 || st.Completed != 1 || st.CacheHits != 1 {
		t.Fatalf("statusz counters: %+v", st)
	}
}

func TestServeLogLinesCarryRequestIDs(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{Workers: 1, Log: &buf})
	if resp := postSpec(t, ts.URL, marshalSpec(t, solveSpec())); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	logs := buf.String()
	if !strings.Contains(logs, "rid=req-") || !strings.Contains(logs, "accepted") || !strings.Contains(logs, "finished") {
		t.Fatalf("log lines missing request ids or events:\n%s", logs)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func (b *syncBuffer) lock() {
	if b.mu == nil {
		b.mu = make(chan struct{}, 1)
	}
	b.mu <- struct{}{}
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.lock()
	defer func() { <-b.mu }()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.lock()
	defer func() { <-b.mu }()
	return b.buf.String()
}
