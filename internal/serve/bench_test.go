package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newBenchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return s, ts
}

func marshalSpecB(b *testing.B, sp Spec) []byte {
	b.Helper()
	raw, err := json.Marshal(sp)
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func postBytes(b *testing.B, base string, body []byte) int {
	b.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// BenchmarkSubmitCacheHit measures the full HTTP round trip for a job
// answered from the artifact store — the steady-state cost of a
// deduplicated resubmission.
func BenchmarkSubmitCacheHit(b *testing.B) {
	_, ts := newBenchServer(b, Config{Workers: 2})
	body := marshalSpecB(b, solveSpec())
	if code := postBytes(b, ts.URL, body); code != http.StatusOK {
		b.Fatalf("warm-up submit: status %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := postBytes(b, ts.URL, body); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkSubmitSolveJob measures a fresh solve job per iteration; the
// spec varies so the dedup cache never answers.
func BenchmarkSubmitSolveJob(b *testing.B) {
	_, ts := newBenchServer(b, Config{Workers: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := solveSpec()
		sp.Solve.Params.Gi = 0.1 + float64(i)*1e-6
		if code := postBytes(b, ts.URL, marshalSpecB(b, sp)); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkStatusSnapshot measures the /statusz aggregation, which
// reads every counter from the telemetry registry.
func BenchmarkStatusSnapshot(b *testing.B) {
	s, ts := newBenchServer(b, Config{Workers: 1})
	if code := postBytes(b, ts.URL, marshalSpecB(b, solveSpec())); code != http.StatusOK {
		b.Fatalf("warm-up submit: status %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.StatusSnapshot()
		if st.Accepted != 1 {
			b.Fatalf("accepted = %d", st.Accepted)
		}
	}
}
