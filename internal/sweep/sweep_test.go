package sweep

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunPreservesOrder(t *testing.T) {
	points := []int{5, 3, 9, 1, 7, 2}
	results, err := Run(context.Background(), points,
		func(_ context.Context, p int) (int, error) { return p * p, nil },
		Options{Workers: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range results {
		if r.Point != points[i] {
			t.Errorf("result %d point = %d, want %d", i, r.Point, points[i])
		}
		if r.Value != points[i]*points[i] {
			t.Errorf("result %d value = %d", i, r.Value)
		}
		if r.Err != nil {
			t.Errorf("result %d err = %v", i, r.Err)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	results, err := Run(context.Background(), nil,
		func(_ context.Context, p int) (int, error) { return p, nil }, Options{})
	if err != nil || len(results) != 0 {
		t.Errorf("empty run: %v, %v", results, err)
	}
}

func TestRunNilFunc(t *testing.T) {
	if _, err := Run[int, int](context.Background(), []int{1}, nil, Options{}); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestRunErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	results, err := Run(context.Background(), points,
		func(_ context.Context, p int) (int, error) {
			if p == 7 {
				return 0, sentinel
			}
			return p, nil
		}, Options{Workers: 4})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if !errors.Is(results[7].Err, sentinel) {
		t.Errorf("point 7 err = %v", results[7].Err)
	}
	// Every point has a result (value or error).
	if len(results) != 100 {
		t.Errorf("results = %d", len(results))
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled
	points := []int{1, 2, 3}
	var ran atomic.Int64
	results, _ := Run(ctx, points,
		func(ctx context.Context, p int) (int, error) {
			ran.Add(1)
			return p, nil
		}, Options{Workers: 2})
	for _, r := range results {
		if r.Err == nil {
			t.Error("pre-cancelled context should surface errors")
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d evaluations ran after cancel", ran.Load())
	}
}

func TestRunConcurrencyBound(t *testing.T) {
	var cur, peak atomic.Int64
	points := make([]int, 64)
	_, err := Run(context.Background(), points,
		func(_ context.Context, p int) (int, error) {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			defer cur.Add(-1)
			// A small spin to let workers overlap.
			s := 0
			for i := 0; i < 10000; i++ {
				s += i
			}
			return s, nil
		}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 4 {
		t.Errorf("peak concurrency %d exceeds 4", peak.Load())
	}
}

func TestGrid2(t *testing.T) {
	g := Grid2([]int{1, 2}, []string{"a", "b", "c"})
	if len(g) != 6 {
		t.Fatalf("len = %d", len(g))
	}
	if g[0] != (Pair[int, string]{1, "a"}) || g[5] != (Pair[int, string]{2, "c"}) {
		t.Errorf("grid order wrong: %v", g)
	}
}

func TestLogspace(t *testing.T) {
	v, err := Logspace(1, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || math.Abs(v[1]-10) > 1e-9 || v[2] != 100 {
		t.Errorf("Logspace = %v", v)
	}
	if _, err := Logspace(1, 10, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Logspace(-1, 10, 3); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestLinspace(t *testing.T) {
	v, err := Linspace(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("Linspace = %v", v)
			break
		}
	}
	if _, err := Linspace(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestQuickRunMatchesSequential: concurrent results equal the sequential
// map for random inputs and worker counts.
func TestQuickRunMatchesSequential(t *testing.T) {
	prop := func(points []int16, workersRaw uint8) bool {
		workers := 1 + int(workersRaw%8)
		results, err := Run(context.Background(), points,
			func(_ context.Context, p int16) (int32, error) {
				return int32(p) * 3, nil
			}, Options{Workers: workers})
		if err != nil || len(results) != len(points) {
			return false
		}
		for i, r := range results {
			if r.Value != int32(points[i])*3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
