package sweep

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// BatchFunc evaluates a contiguous span of points in one call, writing
// the result of points[i] into out[i] (len(out) == len(points)). A
// batch evaluator amortizes per-point overhead — buffer reuse, metric
// flushes, journal writes — across the span; the analytic solve engine
// is the motivating client.
type BatchFunc[P, R any] func(ctx context.Context, points []P, out []R) error

// RunBatched evaluates points through fn in contiguous spans of at most
// batchSize, with Run's full supervision applied per span: bounded
// workers, panic recovery, per-span deadline (Options.PointTimeout
// bounds one whole span here) and retries. Results come back in input
// order, one per point; a failed span marks every point it covers with
// the span's error.
//
// Each attempt hands fn a private output slice and the results are
// copied out only after the span succeeds, so an abandoned (timed-out)
// evaluation racing its replacement cannot corrupt visible results.
func RunBatched[P, R any](ctx context.Context, points []P, batchSize int, fn BatchFunc[P, R], opts Options) ([]Result[P, R], error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil batch evaluation function")
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("sweep: batch size %d must be positive", batchSize)
	}
	type span struct{ idx, lo, hi int }
	spans := make([]span, 0, (len(points)+batchSize-1)/batchSize)
	for lo := 0; lo < len(points); lo += batchSize {
		hi := lo + batchSize
		if hi > len(points) {
			hi = len(points)
		}
		spans = append(spans, span{len(spans), lo, hi})
	}

	// Span wall-clock, written atomically because a timed-out attempt
	// abandoned by evalOnce may still finish concurrently with its
	// replacement.
	wallNanos := make([]atomic.Int64, len(spans))

	// The inner Run must not also count spans as points; per-point
	// accounting happens in the scatter loop below.
	inner := opts
	inner.Metrics = nil
	eval := func(ctx context.Context, s span) ([]R, error) {
		began := time.Now()
		out := make([]R, s.hi-s.lo)
		err := fn(ctx, points[s.lo:s.hi], out)
		wallNanos[s.idx].Store(int64(time.Since(began)))
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	spanResults, err := Run(ctx, spans, eval, inner)

	results := make([]Result[P, R], len(points))
	for si := range spanResults {
		sr := &spanResults[si]
		s := spans[si]
		for j := s.lo; j < s.hi; j++ {
			r := Result[P, R]{Point: points[j], Attempts: sr.Attempts, Err: sr.Err}
			if sr.Err == nil && sr.Value != nil {
				r.Value = sr.Value[j-s.lo]
			}
			results[j] = r
		}
		if opts.Metrics != nil {
			opts.Metrics.observeSpan(s.hi-s.lo, sr.Attempts, sr.Err != nil,
				time.Duration(wallNanos[s.idx].Load()))
		}
	}
	return results, err
}
