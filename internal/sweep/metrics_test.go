package sweep

import (
	"context"
	"errors"
	"sync"
	"testing"

	"bcnphase/internal/telemetry"
)

func TestRunMetricsCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	var mu sync.Mutex
	fails := map[int]int{3: 1, 7: 2} // point -> failures before success
	boom := errors.New("flaky")
	points := make([]int, 10)
	for i := range points {
		points[i] = i
	}
	results, err := Run(context.Background(), points, func(_ context.Context, p int) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		if fails[p] > 0 {
			fails[p]--
			return 0, boom
		}
		return p * p, nil
	}, Options{Workers: 2, Retries: 2, Backoff: 1, ContinueOnError: true, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("point %v failed: %v", r.Point, r.Err)
		}
	}
	if got := m.Points.Value(); got != 10 {
		t.Fatalf("points = %d, want 10", got)
	}
	if got := m.Retries.Value(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
	if got := m.Failures.Value(); got != 0 {
		t.Fatalf("failures = %d, want 0", got)
	}
	if got := m.PointSeconds.Count(); got != 10 {
		t.Fatalf("point histogram count = %d, want 10", got)
	}
}

func TestRunMetricsFailures(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	boom := errors.New("always")
	_, err := Run(context.Background(), []int{1, 2}, func(_ context.Context, _ int) (int, error) {
		return 0, boom
	}, Options{Workers: 1, ContinueOnError: true, Metrics: m})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.Failures.Value() != 2 {
		t.Fatalf("failures = %d, want 2", m.Failures.Value())
	}
}

func TestRunCheckpointedMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	ck := &mapCheckpoint{m: map[string][]byte{}}
	key := func(p int) string { return string(rune('a' + p)) }
	fn := func(_ context.Context, p int) (int, error) { return p * 2, nil }
	opts := Options{Workers: 1, Metrics: m}

	if _, err := RunCheckpointed(context.Background(), []int{0, 1, 2}, fn, opts, ck, key); err != nil {
		t.Fatal(err)
	}
	if m.Points.Value() != 3 || m.Replayed.Value() != 0 {
		t.Fatalf("first pass: points=%d replayed=%d", m.Points.Value(), m.Replayed.Value())
	}
	if m.CheckpointSeconds.Count() != 3 {
		t.Fatalf("checkpoint latency samples = %d, want 3", m.CheckpointSeconds.Count())
	}
	// Second pass replays everything from the journal.
	if _, err := RunCheckpointed(context.Background(), []int{0, 1, 2}, fn, opts, ck, key); err != nil {
		t.Fatal(err)
	}
	if m.Points.Value() != 3 || m.Replayed.Value() != 3 {
		t.Fatalf("second pass: points=%d replayed=%d", m.Points.Value(), m.Replayed.Value())
	}
}

func TestSweepNewMetricsNil(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %v, want nil", m)
	}
}

// mapCheckpoint is an in-memory Checkpoint for tests.
type mapCheckpoint struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (c *mapCheckpoint) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *mapCheckpoint) Record(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), val...)
	return nil
}
