package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"time"
)

// Checkpoint persists completed point results across process restarts.
// internal/runstate.Journal satisfies it; any keyed byte store with
// durable Record semantics works. Implementations must be safe for
// concurrent use — sweep workers record in parallel.
type Checkpoint interface {
	// Lookup returns the stored value for key, if present.
	Lookup(key string) ([]byte, bool)
	// Record durably stores value (valid JSON) under key.
	Record(key string, value []byte) error
}

// RunCheckpointed is Run with crash-safe resume: points whose key is
// already present in ck are not re-evaluated — their journaled value is
// decoded and returned with Result.Cached set — and every freshly
// completed point is recorded in ck (as JSON) before the sweep moves on,
// so an interrupted run resumed with the same journal re-pays only the
// unfinished points. key must identify a point's full evaluation
// identity (params, seed, config fingerprint); R must round-trip through
// encoding/json. A Record failure fails the point: when the caller asked
// for durability, silently computing unpersistable results would break
// the resume contract.
func RunCheckpointed[P, R any](ctx context.Context, points []P, fn Func[P, R], opts Options, ck Checkpoint, key func(P) string) ([]Result[P, R], error) {
	if ck == nil || key == nil {
		return Run(ctx, points, fn, opts)
	}
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil evaluation function")
	}
	results := make([]Result[P, R], len(points))
	keys := make([]string, len(points))
	var todo []int
	for i, p := range points {
		keys[i] = key(p)
		raw, ok := ck.Lookup(keys[i])
		if ok {
			var v R
			if err := json.Unmarshal(raw, &v); err == nil {
				results[i] = Result[P, R]{Point: p, Value: v, Cached: true}
				if opts.Metrics != nil {
					opts.Metrics.Replayed.Inc()
				}
				continue
			}
			// An undecodable journal value (e.g. the result type changed
			// shape) falls through to re-evaluation rather than failing
			// the resume.
		}
		todo = append(todo, i)
	}
	inner, err := Run(ctx, todo, func(ctx context.Context, i int) (R, error) {
		v, err := fn(ctx, points[i])
		if err != nil {
			return v, err
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return v, fmt.Errorf("sweep: checkpoint encode: %w", err)
		}
		if opts.Metrics != nil {
			began := time.Now()
			err = ck.Record(keys[i], raw)
			opts.Metrics.CheckpointSeconds.Observe(time.Since(began).Seconds())
		} else {
			err = ck.Record(keys[i], raw)
		}
		if err != nil {
			return v, fmt.Errorf("sweep: checkpoint record: %w", err)
		}
		return v, nil
	}, opts)
	for _, r := range inner {
		results[r.Point] = Result[P, R]{
			Point:    points[r.Point],
			Value:    r.Value,
			Err:      r.Err,
			Attempts: r.Attempts,
		}
	}
	return results, err
}
