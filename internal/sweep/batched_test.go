package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/telemetry"
)

func TestRunBatchedMatchesRun(t *testing.T) {
	points := make([]int, 103) // deliberately not a multiple of the batch size
	for i := range points {
		points[i] = i
	}
	fn := func(_ context.Context, pts []int, out []int) error {
		for i, p := range pts {
			out[i] = p * p
		}
		return nil
	}
	for _, batchSize := range []int{1, 7, 32, 103, 1000} {
		results, err := RunBatched(context.Background(), points, batchSize, fn, Options{Workers: 4})
		if err != nil {
			t.Fatalf("batchSize=%d: %v", batchSize, err)
		}
		if len(results) != len(points) {
			t.Fatalf("batchSize=%d: %d results, want %d", batchSize, len(results), len(points))
		}
		for i, r := range results {
			if r.Err != nil || r.Point != i || r.Value != i*i || r.Attempts != 1 {
				t.Fatalf("batchSize=%d point %d: %+v", batchSize, i, r)
			}
		}
	}
}

func TestRunBatchedSpanFailureIsLocal(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5}
	boom := errors.New("span exploded")
	fn := func(_ context.Context, pts []int, out []int) error {
		if pts[0] == 2 { // the second span of size 2
			return boom
		}
		for i, p := range pts {
			out[i] = p + 100
		}
		return nil
	}
	results, err := RunBatched(context.Background(), points, 2, fn, Options{Workers: 1, ContinueOnError: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	for i, r := range results {
		inFailedSpan := i == 2 || i == 3
		if inFailedSpan != (r.Err != nil) {
			t.Fatalf("point %d: err=%v, inFailedSpan=%v", i, r.Err, inFailedSpan)
		}
		if !inFailedSpan && r.Value != i+100 {
			t.Fatalf("point %d: value %d", i, r.Value)
		}
	}
}

func TestRunBatchedPanicRecovered(t *testing.T) {
	fn := func(_ context.Context, pts []int, _ []int) error {
		if pts[0] == 3 {
			panic("bad span")
		}
		return nil
	}
	results, err := RunBatched(context.Background(), []int{0, 1, 2, 3, 4, 5}, 3, fn,
		Options{Workers: 2, ContinueOnError: true})
	if err == nil {
		t.Fatal("want panic error")
	}
	var pe *PanicError
	if !errors.As(results[3].Err, &pe) {
		t.Fatalf("point 3 err = %v, want PanicError", results[3].Err)
	}
	if results[0].Err != nil {
		t.Fatalf("clean span polluted: %v", results[0].Err)
	}
}

func TestRunBatchedRetries(t *testing.T) {
	attempts := 0
	fn := func(_ context.Context, pts []int, out []int) error {
		attempts++
		if attempts == 1 {
			return fmt.Errorf("transient")
		}
		for i := range pts {
			out[i] = 7
		}
		return nil
	}
	results, err := RunBatched(context.Background(), []int{1, 2}, 10, fn,
		Options{Workers: 1, Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Attempts != 2 || results[0].Value != 7 {
		t.Fatalf("retry not surfaced: %+v", results[0])
	}
}

func TestRunBatchedAbandonedAttemptCannotCorrupt(t *testing.T) {
	// The first attempt ignores its deadline and keeps writing into its
	// own out slice long after abandonment; the retry succeeds fast. The
	// visible results must come exclusively from the successful attempt.
	release := make(chan struct{})
	var attempt atomic.Int32
	fn := func(ctx context.Context, pts []int, out []int) error {
		if attempt.Add(1) == 1 {
			<-release // ignore ctx: simulate a stuck evaluator
			for i := range out {
				out[i] = -999 // late garbage into a private slice
			}
			return nil
		}
		for i, p := range pts {
			out[i] = p * 10
		}
		return nil
	}
	results, err := RunBatched(context.Background(), []int{1, 2, 3}, 3, fn,
		Options{Workers: 1, PointTimeout: 20 * time.Millisecond, Retries: 1})
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != (i+1)*10 {
			t.Fatalf("point %d corrupted by abandoned attempt: %+v", i, r)
		}
	}
}

func TestRunBatchedMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	fn := func(_ context.Context, pts []int, out []int) error {
		for i := range pts {
			out[i] = 1
		}
		return nil
	}
	if _, err := RunBatched(context.Background(), make([]int, 25), 10, fn,
		Options{Workers: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.Points.Value(); got != 25 {
		t.Fatalf("points metric %d, want 25", got)
	}
	if got := m.Failures.Value(); got != 0 {
		t.Fatalf("failures metric %d, want 0", got)
	}
}

func TestRunBatchedRejectsBadInput(t *testing.T) {
	fn := func(_ context.Context, _ []int, _ []int) error { return nil }
	if _, err := RunBatched(context.Background(), []int{1}, 0, fn, Options{}); err == nil {
		t.Fatal("batchSize 0 accepted")
	}
	if _, err := RunBatched[int, int](context.Background(), []int{1}, 1, nil, Options{}); err == nil {
		t.Fatal("nil fn accepted")
	}
	results, err := RunBatched(context.Background(), nil, 4, fn, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty points: %v, %d results", err, len(results))
	}
}
