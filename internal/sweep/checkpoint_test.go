package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// memCheckpoint is an in-memory Checkpoint for tests.
type memCheckpoint struct {
	mu      sync.Mutex
	m       map[string][]byte
	failOn  string // Record for this key fails
	records int
}

func newMemCheckpoint() *memCheckpoint { return &memCheckpoint{m: map[string][]byte{}} }

func (c *memCheckpoint) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *memCheckpoint) Record(key string, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if key == c.failOn {
		return errors.New("disk full")
	}
	c.records++
	c.m[key] = value
	return nil
}

func intKey(p int) string { return fmt.Sprintf("p%d", p) }

func TestRunCheckpointedSkipsJournaledPoints(t *testing.T) {
	ck := newMemCheckpoint()
	points := []int{0, 1, 2, 3, 4}
	var evals atomic.Int64
	fn := func(_ context.Context, p int) (int, error) {
		evals.Add(1)
		return p * p, nil
	}

	first, err := RunCheckpointed(context.Background(), points, fn, Options{}, ck, intKey)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if got := evals.Load(); got != 5 {
		t.Errorf("first run evaluated %d points, want 5", got)
	}
	for i, r := range first {
		if r.Cached || r.Value != i*i || r.Attempts != 1 {
			t.Errorf("first[%d] = %+v", i, r)
		}
	}

	// Second run with the same checkpoint: zero evaluations, identical
	// values, all cached.
	evals.Store(0)
	second, err := RunCheckpointed(context.Background(), points, fn, Options{}, ck, intKey)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if got := evals.Load(); got != 0 {
		t.Errorf("resumed run re-executed %d journaled points", got)
	}
	for i, r := range second {
		if !r.Cached || r.Value != i*i || r.Attempts != 0 {
			t.Errorf("second[%d] = %+v", i, r)
		}
	}
}

func TestRunCheckpointedPartialResume(t *testing.T) {
	ck := newMemCheckpoint()
	points := []int{0, 1, 2, 3, 4, 5}
	// Pre-journal points 0..2 as if a prior run was interrupted after 3.
	for _, p := range points[:3] {
		if err := ck.Record(intKey(p), []byte(fmt.Sprintf("%d", p*p))); err != nil {
			t.Fatal(err)
		}
	}
	var evals atomic.Int64
	res, err := RunCheckpointed(context.Background(), points, func(_ context.Context, p int) (int, error) {
		evals.Add(1)
		return p * p, nil
	}, Options{}, ck, intKey)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := evals.Load(); got != 3 {
		t.Errorf("resume evaluated %d points, want exactly the 3 unfinished", got)
	}
	for i, r := range res {
		if r.Value != i*i {
			t.Errorf("res[%d].Value = %d, want %d", i, r.Value, i*i)
		}
		if wantCached := i < 3; r.Cached != wantCached {
			t.Errorf("res[%d].Cached = %v, want %v", i, r.Cached, wantCached)
		}
	}
}

func TestRunCheckpointedCancelMidRunThenResume(t *testing.T) {
	ck := newMemCheckpoint()
	points := make([]int, 8)
	for i := range points {
		points[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var evals atomic.Int64
	// Simulate SIGINT before the 4th point: the evaluation observes the
	// cancellation cooperatively (exactly how a ctx-aware solve fails),
	// so the first three points are journaled and nothing stays in
	// flight past Run's return.
	fn := func(ctx context.Context, p int) (int, error) {
		if evals.Add(1) == 4 {
			cancel()
			return 0, ctx.Err()
		}
		return p + 100, nil
	}
	res, err := RunCheckpointed(ctx, points, fn, Options{Workers: 1}, ck, intKey)
	if err == nil {
		t.Fatal("cancelled run reported no error")
	}
	done := 0
	for _, r := range res {
		if r.Err == nil {
			done++
		} else if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("unexpected point error: %v", r.Err)
		}
	}
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
	if ck.records != done {
		t.Errorf("journal has %d records, %d points completed", ck.records, done)
	}

	// Resume to completion: only the unjournaled points evaluate.
	evals.Store(0)
	res2, err := RunCheckpointed(context.Background(), points, func(_ context.Context, p int) (int, error) {
		evals.Add(1)
		return p + 100, nil
	}, Options{Workers: 1}, ck, intKey)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if int(evals.Load()) != len(points)-done {
		t.Errorf("resume evaluated %d, want %d", evals.Load(), len(points)-done)
	}
	for i, r := range res2 {
		if r.Err != nil || r.Value != i+100 {
			t.Errorf("res2[%d] = %+v", i, r)
		}
	}
}

func TestRunCheckpointedRecordFailureFailsPoint(t *testing.T) {
	ck := newMemCheckpoint()
	ck.failOn = intKey(2)
	res, err := RunCheckpointed(context.Background(), []int{1, 2, 3},
		func(_ context.Context, p int) (int, error) { return p, nil },
		Options{ContinueOnError: true}, ck, intKey)
	if err == nil {
		t.Fatal("record failure not surfaced")
	}
	if res[1].Err == nil {
		t.Error("point with failed Record has no error")
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Error("healthy points poisoned by a sibling's Record failure")
	}
}

func TestRunCheckpointedUndecodableEntryReEvaluates(t *testing.T) {
	ck := newMemCheckpoint()
	ck.m[intKey(0)] = []byte(`"not an int"`)
	var evals atomic.Int64
	res, err := RunCheckpointed(context.Background(), []int{0},
		func(_ context.Context, p int) (int, error) { evals.Add(1); return 7, nil },
		Options{}, ck, intKey)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if evals.Load() != 1 || res[0].Cached || res[0].Value != 7 {
		t.Errorf("stale-shape entry not re-evaluated: evals=%d res=%+v", evals.Load(), res[0])
	}
}

// TestRunCheckpointedTwoFingerprintsShareOneJournal is the
// stale-journal guard: key functions embed the run's configuration
// fingerprint (as cmd/bcnsweep and the cluster coordinator both do), so
// one journal holding records from two different grid hashes replays
// each run only its own rows — grid B never resumes from grid A's
// values, and A's records survive B's run untouched.
func TestRunCheckpointedTwoFingerprintsShareOneJournal(t *testing.T) {
	ck := newMemCheckpoint()
	points := []int{0, 1, 2, 3}
	keyFor := func(fp string) func(int) string {
		return func(p int) string { return fmt.Sprintf("%s:p%d", fp, p) }
	}
	evalFor := func(offset int, evals *atomic.Int64) func(context.Context, int) (int, error) {
		return func(_ context.Context, p int) (int, error) {
			evals.Add(1)
			return p + offset, nil
		}
	}

	// Run grid A to completion.
	var evalsA atomic.Int64
	resA, err := RunCheckpointed(context.Background(), points, evalFor(100, &evalsA), Options{}, ck, keyFor("gridA"))
	if err != nil {
		t.Fatalf("grid A: %v", err)
	}

	// Grid B shares the journal but hashes differently: every point is
	// fresh, nothing replays from A's records.
	var evalsB atomic.Int64
	resB, err := RunCheckpointed(context.Background(), points, evalFor(200, &evalsB), Options{}, ck, keyFor("gridB"))
	if err != nil {
		t.Fatalf("grid B: %v", err)
	}
	if got := evalsB.Load(); got != int64(len(points)) {
		t.Errorf("grid B evaluated %d points, want all %d despite A's journal records", got, len(points))
	}
	for i, r := range resB {
		if r.Cached || r.Value != i+200 {
			t.Errorf("grid B point %d poisoned by stale journal: %+v", i, r)
		}
	}

	// A's records are intact: resuming A replays everything.
	evalsA.Store(0)
	resA2, err := RunCheckpointed(context.Background(), points, evalFor(100, &evalsA), Options{}, ck, keyFor("gridA"))
	if err != nil {
		t.Fatalf("grid A resume: %v", err)
	}
	if got := evalsA.Load(); got != 0 {
		t.Errorf("grid A resume re-evaluated %d points after B's run", got)
	}
	for i := range resA {
		if !resA2[i].Cached || resA2[i].Value != resA[i].Value {
			t.Errorf("grid A resume[%d] = %+v, want cached %d", i, resA2[i], resA[i].Value)
		}
	}
	// The journal now holds both grids' records side by side.
	if wantLen := 2 * len(points); len(ck.m) != wantLen {
		t.Errorf("journal holds %d records, want %d (both grids)", len(ck.m), wantLen)
	}
}

func TestRunCheckpointedNilCheckpointFallsBack(t *testing.T) {
	res, err := RunCheckpointed(context.Background(), []int{1, 2},
		func(_ context.Context, p int) (int, error) { return p, nil },
		Options{}, nil, nil)
	if err != nil || len(res) != 2 || res[0].Value != 1 {
		t.Errorf("nil checkpoint fallback: res=%v err=%v", res, err)
	}
	if _, err := RunCheckpointed[int, int](context.Background(), []int{1}, nil, Options{}, newMemCheckpoint(), intKey); err == nil {
		t.Error("nil fn accepted")
	}
}
