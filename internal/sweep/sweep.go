// Package sweep runs parameter studies concurrently with bounded
// parallelism: a grid of points is mapped through an evaluation function
// on a worker pool, preserving input order in the results. The stability
// maps and transient sweeps in internal/experiments and cmd/bcnsweep are
// the primary clients — each grid point solves an independent trajectory,
// so the sweeps parallelize embarrassingly.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Func evaluates one point of a sweep.
type Func[P, R any] func(ctx context.Context, point P) (R, error)

// Options configures Run.
type Options struct {
	// Workers bounds the concurrency; 0 defaults to GOMAXPROCS.
	Workers int
}

// Result pairs one input point with its output (or error).
type Result[P, R any] struct {
	Point P
	Value R
	Err   error
}

// Run evaluates fn on every point with at most opts.Workers goroutines,
// returning results in input order. The first error cancels the context
// handed to the remaining evaluations, but every point still produces a
// Result (possibly with Err set, including ctx.Err for cancelled ones);
// Run itself returns the first error observed, if any.
func Run[P, R any](ctx context.Context, points []P, fn Func[P, R], opts Options) ([]Result[P, R], error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil evaluation function")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]Result[P, R], len(points))
	if len(points) == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				p := points[i]
				if err := ctx.Err(); err != nil {
					results[i] = Result[P, R]{Point: p, Err: err}
					continue
				}
				v, err := fn(ctx, p)
				results[i] = Result[P, R]{Point: p, Value: v, Err: err}
				if err != nil {
					setErr(err)
				}
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, firstErr
}

// Grid2 builds the cartesian product of two axes as point pairs, row
// major (all ys for the first x, then the next x).
func Grid2[A, B any](xs []A, ys []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Pair[A, B]{X: x, Y: y})
		}
	}
	return out
}

// Pair is one 2-D grid point.
type Pair[A, B any] struct {
	X A
	Y B
}

// Logspace returns n geometrically spaced values from lo to hi inclusive.
func Logspace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("sweep: Logspace needs n >= 2, got %d", n)
	}
	if !(lo > 0) || !(hi > 0) {
		return nil, fmt.Errorf("sweep: Logspace needs positive bounds, got [%v, %v]", lo, hi)
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(ratio, f)
	}
	return out, nil
}

// Linspace returns n uniformly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("sweep: Linspace needs n >= 2, got %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = lo + (hi-lo)*f
	}
	return out, nil
}
