// Package sweep runs parameter studies concurrently with bounded
// parallelism: a grid of points is mapped through an evaluation function
// on a worker pool, preserving input order in the results. The stability
// maps and transient sweeps in internal/experiments and cmd/bcnsweep are
// the primary clients — each grid point solves an independent trajectory,
// so the sweeps parallelize embarrassingly.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Func evaluates one point of a sweep.
type Func[P, R any] func(ctx context.Context, point P) (R, error)

// Options configures Run.
type Options struct {
	// Workers bounds the concurrency; 0 defaults to GOMAXPROCS.
	Workers int
	// PointTimeout is a hard per-point deadline; 0 means none. The
	// evaluation's context carries the deadline, and an evaluation that
	// ignores it is abandoned (it finishes on a background goroutine and
	// its late result is discarded) so one stuck point cannot hang the
	// sweep.
	PointTimeout time.Duration
	// Retries re-evaluates a failed point up to this many extra times.
	// Panics and parent-context cancellation are never retried — a panic
	// is deterministic and a cancelled sweep is over.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (default 10ms when Retries > 0).
	Backoff time.Duration
	// ContinueOnError keeps evaluating the remaining points after a
	// failure instead of cancelling them; failed points carry their
	// error in Result.Err. Run still returns the first error so callers
	// can tell a degraded sweep from a clean one.
	ContinueOnError bool
	// Metrics optionally records point throughput, retries, failures,
	// and checkpoint latency. Nil costs one comparison per point.
	Metrics *Metrics
}

// Result pairs one input point with its output (or error).
type Result[P, R any] struct {
	Point P
	Value R
	Err   error
	// Attempts counts evaluations of this point (≥ 1, > 1 after
	// retries); 0 marks a point never evaluated (sweep cancelled first,
	// or replayed from a checkpoint).
	Attempts int
	// Cached marks a point replayed from a Checkpoint by RunCheckpointed
	// instead of being evaluated.
	Cached bool
}

// PanicError is the Result.Err of a point whose evaluation panicked: the
// panic is recovered so the sweep survives, and the value plus stack are
// preserved for diagnosis.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the recovered panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: evaluation panicked: %v", e.Value)
}

// Run evaluates fn on every point with at most opts.Workers goroutines,
// returning results in input order. Evaluations are panic-recovered
// (PanicError), deadline-bounded (Options.PointTimeout) and retried
// (Options.Retries), so a single bad point cannot crash or hang the
// sweep. By default the first error cancels the context handed to the
// remaining evaluations; with Options.ContinueOnError every point is
// still evaluated and failures stay local to their Result. Every point
// produces a Result (possibly with Err set, including ctx.Err for
// cancelled ones), and Run itself returns the first error observed, if
// any.
func Run[P, R any](ctx context.Context, points []P, fn Func[P, R], opts Options) ([]Result[P, R], error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil evaluation function")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]Result[P, R], len(points))
	if len(points) == 0 {
		return results, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
			if !opts.ContinueOnError {
				cancel()
			}
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				p := points[i]
				if err := ctx.Err(); err != nil {
					results[i] = Result[P, R]{Point: p, Err: err}
					continue
				}
				if opts.Metrics != nil {
					began := time.Now()
					results[i] = evalPoint(ctx, parent, p, fn, opts)
					opts.Metrics.observePoint(results[i].Attempts, results[i].Err != nil, time.Since(began))
				} else {
					results[i] = evalPoint(ctx, parent, p, fn, opts)
				}
				if results[i].Err != nil {
					setErr(results[i].Err)
				}
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, firstErr
}

// evalPoint evaluates one point with the retry-and-backoff policy.
// parent is the sweep's original context: retries are suppressed once it
// is cancelled even though the per-sweep ctx may have been cancelled by a
// sibling failure already recorded.
func evalPoint[P, R any](ctx, parent context.Context, p P, fn Func[P, R], opts Options) Result[P, R] {
	res := Result[P, R]{Point: p}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		res.Attempts++
		res.Value, res.Err = evalOnce(ctx, p, fn, opts.PointTimeout)
		if res.Err == nil || res.Attempts > opts.Retries || !retryable(res.Err, parent) {
			return res
		}
		select {
		case <-time.After(backoff):
			backoff *= 2
		case <-ctx.Done():
			return res
		}
	}
}

// retryable reports whether a failure is worth re-evaluating: recovered
// panics are deterministic and a cancelled sweep is over, so neither
// retries.
func retryable(err error, parent context.Context) bool {
	var pe *PanicError
	if errors.As(err, &pe) {
		return false
	}
	return parent.Err() == nil
}

// evalOnce runs fn once with panic recovery and the optional hard
// deadline. The evaluation runs on its own goroutine sending into a
// buffered channel, so when the deadline fires first the point fails
// with the deadline error while a non-cooperative fn drains harmlessly
// in the background.
func evalOnce[P, R any](ctx context.Context, p P, fn Func[P, R], timeout time.Duration) (R, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		v   R
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero R
				ch <- outcome{zero, &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		v, err := fn(ctx, p)
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// InvariantReporter is implemented by evaluation values that carry
// runtime invariant tallies (e.g. a trajectory solved under the Record
// policy). The sweep package itself knows nothing about the model
// invariants; it only aggregates what the values report.
type InvariantReporter interface {
	// InvariantViolations returns the number of violations this point
	// observed and the first failed predicate ("" when clean).
	InvariantViolations() (total uint64, firstPredicate string)
}

// ViolationTally aggregates per-point invariant violations across a
// completed sweep.
type ViolationTally struct {
	// Points is the number of results whose value reports tallies.
	Points int
	// Dirty is the number of points with at least one violation.
	Dirty int
	// Total sums violations over all points.
	Total uint64
	// ByPredicate counts dirty points per first-failed predicate.
	ByPredicate map[string]int
}

// TallyViolations sums the invariant tallies of every successful result
// whose value implements InvariantReporter. Results with errors (or
// values that do not report) are skipped.
func TallyViolations[P, R any](results []Result[P, R]) ViolationTally {
	t := ViolationTally{ByPredicate: make(map[string]int)}
	for i := range results {
		if results[i].Err != nil {
			continue
		}
		rep, ok := any(results[i].Value).(InvariantReporter)
		if !ok {
			continue
		}
		total, first := rep.InvariantViolations()
		t.Points++
		t.Total += total
		if total > 0 {
			t.Dirty++
			if first != "" {
				t.ByPredicate[first]++
			}
		}
	}
	return t
}

// Grid2 builds the cartesian product of two axes as point pairs, row
// major (all ys for the first x, then the next x). An empty axis yields
// an empty (non-nil) grid — the product of nothing is nothing, not an
// error.
func Grid2[A, B any](xs []A, ys []B) []Pair[A, B] {
	out := make([]Pair[A, B], 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Pair[A, B]{X: x, Y: y})
		}
	}
	return out
}

// Pair is one 2-D grid point.
type Pair[A, B any] struct {
	X A
	Y B
}

// Logspace returns n geometrically spaced values from lo to hi
// inclusive. n < 2 (a "spacing" of fewer than two points is ambiguous)
// and non-positive bounds (no geometric path through zero) are errors;
// lo > hi is allowed and yields a descending sequence.
func Logspace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("sweep: Logspace needs n >= 2, got %d", n)
	}
	if !(lo > 0) || !(hi > 0) {
		return nil, fmt.Errorf("sweep: Logspace needs positive bounds, got [%v, %v]", lo, hi)
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(ratio, f)
	}
	return out, nil
}

// Linspace returns n uniformly spaced values from lo to hi inclusive.
// n < 2 is an error; lo > hi is allowed and yields a descending
// sequence.
func Linspace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("sweep: Linspace needs n >= 2, got %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = lo + (hi-lo)*f
	}
	return out, nil
}
