package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPanicIsRecoveredAndSweepContinues(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5}
	fn := func(_ context.Context, p int) (int, error) {
		if p == 2 {
			panic(fmt.Sprintf("boom on %d", p))
		}
		return p * p, nil
	}
	res, err := Run(context.Background(), points, fn, Options{ContinueOnError: true})
	if err == nil {
		t.Fatal("Run returned nil error despite a panicking point")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if !strings.Contains(pe.Error(), "boom on 2") || len(pe.Stack) == 0 {
		t.Errorf("panic details lost: %v (stack %d bytes)", pe, len(pe.Stack))
	}
	for _, r := range res {
		if r.Point == 2 {
			if !errors.As(r.Err, &pe) {
				t.Errorf("panicking point Err = %v, want PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != r.Point*r.Point {
			t.Errorf("healthy point %d degraded: %+v", r.Point, r)
		}
	}
}

func TestPanicIsNotRetried(t *testing.T) {
	var calls atomic.Int64
	fn := func(_ context.Context, p int) (int, error) {
		calls.Add(1)
		panic("always")
	}
	res, _ := Run(context.Background(), []int{1}, fn, Options{Retries: 3, Backoff: time.Millisecond})
	if got := calls.Load(); got != 1 {
		t.Errorf("panicking point evaluated %d times, want 1", got)
	}
	if res[0].Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", res[0].Attempts)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	var calls atomic.Int64
	fn := func(_ context.Context, p int) (int, error) {
		if calls.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}
	res, err := Run(context.Background(), []int{1}, fn, Options{Retries: 4, Backoff: time.Microsecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res[0].Value != 42 || res[0].Attempts != 3 {
		t.Errorf("got value %d after %d attempts, want 42 after 3", res[0].Value, res[0].Attempts)
	}
}

func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	sentinel := errors.New("still broken")
	fn := func(_ context.Context, p int) (int, error) {
		calls.Add(1)
		return 0, sentinel
	}
	res, err := Run(context.Background(), []int{1}, fn, Options{Retries: 2, Backoff: time.Microsecond})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("evaluated %d times, want 3 (1 + 2 retries)", got)
	}
	if res[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res[0].Attempts)
	}
}

func TestPointTimeoutBoundsCooperativeFn(t *testing.T) {
	fn := func(ctx context.Context, p int) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(10 * time.Second):
			return p, nil
		}
	}
	start := time.Now()
	res, err := Run(context.Background(), []int{1}, fn,
		Options{PointTimeout: 20 * time.Millisecond, ContinueOnError: true})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the sweep (%v)", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Errorf("point Err = %v, want DeadlineExceeded", res[0].Err)
	}
}

func TestPointTimeoutAbandonsNonCooperativeFn(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	fn := func(_ context.Context, p int) (int, error) {
		if p == 0 {
			<-block // ignores ctx entirely
		}
		return p, nil
	}
	start := time.Now()
	res, err := Run(context.Background(), []int{0, 1, 2}, fn,
		Options{Workers: 1, PointTimeout: 20 * time.Millisecond, ContinueOnError: true})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("non-cooperative fn hung the sweep (%v)", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	for _, r := range res[1:] {
		if r.Err != nil {
			t.Errorf("later point %d failed: %v", r.Point, r.Err)
		}
	}
}

func TestContinueOnErrorCompletesAllPoints(t *testing.T) {
	sentinel := errors.New("bad point")
	var evaluated atomic.Int64
	fn := func(_ context.Context, p int) (int, error) {
		evaluated.Add(1)
		if p%3 == 0 {
			return 0, sentinel
		}
		return p, nil
	}
	points := make([]int, 30)
	for i := range points {
		points[i] = i
	}
	res, err := Run(context.Background(), points, fn, Options{Workers: 4, ContinueOnError: true})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := evaluated.Load(); got != int64(len(points)) {
		t.Errorf("evaluated %d of %d points", got, len(points))
	}
	var failed, ok int
	for _, r := range res {
		switch {
		case r.Err != nil:
			failed++
		default:
			ok++
		}
	}
	if failed != 10 || ok != 20 {
		t.Errorf("failed=%d ok=%d, want 10/20", failed, ok)
	}
}

func TestCancelledParentSuppressesRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	fn := func(_ context.Context, p int) (int, error) {
		calls.Add(1)
		cancel()
		return 0, errors.New("fails once parent is gone")
	}
	_, err := Run(ctx, []int{1}, fn, Options{Retries: 5, Backoff: time.Millisecond})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("retried %d times after parent cancellation, want 1 call", got)
	}
}
