package sweep

import (
	"context"
	"testing"

	"bcnphase/internal/core"
	"bcnphase/internal/telemetry"
)

// benchGrid is a small real workload: a 3x3 gain grid solved with the
// stitched-trajectory machinery, the same shape bcnsweep runs.
func benchGrid() []core.Params {
	base := core.FigureExample()
	var points []core.Params
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			p := base
			p.Gi = 0.1 + 0.2*float64(i)
			p.Gd = 1.0/256 + float64(j)/128
			points = append(points, p)
		}
	}
	return points
}

func benchRunGrid(b *testing.B, m *Metrics) {
	points := benchGrid()
	eval := func(_ context.Context, p core.Params) (float64, error) {
		tr, err := core.Solve(p, core.SolveOptions{})
		if err != nil {
			return 0, err
		}
		return tr.Rho, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := Run(context.Background(), points, eval, Options{Workers: 2, Metrics: m})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(points) {
			b.Fatalf("got %d results", len(results))
		}
	}
}

func BenchmarkRunGrid(b *testing.B) { benchRunGrid(b, nil) }

func BenchmarkRunGridTelemetry(b *testing.B) {
	benchRunGrid(b, NewMetrics(telemetry.NewRegistry()))
}
