package sweep_test

import (
	"context"
	"errors"
	"testing"

	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/sweep"
)

// guardedRow is the minimal sweep value implementing InvariantReporter.
type guardedRow struct {
	stats invariant.Stats
}

func (r guardedRow) InvariantViolations() (uint64, string) {
	return r.stats.Total, r.stats.FirstPredicate()
}

// brokenEval solves one grid point whose Gd has been negated — the
// acceptance scenario of the invariant layer: a deliberately broken
// parameter set flowing through the sweep pipeline.
func brokenEval(policy invariant.Policy) sweep.Func[float64, guardedRow] {
	return func(_ context.Context, gd float64) (guardedRow, error) {
		p := core.PaperExample()
		p.Gd = -gd
		tr, err := core.Solve(p, core.SolveOptions{Invariants: invariant.NewPolicy(policy)})
		if err != nil {
			return guardedRow{}, err
		}
		return guardedRow{stats: tr.Violations}, nil
	}
}

// TestSweepNegativeGdStrictVsRecord is the end-to-end acceptance check:
// under Strict every broken point fails with a structured
// *invariant.InvariantError naming the predicate; the same sweep under
// Record completes every point and TallyViolations surfaces non-zero
// counts.
func TestSweepNegativeGdStrictVsRecord(t *testing.T) {
	points := []float64{1.0 / 128, 1.0 / 64}
	opts := sweep.Options{ContinueOnError: true}

	strict, err := sweep.Run(context.Background(), points, brokenEval(invariant.Strict), opts)
	if err == nil {
		t.Fatal("Strict sweep over broken points reported no error")
	}
	for _, r := range strict {
		var ie *invariant.InvariantError
		if !errors.As(r.Err, &ie) {
			t.Fatalf("point %v: want *InvariantError, got %v", r.Point, r.Err)
		}
		if ie.Violation.Predicate != core.PredParamsValid {
			t.Errorf("point %v: predicate %q, want %q", r.Point, ie.Violation.Predicate, core.PredParamsValid)
		}
	}

	record, err := sweep.Run(context.Background(), points, brokenEval(invariant.Record), opts)
	if err != nil {
		t.Fatalf("Record sweep did not complete: %v", err)
	}
	tally := sweep.TallyViolations(record)
	if tally.Points != len(points) || tally.Dirty != len(points) {
		t.Errorf("tally = %+v, want every point counted and dirty", tally)
	}
	if tally.Total == 0 || tally.ByPredicate[core.PredParamsValid] != len(points) {
		t.Errorf("violations not surfaced: %+v", tally)
	}
}
