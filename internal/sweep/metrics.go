package sweep

import (
	"time"

	"bcnphase/internal/telemetry"
)

// Metrics instruments parameter sweeps. A nil *Metrics is inert: the
// worker loop pays one nil comparison per point and nothing else, so
// the disabled path stays inside the repo's <5% overhead budget even
// for trivially cheap evaluation functions.
type Metrics struct {
	// Points counts evaluated points (fresh evaluations, successful or
	// not; checkpoint replays are counted in Replayed instead).
	Points *telemetry.Counter
	// Failures counts points whose final attempt still failed.
	Failures *telemetry.Counter
	// Retries counts extra attempts beyond each point's first.
	Retries *telemetry.Counter
	// Replayed counts points answered from a checkpoint journal.
	Replayed *telemetry.Counter
	// PointSeconds is the wall-clock distribution of one evaluation
	// (including its retries).
	PointSeconds *telemetry.Histogram
	// CheckpointSeconds is the latency of one checkpoint Record call.
	CheckpointSeconds *telemetry.Histogram
}

// NewMetrics registers the sweep family on r. A nil registry yields a
// nil (inert) Metrics.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Points:   r.Counter("sweep_points_total", "fresh point evaluations"),
		Failures: r.Counter("sweep_point_failures_total", "points whose final attempt failed"),
		Retries:  r.Counter("sweep_retries_total", "extra evaluation attempts beyond the first"),
		Replayed: r.Counter("sweep_replayed_points_total", "points answered from a checkpoint journal"),
		PointSeconds: r.Histogram("sweep_point_seconds",
			"wall-clock duration of one point evaluation", nil),
		CheckpointSeconds: r.Histogram("sweep_checkpoint_seconds",
			"latency of one checkpoint record", telemetry.ExpBuckets(1e-6, 4, 12)),
	}
}

// observeSpan folds one finished batched span (n points evaluated in
// one call) into the registry; the per-point histogram gets the span's
// amortized cost.
func (m *Metrics) observeSpan(n, attempts int, failed bool, wall time.Duration) {
	m.Points.Add(uint64(n))
	if attempts > 1 {
		m.Retries.Add(uint64(attempts - 1))
	}
	if failed {
		m.Failures.Add(uint64(n))
	}
	if n > 0 {
		m.PointSeconds.Observe(wall.Seconds() / float64(n))
	}
}

// observePoint folds one finished evaluation into the registry.
func (m *Metrics) observePoint(attempts int, failed bool, wall time.Duration) {
	m.Points.Inc()
	if attempts > 1 {
		m.Retries.Add(uint64(attempts - 1))
	}
	if failed {
		m.Failures.Inc()
	}
	m.PointSeconds.Observe(wall.Seconds())
}
