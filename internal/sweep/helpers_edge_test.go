package sweep

import (
	"math"
	"testing"
)

// Edge cases for the grid helpers, pinning the documented contracts:
// empty axes produce empty grids, degenerate spacings (n < 2) error,
// descending bounds are legal, and Logspace rejects non-positive bounds.

func TestGrid2EmptyAxis(t *testing.T) {
	xs := []float64{1, 2, 3}
	if g := Grid2[float64](nil, xs); g == nil || len(g) != 0 {
		t.Errorf("Grid2(nil, xs) = %v, want empty non-nil", g)
	}
	if g := Grid2(xs, []int{}); g == nil || len(g) != 0 {
		t.Errorf("Grid2(xs, empty) = %v, want empty non-nil", g)
	}
	if g := Grid2([]int{}, []int{}); len(g) != 0 {
		t.Errorf("Grid2(empty, empty) has %d points", len(g))
	}
	if g := Grid2(xs, []string{"a"}); len(g) != 3 {
		t.Errorf("singleton axis grid has %d points, want 3", len(g))
	}
}

func TestLinspaceDegenerateCounts(t *testing.T) {
	for _, n := range []int{1, 0, -3} {
		if _, err := Linspace(0, 1, n); err == nil {
			t.Errorf("Linspace n=%d accepted", n)
		}
	}
	if got, err := Linspace(5, 5, 2); err != nil || got[0] != 5 || got[1] != 5 {
		t.Errorf("Linspace(5,5,2) = %v, %v", got, err)
	}
}

func TestLinspaceDescending(t *testing.T) {
	got, err := Linspace(10, 0, 3)
	if err != nil {
		t.Fatalf("descending Linspace rejected: %v", err)
	}
	want := []float64{10, 5, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Linspace(10,0,3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLogspaceDegenerateCounts(t *testing.T) {
	for _, n := range []int{1, 0, -1} {
		if _, err := Logspace(1, 10, n); err == nil {
			t.Errorf("Logspace n=%d accepted", n)
		}
	}
}

func TestLogspaceNonPositiveBounds(t *testing.T) {
	cases := [][2]float64{{0, 1}, {1, 0}, {-1, 10}, {1, -10}, {0, 0}, {math.NaN(), 1}, {1, math.NaN()}}
	for _, c := range cases {
		if _, err := Logspace(c[0], c[1], 4); err == nil {
			t.Errorf("Logspace(%v, %v) accepted", c[0], c[1])
		}
	}
}

func TestLogspaceDescending(t *testing.T) {
	got, err := Logspace(100, 1, 3)
	if err != nil {
		t.Fatalf("descending Logspace rejected: %v", err)
	}
	want := []float64{100, 10, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("Logspace(100,1,3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLogspaceEndpointsExactEnough(t *testing.T) {
	got, err := Logspace(1.0/1024, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.0/1024 {
		t.Errorf("first = %v", got[0])
	}
	if math.Abs(got[len(got)-1]-0.5) > 1e-12 {
		t.Errorf("last = %v", got[len(got)-1])
	}
}
