package sweep

import (
	"context"
	"fmt"
)

// One evaluates a single point under the sweep's full supervision —
// panic recovery (PanicError), the hard Options.PointTimeout deadline
// with abandonment of non-cooperative evaluations, and the
// Options.Retries/Backoff policy — without building a grid. It is the
// serving layer's job executor: a request handler that runs untrusted
// parameter sets through One can never be crashed or hung by one bad
// job, which is exactly the isolation Run gives each grid point.
func One[P, R any](ctx context.Context, p P, fn Func[P, R], opts Options) (R, error) {
	if fn == nil {
		var zero R
		return zero, fmt.Errorf("sweep: nil evaluation function")
	}
	res := evalPoint(ctx, ctx, p, fn, opts)
	return res.Value, res.Err
}
