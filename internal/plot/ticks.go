// Package plot renders line charts, scatter plots and phase portraits to
// SVG and ASCII using only the standard library. It exists because the
// reproduction must regenerate the paper's figures offline, where no
// plotting library is available.
package plot

import (
	"math"
	"strconv"
)

// niceNum rounds x to a "nice" value (1, 2 or 5 times a power of ten).
// When round is true it rounds to the nearest nice value, otherwise up.
func niceNum(x float64, round bool) float64 {
	if x == 0 {
		return 0
	}
	exp := math.Floor(math.Log10(x))
	f := x / math.Pow(10, exp) // fraction in [1, 10)
	var nf float64
	if round {
		switch {
		case f < 1.5:
			nf = 1
		case f < 3:
			nf = 2
		case f < 7:
			nf = 5
		default:
			nf = 10
		}
	} else {
		switch {
		case f <= 1:
			nf = 1
		case f <= 2:
			nf = 2
		case f <= 5:
			nf = 5
		default:
			nf = 10
		}
	}
	return nf * math.Pow(10, exp)
}

// Ticks returns ~n nicely rounded tick positions covering [lo, hi].
func Ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if lo == hi {
		lo -= 0.5
		hi += 0.5
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	span := niceNum(hi-lo, false)
	step := niceNum(span/float64(n-1), true)
	start := math.Floor(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+0.5*step; v += step {
		if v >= lo-0.5*step {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

// FormatTick renders a tick label compactly, using SI-style suffixes for
// large magnitudes (k, M, G) common in networking plots.
func FormatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e9:
		return trimZero(strconv.FormatFloat(v/1e9, 'f', 2, 64)) + "G"
	case av >= 1e6:
		return trimZero(strconv.FormatFloat(v/1e6, 'f', 2, 64)) + "M"
	case av >= 1e3:
		return trimZero(strconv.FormatFloat(v/1e3, 'f', 2, 64)) + "k"
	case av < 1e-3:
		return strconv.FormatFloat(v, 'e', 1, 64)
	default:
		return trimZero(strconv.FormatFloat(v, 'f', 3, 64))
	}
}

func trimZero(s string) string {
	// Strip trailing zeros and a dangling decimal point.
	i := len(s)
	hasDot := false
	for _, c := range s {
		if c == '.' {
			hasDot = true
			break
		}
	}
	if !hasDot {
		return s
	}
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	return s[:i]
}
