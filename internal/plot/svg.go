package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrEmptyChart is returned when rendering a chart with no data.
var ErrEmptyChart = errors.New("plot: chart has no data")

// Default palette (colorblind-friendly).
var defaultColors = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#000000",
}

// LineStyle selects solid or dashed strokes.
type LineStyle int

// Stroke styles.
const (
	Solid LineStyle = iota
	Dashed
	Dotted
)

func (s LineStyle) dashArray() string {
	switch s {
	case Dashed:
		return "8,5"
	case Dotted:
		return "2,4"
	default:
		return ""
	}
}

// Series is one polyline on a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Color  string // empty picks from the palette
	Style  LineStyle
	Width  float64 // stroke width, default 1.5
	Points bool    // draw point markers
}

// Marker is a single annotated point.
type Marker struct {
	X, Y  float64
	Label string
	Color string
}

// HLine and VLine are reference lines spanning the plot area.
type refLine struct {
	value float64
	label string
	color string
	style LineStyle
	vert  bool
}

// Band is a shaded horizontal or vertical strip (e.g. the buffer region).
type Band struct {
	Lo, Hi float64
	Color  string // fill color with opacity, e.g. "#dddddd"
	Vert   bool   // vertical strip (x-range) when true
}

// Chart is a 2-D line/scatter chart rendered to SVG.
type Chart struct {
	Title, XLabel, YLabel string
	W, H                  int // pixel size; default 720×480
	series                []Series
	markers               []Marker
	refs                  []refLine
	bands                 []Band
	// Explicit axis limits; NaN means auto.
	XMin, XMax, YMin, YMax float64
	// XLog and YLog render the axis on a log10 scale; non-positive
	// samples on a log axis are skipped.
	XLog, YLog bool
	// Legend toggles the legend box (default on when >1 named series).
	HideLegend bool
}

// NewChart creates an empty chart with auto-scaled axes.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{
		Title: title, XLabel: xlabel, YLabel: ylabel,
		W: 720, H: 480,
		XMin: math.NaN(), XMax: math.NaN(), YMin: math.NaN(), YMax: math.NaN(),
	}
}

// Add appends a series and returns the chart for chaining.
func (c *Chart) Add(s Series) *Chart {
	c.series = append(c.series, s)
	return c
}

// AddXY is shorthand for Add with just a name and data.
func (c *Chart) AddXY(name string, x, y []float64) *Chart {
	return c.Add(Series{Name: name, X: x, Y: y})
}

// AddMarker places an annotated point.
func (c *Chart) AddMarker(m Marker) *Chart {
	c.markers = append(c.markers, m)
	return c
}

// AddHLine draws a horizontal reference line at y = v.
func (c *Chart) AddHLine(v float64, label, color string) *Chart {
	c.refs = append(c.refs, refLine{value: v, label: label, color: color, style: Dashed})
	return c
}

// AddVLine draws a vertical reference line at x = v.
func (c *Chart) AddVLine(v float64, label, color string) *Chart {
	c.refs = append(c.refs, refLine{value: v, label: label, color: color, style: Dashed, vert: true})
	return c
}

// AddBand shades a strip.
func (c *Chart) AddBand(b Band) *Chart {
	c.bands = append(c.bands, b)
	return c
}

// AddSegment draws a straight line segment between two data points, useful
// for switching lines and eigendirections in phase portraits.
func (c *Chart) AddSegment(name string, x0, y0, x1, y1 float64, color string, style LineStyle) *Chart {
	return c.Add(Series{
		Name: name, X: []float64{x0, x1}, Y: []float64{y0, y1},
		Color: color, Style: style, Width: 1,
	})
}

// bounds computes the data extent including reference artifacts.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, xmax = math.Inf(1), math.Inf(-1)
	ymin, ymax = math.Inf(1), math.Inf(-1)
	saw := false
	for _, s := range c.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			saw = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	for _, m := range c.markers {
		saw = true
		xmin, xmax = math.Min(xmin, m.X), math.Max(xmax, m.X)
		ymin, ymax = math.Min(ymin, m.Y), math.Max(ymax, m.Y)
	}
	if !saw {
		return 0, 0, 0, 0, ErrEmptyChart
	}
	if !math.IsNaN(c.XMin) {
		xmin = c.XMin
	}
	if !math.IsNaN(c.XMax) {
		xmax = c.XMax
	}
	if !math.IsNaN(c.YMin) {
		ymin = c.YMin
	}
	if !math.IsNaN(c.YMax) {
		ymax = c.YMax
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	// Padding is applied in axis space by Render (so log axes pad
	// multiplicatively).
	return xmin, xmax, ymin, ymax, nil
}

// RenderBytes renders the chart to an in-memory SVG document, for
// callers that publish artifacts atomically (render fully, then write
// tmp+rename) instead of streaming into a half-created file.
func (c *Chart) RenderBytes() ([]byte, error) {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// Render writes the chart as a standalone SVG document.
func (c *Chart) Render(w io.Writer) error {
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return err
	}
	if c.XLog {
		if xmin, xmax, err = logRange(xmin, xmax, "x"); err != nil {
			return err
		}
	}
	if c.YLog {
		if ymin, ymax, err = logRange(ymin, ymax, "y"); err != nil {
			return err
		}
	}
	// 4% padding in axis space (multiplicative on log axes).
	dx, dy := 0.04*(xmax-xmin), 0.04*(ymax-ymin)
	xmin, xmax = xmin-dx, xmax+dx
	ymin, ymax = ymin-dy, ymax+dy
	W, H := c.W, c.H
	if W <= 0 {
		W = 720
	}
	if H <= 0 {
		H = 480
	}
	const (
		mLeft, mRight, mTop, mBottom = 72, 20, 40, 52
	)
	pw := float64(W - mLeft - mRight)
	ph := float64(H - mTop - mBottom)
	xcoord := func(x float64) float64 {
		if c.XLog {
			return math.Log10(x)
		}
		return x
	}
	ycoord := func(y float64) float64 {
		if c.YLog {
			return math.Log10(y)
		}
		return y
	}
	sx := func(x float64) float64 { return float64(mLeft) + (xcoord(x)-xmin)/(xmax-xmin)*pw }
	sy := func(y float64) float64 { return float64(mTop) + (ymax-ycoord(y))/(ymax-ymin)*ph }
	xVisible := func(x float64) bool { return !c.XLog || x > 0 }
	yVisible := func(y float64) bool { return !c.YLog || y > 0 }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", W, H, W, H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n", W/2, esc(c.Title))
	}

	// Bands first (behind everything).
	for _, band := range c.bands {
		col := band.Color
		if col == "" {
			col = "#eeeeee"
		}
		if band.Vert {
			x0, x1 := sx(clamp(band.Lo, xmin, xmax)), sx(clamp(band.Hi, xmin, xmax))
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.5"/>`+"\n", math.Min(x0, x1), mTop, math.Abs(x1-x0), ph, col)
		} else {
			y0, y1 := sy(clamp(band.Lo, ymin, ymax)), sy(clamp(band.Hi, ymin, ymax))
			fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.5"/>`+"\n", mLeft, math.Min(y0, y1), pw, math.Abs(y1-y0), col)
		}
	}

	// Grid and ticks. On log axes the tick values are decades in data
	// space; elsewhere the usual nice-number ticks in axis space.
	xticks := axisTicks(xmin, xmax, 8, c.XLog)
	yticks := axisTicks(ymin, ymax, 7, c.YLog)
	b.WriteString(`<g font-family="sans-serif" font-size="11" fill="#444">` + "\n")
	for _, tx := range xticks {
		px := sx(tx)
		if px < float64(mLeft)-0.5 || px > float64(mLeft)+pw+0.5 {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd" stroke-width="1"/>`+"\n", px, mTop, px, float64(mTop)+ph)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n", px, float64(mTop)+ph+16, FormatTick(tx))
	}
	for _, ty := range yticks {
		py := sy(ty)
		if py < float64(mTop)-0.5 || py > float64(mTop)+ph+0.5 {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd" stroke-width="1"/>`+"\n", mLeft, py, float64(mLeft)+pw, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n", mLeft-6, py+4, FormatTick(ty))
	}
	b.WriteString("</g>\n")

	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#333" stroke-width="1"/>`+"\n", mLeft, mTop, pw, ph)
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n", mLeft+int(pw/2), H-10, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n", mTop+int(ph/2), mTop+int(ph/2), esc(c.YLabel))
	}

	// Reference lines.
	for _, r := range c.refs {
		col := r.color
		if col == "" {
			col = "#888"
		}
		if r.vert {
			if r.value < xmin || r.value > xmax {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="%s"/>`+"\n", sx(r.value), mTop, sx(r.value), float64(mTop)+ph, col, r.style.dashArray())
			if r.label != "" {
				fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n", sx(r.value)+4, mTop+14, col, esc(r.label))
			}
		} else {
			if r.value < ymin || r.value > ymax {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="%s"/>`+"\n", mLeft, sy(r.value), float64(mLeft)+pw, sy(r.value), col, r.style.dashArray())
			if r.label != "" {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n", float64(mLeft)+pw-4, sy(r.value)-4, col, esc(r.label))
				// right-align label
			}
		}
	}

	// Series polylines, clipped to the plot area.
	fmt.Fprintf(&b, `<clipPath id="plot"><rect x="%d" y="%d" width="%.1f" height="%.1f"/></clipPath>`+"\n", mLeft, mTop, pw, ph)
	b.WriteString(`<g clip-path="url(#plot)">` + "\n")
	for i, s := range c.series {
		col := s.Color
		if col == "" {
			col = defaultColors[i%len(defaultColors)]
		}
		width := s.Width
		if width == 0 {
			width = 1.5
		}
		var pts strings.Builder
		for j := range s.X {
			if math.IsNaN(s.X[j]) || math.IsNaN(s.Y[j]) ||
				!xVisible(s.X[j]) || !yVisible(s.Y[j]) {
				continue
			}
			fmt.Fprintf(&pts, "%.2f,%.2f ", sx(s.X[j]), sy(s.Y[j]))
		}
		dash := ""
		if da := s.Style.dashArray(); da != "" {
			dash = fmt.Sprintf(` stroke-dasharray="%s"`, da)
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"%s/>`+"\n", strings.TrimSpace(pts.String()), col, width, dash)
		if s.Points {
			for j := range s.X {
				if !xVisible(s.X[j]) || !yVisible(s.Y[j]) {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="%s"/>`+"\n", sx(s.X[j]), sy(s.Y[j]), col)
			}
		}
	}
	b.WriteString("</g>\n")

	// Markers.
	for _, m := range c.markers {
		col := m.Color
		if col == "" {
			col = "#d00"
		}
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="4" fill="%s"/>`+"\n", sx(m.X), sy(m.Y), col)
		if m.Label != "" {
			fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="11">%s</text>`+"\n", sx(m.X)+6, sy(m.Y)-6, esc(m.Label))
		}
	}

	// Legend.
	if !c.HideLegend {
		var named []int
		for i, s := range c.series {
			if s.Name != "" {
				named = append(named, i)
			}
		}
		if len(named) > 0 {
			lx, ly := mLeft+12, mTop+10
			for row, i := range named {
				s := c.series[i]
				col := s.Color
				if col == "" {
					col = defaultColors[i%len(defaultColors)]
				}
				y := ly + row*16
				fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n", lx, y, lx+20, y, col)
				fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+26, y+4, esc(s.Name))
			}
		}
	}

	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// logRange converts a data range to log10 axis space, requiring positive
// bounds.
func logRange(lo, hi float64, axis string) (float64, float64, error) {
	if lo <= 0 || hi <= 0 {
		return 0, 0, fmt.Errorf("plot: log %s-axis requires positive data range, got [%v, %v]", axis, lo, hi)
	}
	return math.Log10(lo), math.Log10(hi), nil
}

// axisTicks returns tick values in data space: nice numbers for linear
// axes, decades (with 2x and 5x minors when sparse) for log axes. The lo
// and hi arguments are in axis space (already log10 for log axes).
func axisTicks(lo, hi float64, n int, logAxis bool) []float64 {
	if !logAxis {
		return Ticks(lo, hi, n)
	}
	var out []float64
	first := int(math.Floor(lo))
	last := int(math.Ceil(hi))
	decades := last - first
	for d := first; d <= last; d++ {
		base := math.Pow(10, float64(d))
		out = append(out, base)
		if decades <= 3 {
			out = append(out, 2*base, 5*base)
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
