package plot

import (
	"fmt"
	"math"
	"strings"
)

// ASCII renders series onto a text grid for terminal inspection. Each
// series uses a distinct rune. It returns the rendered block or an error
// for empty input.
func ASCII(title string, width, height int, series ...Series) (string, error) {
	if width < 16 {
		width = 64
	}
	if height < 8 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	saw := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			saw = true
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if !saw {
		return "", ErrEmptyChart
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	glyphs := []rune{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((ymax - s.Y[i]) / (ymax - ymin) * float64(height-1))
			if cx >= 0 && cx < width && cy >= 0 && cy < height {
				grid[cy][cx] = g
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: [%s, %s]\n", FormatTick(ymin), FormatTick(ymax))
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "x: [%s, %s]\n", FormatTick(xmin), FormatTick(xmax))
	for si, s := range series {
		if s.Name != "" {
			fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
		}
	}
	return b.String(), nil
}
