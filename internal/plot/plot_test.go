package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTicksCoverRange(t *testing.T) {
	cases := [][2]float64{
		{0, 1}, {-5, 5}, {0, 1e9}, {2.5e6, 13.8e6}, {-1e-4, 1e-4}, {3, 3},
	}
	for _, c := range cases {
		ticks := Ticks(c[0], c[1], 8)
		if len(ticks) < 2 {
			t.Errorf("Ticks(%v, %v) = %v: too few", c[0], c[1], ticks)
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("Ticks(%v, %v) not increasing: %v", c[0], c[1], ticks)
			}
		}
	}
}

func TestTicksReversedInput(t *testing.T) {
	ticks := Ticks(5, -5, 6)
	if len(ticks) < 2 {
		t.Fatalf("reversed range not handled: %v", ticks)
	}
}

// TestQuickTicksStepUniform: tick spacing is uniform and positive.
func TestQuickTicksStepUniform(t *testing.T) {
	prop := func(loRaw, spanRaw uint16) bool {
		lo := float64(int(loRaw) - 32768)
		span := 1 + float64(spanRaw)
		ticks := Ticks(lo, lo+span, 8)
		if len(ticks) < 2 {
			return false
		}
		step := ticks[1] - ticks[0]
		for i := 2; i < len(ticks); i++ {
			if math.Abs((ticks[i]-ticks[i-1])-step) > 1e-9*step {
				return false
			}
		}
		return step > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1500, "1.5k"},
		{2.5e6, "2.5M"},
		{10e9, "10G"},
		{-3e6, "-3M"},
		{0.25, "0.25"},
	}
	for _, c := range cases {
		if got := FormatTick(c.v); got != c.want {
			t.Errorf("FormatTick(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestChartRender(t *testing.T) {
	c := NewChart("Phase portrait", "x (bits)", "y (bits/s)")
	c.AddXY("trajectory", []float64{-1, 0, 1, 2}, []float64{0, 1, 0, -1})
	c.Add(Series{Name: "dashed", X: []float64{0, 2}, Y: []float64{1, 1}, Style: Dashed})
	c.AddMarker(Marker{X: 1, Y: 0, Label: "peak"})
	c.AddHLine(0.5, "ref", "")
	c.AddVLine(1.5, "switch", "#f00")
	c.AddBand(Band{Lo: -0.5, Hi: 0.5, Color: "#eef"})
	c.AddSegment("seg", 0, 0, 2, -1, "#999", Dotted)

	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	svg := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "Phase portrait", "trajectory", "peak",
		"polyline", "stroke-dasharray", "clipPath",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestChartRenderEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewChart("t", "x", "y").Render(&b); !errors.Is(err, ErrEmptyChart) {
		t.Errorf("err = %v, want ErrEmptyChart", err)
	}
}

func TestChartExplicitLimits(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.AddXY("s", []float64{0, 10}, []float64{0, 10})
	c.XMin, c.XMax, c.YMin, c.YMax = 2, 8, 2, 8
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestChartEscapesXML(t *testing.T) {
	c := NewChart(`a<b>&"c"`, "x", "y")
	c.AddXY("s<&>", []float64{0, 1}, []float64{0, 1})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	svg := b.String()
	if strings.Contains(svg, `a<b>`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;") {
		t.Error("expected escaped entities")
	}
}

func TestChartNaNSkipped(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.AddXY("s", []float64{0, math.NaN(), 2}, []float64{0, 1, 2})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render with NaN: %v", err)
	}
}

func TestASCII(t *testing.T) {
	out, err := ASCII("wave", 40, 12,
		Series{Name: "sin", X: ramp(50), Y: mapf(ramp(50), func(x float64) float64 { return math.Sin(x / 5) })},
	)
	if err != nil {
		t.Fatalf("ASCII: %v", err)
	}
	if !strings.Contains(out, "wave") || !strings.Contains(out, "*") || !strings.Contains(out, "sin") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if _, err := ASCII("empty", 40, 12); !errors.Is(err, ErrEmptyChart) {
		t.Errorf("err = %v, want ErrEmptyChart", err)
	}
}

func TestASCIIDefaultsAndConstantSeries(t *testing.T) {
	out, err := ASCII("", 0, 0, Series{X: []float64{1, 1}, Y: []float64{2, 2}})
	if err != nil {
		t.Fatalf("ASCII: %v", err)
	}
	if out == "" {
		t.Error("empty render")
	}
}

func ramp(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func mapf(x []float64, f func(float64) float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = f(v)
	}
	return y
}

func TestNiceNum(t *testing.T) {
	cases := []struct {
		x     float64
		round bool
		want  float64
	}{
		{1.2, true, 1},
		{2.6, true, 2},
		{4.9, true, 5},
		{8, true, 10},
		{1.2, false, 2},
		{0.7, false, 1},
		{0, true, 0},
	}
	for _, c := range cases {
		if got := niceNum(c.x, c.round); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("niceNum(%v, %v) = %v, want %v", c.x, c.round, got, c.want)
		}
	}
}

func TestTrimZero(t *testing.T) {
	cases := map[string]string{
		"1.500": "1.5",
		"2.000": "2",
		"10":    "10",
		"0.250": "0.25",
	}
	for in, want := range cases {
		if got := trimZero(in); got != want {
			t.Errorf("trimZero(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestChartLogAxes(t *testing.T) {
	c := NewChart("log", "x", "y")
	c.XLog, c.YLog = true, true
	c.AddXY("s", []float64{0.01, 0.1, 1, 10}, []float64{1, 10, 100, 1000})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(b.String(), "polyline") {
		t.Error("no polyline rendered")
	}
}

func TestChartLogAxisRejectsNonPositive(t *testing.T) {
	c := NewChart("log", "x", "y")
	c.XLog = true
	c.AddXY("s", []float64{-1, 1}, []float64{1, 2})
	var b strings.Builder
	if err := c.Render(&b); err == nil {
		t.Error("non-positive data on a log axis accepted")
	}
}

func TestChartLogSkipsNonPositivePoints(t *testing.T) {
	c := NewChart("log", "x", "y")
	c.YLog = true
	// One zero sample must be skipped, not break the render (the data
	// range is computed over all points, so keep them positive overall
	// via explicit limits).
	c.YMin, c.YMax = 1, 1000
	c.AddXY("s", []float64{0, 1, 2}, []float64{0, 10, 100})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestAxisTicksLog(t *testing.T) {
	ticks := axisTicks(0, 3, 8, true) // 1 .. 1000 in data space
	hasDecade := map[float64]bool{}
	for _, v := range ticks {
		hasDecade[v] = true
	}
	for _, want := range []float64{1, 10, 100, 1000} {
		if !hasDecade[want] {
			t.Errorf("log ticks missing decade %v: %v", want, ticks)
		}
	}
}
