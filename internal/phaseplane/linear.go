// Package phaseplane provides generic tools for analyzing planar autonomous
// dynamical systems: singular-point classification of linear systems,
// trajectory tracing (including piecewise/switched systems with events on a
// switching surface), vector-field sampling for portraits, and Poincaré
// return maps for limit-cycle detection.
//
// The BCN congestion-control model in internal/core is one client; the
// package itself is independent of networking.
package phaseplane

import (
	"fmt"
	"math"
)

// SingularKind classifies the singular (equilibrium) point of a planar
// linear system x' = A x.
type SingularKind int

// Singular point categories, following the standard trace-determinant
// classification of planar linear systems.
const (
	// KindUnknown is returned for degenerate matrices (zero determinant).
	KindUnknown SingularKind = iota
	// KindStableFocus: complex eigenvalues with negative real part; the
	// trajectories are contracting logarithmic spirals.
	KindStableFocus
	// KindUnstableFocus: complex eigenvalues with positive real part.
	KindUnstableFocus
	// KindCenter: purely imaginary eigenvalues; closed orbits.
	KindCenter
	// KindStableNode: two negative real eigenvalues.
	KindStableNode
	// KindUnstableNode: two positive real eigenvalues.
	KindUnstableNode
	// KindSaddle: real eigenvalues of opposite sign.
	KindSaddle
	// KindDegenerateStableNode: repeated negative real eigenvalue.
	KindDegenerateStableNode
	// KindDegenerateUnstableNode: repeated positive real eigenvalue.
	KindDegenerateUnstableNode
)

// String returns a short human-readable name for the classification.
func (k SingularKind) String() string {
	switch k {
	case KindStableFocus:
		return "stable focus"
	case KindUnstableFocus:
		return "unstable focus"
	case KindCenter:
		return "center"
	case KindStableNode:
		return "stable node"
	case KindUnstableNode:
		return "unstable node"
	case KindSaddle:
		return "saddle"
	case KindDegenerateStableNode:
		return "degenerate stable node"
	case KindDegenerateUnstableNode:
		return "degenerate unstable node"
	default:
		return "unknown"
	}
}

// Stable reports whether the singular point attracts nearby trajectories.
func (k SingularKind) Stable() bool {
	switch k {
	case KindStableFocus, KindStableNode, KindDegenerateStableNode:
		return true
	default:
		return false
	}
}

// Linear2 is the planar linear system
//
//	x' = A11 x + A12 y
//	y' = A21 x + A22 y
type Linear2 struct {
	A11, A12, A21, A22 float64
}

// Trace returns the trace of the system matrix.
func (l Linear2) Trace() float64 { return l.A11 + l.A22 }

// Det returns the determinant of the system matrix.
func (l Linear2) Det() float64 { return l.A11*l.A22 - l.A12*l.A21 }

// Discriminant returns trace² − 4·det, whose sign separates foci from nodes.
func (l Linear2) Discriminant() float64 {
	tr := l.Trace()
	return tr*tr - 4*l.Det()
}

// Eigen holds the eigenvalues of a planar linear system. When Complex is
// true the eigenvalues are Re ± i·Im (Im > 0); otherwise they are the reals
// L1 ≤ L2.
type Eigen struct {
	Complex bool
	Re, Im  float64 // populated when Complex
	L1, L2  float64 // populated when !Complex; L1 <= L2
}

// Eigenvalues computes the eigenvalues of the system matrix.
func (l Linear2) Eigenvalues() Eigen {
	tr := l.Trace()
	disc := l.Discriminant()
	if disc < 0 {
		return Eigen{Complex: true, Re: tr / 2, Im: math.Sqrt(-disc) / 2}
	}
	s := math.Sqrt(disc)
	return Eigen{L1: (tr - s) / 2, L2: (tr + s) / 2}
}

// Classify determines the type of the singular point at the origin.
func (l Linear2) Classify() SingularKind {
	det := l.Det()
	tr := l.Trace()
	if det == 0 {
		return KindUnknown
	}
	if det < 0 {
		return KindSaddle
	}
	disc := l.Discriminant()
	switch {
	case disc < 0:
		switch {
		case tr < 0:
			return KindStableFocus
		case tr > 0:
			return KindUnstableFocus
		default:
			return KindCenter
		}
	case disc == 0:
		if tr < 0 {
			return KindDegenerateStableNode
		}
		return KindDegenerateUnstableNode
	default:
		if tr < 0 {
			return KindStableNode
		}
		return KindUnstableNode
	}
}

// Field returns the vector field of the linear system.
func (l Linear2) Field() VectorField {
	return func(x, y float64) (float64, float64) {
		return l.A11*x + l.A12*y, l.A21*x + l.A22*y
	}
}

// Eigenline returns the slope m of the invariant line y = m·x associated
// with real eigenvalue lambda, for systems in companion form (A11=0, A12=1),
// where the eigenvector is (1, lambda). It returns an error for systems not
// in companion form.
func (l Linear2) Eigenline(lambda float64) (float64, error) {
	if l.A11 != 0 || l.A12 != 1 {
		return 0, fmt.Errorf("phaseplane: Eigenline requires companion form, got A11=%v A12=%v", l.A11, l.A12)
	}
	return lambda, nil
}

// Companion builds the companion-form system x' = y, y' = -n·x - m·y whose
// characteristic polynomial is λ² + m·λ + n (the form of the BCN linearized
// subsystems, eq. (10) of the paper).
func Companion(m, n float64) Linear2 {
	return Linear2{A11: 0, A12: 1, A21: -n, A22: -m}
}
