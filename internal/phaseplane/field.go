package phaseplane

import (
	"fmt"
	"math"
)

// VectorField is a planar autonomous vector field: it returns (dx/dt, dy/dt)
// at the point (x, y).
type VectorField func(x, y float64) (dx, dy float64)

// Arrow is a sampled field vector anchored at (X, Y) with direction
// (U, V), normalized to unit length unless the field vanishes there.
type Arrow struct {
	X, Y, U, V float64
	// Mag is the original (un-normalized) field magnitude.
	Mag float64
}

// Grid samples the field on an nx×ny lattice covering [xmin,xmax]×[ymin,ymax]
// with unit-normalized directions, for quiver-style phase portraits.
func Grid(f VectorField, xmin, xmax, ymin, ymax float64, nx, ny int) ([]Arrow, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("phaseplane: grid needs nx, ny >= 2 (got %d, %d)", nx, ny)
	}
	if !(xmax > xmin) || !(ymax > ymin) {
		return nil, fmt.Errorf("phaseplane: empty grid extent [%v,%v]x[%v,%v]", xmin, xmax, ymin, ymax)
	}
	out := make([]Arrow, 0, nx*ny)
	for i := 0; i < nx; i++ {
		x := xmin + (xmax-xmin)*float64(i)/float64(nx-1)
		for j := 0; j < ny; j++ {
			y := ymin + (ymax-ymin)*float64(j)/float64(ny-1)
			u, v := f(x, y)
			mag := math.Hypot(u, v)
			if mag > 0 {
				u /= mag
				v /= mag
			}
			out = append(out, Arrow{X: x, Y: y, U: u, V: v, Mag: mag})
		}
	}
	return out, nil
}

// Nullcline scans for sign changes of one component of the field along grid
// rows/columns, returning polyline points approximating the locus where the
// chosen component vanishes. Component 0 means dx/dt = 0, 1 means dy/dt = 0.
func Nullcline(f VectorField, component int, xmin, xmax, ymin, ymax float64, n int) ([][2]float64, error) {
	if component != 0 && component != 1 {
		return nil, fmt.Errorf("phaseplane: component must be 0 or 1, got %d", component)
	}
	if n < 2 {
		return nil, fmt.Errorf("phaseplane: nullcline scan needs n >= 2, got %d", n)
	}
	pick := func(x, y float64) float64 {
		u, v := f(x, y)
		if component == 0 {
			return u
		}
		return v
	}
	var pts [][2]float64
	// Scan vertical lines for sign changes in y.
	for i := 0; i < n; i++ {
		x := xmin + (xmax-xmin)*float64(i)/float64(n-1)
		prevY := ymin
		prevG := pick(x, prevY)
		for j := 1; j < n; j++ {
			y := ymin + (ymax-ymin)*float64(j)/float64(n-1)
			g := pick(x, y)
			if prevG == 0 {
				pts = append(pts, [2]float64{x, prevY})
			} else if (prevG < 0) != (g < 0) {
				// Bisect in y.
				lo, hi, glo := prevY, y, prevG
				for it := 0; it < 60; it++ {
					mid := 0.5 * (lo + hi)
					gm := pick(x, mid)
					if gm == 0 {
						lo, hi = mid, mid
						break
					}
					if (glo < 0) == (gm < 0) {
						lo, glo = mid, gm
					} else {
						hi = mid
					}
				}
				pts = append(pts, [2]float64{x, 0.5 * (lo + hi)})
			}
			prevY, prevG = y, g
		}
	}
	return pts, nil
}
