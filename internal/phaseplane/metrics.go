package phaseplane

import "bcnphase/internal/telemetry"

// Metrics instruments Poincaré return-map evaluations. A nil *Metrics
// is inert; the solver integrator below it can additionally be
// instrumented through ReturnMap.ODE.Metrics.
type Metrics struct {
	// Returns counts completed first-return evaluations.
	Returns *telemetry.Counter
	// NoReturns counts trajectories that never came back to the section
	// within the horizon.
	NoReturns *telemetry.Counter
	// FlightTime records the simulated period of each completed return.
	FlightTime *telemetry.Histogram
}

// NewMetrics registers the return-map family on r. A nil registry
// yields a nil (inert) Metrics.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Returns:   r.Counter("phaseplane_returns_total", "completed Poincaré first returns"),
		NoReturns: r.Counter("phaseplane_no_returns_total", "trajectories that never returned to the section"),
		FlightTime: r.Histogram("phaseplane_return_period_seconds",
			"simulated flight time of one return", telemetry.ExpBuckets(1e-3, 4, 12)),
	}
}
