package phaseplane

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		sys  Linear2
		want SingularKind
	}{
		{"stable focus", Companion(1, 4), KindStableFocus},      // λ²+λ+4
		{"unstable focus", Companion(-1, 4), KindUnstableFocus}, // λ²-λ+4
		{"center", Companion(0, 1), KindCenter},
		{"stable node", Companion(5, 4), KindStableNode}, // roots -1,-4
		{"unstable node", Companion(-5, 4), KindUnstableNode},
		{"saddle", Companion(0, -1), KindSaddle}, // roots ±1
		{"degenerate stable", Companion(2, 1), KindDegenerateStableNode},
		{"degenerate unstable", Companion(-2, 1), KindDegenerateUnstableNode},
		{"singular", Companion(1, 0), KindUnknown},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.sys.Classify(); got != c.want {
				t.Errorf("Classify() = %v, want %v", got, c.want)
			}
		})
	}
}

func TestKindStable(t *testing.T) {
	stable := []SingularKind{KindStableFocus, KindStableNode, KindDegenerateStableNode}
	unstable := []SingularKind{KindUnstableFocus, KindUnstableNode, KindSaddle, KindCenter, KindUnknown}
	for _, k := range stable {
		if !k.Stable() {
			t.Errorf("%v should be stable", k)
		}
	}
	for _, k := range unstable {
		if k.Stable() {
			t.Errorf("%v should not be stable", k)
		}
	}
}

func TestEigenvalues(t *testing.T) {
	// λ² + 5λ + 4 = 0 → λ = -1, -4.
	e := Companion(5, 4).Eigenvalues()
	if e.Complex {
		t.Fatalf("expected real eigenvalues")
	}
	if math.Abs(e.L1+4) > 1e-12 || math.Abs(e.L2+1) > 1e-12 {
		t.Errorf("eigenvalues (%v, %v), want (-4, -1)", e.L1, e.L2)
	}
	// λ² + 2λ + 5 = 0 → λ = -1 ± 2i.
	e = Companion(2, 5).Eigenvalues()
	if !e.Complex {
		t.Fatalf("expected complex eigenvalues")
	}
	if math.Abs(e.Re+1) > 1e-12 || math.Abs(e.Im-2) > 1e-12 {
		t.Errorf("eigenvalues %v±%vi, want -1±2i", e.Re, e.Im)
	}
}

// TestQuickClassifyMatchesEigen: classification agrees with eigenvalue signs
// for random companion systems.
func TestQuickClassifyMatchesEigen(t *testing.T) {
	prop := func(mRaw, nRaw int8) bool {
		m := float64(mRaw) / 8
		n := float64(nRaw) / 8
		sys := Companion(m, n)
		kind := sys.Classify()
		e := sys.Eigenvalues()
		if sys.Det() == 0 {
			return kind == KindUnknown
		}
		if e.Complex {
			switch {
			case e.Re < 0:
				return kind == KindStableFocus
			case e.Re > 0:
				return kind == KindUnstableFocus
			default:
				return kind == KindCenter
			}
		}
		switch {
		case e.L1 < 0 && e.L2 < 0:
			return kind == KindStableNode || kind == KindDegenerateStableNode
		case e.L1 > 0 && e.L2 > 0:
			return kind == KindUnstableNode || kind == KindDegenerateUnstableNode
		default:
			return kind == KindSaddle
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEigenline(t *testing.T) {
	sys := Companion(5, 4)
	m, err := sys.Eigenline(-1)
	if err != nil || m != -1 {
		t.Errorf("Eigenline(-1) = %v, %v", m, err)
	}
	bad := Linear2{A11: 1, A12: 2, A21: 3, A22: 4}
	if _, err := bad.Eigenline(-1); err == nil {
		t.Error("Eigenline on non-companion form should error")
	}
}

func TestTraceStableFocusConverges(t *testing.T) {
	sys := Companion(1, 4) // stable focus
	path, err := Trace(sys.Field(), 1, 0, TraceOptions{
		Horizon:        100,
		ConvergeRadius: 1e-4,
	})
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if !path.Converged {
		t.Error("stable focus trajectory did not converge")
	}
	if path.Escaped {
		t.Error("unexpected escape")
	}
	// A spiral must cross x=0 at least once en route.
	if path.MinX() >= 0 {
		t.Error("spiral should overshoot into x<0")
	}
}

func TestTraceEscape(t *testing.T) {
	sys := Companion(-1, 4) // unstable focus
	path, err := Trace(sys.Field(), 0.1, 0, TraceOptions{
		Horizon: 1000,
		Box:     Box{XMin: -5, XMax: 5, YMin: -10, YMax: 10},
	})
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if !path.Escaped {
		t.Error("unstable trajectory should escape the box")
	}
}

func TestTraceRecordsSwitchCrossings(t *testing.T) {
	// Harmonic oscillator crossing the line x + y = 0 periodically.
	f := Companion(0, 1).Field()
	sigma := func(x, y float64) float64 { return x + y }
	path, err := Trace(f, 1, 0, TraceOptions{Horizon: 2 * math.Pi, Sigma: sigma})
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// One full revolution crosses the line twice.
	if len(path.Crossings) != 2 {
		t.Fatalf("got %d crossings, want 2", len(path.Crossings))
	}
	for _, c := range path.Crossings {
		if math.Abs(c.X+c.Y) > 1e-6 {
			t.Errorf("crossing (%v, %v) not on the line", c.X, c.Y)
		}
	}
}

func TestTraceInvalidHorizon(t *testing.T) {
	if _, err := Trace(Companion(1, 1).Field(), 1, 0, TraceOptions{}); err == nil {
		t.Error("zero horizon should error")
	}
}

func TestPathAt(t *testing.T) {
	p := &Path{T: []float64{0, 1, 2}, X: []float64{0, 10, 20}, Y: []float64{0, -10, -20}}
	x, y := p.At(0.5)
	if x != 5 || y != -5 {
		t.Errorf("At(0.5) = (%v, %v)", x, y)
	}
	x, _ = p.At(-1)
	if x != 0 {
		t.Errorf("At(-1) clamps to start, got x=%v", x)
	}
	x, _ = p.At(99)
	if x != 20 {
		t.Errorf("At(99) clamps to end, got x=%v", x)
	}
}

func TestSwitchedFieldSelection(t *testing.T) {
	pos := func(x, y float64) (float64, float64) { return 1, 0 }
	neg := func(x, y float64) (float64, float64) { return -1, 0 }
	sigma := func(x, y float64) float64 { return y }
	f := Switched(sigma, pos, neg)
	if u, _ := f(0, 1); u != 1 {
		t.Errorf("sigma>0 picked wrong field: u=%v", u)
	}
	if u, _ := f(0, -1); u != -1 {
		t.Errorf("sigma<0 picked wrong field: u=%v", u)
	}
	if u, _ := f(0, 0); u != 0 {
		t.Errorf("on the surface expected mean 0, got %v", u)
	}
}

func vanDerPol(mu float64) VectorField {
	return func(x, y float64) (float64, float64) {
		return y, mu*(1-x*x)*y - x
	}
}

func vdpReturnMap(mu float64) *ReturnMap {
	return &ReturnMap{
		Field:   vanDerPol(mu),
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: 100,
	}
}

func TestReturnMapVanDerPolLimitCycle(t *testing.T) {
	// The Van der Pol oscillator (mu=1) has a stable limit cycle with
	// x-amplitude ~2.009 on the section y=0.
	m := vdpReturnMap(1)
	sStar, err := m.FixedPoint(0.5, 4, 16)
	if err != nil {
		t.Fatalf("FixedPoint: %v", err)
	}
	if math.Abs(sStar-2.009) > 0.05 {
		t.Errorf("limit cycle amplitude %v, want ~2.009", sStar)
	}
	// The cycle is attracting: |P'(s*)| < 1.
	deriv, err := m.Stability(sStar, 0)
	if err != nil {
		t.Fatalf("Stability: %v", err)
	}
	if math.Abs(deriv) >= 1 {
		t.Errorf("|P'(s*)| = %v, want < 1 (attracting)", math.Abs(deriv))
	}
}

func TestReturnMapIterateConvergesToCycle(t *testing.T) {
	m := vdpReturnMap(1)
	orbit, err := m.Iterate(0.5, 12)
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	last := orbit[len(orbit)-1]
	if math.Abs(last-2.009) > 0.05 {
		t.Errorf("orbit converged to %v, want ~2.009", last)
	}
}

func TestReturnMapNoFixedPoint(t *testing.T) {
	// Linear stable focus: return map is a pure contraction, no
	// nontrivial fixed point.
	sys := Companion(1, 4)
	m := &ReturnMap{
		Field:   sys.Field(),
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: 100,
	}
	if _, err := m.FixedPoint(0.5, 4, 8); !errors.Is(err, ErrNoFixedPoint) {
		t.Errorf("err = %v, want ErrNoFixedPoint", err)
	}
}

func TestReturnMapContractionFactor(t *testing.T) {
	// For the linear stable focus x''+x'+4x=0 the return-map multiplier
	// over a full revolution is exp(2*pi*alpha/beta) with alpha=-1/2,
	// beta=sqrt(15)/2.
	sys := Companion(1, 4)
	m := &ReturnMap{
		Field:   sys.Field(),
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: 100,
	}
	next, period, err := m.Map(1)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	alpha, beta := -0.5, math.Sqrt(15)/2
	wantRho := math.Exp(2 * math.Pi * alpha / beta)
	wantPeriod := 2 * math.Pi / beta
	if math.Abs(next-wantRho) > 1e-4 {
		t.Errorf("multiplier %v, want %v", next, wantRho)
	}
	if math.Abs(period-wantPeriod) > 1e-4 {
		t.Errorf("period %v, want %v", period, wantPeriod)
	}
}

func TestReturnMapValidation(t *testing.T) {
	m := &ReturnMap{}
	if _, _, err := m.Map(1); err == nil {
		t.Error("empty ReturnMap should error")
	}
	if _, err := m.FixedPoint(1, 0, 8); err == nil {
		t.Error("reversed interval should error")
	}
	good := vdpReturnMap(1)
	if _, err := good.FixedPoint(0.5, 4, 1); err == nil {
		t.Error("nScan < 2 should error")
	}
}

func TestGrid(t *testing.T) {
	arrows, err := Grid(Companion(0, 1).Field(), -1, 1, -1, 1, 5, 5)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if len(arrows) != 25 {
		t.Fatalf("got %d arrows, want 25", len(arrows))
	}
	for _, a := range arrows {
		if a.Mag > 0 {
			if n := math.Hypot(a.U, a.V); math.Abs(n-1) > 1e-12 {
				t.Errorf("arrow at (%v,%v) not unit: %v", a.X, a.Y, n)
			}
		}
	}
	if _, err := Grid(Companion(0, 1).Field(), -1, 1, -1, 1, 1, 5); err == nil {
		t.Error("nx < 2 should error")
	}
	if _, err := Grid(Companion(0, 1).Field(), 1, -1, -1, 1, 5, 5); err == nil {
		t.Error("empty extent should error")
	}
}

func TestNullcline(t *testing.T) {
	// For the harmonic oscillator x'=y, y'=-x: the dx/dt=0 nullcline is
	// the x-axis (y=0); the dy/dt=0 nullcline is the y-axis (x=0).
	pts, err := Nullcline(Companion(0, 1).Field(), 0, -1, 1, -1, 1, 21)
	if err != nil {
		t.Fatalf("Nullcline: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("no nullcline points found")
	}
	for _, p := range pts {
		if math.Abs(p[1]) > 1e-9 {
			t.Errorf("dx/dt nullcline point (%v, %v) should have y=0", p[0], p[1])
		}
	}
	if _, err := Nullcline(Companion(0, 1).Field(), 2, -1, 1, -1, 1, 21); err == nil {
		t.Error("bad component should error")
	}
	if _, err := Nullcline(Companion(0, 1).Field(), 0, -1, 1, -1, 1, 1); err == nil {
		t.Error("n < 2 should error")
	}
}

func TestBox(t *testing.T) {
	var zero Box
	if !zero.Zero() {
		t.Error("zero box should report Zero")
	}
	b := Box{XMin: -1, XMax: 1, YMin: -2, YMax: 2}
	if b.Zero() {
		t.Error("non-zero box misreported")
	}
	if !b.Contains(0, 0) || b.Contains(2, 0) || b.Contains(0, 3) {
		t.Error("Contains is wrong")
	}
}

func TestSingularKindStrings(t *testing.T) {
	kinds := []SingularKind{
		KindUnknown, KindStableFocus, KindUnstableFocus, KindCenter,
		KindStableNode, KindUnstableNode, KindSaddle,
		KindDegenerateStableNode, KindDegenerateUnstableNode,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Errorf("empty name for %d", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

func TestPathExtremes(t *testing.T) {
	p := &Path{X: []float64{-2, 5, 1}, Y: []float64{0, 0, 0}, T: []float64{0, 1, 2}}
	if p.MaxX() != 5 || p.MinX() != -2 {
		t.Errorf("extremes = %v, %v", p.MaxX(), p.MinX())
	}
}
