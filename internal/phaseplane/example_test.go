package phaseplane_test

import (
	"fmt"
	"math"

	"bcnphase/internal/phaseplane"
)

// ExampleLinear2_Classify classifies the singular point of a planar
// linear system from its companion form λ² + mλ + n.
func ExampleLinear2_Classify() {
	fmt.Println(phaseplane.Companion(1, 4).Classify())  // m²<4n
	fmt.Println(phaseplane.Companion(5, 4).Classify())  // m²>4n
	fmt.Println(phaseplane.Companion(0, -1).Classify()) // det<0
	// Output:
	// stable focus
	// stable node
	// saddle
}

// ExampleReturnMap_FixedPoint finds the Van der Pol limit cycle through
// the Poincaré first-return map on the x-axis.
func ExampleReturnMap_FixedPoint() {
	vdp := func(x, y float64) (float64, float64) {
		return y, (1-x*x)*y - x
	}
	m := &phaseplane.ReturnMap{
		Field:   vdp,
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: 100,
	}
	s, err := m.FixedPoint(0.5, 4, 16)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("limit cycle amplitude: %.2f\n", s)
	// Output:
	// limit cycle amplitude: 2.01
}

// ExampleClassifyAt linearizes a nonlinear field at an equilibrium
// (Lyapunov's first method, as the paper uses in §IV-A).
func ExampleClassifyAt() {
	pendulum := func(x, y float64) (float64, float64) {
		return y, -math.Sin(x) - 0.5*y
	}
	fmt.Println(phaseplane.ClassifyAt(pendulum, 0, 0))
	fmt.Println(phaseplane.ClassifyAt(pendulum, math.Pi, 0))
	// Output:
	// stable focus
	// saddle
}
