package phaseplane

import (
	"errors"
	"fmt"
	"math"

	"bcnphase/internal/ode"
)

// Returned errors from the Poincaré machinery.
var (
	// ErrNoReturn is returned when the trajectory does not come back to
	// the section within the time horizon.
	ErrNoReturn = errors.New("phaseplane: trajectory did not return to the section")
	// ErrNoFixedPoint is returned when no nontrivial fixed point of the
	// return map is bracketed in the scanned interval.
	ErrNoFixedPoint = errors.New("phaseplane: no fixed point bracketed")
)

// ReturnMap computes the Poincaré first-return map of a planar flow on a
// one-dimensional section. The section is described by an embedding of a
// scalar coordinate s into the plane and a projection back; the section
// itself must coincide with the zero set of Sigma.
type ReturnMap struct {
	// Field is the (possibly switched) vector field of the flow.
	Field VectorField
	// Sigma vanishes exactly on the section.
	Sigma func(x, y float64) float64
	// Embed maps the section coordinate s to a plane point on the
	// section.
	Embed func(s float64) (x, y float64)
	// Project recovers the section coordinate from a plane point.
	Project func(x, y float64) float64
	// Horizon bounds the flight time of one return (required).
	Horizon float64
	// ODE overrides integrator tolerances (zero = defaults).
	ODE ode.Options
	// Metrics optionally counts return-map evaluations and flight
	// times. Nil is inert.
	Metrics *Metrics
}

// validate checks required fields.
func (m *ReturnMap) validate() error {
	if m.Field == nil || m.Sigma == nil || m.Embed == nil || m.Project == nil {
		return fmt.Errorf("phaseplane: ReturnMap requires Field, Sigma, Embed and Project")
	}
	if m.Horizon <= 0 {
		return fmt.Errorf("phaseplane: ReturnMap requires positive Horizon, got %v", m.Horizon)
	}
	return nil
}

// Map flows the point with section coordinate s once around until it
// recrosses the section in the same direction, returning the new section
// coordinate and the flight time (the period of the would-be orbit).
func (m *ReturnMap) Map(s float64) (snext, period float64, err error) {
	if err := m.validate(); err != nil {
		return 0, 0, err
	}
	x0, y0 := m.Embed(s)
	// Determine the crossing direction at the start point from the sign
	// of d(sigma)/dt along the flow.
	u, v := m.Field(x0, y0)
	sdot := dirDeriv(m.Sigma, x0, y0, u, v)
	dir := +1
	if sdot < 0 {
		dir = -1
	}
	rhs := func(_ float64, y, dydt []float64) {
		dydt[0], dydt[1] = m.Field(y[0], y[1])
	}
	o := m.ODE
	if o.AbsTol == 0 && o.RelTol == 0 {
		o = ode.DefaultOptions()
	}
	o.Dense = false
	o.Events = []ode.Event{{
		Name:      "return",
		Terminal:  true,
		Direction: dir,
		G: func(_ float64, y []float64) float64 {
			return m.Sigma(y[0], y[1])
		},
	}}
	// Nudge off the section so the initial point does not register as a
	// crossing: take a short RK4 step (1e-6 of the horizon).
	y := []float64{x0, y0}
	h0 := 1e-6 * m.Horizon
	start := make([]float64, 2)
	if err := (ode.RK4{}).Step(rhs, 0, y, h0, start); err != nil {
		return 0, 0, fmt.Errorf("return map: nudge: %w", err)
	}
	sol, err := ode.DormandPrince(rhs, h0, start, m.Horizon, o)
	if err != nil {
		return 0, 0, fmt.Errorf("return map: %w", err)
	}
	if len(sol.Events) == 0 {
		if m.Metrics != nil {
			m.Metrics.NoReturns.Inc()
		}
		return 0, 0, ErrNoReturn
	}
	hit := sol.Events[len(sol.Events)-1]
	if m.Metrics != nil {
		m.Metrics.Returns.Inc()
		m.Metrics.FlightTime.Observe(hit.T)
	}
	return m.Project(hit.Y[0], hit.Y[1]), hit.T, nil
}

// Iterate applies the return map n times from s0, returning the orbit of
// section coordinates (length n+1, starting with s0). It stops early with
// the partial orbit and the error if a return fails.
func (m *ReturnMap) Iterate(s0 float64, n int) ([]float64, error) {
	orbit := make([]float64, 1, n+1)
	orbit[0] = s0
	s := s0
	for i := 0; i < n; i++ {
		next, _, err := m.Map(s)
		if err != nil {
			return orbit, err
		}
		orbit = append(orbit, next)
		s = next
	}
	return orbit, nil
}

// FixedPoint searches [sLo, sHi] for a root of P(s) − s by scanning nScan
// subintervals and bisecting the first bracket. Both endpoints must be on
// the same side of the trivial fixed point at the origin (exclude 0 from
// the interval to find nontrivial cycles).
func (m *ReturnMap) FixedPoint(sLo, sHi float64, nScan int) (float64, error) {
	if nScan < 2 {
		return 0, fmt.Errorf("phaseplane: nScan must be >= 2, got %d", nScan)
	}
	if !(sHi > sLo) {
		return 0, fmt.Errorf("phaseplane: empty interval [%v, %v]", sLo, sHi)
	}
	g := func(s float64) (float64, error) {
		next, _, err := m.Map(s)
		if err != nil {
			return 0, err
		}
		return next - s, nil
	}
	prevS := sLo
	prevG, err := g(prevS)
	if err != nil {
		return 0, fmt.Errorf("fixed point scan at %v: %w", prevS, err)
	}
	for i := 1; i <= nScan; i++ {
		s := sLo + (sHi-sLo)*float64(i)/float64(nScan)
		gi, err := g(s)
		if err != nil {
			return 0, fmt.Errorf("fixed point scan at %v: %w", s, err)
		}
		if prevG == 0 {
			return prevS, nil
		}
		if (prevG < 0) != (gi < 0) {
			// Bisect [prevS, s].
			lo, hi, glo := prevS, s, prevG
			for it := 0; it < 80; it++ {
				mid := 0.5 * (lo + hi)
				gm, err := g(mid)
				if err != nil {
					return 0, err
				}
				if gm == 0 {
					return mid, nil
				}
				if (glo < 0) == (gm < 0) {
					lo, glo = mid, gm
				} else {
					hi = mid
				}
				if math.Abs(hi-lo) <= 1e-10*math.Max(1, math.Abs(lo)) {
					break
				}
			}
			return 0.5 * (lo + hi), nil
		}
		prevS, prevG = s, gi
	}
	return 0, ErrNoFixedPoint
}

// Stability estimates the derivative P'(s*) of the return map at a fixed
// point by central differences; |P'| < 1 means the corresponding periodic
// orbit is attracting (a stable limit cycle).
func (m *ReturnMap) Stability(sStar, ds float64) (float64, error) {
	if ds == 0 {
		ds = 1e-4 * math.Max(1, math.Abs(sStar))
	}
	p1, _, err := m.Map(sStar + ds)
	if err != nil {
		return 0, err
	}
	p2, _, err := m.Map(sStar - ds)
	if err != nil {
		return 0, err
	}
	return (p1 - p2) / (2 * ds), nil
}

// dirDeriv numerically evaluates the directional derivative of sigma at
// (x, y) along (u, v) with a central difference scaled to the point.
func dirDeriv(sigma func(x, y float64) float64, x, y, u, v float64) float64 {
	h := 1e-7 * (1 + math.Hypot(x, y))
	n := math.Hypot(u, v)
	if n == 0 {
		return 0
	}
	ux, uy := u/n, v/n
	return (sigma(x+h*ux, y+h*uy) - sigma(x-h*ux, y-h*uy)) / (2 * h)
}
