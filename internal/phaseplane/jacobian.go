package phaseplane

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoEquilibrium is returned when the Newton search fails to converge.
var ErrNoEquilibrium = errors.New("phaseplane: equilibrium search did not converge")

// Jacobian estimates the Jacobian of the field at (x, y) by central
// differences with step h (h <= 0 picks a scale-aware default).
func Jacobian(f VectorField, x, y, h float64) Linear2 {
	if h <= 0 {
		h = 1e-6 * (1 + math.Hypot(x, y))
	}
	ux1, vx1 := f(x+h, y)
	ux0, vx0 := f(x-h, y)
	uy1, vy1 := f(x, y+h)
	uy0, vy0 := f(x, y-h)
	return Linear2{
		A11: (ux1 - ux0) / (2 * h),
		A12: (uy1 - uy0) / (2 * h),
		A21: (vx1 - vx0) / (2 * h),
		A22: (vy1 - vy0) / (2 * h),
	}
}

// ClassifyAt linearizes the field at the given point (assumed to be an
// equilibrium) and classifies the singular point, following Lyapunov's
// first method as the paper does in §IV-A.
func ClassifyAt(f VectorField, x, y float64) SingularKind {
	return Jacobian(f, x, y, 0).Classify()
}

// FindEquilibrium runs a damped Newton iteration on the field from the
// given start, returning a nearby equilibrium point.
func FindEquilibrium(f VectorField, x0, y0 float64) (x, y float64, err error) {
	x, y = x0, y0
	for iter := 0; iter < 200; iter++ {
		u, v := f(x, y)
		norm := math.Hypot(u, v)
		scale := 1 + math.Hypot(x, y)
		if norm <= 1e-12*scale {
			return x, y, nil
		}
		j := Jacobian(f, x, y, 0)
		det := j.Det()
		if det == 0 || math.IsNaN(det) {
			return 0, 0, fmt.Errorf("%w: singular Jacobian at (%v, %v)", ErrNoEquilibrium, x, y)
		}
		// Solve J·d = -(u, v).
		dx := (-u*j.A22 + v*j.A12) / det
		dy := (-v*j.A11 + u*j.A21) / det
		// Damping: cap the step to avoid overshooting basins.
		stepNorm := math.Hypot(dx, dy)
		maxStep := 10 * scale
		if stepNorm > maxStep {
			dx *= maxStep / stepNorm
			dy *= maxStep / stepNorm
		}
		x += dx
		y += dy
		if math.IsNaN(x) || math.IsNaN(y) {
			return 0, 0, fmt.Errorf("%w: diverged to NaN", ErrNoEquilibrium)
		}
	}
	return 0, 0, ErrNoEquilibrium
}
