package phaseplane

import (
	"errors"
	"math"
	"testing"
)

// sectionY0 builds a return map on the section y = 0 for a companion
// system x” + c1·x' + c0·x = 0.
func sectionY0(c1, c0, horizon float64) *ReturnMap {
	return &ReturnMap{
		Field:   Companion(c1, c0).Field(),
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: horizon,
	}
}

// TestReturnMapNeverCrosses drives a flow that leaves the section and
// never comes back: constant drift (1, 1) moves y monotonically up, so
// the rising crossing detected at the start can never recur.
func TestReturnMapNeverCrosses(t *testing.T) {
	m := &ReturnMap{
		Field:   func(x, y float64) (float64, float64) { return 1, 1 },
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: 50,
	}
	if _, _, err := m.Map(1); !errors.Is(err, ErrNoReturn) {
		t.Errorf("Map err = %v, want ErrNoReturn", err)
	}
	// The scan must propagate the failure instead of fabricating a root.
	if _, err := m.FixedPoint(0.5, 2, 4); !errors.Is(err, ErrNoReturn) {
		t.Errorf("FixedPoint err = %v, want ErrNoReturn", err)
	}
}

// TestReturnMapDegenerateNode uses repeated eigenvalues (c1² = 4·c0,
// the paper's Case 5 boundary): x(t) = (1+t)·e^{−t} from (1, 0) gives
// y(t) = −t·e^{−t}, which leaves the section and approaches it again
// from below without ever recrossing — no first return exists.
func TestReturnMapDegenerateNode(t *testing.T) {
	m := sectionY0(2, 1, 200)
	if _, _, err := m.Map(1); !errors.Is(err, ErrNoReturn) {
		t.Errorf("Map err = %v, want ErrNoReturn", err)
	}
}

// TestReturnMapZeroLengthTrajectory starts on the equilibrium itself:
// the flow is identically zero, the trajectory has zero length, and the
// map must fail with ErrNoReturn instead of reporting the start point as
// its own return.
func TestReturnMapZeroLengthTrajectory(t *testing.T) {
	m := sectionY0(1, 4, 20)
	if _, _, err := m.Map(0); !errors.Is(err, ErrNoReturn) {
		t.Errorf("Map(0) err = %v, want ErrNoReturn", err)
	}
}

// TestReturnMapIterateStopsOnFailure keeps the partial orbit when a
// return fails mid-iteration.
func TestReturnMapIterateStopsOnFailure(t *testing.T) {
	m := sectionY0(2, 1, 200)
	orbit, err := m.Iterate(1, 3)
	if !errors.Is(err, ErrNoReturn) {
		t.Fatalf("Iterate err = %v, want ErrNoReturn", err)
	}
	if len(orbit) != 1 || orbit[0] != 1 {
		t.Errorf("partial orbit = %v, want [1]", orbit)
	}
}

// TestReturnMapSpiralStillWorks pins the healthy path next to the edge
// cases: a stable focus two ticks away from the degenerate boundary
// contracts by exp(2π·α/β) per revolution.
func TestReturnMapSpiralStillWorks(t *testing.T) {
	m := sectionY0(1, 1, 100)
	next, period, err := m.Map(1)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	alpha, beta := -0.5, math.Sqrt(3)/2
	if want := math.Exp(2 * math.Pi * alpha / beta); math.Abs(next-want) > 1e-4 {
		t.Errorf("multiplier %v, want %v", next, want)
	}
	if want := 2 * math.Pi / beta; math.Abs(period-want) > 1e-4 {
		t.Errorf("period %v, want %v", period, want)
	}
}

// TestReturnMapRejectsInvalidODEOptions threads the new ode.Options
// validation through the map: poisoned tolerances must surface as a
// descriptive error, not integrate silently.
func TestReturnMapRejectsInvalidODEOptions(t *testing.T) {
	m := sectionY0(1, 4, 20)
	m.ODE.AbsTol = math.NaN()
	m.ODE.RelTol = 1e-9
	if _, _, err := m.Map(1); err == nil {
		t.Error("NaN AbsTol accepted")
	}
}
