package phaseplane

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestJacobianOfLinearField(t *testing.T) {
	sys := Linear2{A11: 1, A12: -2, A21: 3, A22: -4}
	j := Jacobian(sys.Field(), 0.7, -0.3, 0)
	if math.Abs(j.A11-1) > 1e-6 || math.Abs(j.A12+2) > 1e-6 ||
		math.Abs(j.A21-3) > 1e-6 || math.Abs(j.A22+4) > 1e-6 {
		t.Errorf("Jacobian = %+v, want the matrix itself", j)
	}
}

func TestClassifyAtNonlinear(t *testing.T) {
	// Van der Pol at the origin: Jacobian [[0,1],[-1,mu]] — an unstable
	// focus for 0 < mu < 2.
	if got := ClassifyAt(vanDerPol(1), 0, 0); got != KindUnstableFocus {
		t.Errorf("Van der Pol origin = %v, want unstable focus", got)
	}
	// Damped pendulum linearized at the bottom: stable focus.
	pend := func(x, y float64) (float64, float64) {
		return y, -math.Sin(x) - 0.5*y
	}
	if got := ClassifyAt(pend, 0, 0); got != KindStableFocus {
		t.Errorf("pendulum bottom = %v, want stable focus", got)
	}
	// At the top (x = pi): saddle.
	if got := ClassifyAt(pend, math.Pi, 0); got != KindSaddle {
		t.Errorf("pendulum top = %v, want saddle", got)
	}
}

func TestFindEquilibrium(t *testing.T) {
	// Pendulum: equilibria at multiples of pi.
	pend := func(x, y float64) (float64, float64) {
		return y, -math.Sin(x) - 0.5*y
	}
	x, y, err := FindEquilibrium(pend, 0.5, 0.2)
	if err != nil {
		t.Fatalf("FindEquilibrium: %v", err)
	}
	if math.Abs(x) > 1e-8 || math.Abs(y) > 1e-8 {
		t.Errorf("equilibrium at (%v, %v), want origin", x, y)
	}
	x, _, err = FindEquilibrium(pend, 3.0, 0.1)
	if err != nil {
		t.Fatalf("FindEquilibrium near pi: %v", err)
	}
	if math.Abs(x-math.Pi) > 1e-8 {
		t.Errorf("equilibrium at x=%v, want pi", x)
	}
}

func TestFindEquilibriumSingular(t *testing.T) {
	// A field with identically singular Jacobian: f = (0, 0) wait — use
	// f = (y², 0): Jacobian rows [0, 2y; 0 0], det 0 everywhere off a
	// root, and no isolated equilibrium for the Newton step to find.
	f := func(x, y float64) (float64, float64) { return 1 + y*y, 0 }
	if _, _, err := FindEquilibrium(f, 1, 1); !errors.Is(err, ErrNoEquilibrium) {
		t.Errorf("err = %v, want ErrNoEquilibrium", err)
	}
}

// TestQuickJacobianLinearExact: for random linear fields the numeric
// Jacobian recovers the matrix everywhere.
func TestQuickJacobianLinearExact(t *testing.T) {
	prop := func(a, b, c, d int8, px, py int8) bool {
		sys := Linear2{
			A11: float64(a) / 8, A12: float64(b) / 8,
			A21: float64(c) / 8, A22: float64(d) / 8,
		}
		j := Jacobian(sys.Field(), float64(px)/4, float64(py)/4, 0)
		tol := 1e-5
		return math.Abs(j.A11-sys.A11) < tol && math.Abs(j.A12-sys.A12) < tol &&
			math.Abs(j.A21-sys.A21) < tol && math.Abs(j.A22-sys.A22) < tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
