package phaseplane

import (
	"errors"
	"math"
	"testing"

	"bcnphase/internal/telemetry"
)

func TestReturnMapMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := sectionY0(1, 1, 100) // damped spiral: returns exist
	m.Metrics = NewMetrics(reg)
	_, period, err := m.Map(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics.Returns.Value() != 1 || m.Metrics.NoReturns.Value() != 0 {
		t.Fatalf("returns=%d no_returns=%d", m.Metrics.Returns.Value(), m.Metrics.NoReturns.Value())
	}
	if got := m.Metrics.FlightTime.Sum(); math.Abs(got-period) > 1e-12 {
		t.Fatalf("flight time sum = %v, want %v", got, period)
	}

	never := &ReturnMap{
		Field:   func(x, y float64) (float64, float64) { return 1, 1 },
		Sigma:   func(x, y float64) float64 { return y },
		Embed:   func(s float64) (float64, float64) { return s, 0 },
		Project: func(x, y float64) float64 { return x },
		Horizon: 50,
		Metrics: m.Metrics,
	}
	if _, _, err := never.Map(1); !errors.Is(err, ErrNoReturn) {
		t.Fatalf("err = %v, want ErrNoReturn", err)
	}
	if m.Metrics.NoReturns.Value() != 1 {
		t.Fatalf("no_returns = %d, want 1", m.Metrics.NoReturns.Value())
	}
}

func TestNewMetricsNil(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %v, want nil", m)
	}
}
