package phaseplane

import (
	"fmt"
	"math"

	"bcnphase/internal/ode"
)

// Path is a traced planar trajectory.
type Path struct {
	T, X, Y []float64
	// Crossings are located switching-surface crossings (for switched
	// systems) or custom event hits, in time order.
	Crossings []Crossing
	// Converged is true when tracing stopped because the state entered
	// the convergence ball around the target point.
	Converged bool
	// Escaped is true when tracing stopped because the state left the
	// bounding box.
	Escaped bool
}

// Crossing records one event/surface crossing along a path.
type Crossing struct {
	T, X, Y float64
	Name    string
}

// At linearly interpolates the path position at time t (clamped).
func (p *Path) At(t float64) (float64, float64) {
	n := len(p.T)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if t <= p.T[0] {
		return p.X[0], p.Y[0]
	}
	if t >= p.T[n-1] {
		return p.X[n-1], p.Y[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	w := (t - p.T[lo]) / (p.T[hi] - p.T[lo])
	return (1-w)*p.X[lo] + w*p.X[hi], (1-w)*p.Y[lo] + w*p.Y[hi]
}

// MaxX and MinX return the extreme x excursions of the path.
func (p *Path) MaxX() float64 { return extreme(p.X, math.Max, math.Inf(-1)) }

// MinX returns the minimum x along the path.
func (p *Path) MinX() float64 { return extreme(p.X, math.Min, math.Inf(1)) }

func extreme(v []float64, pick func(a, b float64) float64, id float64) float64 {
	out := id
	for _, x := range v {
		out = pick(out, x)
	}
	return out
}

// TraceOptions controls Trace.
type TraceOptions struct {
	// Horizon is the maximum integration time. Required (> 0).
	Horizon float64
	// ConvergeRadius stops tracing when hypot(x, y) falls below it.
	// Zero disables the check.
	ConvergeRadius float64
	// Box stops tracing when the state leaves [XMin,XMax]×[YMin,YMax].
	// A zero-valued box disables the check.
	Box Box
	// Sigma, when non-nil, is a switching function whose zero crossings
	// are recorded (non-terminally) in Path.Crossings.
	Sigma func(x, y float64) float64
	// ODE overrides the integrator tolerances; zero values use defaults.
	ODE ode.Options
}

// Box is an axis-aligned rectangle. The zero value is treated as "no box".
type Box struct {
	XMin, XMax, YMin, YMax float64
}

// Zero reports whether the box is the zero value (disabled).
func (b Box) Zero() bool { return b == Box{} }

// Contains reports whether (x, y) lies inside the closed box.
func (b Box) Contains(x, y float64) bool {
	return x >= b.XMin && x <= b.XMax && y >= b.YMin && y <= b.YMax
}

// Trace integrates the field from (x0, y0) with the adaptive RK45 driver,
// stopping at the horizon, on convergence to the origin-ball, or on escape
// from the box, whichever comes first.
func Trace(f VectorField, x0, y0 float64, opts TraceOptions) (*Path, error) {
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("phaseplane: horizon must be positive, got %v", opts.Horizon)
	}
	rhs := func(_ float64, y, dydt []float64) {
		dydt[0], dydt[1] = f(y[0], y[1])
	}
	o := opts.ODE
	if o.AbsTol == 0 && o.RelTol == 0 {
		o = ode.DefaultOptions()
	}
	o.Dense = true
	if opts.ConvergeRadius > 0 {
		r := opts.ConvergeRadius
		o.Events = append(o.Events, ode.Event{
			Name:     "converged",
			Terminal: true,
			G: func(_ float64, y []float64) float64 {
				return math.Hypot(y[0], y[1]) - r
			},
			Direction: -1,
		})
	}
	if !opts.Box.Zero() {
		b := opts.Box
		o.Events = append(o.Events, ode.Event{
			Name:     "escaped",
			Terminal: true,
			G: func(_ float64, y []float64) float64 {
				// Negative inside, positive outside: max of the
				// four signed face distances.
				d := b.XMin - y[0]
				d = math.Max(d, y[0]-b.XMax)
				d = math.Max(d, b.YMin-y[1])
				return math.Max(d, y[1]-b.YMax)
			},
			Direction: +1,
		})
	}
	if opts.Sigma != nil {
		s := opts.Sigma
		o.Events = append(o.Events, ode.Event{
			Name: "switch",
			G: func(_ float64, y []float64) float64 {
				return s(y[0], y[1])
			},
		})
	}
	sol, err := ode.DormandPrince(rhs, 0, []float64{x0, y0}, opts.Horizon, o)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	path := &Path{
		T: sol.T,
		X: sol.Component(0),
		Y: sol.Component(1),
	}
	for _, ev := range sol.Events {
		switch ev.Name {
		case "converged":
			path.Converged = true
		case "escaped":
			path.Escaped = true
		default:
			path.Crossings = append(path.Crossings, Crossing{
				T: ev.T, X: ev.Y[0], Y: ev.Y[1], Name: ev.Name,
			})
		}
	}
	return path, nil
}

// Switched combines two vector fields selected by the sign of sigma:
// fieldPos applies where sigma > 0, fieldNeg where sigma < 0. On the
// switching surface the mean of the two one-sided limits is used, which is
// exact for fields (like BCN's) that agree and vanish there.
func Switched(sigma func(x, y float64) float64, fieldPos, fieldNeg VectorField) VectorField {
	return func(x, y float64) (float64, float64) {
		s := sigma(x, y)
		switch {
		case s > 0:
			return fieldPos(x, y)
		case s < 0:
			return fieldNeg(x, y)
		default:
			u1, v1 := fieldPos(x, y)
			u2, v2 := fieldNeg(x, y)
			return 0.5 * (u1 + u2), 0.5 * (v1 + v2)
		}
	}
}
