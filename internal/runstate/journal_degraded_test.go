package runstate

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestJournalDegradedIsSticky injects a write failure (the file
// descriptor is closed out from under the journal, the same failure
// shape as ENOSPC or a yanked volume) and checks the journal enters the
// terminal storage-degraded state: the failing Record and every later
// one wrap ErrStorageDegraded, while Lookup keeps serving everything
// recorded before the failure.
func TestJournalDegradedIsSticky(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), JournalFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Record("k1", []byte(`{"ok":1}`)); err != nil {
		t.Fatal(err)
	}
	if deg, _ := j.Degraded(); deg {
		t.Fatal("healthy journal reports degraded")
	}

	// Inject the storage failure.
	j.mu.Lock()
	j.f.Close()
	j.mu.Unlock()

	err = j.Record("k2", []byte(`{"ok":2}`))
	if !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("failing Record returned %v, want ErrStorageDegraded", err)
	}
	// Sticky: the next Record fails fast the same way even though no new
	// I/O was attempted.
	if err := j.Record("k3", []byte(`{"ok":3}`)); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("post-failure Record returned %v, want ErrStorageDegraded", err)
	}
	if deg, cause := j.Degraded(); !deg || cause == nil {
		t.Fatalf("Degraded() = %v, %v", deg, cause)
	}
	// Reads still serve the pre-failure state.
	if v, ok := j.Lookup("k1"); !ok || string(v) != `{"ok":1}` {
		t.Fatalf("Lookup after degradation = %q, %v", v, ok)
	}
	// The failed record was not admitted to the in-memory map: a reader
	// must never see bytes that were not made durable.
	if _, ok := j.Lookup("k2"); ok {
		t.Fatal("non-durable record visible via Lookup")
	}
}
