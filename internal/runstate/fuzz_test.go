package runstate

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the journal replay path and
// asserts the durability contract: replay never panics, never fails on
// corrupt content, and never resurrects a record whose checksum does not
// hold — every surviving entry must be valid JSON that round-trips
// through the record checksum.
func FuzzJournalReplay(f *testing.F) {
	valid := func(key string, val string) []byte {
		line, _ := json.Marshal(record{Key: key, Val: []byte(val), CRC: recordCRC(key, []byte(val))})
		return append(line, '\n')
	}
	// Seed corpus: the interesting shapes from the unit tests.
	f.Add([]byte(""))
	f.Add(valid("k1", `{"v":1}`))
	f.Add(append(valid("k1", `1`), valid("k1", `2`)...))                      // duplicate keys
	f.Add(append(valid("ok", `"row"`), []byte(`{"key":"torn","va`)...))       // torn tail
	f.Add([]byte(`{"key":"k","val":1,"crc":999}` + "\n"))                     // checksum mismatch
	f.Add([]byte(`{"key":"","val":1,"crc":0}` + "\n"))                        // empty key
	f.Add([]byte(`{"key":"k","val":{broken,"crc":0}` + "\n"))                 // invalid JSON value
	f.Add([]byte(`not json at all` + "\n\n\n"))                               // garbage and blanks
	f.Add([]byte(`{"key":"k","val":1,"crc":0,"extra":true}` + "\n"))          // unknown field
	f.Add(append(bytes.Repeat([]byte("x"), 1<<10), valid("tail", `true`)...)) // long garbage prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, JournalFileName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path)
		if err != nil {
			// Only environmental I/O failures may surface; corrupt
			// content must be skipped, not fatal.
			t.Fatalf("replay failed on corrupt content: %v", err)
		}
		defer j.Close()
		j.mu.Lock()
		for key, val := range j.entries {
			if key == "" {
				t.Error("replay resurrected a record with an empty key")
			}
			if !json.Valid(val) {
				t.Errorf("replay resurrected non-JSON value %q", val)
			}
		}
		j.mu.Unlock()
		// The replayed journal must accept appends and survive a second
		// replay (the torn-tail terminator guarantees line integrity).
		if err := j.Record("fuzz-probe", []byte(`true`)); err != nil {
			t.Fatalf("record after replay: %v", err)
		}
		j.Close()
		j2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		defer j2.Close()
		if _, ok := j2.Lookup("fuzz-probe"); !ok {
			t.Error("appended record lost after corrupt-content replay")
		}
	})
}

// FuzzDecodeRecord fuzzes the single-line decoder directly: it must
// reject corruption with an error, never panic, and agree with the
// checksum on acceptance.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte(`{"key":"k","val":1,"crc":0}`))
	f.Add([]byte(`{"key":"k","val":[1,2,3],"crc":123456}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`"key"`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := decodeRecord(line)
		if err != nil {
			return
		}
		if rec.Key == "" || !json.Valid(rec.Val) || rec.CRC != recordCRC(rec.Key, rec.Val) {
			t.Errorf("decodeRecord accepted inconsistent record %+v from %q", rec, line)
		}
	})
}
