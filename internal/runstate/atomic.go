// Package runstate makes long experiment runs durable: an append-only
// JSONL run journal with torn-tail-tolerant replay (so completed sweep
// points survive a crash and are never re-paid on resume), atomic
// artifact writes (tmp file + fsync + rename, so a crash never leaves a
// truncated file a later run silently trusts), and cooperative signal
// trapping (so SIGINT/SIGTERM drain in-flight work, commit the journal
// and exit with a distinct "interrupted, resumable" status).
package runstate

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any instant
// leaves either the previous file content or the complete new content,
// never a truncated mix: the bytes go to a temporary file in the same
// directory, are fsynced, and the temp file is renamed over path. The
// enclosing directory is fsynced best-effort so the rename itself is
// durable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	af, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if _, err := af.Write(data); err != nil {
		af.Abort()
		return err
	}
	if err := af.f.Chmod(perm); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is a streaming writer with the same crash guarantee as
// WriteFileAtomic: bytes accumulate in a hidden temporary file and only
// an explicit Commit publishes them under the final name. Abort (safe to
// defer; a no-op after Commit) discards the temporary file.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// CreateAtomic opens a temporary file next to path for streaming
// writes. The parent directory must already exist — failing on a
// mistyped path beats silently growing a directory tree (callers that
// own the directory create it with EnsureWritableDir first).
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write appends to the pending temporary file.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.done {
		return 0, fmt.Errorf("runstate: write to committed/aborted atomic file %s", a.path)
	}
	return a.f.Write(p)
}

// Name returns the final destination path.
func (a *AtomicFile) Name() string { return a.path }

// Commit fsyncs and renames the temporary file to the final path.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("runstate: double commit of %s", a.path)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return fmt.Errorf("runstate: sync %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: close %s: %w", a.path, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("runstate: publish %s: %w", a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the pending bytes; it is idempotent and a no-op after
// Commit, so it is safe to defer unconditionally.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// syncDir makes a rename durable by fsyncing its directory; best-effort
// because some filesystems (and all of Windows) reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// EnsureWritableDir creates dir if needed and proves it is writable by
// creating and removing a probe file, so producers can fail fast before
// hours of computation rather than at the first artifact write.
func EnsureWritableDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("runstate: empty output directory")
	}
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return fmt.Errorf("runstate: output path %s exists and is not a directory", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runstate: create output directory: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".writable-probe-*")
	if err != nil {
		return fmt.Errorf("runstate: output directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	return nil
}
