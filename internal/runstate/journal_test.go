package runstate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Record("k1", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := j.Record("k2", []byte(`"row"`)); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 2 || j2.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 2/0", j2.Len(), j2.Dropped())
	}
	v, ok := j2.Lookup("k2")
	if !ok || string(v) != `"row"` {
		t.Errorf("Lookup(k2) = %q, %v", v, ok)
	}
	if _, ok := j2.Lookup("missing"); ok {
		t.Error("Lookup(missing) hit")
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Record("good", []byte(`42`)); err != nil {
		t.Fatalf("record: %v", err)
	}
	j.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","val":17,"cr`)
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 1 || j2.Dropped() != 1 {
		t.Errorf("len=%d dropped=%d, want 1/1", j2.Len(), j2.Dropped())
	}
	if _, ok := j2.Lookup("torn"); ok {
		t.Error("torn record resurrected")
	}
	// The journal stays appendable after a torn tail: OpenJournal
	// terminates the partial line, so a fresh record replays cleanly.
	if err := j2.Record("after", []byte(`true`)); err != nil {
		t.Fatalf("record after torn tail: %v", err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("third replay: %v", err)
	}
	defer j3.Close()
	if _, ok := j3.Lookup("after"); !ok {
		t.Error("record appended after torn tail lost on replay")
	}
	if _, ok := j3.Lookup("good"); !ok {
		t.Error("pre-crash record lost on replay")
	}
}

func TestJournalChecksumMismatchDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	line, _ := json.Marshal(record{Key: "k", Val: []byte(`1`), CRC: 12345})
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()
	if j.Len() != 0 || j.Dropped() != 1 {
		t.Errorf("len=%d dropped=%d, want 0/1", j.Len(), j.Dropped())
	}
}

func TestJournalDuplicateKeyLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j.Record("k", []byte(`1`))
	j.Record("k", []byte(`2`))
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if v, _ := j2.Lookup("k"); string(v) != `2` {
		t.Errorf("duplicate key value = %q, want 2 (last wins)", v)
	}
	if j2.Len() != 1 {
		t.Errorf("len = %d, want 1", j2.Len())
	}
}

func TestJournalRejectsBadRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()
	if err := j.Record("", []byte(`1`)); err == nil {
		t.Error("empty key accepted")
	}
	if err := j.Record("k", []byte(`{broken`)); err == nil {
		t.Error("non-JSON value accepted")
	}
}

func TestJournalRecordAfterClose(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), JournalFileName))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j.Record("k", []byte(`1`))
	j.Close()
	if err := j.Record("k2", []byte(`2`)); err == nil {
		t.Error("record after close accepted")
	}
	if _, ok := j.Lookup("k"); !ok {
		t.Error("lookup broken after close")
	}
}

func TestJournalConcurrentRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key, _ := HashJSON(i)
			if err := j.Record(key, []byte(`"v"`)); err != nil {
				t.Errorf("record %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 16 || j2.Dropped() != 0 {
		t.Errorf("len=%d dropped=%d, want 16/0", j2.Len(), j2.Dropped())
	}
}

// TestJournalManyConcurrentWriters hammers one journal with sustained
// concurrent appends — distinct keys, contended shared keys, and
// readers racing the writers — then proves the file replays without a
// single dropped record and byte-for-byte equal to the in-memory state.
// This is the durability contract the serving layer leans on when
// several HTTP workers Record through one journal.
func TestJournalManyConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	const writers = 8
	const perWriter = 40
	const sharedKeys = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key, _ := HashJSON(struct{ W, I int }{w, i})
				val := []byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))
				if err := j.Record(key, val); err != nil {
					t.Errorf("writer %d record %d: %v", w, i, err)
					return
				}
				// Contended key: every writer also rewrites a shared slot,
				// so replay order and last-wins semantics are exercised.
				skey, _ := HashJSON(struct{ Shared int }{i % sharedKeys})
				if err := j.Record(skey, val); err != nil {
					t.Errorf("writer %d shared %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// Readers race the writers; every observed value must be valid JSON
	// (never a torn or partially-copied buffer).
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			probe, _ := HashJSON(struct{ Shared int }{0})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := j.Lookup(probe); ok && !json.Valid(v) {
					t.Error("reader observed invalid JSON mid-write")
					return
				}
				_ = j.Len()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	wantLen := writers*perWriter + sharedKeys
	if j.Len() != wantLen {
		t.Errorf("in-memory len=%d, want %d", j.Len(), wantLen)
	}
	// Snapshot the in-memory state, then prove replay reproduces it
	// exactly: same keys, same bytes, zero dropped lines.
	mem := map[string][]byte{}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key, _ := HashJSON(struct{ W, I int }{w, i})
			v, ok := j.Lookup(key)
			if !ok {
				t.Fatalf("writer %d record %d missing before close", w, i)
			}
			mem[key] = v
		}
	}
	for s := 0; s < sharedKeys; s++ {
		key, _ := HashJSON(struct{ Shared int }{s})
		v, ok := j.Lookup(key)
		if !ok {
			t.Fatalf("shared key %d missing before close", s)
		}
		mem[key] = v
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if j2.Dropped() != 0 {
		t.Errorf("replay dropped %d records written under contention", j2.Dropped())
	}
	if j2.Len() != wantLen {
		t.Errorf("replayed len=%d, want %d", j2.Len(), wantLen)
	}
	for key, want := range mem {
		got, ok := j2.Lookup(key)
		if !ok {
			t.Errorf("key %s lost across reopen", key)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("key %s replayed %s, in-memory had %s", key, got, want)
		}
	}
}

func TestHashJSONStableAndSensitive(t *testing.T) {
	type pt struct{ Gi, Gd float64 }
	a1, err := HashJSON(pt{1, 2})
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	a2, _ := HashJSON(pt{1, 2})
	b, _ := HashJSON(pt{1, 3})
	if a1 != a2 {
		t.Error("identical inputs hash differently")
	}
	if a1 == b {
		t.Error("different inputs collide")
	}
	if len(a1) != 64 || strings.ToLower(a1) != a1 {
		t.Errorf("hash %q is not lowercase hex sha-256", a1)
	}
	if _, err := HashJSON(func() {}); err == nil {
		t.Error("unmarshalable value accepted")
	}
}
