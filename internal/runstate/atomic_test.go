package runstate

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileAtomic(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("content = %q", data)
	}
	// Overwrite replaces wholesale.
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "new" {
		t.Errorf("after overwrite = %q", data)
	}
	// No stray temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp leak?)", len(entries))
	}
}

func TestAtomicFileAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.svg")
	af, err := CreateAtomic(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if af.Name() != path {
		t.Errorf("Name = %q", af.Name())
	}
	af.Write([]byte("half an svg"))
	af.Abort()
	af.Abort() // idempotent
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("aborted artifact published")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("abort left %d files", len(entries))
	}
	if _, err := af.Write([]byte("late")); err == nil {
		t.Error("write after abort accepted")
	}
}

func TestAtomicFileCommitThenAbortNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.txt")
	af, err := CreateAtomic(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	af.Write([]byte("done"))
	if err := af.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	af.Abort() // must not delete the published file
	if err := af.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "done" {
		t.Errorf("published content = %q, %v", data, err)
	}
}

func TestWriteFileAtomicMissingParentRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "deep", "f.txt")
	if err := WriteFileAtomic(path, []byte("x"), 0o644); err == nil {
		t.Error("write under a missing parent directory accepted")
	}
}

func TestEnsureWritableDir(t *testing.T) {
	dir := t.TempDir()
	if err := EnsureWritableDir(filepath.Join(dir, "new")); err != nil {
		t.Errorf("fresh dir: %v", err)
	}
	if err := EnsureWritableDir(dir); err != nil {
		t.Errorf("existing dir: %v", err)
	}
	if err := EnsureWritableDir(""); err == nil {
		t.Error("empty path accepted")
	}
	file := filepath.Join(dir, "plain")
	os.WriteFile(file, []byte("x"), 0o644)
	if err := EnsureWritableDir(file); err == nil {
		t.Error("plain file accepted as directory")
	}
	if os.Getuid() != 0 { // root ignores permission bits
		ro := filepath.Join(dir, "ro")
		os.Mkdir(ro, 0o555)
		if err := EnsureWritableDir(ro); err == nil {
			t.Error("read-only dir accepted")
		}
	}
}

func TestInterruptedClassifier(t *testing.T) {
	if !Interrupted(ErrInterrupted) || !Interrupted(context.Canceled) {
		t.Error("sentinel/cancellation not classified as interruption")
	}
	if Interrupted(os.ErrNotExist) {
		t.Error("ordinary error classified as interruption")
	}
}

func TestTrapSignalsStopReleases(t *testing.T) {
	ctx, stop, fired := TrapSignals(context.Background())
	if fired() {
		t.Error("fired before any signal")
	}
	stop()
	stop() // idempotent
	select {
	case <-ctx.Done():
	default:
		t.Error("stop did not cancel the context")
	}
	if fired() {
		t.Error("stop counted as a signal")
	}
}

func TestJournalFileNameStable(t *testing.T) {
	if !strings.HasSuffix(JournalFileName, ".jsonl") {
		t.Errorf("journal file name %q", JournalFileName)
	}
}
