package runstate

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// ErrInterrupted marks a run cut short by SIGINT/SIGTERM (or a cancelled
// context) whose completed work is journaled and resumable. Commands map
// it to ExitInterrupted so scripts can distinguish "re-run me with
// -resume" from a real failure.
var ErrInterrupted = errors.New("interrupted, resumable")

// ExitInterrupted is the process exit status for a gracefully
// interrupted, resumable run (130 = 128+SIGINT by shell convention,
// distinct from the generic failure status 1).
const ExitInterrupted = 130

// Interrupted reports whether err is (or wraps) an interruption: the
// graceful-shutdown sentinel or a context cancellation/deadline.
func Interrupted(err error) bool {
	return errors.Is(err, ErrInterrupted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TrapSignals returns a child context cancelled on the first SIGINT or
// SIGTERM, so in-flight work drains cooperatively and journals commit. A
// second signal force-exits with ExitInterrupted for operators who need
// out now. stop releases the handlers; fired reports whether a signal
// arrived.
func TrapSignals(parent context.Context) (ctx context.Context, stop func(), fired func() bool) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	released := make(chan struct{})
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	var hit atomic.Bool
	go func() {
		select {
		case <-ch:
			hit.Store(true)
			cancel()
		case <-released:
			return
		}
		select {
		case <-ch: // a second signal skips the graceful drain
			os.Exit(ExitInterrupted)
		case <-released:
		}
	}()
	var once atomic.Bool
	stop = func() {
		if once.CompareAndSwap(false, true) {
			signal.Stop(ch)
			close(released)
		}
		cancel()
	}
	return ctx, stop, hit.Load
}
