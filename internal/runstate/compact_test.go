package runstate

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	var lines []string
	for _, l := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestJournalCompact rewrites a journal holding superseded lines down
// to one line per live key and proves the compacted file replays to the
// same state, stays appendable, and survives a reopen.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// k1 superseded twice, k2 once: 5 appended lines, 2 live keys.
	for _, rec := range [][2]string{
		{"k1", `"v1"`}, {"k1", `"v2"`}, {"k1", `"v3"`},
		{"k2", `"w1"`}, {"k2", `"w2"`},
	} {
		if err := j.Record(rec[0], []byte(rec[1])); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(journalLines(t, path)); got != 5 {
		t.Fatalf("pre-compaction lines = %d, want 5", got)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := len(journalLines(t, path)); got != 2 {
		t.Fatalf("post-compaction lines = %d, want 2", got)
	}
	if v, ok := j.Lookup("k1"); !ok || string(v) != `"v3"` {
		t.Fatalf("k1 after compact = %q, %v", v, ok)
	}
	// Appends keep working against the swapped file.
	if err := j.Record("k3", []byte(`not json`)); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if err := j.Record("k3", []byte(`"x1"`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 || j2.Dropped() != 0 {
		t.Fatalf("reopened journal: len=%d dropped=%d, want 3/0", j2.Len(), j2.Dropped())
	}
	for key, want := range map[string]string{"k1": `"v3"`, "k2": `"w2"`, "k3": `"x1"`} {
		if v, ok := j2.Lookup(key); !ok || string(v) != want {
			t.Fatalf("%s = %q, %v; want %s", key, v, ok, want)
		}
	}
}

// TestJournalCompactTornRecovery simulates a crash mid-compaction: the
// temporary rewrite exists (torn or complete) but was never renamed.
// Reopening must serve the untouched original and discard the leftover.
func TestJournalCompactTornRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		tmp  []byte
	}{
		{"garbage", []byte("{torn line that never finished")},
		{"valid-prefix", []byte(`{"key":"k1","val":"\"v1\"","crc":0}` + "\npartial")},
		{"empty", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), JournalFileName)
			j, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if err := j.Record(fmt.Sprintf("k%d", i), []byte(`"v"`)); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			tmp := path + compactSuffix
			if err := os.WriteFile(tmp, tc.tmp, 0o644); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if j2.Len() != 4 || j2.Dropped() != 0 {
				t.Fatalf("after torn compaction: len=%d dropped=%d, want 4/0", j2.Len(), j2.Dropped())
			}
			if _, err := os.Stat(tmp); !os.IsNotExist(err) {
				t.Fatalf("stale compaction file survived reopen: %v", err)
			}
			// And a fresh compaction completes normally afterwards.
			if err := j2.Compact(); err != nil {
				t.Fatal(err)
			}
			if got := len(journalLines(t, path)); got != 4 {
				t.Fatalf("lines after recovery compaction = %d, want 4", got)
			}
		})
	}
}

// TestJournalCompactPreservesBytes proves compaction is value-faithful:
// the live values before and after are byte-identical.
func TestJournalCompactPreservesBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	want := map[string][]byte{}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("point-%02d", i)
		val := []byte(fmt.Sprintf(`{"csv":"row %d","n":%d}`, i, i*i))
		if err := j.Record(key, val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	for key, val := range want {
		got, ok := j.Lookup(key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("%s = %q after compaction, want %q", key, got, val)
		}
	}
	if err := j.Compact(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := len(journalLines(t, path)); got != len(want) {
		t.Fatalf("lines = %d, want %d", got, len(want))
	}
}

// TestJournalCompactClosed: a closed journal refuses to compact.
func TestJournalCompactClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), JournalFileName)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err == nil {
		t.Fatal("Compact on a closed journal succeeded")
	}
}
