package runstate

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrStorageDegraded marks a journal whose backing file failed a write
// or fsync (ENOSPC, EIO, a yanked volume). The condition is terminal
// for the journal: once an append cannot be made durable, later appends
// cannot be trusted either — a later fsync succeeding says nothing
// about the earlier lost line — so every subsequent Record fails fast
// wrapping this sentinel. Lookup keeps serving the replayed and
// successfully-recorded state. Callers (the serving tier's brownout
// ladder) detect it with errors.Is and fall back to volatile caching.
var ErrStorageDegraded = errors.New("runstate: journal storage degraded")

// JournalFileName is the journal's file name inside a run directory.
const JournalFileName = "journal.jsonl"

// compactSuffix names the temporary file a compaction writes before
// atomically renaming it over the journal. A crash mid-compaction
// leaves the suffixed file behind; OpenJournal removes it, so a torn
// compaction costs nothing but the rewrite — the original journal was
// never touched.
const compactSuffix = ".compact"

// record is one journal line. Val must be valid JSON; CRC is the IEEE
// CRC-32 of key||val so a torn or bit-rotted line is detected on replay
// instead of being resurrected as a (corrupt) cached result.
type record struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
	CRC uint32          `json:"crc"`
}

func recordCRC(key string, val []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(key))
	h.Write(val)
	return h.Sum32()
}

// decodeRecord parses one journal line, rejecting anything that is not a
// structurally valid, checksum-consistent record. It never panics on
// arbitrary input (fuzzed in fuzz_test.go).
func decodeRecord(line []byte) (record, error) {
	var rec record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return record{}, fmt.Errorf("runstate: bad journal record: %w", err)
	}
	if dec.More() {
		return record{}, fmt.Errorf("runstate: trailing data after journal record")
	}
	if rec.Key == "" {
		return record{}, fmt.Errorf("runstate: journal record without key")
	}
	if !json.Valid(rec.Val) {
		return record{}, fmt.Errorf("runstate: journal record value is not valid JSON")
	}
	if rec.CRC != recordCRC(rec.Key, rec.Val) {
		return record{}, fmt.Errorf("runstate: journal record checksum mismatch")
	}
	return rec, nil
}

// Journal is an append-only JSONL write-ahead log of completed sweep
// points: one record per completed point, keyed by a content hash of the
// point's identity (experiment id, params, seed, config fingerprint).
// Opening an existing journal replays it; a torn tail — the partial last
// line a crash mid-append leaves behind — is tolerated and dropped, as
// is any line whose checksum does not match. Later records for the same
// key supersede earlier ones.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	entries  map[string]json.RawMessage
	dropped  int
	path     string
	degraded error // first write/sync failure; sticky (see ErrStorageDegraded)
}

// OpenJournal opens (creating if absent) the journal at path and replays
// its records. Replay never fails on corrupt content — invalid lines are
// counted in Dropped() and skipped — only on I/O errors.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	// A crash between writing a compaction file and renaming it leaves
	// the temporary behind. The journal proper is intact (compaction
	// never modifies it in place), so the right recovery is to discard
	// the torn rewrite and replay the original.
	_ = os.Remove(path + compactSuffix)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: open journal: %w", err)
	}
	j := &Journal{f: f, entries: make(map[string]json.RawMessage), path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := decodeRecord(line)
		if err != nil {
			j.dropped++
			continue
		}
		j.entries[rec.Key] = append(json.RawMessage(nil), rec.Val...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstate: replay journal: %w", err)
	}
	// A crash mid-append can leave the file without a trailing newline;
	// terminate the torn line now so the next Record starts fresh instead
	// of concatenating onto (and losing itself to) the corrupt tail.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], info.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("runstate: terminate torn journal tail: %w", err)
			}
		}
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Lookup returns the journaled value for key, if any.
func (j *Journal) Lookup(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.entries[key]
	return v, ok
}

// Record appends one completed-point record and fsyncs it, so a point's
// work is durable the moment Record returns. val must be valid JSON.
func (j *Journal) Record(key string, val []byte) error {
	if key == "" {
		return fmt.Errorf("runstate: empty journal key")
	}
	if !json.Valid(val) {
		return fmt.Errorf("runstate: journal value for %s is not valid JSON", key)
	}
	line, err := json.Marshal(record{Key: key, Val: val, CRC: recordCRC(key, val)})
	if err != nil {
		return fmt.Errorf("runstate: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstate: journal %s is closed", j.path)
	}
	if j.degraded != nil {
		return fmt.Errorf("%w: %s", ErrStorageDegraded, j.degraded)
	}
	if _, err := j.f.Write(line); err != nil {
		j.degraded = err
		return fmt.Errorf("%w: append: %s", ErrStorageDegraded, err)
	}
	if err := j.f.Sync(); err != nil {
		// The line may or may not have reached the platter; either way
		// durability can no longer be promised for it or anything after.
		j.degraded = err
		return fmt.Errorf("%w: sync: %s", ErrStorageDegraded, err)
	}
	j.entries[key] = append(json.RawMessage(nil), val...)
	return nil
}

// Compact rewrites the journal to exactly one line per live key,
// dropping superseded and corrupt lines. The rewrite goes to a
// temporary file in the same directory, is fsynced, re-read and
// CRC-verified line by line, and only then atomically renamed over the
// journal — a crash at any point leaves either the old file or the new
// one, never a mix. Appends block for the duration and resume against
// the compacted file. Call it at natural quiesce points (a sweep just
// completed) to keep replay time and snapshot transfers bounded by the
// live state rather than by append history.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstate: journal %s is closed", j.path)
	}
	if j.degraded != nil {
		return fmt.Errorf("%w: %s", ErrStorageDegraded, j.degraded)
	}
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tmp := j.path + compactSuffix
	fail := func(f *os.File, err error) error {
		if f != nil {
			f.Close()
		}
		os.Remove(tmp)
		return fmt.Errorf("runstate: compact journal: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail(nil, err)
	}
	w := bufio.NewWriter(f)
	for _, k := range keys {
		line, err := json.Marshal(record{Key: k, Val: j.entries[k], CRC: recordCRC(k, j.entries[k])})
		if err != nil {
			return fail(f, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fail(f, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(f, err)
	}
	if err := f.Sync(); err != nil {
		return fail(f, err)
	}
	if err := f.Close(); err != nil {
		return fail(nil, err)
	}
	// Verify the bytes the filesystem will actually serve before they
	// replace a journal known to be good: every line must decode with a
	// matching checksum and the live-key count must balance.
	if err := verifyCompacted(tmp, j.entries); err != nil {
		return fail(nil, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fail(nil, err)
	}
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but no append handle reaches it;
		// durability for future records cannot be promised.
		j.degraded = err
		return fmt.Errorf("%w: reopen after compact: %s", ErrStorageDegraded, err)
	}
	j.f.Close()
	j.f = nf
	j.dropped = 0
	syncDir(filepath.Dir(j.path))
	return nil
}

// verifyCompacted replays a freshly written compaction file and
// requires it to reproduce exactly the live entries it was built from.
func verifyCompacted(path string, want map[string]json.RawMessage) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := decodeRecord(line)
		if err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		have, ok := want[rec.Key]
		if !ok || !bytes.Equal(have, rec.Val) {
			return fmt.Errorf("verification: key %s does not match live state", rec.Key)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("verification: %w", err)
	}
	if n != len(want) {
		return fmt.Errorf("verification: %d lines for %d live keys", n, len(want))
	}
	return nil
}

// Degraded reports whether a write or fsync has failed, making the
// journal terminally non-durable, along with the first failure.
func (j *Journal) Degraded() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded != nil, j.degraded
}

// Keys lists the distinct journaled keys in unspecified order. Replay
// tooling (the cluster coordinator's orphan-shard and stale-fingerprint
// scans) uses it to audit what a journal holds beyond the keys it was
// about to ask for.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.entries))
	for k := range j.entries {
		out = append(out, k)
	}
	return out
}

// Len is the number of distinct journaled keys.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Dropped is the number of corrupt or torn lines skipped during replay.
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Close flushes and closes the journal file. Lookup keeps working on the
// replayed state; Record fails after Close.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("runstate: close journal: %w", err)
	}
	return nil
}

// HashJSON is the journal's content-hash key function: the hex SHA-256
// of the canonical JSON encoding of v (struct field order and sorted map
// keys make encoding/json canonical enough for identical inputs). Use it
// to key sweep points by (experiment id, point params, seed, config
// fingerprint) so any change to the run's identity invalidates the
// cached results.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstate: hash: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// HashChain folds an ordered sequence of strings into one hex SHA-256
// digest. Every part is length-prefixed before hashing, so ("ab", "c")
// and ("a", "bc") cannot collide. The cluster layer chains per-row
// content hashes into a shard-level digest with it; any ordered
// composition of already-hashed parts belongs here rather than in ad-hoc
// concatenation.
func HashChain(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
