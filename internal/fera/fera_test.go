package fera

import (
	"math"
	"testing"
	"testing/quick"

	"bcnphase/internal/bcn"
)

func validCPConfig() CPConfig {
	return CPConfig{
		CPID: 1, SA: bcn.MAC{2, 0, 0, 0, 0, 1},
		Capacity: 1e9, Pm: 1,
	}
}

func TestCPConfigValidate(t *testing.T) {
	good := validCPConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	muts := []func(*CPConfig){
		func(c *CPConfig) { c.CPID = 0 },
		func(c *CPConfig) { c.Capacity = 0 },
		func(c *CPConfig) { c.TargetUtilization = 1.5 },
		func(c *CPConfig) { c.IntervalBits = -1 },
		func(c *CPConfig) { c.Pm = 0 },
		func(c *CPConfig) { c.Pm = 2 },
	}
	for i, mut := range muts {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAdvertisedFairShare(t *testing.T) {
	cfg := validCPConfig()
	cfg.IntervalBits = 1e5
	cp, err := NewCongestionPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct sources fill one measurement window.
	srcs := []bcn.MAC{{1}, {2}, {3}}
	for i := 0; i < 12; i++ {
		cp.OnArrival(bcn.Arrival{SizeBits: 1e4, Src: srcs[i%3]})
	}
	want := 1e9 * DefaultTargetUtilization / 3
	if got := cp.Advertised(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("advertised = %v, want fair share %v", got, want)
	}
	samples, pos, neg := cp.Stats()
	if samples == 0 || pos == 0 {
		t.Error("no advertisements sent at pm=1")
	}
	if neg != 0 {
		t.Error("FERA must not send negative messages")
	}
	if cp.Severe() {
		t.Error("FERA CP should not report severe")
	}
}

func TestOverloadZMeasured(t *testing.T) {
	cfg := validCPConfig()
	cfg.IntervalBits = 1e5
	cp, err := NewCongestionPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals twice the departures: z ≈ 2 after a window (the last
	// arrival closes the window before its departure is counted, so
	// the estimate is slightly above 2).
	for i := 0; i < 10; i++ {
		cp.OnArrival(bcn.Arrival{SizeBits: 1e4, Src: bcn.MAC{1}})
		cp.OnDeparture(5e3)
	}
	if z := cp.OverloadZ(); z < 1.8 || z > 2.3 {
		t.Errorf("overload z = %v, want ~2", z)
	}
}

func TestCongestionPointMessageFields(t *testing.T) {
	cfg := validCPConfig()
	cp, err := NewCongestionPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := bcn.MAC{9}
	m := cp.OnArrival(bcn.Arrival{SizeBits: 1e4, Src: src})
	if m == nil {
		t.Fatal("no message at pm=1")
	}
	if m.DA != src || m.CPID != cfg.CPID || m.Sigma <= 0 {
		t.Errorf("message fields wrong: %+v", m)
	}
}

func TestQueueTracking(t *testing.T) {
	cp, err := NewCongestionPoint(validCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cp.OnArrival(bcn.Arrival{SizeBits: 7000, Src: bcn.MAC{1}})
	if cp.QueueBits() != 7000 {
		t.Errorf("queue = %v", cp.QueueBits())
	}
	cp.OnDeparture(1e9)
	if cp.QueueBits() != 0 {
		t.Errorf("queue = %v, want clamped 0", cp.QueueBits())
	}
}

func TestRateRegulatorObeys(t *testing.T) {
	rp, err := NewRateRegulator(1e6, 1e9, 5e8)
	if err != nil {
		t.Fatal(err)
	}
	rp.OnMessage(&bcn.Message{CPID: 3, Sigma: 2.5e8}, 0)
	if rp.Rate(0) != 2.5e8 {
		t.Errorf("rate = %v, want the advertisement", rp.Rate(0))
	}
	if rp.Tag() != 3 {
		t.Errorf("tag = %v", rp.Tag())
	}
	if rp.Updates() != 1 {
		t.Errorf("updates = %v", rp.Updates())
	}
	// Advertisements clamp to the regulator bounds.
	rp.OnMessage(&bcn.Message{Sigma: 1e12}, 0)
	if rp.Rate(0) != 1e9 {
		t.Errorf("rate = %v, want clamped to max", rp.Rate(0))
	}
	rp.OnMessage(&bcn.Message{Sigma: 1}, 0)
	if rp.Rate(0) != 1e6 {
		t.Errorf("rate = %v, want clamped to min", rp.Rate(0))
	}
	// Non-positive sigma ignored.
	before := rp.Rate(0)
	rp.OnMessage(&bcn.Message{Sigma: -5}, 0)
	if rp.Rate(0) != before {
		t.Error("negative sigma changed the rate")
	}
	if _, err := NewRateRegulator(0, 1e9, 1e8); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewRateRegulator(1e6, 1e9, 1); err == nil {
		t.Error("initial rate below min accepted")
	}
}

func TestE2CMCongestionPointHybrid(t *testing.T) {
	cfg := bcn.CPConfig{
		CPID: 1, SA: bcn.MAC{2}, Q0: 1e5, W: 2, Pm: 1,
	}
	cp, err := NewE2CMCongestionPoint(cfg, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	src := bcn.MAC{7}
	// Overload: negative message passes through as BCN σ.
	m := cp.OnArrival(bcn.Arrival{SizeBits: 5e5, Src: src})
	if m == nil || m.Sigma >= 0 {
		t.Fatalf("expected negative message, got %+v", m)
	}
	// Drain below q0 with a matching RRT: the positive message carries
	// the advertisement (a rate, not a σ).
	cp.OnDeparture(4.5e5)
	m = cp.OnArrival(bcn.Arrival{SizeBits: 100, Src: src, RRT: cfg.CPID})
	if m == nil || m.Sigma <= 0 {
		t.Fatalf("expected positive advertisement, got %+v", m)
	}
	// The advertisement is a plausible rate (target capacity / flows).
	if m.Sigma > 1e9 {
		t.Errorf("advertisement %v above capacity", m.Sigma)
	}
	if cp.QueueBits() <= 0 {
		t.Error("queue tracking lost")
	}
	if _, err := NewE2CMCongestionPoint(cfg, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewE2CMCongestionPoint(bcn.CPConfig{}, 1e9); err == nil {
		t.Error("invalid BCN config accepted")
	}
}

func TestE2CMRegulator(t *testing.T) {
	rp, err := NewE2CMRegulator(1.0/128, 1e6, 1e9, 8e8)
	if err != nil {
		t.Fatal(err)
	}
	// Negative: BCN-style decrease on quantized units.
	rp.OnMessage(&bcn.Message{CPID: 2, Sigma: -10 * bcn.FBUnit}, 0)
	want := 8e8 * (1 - 10.0/128)
	if got := rp.Rate(0); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("decrease: rate = %v, want %v", got, want)
	}
	// Positive: half-way toward the advertisement.
	before := rp.Rate(0)
	rp.OnMessage(&bcn.Message{CPID: 2, Sigma: 4e8}, 0)
	want = 0.5 * (before + 4e8)
	if got := rp.Rate(0); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("advance: rate = %v, want %v", got, want)
	}
	dec, adv := rp.Stats()
	if dec != 1 || adv != 1 {
		t.Errorf("stats = %d, %d", dec, adv)
	}
	if rp.Tag() != 2 {
		t.Errorf("tag = %v", rp.Tag())
	}
	// Zero sigma ignored.
	before = rp.Rate(0)
	rp.OnMessage(&bcn.Message{Sigma: 0}, 0)
	if rp.Rate(0) != before {
		t.Error("zero sigma changed the rate")
	}
	// Constructor validation.
	if _, err := NewE2CMRegulator(1, 1e6, 1e9, 1e8); err == nil {
		t.Error("gd too large accepted")
	}
	if _, err := NewE2CMRegulator(1.0/128, 1e9, 1e6, 1e8); err == nil {
		t.Error("reversed bounds accepted")
	}
	if _, err := NewE2CMRegulator(1.0/128, 1e6, 1e9, 1); err == nil {
		t.Error("initial below min accepted")
	}
}

// TestQuickRegulatorsBounded: both regulators stay within bounds for
// arbitrary message sequences.
func TestQuickRegulatorsBounded(t *testing.T) {
	prop := func(sigmas []int32, e2cm bool) bool {
		var rate func(float64) float64
		var apply func(*bcn.Message)
		if e2cm {
			rp, err := NewE2CMRegulator(1.0/128, 1e6, 1e9, 5e8)
			if err != nil {
				return false
			}
			rate = rp.Rate
			apply = func(m *bcn.Message) { rp.OnMessage(m, 0) }
		} else {
			rp, err := NewRateRegulator(1e6, 1e9, 5e8)
			if err != nil {
				return false
			}
			rate = rp.Rate
			apply = func(m *bcn.Message) { rp.OnMessage(m, 0) }
		}
		for _, s := range sigmas {
			apply(&bcn.Message{Sigma: float64(s) * 1e3})
			r := rate(0)
			if r < 1e6 || r > 1e9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
