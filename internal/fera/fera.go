// Package fera implements the Forward Explicit Rate Advertising proposal
// of Jain et al. ("An Explicit Rate Control Framework for Lossless
// Ethernet Operation", ICC 2008) — the third 802.1Qau candidate the paper
// surveys, a descendant of the ERICA algorithm for ATM ABR. Instead of
// feeding queue state back for the sources to integrate, the switch
// *computes* each flow's allowed rate and advertises it explicitly; the
// sources simply obey.
//
// The implementation keeps ERICA's measurement structure but simplifies
// the advertisement to the per-window fair share C·target/N (the CCR/z
// refinement needs per-flow current rates, which the simplified message
// format does not carry; the simplification is documented in DESIGN.md).
// The package also provides the E2CM hybrid (Gusat et al., IBM Zurich):
// BCN-style multiplicative decrease on negative feedback plus
// advertised-rate approach on positive feedback — the fourth proposal.
package fera

import (
	"fmt"
	"math"

	"bcnphase/internal/bcn"
)

// DefaultTargetUtilization is the ERICA capacity target (advertised rates
// sum to this fraction of the link so the queue drains).
const DefaultTargetUtilization = 0.95

// CPConfig configures a FERA congestion point.
type CPConfig struct {
	// CPID identifies the congestion point.
	CPID bcn.CPID
	// SA is the switch interface address for messages.
	SA bcn.MAC
	// Capacity is the outgoing link rate in bits/s.
	Capacity float64
	// TargetUtilization is the ERICA target (default 0.95).
	TargetUtilization float64
	// IntervalBits is the measurement window length in arrived bits;
	// the advertisement is recomputed once per window (default C/1000,
	// ≈1 ms of traffic at full load).
	IntervalBits float64
	// Pm is the per-frame advertisement probability: each sampled frame
	// triggers an explicit-rate message to its source.
	Pm float64
}

// Validate checks the configuration.
func (c CPConfig) Validate() error {
	if c.CPID == 0 {
		return fmt.Errorf("fera: CPID must be nonzero")
	}
	if !(c.Capacity > 0) {
		return fmt.Errorf("fera: Capacity=%v must be positive", c.Capacity)
	}
	if c.TargetUtilization != 0 && (c.TargetUtilization <= 0 || c.TargetUtilization > 1) {
		return fmt.Errorf("fera: TargetUtilization=%v must be in (0, 1]", c.TargetUtilization)
	}
	if c.IntervalBits < 0 {
		return fmt.Errorf("fera: IntervalBits=%v must be non-negative", c.IntervalBits)
	}
	if !(c.Pm > 0) || c.Pm > 1 {
		return fmt.Errorf("fera: Pm=%v must be in (0, 1]", c.Pm)
	}
	return nil
}

// advertiser holds the shared ERICA measurement-window state.
type advertiser struct {
	capacityTarget float64
	intervalBits   float64

	windowArrived  float64
	windowDeparted float64
	activeInWin    map[bcn.MAC]struct{}

	advert      float64 // advertised fair share, bits/s
	overloadZ   float64 // arrivals/departures over the last window
	activeFlows int
}

func newAdvertiser(capacityTarget, intervalBits float64) *advertiser {
	return &advertiser{
		capacityTarget: capacityTarget,
		intervalBits:   intervalBits,
		activeInWin:    make(map[bcn.MAC]struct{}),
		advert:         capacityTarget,
		overloadZ:      1,
		activeFlows:    1,
	}
}

func (ad *advertiser) onArrival(src bcn.MAC, bits float64) {
	ad.windowArrived += bits
	ad.activeInWin[src] = struct{}{}
	if ad.windowArrived < ad.intervalBits {
		return
	}
	if ad.windowDeparted > 0 {
		ad.overloadZ = ad.windowArrived / ad.windowDeparted
	}
	ad.activeFlows = len(ad.activeInWin)
	if ad.activeFlows < 1 {
		ad.activeFlows = 1
	}
	ad.advert = ad.capacityTarget / float64(ad.activeFlows)
	ad.windowArrived = 0
	ad.windowDeparted = 0
	ad.activeInWin = make(map[bcn.MAC]struct{}, ad.activeFlows)
}

func (ad *advertiser) onDeparture(bits float64) { ad.windowDeparted += bits }

// CongestionPoint is the switch-side FERA logic. It satisfies the same
// interface as the BCN and QCN congestion points so netsim can swap it
// in; the advertised rate travels in the message's Sigma field (positive,
// in bits/s — FERA has no negative feedback).
type CongestionPoint struct {
	cfg      CPConfig
	interval int
	ad       *advertiser

	queueBits float64
	frames    int

	samples, msgs uint64
}

// NewCongestionPoint builds the congestion point.
func NewCongestionPoint(cfg CPConfig) (*CongestionPoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetUtilization == 0 {
		cfg.TargetUtilization = DefaultTargetUtilization
	}
	if cfg.IntervalBits == 0 {
		cfg.IntervalBits = cfg.Capacity / 1000 // ≈1 ms of traffic at line rate
	}
	interval := int(math.Round(1 / cfg.Pm))
	if interval < 1 {
		interval = 1
	}
	return &CongestionPoint{
		cfg:      cfg,
		interval: interval,
		ad:       newAdvertiser(cfg.Capacity*cfg.TargetUtilization, cfg.IntervalBits),
	}, nil
}

// QueueBits returns the tracked occupancy.
func (cp *CongestionPoint) QueueBits() float64 { return cp.queueBits }

// Stats returns (samples, advertisements, 0): FERA has no negative
// messages.
func (cp *CongestionPoint) Stats() (samples, pos, neg uint64) {
	return cp.samples, cp.msgs, 0
}

// Severe always reports false; PAUSE is a separate layer.
func (cp *CongestionPoint) Severe() bool { return false }

// OnDeparture tracks a departing frame.
func (cp *CongestionPoint) OnDeparture(sizeBits float64) {
	cp.queueBits -= sizeBits
	if cp.queueBits < 0 {
		cp.queueBits = 0
	}
	cp.ad.onDeparture(sizeBits)
}

// Advertised returns the current advertised fair share in bits/s.
func (cp *CongestionPoint) Advertised() float64 { return cp.ad.advert }

// OverloadZ returns the last window's arrivals/departures ratio.
func (cp *CongestionPoint) OverloadZ() float64 { return cp.ad.overloadZ }

// OnArrival processes an arriving frame and, if sampled, returns an
// explicit-rate message toward its source.
func (cp *CongestionPoint) OnArrival(a bcn.Arrival) *bcn.Message {
	cp.queueBits += a.SizeBits
	cp.ad.onArrival(a.Src, a.SizeBits)

	cp.frames++
	if cp.frames < cp.interval {
		return nil
	}
	cp.frames = 0
	cp.samples++
	cp.msgs++
	return &bcn.Message{
		DA:    a.Src,
		SA:    cp.cfg.SA,
		CPID:  cp.cfg.CPID,
		Sigma: cp.ad.advert, // positive: the advertised rate in bits/s
	}
}

// RateRegulator is the FERA source side: it obeys the advertised rate.
type RateRegulator struct {
	rate     float64
	min, max float64
	cpid     bcn.CPID
	updates  uint64
}

// NewRateRegulator builds an obeying regulator.
func NewRateRegulator(minRate, maxRate, initialRate float64) (*RateRegulator, error) {
	if !(minRate > 0) || !(maxRate > minRate) {
		return nil, fmt.Errorf("fera: rate bounds [%v, %v] invalid", minRate, maxRate)
	}
	if initialRate < minRate || initialRate > maxRate {
		return nil, fmt.Errorf("fera: initial rate %v outside [%v, %v]", initialRate, minRate, maxRate)
	}
	return &RateRegulator{rate: initialRate, min: minRate, max: maxRate}, nil
}

// Rate returns the current rate (constant between messages).
func (rp *RateRegulator) Rate(_ float64) float64 { return rp.rate }

// Tag returns the congestion point last heard from.
func (rp *RateRegulator) Tag() bcn.CPID { return rp.cpid }

// Updates returns the number of advertisements applied.
func (rp *RateRegulator) Updates() uint64 { return rp.updates }

// OnMessage obeys an advertised rate. Malformed messages (nil or
// non-finite advertisements) are ignored defensively.
func (rp *RateRegulator) OnMessage(m *bcn.Message, _ float64) {
	if m == nil || math.IsNaN(m.Sigma) || math.IsInf(m.Sigma, 0) {
		return
	}
	if m.Sigma <= 0 {
		return // FERA messages always carry a positive rate
	}
	rp.updates++
	rp.cpid = m.CPID
	r := m.Sigma
	if r < rp.min {
		r = rp.min
	}
	if r > rp.max {
		r = rp.max
	}
	rp.rate = r
}

// E2CMCongestionPoint is the switch side of the Extended Ethernet
// Congestion Management hybrid: BCN's σ feedback drives negative messages
// while positive messages carry the FERA advertisement instead of raw σ.
type E2CMCongestionPoint struct {
	bcnCP *bcn.CongestionPoint
	ad    *advertiser
}

// NewE2CMCongestionPoint composes the BCN congestion point with an ERICA
// advertiser at the given capacity.
func NewE2CMCongestionPoint(cfg bcn.CPConfig, capacity float64) (*E2CMCongestionPoint, error) {
	if !(capacity > 0) {
		return nil, fmt.Errorf("fera: capacity=%v must be positive", capacity)
	}
	cp, err := bcn.NewCongestionPoint(cfg)
	if err != nil {
		return nil, err
	}
	return &E2CMCongestionPoint{
		bcnCP: cp,
		ad:    newAdvertiser(capacity*DefaultTargetUtilization, capacity/1000),
	}, nil
}

// QueueBits returns the tracked occupancy.
func (cp *E2CMCongestionPoint) QueueBits() float64 { return cp.bcnCP.QueueBits() }

// Stats forwards the BCN counters.
func (cp *E2CMCongestionPoint) Stats() (samples, pos, neg uint64) { return cp.bcnCP.Stats() }

// Severe forwards the BCN severe indication.
func (cp *E2CMCongestionPoint) Severe() bool { return cp.bcnCP.Severe() }

// OnDeparture tracks a departing frame.
func (cp *E2CMCongestionPoint) OnDeparture(sizeBits float64) {
	cp.bcnCP.OnDeparture(sizeBits)
	cp.ad.onDeparture(sizeBits)
}

// OnArrival processes an arrival: negative BCN messages pass through
// unchanged; positive ones are rewritten to carry the advertisement.
func (cp *E2CMCongestionPoint) OnArrival(a bcn.Arrival) *bcn.Message {
	cp.ad.onArrival(a.Src, a.SizeBits)
	m := cp.bcnCP.OnArrival(a)
	if m != nil && m.Sigma > 0 {
		m.Sigma = cp.ad.advert
	}
	return m
}

// E2CMRegulator is the source side of the hybrid: BCN multiplicative
// decrease on negative feedback, half-way move toward the advertised
// rate on positive feedback.
type E2CMRegulator struct {
	rate     float64
	min, max float64
	gd       float64
	cpid     bcn.CPID

	decreases, advances uint64
}

// NewE2CMRegulator builds the hybrid regulator. gd is the BCN decrease
// gain applied to quantized feedback units.
func NewE2CMRegulator(gd, minRate, maxRate, initialRate float64) (*E2CMRegulator, error) {
	if !(gd > 0) || gd*bcn.FBSat >= 1 {
		return nil, fmt.Errorf("fera: e2cm gd=%v must be positive with gd·%v < 1", gd, bcn.FBSat)
	}
	if !(minRate > 0) || !(maxRate > minRate) {
		return nil, fmt.Errorf("fera: rate bounds [%v, %v] invalid", minRate, maxRate)
	}
	if initialRate < minRate || initialRate > maxRate {
		return nil, fmt.Errorf("fera: initial rate %v outside bounds", initialRate)
	}
	return &E2CMRegulator{rate: initialRate, min: minRate, max: maxRate, gd: gd}, nil
}

// Rate returns the current rate.
func (rp *E2CMRegulator) Rate(_ float64) float64 { return rp.rate }

// Tag returns the congestion point last heard from.
func (rp *E2CMRegulator) Tag() bcn.CPID { return rp.cpid }

// Stats returns (decreases, advertisement moves).
func (rp *E2CMRegulator) Stats() (dec, adv uint64) { return rp.decreases, rp.advances }

// OnMessage applies either branch of the hybrid. Malformed messages (nil
// or non-finite feedback) are ignored defensively.
func (rp *E2CMRegulator) OnMessage(m *bcn.Message, _ float64) {
	if m == nil || math.IsNaN(m.Sigma) || math.IsInf(m.Sigma, 0) {
		return
	}
	switch {
	case m.Sigma < 0:
		rp.decreases++
		rp.cpid = m.CPID
		fb := m.Sigma / bcn.FBUnit
		if fb < -bcn.FBSat {
			fb = -bcn.FBSat
		}
		factor := 1 + rp.gd*fb
		if factor < 0.1 {
			factor = 0.1
		}
		rp.rate *= factor
	case m.Sigma > 0:
		rp.advances++
		rp.cpid = m.CPID
		rp.rate = 0.5 * (rp.rate + m.Sigma)
	default:
		return
	}
	if rp.rate < rp.min {
		rp.rate = rp.min
	}
	if rp.rate > rp.max {
		rp.rate = rp.max
	}
}
