package linear

import (
	"testing"
	"testing/quick"

	"bcnphase/internal/core"
)

func TestRouthHurwitz2(t *testing.T) {
	cases := []struct {
		m, n float64
		want bool
	}{
		{1, 1, true},
		{0.001, 1e9, true},
		{0, 1, false},
		{1, 0, false},
		{-1, 1, false},
		{1, -1, false},
	}
	for _, c := range cases {
		if got := RouthHurwitz2(c.m, c.n); got != c.want {
			t.Errorf("RouthHurwitz2(%v, %v) = %v, want %v", c.m, c.n, got, c.want)
		}
	}
}

func TestSubsystemStableAlwaysForValidParams(t *testing.T) {
	p := core.PaperExample()
	if !SubsystemStable(p, core.Increase) || !SubsystemStable(p, core.Decrease) {
		t.Error("valid params must yield Hurwitz subsystems (Proposition 1)")
	}
}

// TestComparePaperExample demonstrates the paper's headline disagreement:
// the linear criterion declares the BDP-buffered example stable while the
// trajectory overflows.
func TestComparePaperExample(t *testing.T) {
	v, err := Compare(core.PaperExample())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !v.LinearStable {
		t.Error("baseline should declare stability")
	}
	if v.Theorem1OK {
		t.Error("Theorem 1 should fail at BDP buffer")
	}
	if v.TrajectoryStable {
		t.Error("trajectory should overflow")
	}
	if v.Outcome != core.OutcomeOverflow {
		t.Errorf("Outcome = %v, want overflow", v.Outcome)
	}
	if !v.Disagreement {
		t.Error("expected the linear/strong-stability disagreement")
	}
}

func TestCompareAmpleBuffer(t *testing.T) {
	p := core.PaperExample()
	p.B = core.Theorem1Bound(p) * 1.05
	v, err := Compare(p)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !v.LinearStable || !v.Theorem1OK || !v.TrajectoryStable {
		t.Errorf("all criteria should pass: %+v", v)
	}
	if v.Disagreement {
		t.Error("no disagreement expected")
	}
}

func TestCompareInvalidParams(t *testing.T) {
	if _, err := Compare(core.Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestQuickLinearAlwaysStable: for random valid parameters the baseline
// criterion is always "stable" — the content of Proposition 1.
func TestQuickLinearAlwaysStable(t *testing.T) {
	prop := func(giRaw, gdRaw, nRaw uint8) bool {
		p := core.PaperExample()
		p.Gi = 0.25 + float64(giRaw)/8
		p.Gd = 1.0 / (1 + float64(gdRaw))
		p.N = 1 + int(nRaw)
		return SubsystemStable(p, core.Increase) && SubsystemStable(p, core.Decrease)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
