// Package linear implements the baseline stability analysis that the paper
// argues against: the classical linear-control treatment of Lu et al.
// ("Congestion Control in Networks with No Congestion Drops", Allerton
// 2006), which splits the BCN system into two isolated linear subsystems
// and declares the whole system stable when each subsystem is Hurwitz.
//
// The paper's Proposition 1 shows this verdict is "stable" for every
// physically valid parameter set, because both characteristic polynomials
// λ² + mᵢλ + nᵢ have positive coefficients. The verdict ignores the
// buffer bound, the switching transient, and the limit cycle — exactly the
// phenomena the phase-plane analysis exposes. This package exists so that
// experiments can contrast the two criteria side by side.
package linear

import (
	"fmt"

	"bcnphase/internal/core"
)

// RouthHurwitz2 reports whether the second-order polynomial
// λ² + m·λ + n is Hurwitz (all roots in the open left half-plane):
// by the Routh–Hurwitz criterion this holds iff m > 0 and n > 0.
func RouthHurwitz2(m, n float64) bool { return m > 0 && n > 0 }

// SubsystemStable reports whether the isolated linear subsystem of the
// given region is stable in the classical sense.
func SubsystemStable(p core.Params, r core.Region) bool {
	l := p.RegionLinear(r)
	return RouthHurwitz2(l.M, l.N)
}

// Verdict is the result of the baseline analysis on one parameter set,
// alongside the paper's strong-stability verdicts for contrast.
type Verdict struct {
	// IncreaseStable and DecreaseStable are the per-subsystem
	// Routh–Hurwitz verdicts.
	IncreaseStable, DecreaseStable bool
	// LinearStable is the combined baseline verdict: both subsystems
	// Hurwitz. This is the criterion of [4] and of Proposition 1.
	LinearStable bool
	// Theorem1OK is the paper's strong-stability sufficient condition.
	Theorem1OK bool
	// TrajectoryStable is the trajectory-level strong-stability verdict
	// from the stitched phase-plane solution.
	TrajectoryStable bool
	// Outcome is the stitched trajectory's ending classification.
	Outcome core.Outcome
	// Disagreement is true when the baseline says stable but the
	// trajectory violates strong stability — the paper's headline
	// phenomenon.
	Disagreement bool
}

// Compare runs the baseline criterion and the phase-plane analysis on the
// same parameters.
func Compare(p core.Params) (Verdict, error) {
	if err := p.Validate(); err != nil {
		return Verdict{}, fmt.Errorf("compare: %w", err)
	}
	v := Verdict{
		IncreaseStable: SubsystemStable(p, core.Increase),
		DecreaseStable: SubsystemStable(p, core.Decrease),
		Theorem1OK:     core.Theorem1Satisfied(p),
	}
	v.LinearStable = v.IncreaseStable && v.DecreaseStable
	tr, err := core.Solve(p, core.SolveOptions{})
	if err != nil {
		return Verdict{}, fmt.Errorf("compare: %w", err)
	}
	v.Outcome = tr.Outcome
	v.TrajectoryStable = tr.Outcome.StronglyStable()
	v.Disagreement = v.LinearStable && !v.TrajectoryStable
	return v, nil
}
