// Package workload builds netsim scenarios for the traffic patterns the
// paper motivates: homogeneous long-lived flows through one bottleneck,
// incast waves from parallel reads in cluster file systems (Lustre,
// Panasas), and hotspot mixes. Each builder returns a ready-to-run
// netsim.Config; callers tweak fields before netsim.New if needed.
package workload

import (
	"fmt"

	"bcnphase/internal/core"
	"bcnphase/internal/netsim"
)

// FromParams derives a netsim scenario from a fluid-model parameter set,
// carrying over the BCN gains, sampling, reference and buffer so that the
// packet-level run exercises the configuration the fluid analysis judged.
// Sources start at overloadFactor × fair share (values above 1 create the
// congestion transient that engages the control loop).
func FromParams(p core.Params, overloadFactor float64) (netsim.Config, error) {
	if err := p.Validate(); err != nil {
		return netsim.Config{}, err
	}
	if !(overloadFactor > 0) {
		return netsim.Config{}, fmt.Errorf("workload: overloadFactor=%v must be positive", overloadFactor)
	}
	qsc := p.Qsc
	cfg := netsim.Config{
		N:           p.N,
		Capacity:    p.C,
		LineRate:    p.C, // every NIC can saturate the bottleneck
		FrameBits:   12000,
		BufferBits:  p.B,
		PropDelay:   netsim.FromSeconds(1e-6),
		InitialRate: overloadFactor * p.C / float64(p.N),
		BCN:         true,
		Q0:          p.Q0,
		Qsc:         qsc,
		W:           p.W,
		Pm:          p.Pm,
		Ru:          p.Ru,
		Gi:          p.Gi,
		Gd:          p.Gd,
	}
	return cfg, nil
}

// Incast builds the parallel-read pattern: n servers answer one client
// through a single bottleneck, all starting within a short window (the
// synchronized reply burst that makes incast collapse notorious). Each
// server initially sends at its line rate.
func Incast(n int, capacity, bufferBits float64, window float64) (netsim.Config, error) {
	if n <= 0 {
		return netsim.Config{}, fmt.Errorf("workload: n=%d must be positive", n)
	}
	if !(capacity > 0) || !(bufferBits > 0) || window < 0 {
		return netsim.Config{}, fmt.Errorf("workload: invalid capacity=%v buffer=%v window=%v", capacity, bufferBits, window)
	}
	starts := make([]netsim.Nanos, n)
	for i := range starts {
		if n > 1 {
			starts[i] = netsim.FromSeconds(window * float64(i) / float64(n-1))
		}
	}
	cfg := netsim.Config{
		N:           n,
		Capacity:    capacity,
		LineRate:    capacity,
		FrameBits:   12000,
		BufferBits:  bufferBits,
		PropDelay:   netsim.FromSeconds(1e-6),
		InitialRate: capacity, // line-rate burst: the incast signature
		StartTimes:  starts,
		BCN:         true,
		Q0:          bufferBits / 8,
		Qsc:         bufferBits * 3 / 4,
		W:           core.DefaultW,
		Pm:          0.2,
		Ru:          core.DefaultRu,
		Gi:          0.05,
		Gd:          core.DefaultGd,
		// Floor the regulators at 1/8 of the fair share: BCN's positive
		// feedback rides on sampled data frames, so a source crushed to
		// a negligible rate would wait ~seconds for its first positive
		// message (the draft's recovery-timer problem).
		MinRate: capacity / (8 * float64(n)),
	}
	return cfg, nil
}

// Hotspot builds a mix of one aggressive source (line rate) and n−1
// background sources at equal shares of the residual capacity, testing
// whether BCN shapes the offender without starving the rest.
func Hotspot(n int, capacity, bufferBits float64) (netsim.Config, error) {
	if n < 2 {
		return netsim.Config{}, fmt.Errorf("workload: hotspot needs n >= 2, got %d", n)
	}
	if !(capacity > 0) || !(bufferBits > 0) {
		return netsim.Config{}, fmt.Errorf("workload: invalid capacity=%v buffer=%v", capacity, bufferBits)
	}
	rates := make([]float64, n)
	rates[0] = capacity
	for i := 1; i < n; i++ {
		rates[i] = 0.5 * capacity / float64(n-1)
	}
	cfg := netsim.Config{
		N:            n,
		Capacity:     capacity,
		LineRate:     capacity,
		FrameBits:    12000,
		BufferBits:   bufferBits,
		PropDelay:    netsim.FromSeconds(1e-6),
		InitialRate:  capacity / float64(n),
		InitialRates: rates,
		BCN:          true,
		Q0:           bufferBits / 8,
		Qsc:          bufferBits * 3 / 4,
		W:            core.DefaultW,
		Pm:           0.2,
		Ru:           core.DefaultRu,
		Gi:           0.05,
		Gd:           core.DefaultGd,
		MinRate:      capacity / (8 * float64(n)),
	}
	return cfg, nil
}

// ValidationScenario returns the fluid-premise-satisfying scenario used by
// the fluid-vs-packet validation experiment: few sources, per-frame
// sampling and modest additive gain, so that per-source feedback refreshes
// much faster than the system's oscillation period and the rate regulator
// tracks paper eq. (7) closely. The matching fluid parameters are returned
// alongside.
func ValidationScenario() (netsim.Config, core.Params) {
	p := core.Params{
		N:  2,
		C:  1e9,
		Ru: core.DefaultRu,
		Gi: 0.5, // a = 8e6: oscillation period ~2.2 ms >> feedback gap
		Gd: core.DefaultGd,
		W:  core.DefaultW,
		Pm: 1, // sample every frame
		Q0: 2e5,
		B:  4e6,
	}
	cfg := netsim.Config{
		N:           p.N,
		Capacity:    p.C,
		LineRate:    2 * p.C, // keep rate clamps away from the fluid range
		FrameBits:   12000,
		BufferBits:  p.B,
		PropDelay:   netsim.FromSeconds(1e-6),
		InitialRate: 1.2 * p.C / float64(p.N), // 20% overload engages the loop
		BCN:         true,
		Q0:          p.Q0,
		W:           p.W,
		Pm:          p.Pm,
		Ru:          p.Ru,
		Gi:          p.Gi,
		Gd:          p.Gd,
	}
	return cfg, p
}
