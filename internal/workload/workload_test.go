package workload

import (
	"testing"

	"bcnphase/internal/core"
	"bcnphase/internal/netsim"
)

func TestFromParams(t *testing.T) {
	p := core.PaperExample()
	cfg, err := FromParams(p, 2)
	if err != nil {
		t.Fatalf("FromParams: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("derived config invalid: %v", err)
	}
	if cfg.N != p.N || cfg.Capacity != p.C || cfg.Q0 != p.Q0 || cfg.BufferBits != p.B {
		t.Errorf("fields not carried over: %+v", cfg)
	}
	if cfg.InitialRate != 2*p.C/float64(p.N) {
		t.Errorf("InitialRate = %v", cfg.InitialRate)
	}
	if _, err := FromParams(core.Params{}, 2); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := FromParams(p, 0); err == nil {
		t.Error("zero overload factor accepted")
	}
}

func TestIncast(t *testing.T) {
	cfg, err := Incast(16, 1e9, 2e6, 1e-3)
	if err != nil {
		t.Fatalf("Incast: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("incast config invalid: %v", err)
	}
	if len(cfg.StartTimes) != 16 {
		t.Fatalf("StartTimes len = %d", len(cfg.StartTimes))
	}
	if cfg.StartTimes[0] != 0 || cfg.StartTimes[15] != netsim.FromSeconds(1e-3) {
		t.Errorf("stagger window wrong: first=%d last=%d", cfg.StartTimes[0], cfg.StartTimes[15])
	}
	for i := 1; i < len(cfg.StartTimes); i++ {
		if cfg.StartTimes[i] < cfg.StartTimes[i-1] {
			t.Fatal("start times not monotone")
		}
	}
	if _, err := Incast(0, 1e9, 2e6, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Incast(4, -1, 2e6, 0); err == nil {
		t.Error("bad capacity accepted")
	}
	if _, err := Incast(4, 1e9, 2e6, -1); err == nil {
		t.Error("negative window accepted")
	}
}

func TestIncastRuns(t *testing.T) {
	cfg, err := Incast(8, 1e9, 2e6, 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := net.Run(0.05)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The line-rate burst must actually congest the bottleneck...
	if res.MaxQueueBits < cfg.Q0 {
		t.Errorf("incast never congested: maxQ = %v", res.MaxQueueBits)
	}
	// ...and BCN must engage.
	if res.NegMessages == 0 {
		t.Error("no negative feedback during incast")
	}
}

func TestHotspot(t *testing.T) {
	cfg, err := Hotspot(5, 1e9, 2e6)
	if err != nil {
		t.Fatalf("Hotspot: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("hotspot config invalid: %v", err)
	}
	if cfg.InitialRates[0] != 1e9 {
		t.Errorf("offender rate = %v", cfg.InitialRates[0])
	}
	for i := 1; i < 5; i++ {
		if cfg.InitialRates[i] != 0.5*1e9/4 {
			t.Errorf("background rate[%d] = %v", i, cfg.InitialRates[i])
		}
	}
	if _, err := Hotspot(1, 1e9, 2e6); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Hotspot(3, 0, 2e6); err == nil {
		t.Error("bad capacity accepted")
	}
}

func TestValidationScenario(t *testing.T) {
	cfg, p := ValidationScenario()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("validation config invalid: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("validation params invalid: %v", err)
	}
	// The scenario and the fluid params must agree on the control knobs.
	if cfg.Q0 != p.Q0 || cfg.Pm != p.Pm || cfg.Gi != p.Gi || cfg.Gd != p.Gd || cfg.W != p.W {
		t.Errorf("scenario/params mismatch: %+v vs %+v", cfg, p)
	}
	// Premise: the fluid case must be the oscillatory Case 1 so the
	// validation sees the interesting dynamics.
	if p.Case() != core.Case1 {
		t.Errorf("validation params are %v, want Case1", p.Case())
	}
}
