package analytic

import (
	"fmt"
	"math"

	"bcnphase/internal/core"
)

// solveClosed stitches closed-form arcs without sampling. The control
// flow mirrors core.solve line for line — same classification order,
// same epsilons (1e-9·TimeScale), same glide-time doubling, same
// boundary bisection — so every finite verdict (Outcome, Rho, Crossings,
// EndT/X/Y) is bit-identical to core.Solve's for the same options.
// What differs is what is *recorded*: exact extremum and junction knots
// instead of a 64-point polyline per arc, and zero allocations in
// steady state.
//
// ok is false when a closed form evaluated to a non-finite state or
// time; the caller then re-runs the point on the RK45 path.
func (s *Solver) solveClosed(p core.Params, opts Options) (res Result, ok bool, err error) {
	k := p.K()
	x, y := opts.Start[0], opts.Start[1]
	tGlobal := 0.0

	tolX := opts.ConvergeTol * p.Q0
	tolY := opts.ConvergeTol * p.C
	xHi := p.B - p.Q0
	xLo := -p.Q0

	res = Result{Path: PathAnalytic}
	ext := newExtremes(x)
	s.enterDecrease = s.enterDecrease[:0]
	bufferCheckedRounds := 0

	finish := func(t, xf, yf float64) {
		ext.add(xf)
		res.EndT, res.EndX, res.EndY = t, xf, yf
		ext.finishInto(&res)
	}

	region := p.RegionAt(x, y)
	for arcIdx := 0; arcIdx < opts.MaxArcs; arcIdx++ {
		lin := p.RegionLinear(region)
		a, arcOK := makeArc(lin.M, lin.N, k, x, y)
		if !arcOK {
			return res, false, fmt.Errorf("%w: regime coefficients m=%v, n=%v, k=%v must be positive",
				core.ErrInvalidParams, lin.M, lin.N, k)
		}
		eps := 1e-9 * a.scale

		tSwitch, hasSwitch := a.firstSwitch(eps)
		var tEnd float64
		if hasSwitch {
			tEnd = tSwitch
		} else {
			tEnd = glideTimeArc(a, tolX, tolY)
		}
		if !finite(tEnd) {
			return res, false, nil
		}

		// Entry knot: the junction state is exact (carried across the
		// crossing verbatim, as core.sampleArc records it).
		ext.add(x)

		// Extremum inside this arc, recorded with core.solve's pre-boundary
		// semantics: the tally counts any y-zero before the switch/glide
		// end, while the excursion knot only counts the part of the arc
		// that is actually traversed (up to a boundary hit, below).
		tz, zok := a.firstYZero(eps)
		var xz float64
		isMax := y > 0 || (y == 0 && x < 0)
		if zok && tz < tEnd {
			xz, _ = a.at(tz)
			res.Extrema++
		}

		if !opts.IgnoreBuffer {
			if tb, hi, bok := arcFirstBoundaryHit(a, eps, tEnd, xLo, xHi); bok {
				if zok && tz < tEnd && tz < tb {
					ext.extremum(tGlobal+tz, xz, isMax)
				}
				xb, yb := a.at(tb)
				finish(tGlobal+tb, xb, yb)
				if hi {
					res.Outcome = core.OutcomeOverflow
				} else {
					res.Outcome = core.OutcomeUnderflow
				}
				return res, true, nil
			}
		}

		if zok && tz < tEnd {
			ext.extremum(tGlobal+tz, xz, isMax)
		}
		// A terminal glide arc can oscillate through further extrema on
		// its way into the convergence box; fold them into the excursion
		// the way core's per-arc sampling would. Amplitudes decay, so a
		// short scan suffices.
		if !hasSwitch && zok {
			tzz := tz
			for i := 0; i < 4; i++ {
				tn, more := a.firstYZero(tzz)
				if !more || tn >= tEnd {
					break
				}
				xn, _ := a.at(tn)
				ext.add(xn)
				tzz = tn
			}
		}
		res.Arcs++

		xNext, yNext := a.at(tEnd)
		if !finite(xNext) || !finite(yNext) {
			return res, false, nil
		}
		tGlobal += tEnd

		if !hasSwitch {
			finish(tGlobal, xNext, yNext)
			res.Outcome = core.OutcomeConverged
			return res, true, nil
		}

		next := core.Increase
		if yNext > 0 {
			next = core.Decrease
		}
		res.Crossings++
		if opts.OnCrossing != nil {
			opts.OnCrossing(tGlobal, xNext, yNext, next)
		}
		region = next
		if next == core.Decrease {
			s.enterDecrease = append(s.enterDecrease, math.Abs(xNext))
			bufferCheckedRounds++
		}

		if math.Abs(xNext) < tolX && math.Abs(yNext) < tolY {
			finish(tGlobal, xNext, yNext)
			res.Outcome = core.OutcomeConverged
			return res, true, nil
		}

		if n := len(s.enterDecrease); n >= 2 && s.enterDecrease[n-2] > 0 {
			rho := s.enterDecrease[n-1] / s.enterDecrease[n-2]
			res.Rho = rho
			switch {
			case math.Abs(rho-1) <= opts.CycleTol:
				finish(tGlobal, xNext, yNext)
				res.Outcome = core.OutcomeLimitCycle
				return res, true, nil
			case rho > 1+opts.CycleTol:
				if opts.IgnoreBuffer {
					finish(tGlobal, xNext, yNext)
					res.Outcome = core.OutcomeDiverging
					return res, true, nil
				}
			case !opts.DisableShortCircuit && bufferCheckedRounds >= 2:
				finish(tGlobal, xNext, yNext)
				res.Outcome = core.OutcomeConverged
				return res, true, nil
			}
		}
		x, y = xNext, yNext
	}
	finish(tGlobal, x, y)
	res.Outcome = core.OutcomeHorizon
	return res, true, nil
}

// glideTimeArc mirrors core.glideTime on the value arc: double from the
// characteristic time until the state is inside the convergence box.
func glideTimeArc(a arc, tolX, tolY float64) float64 {
	t := a.scale
	for i := 0; i < 200; i++ {
		x, y := a.at(t)
		if math.Abs(x) < tolX && math.Abs(y) < tolY {
			return t
		}
		t *= 2
	}
	return t
}

// arcFirstBoundaryHit mirrors core.firstBoundaryHit on the value arc:
// the entry point, the (at most one) y-zero and the endpoint bracket the
// monotone pieces, and the hit time is refined by bisection.
func arcFirstBoundaryHit(a arc, eps, tEnd, xLo, xHi float64) (t float64, hi, ok bool) {
	type knot struct{ t, x float64 }
	var knots [3]knot
	n := 0
	x0, _ := a.at(0)
	knots[n] = knot{0, x0}
	n++
	if tz, okz := a.firstYZero(eps); okz && tz < tEnd {
		xz, _ := a.at(tz)
		knots[n] = knot{tz, xz}
		n++
	}
	xe, _ := a.at(tEnd)
	knots[n] = knot{tEnd, xe}
	n++

	for i := 1; i < n; i++ {
		ka, kb := knots[i-1], knots[i]
		switch {
		case kb.x >= xHi && ka.x < xHi:
			return refineArcBoundary(a, ka.t, kb.t, xHi, true), true, true
		case kb.x <= xLo && ka.x > xLo:
			return refineArcBoundary(a, ka.t, kb.t, xLo, false), false, true
		case i == 1 && (ka.x >= xHi && kb.x > ka.x):
			return ka.t, true, true
		case i == 1 && (ka.x <= xLo && kb.x < ka.x):
			return ka.t, false, true
		}
	}
	return 0, false, false
}

// refineArcBoundary mirrors core.refineBoundary's 80-iteration bisection.
func refineArcBoundary(a arc, lo, hi, c float64, upper bool) float64 {
	inside := func(x float64) bool {
		if upper {
			return x < c
		}
		return x > c
	}
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		x, _ := a.at(mid)
		if inside(x) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
