package analytic

import "bcnphase/internal/core"

// Batch is the structure-of-arrays result of a batched solve: column i
// of every slice is the verdict for params[i]. A Batch owns its backing
// slices and reuses them across Solve calls, so a warm Batch driven by
// one goroutine solves at zero steady-state allocations (asserted by
// TestBatchSolveAllocs).
type Batch struct {
	// Outcome, Path, Arcs, Crossings are the per-point classification.
	Outcome   []core.Outcome
	Path      []Path
	Arcs      []int
	Crossings []int
	// MaxX, MinX, Rho, EndT, EndX, EndY are the per-point measurements.
	MaxX, MinX []float64
	Rho        []float64
	EndT       []float64
	EndX, EndY []float64
	// Err holds per-point failures (invalid params); nil entries solved.
	Err []error

	solver Solver
}

// NewBatch returns a Batch with capacity for n points.
func NewBatch(n int) *Batch {
	b := &Batch{solver: Solver{enterDecrease: make([]float64, 0, 64)}}
	b.Resize(n)
	return b
}

// Resize sets the batch length to n, growing the backing arrays only
// when n exceeds their capacity.
func (b *Batch) Resize(n int) {
	b.Outcome = grow(b.Outcome, n)
	b.Path = grow(b.Path, n)
	b.Arcs = grow(b.Arcs, n)
	b.Crossings = grow(b.Crossings, n)
	b.MaxX = grow(b.MaxX, n)
	b.MinX = grow(b.MinX, n)
	b.Rho = grow(b.Rho, n)
	b.EndT = grow(b.EndT, n)
	b.EndX = grow(b.EndX, n)
	b.EndY = grow(b.EndY, n)
	b.Err = grow(b.Err, n)
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// Len returns the batch length.
func (b *Batch) Len() int { return len(b.Outcome) }

// Solve classifies every point of params into the batch columns,
// resizing to len(params). Per-point options apply uniformly; metrics
// are aggregated locally and flushed to the registry once per call.
// Point failures land in Err[i] — Solve itself never fails.
func (b *Batch) Solve(params []core.Params, opts Options) {
	b.Resize(len(params))
	// Strip the per-point metrics hook: the loop below flushes one
	// aggregate instead of len(params) registry touches.
	m := opts.Metrics
	opts.Metrics = nil

	var agg batchAgg
	for i := range params {
		res, err := b.solver.Solve(params[i], opts)
		if err != nil {
			b.Err[i] = err
			b.Outcome[i] = 0
			b.Path[i] = 0
			continue
		}
		b.Err[i] = nil
		b.Outcome[i] = res.Outcome
		b.Path[i] = res.Path
		b.Arcs[i] = res.Arcs
		b.Crossings[i] = res.Crossings
		b.MaxX[i] = res.MaxX
		b.MinX[i] = res.MinX
		b.Rho[i] = res.Rho
		b.EndT[i] = res.EndT
		b.EndX[i] = res.EndX
		b.EndY[i] = res.EndY
		if opts.Mode != ModeOff && res.Path == PathRK45 {
			agg.fallbacks++
		}
		agg.fold(&res)
	}
	agg.flushTo(m)
}

// SolveBatch classifies params in one batched call and returns the
// batch. Callers that solve repeatedly should hold a *Batch and call
// its Solve method to reuse the arrays.
func SolveBatch(params []core.Params, opts Options) *Batch {
	b := NewBatch(len(params))
	b.Solve(params, opts)
	return b
}

// batchAgg accumulates metrics locally during a batch loop. Outcome
// tallies index core.Outcome values directly (small dense enum).
type batchAgg struct {
	solves, arcs       [2]uint64 // indexed by Path-1
	crossings, extrema uint64
	fallbacks          uint64
	outcomes           [8]uint64
}

func (a *batchAgg) fold(res *Result) {
	if res.Path == PathAnalytic || res.Path == PathRK45 {
		a.solves[res.Path-1]++
		a.arcs[res.Path-1] += uint64(res.Arcs)
	}
	a.crossings += uint64(res.Crossings)
	a.extrema += uint64(res.Extrema)
	if o := int(res.Outcome); o > 0 && o < len(a.outcomes) {
		a.outcomes[o]++
	}
}

func (a *batchAgg) flushTo(m *Metrics) {
	if m == nil {
		return
	}
	for i, p := range [...]Path{PathAnalytic, PathRK45} {
		if a.solves[i] > 0 {
			m.Solves.With(p.String()).Add(a.solves[i])
		}
		if a.arcs[i] > 0 {
			m.Arcs.With(p.String()).Add(a.arcs[i])
		}
	}
	if a.crossings > 0 {
		m.Crossings.Add(a.crossings)
	}
	if a.extrema > 0 {
		m.Extrema.Add(a.extrema)
	}
	if a.fallbacks > 0 {
		m.RK45Fallbacks.Add(a.fallbacks)
	}
	for o := 1; o < len(a.outcomes); o++ {
		if a.outcomes[o] > 0 {
			m.Outcomes.With(core.Outcome(o).String()).Add(a.outcomes[o])
		}
	}
}
