// Package analytic is the sampling-free fast path of the phase-plane
// engine: it stitches the same closed-form arcs as core.Solve (paper
// §IV-B, eqs. 12–34) but evaluates only the junction quantities — exact
// switching times, extrema and boundary-crossing times — instead of a
// 64-sample polyline per arc. A Solver carries reusable buffers, so in
// steady state a solve allocates nothing; the Batch structure-of-arrays
// API amortizes one Solver across K parameter points per call.
//
// The engine exists for the hot paths: gain-plane sweeps (cmd/bcnsweep,
// cluster shards) and bcnd solve/sweep jobs classify millions of
// parameter points and need only the verdict (outcome, extrema,
// contraction ratio), never the polyline. core.Solve remains the
// engine behind figures, invariant-checked runs and anything that needs
// sampled trajectories; this package reproduces its classification
// exactly — same arc construction, same epsilons, same termination
// logic — minus the sampling, so the two agree bit-for-bit on every
// finite result (asserted across the sweep grid in engine_test.go and
// continuously by invariant/xcheck).
//
// Two escape hatches keep the closed forms honest:
//
//   - ModeOff classifies by stitched Dormand-Prince integration alone
//     (internal/ode), knowing nothing about the solution forms. It is
//     the validation baseline that FuzzAnalyticVsRK45, the xcheck
//     harness and the speedup gate compare against.
//   - A closed-form arc that evaluates to a non-finite state mid-stitch
//     falls back to the RK45 path for that point (counted in Metrics).
package analytic

import (
	"fmt"
	"math"
	"sync"

	"bcnphase/internal/core"
)

// Mode selects the solving strategy.
type Mode int

// The engine modes, as spelled by the -analytic flag and job specs.
const (
	// ModeOn (the default) stitches closed-form arcs and falls back to
	// RK45 only for arcs whose closed form goes non-finite.
	ModeOn Mode = iota
	// ModeAuto currently behaves like ModeOn; the name is reserved for
	// future cost-based selection between the closed forms and the
	// integrator, so specs written today keep meaning "let the engine
	// choose" tomorrow.
	ModeAuto
	// ModeOff disables the closed forms entirely: classification runs on
	// stitched numerical integration (the validation baseline).
	ModeOff
)

// ParseMode parses an -analytic flag or spec value. The empty string is
// ModeOn, matching the default-on contract of the CLIs and bcnd.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "on":
		return ModeOn, nil
	case "auto":
		return ModeAuto, nil
	case "off":
		return ModeOff, nil
	default:
		return 0, fmt.Errorf("analytic: unknown mode %q (want on, auto or off)", s)
	}
}

// String spells the mode as ParseMode reads it.
func (m Mode) String() string {
	switch m {
	case ModeOn:
		return "on"
	case ModeAuto:
		return "auto"
	case ModeOff:
		return "off"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Path records which engine actually produced a result.
type Path int

// The execution paths.
const (
	// PathAnalytic: closed-form arc stitching end to end.
	PathAnalytic Path = iota + 1
	// PathRK45: stitched numerical integration (ModeOff, or the
	// non-finite fallback).
	PathRK45
)

// String names the path.
func (p Path) String() string {
	switch p {
	case PathAnalytic:
		return "analytic"
	case PathRK45:
		return "rk45"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// Options configures a solve. The zero value matches core.SolveOptions
// defaults: canonical start (−q0, 0), buffer enforced, short-circuit
// convergence on.
type Options struct {
	// Mode selects the engine (default ModeOn).
	Mode Mode
	// Start overrides the initial state (x0, y0); nil means (−q0, 0).
	Start *[2]float64
	// MaxArcs bounds the number of stitched arcs (default 1e6).
	MaxArcs int
	// ConvergeTol is the relative convergence tolerance (default 1e-3),
	// identical to core.SolveOptions.
	ConvergeTol float64
	// CycleTol is the relative limit-cycle tolerance (default 1e-6).
	CycleTol float64
	// DisableShortCircuit turns off the analytic convergence
	// short-circuit (contraction ratio < 1 after a buffer-checked round).
	DisableShortCircuit bool
	// IgnoreBuffer disables overflow/underflow termination.
	IgnoreBuffer bool
	// OnCrossing, when non-nil, observes every switching-line crossing as
	// it is stitched (global time, state, region entered). The hook costs
	// one nil check per crossing; the xcheck harness uses it to capture
	// junction points without the engine allocating a crossing list.
	OnCrossing func(t, x, y float64, to core.Region)
	// Metrics optionally attaches engine counters. Nil costs one
	// comparison per solve.
	Metrics *Metrics
}

func (o Options) withDefaults(p core.Params) Options {
	if o.MaxArcs <= 0 {
		o.MaxArcs = 1_000_000
	}
	if o.ConvergeTol <= 0 {
		o.ConvergeTol = 1e-3
	}
	if o.CycleTol <= 0 {
		o.CycleTol = 1e-6
	}
	if o.Start == nil {
		o.Start = &[2]float64{-p.Q0, 0}
	}
	return o
}

// Result is the verdict of one solve: everything a sweep row or a solve
// artifact needs, nothing that requires sampling. Extremes are exact
// (closed-form extremum states), so MaxX here is ≥ the polyline-sampled
// core.Trajectory.MaxX for the same point.
type Result struct {
	// Outcome classifies how the trajectory ended (same taxonomy and
	// same decision logic as core.Solve).
	Outcome core.Outcome
	// Path records which engine produced this result.
	Path Path
	// Arcs counts stitched arcs (terminal boundary-truncated arcs
	// excluded, matching len(core.Trajectory.Segments)).
	Arcs int
	// Crossings counts switching-line crossings.
	Crossings int
	// Extrema counts recorded x-extrema.
	Extrema int
	// MaxX, MinX are the extreme x excursions (shifted coordinates).
	// Both are exact knot values; the t = 0 launch knot counts, so a
	// canonical start reports MinX = −q0 exactly — the infimum that
	// core.Solve's polyline approaches as sample density grows.
	MaxX, MinX float64
	// Rho is the measured per-round contraction ratio (0 when fewer than
	// two same-side returns were seen).
	Rho float64
	// EndT, EndX, EndY is the final state.
	EndT, EndX, EndY float64
	// FirstMaxT/X and FirstMinT/X are the first recorded maximum and
	// minimum of x (NaN when none occurred) — the paper's first-round
	// transient peak and trough.
	FirstMaxT, FirstMaxX float64
	FirstMinT, FirstMinX float64
}

// MaxQueue returns the peak queue length q0 + MaxX in bits.
func (r Result) MaxQueue(p core.Params) float64 { return p.Q0 + r.MaxX }

// MinQueue returns the minimum queue length q0 + MinX in bits.
func (r Result) MinQueue(p core.Params) float64 { return p.Q0 + r.MinX }

// Solver stitches arcs with reusable buffers. The zero value is ready;
// a Solver is not safe for concurrent use (give each worker its own, or
// use SolveOne).
type Solver struct {
	// enterDecrease accumulates same-side return amplitudes for the
	// contraction measurement; reused across solves.
	enterDecrease []float64
	// rk holds the RK45 path's reusable state slices.
	rk rkScratch
}

// NewSolver returns a Solver with warm buffers.
func NewSolver() *Solver {
	return &Solver{enterDecrease: make([]float64, 0, 64)}
}

// Solve classifies one parameter point. For valid parameters under
// ModeOn/ModeAuto the closed-form path handles every arc (the three
// solution families cover all positive m, n); the RK45 fallback exists
// for the defensive non-finite case and is counted when taken.
func (s *Solver) Solve(p core.Params, opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults(p)
	var (
		res Result
		err error
	)
	if opts.Mode == ModeOff {
		res, err = s.solveRK45(p, opts)
	} else {
		var ok bool
		res, ok, err = s.solveClosed(p, opts)
		if err == nil && !ok {
			if opts.Metrics != nil {
				opts.Metrics.RK45Fallbacks.Inc()
			}
			res, err = s.solveRK45(p, opts)
		}
	}
	if err != nil {
		return Result{}, err
	}
	if opts.Metrics != nil {
		opts.Metrics.observe(&res)
	}
	return res, nil
}

// solverPool backs SolveOne so one-shot callers still hit warm buffers.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// SolveOne classifies one point using a pooled Solver; safe for
// concurrent use.
func SolveOne(p core.Params, opts Options) (Result, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.Solve(p, opts)
}

// extremes tracks exact excursion knots. Where core.Solve excuses the
// boundary-resting launch sample and then records polyline points
// arbitrarily close to it (its MinX tends to the launch value −q0 as
// sample density grows), the exact engine reports that infimum
// directly: the t = 0 knot counts, so a canonical launch has
// MinX = −q0 exactly.
type extremes struct {
	maxX, minX float64
	firstMaxT  float64
	firstMaxX  float64
	firstMinT  float64
	firstMinX  float64
	startX     float64
	seen       bool
}

func newExtremes(startX float64) extremes {
	return extremes{
		maxX: math.Inf(-1), minX: math.Inf(1),
		firstMaxT: math.NaN(), firstMaxX: math.NaN(),
		firstMinT: math.NaN(), firstMinX: math.NaN(),
		startX: startX,
	}
}

// add folds one exact knot (arc junction, extremum, boundary hit or
// terminal state) into the excursion extremes.
func (e *extremes) add(x float64) {
	e.seen = true
	if x > e.maxX {
		e.maxX = x
	}
	if x < e.minX {
		e.minX = x
	}
}

// finishInto seals the extremes into res, mirroring core.Solve's
// fallback: a trajectory whose every knot was launch-excused reports the
// start state as both extremes.
func (e *extremes) finishInto(res *Result) {
	if !e.seen {
		e.maxX, e.minX = e.startX, e.startX
	}
	res.MaxX, res.MinX = e.maxX, e.minX
	res.FirstMaxT, res.FirstMaxX = e.firstMaxT, e.firstMaxX
	res.FirstMinT, res.FirstMinX = e.firstMinT, e.firstMinX
}

// extremum records one x-extremum (a y-zero) knot.
func (e *extremes) extremum(t, x float64, isMax bool) {
	e.add(x)
	if isMax {
		if math.IsNaN(e.firstMaxT) {
			e.firstMaxT, e.firstMaxX = t, x
		}
	} else if math.IsNaN(e.firstMinT) {
		e.firstMinT, e.firstMinX = t, x
	}
}
