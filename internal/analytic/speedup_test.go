package analytic

import (
	"testing"
	"time"
)

// TestAnalyticSpeedup is ISSUE #10's performance gate: the closed-form
// batch path must classify the sweep grid at least 5× faster than the
// RK45-only baseline (the same classification computed by stitched
// numerical integration). Interleaved best-of-N timing suppresses
// scheduler noise, and the whole comparison retries before failing;
// -short and race-instrumented runs skip.
func TestAnalyticSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews wall-clock comparison")
	}
	params := gridParams(8, 8)
	closed := NewBatch(len(params))
	rk := NewBatch(len(params))
	// Warm both paths (allocator, branch predictors) before timing.
	closed.Solve(params, Options{})
	rk.Solve(params, Options{Mode: ModeOff})

	time1 := func(b *Batch, opts Options) time.Duration {
		start := time.Now()
		b.Solve(params, opts)
		return time.Since(start)
	}
	measure := func() (closedBest, rkBest time.Duration) {
		closedBest, rkBest = time.Hour, time.Hour
		for i := 0; i < 5; i++ {
			if d := time1(closed, Options{}); d < closedBest {
				closedBest = d
			}
			if d := time1(rk, Options{Mode: ModeOff}); d < rkBest {
				rkBest = d
			}
		}
		return closedBest, rkBest
	}

	const want = 5.0
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		closedBest, rkBest := measure()
		ratio = float64(rkBest) / float64(closedBest)
		if ratio >= want {
			t.Logf("analytic %v vs rk45 %v per %d-point batch: %.0f× speedup",
				closedBest, rkBest, len(params), ratio)
			return
		}
	}
	t.Fatalf("analytic path only %.1f× faster than rk45 baseline, want ≥%.0f×", ratio, want)
}
