package analytic

import (
	"testing"

	"bcnphase/internal/core"
	"bcnphase/internal/telemetry"
)

func TestBatchMatchesSolve(t *testing.T) {
	params := gridParams(7, 7)
	b := SolveBatch(params, Options{})
	if b.Len() != len(params) {
		t.Fatalf("batch len %d, want %d", b.Len(), len(params))
	}
	s := NewSolver()
	for i, p := range params {
		res, err := s.Solve(p, Options{})
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if b.Err[i] != nil {
			t.Fatalf("point %d: batch error %v", i, b.Err[i])
		}
		if b.Outcome[i] != res.Outcome || b.Path[i] != res.Path ||
			b.Arcs[i] != res.Arcs || b.Crossings[i] != res.Crossings ||
			b.MaxX[i] != res.MaxX || b.MinX[i] != res.MinX ||
			b.Rho[i] != res.Rho || b.EndT[i] != res.EndT ||
			b.EndX[i] != res.EndX || b.EndY[i] != res.EndY {
			t.Errorf("point %d (gi=%g gd=%g): batch column diverges from Solve", i, p.Gi, p.Gd)
		}
	}
}

func TestBatchReportsPointErrors(t *testing.T) {
	good := core.PaperExample()
	var bad core.Params // zero: fails validation
	b := SolveBatch([]core.Params{good, bad, good}, Options{})
	if b.Err[0] != nil || b.Err[2] != nil {
		t.Fatalf("valid points errored: %v, %v", b.Err[0], b.Err[2])
	}
	if b.Err[1] == nil {
		t.Fatal("invalid point did not error")
	}
	if b.Outcome[1] != 0 || b.Path[1] != 0 {
		t.Fatalf("failed point left stale columns: outcome=%v path=%v", b.Outcome[1], b.Path[1])
	}
	if b.Outcome[0] == 0 || b.Outcome[2] == 0 {
		t.Fatal("valid points missing outcomes")
	}
}

func TestBatchResizeReuses(t *testing.T) {
	params := gridParams(5, 5)
	b := NewBatch(len(params))
	b.Solve(params, Options{})
	first := &b.MaxX[0]
	b.Solve(params[:10], Options{})
	if b.Len() != 10 {
		t.Fatalf("len %d, want 10", b.Len())
	}
	if &b.MaxX[0] != first {
		t.Fatal("shrinking batch reallocated its arrays")
	}
	b.Solve(params, Options{})
	if b.Len() != len(params) {
		t.Fatalf("len %d, want %d", b.Len(), len(params))
	}
}

func TestBatchMetricsAggregate(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	params := gridParams(5, 5)
	b := NewBatch(len(params))
	b.Solve(params, Options{Metrics: m})

	var wantArcs, wantCross uint64
	for i := range params {
		wantArcs += uint64(b.Arcs[i])
		wantCross += uint64(b.Crossings[i])
	}
	if got := m.Solves.With(PathAnalytic.String()).Value(); got != uint64(len(params)) {
		t.Errorf("solves metric %d, want %d", got, len(params))
	}
	if got := m.Arcs.With(PathAnalytic.String()).Value(); got != wantArcs {
		t.Errorf("arcs metric %d, want %d", got, wantArcs)
	}
	if got := m.Crossings.Value(); got != wantCross {
		t.Errorf("crossings metric %d, want %d", got, wantCross)
	}
	if got := m.RK45Fallbacks.Value(); got != 0 {
		t.Errorf("fallbacks metric %d, want 0", got)
	}
}

// TestBatchSolveAllocs is the zero-alloc gate of ISSUE #10: a warm Batch
// re-solving the same points must not touch the heap.
func TestBatchSolveAllocs(t *testing.T) {
	params := gridParams(5, 5)
	b := NewBatch(len(params))
	b.Solve(params, Options{}) // warm the buffers
	avg := testing.AllocsPerRun(10, func() {
		b.Solve(params, Options{})
	})
	if avg != 0 {
		t.Fatalf("warm batch solve allocates %.1f times per call, want 0", avg)
	}
}

func BenchmarkSolveBatch(b *testing.B) {
	params := gridParams(16, 16)
	batch := NewBatch(len(params))
	batch.Solve(params, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Solve(params, Options{})
	}
	b.StopTimer()
	pointsPerOp := float64(len(params))
	b.ReportMetric(pointsPerOp*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkSolveBatchRK45(b *testing.B) {
	params := gridParams(8, 8)
	batch := NewBatch(len(params))
	opts := Options{Mode: ModeOff}
	batch.Solve(params, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Solve(params, opts)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(params))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}
