package analytic

import (
	"math"

	"bcnphase/internal/core"
)

// arc is a value-type mirror of core.NewArc's three closed-form
// families. The arithmetic below is copied operation-for-operation from
// internal/core/arcs.go — including the ArcDiscTol near-degenerate band
// — so every junction quantity (switch times, y-zeros, evaluated
// states) is bit-identical to what core.Solve computes, without the
// interface boxing and per-arc allocation of the core representation.
// Any change to the core forms must land here too; the cross-engine
// equality tests in engine_test.go enforce the pairing.
type arc struct {
	kind core.ArcKind
	// x, y, s are the state components and the switch coordinate
	// x + k·y, interpreted per kind (see form).
	x, y, s form
	// scale is the regime's characteristic time (core.Arc.TimeScale).
	scale float64
}

// form is one scalar component of an arc. Interpretation by kind:
//
//	spiral:   a·e^{b·t}·cos(c·t + d)        (cosForm{A, alpha, beta, phi})
//	node:     a·e^{b·t} + c·e^{d·t}         (twoExp{c1, l1, c2, l2})
//	critical: (a + b·t)·e^{c·t}             (linExp{p, q, l}; d unused)
type form struct {
	a, b, c, d float64
}

func (f form) at(kind core.ArcKind, t float64) float64 {
	switch kind {
	case core.ArcSpiral:
		return f.a * math.Exp(f.b*t) * math.Cos(f.c*t+f.d)
	case core.ArcNode:
		return f.a*math.Exp(f.b*t) + f.c*math.Exp(f.d*t)
	default:
		return (f.a + f.b*t) * math.Exp(f.c*t)
	}
}

// firstZeroAfter returns the first zero strictly after t0, mirroring
// cosForm/twoExp/linExp.firstZeroAfter exactly.
func (f form) firstZeroAfter(kind core.ArcKind, t0 float64) (float64, bool) {
	switch kind {
	case core.ArcSpiral:
		if f.a == 0 || f.c <= 0 {
			return 0, false
		}
		nf := (f.c*t0 + f.d - math.Pi/2) / math.Pi
		n := math.Floor(nf) + 1
		t := (math.Pi/2 + n*math.Pi - f.d) / f.c
		for t <= t0 {
			n++
			t = (math.Pi/2 + n*math.Pi - f.d) / f.c
		}
		return t, true
	case core.ArcNode:
		if f.a == 0 || f.c == 0 {
			return 0, false
		}
		r := -f.c / f.a
		if r <= 0 {
			return 0, false
		}
		t := math.Log(r) / (f.b - f.d)
		if t <= t0 {
			return 0, false
		}
		return t, true
	default:
		if f.b == 0 {
			return 0, false
		}
		t := -f.a / f.b
		if t <= t0 {
			return 0, false
		}
		return t, true
	}
}

func (a arc) at(t float64) (float64, float64) {
	return a.x.at(a.kind, t), a.y.at(a.kind, t)
}

func (a arc) firstYZero(after float64) (float64, bool) {
	return a.y.firstZeroAfter(a.kind, after)
}

func (a arc) firstSwitch(after float64) (float64, bool) {
	return a.s.firstZeroAfter(a.kind, after)
}

// makeArc classifies and constructs the regime λ² + mλ + n = 0 from
// (x0, y0) with switching slope k. ok is false for an unconstructible
// regime (non-positive coefficients), the same inputs core.NewArc
// rejects.
func makeArc(m, n, k, x0, y0 float64) (arc, bool) {
	if !(m > 0) || !(n > 0) || !(k > 0) {
		return arc{}, false
	}
	disc := m*m - 4*n
	if d := core.ArcDiscTol * m * m; disc < d && disc > -d {
		return makeCritical(-m/2, k, x0, y0), true
	}
	if disc < 0 {
		alpha := -m / 2
		beta := math.Sqrt(-disc) / 2
		return makeSpiral(alpha, beta, k, x0, y0), true
	}
	s := math.Sqrt(disc)
	l1 := (-m - s) / 2
	l2 := (-m + s) / 2
	return makeNode(l1, l2, k, x0, y0), true
}

func makeSpiral(alpha, beta, k, x0, y0 float64) arc {
	sinTerm := (alpha*x0 - y0) / beta
	amp := math.Hypot(x0, sinTerm)
	phi := math.Atan2(sinTerm, x0)
	rhoY := math.Hypot(alpha, beta)
	psiY := math.Atan2(beta, alpha)
	rhoS := math.Hypot(1+k*alpha, k*beta)
	psiS := math.Atan2(k*beta, 1+k*alpha)
	return arc{
		kind:  core.ArcSpiral,
		x:     form{a: amp, b: alpha, c: beta, d: phi},
		y:     form{a: amp * rhoY, b: alpha, c: beta, d: phi + psiY},
		s:     form{a: amp * rhoS, b: alpha, c: beta, d: phi + psiS},
		scale: math.Pi / beta,
	}
}

func makeNode(l1, l2, k, x0, y0 float64) arc {
	a1 := (l2*x0 - y0) / (l2 - l1)
	a2 := (l1*x0 - y0) / (l1 - l2)
	return arc{
		kind:  core.ArcNode,
		x:     form{a: a1, b: l1, c: a2, d: l2},
		y:     form{a: a1 * l1, b: l1, c: a2 * l2, d: l2},
		s:     form{a: a1 * (1 + k*l1), b: l1, c: a2 * (1 + k*l2), d: l2},
		scale: 1 / math.Abs(l2),
	}
}

func makeCritical(l, k, x0, y0 float64) arc {
	a3 := x0
	a4 := y0 - l*x0
	return arc{
		kind:  core.ArcCritical,
		x:     form{a: a3, b: a4, c: l},
		y:     form{a: a3*l + a4, b: a4 * l, c: l},
		s:     form{a: a3*(1+k*l) + k*a4, b: a4 * (1 + k*l), c: l},
		scale: 1 / math.Abs(l),
	}
}
