//go:build race

package analytic

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive assertions skip under it.
const raceEnabled = true
