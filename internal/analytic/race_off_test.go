//go:build !race

package analytic

const raceEnabled = false
