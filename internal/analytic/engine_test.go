package analytic

import (
	"math"
	"testing"

	"bcnphase/internal/core"
)

// gridParams spans the gain plane used by the sweeps: a log-spaced
// Gi × Gd grid over the paper's example fabric, hitting all three arc
// kinds and every outcome class.
func gridParams(nGi, nGd int) []core.Params {
	base := core.PaperExample()
	var out []core.Params
	for i := 0; i < nGi; i++ {
		gi := 0.05 * math.Pow(400, float64(i)/float64(nGi-1)) // 0.05 … 20
		for j := 0; j < nGd; j++ {
			gd := 0.2 / 256 * math.Pow(512, float64(j)/float64(nGd-1)) // ~0.00078 … 0.4
			p := base
			p.Gi, p.Gd = gi, gd
			if p.Validate() != nil {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// TestSolveMatchesCoreAcrossGrid is the engine's central contract: for
// every grid point, the closed-form path reproduces core.Solve's
// classification bit for bit — the two run the same arithmetic in the
// same order — while the exact extremes dominate the sampled ones.
func TestSolveMatchesCoreAcrossGrid(t *testing.T) {
	s := NewSolver()
	for _, ignoreBuffer := range []bool{false, true} {
		points := 0
		for _, p := range gridParams(13, 13) {
			tr, err := core.Solve(p, core.SolveOptions{IgnoreBuffer: ignoreBuffer})
			if err != nil {
				t.Fatalf("core.Solve(%+v): %v", p, err)
			}
			res, err := s.Solve(p, Options{IgnoreBuffer: ignoreBuffer})
			if err != nil {
				t.Fatalf("analytic.Solve(%+v): %v", p, err)
			}
			points++
			id := map[bool]string{false: "buffered", true: "unbuffered"}[ignoreBuffer]
			if res.Path != PathAnalytic {
				t.Errorf("%s gi=%g gd=%g: path %v, want analytic", id, p.Gi, p.Gd, res.Path)
			}
			if res.Outcome != tr.Outcome {
				t.Errorf("%s gi=%g gd=%g: outcome %v, core %v", id, p.Gi, p.Gd, res.Outcome, tr.Outcome)
				continue
			}
			if res.Crossings != len(tr.Crossings) {
				t.Errorf("%s gi=%g gd=%g: crossings %d, core %d", id, p.Gi, p.Gd, res.Crossings, len(tr.Crossings))
			}
			if res.Arcs != len(tr.Segments) {
				t.Errorf("%s gi=%g gd=%g: arcs %d, core %d", id, p.Gi, p.Gd, res.Arcs, len(tr.Segments))
			}
			if res.Extrema != len(tr.Extrema) {
				t.Errorf("%s gi=%g gd=%g: extrema %d, core %d", id, p.Gi, p.Gd, res.Extrema, len(tr.Extrema))
			}
			if res.Rho != tr.Rho {
				t.Errorf("%s gi=%g gd=%g: rho %v, core %v (want bit-identical)", id, p.Gi, p.Gd, res.Rho, tr.Rho)
			}
			if res.EndT != tr.EndT || res.EndX != tr.EndX || res.EndY != tr.EndY {
				t.Errorf("%s gi=%g gd=%g: end (%v,%v,%v), core (%v,%v,%v)",
					id, p.Gi, p.Gd, res.EndT, res.EndX, res.EndY, tr.EndT, tr.EndX, tr.EndY)
			}
			// Exact extrema dominate the 64-sample polyline, and the
			// polyline can undershoot a spiral peak by at most
			// ~(π/64)²/2 ≈ 0.13% of the amplitude.
			slackHi := 2e-3*(math.Abs(res.MaxX)+p.Q0) + 1e-9
			if res.MaxX < tr.MaxX-1e-9 || res.MaxX > tr.MaxX+slackHi {
				t.Errorf("%s gi=%g gd=%g: MaxX %v vs core sampled %v", id, p.Gi, p.Gd, res.MaxX, tr.MaxX)
			}
			slackLo := 2e-3*(math.Abs(res.MinX)+p.Q0) + 1e-9
			if res.MinX > tr.MinX+1e-9 || res.MinX < tr.MinX-slackLo {
				// Exact MinX sits at or below the sampled one (the t = 0
				// launch knot counts here, see extremes), and the polyline
				// can only overshoot by its sampling error.
				t.Errorf("%s gi=%g gd=%g: MinX %v vs core sampled %v", id, p.Gi, p.Gd, res.MinX, tr.MinX)
			}
			// First-extremum knots agree with core's extremum list.
			if len(tr.Extrema) > 0 && !ignoreBuffer {
				first := tr.Extrema[0]
				var gotT, gotX float64
				if first.Max {
					gotT, gotX = res.FirstMaxT, res.FirstMaxX
				} else {
					gotT, gotX = res.FirstMinT, res.FirstMinX
				}
				// Overflow/underflow runs may truncate before the
				// (hypothetical) extremum core tallies; only compare when
				// the engine traversed it.
				if !math.IsNaN(gotT) && (gotT != first.T || gotX != first.X) {
					t.Errorf("%s gi=%g gd=%g: first extremum (%v,%v), core (%v,%v)",
						id, p.Gi, p.Gd, gotT, gotX, first.T, first.X)
				}
			}
		}
		if points < 100 {
			t.Fatalf("grid produced only %d valid points", points)
		}
	}
}

// TestRK45AgreesWithClosed pins the numerical baseline to the closed
// forms on representative stable, cyclic and overflowing points.
func TestRK45AgreesWithClosed(t *testing.T) {
	base := core.PaperExample()
	cases := []struct {
		name   string
		gi, gd float64
	}{
		{"paper-default", base.Gi, base.Gd},
		{"deep-stable", 0.1, 0.002},
		{"aggressive", 8, 0.25},
		{"slow-increase", 0.05, 0.02},
	}
	s := NewSolver()
	for _, tc := range cases {
		p := base
		p.Gi, p.Gd = tc.gi, tc.gd
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		closed, err := s.Solve(p, Options{})
		if err != nil {
			t.Fatalf("%s closed: %v", tc.name, err)
		}
		rk, err := s.Solve(p, Options{Mode: ModeOff})
		if err != nil {
			t.Fatalf("%s rk45: %v", tc.name, err)
		}
		if rk.Path != PathRK45 || closed.Path != PathAnalytic {
			t.Fatalf("%s: paths %v/%v", tc.name, closed.Path, rk.Path)
		}
		if rk.Outcome != closed.Outcome {
			t.Errorf("%s: outcome rk=%v closed=%v", tc.name, rk.Outcome, closed.Outcome)
		}
		if rk.Crossings != closed.Crossings {
			t.Errorf("%s: crossings rk=%d closed=%d", tc.name, rk.Crossings, closed.Crossings)
		}
		relTol := func(scale float64) float64 { return 1e-6 * scale }
		if d := math.Abs(rk.MaxX - closed.MaxX); d > relTol(math.Abs(closed.MaxX)+p.Q0) {
			t.Errorf("%s: MaxX rk=%v closed=%v (Δ=%g)", tc.name, rk.MaxX, closed.MaxX, d)
		}
		if d := math.Abs(rk.MinX - closed.MinX); d > relTol(math.Abs(closed.MinX)+p.Q0) {
			t.Errorf("%s: MinX rk=%v closed=%v (Δ=%g)", tc.name, rk.MinX, closed.MinX, d)
		}
		if closed.Rho > 0 {
			if d := math.Abs(rk.Rho - closed.Rho); d > 1e-6*closed.Rho {
				t.Errorf("%s: rho rk=%v closed=%v", tc.name, rk.Rho, closed.Rho)
			}
		}
	}
}

// TestOnCrossingHook checks the crossing observer sees the same
// junctions core.Solve records.
func TestOnCrossingHook(t *testing.T) {
	p := core.PaperExample()
	tr, err := core.Solve(p, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type hit struct {
		t, x, y float64
		to      core.Region
	}
	var hits []hit
	res, err := NewSolver().Solve(p, Options{
		OnCrossing: func(t, x, y float64, to core.Region) { hits = append(hits, hit{t, x, y, to}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != res.Crossings || len(hits) != len(tr.Crossings) {
		t.Fatalf("hook saw %d crossings, result %d, core %d", len(hits), res.Crossings, len(tr.Crossings))
	}
	for i, h := range hits {
		c := tr.Crossings[i]
		if h.t != c.T || h.x != c.X || h.y != c.Y || h.to != c.To {
			t.Errorf("crossing %d: hook (%v,%v,%v,%v) core (%v,%v,%v,%v)",
				i, h.t, h.x, h.y, h.to, c.T, c.X, c.Y, c.To)
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeOn, true},
		{"on", ModeOn, true},
		{"auto", ModeAuto, true},
		{"off", ModeOff, true},
		{"fast", 0, false},
		{"ON", 0, false},
	} {
		got, err := ParseMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, m := range []Mode{ModeOn, ModeAuto, ModeOff} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v: got %v, %v", m, back, err)
		}
	}
	if PathAnalytic.String() != "analytic" || PathRK45.String() != "rk45" {
		t.Errorf("path names: %q, %q", PathAnalytic, PathRK45)
	}
}

func TestSolveRejectsInvalidParams(t *testing.T) {
	var p core.Params // all zero
	if _, err := NewSolver().Solve(p, Options{}); err == nil {
		t.Fatal("want validation error for zero params")
	}
	if _, err := SolveOne(p, Options{Mode: ModeOff}); err == nil {
		t.Fatal("want validation error on rk45 path too")
	}
}

func TestSolveOneMatchesSolver(t *testing.T) {
	p := core.PaperExample()
	a, err := SolveOne(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSolver().Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feq := func(x, y float64) bool { return x == y || (math.IsNaN(x) && math.IsNaN(y)) }
	same := a.Outcome == b.Outcome && a.Path == b.Path && a.Arcs == b.Arcs &&
		a.Crossings == b.Crossings && a.Extrema == b.Extrema &&
		feq(a.MaxX, b.MaxX) && feq(a.MinX, b.MinX) && feq(a.Rho, b.Rho) &&
		feq(a.EndT, b.EndT) && feq(a.EndX, b.EndX) && feq(a.EndY, b.EndY) &&
		feq(a.FirstMaxT, b.FirstMaxT) && feq(a.FirstMaxX, b.FirstMaxX) &&
		feq(a.FirstMinT, b.FirstMinT) && feq(a.FirstMinX, b.FirstMinX)
	if !same {
		t.Fatalf("pooled result %+v != fresh result %+v", a, b)
	}
	if got, want := a.MaxQueue(p), p.Q0+a.MaxX; got != want {
		t.Errorf("MaxQueue = %v, want %v", got, want)
	}
	if got, want := a.MinQueue(p), p.Q0+a.MinX; got != want {
		t.Errorf("MinQueue = %v, want %v", got, want)
	}
}

// TestStartOverride mirrors core.Solve's Start option handling.
func TestStartOverride(t *testing.T) {
	p := core.PaperExample()
	start := [2]float64{-p.Q0 / 2, 1e8}
	tr, err := core.Solve(p, core.SolveOptions{Start: &start})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewSolver().Solve(p, Options{Start: &start})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != tr.Outcome || res.EndT != tr.EndT || res.EndX != tr.EndX {
		t.Fatalf("start override: got (%v, %v, %v), core (%v, %v, %v)",
			res.Outcome, res.EndT, res.EndX, tr.Outcome, tr.EndT, tr.EndX)
	}
}
