package analytic

import (
	"math"
	"testing"

	"bcnphase/internal/core"
)

// FuzzAnalyticVsRK45 drives random valid parameter points through both
// engines and demands they tell the same story: same outcome (up to
// classification-boundary ties), crossing counts, and excursions within
// the integrator's tolerance. Picked up by make fuzz-short.
func FuzzAnalyticVsRK45(f *testing.F) {
	f.Add(uint8(10), uint8(20), uint8(50), uint8(8), false)
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), true)
	f.Add(uint8(255), uint8(255), uint8(255), uint8(255), false)
	f.Add(uint8(77), uint8(3), uint8(128), uint8(30), true)

	f.Fuzz(func(t *testing.T, giRaw, gdRaw, nRaw, q0Raw uint8, ignoreBuffer bool) {
		p := core.PaperExample()
		// Spread the gains across decades, the population across 1..256
		// sources and the target queue across a factor of 8, staying
		// inside Params.Validate's feasible box.
		p.Gi = 0.05 * math.Pow(1.04, float64(giRaw))  // 0.05 … ~1100
		p.Gd = 0.4 * math.Pow(0.96, float64(gdRaw))   // 0.4 … ~0.00001
		p.N = 1 + int(nRaw)                           // 1 … 256
		p.Q0 = p.B / 8 * (1 + 7*float64(q0Raw)/255) / 2 // B/16 … B/2
		if err := p.Validate(); err != nil {
			t.Skip()
		}

		s := NewSolver()
		closed, err := s.Solve(p, Options{IgnoreBuffer: ignoreBuffer})
		if err != nil {
			t.Fatalf("closed: %v", err)
		}
		rk, err := s.Solve(p, Options{Mode: ModeOff, IgnoreBuffer: ignoreBuffer})
		if err != nil {
			t.Fatalf("rk45: %v", err)
		}

		// Near a classification boundary (contraction ratio within a whisker
		// of 1, or an excursion grazing a buffer wall) the two engines may
		// legitimately disagree on the label; everywhere else they must not.
		borderline := closed.Rho > 0 && math.Abs(closed.Rho-1) < 1e-3
		if !ignoreBuffer {
			margin := 1e-3 * p.B
			if p.B-p.Q0-closed.MaxX < margin && closed.MaxX < p.B-p.Q0+margin {
				borderline = true
			}
			if closed.MinX+p.Q0 < margin && closed.MinX > -p.Q0-margin {
				borderline = true
			}
		}
		if closed.Outcome != rk.Outcome {
			if !borderline {
				t.Fatalf("outcome closed=%v rk=%v (gi=%g gd=%g n=%d q0=%g ignoreBuffer=%v, rho=%v maxX=%v)",
					closed.Outcome, rk.Outcome, p.Gi, p.Gd, p.N, p.Q0, ignoreBuffer, closed.Rho, closed.MaxX)
			}
			return // labels differ at a genuine boundary; states incomparable
		}
		if closed.Crossings != rk.Crossings && !borderline {
			t.Fatalf("crossings closed=%d rk=%d (gi=%g gd=%g)", closed.Crossings, rk.Crossings, p.Gi, p.Gd)
		}
		tol := func(scale float64) float64 { return 1e-5*scale + 1e-7 }
		if d := math.Abs(closed.MaxX - rk.MaxX); d > tol(math.Abs(closed.MaxX)+p.Q0) && !borderline {
			t.Fatalf("MaxX closed=%v rk=%v Δ=%g (gi=%g gd=%g)", closed.MaxX, rk.MaxX, d, p.Gi, p.Gd)
		}
		if d := math.Abs(closed.MinX - rk.MinX); d > tol(math.Abs(closed.MinX)+p.Q0) && !borderline {
			t.Fatalf("MinX closed=%v rk=%v Δ=%g (gi=%g gd=%g)", closed.MinX, rk.MinX, d, p.Gi, p.Gd)
		}
		if closed.Rho > 0 && rk.Rho > 0 && !borderline {
			if d := math.Abs(closed.Rho - rk.Rho); d > 1e-5*closed.Rho {
				t.Fatalf("rho closed=%v rk=%v (gi=%g gd=%g)", closed.Rho, rk.Rho, p.Gi, p.Gd)
			}
		}
	})
}
