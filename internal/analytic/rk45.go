package analytic

import (
	"fmt"
	"math"

	"bcnphase/internal/core"
	"bcnphase/internal/ode"
)

// rkScratch holds the RK45 path's reusable state buffer.
type rkScratch struct {
	y0 []float64
}

// rkSegment is one numerically integrated regime segment: the piece of
// trajectory from a junction to the next switching-line crossing,
// boundary hit, or settled glide.
type rkSegment struct {
	tEnd       float64
	xEnd, yEnd float64
	// switched is true when the segment ended at a switching-line
	// crossing (false for a settled glide).
	switched bool
	// boundary/hiBoundary mark an overflow (hi) or underflow (lo) hit.
	boundary, hiBoundary bool
	// hasExtremum records the first y-zero traversed inside the segment.
	hasExtremum          bool
	tExtremum, xExtremum float64
}

// solveRK45 classifies one point by stitched Dormand-Prince integration
// of the piecewise-linear regimes, using the same termination logic as
// the closed-form path but knowing nothing about the solution forms —
// the eigenstructure is consulted only for time scales (step caps and
// integration horizons), never for states. It is the ModeOff validation
// baseline and the non-finite fallback.
func (s *Solver) solveRK45(p core.Params, opts Options) (Result, error) {
	k := p.K()
	x, y := opts.Start[0], opts.Start[1]
	tGlobal := 0.0

	tolX := opts.ConvergeTol * p.Q0
	tolY := opts.ConvergeTol * p.C
	xHi := p.B - p.Q0
	xLo := -p.Q0

	res := Result{Path: PathRK45}
	ext := newExtremes(x)
	s.enterDecrease = s.enterDecrease[:0]
	bufferCheckedRounds := 0

	finish := func(t, xf, yf float64) {
		ext.add(xf)
		res.EndT, res.EndX, res.EndY = t, xf, yf
		ext.finishInto(&res)
	}

	region := p.RegionAt(x, y)
	for arcIdx := 0; arcIdx < opts.MaxArcs; arcIdx++ {
		lin := p.RegionLinear(region)
		if !(lin.M > 0) || !(lin.N > 0) || !(k > 0) {
			return res, fmt.Errorf("%w: regime coefficients m=%v, n=%v, k=%v must be positive",
				core.ErrInvalidParams, lin.M, lin.N, k)
		}
		ext.add(x)

		// Entered at or beyond a boundary and moving further out: an
		// immediate hit, as the closed path's entry-knot check rules.
		if !opts.IgnoreBuffer {
			switch {
			case x >= xHi && y > 0:
				finish(tGlobal, x, y)
				res.Outcome = core.OutcomeOverflow
				return res, nil
			case x <= xLo && y < 0:
				finish(tGlobal, x, y)
				res.Outcome = core.OutcomeUnderflow
				return res, nil
			}
		}

		seg, err := s.integrateArc(lin, k, region, x, y, tolX, tolY, xLo, xHi, opts.IgnoreBuffer)
		if err != nil {
			return res, err
		}
		if seg.hasExtremum {
			isMax := y > 0 || (y == 0 && x < 0)
			res.Extrema++
			ext.extremum(tGlobal+seg.tExtremum, seg.xExtremum, isMax)
		}
		if seg.boundary {
			finish(tGlobal+seg.tEnd, seg.xEnd, seg.yEnd)
			if seg.hiBoundary {
				res.Outcome = core.OutcomeOverflow
			} else {
				res.Outcome = core.OutcomeUnderflow
			}
			return res, nil
		}
		res.Arcs++

		xNext, yNext := seg.xEnd, seg.yEnd
		tGlobal += seg.tEnd

		if !seg.switched {
			finish(tGlobal, xNext, yNext)
			res.Outcome = core.OutcomeConverged
			return res, nil
		}

		next := core.Increase
		if yNext > 0 {
			next = core.Decrease
		}
		res.Crossings++
		if opts.OnCrossing != nil {
			opts.OnCrossing(tGlobal, xNext, yNext, next)
		}
		region = next
		if next == core.Decrease {
			s.enterDecrease = append(s.enterDecrease, math.Abs(xNext))
			bufferCheckedRounds++
		}

		if math.Abs(xNext) < tolX && math.Abs(yNext) < tolY {
			finish(tGlobal, xNext, yNext)
			res.Outcome = core.OutcomeConverged
			return res, nil
		}

		if n := len(s.enterDecrease); n >= 2 && s.enterDecrease[n-2] > 0 {
			rho := s.enterDecrease[n-1] / s.enterDecrease[n-2]
			res.Rho = rho
			switch {
			case math.Abs(rho-1) <= opts.CycleTol:
				finish(tGlobal, xNext, yNext)
				res.Outcome = core.OutcomeLimitCycle
				return res, nil
			case rho > 1+opts.CycleTol:
				if opts.IgnoreBuffer {
					finish(tGlobal, xNext, yNext)
					res.Outcome = core.OutcomeDiverging
					return res, nil
				}
			case !opts.DisableShortCircuit && bufferCheckedRounds >= 2:
				finish(tGlobal, xNext, yNext)
				res.Outcome = core.OutcomeConverged
				return res, nil
			}
		}
		x, y = xNext, yNext
	}
	finish(tGlobal, x, y)
	res.Outcome = core.OutcomeHorizon
	return res, nil
}

// integrateArc integrates one regime from (x0, y0) until the state exits
// through the switching line, hits a buffer boundary, or settles into
// the convergence box. The horizon doubles until one of those happens.
func (s *Solver) integrateArc(lin core.Linear, k float64, region core.Region, x0, y0, tolX, tolY, xLo, xHi float64, ignoreBuffer bool) (rkSegment, error) {
	f := func(_ float64, st, d []float64) {
		d[0] = st[1]
		d[1] = -lin.N*st[0] - lin.M*st[1]
	}
	scale := regimeScale(lin)
	epsArm := 1e-9 * scale

	// Exit direction: s = x + k·y rises out of the increase region and
	// falls out of the decrease region (ṡ = y at the line).
	dir := +1
	if region == core.Decrease {
		dir = -1
	}
	// The y-zero event is armed past epsArm with the sign y takes just
	// after the junction, so a start with y = 0 exactly (the canonical
	// launch) cannot fake an extremum at t ≈ 0.
	ySign := y0
	if ySign == 0 {
		ySign = -lin.N*x0 - lin.M*y0
	}
	if ySign == 0 {
		ySign = 1
	} else {
		ySign = math.Copysign(1, ySign)
	}
	events := []ode.Event{
		{Name: "switch", Direction: dir, Terminal: true,
			G: func(_ float64, st []float64) float64 { return st[0] + k*st[1] }},
		{Name: "yzero", Direction: 0,
			G: func(t float64, st []float64) float64 {
				if t <= epsArm {
					return ySign
				}
				return st[1]
			}},
	}
	if !ignoreBuffer {
		events = append(events,
			ode.Event{Name: "hi", Direction: +1, Terminal: true,
				G: func(_ float64, st []float64) float64 { return st[0] - xHi }},
			ode.Event{Name: "lo", Direction: -1, Terminal: true,
				G: func(_ float64, st []float64) float64 { return st[0] - xLo }},
		)
	}

	if cap(s.rk.y0) < 2 {
		s.rk.y0 = make([]float64, 2)
	}
	y0v := s.rk.y0[:2]

	horizon := 8 * scale
	for attempt := 0; attempt < 40; attempt++ {
		y0v[0], y0v[1] = x0, y0
		sol, err := ode.DormandPrince(f, 0, y0v, horizon, ode.Options{
			AbsTol: 1e-12, RelTol: 1e-10,
			MaxStep: scale / 8,
			Events:  events,
		})
		if err != nil {
			return rkSegment{}, fmt.Errorf("analytic: rk45 segment: %w", err)
		}
		var seg rkSegment
		for i := range sol.Events {
			hit := &sol.Events[i]
			switch hit.Name {
			case "yzero":
				if !seg.hasExtremum && hit.T > epsArm {
					seg.hasExtremum = true
					seg.tExtremum, seg.xExtremum = hit.T, hit.Y[0]
				}
			case "switch":
				seg.tEnd, seg.xEnd, seg.yEnd = hit.T, hit.Y[0], hit.Y[1]
				seg.switched = true
			case "hi", "lo":
				seg.tEnd, seg.xEnd, seg.yEnd = hit.T, hit.Y[0], hit.Y[1]
				seg.boundary = true
				seg.hiBoundary = hit.Name == "hi"
			}
		}
		if seg.switched || seg.boundary {
			return seg, nil
		}
		// No exit inside the horizon: a glide that has settled into the
		// convergence box ends the trajectory; otherwise widen and retry.
		_, yEnd := sol.Last()
		xe, ye := yEnd[0], yEnd[1]
		if math.Abs(xe) < tolX && math.Abs(ye) < tolY {
			seg.tEnd, seg.xEnd, seg.yEnd = horizon, xe, ye
			return seg, nil
		}
		horizon *= 2
	}
	return rkSegment{}, fmt.Errorf("analytic: rk45 segment found no exit within %g characteristic times", 8*math.Pow(2, 40))
}

// regimeScale is the regime's characteristic time: the spiral half-turn
// period, or 1/|λ_slow| for (near-)real eigenvalues — the same quantity
// core.Arc.TimeScale reports, used here only to size steps and horizons.
func regimeScale(lin core.Linear) float64 {
	disc := lin.M*lin.M - 4*lin.N
	if disc < 0 {
		return math.Pi / (math.Sqrt(-disc) / 2)
	}
	l2 := (-lin.M + math.Sqrt(disc)) / 2
	if l2 == 0 {
		return 2 / lin.M
	}
	return 1 / math.Abs(l2)
}
