package analytic

import "bcnphase/internal/telemetry"

// Metrics instruments the analytic engine. A nil *Metrics is inert (one
// nil comparison per solve); batch solves aggregate locally and flush
// the registry once per batch, not once per point.
type Metrics struct {
	// Solves counts classified points, split by execution path.
	Solves *telemetry.CounterVec
	// Arcs counts stitched arcs, split by execution path — the
	// analytic-vs-rk45 arc summary the CLIs print comes from here.
	Arcs *telemetry.CounterVec
	// Crossings counts switching-line crossings.
	Crossings *telemetry.Counter
	// Extrema counts recorded x-extrema.
	Extrema *telemetry.Counter
	// RK45Fallbacks counts ModeOn/ModeAuto points whose closed form went
	// non-finite and re-ran on the integrator. Nonzero values deserve a
	// look: the closed forms cover every valid regime.
	RK45Fallbacks *telemetry.Counter
	// Outcomes tallies verdicts by name.
	Outcomes *telemetry.CounterVec
}

// NewMetrics registers the analytic engine family on r. A nil registry
// yields a nil (inert) Metrics.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Solves:        r.CounterVec("analytic_solves_total", "points classified by the analytic engine", "path"),
		Arcs:          r.CounterVec("analytic_arcs_total", "arcs stitched by the analytic engine", "path"),
		Crossings:     r.Counter("analytic_crossings_total", "switching-line crossings stitched"),
		Extrema:       r.Counter("analytic_extrema_total", "x-extrema recorded"),
		RK45Fallbacks: r.Counter("analytic_rk45_fallbacks_total", "closed-form solves that went non-finite and re-ran on rk45"),
		Outcomes:      r.CounterVec("analytic_outcomes_total", "analytic engine verdicts", "outcome"),
	}
}

// observe folds one finished solve into the registry.
func (m *Metrics) observe(res *Result) {
	if m == nil {
		return
	}
	path := res.Path.String()
	m.Solves.With(path).Inc()
	m.Arcs.With(path).Add(uint64(res.Arcs))
	m.Crossings.Add(uint64(res.Crossings))
	m.Extrema.Add(uint64(res.Extrema))
	if res.Outcome != 0 {
		m.Outcomes.With(res.Outcome.String()).Inc()
	}
}
