package analytic

import (
	"math"
	"testing"

	"bcnphase/internal/core"
)

// TestNearDegenerateAgreesWithRK45 sweeps the increase-region gain
// through a whisker (1e-9 … 1e-15, both signs) of the repeated
// eigenvalue threshold and demands the closed-form engine and the RK45
// baseline agree within the cross-check tolerance at every offset —
// the near-degenerate band in core.NewArc exists precisely so the
// F-form's 1/√disc coefficient blowup cannot flip a verdict here.
func TestNearDegenerateAgreesWithRK45(t *testing.T) {
	base := core.PaperExample()
	giCrit := base.AThreshold() / (base.Ru * float64(base.N))
	s := NewSolver()
	for _, eps := range []float64{0, 1e-9, -1e-9, 1e-11, -1e-11, 1e-13, -1e-13, 1e-15, -1e-15} {
		p := base
		p.Gi = giCrit * (1 + eps)
		if err := p.Validate(); err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		closed, err := s.Solve(p, Options{})
		if err != nil {
			t.Fatalf("eps=%g closed: %v", eps, err)
		}
		rk, err := s.Solve(p, Options{Mode: ModeOff})
		if err != nil {
			t.Fatalf("eps=%g rk45: %v", eps, err)
		}
		if closed.Path != PathAnalytic {
			t.Fatalf("eps=%g: closed path fell back to %v", eps, closed.Path)
		}
		if closed.Outcome != rk.Outcome {
			t.Errorf("eps=%g: outcome closed=%v rk=%v", eps, closed.Outcome, rk.Outcome)
		}
		if closed.Crossings != rk.Crossings {
			t.Errorf("eps=%g: crossings closed=%d rk=%d", eps, closed.Crossings, rk.Crossings)
		}
		// 1e-5 relative: the integrator's event bisection resolves a steep
		// boundary crossing a few bits past the wall (time-resolution bound).
		if d := math.Abs(closed.MaxX - rk.MaxX); d > 1e-5*(math.Abs(closed.MaxX)+p.Q0) {
			t.Errorf("eps=%g: MaxX closed=%v rk=%v (Δ=%g)", eps, closed.MaxX, rk.MaxX, d)
		}
	}
}
