package chaosnet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/cluster"
)

// chaosRow is the deterministic fake evaluation the upstream worker
// answers with; it carries a stability verdict so the Byzantine rewrite
// has something meaningful to lie about.
func chaosRow(pt cluster.GainPoint) cluster.Row {
	return cluster.Row{CSV: fmt.Sprintf("%.9g,%.9g,stable,1,0", pt.Gi, pt.Gd)}
}

// upstream is a minimal honest bcnd stand-in speaking the cluster wire
// JSON: signed shard artifacts on /v1/jobs, liveness on /statusz.
func upstream(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var requests atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		var env struct {
			Kind  string             `json:"kind"`
			Shard *cluster.ShardSpec `json:"shard"`
		}
		if err := json.NewDecoder(r.Body).Decode(&env); err != nil || env.Shard == nil {
			http.Error(w, `{"error":"not a shard job"}`, http.StatusBadRequest)
			return
		}
		res := cluster.ShardResult{Index: env.Shard.Index, Rows: make([]cluster.Row, len(env.Shard.Points))}
		for i, pt := range env.Shard.Points {
			res.Rows[i] = chaosRow(pt)
		}
		cluster.SignShardResult(&res)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"key": "k", "kind": "shard", "shard": &res})
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		fmt.Fprint(w, `{"draining":false,"workers":2}`)
	})
	mux.HandleFunc("GET /blob", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		_, _ = w.Write(bytes.Repeat([]byte("payload-"), 512))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &requests
}

func startProxy(t *testing.T, cfg Config) (*Proxy, string) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts.URL
}

func testShardJob(t *testing.T, proxyURL string) (cluster.ShardResult, []cluster.Row) {
	t.Helper()
	grid := cluster.GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 0.001, GdHi: 0.1, Steps: 4}
	points := grid.Points()[:8]
	honest := make([]cluster.Row, len(points))
	for i, pt := range points {
		honest[i] = chaosRow(pt)
	}
	body, err := json.Marshal(map[string]any{
		"kind": "shard", "timeout_ms": 5000,
		"shard": &cluster.ShardSpec{Grid: grid, Index: 0, Points: points},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(proxyURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("shard job through proxy: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("shard job: status %d err %v: %s", resp.StatusCode, err, raw)
	}
	var art struct {
		Shard *cluster.ShardResult `json:"shard"`
	}
	if err := json.Unmarshal(raw, &art); err != nil || art.Shard == nil {
		t.Fatalf("artifact decode: %v: %s", err, raw)
	}
	return *art.Shard, honest
}

func TestNewValidatesConfig(t *testing.T) {
	bad := []Config{
		{},
		{Target: "not a url"},
		{Target: "/relative"},
		{Target: "http://x", ResetProb: 1.5},
		{Target: "http://x", ByzantineProb: -0.1},
		{Target: "http://x", FlipProb: math.NaN()},
		{Target: "http://x", Latency: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	if _, err := New(Config{Target: "http://x"}); err != nil {
		t.Errorf("transparent config rejected: %v", err)
	}
}

func TestTransparentPassThrough(t *testing.T) {
	ts, requests := upstream(t)
	p, purl := startProxy(t, Config{Target: ts.URL, Seed: 1})
	resp, err := http.Get(purl + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"workers":2`) {
		t.Errorf("statusz through proxy = %s", raw)
	}
	res, honest := testShardJob(t, purl)
	if err := cluster.VerifyShardResult(res); err != nil {
		t.Errorf("pass-through result fails verification: %v", err)
	}
	for i := range honest {
		if res.Rows[i] != honest[i] {
			t.Errorf("row %d altered by transparent proxy", i)
		}
	}
	st := p.Stats()
	if st.Forwarded != 2 || st.Requests != 2 || requests.Load() != 2 {
		t.Errorf("stats = %+v, upstream saw %d", st, requests.Load())
	}
}

func TestLatencyDelaysRequests(t *testing.T) {
	ts, _ := upstream(t)
	_, purl := startProxy(t, Config{Target: ts.URL, Seed: 1, Latency: 30 * time.Millisecond})
	began := time.Now()
	resp, err := http.Get(purl + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(began); elapsed < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms of injected latency", elapsed)
	}
}

func TestResetSeversBeforeUpstream(t *testing.T) {
	ts, requests := upstream(t)
	p, purl := startProxy(t, Config{Target: ts.URL, Seed: 1, ResetProb: 1})
	if resp, err := http.Get(purl + "/statusz"); err == nil {
		resp.Body.Close()
		t.Fatal("reset-everything proxy answered")
	}
	if requests.Load() != 0 {
		t.Errorf("upstream saw %d requests through a resetting proxy", requests.Load())
	}
	if st := p.Stats(); st.Reset != 1 {
		t.Errorf("stats = %+v, want 1 reset", st)
	}
}

func TestPartitionToggle(t *testing.T) {
	ts, _ := upstream(t)
	p, purl := startProxy(t, Config{Target: ts.URL, Seed: 1})
	p.SetPartitioned(true)
	if !p.Partitioned() {
		t.Fatal("partition toggle lost")
	}
	if resp, err := http.Get(purl + "/statusz"); err == nil {
		resp.Body.Close()
		t.Fatal("partitioned proxy answered")
	}
	p.SetPartitioned(false)
	resp, err := http.Get(purl + "/statusz")
	if err != nil {
		t.Fatalf("healed partition still failing: %v", err)
	}
	resp.Body.Close()
	if st := p.Stats(); st.Partitioned != 1 {
		t.Errorf("stats = %+v, want 1 partitioned drop", st)
	}
}

func TestTruncateBreaksBody(t *testing.T) {
	ts, _ := upstream(t)
	p, purl := startProxy(t, Config{Target: ts.URL, Seed: 1, TruncateProb: 1})
	resp, err := http.Get(purl + "/blob")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("truncated body read cleanly")
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 truncation", st)
	}
}

func TestFlipCorruptsOneBit(t *testing.T) {
	ts, _ := upstream(t)
	clean, cleanURL := startProxy(t, Config{Target: ts.URL, Seed: 1})
	_ = clean
	resp, err := http.Get(cleanURL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	p, purl := startProxy(t, Config{Target: ts.URL, Seed: 1, FlipProb: 1})
	resp, err = http.Get(purl + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(got) != len(want) {
		t.Fatalf("flipped body length %d, want %d", len(got), len(want))
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ after one bit flip, want exactly 1", diff)
	}
	if st := p.Stats(); st.Flipped != 1 {
		t.Errorf("stats = %+v, want 1 flip", st)
	}
}

// TestByzantineRewriteStillVerifies is the property that makes the
// Byzantine mode interesting: the rewritten result passes every digest
// check — only comparing rows against an independent execution can
// expose it.
func TestByzantineRewriteStillVerifies(t *testing.T) {
	ts, _ := upstream(t)
	p, purl := startProxy(t, Config{Target: ts.URL, Seed: 1, ByzantineProb: 1, RewriteFraction: 0.25})
	res, honest := testShardJob(t, purl)
	if err := cluster.VerifyShardResult(res); err != nil {
		t.Fatalf("Byzantine result fails digest verification (it must not): %v", err)
	}
	changed := 0
	for i := range honest {
		if res.Rows[i] != honest[i] {
			changed++
		}
	}
	if changed < 1 {
		t.Error("Byzantine draw rewrote zero rows")
	}
	st := p.Stats()
	if st.Rewritten != 1 || st.RowsRewritten != uint64(changed) {
		t.Errorf("stats = %+v, want 1 rewrite of %d rows", st, changed)
	}
	// The lie is plausible: still one row per point, none empty.
	if len(res.Rows) != len(honest) {
		t.Errorf("row count changed: %d vs %d", len(res.Rows), len(honest))
	}
	for i, r := range res.Rows {
		if r.CSV == "" {
			t.Errorf("row %d rewritten to empty", i)
		}
	}
}

// TestSeededDecisionsAreReproducible: two identically-seeded proxies
// over the same serialized request sequence inject the same faults at
// the same positions.
func TestSeededDecisionsAreReproducible(t *testing.T) {
	ts, _ := upstream(t)
	pattern := func(seed int64) string {
		_, purl := startProxy(t, Config{Target: ts.URL, Seed: seed, ResetProb: 0.5})
		var b strings.Builder
		for i := 0; i < 24; i++ {
			resp, err := http.Get(purl + "/statusz")
			if err != nil {
				b.WriteByte('x')
				continue
			}
			resp.Body.Close()
			b.WriteByte('.')
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Errorf("same seed, different fault schedule:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Errorf("p=0.5 schedule degenerate: %s", a)
	}
}

// TestClusterSurvivesEveryChaosMode drives a real coordinator through
// the proxy in each fault mode and requires the merged map to stay
// byte-identical to the clean reference every time.
func TestClusterSurvivesEveryChaosMode(t *testing.T) {
	grid := cluster.GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 0.001, GdHi: 0.1, Steps: 5}
	points := grid.Points()
	refRows := make([]cluster.Row, len(points))
	for i, pt := range points {
		refRows[i] = chaosRow(pt)
	}
	want := string(cluster.RenderCSV(refRows))

	modes := []struct {
		name  string
		chaos [2]Config // applied to the two honest upstreams
		audit float64
	}{
		{name: "latency", chaos: [2]Config{{Latency: 2 * time.Millisecond, Jitter: 2 * time.Millisecond}, {Latency: time.Millisecond}}},
		{name: "stall", chaos: [2]Config{{StallProb: 0.3, Stall: 5 * time.Millisecond}, {}}},
		{name: "reset", chaos: [2]Config{{ResetProb: 0.3}, {}}},
		{name: "truncate", chaos: [2]Config{{TruncateProb: 0.3}, {}}},
		{name: "flip", chaos: [2]Config{{FlipProb: 0.2}, {}}},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			ts0, _ := upstream(t)
			ts1, _ := upstream(t)
			cfg0, cfg1 := mode.chaos[0], mode.chaos[1]
			cfg0.Target, cfg0.Seed = ts0.URL, 11
			cfg1.Target, cfg1.Seed = ts1.URL, 12
			_, u0 := startProxy(t, cfg0)
			_, u1 := startProxy(t, cfg1)
			c, err := cluster.New(cluster.Config{
				Workers: []string{u0, u1}, ShardSize: 2,
				HeartbeatInterval: -1, Seed: 1,
				RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
				MaxAttempts: 3, BreakerThreshold: -1, LeaseTimeout: 10 * time.Second,
				AuditFraction: mode.audit,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			out, err := c.Run(ctx, grid)
			if err != nil {
				t.Fatalf("%s sweep: %v", mode.name, err)
			}
			if string(out.CSV) != want {
				t.Errorf("%s: merged map diverges from clean reference", mode.name)
			}
		})
	}

	t.Run("partition-heal", func(t *testing.T) {
		ts0, _ := upstream(t)
		ts1, _ := upstream(t)
		p0, u0 := startProxy(t, Config{Target: ts0.URL, Seed: 21})
		_, u1 := startProxy(t, Config{Target: ts1.URL, Seed: 22})
		p0.SetPartitioned(true)
		var healed atomic.Bool
		c, err := cluster.New(cluster.Config{
			Workers: []string{u0, u1}, ShardSize: 2,
			HeartbeatInterval: -1, Seed: 1,
			RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
			MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond,
			LeaseTimeout: 10 * time.Second,
			OnShardDone: func(string, cluster.Shard) {
				if healed.CompareAndSwap(false, true) {
					p0.SetPartitioned(false)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		out, err := c.Run(ctx, grid)
		if err != nil {
			t.Fatalf("partition sweep: %v", err)
		}
		if string(out.CSV) != want {
			t.Error("partition-heal: merged map diverges from clean reference")
		}
		if p0.Stats().Partitioned < 1 {
			t.Error("partition never dropped a request")
		}
	})

	t.Run("byzantine", func(t *testing.T) {
		ts0, _ := upstream(t)
		ts1, _ := upstream(t)
		ts2, _ := upstream(t)
		pb, ub := startProxy(t, Config{Target: ts0.URL, Seed: 31, ByzantineProb: 1, RewriteFraction: 0.05})
		_, u1 := startProxy(t, Config{Target: ts1.URL, Seed: 32})
		_, u2 := startProxy(t, Config{Target: ts2.URL, Seed: 33})
		c, err := cluster.New(cluster.Config{
			Workers: []string{ub, u1, u2}, ShardSize: 2,
			HeartbeatInterval: -1, Seed: 1, AuditFraction: 1,
			RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
			MaxAttempts: 2, LeaseTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		out, err := c.Run(ctx, grid)
		if err != nil {
			t.Fatalf("byzantine sweep: %v", err)
		}
		if string(out.CSV) != want {
			t.Error("byzantine: merged map carries rewritten rows")
		}
		if pb.Stats().Rewritten >= 1 {
			if got := c.Metrics().AuditQuarantined.Value(); got != 1 {
				t.Errorf("cluster_audit_quarantined_workers_total = %d, want 1", got)
			}
		}
	})
}

// FuzzRewriteArtifact: arbitrary bytes through the Byzantine rewriter
// must never panic, and whatever it claims to have rewritten must still
// pass digest verification.
func FuzzRewriteArtifact(f *testing.F) {
	res := cluster.ShardResult{Index: 2, Rows: []cluster.Row{{CSV: "1,2,stable,1,0"}, {CSV: "3,4,unstable,0,1"}}}
	cluster.SignShardResult(&res)
	seed, _ := json.Marshal(map[string]any{"key": "k", "kind": "shard", "shard": &res})
	f.Add(seed)
	f.Add([]byte(`{"shard":{"index":1,"rows":[{"csv":"a"}]}}`))
	f.Add([]byte(`{"shard":null}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := New(Config{Target: "http://upstream", Seed: 9, ByzantineProb: 1, RewriteFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out, n := p.rewriteArtifact(data)
		if n == 0 {
			if !bytes.Equal(out, data) {
				t.Fatal("rewriteArtifact altered a body it claims it did not touch")
			}
			return
		}
		var art struct {
			Shard *cluster.ShardResult `json:"shard"`
		}
		if err := json.Unmarshal(out, &art); err != nil || art.Shard == nil {
			t.Fatalf("rewritten artifact does not decode: %v", err)
		}
		if err := cluster.VerifyShardResult(*art.Shard); err != nil {
			t.Fatalf("rewritten artifact fails digest verification: %v", err)
		}
	})
}
