package chaosnet

import (
	"bytes"
	"io"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"bcnphase/internal/cluster"
)

// TestHerdShedThenJitteredRetriesSpread: the proxy sheds the whole
// first wave with one identical Retry-After hint — the thundering-herd
// setup — and each client paces its retry through an independently
// seeded RetryPacer. The retries must all succeed and must NOT arrive
// as a second synchronized wave: the pacer's jitter has to spread them.
func TestHerdShedThenJitteredRetriesSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("herd: skipped with -short (waits out real Retry-After hints)")
	}
	us, upstreamHits := upstream(t)
	const herd = 6
	p, proxyURL := startProxy(t, Config{Target: us.URL, ShedFirst: herd, ShedRetryAfter: time.Second})

	var wg sync.WaitGroup
	failures := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pacer := cluster.NewRetryPacer(0, 0, int64(i+1))
			for attempt := 0; attempt < 5; attempt++ {
				resp, err := http.Get(proxyURL + "/blob")
				if err != nil {
					failures[i] = err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					if !bytes.Contains(body, []byte("payload-")) {
						failures[i] = io.ErrUnexpectedEOF
					}
					return
				}
				if !cluster.RetryableStatus(resp.StatusCode) {
					failures[i] = io.ErrUnexpectedEOF
					return
				}
				time.Sleep(pacer.Next(cluster.ParseRetryAfterHeader(resp.Header)))
			}
			failures[i] = io.EOF // attempts exhausted
		}(i)
	}
	wg.Wait()
	for i, err := range failures {
		if err != nil {
			t.Fatalf("herd client %d never got through: %v", i, err)
		}
	}
	if got := p.Stats().Shed; got != herd {
		t.Errorf("shed %d requests, want %d", got, herd)
	}
	if got := upstreamHits.Load(); got < herd {
		t.Errorf("upstream saw %d requests, want >= %d", got, herd)
	}

	// The first `herd` arrivals are the synchronized wave; everything
	// after is a paced retry. Jitter must have spread the retry wave.
	arrivals := p.Arrivals()
	if len(arrivals) < 2*herd {
		t.Fatalf("recorded %d arrivals, want >= %d", len(arrivals), 2*herd)
	}
	retries := append([]time.Time(nil), arrivals[herd:]...)
	sort.Slice(retries, func(i, j int) bool { return retries[i].Before(retries[j]) })
	spread := retries[len(retries)-1].Sub(retries[0])
	if spread < 50*time.Millisecond {
		t.Errorf("retry wave spread %v — the herd re-collided (want >= 50ms of jitter spread)", spread)
	}
}

// TestDripSlowReaderDeliversIntact: drip mode stretches a response over
// many flushed chunks without corrupting a byte.
func TestDripSlowReaderDeliversIntact(t *testing.T) {
	us, _ := upstream(t)
	p, proxyURL := startProxy(t, Config{Target: us.URL, DripBytes: 256, DripInterval: 2 * time.Millisecond})

	start := time.Now()
	resp, err := http.Get(proxyURL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want := bytes.Repeat([]byte("payload-"), 512)
	if !bytes.Equal(body, want) {
		t.Fatalf("dripped body corrupted: %d bytes, want %d", len(body), len(want))
	}
	if p.Stats().Dripped != 1 {
		t.Errorf("dripped = %d, want 1", p.Stats().Dripped)
	}
	// 4096 bytes in 256-byte chunks is 15 inter-chunk pauses.
	if elapsed < 15*2*time.Millisecond {
		t.Errorf("drip finished in %v — the pauses did not happen", elapsed)
	}
}
