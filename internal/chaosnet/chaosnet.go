// Package chaosnet is a deterministic, seedable network chaos proxy for
// the cluster's HTTP plane. It sits between the coordinator and one
// worker and injects the failures real data-center networks produce —
// added latency, stalls, connection resets, partitions, truncated
// bodies, flipped bytes — plus a Byzantine mode that rewrites shard
// result rows and re-signs them, the one failure the digest layer
// cannot catch (only the coordinator's re-execution audit can).
//
// Determinism contract (same discipline as internal/faults): every fault
// dimension draws from its own stream derived from Config.Seed via a
// splitmix64 scramble, so enabling or tuning one fault does not perturb
// another's sequence, and a serialized request sequence consults
// identical fault decisions across runs. Requests served concurrently
// interleave their draws in scheduling order — per-dimension streams
// keep even that reproducible per dimension count, not per request.
package chaosnet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bcnphase/internal/cluster"
)

// ErrConfig marks an invalid proxy configuration.
var ErrConfig = errors.New("chaosnet: invalid config")

// maxBodyBytes bounds any proxied body, matching the cluster wire cap
// with headroom for the integrity envelope.
const maxBodyBytes = 8 << 20

// Config describes one proxy's fault mix. The zero value (plus Target)
// is a transparent pass-through. Probabilities are per request.
type Config struct {
	// Target is the upstream worker base URL (required).
	Target string
	// Seed drives every fault stream; zero derives a fixed default so a
	// zero seed still names one reproducible proxy.
	Seed int64

	// Latency is a fixed delay added to every request, plus a uniform
	// extra draw in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// StallProb stalls a request for Stall before forwarding — the slow
	// worker whose lease expires under it.
	StallProb float64
	Stall     time.Duration
	// ResetProb severs the connection before anything is forwarded (the
	// client sees a reset/EOF, the upstream never hears the request).
	ResetProb float64
	// TruncateProb promises the full Content-Length, writes half the
	// body, then severs — the classic mid-transfer connection loss.
	TruncateProb float64
	// FlipProb flips one bit of the response body. Inside a JSON string
	// this yields a plausible-but-corrupt row the digest layer must
	// catch; on structure it yields a malformed envelope.
	FlipProb float64
	// ByzantineProb rewrites RewriteFraction of the rows in a shard
	// result response and re-signs the envelope, so every checksum
	// verifies and only re-execution on another worker exposes the lie.
	// At least one row is always rewritten on a Byzantine draw.
	ByzantineProb float64
	// RewriteFraction is the fraction of rows a Byzantine rewrite lies
	// about (default 0.05).
	RewriteFraction float64

	// ShedFirst answers the first N requests with 429 and ShedRetryAfter
	// (default 1s) as a fixed Retry-After — the thundering-herd
	// generator: every client in the herd gets the identical hint, so
	// only client-side jitter can decorrelate their retries. The proxy
	// records every arrival (see Arrivals) so tests can measure the
	// spread of the retry wave.
	ShedFirst      int
	ShedRetryAfter time.Duration
	// DripBytes, when positive, writes response bodies DripBytes at a
	// time with a DripInterval pause after each chunk — a slow reader /
	// congested return path that holds the upstream's response open far
	// beyond its service time.
	DripBytes    int
	DripInterval time.Duration

	// Client performs upstream requests; nil uses a default.
	Client *http.Client
	// Log, when non-nil, receives one line per injected fault.
	Log io.Writer
}

// Stats counts what the proxy actually injected.
type Stats struct {
	Requests    uint64 `json:"requests"`
	Partitioned uint64 `json:"partitioned"`
	Stalled     uint64 `json:"stalled"`
	Reset       uint64 `json:"reset"`
	Truncated   uint64 `json:"truncated"`
	Flipped     uint64 `json:"flipped"`
	Rewritten   uint64 `json:"rewritten"`
	// RowsRewritten counts individual rows lied about across all
	// Byzantine rewrites.
	RowsRewritten uint64 `json:"rows_rewritten"`
	Shed          uint64 `json:"shed"`
	Dripped       uint64 `json:"dripped"`
	Forwarded     uint64 `json:"forwarded"`
	UpstreamError uint64 `json:"upstream_errors"`
}

// Proxy is the chaos intermediary. Create with New, serve its Handler.
type Proxy struct {
	cfg    Config
	target *url.URL
	client *http.Client

	// One locked stream per fault dimension (faults.Plan discipline,
	// made concurrency-safe for the HTTP handler).
	stall, reset, truncate, flip, byz, pick, jitter *stream

	partitioned atomic.Bool
	shedLeft    atomic.Int64

	arrivalMu sync.Mutex
	arrivals  []time.Time

	requests, nPartitioned, stalled, nReset, truncated uint64
	flipped, rewritten, rowsRewritten, forwarded, errs uint64
	nShed, dripped                                     uint64
}

// defaultSeed mirrors faults.defaultSeed so a zero seed is reproducible.
const defaultSeed int64 = 0x62636e70

// New validates cfg and builds a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("%w: target URL required", ErrConfig)
	}
	target, err := url.Parse(cfg.Target)
	if err != nil || target.Scheme == "" || target.Host == "" {
		return nil, fmt.Errorf("%w: target %q is not an absolute URL", ErrConfig, cfg.Target)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"StallProb", cfg.StallProb}, {"ResetProb", cfg.ResetProb},
		{"TruncateProb", cfg.TruncateProb}, {"FlipProb", cfg.FlipProb},
		{"ByzantineProb", cfg.ByzantineProb}, {"RewriteFraction", cfg.RewriteFraction},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("%w: %s=%v must be in [0, 1]", ErrConfig, p.name, p.v)
		}
	}
	if cfg.Latency < 0 || cfg.Jitter < 0 || cfg.Stall < 0 {
		return nil, fmt.Errorf("%w: durations must be non-negative", ErrConfig)
	}
	if cfg.RewriteFraction == 0 {
		cfg.RewriteFraction = 0.05
	}
	if cfg.ShedFirst < 0 || cfg.DripBytes < 0 || cfg.DripInterval < 0 || cfg.ShedRetryAfter < 0 {
		return nil, fmt.Errorf("%w: shed/drip knobs must be non-negative", ErrConfig)
	}
	if cfg.ShedFirst > 0 && cfg.ShedRetryAfter == 0 {
		cfg.ShedRetryAfter = time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	p := &Proxy{
		cfg: cfg, target: target, client: client,
		stall:    newStream(seed, 1),
		reset:    newStream(seed, 2),
		truncate: newStream(seed, 3),
		flip:     newStream(seed, 4),
		byz:      newStream(seed, 5),
		pick:     newStream(seed, 6),
		jitter:   newStream(seed, 7),
	}
	p.shedLeft.Store(int64(cfg.ShedFirst))
	return p, nil
}

// SetPartitioned toggles a network partition: while set, every request
// is severed without reaching the upstream.
func (p *Proxy) SetPartitioned(on bool) { p.partitioned.Store(on) }

// Partitioned reports the current partition state.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// Stats snapshots the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:      atomic.LoadUint64(&p.requests),
		Partitioned:   atomic.LoadUint64(&p.nPartitioned),
		Stalled:       atomic.LoadUint64(&p.stalled),
		Reset:         atomic.LoadUint64(&p.nReset),
		Truncated:     atomic.LoadUint64(&p.truncated),
		Flipped:       atomic.LoadUint64(&p.flipped),
		Rewritten:     atomic.LoadUint64(&p.rewritten),
		RowsRewritten: atomic.LoadUint64(&p.rowsRewritten),
		Shed:          atomic.LoadUint64(&p.nShed),
		Dripped:       atomic.LoadUint64(&p.dripped),
		Forwarded:     atomic.LoadUint64(&p.forwarded),
		UpstreamError: atomic.LoadUint64(&p.errs),
	}
}

// Handler returns the proxy's HTTP surface.
func (p *Proxy) Handler() http.Handler { return http.HandlerFunc(p.serve) }

// sever abandons the connection without a response: the client observes
// EOF or a reset, exactly what a yanked cable produces.
func sever() { panic(http.ErrAbortHandler) }

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	atomic.AddUint64(&p.requests, 1)
	if p.cfg.ShedFirst > 0 {
		p.arrivalMu.Lock()
		p.arrivals = append(p.arrivals, time.Now())
		p.arrivalMu.Unlock()
		if p.shedLeft.Add(-1) >= 0 {
			atomic.AddUint64(&p.nShed, 1)
			p.logf("herd: shedding %s %s with Retry-After %v", r.Method, r.URL.Path, p.cfg.ShedRetryAfter)
			secs := int64(p.cfg.ShedRetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":"chaosnet herd shed","reason":"shed","retry_after_sec":%d}`, secs)
			return
		}
	}
	if p.partitioned.Load() {
		atomic.AddUint64(&p.nPartitioned, 1)
		p.logf("partitioned: dropping %s %s", r.Method, r.URL.Path)
		sever()
	}
	if d := p.delay(); d > 0 {
		time.Sleep(d)
	}
	if p.cfg.StallProb > 0 && p.stall.Float64() < p.cfg.StallProb {
		atomic.AddUint64(&p.stalled, 1)
		p.logf("stalling %s %s for %v", r.Method, r.URL.Path, p.cfg.Stall)
		time.Sleep(p.cfg.Stall)
	}
	if p.cfg.ResetProb > 0 && p.reset.Float64() < p.cfg.ResetProb {
		atomic.AddUint64(&p.nReset, 1)
		p.logf("resetting %s %s", r.Method, r.URL.Path)
		sever()
	}

	status, header, body, err := p.forward(r)
	if err != nil {
		atomic.AddUint64(&p.errs, 1)
		p.logf("upstream error for %s %s: %v", r.Method, r.URL.Path, err)
		http.Error(w, `{"error":"chaosnet upstream unreachable"}`, http.StatusBadGateway)
		return
	}
	atomic.AddUint64(&p.forwarded, 1)

	if p.isShardResult(r, status, body) && p.cfg.ByzantineProb > 0 && p.byz.Float64() < p.cfg.ByzantineProb {
		if rewritten, n := p.rewriteArtifact(body); n > 0 {
			body = rewritten
			atomic.AddUint64(&p.rewritten, 1)
			atomic.AddUint64(&p.rowsRewritten, uint64(n))
			p.logf("byzantine: rewrote %d rows of %s response", n, r.URL.Path)
		}
	}
	if p.cfg.FlipProb > 0 && len(body) > 0 && p.flip.Float64() < p.cfg.FlipProb {
		i := p.pick.Intn(len(body))
		body = append([]byte(nil), body...)
		body[i] ^= 1 << uint(p.pick.Intn(8))
		atomic.AddUint64(&p.flipped, 1)
		p.logf("flipped one bit of %s response", r.URL.Path)
	}

	for k, vs := range header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if p.cfg.TruncateProb > 0 && len(body) > 1 && p.truncate.Float64() < p.cfg.TruncateProb {
		atomic.AddUint64(&p.truncated, 1)
		p.logf("truncating %s response at %d of %d bytes", r.URL.Path, len(body)/2, len(body))
		_, _ = w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		sever()
	}
	if p.cfg.DripBytes > 0 && len(body) > p.cfg.DripBytes {
		atomic.AddUint64(&p.dripped, 1)
		p.logf("dripping %d bytes of %s response in %d-byte chunks", len(body), r.URL.Path, p.cfg.DripBytes)
		for off := 0; off < len(body); off += p.cfg.DripBytes {
			end := off + p.cfg.DripBytes
			if end > len(body) {
				end = len(body)
			}
			if _, err := w.Write(body[off:end]); err != nil {
				return
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			if p.cfg.DripInterval > 0 && end < len(body) {
				time.Sleep(p.cfg.DripInterval)
			}
		}
		return
	}
	_, _ = w.Write(body)
}

// Arrivals returns the recorded arrival time of every request seen
// while ShedFirst is configured, in order. The retry wave's spread —
// max minus min over the arrivals after the shed phase — is the herd
// decorrelation measurement.
func (p *Proxy) Arrivals() []time.Time {
	p.arrivalMu.Lock()
	defer p.arrivalMu.Unlock()
	return append([]time.Time(nil), p.arrivals...)
}

// delay is the fixed latency plus a jitter draw.
func (p *Proxy) delay() time.Duration {
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d += time.Duration(p.jitter.Int63n(int64(p.cfg.Jitter)))
	}
	return d
}

// forward performs the upstream request and buffers the full response so
// the corruption stages can operate on complete bodies.
func (p *Proxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	u := *p.target
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range r.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	h := resp.Header.Clone()
	h.Del("Content-Length")
	h.Del("Transfer-Encoding")
	return resp.StatusCode, h, out, nil
}

// isShardResult reports whether a response is a completed shard job
// artifact — the only payload the Byzantine mode rewrites.
func (p *Proxy) isShardResult(r *http.Request, status int, body []byte) bool {
	return r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" &&
		status == http.StatusOK && bytes.Contains(body, []byte(`"shard"`))
}

// rewriteArtifact decodes a shard artifact, lies about a sample of its
// rows (at least one), re-signs the result so every checksum still
// verifies, and re-encodes. Returns the original body and zero when the
// payload is not a rewritable artifact.
func (p *Proxy) rewriteArtifact(body []byte) ([]byte, int) {
	var art map[string]json.RawMessage
	if err := json.Unmarshal(body, &art); err != nil {
		return body, 0
	}
	raw, ok := art["shard"]
	if !ok {
		return body, 0
	}
	var res cluster.ShardResult
	if err := json.Unmarshal(raw, &res); err != nil || len(res.Rows) == 0 {
		return body, 0
	}
	n := 0
	for i := range res.Rows {
		if p.pick.Float64() < p.cfg.RewriteFraction {
			res.Rows[i] = lieAbout(res.Rows[i])
			n++
		}
	}
	if n == 0 {
		// A Byzantine draw always lies about something.
		i := p.pick.Intn(len(res.Rows))
		res.Rows[i] = lieAbout(res.Rows[i])
		n = 1
	}
	// Re-sign: the whole point of the Byzantine mode is rows that pass
	// every digest check and can only be caught by re-execution.
	cluster.SignShardResult(&res)
	reraw, err := json.Marshal(&res)
	if err != nil {
		return body, 0
	}
	art["shard"] = reraw
	out, err := json.Marshal(art)
	if err != nil {
		return body, 0
	}
	return out, n
}

// lieAbout perturbs one row plausibly: a stability verdict is inverted
// when present, otherwise the row text is minimally altered — either way
// the row stays well-formed and correctly checksummed once re-signed.
func lieAbout(r cluster.Row) cluster.Row {
	switch {
	case strings.Contains(r.CSV, "unstable"):
		r.CSV = strings.Replace(r.CSV, "unstable", "stable", 1)
	case strings.Contains(r.CSV, "stable"):
		r.CSV = strings.Replace(r.CSV, "stable", "unstable", 1)
	case r.CSV != "":
		r.CSV += "~"
	default:
		r.CSV = "~"
	}
	r.Violations++
	return r
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Log == nil {
		return
	}
	fmt.Fprintf(p.cfg.Log, "chaosnet: "+format+"\n", args...)
}

// stream is one locked fault-dimension RNG, derived from (seed, id) by
// the same splitmix64 scramble internal/faults uses.
type stream struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newStream(seed, id int64) *stream {
	z := uint64(seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return &stream{rng: rand.New(rand.NewSource(int64(z)))}
}

func (s *stream) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

func (s *stream) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Int63n(n)
}

func (s *stream) Intn(n int) int { return int(s.Int63n(int64(n))) }
