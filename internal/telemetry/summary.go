package telemetry

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"bcnphase/internal/runstate"
)

// Summary is the JSON document a CLI's -telemetry flag dumps next to
// its artifacts: the full metrics snapshot plus span-recorder totals.
type Summary struct {
	Tool         string   `json:"tool,omitempty"`
	WallSeconds  float64  `json:"wall_seconds,omitempty"`
	Metrics      Snapshot `json:"metrics"`
	Spans        int      `json:"spans,omitempty"`
	DroppedSpans uint64   `json:"dropped_spans,omitempty"`
}

// WriteSummary marshals s and writes it atomically to path.
func WriteSummary(path string, s Summary) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encode summary: %w", err)
	}
	return runstate.WriteFileAtomic(path, append(raw, '\n'), 0o644)
}

// DumpDir writes <dir>/telemetry.json (the metrics summary) and, when
// the tracer holds spans, <dir>/trace.jsonl, both atomically. It is the
// single implementation behind every CLI's -telemetry flag.
func DumpDir(dir, tool string, wallSeconds float64, reg *Registry, tr *Tracer) error {
	s := Summary{
		Tool:        tool,
		WallSeconds: wallSeconds,
		Metrics:     reg.Snapshot(),
	}
	if tr != nil {
		spans := tr.Spans()
		s.Spans = len(spans)
		s.DroppedSpans = tr.Dropped()
	}
	if err := WriteSummary(filepath.Join(dir, "telemetry.json"), s); err != nil {
		return err
	}
	if tr == nil || s.Spans == 0 {
		return nil
	}
	af, err := runstate.CreateAtomic(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		return fmt.Errorf("telemetry: trace export: %w", err)
	}
	defer af.Abort()
	if err := tr.WriteJSONL(af); err != nil {
		return fmt.Errorf("telemetry: trace export: %w", err)
	}
	return af.Commit()
}
