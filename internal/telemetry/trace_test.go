package telemetry

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeClock yields a strictly advancing deterministic time.
func fakeClock() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestTracerSpansAndParents(t *testing.T) {
	tr := NewTracer(8, fakeClock())
	root := tr.Start("solve")
	child := tr.StartChild("arc", root.ID())
	child.SetAttr("region", "increase")
	child.End()
	root.End()
	root.End() // double End records once

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring order is completion order: child first.
	if spans[0].Name != "arc" || spans[1].Name != "solve" {
		t.Fatalf("order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("parent link broken: %+v", spans)
	}
	if spans[0].Attrs[0].Key != "region" || spans[0].Attrs[0].Value != "increase" {
		t.Fatalf("attrs: %+v", spans[0].Attrs)
	}
	if spans[0].Duration <= 0 || spans[1].Duration <= 0 {
		t.Fatalf("durations not positive: %+v", spans)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(3, fakeClock())
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d, want 3", len(spans))
	}
	// Oldest two evicted: ids 3,4,5 remain in order.
	if spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("wrong survivors: %+v", spans)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.SetAttr("k", "v")
	sp.End()
	if sp.ID() != 0 || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatalf("nil tracer recorded state")
	}
}

func TestWriteJSONLAndDumpDir(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	r.Counter("points_total", "").Add(7)
	tr := NewTracer(8, fakeClock())
	sp := tr.Start("sweep")
	sp.End()

	if err := DumpDir(dir, "bcnsweep", 1.25, r, tr); err != nil {
		t.Fatal(err)
	}
	var sum Summary
	readJSON(t, filepath.Join(dir, "telemetry.json"), &sum)
	if sum.Tool != "bcnsweep" || sum.WallSeconds != 1.25 || sum.Spans != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	if got := sum.Metrics.Value("points_total"); got != 7 {
		t.Fatalf("points_total = %v, want 7", got)
	}
	raw := readFile(t, filepath.Join(dir, "trace.jsonl"))
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if len(lines) != 1 {
		t.Fatalf("trace.jsonl has %d lines, want 1", len(lines))
	}
	var span Span
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil || span.Name != "sweep" {
		t.Fatalf("bad span line %q: %v", lines[0], err)
	}

	// Without spans no trace file is written.
	dir2 := t.TempDir()
	if err := DumpDir(dir2, "bcnsim", 0, r, nil); err != nil {
		t.Fatal(err)
	}
	if fileExists(filepath.Join(dir2, "trace.jsonl")) {
		t.Fatalf("trace.jsonl written with no tracer")
	}
}
