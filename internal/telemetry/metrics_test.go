package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	cv := r.CounterVec("cv_total", "", "k")
	gv := r.GaugeVec("gv", "", "k")
	hv := r.HistogramVec("hv_seconds", "", nil, "k")
	r.GaugeFunc("gf", "", func() float64 { return 1 })

	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.Inc()
	g.Dec()
	h.Observe(1)
	cv.With("a").Inc()
	gv.With("a").Set(2)
	hv.With("a").Observe(1)

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments recorded state")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("nil histogram quantile = %v, want NaN", h.Quantile(0.5))
	}
	snap := r.Snapshot()
	if len(snap.Families) != 0 {
		t.Fatalf("nil registry snapshot has %d families", len(snap.Families))
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "jobs"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestVecChildrenAndSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("outcomes_total", "by outcome", "outcome")
	cv.With("spiral").Add(2)
	cv.With("converged").Inc()
	if cv.With("spiral") != cv.With("spiral") {
		t.Fatalf("With not stable")
	}
	snap := r.Snapshot()
	f, ok := snap.Get("outcomes_total")
	if !ok || len(f.Series) != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}
	// Sorted by label value: converged < spiral.
	if f.Series[0].LabelValues[0] != "converged" || f.Series[0].Value != 1 {
		t.Fatalf("series[0] = %+v", f.Series[0])
	}
	if f.Series[1].LabelValues[0] != "spiral" || f.Series[1].Value != 2 {
		t.Fatalf("series[1] = %+v", f.Series[1])
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	for _, fn := range []func(){
		func() { r.Gauge("x_total", "") },
		func() { r.CounterVec("x_total", "", "k") },
		func() { r.Counter("bad name", "") },
		func() { r.CounterVec("y_total", "", "bad-label") },
		func() { r.CounterVec("z_total", "", "__reserved") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 0.0
	r.GaugeFunc("live_depth", "live", func() float64 { return v })
	v = 42
	snap := r.Snapshot()
	if got := snap.Value("live_depth"); got != 42 {
		t.Fatalf("gauge func = %v, want 42", got)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "live_depth 42\n") {
		t.Fatalf("prometheus output missing gauge func:\n%s", buf.String())
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "count of a").Add(3)
	r.GaugeVec("b", "gauge b", "node").With(`we"ird\`).Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	// Binary-exact sample values so the rendered _sum is exact.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)
	// Empty family must still emit HELP/TYPE so scrapers can assert
	// presence before traffic arrives.
	r.CounterVec("empty_total", "no children yet", "k")

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP a_total count of a\n# TYPE a_total counter\na_total 3\n",
		"# TYPE b gauge\n" + `b{node="we\"ird\\"} 1.5` + "\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.5625\n",
		"lat_seconds_count 3\n",
		"# HELP empty_total no children yet\n# TYPE empty_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONSafe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("weird", "").Set(math.Inf(1))
	r.GaugeFunc("nan", "", func() float64 { return math.NaN() })
	h := r.Histogram("h_seconds", "", []float64{1})
	h.Observe(math.Inf(1)) // lands in +Inf bucket, sum becomes +Inf
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot not JSON-safe: %v", err)
	}
	if !strings.Contains(string(raw), `"le":"+Inf"`) {
		t.Fatalf("snapshot lost +Inf bucket: %s", raw)
	}
}

func TestValidateNames(t *testing.T) {
	good := []string{"a", "A_b:c", "_x", "x9", "ns_subsystem_total"}
	for _, n := range good {
		if err := ValidateMetricName(n); err != nil {
			t.Errorf("ValidateMetricName(%q) = %v", n, err)
		}
	}
	bad := []string{"", "9x", "a-b", "a b", "a\x00", "é"}
	for _, n := range bad {
		if err := ValidateMetricName(n); err == nil {
			t.Errorf("ValidateMetricName(%q) accepted", n)
		}
	}
	if err := ValidateLabelName("a:b"); err == nil {
		t.Errorf("label names must not allow colons")
	}
	if err := ValidateLabelName("__name__"); err == nil {
		t.Errorf("reserved label accepted")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for invalid args")
		}
	}()
	ExpBuckets(-1, 2, 3)
}
