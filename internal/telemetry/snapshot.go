package telemetry

import (
	"math"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time, deterministic copy of a registry:
// families sorted by name, series sorted by label values, all float
// fields clamped to JSON-safe finite values.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one named metric family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one child series. Counters and gauges fill Value;
// histograms fill Count, Sum, and Buckets (cumulative, Prometheus "le"
// bounds rendered as strings so +Inf survives JSON).
type SeriesSnapshot struct {
	LabelValues []string         `json:"label_values,omitempty"`
	Value       float64          `json:"value"`
	Count       uint64           `json:"count,omitempty"`
	Sum         float64          `json:"sum,omitempty"`
	Buckets     []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// jsonSafe clamps non-finite floats so the snapshot always marshals.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	return v
}

// formatBound renders a bucket bound the way Prometheus does.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Get returns the family with the given name, if present.
func (s Snapshot) Get(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Value returns the value of the first series of the named family
// (counter count or gauge value), or 0 if absent.
func (s Snapshot) Value(name string) float64 {
	f, ok := s.Get(name)
	if !ok || len(f.Series) == 0 {
		return 0
	}
	return f.Series[0].Value
}

// Snapshot captures the registry. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Families: []FamilySnapshot{}}
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		out.Families = append(out.Families, f.snapshot())
	}
	return out
}

func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{
		Name:   f.name,
		Help:   f.help,
		Kind:   f.kind.String(),
		Labels: append([]string(nil), f.labels...),
	}
	if f.valueFn != nil {
		fs.Series = []SeriesSnapshot{{Value: jsonSafe(f.valueFn())}}
		return fs
	}
	f.mu.RLock()
	type kv struct {
		key string
		c   child
	}
	kids := make([]kv, 0, len(f.children))
	for k, c := range f.children {
		kids = append(kids, kv{k, c})
	}
	f.mu.RUnlock()
	sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })

	fs.Series = make([]SeriesSnapshot, 0, len(kids))
	for _, kid := range kids {
		ss := SeriesSnapshot{}
		if len(f.labels) > 0 {
			ss.LabelValues = splitLabelKey(kid.key, len(f.labels))
		}
		switch c := kid.c.(type) {
		case *Counter:
			ss.Value = float64(c.Value())
		case *Gauge:
			ss.Value = jsonSafe(c.Value())
		case *Histogram:
			ss.Count = c.Count()
			ss.Sum = jsonSafe(c.Sum())
			var cum uint64
			for i := range c.counts {
				cum += c.counts[i].Load()
				bound := math.Inf(1)
				if i < len(c.bounds) {
					bound = c.bounds[i]
				}
				ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: formatBound(bound), Count: cum})
			}
		}
		fs.Series = append(fs.Series, ss)
	}
	return fs
}

func splitLabelKey(key string, n int) []string {
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\x1f' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}
