package telemetry

import (
	"strings"
	"testing"
)

// FuzzValidateNames fuzzes the metric-name/label-name validators (run
// with seeds by `make check` via the fuzz-seeds target). The property
// under test: a name the validator accepts must be renderable into the
// Prometheus text format and into a registry without panicking, and
// acceptance must agree with the documented character-class rules.
func FuzzValidateNames(f *testing.F) {
	for _, s := range []string{
		"", "a", "a_total", "ns:sub:metric", "9bad", "bad-name", "bad name",
		"_ok", "__reserved", "é", "a\x00b", "A9_z", ":", "le",
		strings.Repeat("x", 300),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		merr := ValidateMetricName(name)
		if (merr == nil) != metricNameOK(name) {
			t.Fatalf("ValidateMetricName(%q) = %v, reference says ok=%v", name, merr, metricNameOK(name))
		}
		lerr := ValidateLabelName(name)
		if (lerr == nil) != labelNameOK(name) {
			t.Fatalf("ValidateLabelName(%q) = %v, reference says ok=%v", name, lerr, labelNameOK(name))
		}
		// Accepted names must be usable end to end without panics and
		// must round-trip through the text format.
		if merr == nil {
			r := NewRegistry()
			r.Counter(name, "fuzz").Inc()
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Fatalf("WritePrometheus: %v", err)
			}
			if !strings.Contains(b.String(), name+" 1\n") {
				t.Fatalf("accepted name %q not rendered:\n%s", name, b.String())
			}
		}
		if merr == nil && lerr == nil {
			r := NewRegistry()
			r.CounterVec(name+"_total", "fuzz", name).With("v").Inc()
		}
	})
}

// metricNameOK is an independent reference implementation of the
// Prometheus metric-name rule [a-zA-Z_:][a-zA-Z0-9_:]*.
func metricNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range []byte(s) {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if i == 0 && !alpha {
			return false
		}
		if i > 0 && !alpha && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// labelNameOK mirrors [a-zA-Z_][a-zA-Z0-9_]* with the "__" reservation.
func labelNameOK(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range []byte(s) {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if i == 0 && !alpha {
			return false
		}
		if i > 0 && !alpha && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}
