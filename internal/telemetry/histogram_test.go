package telemetry

import (
	"math"
	"testing"
)

// Satellite coverage: histogram quantile/bucket edge cases — empty
// histogram, single sample, samples landing in the +Inf bucket, and
// degenerate bucket layouts.

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e_seconds", "", []float64{1, 2})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("fresh histogram not empty")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Fatalf("Quantile(%v) of empty = %v, want NaN", q, h.Quantile(q))
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s_seconds", "", []float64{1, 2, 4})
	h.Observe(1.5)
	if h.Count() != 1 || h.Sum() != 1.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	// The single sample is in (1,2]; every quantile interpolates inside
	// that bucket, so the answer must lie in [1,2].
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 1 || got > 2 {
			t.Fatalf("Quantile(%v) = %v, want within (1,2]", q, got)
		}
	}
}

func TestHistogramInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("i_seconds", "", []float64{1, 2})
	h.Observe(100) // beyond the last finite bound
	h.Observe(math.Inf(1))
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	// All mass in +Inf: Prometheus semantics cap the estimate at the
	// highest finite bound.
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
	snap := r.Snapshot()
	f, _ := snap.Get("i_seconds")
	bks := f.Series[0].Buckets
	if bks[len(bks)-1].LE != "+Inf" || bks[len(bks)-1].Count != 2 {
		t.Fatalf("+Inf bucket = %+v", bks[len(bks)-1])
	}
	if bks[0].Count != 0 || bks[1].Count != 0 {
		t.Fatalf("finite buckets should be empty: %+v", bks)
	}
}

func TestHistogramExplicitInfBoundStripped(t *testing.T) {
	r := NewRegistry()
	// +Inf and NaN bounds are stripped (the +Inf bucket is implicit);
	// duplicates collapse; order is normalized.
	h := r.Histogram("n_seconds", "", []float64{2, math.Inf(1), 1, 2, math.NaN()})
	if len(h.bounds) != 2 || h.bounds[0] != 1 || h.bounds[1] != 2 {
		t.Fatalf("bounds = %v, want [1 2]", h.bounds)
	}
}

func TestHistogramOnlyInfBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("only_inf_seconds", "", []float64{math.Inf(1)})
	h.Observe(3)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	// No finite bound exists to cap against: quantiles are undefined.
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("Quantile with no finite bounds = %v, want NaN", h.Quantile(0.5))
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 3})
	// 10 samples uniform in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	// Median rank 10 sits exactly at the top of the first bucket.
	if got := h.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %v, want 1", got)
	}
	// Rank 15 is halfway through (1,2].
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Quantile(0.75) = %v, want 1.5", got)
	}
	// Out-of-range q clamps rather than exploding.
	if got := h.Quantile(2); got != 2 {
		t.Fatalf("Quantile(2) = %v, want 2", got)
	}
	if got := h.Quantile(-1); math.IsNaN(got) {
		t.Fatalf("Quantile(-1) = NaN, want clamped finite value")
	}
}

func TestHistogramNegativeFirstBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("neg_units", "", []float64{-1, 1})
	h.Observe(-5)
	// The first bucket's bound is non-positive, so interpolating from
	// zero would be wrong; the bound itself is returned.
	if got := h.Quantile(0.5); got != -1 {
		t.Fatalf("Quantile(0.5) = %v, want -1", got)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nan_seconds", "", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN observation recorded")
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("job_seconds", "", []float64{1, 2}, "kind")
	hv.With("solve").Observe(0.5)
	hv.With("netsim").Observe(3)
	snap := r.Snapshot()
	f, ok := snap.Get("job_seconds")
	if !ok || len(f.Series) != 2 {
		t.Fatalf("want 2 series: %+v", f)
	}
	for _, s := range f.Series {
		if len(s.Buckets) != 3 {
			t.Fatalf("series %v has %d buckets, want 3", s.LabelValues, len(s.Buckets))
		}
	}
}
