package telemetry

import (
	"io"
	"strconv"
	"testing"
)

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 1000)
	}
}

func BenchmarkVecWith(b *testing.B) {
	r := NewRegistry()
	cv := r.CounterVec("bench_total", "", "k")
	keys := [4]string{"a", "b", "c", "d"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv.With(keys[i%4]).Inc()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter("c"+strconv.Itoa(i)+"_total", "").Add(uint64(i))
		r.Histogram("h"+strconv.Itoa(i)+"_seconds", "", nil).Observe(float64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.CounterVec("c"+strconv.Itoa(i)+"_total", "", "k").With("v").Add(uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.WritePrometheus(io.Discard)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(1024, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("bench").End()
	}
}
