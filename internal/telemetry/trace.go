package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a recorded span; 0 is "no span / no parent".
type SpanID uint64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one completed trace span.
type Span struct {
	ID       SpanID `json:"id"`
	Parent   SpanID `json:"parent,omitempty"`
	Name     string `json:"name"`
	StartNS  int64  `json:"start_unix_ns"`
	Duration int64  `json:"duration_ns"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer:
// recording never blocks and never grows, and once the ring wraps the
// oldest spans are dropped (counted in Dropped). A nil *Tracer is valid
// and records nothing.
type Tracer struct {
	nextID atomic.Uint64
	now    func() time.Time

	mu      sync.Mutex
	ring    []Span
	head    int // next write position
	n       int // spans currently held
	dropped uint64
}

// NewTracer returns a tracer holding at most capacity completed spans
// (a non-positive capacity defaults to 4096). now == nil uses time.Now.
func NewTracer(capacity int, now func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{ring: make([]Span, capacity), now: now}
}

// ActiveSpan is an in-flight span; End records it. A nil *ActiveSpan is
// valid and all its methods no-op, so spans can be started from a nil
// tracer unconditionally.
type ActiveSpan struct {
	tr    *Tracer
	span  Span
	start time.Time
	ended bool
}

// Start begins a root span. Returns nil on a nil tracer.
func (t *Tracer) Start(name string) *ActiveSpan {
	return t.StartChild(name, 0)
}

// StartChild begins a span with an explicit parent. Returns nil on a
// nil tracer.
func (t *Tracer) StartChild(name string, parent SpanID) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := t.now()
	return &ActiveSpan{
		tr:    t,
		start: now,
		span: Span{
			ID:      SpanID(t.nextID.Add(1)),
			Parent:  parent,
			Name:    name,
			StartNS: now.UnixNano(),
		},
	}
}

// ID returns the span's id (0 for nil).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// SetAttr annotates the span.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
}

// End completes the span and commits it to the ring. Calling End more
// than once records only the first call.
func (s *ActiveSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.span.Duration = s.tr.now().Sub(s.start).Nanoseconds()
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.head] = s.span
	t.head = (t.head + 1) % len(t.ring)
}

// Spans returns the recorded spans, oldest first. Nil tracer returns
// nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := (t.head - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped reports how many spans were evicted by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes the recorded spans as one JSON object per line,
// oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}
