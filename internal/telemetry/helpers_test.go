package telemetry

import (
	"encoding/json"
	"os"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func readJSON(t *testing.T, path string, into any) {
	t.Helper()
	if err := json.Unmarshal([]byte(readFile(t, path)), into); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
