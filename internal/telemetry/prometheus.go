package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered. Every
// registered family emits its # HELP and # TYPE header even when it has
// no series yet, so scrapers and CI checks can assert presence before
// first use.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, f := range snap.Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			labels := renderLabels(f.Labels, s.LabelValues)
			if f.Kind == "histogram" {
				for _, bk := range s.Buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name,
						renderLabelsExtra(f.Labels, s.LabelValues, "le", bk.LE), bk.Count)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, labels, formatValue(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, labels, s.Count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.Name, labels, formatValue(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func renderLabels(names, values []string) string {
	return renderLabelsExtra(names, values, "", "")
}

func renderLabelsExtra(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabelValue(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}
