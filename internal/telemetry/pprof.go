package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// RegisterPprof mounts the stdlib /debug/pprof handlers on mux so any
// server exposing a telemetry registry also exposes CPU, heap, mutex,
// and goroutine profiling.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. The profile is
// streamed, so the file is written directly (not atomically) — a
// crashed run leaves a truncated but still mostly-usable profile.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		rpprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile (after a GC, so the live set
// is accurate) to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	runtime.GC()
	if err := rpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return f.Close()
}
