package telemetry

import (
	"strconv"
	"sync"
	"testing"
)

// Satellite coverage: concurrent registry writers. Run under -race
// (make race / make check do) this exercises the double-checked child
// creation, CAS gauge adds, histogram bucket updates, and concurrent
// snapshots all at once.
func TestConcurrentRegistryWriters(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine registers the same families and hammers
			// overlapping children.
			c := r.Counter("w_total", "")
			cv := r.CounterVec("wv_total", "", "k")
			gauge := r.Gauge("wg", "")
			h := r.Histogram("wh_seconds", "", []float64{0.001, 0.01, 0.1, 1})
			hv := r.HistogramVec("whv_seconds", "", nil, "k")
			for i := 0; i < perG; i++ {
				c.Inc()
				cv.With(strconv.Itoa(i % 3)).Inc()
				gauge.Add(1)
				h.Observe(float64(i%100) / 100)
				hv.With("x").Observe(0.5)
				if i%500 == 0 {
					_ = r.Snapshot() // readers race writers
				}
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := r.Counter("w_total", "").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("wg", "").Value(); got != float64(total) {
		t.Fatalf("gauge = %v, want %d", got, total)
	}
	h := r.Histogram("wh_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	var sum uint64
	for _, k := range []string{"0", "1", "2"} {
		sum += r.CounterVec("wv_total", "", "k").With(k).Value()
	}
	if sum != total {
		t.Fatalf("vec total = %d, want %d", sum, total)
	}
}

func TestConcurrentTracer(t *testing.T) {
	tr := NewTracer(64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("work")
				sp.SetAttr("i", strconv.Itoa(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 64 {
		t.Fatalf("ring holds %d spans, want 64", len(spans))
	}
	if got := tr.Dropped(); got != 400-64 {
		t.Fatalf("dropped = %d, want %d", got, 400-64)
	}
}
