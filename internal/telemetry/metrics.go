package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric families a Registry can hold.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota + 1
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets is a latency-oriented default bucket layout in seconds,
// spanning microsecond solver steps to minute-scale sweep jobs.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous. It panics on a non-positive start, a factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: ExpBuckets(%g, %g, %d): invalid", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Registry holds named metric families. All methods are safe for
// concurrent use. A nil *Registry is valid and inert: every constructor
// on it returns a nil instrument whose methods no-op, so instrumented
// code never needs to branch on whether telemetry is enabled.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with its per-label-value children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64      // histogram families only
	valueFn func() float64 // gauge-func families only

	mu       sync.RWMutex
	children map[string]child // keyed by joined label values
}

type child interface{}

// labelKey joins label values with an unprintable separator so distinct
// value tuples cannot collide.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// register returns the family for name, creating it if absent. The
// shape (kind, label names, bucket count) of a re-registration must
// match the original; a mismatch panics, because it is a programming
// error that would silently merge unrelated series.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if err := ValidateMetricName(name); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := ValidateLabelName(l); err != nil {
			panic(err)
		}
	}
	if kind == KindHistogram {
		buckets = normalizeBuckets(buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || !equalStrings(f.labels, labels) || len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// normalizeBuckets sorts, dedups, and strips non-finite bounds; the
// implicit +Inf bucket is always present and never stored.
func normalizeBuckets(in []float64) []float64 {
	out := make([]float64, 0, len(in))
	for _, b := range in {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// child fetches or creates the child for the given label values.
func (f *family) child(values []string, make func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c
	}
	c = make()
	f.children[key] = c
	return c
}

// --- Counter ---

// Counter is a monotonically increasing uint64. A nil *Counter is valid
// and all its methods no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the unlabeled counter named name, registering it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil, func() child { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family with one child per label-value tuple.
type CounterVec struct {
	f *family
}

// CounterVec registers a labeled counter family. Returns nil on a nil
// registry.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the child counter for the given label values (nil on a
// nil vec).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() child { return new(Counter) }).(*Counter)
}

// --- Gauge ---

// Gauge is a float64 value that may go up or down. A nil *Gauge is
// valid and all its methods no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (which may be negative) via a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the unlabeled gauge named name. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil, func() child { return new(Gauge) }).(*Gauge)
}

// GaugeVec is a gauge family with one child per label-value tuple.
type GaugeVec struct {
	f *family
}

// GaugeVec registers a labeled gauge family. Returns nil on a nil
// registry.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: GaugeVec %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the child gauge for the given label values (nil on a nil
// vec).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() child { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the way to expose live state (channel depths, clock-derived
// uptime) without a writer goroutine. fn must be safe for concurrent
// use. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	if fn == nil {
		panic(fmt.Sprintf("telemetry: GaugeFunc %q with nil fn", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := ValidateMetricName(name); err != nil {
		panic(err)
	}
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as GaugeFunc", name))
	}
	r.families[name] = &family{name: name, help: help, kind: KindGauge, valueFn: fn}
}

// --- Histogram ---

// Histogram is a cumulative-bucket distribution over float64
// observations (Prometheus "le" semantics: bucket i counts v <=
// bound[i], with an implicit +Inf bucket). A nil *Histogram is valid
// and all its methods no-op. NaN observations are dropped.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket that crosses the target rank,
// matching Prometheus histogram_quantile: an empty histogram returns
// NaN, a rank landing in the +Inf bucket returns the highest finite
// bound, and the first bucket interpolates from zero (or from its own
// bound when that bound is non-positive).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			if i == len(h.bounds) { // +Inf bucket
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			} else if hi <= 0 {
				return hi
			}
			return lo + (hi-lo)*(target-float64(cum))/float64(n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Histogram returns the unlabeled histogram named name with the given
// bucket upper bounds (DefBuckets when nil). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.child(nil, func() child { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with one child per label-value
// tuple.
type HistogramVec struct {
	f *family
}

// HistogramVec registers a labeled histogram family (DefBuckets when
// buckets is nil). Returns nil on a nil registry.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: HistogramVec %q needs at least one label", name))
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the child histogram for the given label values (nil on a
// nil vec).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.child(values, func() child { return newHistogram(f.buckets) }).(*Histogram)
}
