// Package telemetry is the repo's zero-dependency observability layer:
// an atomic metrics registry (counters, gauges, histograms, labeled
// families), lightweight trace spans with a ring-buffer recorder, and
// pprof plumbing. It is built for hot simulation loops, so the disabled
// path must stay near-free: every instrument is nil-safe — a nil
// *Registry hands out nil instruments, and calling Inc/Set/Observe on a
// nil instrument is a single pointer comparison and a return. Code can
// therefore instrument unconditionally and let callers decide whether a
// registry exists, mirroring the nil-Checker convention in
// internal/invariant.
//
// Snapshots are deterministic (families and series sorted), JSON-safe
// (non-finite values are clamped), and exportable both as a JSON
// summary (WriteSummary) and in the Prometheus text exposition format
// (WritePrometheus).
package telemetry

import "fmt"

// ValidateMetricName checks a metric family name against the Prometheus
// data-model rule [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidateMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q (byte %d)", name, i)
		}
	}
	return nil
}

// ValidateLabelName checks a label name against the Prometheus rule
// [a-zA-Z_][a-zA-Z0-9_]*. Names beginning with "__" are reserved for
// internal use and rejected.
func ValidateLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty label name")
	}
	if len(name) >= 2 && name[0] == '_' && name[1] == '_' {
		return fmt.Errorf("telemetry: reserved label name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid label name %q (byte %d)", name, i)
		}
	}
	return nil
}
