package invariant

import (
	"math"
	"testing"
)

// FuzzCheckerConfig drives Config validation and, for accepted configs, a
// short randomized check sequence: whatever the policy, the Checker must
// never panic, Strict must error exactly when a predicate fails, and the
// tallies must account for every failure.
func FuzzCheckerConfig(f *testing.F) {
	f.Add(int8(0), 0, 1.0, 0.0, 10.0)
	f.Add(int8(1), 8, -5.0, 0.0, 10.0)
	f.Add(int8(2), 1, math.NaN(), -1.0, 1.0)
	f.Add(int8(3), 100, 11.0, 0.0, 10.0)
	f.Add(int8(9), -3, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, pol int8, samples int, v, lo, hi float64) {
		cfg := Config{Policy: Policy(pol), MaxSamples: samples}
		c, err := New(cfg)
		if err != nil {
			if cfg.Validate() == nil {
				t.Fatalf("New rejected a config Validate accepts: %+v", cfg)
			}
			return
		}
		if cfg.Validate() != nil {
			t.Fatalf("New accepted a config Validate rejects: %+v", cfg)
		}

		before := c.Violations()
		got, rerr := c.Range("fuzz-range", 0, v, lo, hi, 0)
		inRange := !math.IsNaN(v) && v >= lo && v <= hi
		switch {
		case !c.Enabled():
			if rerr != nil || got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				t.Fatalf("disabled checker acted: got=%v err=%v", got, rerr)
			}
		case inRange:
			if rerr != nil || c.Violations() != before {
				t.Fatalf("in-range value flagged: err=%v", rerr)
			}
		default:
			if c.Violations() != before+1 {
				t.Fatalf("violation not counted")
			}
			if (rerr != nil) != (c.Policy() == Strict) {
				t.Fatalf("policy %v returned err=%v", c.Policy(), rerr)
			}
			// An inverted interval (lo > hi) is empty: no clamp result can
			// land inside it, so the containment oracle only applies to
			// well-formed bounds. Clamp still must answer one of the bounds.
			if c.Policy() == Clamp && !math.IsNaN(v) {
				if lo <= hi && (got < lo || got > hi) {
					t.Fatalf("clamp left value %v outside [%v, %v]", got, lo, hi)
				}
				if got != lo && got != hi {
					t.Fatalf("clamp answered %v, neither bound of [%v, %v]", got, lo, hi)
				}
			}
		}

		// Monotone-time must tolerate any float sequence without panicking.
		_ = c.MonotoneTime(v)
		_ = c.MonotoneTime(lo)
		_ = c.MonotoneTime(hi)
		s := c.Stats()
		if s.Total != c.Violations() {
			t.Fatalf("Stats.Total=%d disagrees with Violations()=%d", s.Total, c.Violations())
		}
		var byPred uint64
		for _, n := range s.ByPredicate {
			byPred += n
		}
		if byPred != s.Total {
			t.Fatalf("per-predicate tallies %d != total %d", byPred, s.Total)
		}
		if uint64(len(s.First)) > s.Total {
			t.Fatalf("retained %d samples for %d violations", len(s.First), s.Total)
		}
	})
}
