package invariant

import "errors"

// StrictAbort reports whether err is (or wraps) the structured abort of
// a Strict checker, returning the violated invariant when it is. Serving
// and batch layers use it to classify a failed run: a strict abort means
// the *parameters* drove the model out of its feasible set (a property
// of the input region, worth quarantining), while any other error is an
// execution failure (worth retrying elsewhere).
func StrictAbort(err error) (Violation, bool) {
	var ie *InvariantError
	if errors.As(err, &ie) {
		return ie.Violation, true
	}
	return Violation{}, false
}
