// Package invariant is the runtime guardrail layer of the repository:
// a Checker evaluates registered model invariants — state finiteness,
// queue bounds 0 ≤ q ≤ B, per-flow rate bounds 0 ≤ rate ≤ C, monotone
// simulation time, σ-sign consistency with the active control branch,
// event-queue ordering — at every accepted solver step and delivered
// simulator event.
//
// The paper's whole argument rests on these invariants (Definition 1
// "strong stability" is literally "the queue stays in (0, B)"), yet a
// numerical solver or discrete-event engine will happily integrate
// through a silently-wrong state. The Checker makes every run
// self-checking, with three violation policies:
//
//   - Strict: the first violation aborts the run with a structured
//     *InvariantError carrying the failed predicate, the simulation time
//     and the offending state.
//   - Record: violations are counted per predicate and the first few are
//     retained verbatim; the run continues and callers surface the tally
//     (sweep CSV columns, netsim Result, CLI summaries).
//   - Clamp: range violations are projected back onto the feasible set
//     (and counted); non-clampable predicates degrade to Record. This is
//     the graceful-degradation mode for long batch runs.
//
// A nil *Checker is valid everywhere and checks nothing, so guarded code
// pays one nil comparison when invariant checking is off.
//
// Checker is NOT safe for concurrent use: solver and simulator runs are
// single-goroutine, and parameter sweeps attach one Checker per grid
// point.
package invariant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Policy selects how a Checker reacts to a violated invariant.
type Policy int

// The violation policies. The zero value is Off.
const (
	// Off disables checking entirely.
	Off Policy = iota
	// Record counts violations (plus first-N samples) and continues.
	Record
	// Strict aborts at the first violation with an *InvariantError.
	Strict
	// Clamp projects range violations back into the feasible set,
	// counting them; non-clampable predicates behave like Record.
	Clamp
)

// String names the policy ("off", "record", "strict", "clamp").
func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Record:
		return "record"
	case Strict:
		return "strict"
	case Clamp:
		return "clamp"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a CLI flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "none", "":
		return Off, nil
	case "record":
		return Record, nil
	case "strict":
		return Strict, nil
	case "clamp":
		return Clamp, nil
	default:
		return Off, fmt.Errorf("invariant: unknown policy %q (want off, record, strict or clamp)", s)
	}
}

// Violation is one observed invariant failure.
type Violation struct {
	// Predicate names the failed invariant (e.g. "queue-bounds").
	Predicate string
	// T is the simulation time of the violation in seconds.
	T float64
	// Detail describes the offending state.
	Detail string
}

// String renders the violation for logs and error messages.
func (v Violation) String() string {
	return fmt.Sprintf("%s at t=%.9g: %s", v.Predicate, v.T, v.Detail)
}

// InvariantError is the structured abort of a Strict checker: it names
// the failed predicate and carries the simulation time and state detail.
type InvariantError struct {
	Violation Violation
}

// Error describes the violated invariant.
func (e *InvariantError) Error() string {
	return "invariant violated: " + e.Violation.String()
}

// ErrConfig wraps Config validation failures.
var ErrConfig = errors.New("invariant: invalid config")

// Config configures a Checker.
type Config struct {
	// Policy selects the violation reaction (default Off).
	Policy Policy
	// MaxSamples bounds how many violations are retained verbatim in
	// Stats.First (default 8; 0 means the default, negative is invalid).
	MaxSamples int
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch c.Policy {
	case Off, Record, Strict, Clamp:
	default:
		return fmt.Errorf("%w: unknown policy %d", ErrConfig, int(c.Policy))
	}
	if c.MaxSamples < 0 {
		return fmt.Errorf("%w: MaxSamples=%d must be non-negative", ErrConfig, c.MaxSamples)
	}
	return nil
}

// Stats summarizes the violations a Checker observed.
type Stats struct {
	// Total counts every violation.
	Total uint64
	// Clamped counts violations repaired by the Clamp policy.
	Clamped uint64
	// ByPredicate tallies violations per predicate name (nil when none).
	ByPredicate map[string]uint64
	// First retains the first MaxSamples violations verbatim.
	First []Violation
}

// Summary renders a one-line human-readable tally: "ok" for a clean run,
// otherwise the per-predicate counts in lexical order.
func (s Stats) Summary() string {
	if s.Total == 0 {
		return "ok (0 violations)"
	}
	preds := make([]string, 0, len(s.ByPredicate))
	for p := range s.ByPredicate {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	var b strings.Builder
	fmt.Fprintf(&b, "%d violations", s.Total)
	if s.Clamped > 0 {
		fmt.Fprintf(&b, " (%d clamped)", s.Clamped)
	}
	b.WriteString(":")
	for _, p := range preds {
		fmt.Fprintf(&b, " %s=%d", p, s.ByPredicate[p])
	}
	return b.String()
}

// FirstPredicate returns the predicate name of the earliest retained
// violation, or "" when the run was clean.
func (s Stats) FirstPredicate() string {
	if len(s.First) == 0 {
		return ""
	}
	return s.First[0].Predicate
}

// Checker evaluates invariants under a violation policy. The zero value
// and the nil pointer both check nothing (policy Off).
type Checker struct {
	cfg   Config
	stats Stats
	// lastT backs the monotone-time predicate; NaN until the first
	// observation.
	lastT    float64
	haveLast bool
}

// New builds a Checker; a Config with Policy Off yields a Checker that
// counts nothing (identical in behavior to a nil *Checker).
func New(cfg Config) (*Checker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSamples == 0 {
		cfg.MaxSamples = 8
	}
	return &Checker{cfg: cfg}, nil
}

// NewPolicy builds a Checker with the default sample retention; Off
// returns nil so guarded code short-circuits on the nil check.
func NewPolicy(p Policy) *Checker {
	if p == Off {
		return nil
	}
	c, err := New(Config{Policy: p})
	if err != nil { // unreachable: every named policy validates
		panic(err)
	}
	return c
}

// Enabled reports whether the checker evaluates anything; nil-safe.
func (c *Checker) Enabled() bool {
	return c != nil && c.cfg.Policy != Off
}

// Policy returns the active policy (Off for a nil Checker).
func (c *Checker) Policy() Policy {
	if c == nil {
		return Off
	}
	return c.cfg.Policy
}

// Stats returns a copy of the tallies collected so far; nil-safe.
func (c *Checker) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := c.stats
	if c.stats.ByPredicate != nil {
		s.ByPredicate = make(map[string]uint64, len(c.stats.ByPredicate))
		for k, v := range c.stats.ByPredicate {
			s.ByPredicate[k] = v
		}
	}
	s.First = append([]Violation(nil), c.stats.First...)
	return s
}

// Violations returns the total violation count; nil-safe.
func (c *Checker) Violations() uint64 {
	if c == nil {
		return 0
	}
	return c.stats.Total
}

// Fail records a violation of pred at time t with the given state detail
// and returns the policy's verdict: a *InvariantError under Strict, nil
// otherwise (the run continues).
func (c *Checker) Fail(pred string, t float64, detail string) error {
	if !c.Enabled() {
		return nil
	}
	v := Violation{Predicate: pred, T: t, Detail: detail}
	c.stats.Total++
	if c.stats.ByPredicate == nil {
		c.stats.ByPredicate = make(map[string]uint64, 4)
	}
	c.stats.ByPredicate[pred]++
	if len(c.stats.First) < c.cfg.MaxSamples {
		c.stats.First = append(c.stats.First, v)
	}
	if c.cfg.Policy == Strict {
		return &InvariantError{Violation: v}
	}
	return nil
}

// Failf is Fail with deferred formatting: the detail is only rendered
// when the checker is enabled.
func (c *Checker) Failf(pred string, t float64, format string, args ...any) error {
	if !c.Enabled() {
		return nil
	}
	return c.Fail(pred, t, fmt.Sprintf(format, args...))
}

// Check asserts ok; a false ok is a violation of pred. The detail string
// is only built on failure.
func (c *Checker) Check(pred string, t float64, ok bool, format string, args ...any) error {
	if ok || !c.Enabled() {
		return nil
	}
	return c.Fail(pred, t, fmt.Sprintf(format, args...))
}

// Finite2 asserts both state components are finite (predicate "finite").
func (c *Checker) Finite2(t, x, y float64) error {
	if !c.Enabled() {
		return nil
	}
	if isFinite(x) && isFinite(y) {
		return nil
	}
	return c.Fail("finite", t, fmt.Sprintf("state (%v, %v) is not finite", x, y))
}

// Range asserts lo ≤ v ≤ hi (with an absolute slack tol ≥ 0 on both
// ends) and returns the possibly-repaired value: under Clamp a violating
// v is projected onto [lo, hi]; under Record the original v passes
// through; under Strict err is a *InvariantError. NaN never clamps — it
// has no nearest feasible point — and is reported under every policy.
func (c *Checker) Range(pred string, t, v, lo, hi, tol float64) (float64, error) {
	if !c.Enabled() {
		return v, nil
	}
	if math.IsNaN(v) {
		return v, c.Fail(pred, t, fmt.Sprintf("value NaN outside [%g, %g]", lo, hi))
	}
	if v >= lo-tol && v <= hi+tol {
		return v, nil
	}
	err := c.Fail(pred, t, fmt.Sprintf("value %g outside [%g, %g]", v, lo, hi))
	if err != nil {
		return v, err
	}
	if c.cfg.Policy == Clamp {
		c.stats.Clamped++
		if v < lo {
			return lo, nil
		}
		return hi, nil
	}
	return v, nil
}

// MonotoneTime asserts the observed time never decreases across calls
// (predicate "monotone-time").
func (c *Checker) MonotoneTime(t float64) error {
	if !c.Enabled() {
		return nil
	}
	if math.IsNaN(t) {
		return c.Fail("monotone-time", t, "time is NaN")
	}
	if c.haveLast && t < c.lastT {
		return c.Fail("monotone-time", t, fmt.Sprintf("time went backwards: %.12g after %.12g", t, c.lastT))
	}
	c.lastT = t
	c.haveLast = true
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
