package invariant

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"off", Off, true},
		{"none", Off, true},
		{"", Off, true},
		{"record", Record, true},
		{"Strict", Strict, true},
		{" clamp ", Clamp, true},
		{"bogus", Off, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err == nil) != c.ok {
			t.Fatalf("ParsePolicy(%q) err=%v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Off: "off", Record: "record", Strict: "strict", Clamp: "clamp", Policy(42): "Policy(42)",
	} {
		if got := p.String(); got != want {
			t.Fatalf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Policy: Record}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{Policy: Policy(99)}).Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("unknown policy: got %v, want ErrConfig", err)
	}
	if err := (Config{Policy: Record, MaxSamples: -1}).Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative MaxSamples: got %v, want ErrConfig", err)
	}
}

func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	if err := c.Fail("x", 0, "d"); err != nil {
		t.Fatalf("nil Fail: %v", err)
	}
	if err := c.Finite2(0, math.NaN(), 0); err != nil {
		t.Fatalf("nil Finite2: %v", err)
	}
	if v, err := c.Range("q", 0, -5, 0, 1, 0); err != nil || v != -5 {
		t.Fatalf("nil Range: v=%v err=%v", v, err)
	}
	if err := c.MonotoneTime(-1); err != nil {
		t.Fatalf("nil MonotoneTime: %v", err)
	}
	if s := c.Stats(); s.Total != 0 {
		t.Fatalf("nil Stats: %+v", s)
	}
	if c.Violations() != 0 || c.Policy() != Off {
		t.Fatal("nil accessor values wrong")
	}
}

func TestNewPolicyOffIsNil(t *testing.T) {
	if NewPolicy(Off) != nil {
		t.Fatal("NewPolicy(Off) should return nil")
	}
	if c := NewPolicy(Record); c == nil || !c.Enabled() {
		t.Fatal("NewPolicy(Record) should be enabled")
	}
}

func TestStrictAbortsWithStructuredError(t *testing.T) {
	c := NewPolicy(Strict)
	err := c.Failf("queue-bounds", 1.25, "q=%g above B=%g", 10.0, 5.0)
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InvariantError, got %T %v", err, err)
	}
	if ie.Violation.Predicate != "queue-bounds" || ie.Violation.T != 1.25 {
		t.Fatalf("violation = %+v", ie.Violation)
	}
	if !strings.Contains(ie.Error(), "queue-bounds") || !strings.Contains(ie.Error(), "1.25") {
		t.Fatalf("error text %q lacks predicate or time", ie.Error())
	}
}

func TestRecordCountsAndRetainsFirstN(t *testing.T) {
	c, err := New(Config{Policy: Record, MaxSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Fail("finite", float64(i), "boom"); err != nil {
			t.Fatalf("Record policy returned error: %v", err)
		}
	}
	if err := c.Fail("rate-bounds", 10, "boom"); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Total != 11 || s.ByPredicate["finite"] != 10 || s.ByPredicate["rate-bounds"] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.First) != 3 || s.First[0].T != 0 {
		t.Fatalf("First = %+v", s.First)
	}
	if s.FirstPredicate() != "finite" {
		t.Fatalf("FirstPredicate = %q", s.FirstPredicate())
	}
	if !strings.Contains(s.Summary(), "11 violations") {
		t.Fatalf("Summary = %q", s.Summary())
	}
}

func TestClampProjectsIntoFeasibleSet(t *testing.T) {
	c := NewPolicy(Clamp)
	v, err := c.Range("queue-bounds", 0.5, 12, 0, 10, 0)
	if err != nil || v != 10 {
		t.Fatalf("clamp high: v=%v err=%v", v, err)
	}
	v, err = c.Range("queue-bounds", 0.6, -3, 0, 10, 0)
	if err != nil || v != 0 {
		t.Fatalf("clamp low: v=%v err=%v", v, err)
	}
	// NaN cannot be projected; it is recorded but passed through.
	v, err = c.Range("queue-bounds", 0.7, math.NaN(), 0, 10, 0)
	if err != nil || !math.IsNaN(v) {
		t.Fatalf("clamp NaN: v=%v err=%v", v, err)
	}
	s := c.Stats()
	if s.Total != 3 || s.Clamped != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.Summary(), "clamped") {
		t.Fatalf("Summary = %q", s.Summary())
	}
}

func TestRangeTolerance(t *testing.T) {
	c := NewPolicy(Record)
	if _, err := c.Range("q", 0, 10.5, 0, 10, 1); err != nil {
		t.Fatal(err)
	}
	if c.Violations() != 0 {
		t.Fatalf("in-tolerance value counted: %d", c.Violations())
	}
	if _, _ = c.Range("q", 0, 11.5, 0, 10, 1); c.Violations() != 1 {
		t.Fatalf("out-of-tolerance value not counted")
	}
}

func TestMonotoneTime(t *testing.T) {
	c := NewPolicy(Record)
	for _, tm := range []float64{0, 1, 1, 2.5} {
		if err := c.MonotoneTime(tm); err != nil {
			t.Fatal(err)
		}
	}
	if c.Violations() != 0 {
		t.Fatalf("monotone sequence flagged: %d", c.Violations())
	}
	_ = c.MonotoneTime(2.0)
	if c.Violations() != 1 {
		t.Fatal("backwards time not flagged")
	}
	_ = c.MonotoneTime(math.NaN())
	if c.Violations() != 2 {
		t.Fatal("NaN time not flagged")
	}
}

func TestFinite2(t *testing.T) {
	c := NewPolicy(Record)
	if err := c.Finite2(0, 1, 2); err != nil || c.Violations() != 0 {
		t.Fatal("finite state flagged")
	}
	_ = c.Finite2(1, math.Inf(1), 0)
	_ = c.Finite2(2, 0, math.NaN())
	if c.Violations() != 2 {
		t.Fatalf("non-finite states not flagged: %d", c.Violations())
	}
}

func TestStatsCopyIsIndependent(t *testing.T) {
	c := NewPolicy(Record)
	_ = c.Fail("a", 0, "x")
	s := c.Stats()
	s.ByPredicate["a"] = 99
	s.First[0].Predicate = "mutated"
	if c.Stats().ByPredicate["a"] != 1 || c.Stats().First[0].Predicate != "a" {
		t.Fatal("Stats() aliases internal state")
	}
}

func TestCheckOnlyFormatsOnFailure(t *testing.T) {
	c := NewPolicy(Strict)
	if err := c.Check("p", 0, true, "should not matter %d", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Check("p", 3, false, "q=%g", 7.0); err == nil {
		t.Fatal("strict check passed a false predicate")
	} else if !strings.Contains(err.Error(), "q=7") {
		t.Fatalf("detail not formatted: %v", err)
	}
}
