package xcheck

import (
	"errors"
	"math"
	"strings"
	"testing"

	"bcnphase/internal/core"
)

// TestPaperExampleSelfCheck is the repository's self-checking version of
// the paper's Theorem 1 worked example: N=50 flows on a 10 Gbps link need
// (1+sqrt(Ru·Gi·N/(Gd·C)))·q0 ≈ 13.8 Mbit of buffer, so the 5 Mbit
// bandwidth-delay-product buffer is below the bound and the canonical
// trajectory overflows — which xcheck must flag as a strong-stability
// violation while all closed-form/numeric comparisons agree.
func TestPaperExampleSelfCheck(t *testing.T) {
	p := core.PaperExample()
	rep, err := CrossValidate(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("paper example drifted: %v", err)
	}
	// The paper's ≈13.75 Mbit requirement: (1+sqrt(20.48))·2.5 Mbit.
	want := (1 + math.Sqrt(20.48)) * 2.5e6
	if math.Abs(rep.Stability.Bound-want)/want > 1e-12 {
		t.Fatalf("bound = %v, want %v", rep.Stability.Bound, want)
	}
	if rep.Stability.Bound < 13.7e6 || rep.Stability.Bound > 13.9e6 {
		t.Fatalf("bound %v outside the paper's ≈13.8 Mbit example", rep.Stability.Bound)
	}
	if rep.Stability.Satisfied {
		t.Fatal("5 Mbit buffer should not satisfy Theorem 1")
	}
	if rep.Stability.StronglyStable {
		t.Fatal("paper example with BDP buffer should not be strongly stable")
	}
	if !rep.Stability.Consistent {
		t.Fatalf("unsatisfied bound is not a contradiction: %+v", rep.Stability)
	}
	if !strings.Contains(rep.Stability.Flag, "strong-stability violation") {
		t.Fatalf("flag = %q, want strong-stability violation", rep.Stability.Flag)
	}
	if len(rep.Comparisons) < 4 {
		t.Fatalf("only %d comparisons ran: %v", len(rep.Comparisons), rep)
	}
}

// TestPaperExampleWithAdequateBuffer raises B above the Theorem 1 bound:
// the theorem then guarantees strong stability and the trajectory must
// deliver it.
func TestPaperExampleWithAdequateBuffer(t *testing.T) {
	p := core.PaperExample()
	p.B = core.Theorem1Bound(p) * 1.05
	rep, err := CrossValidate(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("adequate-buffer example failed: %v", err)
	}
	if !rep.Stability.Satisfied || !rep.Stability.StronglyStable || !rep.Stability.Consistent {
		t.Fatalf("stability = %+v", rep.Stability)
	}
	if rep.Stability.Flag != "" {
		t.Fatalf("unexpected flag: %q", rep.Stability.Flag)
	}
}

// TestFigureExampleDrift checks the scaled Case 1 set used by the figure
// experiments: every closed-form quantity must match the independent
// integration within tolerance.
func TestFigureExampleDrift(t *testing.T) {
	rep, err := CrossValidate(core.FigureExample(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("figure example drifted: %v", err)
	}
	names := map[string]bool{}
	for _, c := range rep.Comparisons {
		names[c.Name] = true
		if math.IsNaN(c.Numeric) {
			t.Fatalf("%s: numeric side missing", c.Name)
		}
	}
	for _, want := range []string{
		"first-crossing-time", "first-crossing-x", "first-crossing-y",
		"first-max-x", "solve-max-x", "first-min-x", "theorem1-envelope",
	} {
		if !names[want] {
			t.Fatalf("comparison %q missing (have %v)", want, names)
		}
	}
}

// TestAllCasesCrossValidate sweeps the five case classifications.
func TestAllCasesCrossValidate(t *testing.T) {
	for _, kind := range []core.CaseKind{core.Case1, core.Case2, core.Case3, core.Case4, core.Case5} {
		p := core.CaseExample(kind)
		rep, err := CrossValidate(p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestFailsLoudlyPastTolerance forces an absurdly small tolerance: the
// harness must surface a *DriftError naming the drifting comparisons
// rather than passing silently.
func TestFailsLoudlyPastTolerance(t *testing.T) {
	rep, err := CrossValidate(core.FigureExample(), Options{Tol: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	rerr := rep.Err()
	var de *DriftError
	if !errors.As(rerr, &de) {
		t.Fatalf("want *DriftError, got %T: %v", rerr, rerr)
	}
	if len(de.Failures) == 0 {
		t.Fatal("DriftError carries no failures")
	}
	if !strings.Contains(de.Error(), "drift") {
		t.Fatalf("error text %q lacks drift details", de.Error())
	}
	if len(rep.Failures()) != len(de.Failures) {
		t.Fatal("Failures() disagrees with Err()")
	}
}

// TestInvalidParamsRejected ensures the harness refuses unusable input
// instead of producing a vacuous report.
func TestInvalidParamsRejected(t *testing.T) {
	p := core.PaperExample()
	p.Gd = -p.Gd
	if _, err := CrossValidate(p, Options{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Fatalf("want ErrInvalidParams, got %v", err)
	}
}

// TestReportString smoke-tests the human-readable rendering used by the
// report CLI.
func TestReportString(t *testing.T) {
	rep, err := CrossValidate(core.PaperExample(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"xcheck:", "first-crossing-time", "theorem1", "flag:"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() lacks %q:\n%s", frag, s)
		}
	}
}

// TestEngineComparisonsPresent asserts the sampling-free engine is
// actually wired into the harness: its crossing and extremum
// comparisons appear, pass, and its buffered outcome matches the
// reference solver's.
func TestEngineComparisonsPresent(t *testing.T) {
	rep, err := CrossValidate(core.PaperExample(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, c := range rep.Comparisons {
		if strings.HasPrefix(c.Name, "engine-") {
			found[c.Name] = true
			if !c.OK {
				t.Errorf("%s drifted: analytic=%v numeric=%v drift=%g", c.Name, c.Analytic, c.Numeric, c.Drift)
			}
			// The engine shares core.Solve's arithmetic; against the
			// reference solver the drift is exactly zero.
			if c.Drift != 0 {
				t.Errorf("%s: drift %g, want bit-identical 0", c.Name, c.Drift)
			}
		}
	}
	for _, name := range []string{"engine-crossing-time", "engine-crossing-x", "engine-crossing-y", "engine-first-extremum-x"} {
		if !found[name] {
			t.Errorf("comparison %s missing from report", name)
		}
	}
	if rep.Stability.EngineOutcome != rep.Stability.Outcome {
		t.Errorf("engine outcome %v != solver outcome %v", rep.Stability.EngineOutcome, rep.Stability.Outcome)
	}
	if rep.Stability.EngineOutcome == 0 {
		t.Error("engine outcome not recorded")
	}
}
