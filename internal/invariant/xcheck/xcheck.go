// Package xcheck cross-validates the closed-form phase-plane engine
// against independent numerical integration and the paper's analytic
// bounds (Ren & Jiang, ICDCS 2010).
//
// The stitched trajectories produced by core.Solve are built from exact
// solutions of the linearized switched system; the Dormand-Prince driver
// in internal/ode integrates the same vector field knowing nothing about
// the closed forms. Agreement between the two — switching-line crossing
// points, transient queue extrema — is therefore a strong end-to-end
// check of both implementations. On top of the trajectory comparison the
// harness verifies the Theorem 1 chain: the measured first-round peak
// must respect the loose analytic envelope sqrt(a/(bC))·q0, and a
// parameter set satisfying the theorem's sufficient condition must
// produce a strongly stable trajectory.
//
// CrossValidate reports every comparison with its relative drift and
// fails loudly (Report.Err) past the tolerance.
package xcheck

import (
	"fmt"
	"math"
	"strings"

	"bcnphase/internal/analytic"
	"bcnphase/internal/core"
	"bcnphase/internal/ode"
)

// Options tunes the harness. The zero value uses the defaults below.
type Options struct {
	// Tol is the relative drift tolerance past which a comparison fails
	// (default 1e-4 — far above the integrator error, far below any
	// real closed-form bug).
	Tol float64
	// RelTol and AbsTol override the integrator tolerances
	// (defaults 1e-10 and 1e-12).
	RelTol, AbsTol float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-10
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-12
	}
	return o
}

// Comparison is one analytic-vs-numeric (or bound-vs-measured) check.
type Comparison struct {
	// Name identifies the quantity, e.g. "first-crossing-time".
	Name string
	// Analytic is the closed-form value; Numeric the independently
	// integrated (or measured) one.
	Analytic, Numeric float64
	// Drift is |Numeric − Analytic| / scale with a quantity-appropriate
	// scale (q0 for queue offsets, C for rates, the crossing time for
	// times). For one-sided bound checks it is the relative overshoot
	// above the bound (zero when the bound holds).
	Drift float64
	// OK reports Drift ≤ tolerance.
	OK bool
}

// StabilityCheck relates the Theorem 1 verdict to the trajectory verdict.
type StabilityCheck struct {
	// Bound is the guaranteed peak queue (1+sqrt(a/(bC)))·q0 in bits.
	Bound float64
	// Satisfied is Bound < B (the theorem's sufficient condition).
	Satisfied bool
	// Outcome is the stitched-trajectory outcome with the buffer
	// enforced; StronglyStable is its Definition 1 verdict.
	Outcome        core.Outcome
	StronglyStable bool
	// EngineOutcome is the sampling-free engine's verdict for the same
	// buffered run; it must equal Outcome (the two share their
	// classification logic bit for bit).
	EngineOutcome core.Outcome
	// Consistent is false when the theorem guarantees stability but the
	// trajectory violates it, or the fast engine disagrees with the
	// reference solver — either way an implementation contradiction.
	Consistent bool
	// Flag is a human-readable verdict; non-empty when the buffer is
	// below the Theorem 1 bound (stability not guaranteed) or on a
	// contradiction.
	Flag string
}

// Report is the outcome of one cross-validation run.
type Report struct {
	Params      core.Params
	Tol         float64
	Comparisons []Comparison
	Stability   StabilityCheck
}

// Failures returns the comparisons whose drift exceeded tolerance.
func (r *Report) Failures() []Comparison {
	var out []Comparison
	for _, c := range r.Comparisons {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Err returns nil when every comparison is within tolerance and the
// stability verdicts are consistent, and a *DriftError otherwise.
func (r *Report) Err() error {
	fails := r.Failures()
	if len(fails) == 0 && r.Stability.Consistent {
		return nil
	}
	e := &DriftError{Failures: fails, Tol: r.Tol}
	if !r.Stability.Consistent {
		e.Inconsistency = r.Stability.Flag
	}
	return e
}

// String renders a fixed-width summary table of the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "xcheck: tol=%g, %d comparisons\n", r.Tol, len(r.Comparisons))
	for _, c := range r.Comparisons {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-24s analytic=%- 14.6g numeric=%- 14.6g drift=%.3g %s\n",
			c.Name, c.Analytic, c.Numeric, c.Drift, status)
	}
	s := r.Stability
	fmt.Fprintf(&b, "  theorem1: bound=%.4g B=%.4g satisfied=%v outcome=%v",
		s.Bound, r.Params.B, s.Satisfied, s.Outcome)
	if s.Flag != "" {
		fmt.Fprintf(&b, "\n  flag: %s", s.Flag)
	}
	return b.String()
}

// DriftError is the loud failure: it lists every comparison past
// tolerance and any theorem/trajectory contradiction.
type DriftError struct {
	Failures      []Comparison
	Tol           float64
	Inconsistency string
}

// Error names the failed comparisons and their drifts.
func (e *DriftError) Error() string {
	var parts []string
	for _, c := range e.Failures {
		parts = append(parts, fmt.Sprintf("%s drift %.3g (analytic %.6g, numeric %.6g)",
			c.Name, c.Drift, c.Analytic, c.Numeric))
	}
	if e.Inconsistency != "" {
		parts = append(parts, e.Inconsistency)
	}
	return fmt.Sprintf("xcheck: %d check(s) past tol %g: %s",
		len(parts), e.Tol, strings.Join(parts, "; "))
}

// CrossValidate runs the full harness on one parameter set: it stitches
// the closed-form trajectory from the canonical start (−q0, 0), numerically
// integrates the same piecewise-linear field with event location, compares
// switching-line crossings and first-round queue extrema, and checks the
// Theorem 1 chain. A non-nil error from this function means the harness
// itself could not run; disagreements are reported via Report.Err.
func CrossValidate(p core.Params, opt Options) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	rep := &Report{Params: p, Tol: opt.Tol}

	// Closed-form trajectory of the unconstrained linearized system: the
	// crossings and extrema are the quantities under test, so the buffer
	// must not truncate them.
	tr, err := core.Solve(p, core.SolveOptions{IgnoreBuffer: true, MaxArcs: 64})
	if err != nil {
		return nil, fmt.Errorf("xcheck: closed-form solve: %w", err)
	}

	// Independent numerical integration of the same field.
	k := p.K()
	field := p.LinearizedField()
	f := func(_ float64, s, ds []float64) {
		ds[0], ds[1] = field(s[0], s[1])
	}
	horizon := numericHorizon(tr)
	odeOpts := ode.Options{
		AbsTol: opt.AbsTol, RelTol: opt.RelTol,
		Events: []ode.Event{
			// 0: first entry into the decrease region (s rises through 0).
			{G: func(_ float64, s []float64) float64 { return s[0] + k*s[1] }, Direction: +1, Name: "crossing"},
			// 1: queue maximum (y falls through 0).
			{G: func(_ float64, s []float64) float64 { return s[1] }, Direction: -1, Name: "ymax"},
			// 2: queue minimum (y rises through 0). Fires spuriously near
			// t=0 because the start state has y=0 exactly; filtered below
			// by requiring T past the located maximum.
			{G: func(_ float64, s []float64) float64 { return s[1] }, Direction: +1, Name: "ymin"},
		},
	}
	sol, err := ode.DormandPrince(f, 0, []float64{-p.Q0, 0}, horizon, odeOpts)
	if err != nil {
		return nil, fmt.Errorf("xcheck: numerical integration: %w", err)
	}

	add := func(name string, analytic, numeric, scale float64) {
		drift := math.Abs(numeric-analytic) / scale
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Name: name, Analytic: analytic, Numeric: numeric,
			Drift: drift, OK: drift <= opt.Tol,
		})
	}

	// Switching-line crossing: closed-form junction vs located event.
	if len(tr.Crossings) > 0 {
		cr := tr.Crossings[0]
		if hit := firstEvent(sol, "crossing", 0); hit != nil {
			add("first-crossing-time", cr.T, hit.T, math.Max(cr.T, 1e-300))
			add("first-crossing-x", cr.X, hit.Y[0], p.Q0)
			add("first-crossing-y", cr.Y, hit.Y[1], p.C)
		} else {
			add("first-crossing-time", cr.T, math.NaN(), math.Max(cr.T, 1e-300))
		}
	}

	// Sampling-free engine (internal/analytic): same closed forms as
	// core.Solve but exact junction evaluation. Its first crossing and
	// first-round peak must reproduce core's bit-for-bit (the engine's
	// design contract), which the shared tolerance gates with huge margin.
	var engT, engX, engY = math.NaN(), math.NaN(), math.NaN()
	engRes, engErr := analytic.SolveOne(p, analytic.Options{
		IgnoreBuffer: true, MaxArcs: 64,
		OnCrossing: func(t, x, y float64, _ core.Region) {
			if math.IsNaN(engT) {
				engT, engX, engY = t, x, y
			}
		},
	})
	if engErr != nil {
		return nil, fmt.Errorf("xcheck: analytic engine solve: %w", engErr)
	}
	if len(tr.Crossings) > 0 && !math.IsNaN(engT) {
		cr := tr.Crossings[0]
		add("engine-crossing-time", engT, cr.T, math.Max(cr.T, 1e-300))
		add("engine-crossing-x", engX, cr.X, p.Q0)
		add("engine-crossing-y", engY, cr.Y, p.C)
	}
	if len(tr.Extrema) > 0 {
		first := tr.Extrema[0]
		if engFirst := pickFirst(engRes, first.Max); !math.IsNaN(engFirst) {
			add("engine-first-extremum-x", engFirst, first.X, p.Q0)
		}
	}

	// First-round extrema: FirstRoundExtrema is a third, independent
	// analytic path (it re-stitches the arcs itself), so agreement here
	// covers Solve, the criteria code and the integrator at once.
	max1, min1, exErr := core.FirstRoundExtrema(p)
	if exErr == nil || len(tr.Extrema) > 0 {
		if hitMax := firstEvent(sol, "ymax", 0); hitMax != nil {
			if exErr == nil || max1 != 0 {
				add("first-max-x", max1, hitMax.Y[0], p.Q0)
			}
			if len(tr.Extrema) > 0 {
				add("solve-max-x", tr.Extrema[0].X, hitMax.Y[0], p.Q0)
			}
			if exErr == nil {
				if hitMin := firstEvent(sol, "ymin", hitMax.T); hitMin != nil {
					add("first-min-x", min1, hitMin.Y[0], p.Q0)
				}
			}
		}
	}

	// Theorem 1 loose envelope (eq. 36): the exact first-round peak must
	// stay below sqrt(a/(bC))·q0. One-sided: drift is the overshoot.
	if exErr == nil || max1 != 0 {
		envelope, _ := core.Theorem1LooseBounds(p)
		over := math.Max(0, (max1-envelope)/envelope)
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Name: "theorem1-envelope", Analytic: envelope, Numeric: max1,
			Drift: over, OK: over <= opt.Tol,
		})
	}

	rep.Stability = stabilityCheck(p)
	return rep, nil
}

// stabilityCheck evaluates the Theorem 1 verdict against the
// buffer-enforced trajectory.
func stabilityCheck(p core.Params) StabilityCheck {
	s := StabilityCheck{
		Bound:     core.Theorem1Bound(p),
		Satisfied: core.Theorem1Satisfied(p),
	}
	tr, err := core.Solve(p, core.SolveOptions{})
	if err != nil {
		s.Consistent = false
		s.Flag = fmt.Sprintf("trajectory solve failed: %v", err)
		return s
	}
	s.Outcome = tr.Outcome
	s.StronglyStable = tr.Outcome.StronglyStable()
	if engRes, err := analytic.SolveOne(p, analytic.Options{}); err == nil {
		s.EngineOutcome = engRes.Outcome
	}
	if s.EngineOutcome != s.Outcome {
		s.Consistent = false
		s.Flag = fmt.Sprintf(
			"contradiction: analytic engine outcome %v disagrees with reference solver outcome %v",
			s.EngineOutcome, s.Outcome)
		return s
	}
	// Theorem 1 is sufficient, not necessary: Satisfied ⇒ StronglyStable
	// must hold; an unsatisfied bound carries no guarantee either way.
	s.Consistent = !s.Satisfied || s.StronglyStable
	switch {
	case !s.Consistent:
		s.Flag = fmt.Sprintf(
			"contradiction: Theorem 1 bound %.4g < B=%.4g guarantees strong stability but trajectory outcome is %v",
			s.Bound, p.B, s.Outcome)
	case !s.Satisfied && !s.StronglyStable:
		s.Flag = fmt.Sprintf(
			"strong-stability violation: buffer B=%.4g is below the Theorem 1 bound %.4g and the trajectory %vs",
			p.B, s.Bound, s.Outcome)
	case !s.Satisfied:
		s.Flag = fmt.Sprintf(
			"not guaranteed: buffer B=%.4g is below the Theorem 1 bound %.4g (trajectory still %v)",
			p.B, s.Bound, s.Outcome)
	}
	return s
}

// numericHorizon picks an integration horizon covering the first-round
// extrema with margin.
func numericHorizon(tr *core.Trajectory) float64 {
	switch {
	case len(tr.Extrema) >= 2:
		return 1.5 * tr.Extrema[1].T
	case len(tr.Extrema) == 1:
		return 2 * tr.Extrema[0].T
	case tr.EndT > 0:
		return tr.EndT
	default:
		return 1
	}
}

// pickFirst selects the engine's first maximum or minimum x.
func pickFirst(res analytic.Result, isMax bool) float64 {
	if isMax {
		return res.FirstMaxX
	}
	return res.FirstMinX
}

// firstEvent returns the earliest hit of the named event with T > after.
func firstEvent(sol *ode.Solution, name string, after float64) *ode.EventHit {
	for i := range sol.Events {
		if sol.Events[i].Name == name && sol.Events[i].T > after {
			return &sol.Events[i]
		}
	}
	return nil
}
