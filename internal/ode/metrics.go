package ode

import "bcnphase/internal/telemetry"

// Metrics carries the integrator's hot-loop instruments. A nil *Metrics
// (the default) is fully inert: the adaptive driver takes one extra nil
// comparison per step and the RHS is not wrapped at all, keeping the
// disabled-telemetry path inside the repo's <5% overhead budget.
type Metrics struct {
	// Steps counts accepted steps across all integrations.
	Steps *telemetry.Counter
	// Rejected counts error-controller step rejections.
	Rejected *telemetry.Counter
	// RHSEvals counts right-hand-side evaluations (the true cost unit
	// of an adaptive run: stages, FSAL recomputes, event bisection).
	RHSEvals *telemetry.Counter
}

// NewMetrics registers the integrator family on r. A nil registry
// yields a nil (inert) Metrics.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Steps:    r.Counter("ode_steps_total", "accepted adaptive integrator steps"),
		Rejected: r.Counter("ode_rejected_steps_total", "error-controller step rejections"),
		RHSEvals: r.Counter("ode_rhs_evals_total", "right-hand-side evaluations"),
	}
}

// instrument wraps f to count RHS evaluations; called only when m is
// non-nil so the disabled path never pays the indirection.
func (m *Metrics) instrument(f Func) Func {
	c := m.RHSEvals
	return func(t float64, y, dydt []float64) {
		c.Inc()
		f(t, y, dydt)
	}
}
