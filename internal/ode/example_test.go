package ode_test

import (
	"fmt"
	"math"

	"bcnphase/internal/ode"
)

// ExampleDormandPrince integrates the harmonic oscillator and checks the
// final state against the closed form.
func ExampleDormandPrince() {
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	sol, err := ode.DormandPrince(f, 0, []float64{1, 0}, math.Pi, ode.DefaultOptions())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, y := sol.Last()
	fmt.Printf("x(pi) = %.6f (exact -1)\n", y[0])
	// Output:
	// x(pi) = -1.000000 (exact -1)
}

// ExampleDormandPrince_events locates the first zero crossing of the
// solution — the mechanism behind switching-line detection.
func ExampleDormandPrince_events() {
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	opts := ode.DefaultOptions()
	opts.Events = []ode.Event{{
		Name:     "x=0",
		Terminal: true,
		G:        func(_ float64, y []float64) float64 { return y[0] },
	}}
	sol, err := ode.DormandPrince(f, 0, []float64{1, 0}, 10, opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("crossing at t = %.6f (pi/2 = %.6f)\n", sol.Events[0].T, math.Pi/2)
	// Output:
	// crossing at t = 1.570796 (pi/2 = 1.570796)
}
