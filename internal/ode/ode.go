// Package ode provides hand-rolled initial-value-problem integrators for
// small systems of ordinary differential equations, written against the
// standard library only.
//
// The package exists because the BCN fluid model (a second-order switched
// nonlinear system) must be integrated numerically to cross-validate the
// closed-form phase-plane solutions, and no mature ODE library is available
// offline. It provides fixed-step steppers (Euler, Heun, classic RK4), an
// adaptive Dormand-Prince RK45 driver with PI step-size control, and event
// detection (sign-change location by bisection) used to find switching-line
// and buffer-boundary crossings.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// Func evaluates the derivative dy/dt of the system state y at time t and
// stores it in dydt. Implementations must not retain y or dydt, and must not
// assume dydt is zeroed.
type Func func(t float64, y, dydt []float64)

// Common parameter-validation errors returned by the integrators.
var (
	// ErrDimension is returned when state slices disagree in length.
	ErrDimension = errors.New("ode: dimension mismatch")
	// ErrStep is returned for non-positive or non-finite step sizes.
	ErrStep = errors.New("ode: invalid step size")
	// ErrMaxSteps is returned when the adaptive driver exceeds its step
	// budget before reaching the end of the integration interval.
	ErrMaxSteps = errors.New("ode: maximum number of steps exceeded")
	// ErrStepUnderflow is returned when the adaptive driver's step size
	// collapses below the representable resolution at the current time.
	ErrStepUnderflow = errors.New("ode: step size underflow")
	// ErrNotFinite is returned when the derivative or state becomes NaN
	// or infinite during integration.
	ErrNotFinite = errors.New("ode: state is not finite")
	// ErrOptions wraps all Options validation failures.
	ErrOptions = errors.New("ode: invalid options")
)

// Stepper advances a state vector by one fixed step. Implementations are
// stateless and safe for concurrent use.
type Stepper interface {
	// Step computes y(t+h) from y(t) into out. out must have the same
	// length as y and may alias y.
	Step(f Func, t float64, y []float64, h float64, out []float64) error
	// Order returns the classical order of accuracy of the method.
	Order() int
	// Name returns a short human-readable method name.
	Name() string
}

// Euler is the explicit (forward) Euler method, order 1.
type Euler struct{}

var _ Stepper = Euler{}

// Step advances y by one forward-Euler step of size h.
func (Euler) Step(f Func, t float64, y []float64, h float64, out []float64) error {
	if err := checkStepArgs(y, h, out); err != nil {
		return err
	}
	n := len(y)
	k := make([]float64, n)
	f(t, y, k)
	for i := 0; i < n; i++ {
		out[i] = y[i] + h*k[i]
	}
	return nil
}

// Order reports the order of accuracy (1).
func (Euler) Order() int { return 1 }

// Name reports the method name.
func (Euler) Name() string { return "euler" }

// Heun is the explicit trapezoidal (improved Euler) method, order 2.
type Heun struct{}

var _ Stepper = Heun{}

// Step advances y by one Heun step of size h.
func (Heun) Step(f Func, t float64, y []float64, h float64, out []float64) error {
	if err := checkStepArgs(y, h, out); err != nil {
		return err
	}
	n := len(y)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	tmp := make([]float64, n)
	f(t, y, k1)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + h*k1[i]
	}
	f(t+h, tmp, k2)
	for i := 0; i < n; i++ {
		out[i] = y[i] + h*0.5*(k1[i]+k2[i])
	}
	return nil
}

// Order reports the order of accuracy (2).
func (Heun) Order() int { return 2 }

// Name reports the method name.
func (Heun) Name() string { return "heun" }

// RK4 is the classic fourth-order Runge-Kutta method.
type RK4 struct{}

var _ Stepper = RK4{}

// Step advances y by one classic RK4 step of size h.
func (RK4) Step(f Func, t float64, y []float64, h float64, out []float64) error {
	if err := checkStepArgs(y, h, out); err != nil {
		return err
	}
	n := len(y)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)

	f(t, y, k1)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + 0.5*h*k1[i]
	}
	f(t+0.5*h, tmp, k2)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + 0.5*h*k2[i]
	}
	f(t+0.5*h, tmp, k3)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + h*k3[i]
	}
	f(t+h, tmp, k4)
	for i := 0; i < n; i++ {
		out[i] = y[i] + h/6.0*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	return nil
}

// Order reports the order of accuracy (4).
func (RK4) Order() int { return 4 }

// Name reports the method name.
func (RK4) Name() string { return "rk4" }

func checkStepArgs(y []float64, h float64, out []float64) error {
	if len(y) == 0 || len(out) != len(y) {
		return ErrDimension
	}
	if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return fmt.Errorf("%w: h=%v", ErrStep, h)
	}
	return nil
}

// FixedIntegrate integrates dy/dt = f from t0 to t1 with the given stepper
// and uniform step h, recording every accepted state. The final step is
// shortened to land exactly on t1.
func FixedIntegrate(s Stepper, f Func, t0 float64, y0 []float64, t1, h float64) (*Solution, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("%w: t1=%v <= t0=%v", ErrStep, t1, t0)
	}
	if h <= 0 {
		return nil, fmt.Errorf("%w: h=%v", ErrStep, h)
	}
	n := len(y0)
	sol := &Solution{}
	y := make([]float64, n)
	copy(y, y0)
	sol.append(t0, y)
	t := t0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		next := make([]float64, n)
		if err := s.Step(f, t, y, step, next); err != nil {
			return sol, err
		}
		if !finite(next) {
			return sol, fmt.Errorf("%w at t=%v", ErrNotFinite, t+step)
		}
		t += step
		y = next
		sol.append(t, y)
	}
	return sol, nil
}

func finite(y []float64) bool {
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
