package ode

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		ok   bool
		frag string
	}{
		{"zero value", Options{}, true, ""},
		{"defaults", DefaultOptions(), true, ""},
		{"negative abstol", Options{AbsTol: -1e-9}, false, "AbsTol"},
		{"nan abstol", Options{AbsTol: math.NaN()}, false, "AbsTol"},
		{"inf reltol", Options{RelTol: math.Inf(1)}, false, "RelTol"},
		{"negative reltol", Options{RelTol: -0.5}, false, "RelTol"},
		{"nan initial step", Options{InitialStep: math.NaN()}, false, "InitialStep"},
		{"negative initial step", Options{InitialStep: -1}, false, "InitialStep"},
		{"inf initial step", Options{InitialStep: math.Inf(1)}, false, "InitialStep"},
		{"nan maxstep", Options{MaxStep: math.NaN()}, false, "MaxStep"},
		{"negative minstep", Options{MinStep: -1e-12}, false, "MinStep"},
		{"min above max", Options{MinStep: 1, MaxStep: 0.5}, false, "exceeds MaxStep"},
		{"min below max", Options{MinStep: 1e-9, MaxStep: 0.5}, true, ""},
		{"min without max", Options{MinStep: 2}, true, ""},
		{"negative maxsteps", Options{MaxSteps: -1}, false, "MaxSteps"},
	}
	for _, c := range cases {
		err := c.o.Validate()
		if (err == nil) != c.ok {
			t.Fatalf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
		if err != nil {
			if !errors.Is(err, ErrOptions) {
				t.Fatalf("%s: error does not wrap ErrOptions: %v", c.name, err)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("%s: error %q lacks %q", c.name, err, c.frag)
			}
		}
	}
}

func TestDormandPrinceRejectsInvalidOptions(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	_, err := DormandPrince(f, 0, []float64{1}, 1, Options{RelTol: math.NaN()})
	if !errors.Is(err, ErrOptions) {
		t.Fatalf("want ErrOptions, got %v", err)
	}
	_, err = DormandPrince(f, 0, []float64{1}, 1, Options{MinStep: 2, MaxStep: 1})
	if !errors.Is(err, ErrOptions) {
		t.Fatalf("want ErrOptions, got %v", err)
	}
}

func TestStepMonitorObservesEveryAcceptedStep(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	var times []float64
	opts := DefaultOptions()
	opts.StepMonitor = func(tm float64, y []float64) error {
		if len(y) != 1 {
			t.Fatalf("monitor saw %d-dim state", len(y))
		}
		times = append(times, tm)
		return nil
	}
	sol, err := DormandPrince(f, 0, []float64{1}, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Dense output records t0 plus every accepted step; the monitor sees
	// every accepted step (no t0).
	if len(times) != len(sol.T)-1 {
		t.Fatalf("monitor saw %d steps, mesh has %d", len(times), len(sol.T)-1)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("monitor times not increasing: %v", times)
		}
	}
	if times[len(times)-1] != 1 {
		t.Fatalf("last monitored time %v != 1", times[len(times)-1])
	}
}

func TestStepMonitorAbortsIntegration(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	sentinel := errors.New("guard tripped")
	opts := DefaultOptions()
	opts.StepMonitor = func(tm float64, y []float64) error {
		if y[0] > 0.5 {
			return sentinel
		}
		return nil
	}
	sol, err := DormandPrince(f, 0, []float64{0}, 1, opts)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	if sol == nil || len(sol.T) == 0 {
		t.Fatal("partial solution not returned on abort")
	}
	if last := sol.Y[len(sol.Y)-1][0]; last >= 1 {
		t.Fatalf("integration ran to completion despite abort (y=%v)", last)
	}
}

func TestStepMonitorSeesTerminalEventPoint(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	var last float64
	opts := DefaultOptions()
	opts.Events = []Event{{
		G:        func(_ float64, y []float64) float64 { return y[0] - 0.25 },
		Terminal: true,
		Name:     "quarter",
	}}
	opts.StepMonitor = func(tm float64, y []float64) error {
		last = tm
		return nil
	}
	sol, err := DormandPrince(f, 0, []float64{0}, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Events) != 1 {
		t.Fatalf("events = %+v", sol.Events)
	}
	if math.Abs(last-sol.Events[0].T) > 1e-12 {
		t.Fatalf("monitor last time %v != event time %v", last, sol.Events[0].T)
	}
}
