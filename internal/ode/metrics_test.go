package ode

import (
	"math"
	"testing"

	"bcnphase/internal/telemetry"
)

func TestDormandPrinceMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	sol, err := DormandPrince(f, 0, []float64{1}, 5, Options{
		AbsTol: 1e-9, RelTol: 1e-9, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := m.Steps.Value()
	if steps == 0 {
		t.Fatalf("no accepted steps counted")
	}
	// Dormand-Prince spends 6 fresh stages per attempted step (FSAL
	// reuses the 7th) plus the initial evaluations, so RHS evals must
	// dominate step counts.
	if evals := m.RHSEvals.Value(); evals < 6*steps {
		t.Fatalf("rhs evals %d < 6*steps %d", evals, 6*steps)
	}
	want := math.Exp(-5)
	if got := sol.Y[len(sol.Y)-1][0]; math.Abs(got-want) > 1e-6 {
		t.Fatalf("solution drifted with metrics on: got %v want %v", got, want)
	}
}

func TestDormandPrinceRejectedCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	// A stiff-ish oscillator with a deliberately huge initial step
	// forces the controller to reject at least once.
	f := func(tt float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -2500 * y[0]
	}
	_, err := DormandPrince(f, 0, []float64{1, 0}, 1, Options{
		AbsTol: 1e-10, RelTol: 1e-10, InitialStep: 0.5, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected.Value() == 0 {
		t.Fatalf("expected at least one rejected step")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %v, want nil", m)
	}
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	if _, err := DormandPrince(f, 0, []float64{1}, 1, Options{AbsTol: 1e-8, RelTol: 1e-8}); err != nil {
		t.Fatal(err)
	}
}
