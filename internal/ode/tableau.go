package ode

import (
	"fmt"
	"math"
)

// Tableau is an embedded explicit Runge-Kutta pair. Stages is the number
// of stages s; A is the strictly lower-triangular stage matrix, C the
// nodes, BHigh the higher-order solution weights and BLow the embedded
// lower-order weights. FSAL marks first-same-as-last pairs (the last
// stage of an accepted step is the first stage of the next).
type Tableau struct {
	Name        string
	Stages      int
	Order       int // order of the propagated (higher) solution
	A           [][]float64
	C           []float64
	BHigh, BLow []float64
	FSAL        bool
}

// Validate checks structural consistency and the row-sum condition
// C[i] = Σ_j A[i][j].
func (tb Tableau) Validate() error {
	if tb.Stages < 2 {
		return fmt.Errorf("ode: tableau %q: need at least 2 stages", tb.Name)
	}
	if len(tb.A) != tb.Stages || len(tb.C) != tb.Stages ||
		len(tb.BHigh) != tb.Stages || len(tb.BLow) != tb.Stages {
		return fmt.Errorf("ode: tableau %q: inconsistent dimensions", tb.Name)
	}
	for i, row := range tb.A {
		if len(row) < i {
			return fmt.Errorf("ode: tableau %q: stage %d row too short", tb.Name, i)
		}
		sum := 0.0
		for j := 0; j < i; j++ {
			sum += row[j]
		}
		if math.Abs(sum-tb.C[i]) > 1e-12 {
			return fmt.Errorf("ode: tableau %q: row-sum condition violated at stage %d (%v vs %v)", tb.Name, i, sum, tb.C[i])
		}
	}
	for _, b := range [][]float64{tb.BHigh, tb.BLow} {
		sum := 0.0
		for _, v := range b {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			return fmt.Errorf("ode: tableau %q: weights do not sum to 1 (%v)", tb.Name, sum)
		}
	}
	return nil
}

// DormandPrinceTableau returns the 5(4) pair used by default.
func DormandPrinceTableau() Tableau {
	return Tableau{
		Name:   "dormand-prince 5(4)",
		Stages: 7,
		Order:  5,
		FSAL:   true,
		C:      []float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1},
		A: [][]float64{
			{},
			{1.0 / 5},
			{3.0 / 40, 9.0 / 40},
			{44.0 / 45, -56.0 / 15, 32.0 / 9},
			{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
			{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
			{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
		},
		BHigh: []float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0},
		BLow:  []float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40},
	}
}

// BogackiShampineTableau returns the 3(2) pair (MATLAB's ode23): cheaper
// per step, useful at loose tolerances and for cross-validating the
// higher-order driver.
func BogackiShampineTableau() Tableau {
	return Tableau{
		Name:   "bogacki-shampine 3(2)",
		Stages: 4,
		Order:  3,
		FSAL:   true,
		C:      []float64{0, 1.0 / 2, 3.0 / 4, 1},
		A: [][]float64{
			{},
			{1.0 / 2},
			{0, 3.0 / 4},
			{2.0 / 9, 1.0 / 3, 4.0 / 9},
		},
		BHigh: []float64{2.0 / 9, 1.0 / 3, 4.0 / 9, 0},
		BLow:  []float64{7.0 / 24, 1.0 / 4, 1.0 / 3, 1.0 / 8},
	}
}

// AdaptiveIntegrate integrates with an arbitrary embedded pair, using the
// same PI step control and event machinery as DormandPrince.
func AdaptiveIntegrate(tb Tableau, f Func, t0 float64, y0 []float64, t1 float64, opts Options) (*Solution, error) {
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	return integrate(tb, f, t0, y0, t1, opts)
}
