package ode

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableausValid(t *testing.T) {
	for _, tb := range []Tableau{DormandPrinceTableau(), BogackiShampineTableau()} {
		if err := tb.Validate(); err != nil {
			t.Errorf("%s: %v", tb.Name, err)
		}
	}
}

func TestTableauValidateRejects(t *testing.T) {
	bad := DormandPrinceTableau()
	bad.C[3] += 0.1 // break the row-sum condition
	if err := bad.Validate(); err == nil {
		t.Error("row-sum violation accepted")
	}
	short := Tableau{Name: "x", Stages: 1}
	if err := short.Validate(); err == nil {
		t.Error("single-stage tableau accepted")
	}
	dims := BogackiShampineTableau()
	dims.BHigh = dims.BHigh[:2]
	if err := dims.Validate(); err == nil {
		t.Error("dimension mismatch accepted")
	}
	weights := BogackiShampineTableau()
	weights.BLow[0] += 0.5
	if err := weights.Validate(); err == nil {
		t.Error("weight-sum violation accepted")
	}
}

func TestBogackiShampineAccuracy(t *testing.T) {
	sol, err := AdaptiveIntegrate(BogackiShampineTableau(), harmonic, 0, []float64{1, 0}, 10, DefaultOptions())
	if err != nil {
		t.Fatalf("AdaptiveIntegrate: %v", err)
	}
	_, y := sol.Last()
	if e := math.Hypot(y[0]-math.Cos(10), y[1]+math.Sin(10)); e > 1e-5 {
		t.Errorf("final error %g", e)
	}
}

func TestBogackiShampineEvents(t *testing.T) {
	opts := DefaultOptions()
	opts.Events = []Event{{
		G:        func(_ float64, y []float64) float64 { return y[0] },
		Terminal: true,
	}}
	sol, err := AdaptiveIntegrate(BogackiShampineTableau(), harmonic, 0, []float64{1, 0}, 10, opts)
	if err != nil {
		t.Fatalf("AdaptiveIntegrate: %v", err)
	}
	if len(sol.Events) != 1 || math.Abs(sol.Events[0].T-math.Pi/2) > 1e-6 {
		t.Errorf("events = %+v, want one at pi/2", sol.Events)
	}
}

func TestAdaptiveIntegrateRejectsBadTableau(t *testing.T) {
	bad := DormandPrinceTableau()
	bad.BHigh[0] += 1
	if _, err := AdaptiveIntegrate(bad, decay, 0, []float64{1}, 1, Options{}); err == nil {
		t.Error("invalid tableau accepted")
	}
}

// TestQuickPairsAgree: both embedded pairs converge to the same solution
// of a random linear system within combined tolerance.
func TestQuickPairsAgree(t *testing.T) {
	prop := func(aRaw, bRaw int8) bool {
		a := float64(aRaw) / 32
		b := float64(bRaw) / 32
		// y'' + |a| y' + (1+|b|) y = 0: damped oscillator.
		f := func(_ float64, y, dydt []float64) {
			dydt[0] = y[1]
			dydt[1] = -(1+math.Abs(b))*y[0] - math.Abs(a)*y[1]
		}
		dp, err := DormandPrince(f, 0, []float64{1, 0}, 5, DefaultOptions())
		if err != nil {
			return false
		}
		bs, err := AdaptiveIntegrate(BogackiShampineTableau(), f, 0, []float64{1, 0}, 5, DefaultOptions())
		if err != nil {
			return false
		}
		_, yd := dp.Last()
		_, yb := bs.Last()
		return math.Abs(yd[0]-yb[0]) < 1e-5 && math.Abs(yd[1]-yb[1]) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBogackiShampineCheaper: at loose tolerance the 3(2) pair should need
// no more derivative evaluations per unit accuracy than brute force; here
// we just sanity-check it takes more steps than DP at equal tolerance
// (lower order → smaller steps).
func TestBogackiShampineStepCounts(t *testing.T) {
	opts := DefaultOptions()
	dp, err := DormandPrince(harmonic, 0, []float64{1, 0}, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := AdaptiveIntegrate(BogackiShampineTableau(), harmonic, 0, []float64{1, 0}, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() <= dp.Len() {
		t.Errorf("RK23 mesh (%d) should be denser than RK45 (%d) at tight tolerance", bs.Len(), dp.Len())
	}
}
