package ode

import (
	"fmt"
	"sort"
)

// Solution holds the accepted mesh of an integration: times T and the state
// vectors Y, with Y[i] the state at T[i]. T is strictly increasing.
type Solution struct {
	T []float64
	Y [][]float64
	// Events holds any event crossings located during integration, in
	// time order.
	Events []EventHit
}

func (s *Solution) append(t float64, y []float64) {
	cp := make([]float64, len(y))
	copy(cp, y)
	s.T = append(s.T, t)
	s.Y = append(s.Y, cp)
}

// Len returns the number of mesh points.
func (s *Solution) Len() int { return len(s.T) }

// Last returns the final time and state. It panics only via index error if
// the solution is empty; callers should check Len first.
func (s *Solution) Last() (float64, []float64) {
	i := len(s.T) - 1
	return s.T[i], s.Y[i]
}

// Component extracts component i of the state across the whole mesh.
func (s *Solution) Component(i int) []float64 {
	out := make([]float64, len(s.Y))
	for j, y := range s.Y {
		out[j] = y[i]
	}
	return out
}

// At linearly interpolates the state at time t. t is clamped to the solved
// interval. It returns an error if the solution is empty.
func (s *Solution) At(t float64) ([]float64, error) {
	if len(s.T) == 0 {
		return nil, fmt.Errorf("ode: empty solution")
	}
	if t <= s.T[0] {
		return cloneVec(s.Y[0]), nil
	}
	last := len(s.T) - 1
	if t >= s.T[last] {
		return cloneVec(s.Y[last]), nil
	}
	// Index of the first mesh point >= t.
	j := sort.SearchFloat64s(s.T, t)
	if s.T[j] == t {
		return cloneVec(s.Y[j]), nil
	}
	i := j - 1
	t0, t1 := s.T[i], s.T[j]
	w := (t - t0) / (t1 - t0)
	out := make([]float64, len(s.Y[i]))
	for c := range out {
		out[c] = (1-w)*s.Y[i][c] + w*s.Y[j][c]
	}
	return out, nil
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
