package ode

import (
	"fmt"
	"math"
)

// Options configures the adaptive drivers. The zero value is usable:
// DefaultOptions fills in sensible tolerances and limits.
type Options struct {
	// AbsTol and RelTol are the absolute and relative local error
	// tolerances (per component, combined as atol + rtol*|y|).
	AbsTol float64
	RelTol float64
	// InitialStep is the first trial step. If zero, it is estimated from
	// the derivative magnitude at t0.
	InitialStep float64
	// MaxStep caps the step size. Zero means no cap beyond the interval
	// length.
	MaxStep float64
	// MinStep floors the step size. Zero means the floor is derived from
	// float64 resolution at the current time.
	MinStep float64
	// MaxSteps bounds the number of accepted+rejected steps. Zero means
	// 10 million.
	MaxSteps int
	// Events are located during integration. A Terminal event stops the
	// integration at the crossing.
	Events []Event
	// Dense, when true, records every accepted step in the Solution.
	// When false only the initial and final states (plus event points)
	// are kept.
	Dense bool
	// StepMonitor, when non-nil, is invoked after every accepted step
	// (and at a terminal event point) with the new time and state. The
	// state slice is reused between calls and must not be retained. A
	// non-nil return aborts the integration and is returned verbatim;
	// runtime invariant guards hook in here.
	StepMonitor func(t float64, y []float64) error
	// Metrics, when non-nil, counts accepted/rejected steps and RHS
	// evaluations for the adaptive drivers. Nil costs one comparison
	// per step.
	Metrics *Metrics
}

// Validate rejects unusable option values with a descriptive error. Zero
// values are legal everywhere (they mean "use the default"); what is
// rejected is anything the adaptive driver would otherwise silently
// misbehave on: NaN or negative tolerances, a non-finite or negative
// initial step, NaN/negative step caps, a MinStep exceeding MaxStep, and
// a negative step budget.
func (o Options) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrOptions, fmt.Sprintf(format, args...))
	}
	if o.AbsTol < 0 || math.IsNaN(o.AbsTol) || math.IsInf(o.AbsTol, 0) {
		return fail("AbsTol=%v must be a finite non-negative number", o.AbsTol)
	}
	if o.RelTol < 0 || math.IsNaN(o.RelTol) || math.IsInf(o.RelTol, 0) {
		return fail("RelTol=%v must be a finite non-negative number", o.RelTol)
	}
	if o.InitialStep < 0 || math.IsNaN(o.InitialStep) || math.IsInf(o.InitialStep, 0) {
		return fail("InitialStep=%v must be finite and non-negative", o.InitialStep)
	}
	if o.MaxStep < 0 || math.IsNaN(o.MaxStep) || math.IsInf(o.MaxStep, 0) {
		return fail("MaxStep=%v must be finite and non-negative", o.MaxStep)
	}
	if o.MinStep < 0 || math.IsNaN(o.MinStep) || math.IsInf(o.MinStep, 0) {
		return fail("MinStep=%v must be finite and non-negative", o.MinStep)
	}
	if o.MinStep > 0 && o.MaxStep > 0 && o.MinStep > o.MaxStep {
		return fail("MinStep=%v exceeds MaxStep=%v", o.MinStep, o.MaxStep)
	}
	if o.MaxSteps < 0 {
		return fail("MaxSteps=%d must be non-negative", o.MaxSteps)
	}
	return nil
}

// DefaultOptions returns the tolerances used throughout this repository:
// rtol 1e-9, atol 1e-12, dense output enabled.
func DefaultOptions() Options {
	return Options{AbsTol: 1e-12, RelTol: 1e-9, Dense: true}
}

func (o Options) withDefaults() Options {
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-12
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-9
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 10_000_000
	}
	return o
}

// DormandPrince integrates dy/dt = f(t, y) from t0 to t1 (t1 > t0) with
// the Dormand-Prince 5(4) pair, adaptive step-size control and optional
// event location. It returns the accepted mesh; if a terminal event
// fires, integration stops there and the event is recorded in
// Solution.Events.
func DormandPrince(f Func, t0 float64, y0 []float64, t1 float64, opts Options) (*Solution, error) {
	return integrate(DormandPrinceTableau(), f, t0, y0, t1, opts)
}

// integrate is the shared embedded-pair driver.
func integrate(tb Tableau, f Func, t0 float64, y0 []float64, t1 float64, opts Options) (*Solution, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("%w: t1=%v <= t0=%v", ErrStep, t1, t0)
	}
	if len(y0) == 0 {
		return nil, ErrDimension
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Metrics != nil {
		f = opts.Metrics.instrument(f)
	}
	n := len(y0)
	order := float64(tb.Order)

	sol := &Solution{}
	y := cloneVec(y0)
	sol.append(t0, y)

	k := make([][]float64, tb.Stages)
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	yHigh := make([]float64, n)
	errv := make([]float64, n)

	f(t0, y, k[0])
	if !finite(k[0]) {
		return sol, fmt.Errorf("%w: derivative at t0", ErrNotFinite)
	}

	h := opts.InitialStep
	if h <= 0 {
		h = initialStep(f, t0, y, k[0], t1, opts, order)
	}
	maxStep := opts.MaxStep
	if maxStep <= 0 {
		maxStep = t1 - t0
	}

	ev := newEventTracker(opts.Events, t0, y)

	t := t0
	prevErr := 1.0 // for the PI controller
	for step := 0; ; step++ {
		if step >= opts.MaxSteps {
			return sol, fmt.Errorf("%w (%d)", ErrMaxSteps, opts.MaxSteps)
		}
		if t >= t1 {
			break
		}
		if h > maxStep {
			h = maxStep
		}
		if t+h > t1 {
			h = t1 - t
		}
		minStep := opts.MinStep
		if minStep <= 0 {
			minStep = 16 * math.Max(math.Nextafter(math.Abs(t), math.Inf(1))-math.Abs(t), 1e-300)
		}
		if h < minStep {
			return sol, fmt.Errorf("%w: h=%v at t=%v", ErrStepUnderflow, h, t)
		}

		// Stages (k[0] holds f(t, y) already — recomputed or FSAL).
		for s := 1; s < tb.Stages; s++ {
			for i := 0; i < n; i++ {
				acc := 0.0
				for j := 0; j < s; j++ {
					acc += tb.A[s][j] * k[j][i]
				}
				ytmp[i] = y[i] + h*acc
			}
			f(t+tb.C[s]*h, ytmp, k[s])
		}
		for i := 0; i < n; i++ {
			accHigh, accLow := 0.0, 0.0
			for s := 0; s < tb.Stages; s++ {
				accHigh += tb.BHigh[s] * k[s][i]
				accLow += tb.BLow[s] * k[s][i]
			}
			yHigh[i] = y[i] + h*accHigh
			errv[i] = h * (accHigh - accLow)
		}
		if !finite(yHigh) {
			// Reduce and retry; if already tiny, bail.
			h *= 0.25
			if h < minStep {
				return sol, fmt.Errorf("%w at t=%v", ErrNotFinite, t)
			}
			f(t, y, k[0]) // restore the first stage before retrying
			continue
		}

		// Weighted RMS error norm.
		norm := 0.0
		for i := 0; i < n; i++ {
			sc := opts.AbsTol + opts.RelTol*math.Max(math.Abs(y[i]), math.Abs(yHigh[i]))
			e := errv[i] / sc
			norm += e * e
		}
		norm = math.Sqrt(norm / float64(n))

		if norm <= 1 {
			// Accept.
			if opts.Metrics != nil {
				opts.Metrics.Steps.Inc()
			}
			tNew := t + h
			hit, stop := ev.check(f, t, y, tNew, yHigh)
			if hit != nil {
				sol.Events = append(sol.Events, *hit)
				if stop {
					sol.append(hit.T, hit.Y)
					if opts.StepMonitor != nil {
						if err := opts.StepMonitor(hit.T, hit.Y); err != nil {
							return sol, err
						}
					}
					return sol, nil
				}
			}
			t = tNew
			copy(y, yHigh)
			if opts.Dense || t >= t1 {
				sol.append(t, y)
			}
			if opts.StepMonitor != nil {
				if err := opts.StepMonitor(t, y); err != nil {
					return sol, err
				}
			}
			if tb.FSAL {
				copy(k[0], k[tb.Stages-1])
			} else {
				f(t, y, k[0])
			}
			// PI step controller (Gustafsson).
			beta1 := 0.7 / order
			beta2 := 0.4 / order
			fac := math.Pow(norm+1e-16, -beta1) * math.Pow(prevErr+1e-16, beta2)
			fac = math.Min(5, math.Max(0.2, 0.9*fac))
			h *= fac
			prevErr = norm
		} else {
			// Reject: shrink.
			if opts.Metrics != nil {
				opts.Metrics.Rejected.Inc()
			}
			h *= math.Max(0.1, 0.9*math.Pow(norm, -1/order))
		}
	}
	return sol, nil
}

// initialStep estimates a starting step from derivative magnitudes,
// following Hairer-Norsett-Wanner's heuristic (simplified).
func initialStep(f Func, t0 float64, y0, dy0 []float64, t1 float64, opts Options, order float64) float64 {
	d0, d1 := weightedNorm(y0, y0, opts), weightedNorm(dy0, y0, opts)
	var h0 float64
	if d0 < 1e-5 || d1 < 1e-5 {
		h0 = 1e-6
	} else {
		h0 = 0.01 * (d0 / d1)
	}
	// One Euler probe to estimate the second derivative scale.
	n := len(y0)
	y1 := make([]float64, n)
	for i := range y1 {
		y1[i] = y0[i] + h0*dy0[i]
	}
	dy1 := make([]float64, n)
	f(t0+h0, y1, dy1)
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = dy1[i] - dy0[i]
	}
	d2 := weightedNorm(diff, y0, opts) / h0
	var h1 float64
	if math.Max(d1, d2) <= 1e-15 {
		h1 = math.Max(1e-6, h0*1e-3)
	} else {
		h1 = math.Pow(0.01/math.Max(d1, d2), 1/order)
	}
	h := math.Min(100*h0, h1)
	return math.Min(h, t1-t0)
}

func weightedNorm(v, ref []float64, opts Options) float64 {
	s := 0.0
	for i, x := range v {
		sc := opts.AbsTol + opts.RelTol*math.Abs(ref[i])
		e := x / sc
		s += e * e
	}
	return math.Sqrt(s / float64(len(v)))
}
