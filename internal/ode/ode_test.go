package ode

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// decay is y' = -y with y(0)=1, exact y(t)=e^{-t}.
func decay(_ float64, y, dydt []float64) { dydt[0] = -y[0] }

// harmonic is x'=v, v'=-x with exact (cos t, -sin t) from (1, 0).
func harmonic(_ float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}

func TestFixedSteppersAccuracy(t *testing.T) {
	cases := []struct {
		stepper Stepper
		tol     float64
	}{
		{Euler{}, 2e-2},
		{Heun{}, 2e-4},
		{RK4{}, 1e-8},
	}
	for _, tc := range cases {
		t.Run(tc.stepper.Name(), func(t *testing.T) {
			sol, err := FixedIntegrate(tc.stepper, decay, 0, []float64{1}, 2, 1e-3)
			if err != nil {
				t.Fatalf("FixedIntegrate: %v", err)
			}
			_, y := sol.Last()
			want := math.Exp(-2)
			if got := math.Abs(y[0] - want); got > tc.tol {
				t.Errorf("final error %g > tol %g", got, tc.tol)
			}
		})
	}
}

// TestConvergenceOrder verifies each stepper's empirical order of accuracy
// by halving the step and measuring the error ratio on the harmonic
// oscillator.
func TestConvergenceOrder(t *testing.T) {
	for _, s := range []Stepper{Euler{}, Heun{}, RK4{}} {
		t.Run(s.Name(), func(t *testing.T) {
			errAt := func(h float64) float64 {
				sol, err := FixedIntegrate(s, harmonic, 0, []float64{1, 0}, 1, h)
				if err != nil {
					t.Fatalf("FixedIntegrate(h=%g): %v", h, err)
				}
				_, y := sol.Last()
				return math.Hypot(y[0]-math.Cos(1), y[1]+math.Sin(1))
			}
			e1 := errAt(1e-2)
			e2 := errAt(5e-3)
			order := math.Log2(e1 / e2)
			if want := float64(s.Order()); math.Abs(order-want) > 0.35 {
				t.Errorf("empirical order %.2f, want ~%v (e1=%g e2=%g)", order, want, e1, e2)
			}
		})
	}
}

func TestDormandPrinceAccuracy(t *testing.T) {
	sol, err := DormandPrince(harmonic, 0, []float64{1, 0}, 10, DefaultOptions())
	if err != nil {
		t.Fatalf("DormandPrince: %v", err)
	}
	_, y := sol.Last()
	if e := math.Hypot(y[0]-math.Cos(10), y[1]+math.Sin(10)); e > 1e-6 {
		t.Errorf("final error %g too large", e)
	}
	if sol.Len() < 3 {
		t.Errorf("expected dense mesh, got %d points", sol.Len())
	}
}

func TestDormandPrinceStiffish(t *testing.T) {
	// y' = -50(y - cos t): moderately stiff; adaptive stepping must
	// survive with controlled error.
	f := func(tt float64, y, dydt []float64) { dydt[0] = -50 * (y[0] - math.Cos(tt)) }
	sol, err := DormandPrince(f, 0, []float64{0}, 3, DefaultOptions())
	if err != nil {
		t.Fatalf("DormandPrince: %v", err)
	}
	_, y := sol.Last()
	// Exact solution: y = (2500 cos t + 50 sin t)/2501 - (2500/2501) e^{-50 t}.
	exact := (2500*math.Cos(3) + 50*math.Sin(3)) / 2501
	if e := math.Abs(y[0] - exact); e > 1e-6 {
		t.Errorf("stiffish final error %g", e)
	}
}

func TestDormandPrinceEventTerminal(t *testing.T) {
	// Locate the first zero of cos(t) (the x-component of the harmonic
	// oscillator) at t = pi/2.
	opts := DefaultOptions()
	opts.Events = []Event{{
		G:        func(_ float64, y []float64) float64 { return y[0] },
		Terminal: true,
		Name:     "x=0",
	}}
	sol, err := DormandPrince(harmonic, 0, []float64{1, 0}, 10, opts)
	if err != nil {
		t.Fatalf("DormandPrince: %v", err)
	}
	if len(sol.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(sol.Events))
	}
	ev := sol.Events[0]
	if math.Abs(ev.T-math.Pi/2) > 1e-8 {
		t.Errorf("event at t=%.12f, want pi/2=%.12f", ev.T, math.Pi/2)
	}
	if math.Abs(ev.Y[0]) > 1e-8 {
		t.Errorf("event state x=%g, want ~0", ev.Y[0])
	}
	tEnd, _ := sol.Last()
	if math.Abs(tEnd-ev.T) > 1e-12 {
		t.Errorf("integration did not stop at terminal event: tEnd=%v", tEnd)
	}
}

func TestDormandPrinceEventDirection(t *testing.T) {
	// Rising-only zero crossings of sin(t): at 2*pi (not pi).
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	opts := DefaultOptions()
	opts.Events = []Event{{
		G:         func(_ float64, y []float64) float64 { return y[0] },
		Direction: +1,
		Terminal:  true,
	}}
	// Start at (0+, ...) just above zero going up? Use x=sin(t): start at
	// (0,1): first rising crossing after t=0 is 2*pi.
	sol, err := DormandPrince(f, 1e-9, []float64{math.Sin(1e-9), math.Cos(1e-9)}, 10, opts)
	if err != nil {
		t.Fatalf("DormandPrince: %v", err)
	}
	if len(sol.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(sol.Events))
	}
	if got := sol.Events[0].T; math.Abs(got-2*math.Pi) > 1e-7 {
		t.Errorf("rising crossing at %v, want 2*pi", got)
	}
}

func TestDormandPrinceNonTerminalEvents(t *testing.T) {
	opts := DefaultOptions()
	opts.Events = []Event{{
		G: func(_ float64, y []float64) float64 { return y[0] },
	}}
	sol, err := DormandPrince(harmonic, 0, []float64{1, 0}, 10, opts)
	if err != nil {
		t.Fatalf("DormandPrince: %v", err)
	}
	// cos(t) has zeros at pi/2, 3pi/2, 5pi/2 within [0,10].
	if len(sol.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(sol.Events))
	}
	want := []float64{math.Pi / 2, 3 * math.Pi / 2, 5 * math.Pi / 2}
	for i, ev := range sol.Events {
		if math.Abs(ev.T-want[i]) > 1e-6 {
			t.Errorf("event %d at %v, want %v", i, ev.T, want[i])
		}
	}
}

func TestSolutionAt(t *testing.T) {
	sol, err := DormandPrince(decay, 0, []float64{1}, 2, DefaultOptions())
	if err != nil {
		t.Fatalf("DormandPrince: %v", err)
	}
	for _, tt := range []float64{0, 0.5, 1, 1.7, 2} {
		y, err := sol.At(tt)
		if err != nil {
			t.Fatalf("At(%v): %v", tt, err)
		}
		if e := math.Abs(y[0] - math.Exp(-tt)); e > 1e-4 {
			t.Errorf("At(%v) error %g", tt, e)
		}
	}
	// Clamping outside the interval.
	y, err := sol.At(-1)
	if err != nil || y[0] != 1 {
		t.Errorf("At(-1) = %v, %v; want clamped initial state", y, err)
	}
}

func TestSolutionComponent(t *testing.T) {
	sol := &Solution{}
	sol.append(0, []float64{1, 2})
	sol.append(1, []float64{3, 4})
	if got := sol.Component(1); got[0] != 2 || got[1] != 4 {
		t.Errorf("Component(1) = %v", got)
	}
}

func TestInvalidArgs(t *testing.T) {
	if _, err := FixedIntegrate(RK4{}, decay, 0, []float64{1}, -1, 0.1); !errors.Is(err, ErrStep) {
		t.Errorf("negative interval: err=%v, want ErrStep", err)
	}
	if _, err := FixedIntegrate(RK4{}, decay, 0, []float64{1}, 1, 0); !errors.Is(err, ErrStep) {
		t.Errorf("zero step: err=%v, want ErrStep", err)
	}
	if _, err := DormandPrince(decay, 1, []float64{1}, 0, Options{}); !errors.Is(err, ErrStep) {
		t.Errorf("reversed interval: err=%v, want ErrStep", err)
	}
	if _, err := DormandPrince(decay, 0, nil, 1, Options{}); !errors.Is(err, ErrDimension) {
		t.Errorf("empty state: err=%v, want ErrDimension", err)
	}
	var out [1]float64
	if err := (RK4{}).Step(decay, 0, []float64{1}, math.NaN(), out[:]); !errors.Is(err, ErrStep) {
		t.Errorf("NaN step: err=%v, want ErrStep", err)
	}
	if err := (Euler{}).Step(decay, 0, []float64{1, 2}, 0.1, out[:]); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatched out: err=%v, want ErrDimension", err)
	}
}

func TestNotFiniteDetected(t *testing.T) {
	blow := func(_ float64, y, dydt []float64) { dydt[0] = y[0] * y[0] } // finite-time blowup
	_, err := FixedIntegrate(RK4{}, blow, 0, []float64{1}, 5, 0.01)
	if !errors.Is(err, ErrNotFinite) && !errors.Is(err, ErrStep) {
		t.Errorf("blowup: err=%v, want ErrNotFinite", err)
	}
}

func TestMaxStepsRespected(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSteps = 3
	opts.MaxStep = 1e-6
	_, err := DormandPrince(harmonic, 0, []float64{1, 0}, 10, opts)
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("err=%v, want ErrMaxSteps", err)
	}
}

// QuickLinear checks DormandPrince against the closed form of y' = -a*y for
// random decay rates and horizons (property-based).
func TestQuickLinearDecay(t *testing.T) {
	prop := func(aRaw, tRaw uint8) bool {
		a := 0.1 + float64(aRaw%50)/10 // 0.1 .. 5.0
		horizon := 0.1 + float64(tRaw%40)/10
		f := func(_ float64, y, dydt []float64) { dydt[0] = -a * y[0] }
		sol, err := DormandPrince(f, 0, []float64{1}, horizon, DefaultOptions())
		if err != nil {
			return false
		}
		_, y := sol.Last()
		return math.Abs(y[0]-math.Exp(-a*horizon)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnergyBound: RK45 on the undamped oscillator preserves energy to
// within tolerance over moderate horizons for random initial conditions.
func TestQuickEnergyBound(t *testing.T) {
	prop := func(xRaw, vRaw int8) bool {
		x0 := float64(xRaw) / 16
		v0 := float64(vRaw) / 16
		if x0 == 0 && v0 == 0 {
			return true
		}
		sol, err := DormandPrince(harmonic, 0, []float64{x0, v0}, 5, DefaultOptions())
		if err != nil {
			return false
		}
		e0 := x0*x0 + v0*v0
		_, y := sol.Last()
		e1 := y[0]*y[0] + y[1]*y[1]
		return math.Abs(e1-e0) < 1e-6*(1+e0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickEventInsideInterval: located event times always lie within the
// integration interval and the event function is ~0 there.
func TestQuickEventInsideInterval(t *testing.T) {
	prop := func(phaseRaw uint8) bool {
		phase := float64(phaseRaw) / 256 * math.Pi // 0 .. pi
		y0 := []float64{math.Cos(phase), -math.Sin(phase)}
		opts := DefaultOptions()
		opts.Events = []Event{{
			G:        func(_ float64, y []float64) float64 { return y[0] },
			Terminal: true,
		}}
		sol, err := DormandPrince(harmonic, 0, y0, 20, opts)
		if err != nil {
			return false
		}
		if len(sol.Events) == 0 {
			return false // cos always crosses zero within 20s
		}
		ev := sol.Events[0]
		return ev.T >= 0 && ev.T <= 20 && math.Abs(ev.Y[0]) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestHermiteEndpoints(t *testing.T) {
	y0 := []float64{1, 2}
	d0 := []float64{0.5, -1}
	y1 := []float64{3, 0}
	d1 := []float64{2, 2}
	out := make([]float64, 2)
	hermite(0, y0, d0, 1, y1, d1, 0, out)
	if out[0] != y0[0] || out[1] != y0[1] {
		t.Errorf("hermite(0) = %v, want %v", out, y0)
	}
	hermite(0, y0, d0, 1, y1, d1, 1, out)
	if math.Abs(out[0]-y1[0]) > 1e-12 || math.Abs(out[1]-y1[1]) > 1e-12 {
		t.Errorf("hermite(1) = %v, want %v", out, y1)
	}
}

func TestCrossedDirections(t *testing.T) {
	cases := []struct {
		g0, g1 float64
		dir    int
		want   bool
	}{
		{-1, 1, 0, true},
		{-1, 1, +1, true},
		{-1, 1, -1, false},
		{1, -1, 0, true},
		{1, -1, -1, true},
		{1, -1, +1, false},
		{1, 2, 0, false},
		{-1, -2, 0, false},
		{0, 0, 0, false},
	}
	for _, c := range cases {
		if got := crossed(c.g0, c.g1, c.dir); got != c.want {
			t.Errorf("crossed(%v,%v,%d) = %v, want %v", c.g0, c.g1, c.dir, got, c.want)
		}
	}
}
