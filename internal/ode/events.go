package ode

import "math"

// Event describes a scalar crossing condition g(t, y) = 0 to be located
// during integration.
type Event struct {
	// G is the event function; a zero of G along the trajectory is an
	// event. G must be continuous.
	G func(t float64, y []float64) float64
	// Direction restricts which crossings count: +1 only rising
	// (g goes negative to positive), -1 only falling, 0 both.
	Direction int
	// Terminal stops the integration at the crossing when true.
	Terminal bool
	// Name is an optional label recorded in the EventHit.
	Name string
}

// EventHit records one located event crossing.
type EventHit struct {
	// Index is the position of the event in Options.Events.
	Index int
	// Name copies Event.Name.
	Name string
	// T is the located crossing time.
	T float64
	// Y is the interpolated state at the crossing.
	Y []float64
}

type eventTracker struct {
	events []Event
	lastG  []float64
}

func newEventTracker(events []Event, t0 float64, y0 []float64) *eventTracker {
	tr := &eventTracker{events: events, lastG: make([]float64, len(events))}
	for i, e := range events {
		tr.lastG[i] = e.G(t0, y0)
	}
	return tr
}

// check scans the accepted step [t0,t1] for crossings. It returns the
// earliest hit (or nil) and whether integration must stop. The tracker's
// stored g values advance to t1 (or to the terminal hit time).
func (tr *eventTracker) check(f Func, t0 float64, y0 []float64, t1 float64, y1 []float64) (*EventHit, bool) {
	if len(tr.events) == 0 {
		return nil, false
	}
	n := len(y0)
	d0 := make([]float64, n)
	d1 := make([]float64, n)
	f(t0, y0, d0)
	f(t1, y1, d1)
	interp := func(t float64, out []float64) {
		hermite(t0, y0, d0, t1, y1, d1, t, out)
	}

	bestT := math.Inf(1)
	bestIdx := -1
	for i, e := range tr.events {
		g0 := tr.lastG[i]
		g1 := e.G(t1, y1)
		if crossed(g0, g1, e.Direction) {
			tc := bisectEvent(e, interp, t0, t1, g0, g1, n)
			if tc < bestT {
				bestT = tc
				bestIdx = i
			}
		}
	}
	if bestIdx < 0 {
		for i, e := range tr.events {
			tr.lastG[i] = e.G(t1, y1)
		}
		return nil, false
	}
	yc := make([]float64, n)
	interp(bestT, yc)
	hit := &EventHit{Index: bestIdx, Name: tr.events[bestIdx].Name, T: bestT, Y: yc}
	if tr.events[bestIdx].Terminal {
		return hit, true
	}
	for i, e := range tr.events {
		tr.lastG[i] = e.G(t1, y1)
	}
	return hit, false
}

func crossed(g0, g1 float64, dir int) bool {
	switch {
	case g0 == 0 && g1 == 0:
		return false
	case g0 <= 0 && g1 > 0:
		return dir >= 0
	case g0 >= 0 && g1 < 0:
		return dir <= 0
	default:
		return false
	}
}

// bisectEvent locates the crossing of e.G to ~1e-13 relative time tolerance
// using bisection on the interpolated trajectory.
func bisectEvent(e Event, interp func(float64, []float64), ta, tb, ga, gb float64, n int) float64 {
	y := make([]float64, n)
	lo, hi := ta, tb
	glo := ga
	for iter := 0; iter < 128; iter++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		interp(mid, y)
		gm := e.G(mid, y)
		if gm == 0 {
			return mid
		}
		if (glo < 0) == (gm < 0) {
			lo = mid
			glo = gm
		} else {
			hi = mid
		}
		if hi-lo < 1e-13*math.Max(1, math.Abs(ta)) {
			break
		}
	}
	return hi
}

// hermite evaluates the cubic Hermite interpolant through (t0,y0) with slope
// d0 and (t1,y1) with slope d1 at time t, writing the state into out.
func hermite(t0 float64, y0, d0 []float64, t1 float64, y1, d1 []float64, t float64, out []float64) {
	h := t1 - t0
	s := (t - t0) / h
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	for i := range out {
		out[i] = h00*y0[i] + h10*h*d0[i] + h01*y1[i] + h11*h*d1[i]
	}
}
