// Package faults provides a seeded, deterministic fault-injection plan
// for the packet-level simulator and the surrounding compute pipeline.
//
// The paper's fluid model (and Theorem 1) assumes the BCN feedback path
// is ideal: every congestion-point message reaches its reaction point
// instantly and intact. Real Data Center Ethernet loses, delays, reorders
// and corrupts feedback frames, drops data frames, and flaps link
// capacity. A Plan makes those degradations injectable at the simulator's
// message- and frame-delivery points so experiments can measure how much
// feedback degradation BCN's strong stability survives.
//
// Determinism contract: a Plan is driven entirely by the Config.Seed.
// Each fault dimension (feedback drop, jitter, reorder, corruption, data
// loss) draws from its own seeded stream, so enabling or tuning one fault
// does not perturb the random sequence of another, and two runs with the
// same Config consult identical fault decisions in the same order. Plans
// are not safe for concurrent use; build one Plan per simulation run.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrConfig marks an invalid fault configuration.
var ErrConfig = errors.New("faults: invalid config")

// Config describes which faults to inject and how hard. The zero value
// injects nothing. Probabilities are per consulted event; durations are
// integer nanoseconds to match the simulator clock.
type Config struct {
	// Seed drives every fault stream. Zero derives a fixed default seed
	// so a zero-valued Seed still yields a reproducible plan.
	Seed int64

	// FeedbackLoss is the probability, in [0, 1], that a BCN feedback
	// message is dropped on its way back to the source.
	FeedbackLoss float64
	// FeedbackJitterNs adds a uniform extra delivery delay in
	// [0, FeedbackJitterNs] nanoseconds to each surviving feedback
	// message. Because each message draws independently, jitter larger
	// than the message spacing reorders deliveries.
	FeedbackJitterNs int64
	// FeedbackReorder is the probability, in [0, 1], that a surviving
	// feedback message is additionally held for ReorderDelayNs, forcing
	// it behind messages sent after it.
	FeedbackReorder float64
	// ReorderDelayNs is the hold applied to reordered messages
	// (default 10·FeedbackJitterNs, or 10 µs when jitter is zero).
	ReorderDelayNs int64
	// FeedbackCorrupt is the probability, in [0, 1], that a feedback
	// message has one wire bit flipped before delivery. Corrupted frames
	// either fail decoding/validation (counted by the receiver) or carry
	// perturbed-but-plausible feedback — exactly the failure CRC-less
	// validation cannot catch.
	FeedbackCorrupt float64

	// DataLoss is the probability, in [0, 1], that a data frame is lost
	// on the link before reaching the bottleneck.
	DataLoss float64

	// FlapPeriodNs enables periodic link-capacity flapping: every
	// period, the bottleneck serves at FlapFactor × capacity for the
	// first FlapDownNs nanoseconds. Zero disables flapping.
	FlapPeriodNs int64
	// FlapDownNs is the degraded-phase length within each flap period.
	FlapDownNs int64
	// FlapFactor is the capacity multiplier during the degraded phase,
	// in (0, 1].
	FlapFactor float64

	// BlackoutPeriodNs enables periodic congestion-point sampling
	// blackouts: every period, feedback generated during the first
	// BlackoutDurNs nanoseconds is suppressed (queue accounting
	// continues). Zero disables blackouts.
	BlackoutPeriodNs int64
	// BlackoutDurNs is the blackout-window length within each period.
	BlackoutDurNs int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"FeedbackLoss", c.FeedbackLoss},
		{"FeedbackReorder", c.FeedbackReorder},
		{"FeedbackCorrupt", c.FeedbackCorrupt},
		{"DataLoss", c.DataLoss},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("%w: %s=%v must be in [0, 1]", ErrConfig, p.name, p.v)
		}
	}
	if c.FeedbackJitterNs < 0 {
		return fmt.Errorf("%w: FeedbackJitterNs=%d must be non-negative", ErrConfig, c.FeedbackJitterNs)
	}
	if c.ReorderDelayNs < 0 {
		return fmt.Errorf("%w: ReorderDelayNs=%d must be non-negative", ErrConfig, c.ReorderDelayNs)
	}
	if c.FlapPeriodNs < 0 || c.FlapDownNs < 0 {
		return fmt.Errorf("%w: flap times must be non-negative", ErrConfig)
	}
	if c.FlapPeriodNs > 0 {
		if c.FlapDownNs > c.FlapPeriodNs {
			return fmt.Errorf("%w: FlapDownNs=%d exceeds FlapPeriodNs=%d", ErrConfig, c.FlapDownNs, c.FlapPeriodNs)
		}
		if math.IsNaN(c.FlapFactor) || !(c.FlapFactor > 0) || c.FlapFactor > 1 {
			return fmt.Errorf("%w: FlapFactor=%v must be in (0, 1]", ErrConfig, c.FlapFactor)
		}
	}
	if c.BlackoutPeriodNs < 0 || c.BlackoutDurNs < 0 {
		return fmt.Errorf("%w: blackout times must be non-negative", ErrConfig)
	}
	if c.BlackoutPeriodNs > 0 && c.BlackoutDurNs > c.BlackoutPeriodNs {
		return fmt.Errorf("%w: BlackoutDurNs=%d exceeds BlackoutPeriodNs=%d", ErrConfig, c.BlackoutDurNs, c.BlackoutPeriodNs)
	}
	return nil
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.FeedbackLoss > 0 || c.FeedbackJitterNs > 0 || c.FeedbackReorder > 0 ||
		c.FeedbackCorrupt > 0 || c.DataLoss > 0 ||
		(c.FlapPeriodNs > 0 && c.FlapDownNs > 0) ||
		(c.BlackoutPeriodNs > 0 && c.BlackoutDurNs > 0)
}

// Stats counts the faults a Plan actually injected.
type Stats struct {
	// FeedbackDropped counts feedback messages lost outright.
	FeedbackDropped uint64
	// FeedbackDelayed counts feedback messages given nonzero extra delay.
	FeedbackDelayed uint64
	// FeedbackReordered counts feedback messages held for the reorder
	// delay (a subset of FeedbackDelayed).
	FeedbackReordered uint64
	// FeedbackCorrupted counts feedback messages with a flipped bit.
	FeedbackCorrupted uint64
	// DataDropped counts data frames lost on links.
	DataDropped uint64
	// SamplesBlanked counts congestion-point feedback suppressed by
	// sampling blackouts.
	SamplesBlanked uint64
}

// Plan is an instantiated fault schedule. The zero of *Plan (nil) is a
// valid no-fault plan: every method on a nil receiver reports "no fault",
// so callers can thread an optional plan without nil checks.
type Plan struct {
	cfg Config

	drop, jitter, reorder, corrupt, data *rand.Rand
	flapPhase, blackoutPhase             int64

	stats Stats
}

// defaultSeed replaces a zero Config.Seed so the zero value still names
// one reproducible plan rather than a special "unseeded" mode.
const defaultSeed int64 = 0x62636e70 // "bcnp"

// NewPlan validates the configuration and builds a plan.
func NewPlan(cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	if cfg.ReorderDelayNs == 0 {
		cfg.ReorderDelayNs = 10 * cfg.FeedbackJitterNs
		if cfg.ReorderDelayNs == 0 {
			cfg.ReorderDelayNs = 10_000 // 10 µs
		}
	}
	p := &Plan{
		cfg:     cfg,
		drop:    stream(seed, 1),
		jitter:  stream(seed, 2),
		reorder: stream(seed, 3),
		corrupt: stream(seed, 4),
		data:    stream(seed, 5),
	}
	// Window phases are seeded too, so periodic faults do not all start
	// aligned at t = 0.
	if cfg.FlapPeriodNs > 0 {
		p.flapPhase = stream(seed, 6).Int63n(cfg.FlapPeriodNs)
	}
	if cfg.BlackoutPeriodNs > 0 {
		p.blackoutPhase = stream(seed, 7).Int63n(cfg.BlackoutPeriodNs)
	}
	return p, nil
}

// stream derives an independent RNG for one fault dimension via a
// splitmix64 scramble of (seed, id).
func stream(seed, id int64) *rand.Rand {
	z := uint64(seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Config returns the plan's (normalized) configuration.
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// Stats returns the injected-fault counters so far.
func (p *Plan) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return p.stats
}

// DropFeedback decides whether the next feedback message is lost.
func (p *Plan) DropFeedback() bool {
	if p == nil || p.cfg.FeedbackLoss == 0 {
		return false
	}
	if p.drop.Float64() < p.cfg.FeedbackLoss {
		p.stats.FeedbackDropped++
		return true
	}
	return false
}

// FeedbackDelayNs returns the extra delivery delay for the next surviving
// feedback message: uniform jitter plus, with probability FeedbackReorder,
// the reorder hold.
func (p *Plan) FeedbackDelayNs() int64 {
	if p == nil {
		return 0
	}
	var d int64
	if p.cfg.FeedbackJitterNs > 0 {
		d += p.jitter.Int63n(p.cfg.FeedbackJitterNs + 1)
	}
	if p.cfg.FeedbackReorder > 0 && p.reorder.Float64() < p.cfg.FeedbackReorder {
		d += p.cfg.ReorderDelayNs
		p.stats.FeedbackReordered++
	}
	if d > 0 {
		p.stats.FeedbackDelayed++
	}
	return d
}

// CorruptFeedback possibly flips one bit of the encoded message in place,
// reporting whether it did.
func (p *Plan) CorruptFeedback(data []byte) bool {
	if p == nil || p.cfg.FeedbackCorrupt == 0 || len(data) == 0 {
		return false
	}
	if p.corrupt.Float64() >= p.cfg.FeedbackCorrupt {
		return false
	}
	bit := p.corrupt.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	p.stats.FeedbackCorrupted++
	return true
}

// DropData decides whether the next data frame is lost on its link.
func (p *Plan) DropData() bool {
	if p == nil || p.cfg.DataLoss == 0 {
		return false
	}
	if p.data.Float64() < p.cfg.DataLoss {
		p.stats.DataDropped++
		return true
	}
	return false
}

// CapacityScale returns the bottleneck capacity multiplier at simulation
// time nowNs: FlapFactor during the degraded phase of each flap period,
// 1 otherwise.
func (p *Plan) CapacityScale(nowNs int64) float64 {
	if p == nil || p.cfg.FlapPeriodNs <= 0 || p.cfg.FlapDownNs <= 0 || nowNs < 0 {
		return 1
	}
	if (nowNs+p.flapPhase)%p.cfg.FlapPeriodNs < p.cfg.FlapDownNs {
		return p.cfg.FlapFactor
	}
	return 1
}

// SampleBlanked reports whether congestion-point feedback generated at
// simulation time nowNs falls in a sampling blackout window, counting the
// suppression when it does.
func (p *Plan) SampleBlanked(nowNs int64) bool {
	if p == nil || p.cfg.BlackoutPeriodNs <= 0 || p.cfg.BlackoutDurNs <= 0 || nowNs < 0 {
		return false
	}
	if (nowNs+p.blackoutPhase)%p.cfg.BlackoutPeriodNs < p.cfg.BlackoutDurNs {
		p.stats.SamplesBlanked++
		return true
	}
	return false
}
