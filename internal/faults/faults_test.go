package faults

import (
	"bytes"
	"testing"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{FeedbackLoss: -0.1},
		{FeedbackLoss: 1.5},
		{FeedbackCorrupt: 2},
		{FeedbackReorder: -1},
		{DataLoss: 7},
		{FeedbackJitterNs: -5},
		{ReorderDelayNs: -1},
		{FlapPeriodNs: 100, FlapDownNs: 200, FlapFactor: 0.5},
		{FlapPeriodNs: 100, FlapDownNs: 50, FlapFactor: 0},
		{FlapPeriodNs: 100, FlapDownNs: 50, FlapFactor: 1.5},
		{FlapPeriodNs: -1},
		{BlackoutPeriodNs: 100, BlackoutDurNs: 200},
		{BlackoutPeriodNs: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, c)
		}
		if _, err := NewPlan(c); err == nil {
			t.Errorf("NewPlan accepted config %d", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	cases := []Config{
		{FeedbackLoss: 0.1},
		{FeedbackJitterNs: 100},
		{FeedbackReorder: 0.1},
		{FeedbackCorrupt: 0.1},
		{DataLoss: 0.1},
		{FlapPeriodNs: 100, FlapDownNs: 10, FlapFactor: 0.5},
		{BlackoutPeriodNs: 100, BlackoutDurNs: 10},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("config %d not enabled: %+v", i, c)
		}
	}
}

func TestNilPlanIsNoFault(t *testing.T) {
	var p *Plan
	if p.DropFeedback() || p.DropData() {
		t.Error("nil plan dropped something")
	}
	if d := p.FeedbackDelayNs(); d != 0 {
		t.Errorf("nil plan delay = %d", d)
	}
	buf := []byte{1, 2, 3}
	if p.CorruptFeedback(buf) || !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Error("nil plan corrupted bytes")
	}
	if s := p.CapacityScale(12345); s != 1 {
		t.Errorf("nil plan capacity scale = %v", s)
	}
	if p.SampleBlanked(12345) {
		t.Error("nil plan blanked a sample")
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Errorf("nil plan stats = %+v", st)
	}
}

// TestDeterminism pins the core contract: two plans with the same seed
// make identical decisions in the same order.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Seed:             42,
		FeedbackLoss:     0.3,
		FeedbackJitterNs: 5000,
		FeedbackReorder:  0.1,
		FeedbackCorrupt:  0.2,
		DataLoss:         0.25,
		FlapPeriodNs:     1000, FlapDownNs: 300, FlapFactor: 0.5,
		BlackoutPeriodNs: 2000, BlackoutDurNs: 500,
	}
	a, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if a.DropFeedback() != b.DropFeedback() {
			t.Fatalf("drop decision %d diverged", i)
		}
		if a.FeedbackDelayNs() != b.FeedbackDelayNs() {
			t.Fatalf("delay decision %d diverged", i)
		}
		ba := []byte{0xAA, 0x55, 0xF0, 0x0F}
		bb := []byte{0xAA, 0x55, 0xF0, 0x0F}
		if a.CorruptFeedback(ba) != b.CorruptFeedback(bb) || !bytes.Equal(ba, bb) {
			t.Fatalf("corruption decision %d diverged", i)
		}
		if a.DropData() != b.DropData() {
			t.Fatalf("data decision %d diverged", i)
		}
		now := int64(i) * 137
		if a.CapacityScale(now) != b.CapacityScale(now) {
			t.Fatalf("capacity scale %d diverged", i)
		}
		if a.SampleBlanked(now) != b.SampleBlanked(now) {
			t.Fatalf("blackout decision %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestStreamIndependence: tuning one fault dimension must not perturb the
// decision sequence of another.
func TestStreamIndependence(t *testing.T) {
	base := Config{Seed: 7, FeedbackLoss: 0.5}
	withJitter := base
	withJitter.FeedbackJitterNs = 10000

	a, _ := NewPlan(base)
	b, _ := NewPlan(withJitter)
	for i := 0; i < 1000; i++ {
		if a.DropFeedback() != b.DropFeedback() {
			t.Fatalf("drop decision %d perturbed by enabling jitter", i)
		}
		b.FeedbackDelayNs() // advance jitter stream in between
	}
}

func TestZeroSeedIsFixedDefault(t *testing.T) {
	a, _ := NewPlan(Config{FeedbackLoss: 0.5})
	b, _ := NewPlan(Config{FeedbackLoss: 0.5})
	c, _ := NewPlan(Config{Seed: defaultSeed, FeedbackLoss: 0.5})
	for i := 0; i < 100; i++ {
		da, db, dc := a.DropFeedback(), b.DropFeedback(), c.DropFeedback()
		if da != db || da != dc {
			t.Fatalf("zero seed not the fixed default at decision %d", i)
		}
	}
}

func TestRatesAreHonored(t *testing.T) {
	p, _ := NewPlan(Config{Seed: 3, FeedbackLoss: 0.25, DataLoss: 0.5})
	const n = 100000
	for i := 0; i < n; i++ {
		p.DropFeedback()
		p.DropData()
	}
	st := p.Stats()
	if f := float64(st.FeedbackDropped) / n; f < 0.23 || f > 0.27 {
		t.Errorf("feedback drop fraction = %v, want ~0.25", f)
	}
	if f := float64(st.DataDropped) / n; f < 0.48 || f > 0.52 {
		t.Errorf("data drop fraction = %v, want ~0.5", f)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	p, _ := NewPlan(Config{Seed: 5, FeedbackCorrupt: 1})
	orig := []byte{0x00, 0xFF, 0xA5, 0x3C}
	for i := 0; i < 100; i++ {
		buf := append([]byte(nil), orig...)
		if !p.CorruptFeedback(buf) {
			t.Fatal("corruption rate 1 did not corrupt")
		}
		diff := 0
		for j := range buf {
			x := buf[j] ^ orig[j]
			for ; x != 0; x &= x - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("flipped %d bits, want 1", diff)
		}
	}
}

func TestCapacityScaleAndBlackoutWindows(t *testing.T) {
	cfg := Config{Seed: 11, FlapPeriodNs: 1000, FlapDownNs: 250, FlapFactor: 0.5,
		BlackoutPeriodNs: 1000, BlackoutDurNs: 400}
	p, _ := NewPlan(cfg)
	var down, blanked int
	const n = 100000
	for i := 0; i < n; i++ {
		if p.CapacityScale(int64(i)) != 1 {
			down++
		}
		if p.SampleBlanked(int64(i)) {
			blanked++
		}
	}
	if f := float64(down) / n; f < 0.24 || f > 0.26 {
		t.Errorf("down fraction = %v, want ~0.25", f)
	}
	if f := float64(blanked) / n; f < 0.39 || f > 0.41 {
		t.Errorf("blanked fraction = %v, want ~0.4", f)
	}
	if got := p.Stats().SamplesBlanked; got != uint64(blanked) {
		t.Errorf("SamplesBlanked = %d, want %d", got, blanked)
	}
	// Negative time (pre-start bookkeeping) never faults.
	if p.CapacityScale(-5) != 1 || p.SampleBlanked(-5) {
		t.Error("negative time faulted")
	}
}

func TestJitterBounds(t *testing.T) {
	p, _ := NewPlan(Config{Seed: 9, FeedbackJitterNs: 1000})
	var maxSeen int64
	for i := 0; i < 10000; i++ {
		d := p.FeedbackDelayNs()
		if d < 0 || d > 1000 {
			t.Fatalf("jitter %d outside [0, 1000]", d)
		}
		if d > maxSeen {
			maxSeen = d
		}
	}
	if maxSeen < 900 {
		t.Errorf("max jitter seen = %d, expected near 1000", maxSeen)
	}
}

func TestReorderHoldDefaults(t *testing.T) {
	p, _ := NewPlan(Config{Seed: 13, FeedbackReorder: 1})
	d := p.FeedbackDelayNs()
	if d != 10_000 {
		t.Errorf("default reorder hold = %d, want 10000", d)
	}
	if p.Stats().FeedbackReordered != 1 || p.Stats().FeedbackDelayed != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
	p2, _ := NewPlan(Config{Seed: 13, FeedbackReorder: 1, FeedbackJitterNs: 500})
	if got := p2.Config().ReorderDelayNs; got != 5000 {
		t.Errorf("derived reorder hold = %d, want 10x jitter", got)
	}
}
