package cluster

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func signedResult(n int) ShardResult {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{CSV: strings.Repeat("x", i+1), Violations: uint64(i)}
	}
	res := ShardResult{Index: 7, Rows: rows}
	SignShardResult(&res)
	return res
}

func TestSignAndVerifyShardResult(t *testing.T) {
	res := signedResult(4)
	if len(res.RowSums) != 4 || len(res.Digest) != 64 {
		t.Fatalf("signed result: %d sums, digest %q", len(res.RowSums), res.Digest)
	}
	if err := VerifyShardResult(res); err != nil {
		t.Fatalf("freshly signed result rejected: %v", err)
	}
	// Signing is deterministic: same rows, same signature.
	res2 := signedResult(4)
	if res2.Digest != res.Digest {
		t.Error("signing the same rows twice produced different digests")
	}
	// An empty shard still signs and verifies (zero rows is a valid
	// result shape at the digest layer; the wire layer rejects it).
	empty := ShardResult{Index: 1}
	SignShardResult(&empty)
	if err := VerifyShardResult(empty); err != nil {
		t.Errorf("empty signed result rejected: %v", err)
	}
}

func TestVerifyShardResultRejectsTampering(t *testing.T) {
	cases := map[string]func(*ShardResult){
		"unsigned":        func(r *ShardResult) { r.RowSums, r.Digest = nil, "" },
		"missing digest":  func(r *ShardResult) { r.Digest = "" },
		"wrong digest":    func(r *ShardResult) { r.Digest = strings.Repeat("0", 64) },
		"row flipped":     func(r *ShardResult) { r.Rows[2].CSV = "tampered" },
		"row dropped":     func(r *ShardResult) { r.Rows = r.Rows[:3] },
		"sum truncated":   func(r *ShardResult) { r.RowSums = r.RowSums[:3] },
		"sum swapped":     func(r *ShardResult) { r.RowSums[0], r.RowSums[1] = r.RowSums[1], r.RowSums[0] },
		"index reindexed": func(r *ShardResult) { r.Index = 8 },
		"violations":      func(r *ShardResult) { r.Rows[0].Violations++ },
	}
	for name, tamper := range cases {
		res := signedResult(4)
		tamper(&res)
		err := VerifyShardResult(res)
		if err == nil {
			t.Errorf("%s: tampered result verified", name)
			continue
		}
		if !errors.Is(err, ErrDigest) {
			t.Errorf("%s: error %v does not wrap ErrDigest", name, err)
		}
	}
}

func TestShardDigestIsLengthPrefixed(t *testing.T) {
	// The chain must distinguish where one part ends and the next begins;
	// plain concatenation would collapse these two.
	if ShardDigest(1, []string{"ab", "c"}) == ShardDigest(1, []string{"a", "bc"}) {
		t.Error("digest collides across part boundaries")
	}
	if ShardDigest(1, []string{"ab"}) == ShardDigest(2, []string{"ab"}) {
		t.Error("digest ignores the shard index")
	}
}

func TestRowsEqualAndDiffRows(t *testing.T) {
	a := []Row{{CSV: "a"}, {CSV: "b", Violations: 1}}
	b := []Row{{CSV: "a"}, {CSV: "b", Violations: 1}}
	if !rowsEqual(a, b) {
		t.Error("identical rows reported unequal")
	}
	b[1].Violations = 2
	if rowsEqual(a, b) {
		t.Error("diverging rows reported equal")
	}
	if got := diffRows(a, b); got != 1 {
		t.Errorf("diffRows = %d, want 1", got)
	}
	if got := diffRows(a, a[:1]); got != 2 {
		t.Errorf("diffRows with length mismatch = %d, want 2 (every row of the longer slice)", got)
	}
	if rowsEqual(a, a[:1]) {
		t.Error("length mismatch reported equal")
	}
}

// FuzzVerifyShardResult throws arbitrary bytes at the verification path
// (never panics, never accepts an unsigned result) and checks the
// sign-then-verify roundtrip on whatever decodes.
func FuzzVerifyShardResult(f *testing.F) {
	good, _ := json.Marshal(signedResult(3))
	f.Add(good)
	f.Add([]byte(`{"index":1,"rows":[{"csv":"a"}]}`))
	f.Add([]byte(`{"index":1,"rows":[],"digest":"00"}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var res ShardResult
		if err := json.Unmarshal(data, &res); err != nil {
			return
		}
		if err := VerifyShardResult(res); err == nil {
			// Whatever verified must re-verify after a roundtrip through
			// signing — i.e. it carried the canonical signature already.
			resigned := res
			resigned.RowSums, resigned.Digest = nil, ""
			SignShardResult(&resigned)
			if resigned.Digest != res.Digest {
				t.Fatalf("verified digest %q is not the canonical signature %q", res.Digest, resigned.Digest)
			}
		}
		// Signing any decoded rows must always produce a verifiable result.
		SignShardResult(&res)
		if err := VerifyShardResult(res); err != nil {
			t.Fatalf("freshly signed result rejected: %v", err)
		}
	})
}
