package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/chaosnet"
	"bcnphase/internal/cluster"
	"bcnphase/internal/core"
	"bcnphase/internal/runstate"
	"bcnphase/internal/serve"
	"bcnphase/internal/sweep"
)

// chaosWorker is one real bcnd serving stack (serve.Server behind an
// HTTP listener) plus the kill switches the soak pulls mid-sweep.
type chaosWorker struct {
	srv *serve.Server
	ts  *httptest.Server
	off sync.Once
}

func newChaosWorker(t *testing.T) *chaosWorker {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Workers:        2,
		QueueCap:       16,
		DefaultTimeout: 20 * time.Second,
		MaxTimeout:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &chaosWorker{srv: srv, ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(w.stop)
	return w
}

func (w *chaosWorker) stop() { w.off.Do(w.ts.Close) }

// kill is the SIGKILL-equivalent: in-flight connections are severed and
// the listener vanishes, with no drain and no goodbye.
func (w *chaosWorker) kill() {
	w.off.Do(func() {
		w.ts.CloseClientConnections()
		w.ts.Close()
	})
}

// drainThenStop is the SIGTERM path: stop admitting, let in-flight work
// finish, then leave.
func (w *chaosWorker) drainThenStop(t *testing.T) {
	w.srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.srv.WaitIdle(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	w.stop()
}

// TestClusterChaosSoak is the cluster fault-tolerance acceptance test:
// three real bcnd serving stacks behind one coordinator, a ≥500-point
// grid, one worker hard-killed and one SIGTERM-drained mid-sweep — and
// the merged map must still be byte-identical to a single-node run,
// with zero lost points and zero duplicated journal records. Run it
// under -race; the coordinator's dispatch, heartbeat and merge paths
// all interleave here.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos soak: skipped with -short")
	}
	grid := cluster.GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 12.8, GdLo: 0.0009765625, GdHi: 0.5, Steps: 23}
	points := grid.Points()
	if len(points) < 500 {
		t.Fatalf("grid has %d points, soak wants >= 500", len(points))
	}

	// Single-node reference, computed with the same evaluator the
	// workers run. Byte-identical output is the bar, not "close".
	sm := core.NewSolveMetrics(nil)
	refRes, err := sweep.Run(context.Background(), points,
		func(ctx context.Context, pt cluster.GainPoint) (cluster.Row, error) {
			return grid.Eval(ctx, pt, cluster.EvalMetrics{Solve: sm})
		}, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	refRows := make([]cluster.Row, len(points))
	for i, r := range refRes {
		if r.Err != nil {
			t.Fatalf("reference point %d: %v", i, r.Err)
		}
		refRows[i] = r.Value
	}
	want := cluster.RenderCSV(refRows)

	workers := []*chaosWorker{newChaosWorker(t), newChaosWorker(t), newChaosWorker(t)}
	urls := []string{workers[0].ts.URL, workers[1].ts.URL, workers[2].ts.URL}

	dir := t.TempDir()
	journalPath := filepath.Join(dir, runstate.JournalFileName)
	j, err := runstate.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}

	// Kill schedule, driven by sweep progress: after the 3rd completed
	// shard worker 0 dies hard; after the 8th worker 1 drains away. Both
	// happen in the thick of dispatch, never at a tidy boundary.
	var dones atomic.Int64
	var killOnce, drainOnce sync.Once
	hook := func(_ string, _ cluster.Shard) {
		n := dones.Add(1)
		if n >= 3 {
			killOnce.Do(func() { go workers[0].kill() })
		}
		if n >= 8 {
			drainOnce.Do(func() { go workers[1].drainThenStop(t) })
		}
	}

	mapPath := filepath.Join(dir, "map.csv")
	c, err := cluster.New(cluster.Config{
		Workers:           urls,
		ShardSize:         16, // 34 shards for 529 points
		LeaseTimeout:      15 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMisses:   2,
		RetryBase:         5 * time.Millisecond,
		RetryCap:          50 * time.Millisecond,
		MaxAttempts:       2,
		BreakerThreshold:  2,
		BreakerCooldown:   100 * time.Millisecond,
		Journal:           j,
		MapPath:           mapPath,
		Seed:              1,
		OnShardDone:       hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	out, err := c.Run(ctx, grid)
	if err != nil {
		t.Fatalf("cluster sweep with worker loss: %v", err)
	}

	// Zero lost points: the merged map is byte-identical to the
	// single-node run, both in memory and on disk.
	if !bytes.Equal(out.CSV, want) {
		t.Errorf("merged map.csv diverges from single-node run (%d vs %d bytes)", len(out.CSV), len(want))
	}
	if disk, err := os.ReadFile(mapPath); err != nil || !bytes.Equal(disk, want) {
		t.Errorf("map.csv on disk diverges: %v", err)
	}
	if out.Points != len(points) || out.Fresh != len(points) || out.Replayed != 0 {
		t.Errorf("out = %+v, want all %d points fresh", out, len(points))
	}

	m := c.Metrics()
	if got := m.Points.Value(); got != uint64(len(points)) {
		t.Errorf("cluster_points_total = %d, want %d", got, len(points))
	}
	wantShards := (len(points) + 15) / 16
	if got := m.ShardsDone.Value(); got != uint64(wantShards) {
		t.Errorf("cluster_shards_done_total = %d, want %d", got, wantShards)
	}
	if got := m.Reassigned.Value(); got < 1 {
		t.Errorf("cluster_reassigned_shards_total = %d, want >= 1 after losing a worker mid-sweep", got)
	}
	// The killed worker is marked down by the heartbeat monitor.
	deadline := time.Now().Add(5 * time.Second)
	for m.WorkerUp.With(urls[0]).Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.WorkerUp.With(urls[0]).Value(); got != 0 {
		t.Errorf("cluster_worker_up{%s} = %v, want 0 for the killed worker", urls[0], got)
	}

	// Zero duplicated journal records: every key appears exactly once in
	// the on-disk journal, with one record per point and one done marker
	// per shard.
	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	keyCount := map[string]int{}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unparseable journal line: %s", line)
		}
		keyCount[rec.Key]++
	}
	var pointRecords, doneRecords int
	for key, n := range keyCount {
		if n != 1 {
			t.Errorf("journal key %s recorded %d times", key, n)
		}
		if strings.HasPrefix(key, "shard-done:") {
			doneRecords++
		} else {
			pointRecords++
		}
	}
	if pointRecords != len(points) || doneRecords != wantShards {
		t.Errorf("journal holds %d point records and %d done markers, want %d and %d",
			pointRecords, doneRecords, len(points), wantShards)
	}

	// Crash-safe resume: a fresh coordinator over the same journal
	// replays the whole sweep without needing a single live worker.
	c.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := runstate.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2, err := cluster.New(cluster.Config{
		Workers: urls, ShardSize: 16, Journal: j2, HeartbeatInterval: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	out2, err := c2.Run(context.Background(), grid)
	if err != nil {
		t.Fatalf("replay after restart: %v", err)
	}
	if out2.Fresh != 0 || out2.Replayed != len(points) || out2.OrphanShards != 0 {
		t.Errorf("replay = %+v, want everything from the journal", out2)
	}
	if !bytes.Equal(out2.CSV, want) {
		t.Error("replayed map diverges from single-node run")
	}
}

// TestClusterByzantineSoak is the result-integrity acceptance test: one
// of three real workers sits behind a Byzantine chaos proxy that
// rewrites ~5% of its result rows and re-signs them (so every digest
// verifies), while the honest workers' proxies inject latency and
// truncated bodies. With every shard audited, the merged map must stay
// byte-identical to a clean single-node run, the Byzantine worker must
// end quarantined, and the journal must hold no divergent rows. Run it
// under -race.
func TestClusterByzantineSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("byzantine soak: skipped with -short")
	}
	grid := cluster.GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 12.8, GdLo: 0.0009765625, GdHi: 0.5, Steps: 17}
	points := grid.Points()

	// Clean single-node reference with the same evaluator.
	sm := core.NewSolveMetrics(nil)
	refRes, err := sweep.Run(context.Background(), points,
		func(ctx context.Context, pt cluster.GainPoint) (cluster.Row, error) {
			return grid.Eval(ctx, pt, cluster.EvalMetrics{Solve: sm})
		}, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	refRows := make([]cluster.Row, len(points))
	for i, r := range refRes {
		if r.Err != nil {
			t.Fatalf("reference point %d: %v", i, r.Err)
		}
		refRows[i] = r.Value
	}
	want := cluster.RenderCSV(refRows)

	workers := []*chaosWorker{newChaosWorker(t), newChaosWorker(t), newChaosWorker(t)}
	newProxy := func(cfg chaosnet.Config) string {
		p, err := chaosnet.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(p.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	// Worker 0 lies about ~5% of rows on every response; workers 1 and 2
	// are honest but their network is slow and occasionally truncates.
	urls := []string{
		newProxy(chaosnet.Config{Target: workers[0].ts.URL, Seed: 41, ByzantineProb: 1, RewriteFraction: 0.05}),
		newProxy(chaosnet.Config{Target: workers[1].ts.URL, Seed: 42, Latency: time.Millisecond, Jitter: 2 * time.Millisecond, TruncateProb: 0.05}),
		newProxy(chaosnet.Config{Target: workers[2].ts.URL, Seed: 43, Latency: time.Millisecond, TruncateProb: 0.05}),
	}

	dir := t.TempDir()
	journalPath := filepath.Join(dir, runstate.JournalFileName)
	j, err := runstate.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	c, err := cluster.New(cluster.Config{
		Workers:           urls,
		ShardSize:         16,
		LeaseTimeout:      15 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   3,
		RetryBase:         5 * time.Millisecond,
		RetryCap:          50 * time.Millisecond,
		MaxAttempts:       3,
		BreakerThreshold:  3,
		BreakerCooldown:   100 * time.Millisecond,
		AuditFraction:     1,
		Journal:           j,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	out, err := c.Run(ctx, grid)
	if err != nil {
		t.Fatalf("cluster sweep under Byzantine chaos: %v", err)
	}

	if !bytes.Equal(out.CSV, want) {
		t.Errorf("merged map diverges from clean single-node run (%d vs %d bytes)", len(out.CSV), len(want))
	}
	if out.AuditedShards < 1 {
		t.Errorf("AuditedShards = %d, want >= 1", out.AuditedShards)
	}

	m := c.Metrics()
	if got := m.AuditQuarantined.Value(); got < 1 {
		t.Errorf("cluster_audit_quarantined_workers_total = %d, want >= 1", got)
	}
	if got := m.AuditSampled.Value(); got < 1 {
		t.Errorf("cluster_audit_sampled_shards_total = %d, want >= 1", got)
	}
	var byzSnap *cluster.WorkerBreakerStatus
	for _, s := range c.BreakerSnapshot() {
		if s.Worker == urls[0] {
			s := s
			byzSnap = &s
		}
	}
	if byzSnap == nil || byzSnap.State != "quarantined" {
		t.Errorf("Byzantine worker breaker = %+v, want quarantined", byzSnap)
	}

	// Zero divergent rows survive in the journal: a replay-only pass
	// (no dispatch, no audit, just the journal) reproduces the clean map.
	out2, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatalf("journal replay: %v", err)
	}
	if out2.Fresh != 0 || out2.Replayed != len(points) {
		t.Errorf("replay = %+v, want all %d points from the journal", out2, len(points))
	}
	if !bytes.Equal(out2.CSV, want) {
		t.Error("journal replay diverges from the clean reference: divergent rows reached the journal")
	}
}
