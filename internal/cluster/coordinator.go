package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"bcnphase/internal/qos"
	"bcnphase/internal/runstate"
	"bcnphase/internal/sweep"
	"bcnphase/internal/telemetry"
)

// DefaultShardSize is the default points-per-shard granularity. Small
// enough that losing a worker mid-shard forfeits little work and
// stragglers are steal-able; large enough that per-dispatch overhead
// stays negligible against evaluation cost.
const DefaultShardSize = 32

// Journal is the coordinator's durable store: the merged rows and
// shard done markers live here. runstate.Journal satisfies it (and its
// point keys are interchangeable with cmd/bcnsweep -resume journals);
// sweep.Checkpoint is the same contract.
type Journal = sweep.Checkpoint

// Config configures a Coordinator. The zero value of every field gets
// a sensible default from New except Workers, which is required.
type Config struct {
	// Workers are the bcnd worker base URLs (e.g. http://10.0.0.1:8077).
	Workers []string
	// ShardSize bounds points per shard (default DefaultShardSize).
	ShardSize int
	// LeaseTimeout is the hard deadline of one dispatch attempt: a
	// worker that has not answered within it loses the shard (default
	// 30s).
	LeaseTimeout time.Duration
	// HeartbeatInterval paces worker /statusz probes (default 1s;
	// negative disables heartbeats). HeartbeatMisses consecutive probe
	// failures mark a worker lost (default 3).
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// RetryBase seeds the jittered exponential backoff between dispatch
	// attempts (default 100ms); RetryCap bounds both the backoff and an
	// honored Retry-After hint (default 5s). MaxAttempts bounds attempts
	// per assignment (default 3); MaxAssignments bounds how many times a
	// shard may move between workers before the sweep fails (default
	// 4 × workers, minimum 8).
	RetryBase      time.Duration
	RetryCap       time.Duration
	MaxAttempts    int
	MaxAssignments int
	// BreakerThreshold consecutive dispatch failures quarantine a worker
	// for BreakerCooldown (defaults 3 and 10s; negative threshold
	// disables the breaker).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Journal, when non-nil, makes the sweep durable and resumable:
	// every merged row and shard done marker is recorded, and a restart
	// replays instead of recomputing.
	Journal Journal
	// MapPath, when non-empty, receives the merged map.csv atomically on
	// success.
	MapPath string
	// Registry receives the cluster metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Client is the HTTP client for dispatch and heartbeats; nil uses a
	// default with per-call timeouts from contexts.
	Client *http.Client
	// Log, when non-nil, receives one line per notable cluster event.
	Log io.Writer
	// Seed makes retry jitter deterministic in tests; 0 seeds from the
	// clock.
	Seed int64
	// Now overrides the breaker clock (tests); nil uses time.Now.
	Now func() time.Time
	// OnShardDone, when non-nil, observes every completed shard just
	// after its done marker is durable (instrumentation and chaos-test
	// seam; called from dispatch goroutines).
	OnShardDone func(worker string, shard Shard)
	// AuditFraction is the fraction of freshly completed shards the
	// coordinator re-executes on a different worker (consistent-hash
	// next-replica placement) and compares bit-exactly before their rows
	// are journaled: 0 disables auditing, 1 audits every shard. On
	// divergence a third worker breaks the tie and the outvoted worker is
	// quarantined — its leases discarded, its queued shards moved, its
	// unaudited merged shards revoked and re-executed.
	AuditFraction float64
	// auditFor, when non-nil, replaces AuditFraction sampling with a
	// per-shard-index decision (deterministic audit schedules in tests).
	auditFor func(index int) bool
	// Term, when nonzero, stamps every shard dispatch with this
	// leadership term (Bcn-Term header). Workers whose witness has seen
	// a higher term reject the dispatch terminally, so a deposed
	// leader's stale grants die at the worker's door instead of merging
	// (see internal/serve's witness and DESIGN.md §5i).
	Term uint64
	// LeaseValid, when non-nil, gates every merge: returning false
	// fails the sweep with ErrLeaseLost before anything is journaled.
	// The HA layer installs it so a leader that lost its lease stops
	// writing even if no fenced worker has told it so yet.
	LeaseValid func() bool
	// CompactJournal compacts the journal (when it supports compaction,
	// as runstate.Journal does) after each successful sweep, bounding
	// replay time and standby snapshot size by live state instead of
	// append history. Compaction failures are logged, never fatal — the
	// sweep's durability does not depend on the rewrite.
	CompactJournal bool
}

// Coordinator shards gain-plane sweeps across bcnd workers. Create
// with New, run sweeps with Run (safe for concurrent use), stop the
// background heartbeat monitor with Close.
type Coordinator struct {
	cfg     Config
	ring    *ring
	m       *Metrics
	breaker *workerBreaker
	client  *http.Client
	rng     *lockedRand

	mu       sync.Mutex
	alive    []bool
	draining []bool
	misses   []int
	lastSeen []time.Time // monotonic: last healthy probe (or start)
	inflight []map[*context.CancelFunc]struct{}
	runs     map[*sweepState]struct{}

	stop     chan struct{}
	hbDone   chan struct{}
	registry *telemetry.Registry
}

// dedupeWorkers rejects empty worker URLs and collapses duplicates to
// their first occurrence. Deduplication happens before the
// consistent-hash ring is built: a worker listed twice (a copy-pasted
// -workers flag) must not get double the virtual-node count — and so
// double the shard placement weight — of its peers, nor be probed and
// breaker-tracked as two phantom workers.
func dedupeWorkers(in []string) ([]string, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one worker URL")
	}
	out := make([]string, 0, len(in))
	seen := make(map[string]bool, len(in))
	for _, w := range in {
		if strings.TrimSpace(w) == "" {
			return nil, fmt.Errorf("cluster: empty worker URL")
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out, nil
}

// New builds a Coordinator from cfg, applying defaults, and starts the
// heartbeat monitor.
func New(cfg Config) (*Coordinator, error) {
	workers, err := dedupeWorkers(cfg.Workers)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 30 * time.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxAssignments <= 0 {
		cfg.MaxAssignments = 4 * len(cfg.Workers)
		if cfg.MaxAssignments < 8 {
			cfg.MaxAssignments = 8
		}
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.AuditFraction < 0 || cfg.AuditFraction > 1 || cfg.AuditFraction != cfg.AuditFraction {
		return nil, fmt.Errorf("cluster: audit fraction %v outside [0, 1]", cfg.AuditFraction)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	c := &Coordinator{
		cfg:      cfg,
		ring:     newRing(cfg.Workers),
		m:        NewMetrics(cfg.Registry),
		client:   cfg.Client,
		rng:      newLockedRand(cfg.Seed),
		alive:    make([]bool, len(cfg.Workers)),
		draining: make([]bool, len(cfg.Workers)),
		misses:   make([]int, len(cfg.Workers)),
		lastSeen: make([]time.Time, len(cfg.Workers)),
		inflight: make([]map[*context.CancelFunc]struct{}, len(cfg.Workers)),
		runs:     make(map[*sweepState]struct{}),
		stop:     make(chan struct{}),
		hbDone:   make(chan struct{}),
		registry: cfg.Registry,
	}
	c.breaker = newWorkerBreaker(cfg.Workers, cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now, c.m)
	started := time.Now() // monotonic reading: the heartbeat epoch
	for w := range cfg.Workers {
		// Optimistic start: workers are presumed alive until heartbeats
		// (or dispatch failures through the breaker) say otherwise.
		c.alive[w] = true
		c.lastSeen[w] = started
		c.inflight[w] = make(map[*context.CancelFunc]struct{})
		c.m.WorkerUp.With(cfg.Workers[w]).Set(1)
	}
	if cfg.HeartbeatInterval > 0 {
		go c.heartbeatLoop()
	} else {
		close(c.hbDone)
	}
	return c, nil
}

// Registry exposes the coordinator's metrics registry.
func (c *Coordinator) Registry() *telemetry.Registry { return c.registry }

// Metrics exposes the coordinator's instrument set for read-side
// assertions and embedding daemons.
func (c *Coordinator) Metrics() *Metrics { return c.m }

// BreakerSnapshot lists every worker's breaker state.
func (c *Coordinator) BreakerSnapshot() []WorkerBreakerStatus { return c.breaker.Snapshot() }

// Close stops the heartbeat monitor. In-flight Runs keep working (their
// dispatch failures still drive re-assignment); Close exists so an
// embedding daemon can shut down without leaking the monitor goroutine.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
		return
	default:
	}
	close(c.stop)
	<-c.hbDone
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	fmt.Fprintf(c.cfg.Log, "cluster: "+format+"\n", args...)
}

// WorkerHealth is one worker's liveness snapshot for /statusz.
type WorkerHealth struct {
	Worker   string `json:"worker"`
	Up       bool   `json:"up"`
	Draining bool   `json:"draining"`
}

// WorkerSnapshot lists every worker's heartbeat state.
func (c *Coordinator) WorkerSnapshot() []WorkerHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerHealth, len(c.cfg.Workers))
	for w, name := range c.cfg.Workers {
		out[w] = WorkerHealth{Worker: name, Up: c.alive[w], Draining: c.draining[w]}
	}
	return out
}

// Output is one completed cluster sweep.
type Output struct {
	// CSV is the merged map.csv (header plus one row per grid point, in
	// grid order) — byte-identical to a single-node run's.
	CSV []byte
	// Fingerprint is the grid identity hash rooting every journal key.
	Fingerprint string
	// Points, Fresh and Replayed count the grid size, freshly merged
	// points, and journal-replayed points (Fresh + Replayed == Points).
	Points   int
	Fresh    int
	Replayed int
	// OrphanShards counts journal shards that were surfaced without a
	// done marker and re-executed.
	OrphanShards int
	// AuditedShards counts shards of this sweep that were confirmed by a
	// second worker before merging.
	AuditedShards int
}

// sweepState is the shared dispatch state of one Run: per-worker shard
// queues guarded by mu/cond, plus the merge target.
type sweepState struct {
	mu   sync.Mutex
	cond *sync.Cond

	grid    GainGrid
	fp      string
	queues  [][]*shardRun
	pending int // shards not yet done
	fatal   error

	rows  []Row
	have  []bool
	fresh int

	// unaudited[w] holds shards merged from worker w without a second
	// worker's confirmation; quarantining w revokes and re-executes them.
	unaudited map[int][]*shardRun
	// audited counts shards confirmed by a second worker.
	audited int
}

type shardRun struct {
	shard       Shard
	assignments int
	planned     int // ring-planned owner
	// revoked marks a shard whose merged rows were withdrawn after its
	// worker was quarantined: the next merge force-records its rows so
	// the journal supersedes the distrusted values.
	revoked bool
}

func (s *sweepState) finished() bool { return s.pending == 0 || s.fatal != nil }

// Run executes one gain-plane sweep across the cluster and returns the
// merged map. It blocks until every shard is durable (or ctx expires /
// the re-assignment budget is exhausted); concurrent Runs are safe and
// share workers, breaker state and heartbeats.
func (c *Coordinator) Run(ctx context.Context, grid GainGrid) (*Output, error) {
	began := time.Now()
	fp, points, shards, err := PlanShards(grid, c.cfg.ShardSize)
	if err != nil {
		return nil, err
	}
	out := &Output{Fingerprint: fp, Points: len(points)}
	st := &sweepState{
		grid:      grid,
		fp:        fp,
		queues:    make([][]*shardRun, len(c.cfg.Workers)),
		rows:      make([]Row, len(points)),
		have:      make([]bool, len(points)),
		unaudited: make(map[int][]*shardRun),
	}
	st.cond = sync.NewCond(&st.mu)

	pendingShards, orphans, replayed := c.scanJournal(fp, shards, st)
	out.Replayed = replayed
	out.OrphanShards = orphans
	c.m.ReplayedPoints.Add(uint64(replayed))
	if orphans > 0 {
		c.m.OrphanShards.Add(uint64(orphans))
		c.logf("journal replay surfaced %d orphan shards (rows without done marker); re-executing", orphans)
	}
	c.countStrays(fp)

	st.pending = len(pendingShards)
	if st.pending > 0 {
		// Plan each shard onto its ring owner; work-stealing and
		// re-assignment take it from there.
		for _, sr := range pendingShards {
			sr.planned = c.ring.owner(DoneKey(fp, sr.shard.Index), nil)
			st.queues[sr.planned] = append(st.queues[sr.planned], sr)
		}
		c.mu.Lock()
		c.runs[st] = struct{}{}
		c.mu.Unlock()
		err = c.dispatchAll(ctx, st)
		c.mu.Lock()
		delete(c.runs, st)
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	st.mu.Lock()
	out.Fresh = st.fresh
	out.AuditedShards = st.audited
	rows := st.rows
	st.mu.Unlock()
	for i := range st.have {
		if !st.have[i] {
			return nil, fmt.Errorf("cluster: internal: point %d missing after merge", i)
		}
	}
	out.CSV = RenderCSV(rows)
	if wall := time.Since(began).Seconds(); wall > 0 {
		c.m.PointsPerSecond.Set(float64(out.Fresh) / wall)
	}
	if c.cfg.MapPath != "" {
		if err := runstate.WriteFileAtomic(c.cfg.MapPath, out.CSV, 0o644); err != nil {
			return nil, err
		}
	}
	if c.cfg.CompactJournal {
		if comp, ok := c.cfg.Journal.(interface{ Compact() error }); ok {
			if err := comp.Compact(); err != nil {
				c.logf("journal compaction after sweep %0.12s failed (sweep unaffected): %v", fp, err)
			} else {
				c.logf("journal compacted after sweep %0.12s", fp)
			}
		}
	}
	c.logf("sweep %0.12s done: %d points (%d fresh, %d replayed, %d orphan shards) in %s",
		fp, out.Points, out.Fresh, out.Replayed, out.OrphanShards, time.Since(began).Round(time.Millisecond))
	return out, nil
}

// scanJournal classifies every planned shard against the journal:
// complete (done marker and all rows — replay), orphan (rows without a
// done marker, or a done marker missing rows — surface, count, and
// re-execute what is missing), or fresh. Replayed rows land in st
// directly; the returned shards are the ones still needing execution,
// pruned to their missing points.
func (c *Coordinator) scanJournal(fp string, shards []Shard, st *sweepState) (pending []*shardRun, orphans, replayed int) {
	j := c.cfg.Journal
	for _, sh := range shards {
		missing := Shard{Index: sh.Index}
		if j != nil {
			for k, key := range sh.Keys {
				raw, ok := j.Lookup(key)
				if !ok {
					missing.Points = append(missing.Points, sh.Points[k])
					missing.GridIdx = append(missing.GridIdx, sh.GridIdx[k])
					missing.Keys = append(missing.Keys, key)
					continue
				}
				var row Row
				if err := json.Unmarshal(raw, &row); err != nil || row.CSV == "" {
					// CRC-valid but failing row re-validation: schema drift
					// across versions. Classified, counted and re-evaluated
					// rather than resurrected — same contract as
					// sweep.RunCheckpointed, now with a series saying so.
					c.m.InvalidRows.Inc()
					missing.Points = append(missing.Points, sh.Points[k])
					missing.GridIdx = append(missing.GridIdx, sh.GridIdx[k])
					missing.Keys = append(missing.Keys, key)
					continue
				}
				st.rows[sh.GridIdx[k]] = row
				st.have[sh.GridIdx[k]] = true
				replayed++
			}
		} else {
			missing = sh
		}
		_, done := false, false
		if j != nil {
			_, done = j.Lookup(DoneKey(fp, sh.Index))
		}
		replayedHere := len(sh.Points) - len(missing.Points)
		switch {
		case done && len(missing.Points) == 0:
			// Complete: fully replayed.
		case !done && replayedHere == 0 && j != nil:
			// Fresh (never started).
			pending = append(pending, &shardRun{shard: sh})
		case j == nil:
			pending = append(pending, &shardRun{shard: sh})
		default:
			// Rows without a done marker (a worker or coordinator died
			// mid-shard), or a done marker with rows missing (corrupt or
			// superseded lines dropped on replay). Either way the shard
			// is surfaced and re-executed, not silently trusted.
			orphans++
			if len(missing.Points) > 0 {
				pending = append(pending, &shardRun{shard: missing})
			} else {
				// All rows present, only the marker missing: re-seal.
				if err := c.recordDone(fp, sh); err == nil {
					c.m.ShardsDone.Inc()
				} else {
					pending = append(pending, &shardRun{shard: missing})
				}
			}
		}
	}
	return pending, orphans, replayed
}

// countStrays counts done markers left by other grids in this journal —
// stale fingerprints are expected across re-parameterized runs, but
// operators deserve a series that says so.
func (c *Coordinator) countStrays(fp string) {
	type keyser interface{ Keys() []string }
	j, ok := c.cfg.Journal.(keyser)
	if !ok {
		return
	}
	stray := 0
	for _, key := range j.Keys() {
		if strings.HasPrefix(key, "shard-done:") && !strings.HasPrefix(key, "shard-done:"+fp+":") {
			stray++
		}
	}
	if stray > 0 {
		c.m.StrayRecords.Add(uint64(stray))
		c.logf("journal holds %d shard markers from other grids (stale fingerprints); ignored", stray)
	}
}

// dispatchAll runs one worker loop per configured worker until every
// pending shard is done or the sweep fails. A ticker broadcast wakes
// parked workers so breaker cooldowns and heartbeat recoveries are
// noticed without a dedicated signal for each.
func (c *Coordinator) dispatchAll(ctx context.Context, st *sweepState) error {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	stopTick := make(chan struct{})
	go func() {
		for {
			select {
			case <-tick.C:
				st.cond.Broadcast()
			case <-ctx.Done():
				st.cond.Broadcast()
				return
			case <-c.stop:
				st.cond.Broadcast()
				return
			case <-stopTick:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := range c.cfg.Workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.workerLoop(ctx, st, w)
		}(w)
	}
	wg.Wait()
	close(stopTick)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fatal != nil {
		return st.fatal
	}
	if st.pending > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: cluster sweep cancelled with %d shards pending", runstate.ErrInterrupted, st.pending)
		}
		if c.isClosed() {
			return fmt.Errorf("%w: coordinator closed with %d shards pending", runstate.ErrInterrupted, st.pending)
		}
		return fmt.Errorf("cluster: internal: dispatch stopped with %d shards pending", st.pending)
	}
	return nil
}

// errCoordinatorClosed aborts dispatch waits when Close is called, so
// shutdown latency is bounded by the in-flight HTTP calls, never by a
// pending jittered backoff window.
var errCoordinatorClosed = fmt.Errorf("cluster: coordinator closed")

func (c *Coordinator) isClosed() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// eligible reports whether worker w may receive new shards right now.
func (c *Coordinator) eligible(w int) bool {
	c.mu.Lock()
	ok := c.alive[w] && !c.draining[w]
	c.mu.Unlock()
	return ok && !c.breaker.Open(w)
}

// take pops the next shard for worker w: its own queue first, then a
// steal from the longest other queue. Returns nil when no work is
// takeable (empty queues, ineligible worker, or breaker denial).
func (c *Coordinator) take(st *sweepState, w int) (sr *shardRun, stolen bool) {
	if !c.eligible(w) {
		return nil, false
	}
	if len(st.queues[w]) > 0 {
		if ok, _ := c.breaker.Allow(w); !ok {
			return nil, false
		}
		sr = st.queues[w][0]
		st.queues[w] = st.queues[w][1:]
		return sr, false
	}
	victim, max := -1, 0
	for v := range st.queues {
		if v != w && len(st.queues[v]) > max {
			victim, max = v, len(st.queues[v])
		}
	}
	if victim < 0 {
		return nil, false
	}
	if ok, _ := c.breaker.Allow(w); !ok {
		return nil, false
	}
	// Steal from the tail: the head is what the victim would run next.
	last := len(st.queues[victim]) - 1
	sr = st.queues[victim][last]
	st.queues[victim] = st.queues[victim][:last]
	return sr, true
}

// workerLoop is worker w's dispatch pump for one sweep.
func (c *Coordinator) workerLoop(ctx context.Context, st *sweepState, w int) {
	name := c.cfg.Workers[w]
	for {
		st.mu.Lock()
		var (
			sr     *shardRun
			stolen bool
		)
		for {
			if st.finished() || ctx.Err() != nil || c.isClosed() {
				st.mu.Unlock()
				st.cond.Broadcast()
				return
			}
			if sr, stolen = c.take(st, w); sr != nil {
				break
			}
			st.cond.Wait()
		}
		st.mu.Unlock()
		if stolen {
			c.m.Stolen.Inc()
			c.logf("worker %s stole shard %d", name, sr.shard.Index)
		}

		began := time.Now()
		res, err := c.dispatch(ctx, st, w, sr)
		switch {
		case err == nil:
			// The dispatch itself succeeded regardless of what the audit
			// concludes about the rows; the breaker tracks availability,
			// the quorum tracks honesty (Success on a quarantined worker
			// is a no-op).
			c.breaker.Success(w)
			v := c.audit(ctx, st, w, sr, res)
			if !v.merge {
				continue
			}
			if mergeErr := c.merge(st, v.winner, sr, v.res, v.audited); mergeErr != nil {
				// A journal that cannot keep rows breaks the durability
				// contract; fail the sweep rather than fake completion.
				st.mu.Lock()
				if st.fatal == nil {
					st.fatal = mergeErr
				}
				st.mu.Unlock()
				st.cond.Broadcast()
				return
			}
			c.m.ShardSeconds.Observe(time.Since(began).Seconds())
		case errors.Is(err, errCoordinatorClosed), ctx.Err() != nil:
			// Sweep cancelled: hand the shard back without blaming the
			// worker and let the loop exit on the next pass.
			c.breaker.Release(w)
			st.mu.Lock()
			st.queues[w] = append(st.queues[w], sr)
			st.mu.Unlock()
			st.cond.Broadcast()
		case errors.Is(err, ErrStaleTerm):
			// The worker's witness has granted a higher term: this
			// coordinator is deposed. The whole sweep is doomed — every
			// further dispatch would be fenced the same way — so fail it
			// now without blaming the worker, and let the HA layer (which
			// observes the same lease loss) step down.
			c.breaker.Release(w)
			st.mu.Lock()
			if st.fatal == nil {
				st.fatal = err
			}
			st.mu.Unlock()
			st.cond.Broadcast()
			return
		default:
			c.breaker.Failure(w)
			c.m.WorkerErrors.With(name).Inc()
			sr.assignments++
			c.logf("worker %s failed shard %d (assignment %d): %v", name, sr.shard.Index, sr.assignments, err)
			if sr.assignments >= c.cfg.MaxAssignments {
				st.mu.Lock()
				if st.fatal == nil {
					st.fatal = fmt.Errorf("cluster: shard %d exhausted %d assignments (last worker %s): %w",
						sr.shard.Index, sr.assignments, name, err)
				}
				st.mu.Unlock()
				st.cond.Broadcast()
				return
			}
			c.requeue(st, sr, w)
		}
	}
}

// requeue moves a failed shard to another worker's queue (ring-ordered
// among currently eligible workers, skipping the one that just failed
// it) and counts the re-assignment.
func (c *Coordinator) requeue(st *sweepState, sr *shardRun, failed int) {
	target := c.ring.owner(DoneKey(st.fp, sr.shard.Index), func(w int) bool {
		return w != failed && c.eligible(w)
	})
	if target < 0 {
		// Nobody else is eligible: back onto the failed worker's queue;
		// the breaker cooldown paces the next try.
		target = failed
	}
	c.m.Reassigned.Inc()
	st.mu.Lock()
	st.queues[target] = append(st.queues[target], sr)
	st.mu.Unlock()
	st.cond.Broadcast()
}

// merge records a completed shard: every fresh row durably journaled
// (skipping keys already holding a valid row, so records are never
// duplicated), then the shard's done marker, then the in-memory merge
// and progress accounting. A revoked shard force-records instead of
// skipping, superseding rows a quarantined worker left behind; a key
// whose existing value fails row re-validation is likewise overwritten,
// healing schema drift on re-execution. Shards merged without an audit
// are remembered per worker so a later quarantine can revoke them.
func (c *Coordinator) merge(st *sweepState, w int, sr *shardRun, res ShardResult, audited bool) error {
	// Leadership gate: results from a term whose lease has lapsed must
	// not reach the journal. Worker-side fencing already rejects most
	// stale dispatches; this is the local backstop for a result that was
	// already in flight when the lease was lost.
	if c.cfg.LeaseValid != nil && !c.cfg.LeaseValid() {
		return fmt.Errorf("%w: term %d lease invalid at merge of shard %d", ErrLeaseLost, c.cfg.Term, sr.shard.Index)
	}
	if j := c.cfg.Journal; j != nil {
		for i, key := range sr.shard.Keys {
			if !sr.revoked {
				if raw, ok := j.Lookup(key); ok && validRowBytes(raw) {
					continue
				}
			}
			raw, err := json.Marshal(res.Rows[i])
			if err != nil {
				return fmt.Errorf("cluster: encode row: %w", err)
			}
			if err := j.Record(key, raw); err != nil {
				return fmt.Errorf("cluster: journal row: %w", err)
			}
		}
		if err := c.recordDone(st.fp, sr.shard); err != nil {
			return err
		}
	}
	st.mu.Lock()
	sr.revoked = false
	for i, idx := range sr.shard.GridIdx {
		if !st.have[idx] {
			st.have[idx] = true
			st.rows[idx] = res.Rows[i]
			st.fresh++
			c.m.Points.Inc()
		}
	}
	switch {
	case audited:
		st.audited++
	case c.breaker.Quarantined(w):
		// w was quarantined while this unaudited merge was in flight, so
		// the quarantine's revocation sweep may have run before this shard
		// appeared in st.unaudited. Revoke it here, under the same lock the
		// sweep scans with, so no unaudited shard of a quarantined worker
		// ever survives merged.
		for _, idx := range sr.shard.GridIdx {
			if st.have[idx] {
				st.have[idx] = false
				st.fresh--
			}
		}
		sr.revoked = true
		c.m.AuditRevoked.Inc()
		target := c.ring.owner(DoneKey(st.fp, sr.shard.Index), func(o int) bool {
			return o != w && c.eligible(o)
		})
		if target < 0 {
			target = w
		} else {
			c.m.Reassigned.Inc()
		}
		st.queues[target] = append(st.queues[target], sr)
		st.mu.Unlock()
		st.cond.Broadcast()
		c.logf("audit: shard %d merged from quarantined %s; revoked and re-executing", sr.shard.Index, c.cfg.Workers[w])
		return nil
	default:
		st.unaudited[w] = append(st.unaudited[w], sr)
	}
	st.pending--
	st.mu.Unlock()
	c.m.ShardsDone.Inc()
	c.logf("worker %s done shard %d (%d points)", c.cfg.Workers[w], sr.shard.Index, len(sr.shard.Points))
	if c.cfg.OnShardDone != nil {
		c.cfg.OnShardDone(c.cfg.Workers[w], sr.shard)
	}
	st.cond.Broadcast()
	return nil
}

// validRowBytes reports whether a journaled point value still decodes as
// a usable row. merge overwrites (supersedes) anything that does not,
// instead of skipping it as "already present".
func validRowBytes(raw []byte) bool {
	var row Row
	return json.Unmarshal(raw, &row) == nil && row.CSV != ""
}

func (c *Coordinator) recordDone(fp string, sh Shard) error {
	j := c.cfg.Journal
	key := DoneKey(fp, sh.Index)
	if _, ok := j.Lookup(key); ok {
		return nil
	}
	raw, err := json.Marshal(doneMarker{Index: sh.Index, Points: len(sh.Points)})
	if err != nil {
		return fmt.Errorf("cluster: encode done marker: %w", err)
	}
	if err := j.Record(key, raw); err != nil {
		return fmt.Errorf("cluster: journal done marker: %w", err)
	}
	return nil
}

// dispatch posts one shard assignment to worker w under the lease, with
// bounded, jittered, Retry-After-honoring retries. Every error return
// means "this worker did not complete this shard" — the caller decides
// whether to re-assign.
func (c *Coordinator) dispatch(ctx context.Context, st *sweepState, w int, sr *shardRun) (ShardResult, error) {
	sh := &ShardSpec{Grid: st.grid, Index: sr.shard.Index, Points: sr.shard.Points}
	timeoutMs := int64(c.cfg.LeaseTimeout / time.Millisecond * 9 / 10)
	// Deadline propagation: a sweep running under a client budget caps
	// each shard's worker-side timeout at the remaining budget minus one
	// hop margin, and a shard that no longer fits its budget is doomed
	// here — before it occupies a worker.
	if rem, ok := qos.Remaining(ctx); ok {
		rem = qos.Forward(rem, qos.DefaultHopMargin)
		if rem <= 0 {
			return ShardResult{}, fmt.Errorf("cluster: shard %d doomed: %w", sh.Index, context.DeadlineExceeded)
		}
		if ms := int64(rem / time.Millisecond); ms < timeoutMs {
			timeoutMs = ms
		}
	}
	body, err := EncodeShardJob(sh, timeoutMs)
	if err != nil {
		return ShardResult{}, err
	}
	bo := &backoff{base: c.cfg.RetryBase, cap: c.cfg.RetryCap, rng: c.rng}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.m.Retries.Inc()
		}
		if err := ctx.Err(); err != nil {
			return ShardResult{}, err
		}
		if !c.eligible(w) && attempt > 0 {
			// The worker was lost or started draining between attempts;
			// stop hammering it and let the caller re-assign.
			return ShardResult{}, fmt.Errorf("cluster: worker %s became unavailable: %w", c.cfg.Workers[w], lastErr)
		}
		res, retryAfter, err := c.postShard(ctx, w, sh, body)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if retryAfter < 0 { // terminal verdict, not transient
			return ShardResult{}, err
		}
		select {
		case <-time.After(bo.next(retryAfter)):
		case <-ctx.Done():
			return ShardResult{}, ctx.Err()
		case <-c.stop:
			// Coordinator shutdown aborts the jittered wait immediately;
			// drain latency is bounded by in-flight HTTP calls only.
			return ShardResult{}, errCoordinatorClosed
		}
	}
	return ShardResult{}, fmt.Errorf("cluster: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// postShard performs one lease-bounded dispatch attempt. retryAfter is
// the pacing hint for a transient failure (0 when the worker gave
// none) and -1 for a terminal one.
func (c *Coordinator) postShard(ctx context.Context, w int, sh *ShardSpec, body []byte) (res ShardResult, retryAfter time.Duration, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	cp := &cancel
	c.mu.Lock()
	c.inflight[w][cp] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.inflight[w], cp)
		c.mu.Unlock()
		cancel()
	}()

	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.cfg.Workers[w]+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return ShardResult{}, -1, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Fencing: stamp the dispatch with the leadership term. A worker
	// whose witness has granted a higher term answers 409 stale-term,
	// which postShard classifies as terminal and workerLoop escalates to
	// a sweep-fatal ErrStaleTerm — a deposed leader stops, it does not
	// retry its way back in.
	if c.cfg.Term != 0 {
		req.Header.Set(TermHeader, strconv.FormatUint(c.cfg.Term, 10))
	}
	// Propagate the tenant key and the per-hop-decremented deadline so a
	// QoS-enabled worker bills this shard to the right tenant and dooms
	// it early when the budget has drained.
	if tenant := qos.TenantFromContext(ctx); tenant != "" {
		req.Header.Set(qos.TenantHeader, tenant)
	}
	if rem, ok := qos.Remaining(ctx); ok {
		if fwd := qos.Forward(rem, qos.DefaultHopMargin); fwd > 0 {
			req.Header.Set(qos.DeadlineHeader, qos.FormatDeadline(fwd))
		}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ShardResult{}, 0, ctx.Err()
		}
		// Connection failures and lease expiries are transient from the
		// cluster's point of view: the shard can move.
		return ShardResult{}, 0, fmt.Errorf("cluster: post shard %d to %s: %w", sh.Index, c.cfg.Workers[w], err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxWireBytes+1))
	if err != nil {
		return ShardResult{}, 0, fmt.Errorf("cluster: read shard %d response: %w", sh.Index, err)
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusConflict {
			var eb struct {
				Reason string `json:"reason"`
			}
			if json.Unmarshal(raw, &eb) == nil && eb.Reason == StaleTermReason {
				return ShardResult{}, -1, fmt.Errorf("%w: worker %s fenced shard %d dispatched at term %d (worker has seen term %s)",
					ErrStaleTerm, c.cfg.Workers[w], sh.Index, c.cfg.Term, resp.Header.Get(TermHeader))
			}
		}
		err := fmt.Errorf("cluster: worker %s answered shard %d with status %d: %s",
			c.cfg.Workers[w], sh.Index, resp.StatusCode, truncate(raw, 200))
		if retryableStatus(resp.StatusCode) {
			return ShardResult{}, parseRetryAfter(resp.Header), err
		}
		return ShardResult{}, -1, err
	}
	res, err = DecodeShardArtifact(raw, sh)
	if err != nil {
		// A malformed result is a verdict about the worker, not load.
		return ShardResult{}, -1, err
	}
	if err := VerifyShardResult(res); err != nil {
		// Rows not matching their signed checksums means the result was
		// corrupted somewhere between evaluation and here — transient,
		// unlike a malformed envelope: the same worker can answer
		// correctly on a retry.
		c.m.DigestFailures.Inc()
		return ShardResult{}, 0, err
	}
	return res, 0, nil
}

// heartbeatLoop probes every worker's /statusz on the configured
// interval. HeartbeatMisses consecutive failures mark a worker lost:
// its in-flight leases are cancelled (so its shards re-assign now, not
// at lease expiry) and its queued shards are redistributed. A healthy
// probe marks it back up; a draining worker stops receiving new shards
// while its in-flight work is allowed to finish — that is the point of
// a drain.
func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		// The tick time is captured once, before any probe: a healthy
		// worker's lastSeen then advances by exactly one interval per
		// tick, so the monotonic down-deadline below cannot drift with
		// per-probe latency.
		tick := time.Now()
		for w := range c.cfg.Workers {
			st, err := c.probe(w)
			c.noteHeartbeat(w, tick, st, err)
		}
	}
}

// probe fetches one worker's /statusz under a short deadline.
func (c *Coordinator) probe(w int) (WorkerStatus, error) {
	budget := c.cfg.HeartbeatInterval
	if budget > 2*time.Second {
		budget = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.Workers[w]+"/statusz", nil)
	if err != nil {
		return WorkerStatus{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return WorkerStatus{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxWireBytes+1))
	if err != nil {
		return WorkerStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return WorkerStatus{}, fmt.Errorf("statusz %d", resp.StatusCode)
	}
	return DecodeWorkerStatus(raw)
}

// noteHeartbeat folds one probe outcome into the liveness state. The
// down decision is monotonic: a worker is lost only when
// HeartbeatMisses consecutive probes failed AND time.Since its last
// healthy probe — a time.Time captured once per tick, carrying the
// runtime's monotonic reading — covers that many full intervals.
// time.Since subtracts monotonic clocks, so a wall-clock step (NTP
// correction, VM resume, leap smear) can neither mark a healthy worker
// down nor keep a dead one alive; the miss counter alone would survive
// a jump, but the deadline also protects against a stalled ticker
// firing a burst of queued probes back to back.
func (c *Coordinator) noteHeartbeat(w int, tick time.Time, st WorkerStatus, err error) {
	name := c.cfg.Workers[w]
	c.mu.Lock()
	if err != nil {
		c.misses[w]++
		downFor := time.Since(c.lastSeen[w])
		deadline := time.Duration(c.cfg.HeartbeatMisses) * c.cfg.HeartbeatInterval
		lost := c.alive[w] && c.misses[w] >= c.cfg.HeartbeatMisses && downFor >= deadline
		if lost {
			c.alive[w] = false
			// Cancel the worker's leases now: its in-flight shards fail
			// fast and re-assign instead of waiting out the lease.
			for cp := range c.inflight[w] {
				(*cp)()
			}
		}
		c.mu.Unlock()
		if lost {
			c.m.WorkerUp.With(name).Set(0)
			c.logf("worker %s lost after %d missed heartbeats", name, c.cfg.HeartbeatMisses)
			c.redistribute(w)
		}
		return
	}
	recovered := !c.alive[w]
	c.alive[w] = true
	c.misses[w] = 0
	c.lastSeen[w] = tick
	drainChanged := c.draining[w] != st.Draining
	c.draining[w] = st.Draining
	c.mu.Unlock()
	if recovered {
		c.m.WorkerUp.With(name).Set(1)
		c.logf("worker %s recovered", name)
	}
	if drainChanged && st.Draining {
		c.logf("worker %s is draining; no new shards", name)
		c.redistribute(w)
	}
}

// redistribute moves a lost or draining worker's queued shards onto the
// remaining eligible workers, counting each move as a re-assignment.
func (c *Coordinator) redistribute(lost int) {
	c.mu.Lock()
	runs := make([]*sweepState, 0, len(c.runs))
	for st := range c.runs {
		runs = append(runs, st)
	}
	c.mu.Unlock()
	for _, st := range runs {
		st.mu.Lock()
		q := st.queues[lost]
		st.queues[lost] = nil
		for _, sr := range q {
			target := c.ring.owner(DoneKey(st.fp, sr.shard.Index), func(w int) bool {
				return w != lost && c.eligible(w)
			})
			if target < 0 {
				target = lost // nobody eligible; keep parked here
			} else {
				c.m.Reassigned.Inc()
			}
			st.queues[target] = append(st.queues[target], sr)
		}
		st.mu.Unlock()
		st.cond.Broadcast()
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
