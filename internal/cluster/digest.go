package cluster

import (
	"errors"
	"fmt"
	"strconv"

	"bcnphase/internal/runstate"
)

// ErrDigest wraps every shard-result integrity failure: absent or
// mismatched row checksums, or a shard digest that does not cover the
// rows it arrived with. The coordinator treats it as transient (the same
// worker can answer correctly on a retry after in-flight corruption),
// unlike ErrWire, which is a terminal verdict about the message shape.
var ErrDigest = errors.New("cluster: shard result failed integrity check")

// RowSum is the per-row content checksum: runstate.HashJSON of the row,
// computed by the worker that evaluated it. The coordinator recomputes
// it on receipt, so a row corrupted in flight (truncated or bit-flipped
// anywhere between evaluation and merge) is caught before it can reach
// the journal.
func RowSum(r Row) string {
	sum, err := runstate.HashJSON(r)
	if err != nil {
		// Row is a flat struct of strings and integers; its JSON encoding
		// cannot fail. Make the impossible loud instead of threading an
		// error that no caller could act on.
		panic(fmt.Sprintf("cluster: hash row: %v", err))
	}
	return sum
}

// ShardDigest chains a shard's index and its per-row checksums into the
// shard-level digest, via the same length-prefixed runstate hashing the
// journal keys use.
func ShardDigest(index int, rowSums []string) string {
	parts := make([]string, 0, len(rowSums)+1)
	parts = append(parts, "shard:"+strconv.Itoa(index))
	parts = append(parts, rowSums...)
	return runstate.HashChain(parts...)
}

// SignShardResult fills res.RowSums and res.Digest from its rows. The
// worker signs every shard result it evaluates; anything that rewrites
// rows afterwards must re-sign or fail verification at the coordinator.
func SignShardResult(res *ShardResult) {
	res.RowSums = make([]string, len(res.Rows))
	for i, r := range res.Rows {
		res.RowSums[i] = RowSum(r)
	}
	res.Digest = ShardDigest(res.Index, res.RowSums)
}

// VerifyShardResult checks a shard result's integrity envelope: a digest
// present, one checksum per row, every row matching its checksum and the
// digest matching the chained checksums. Every failure wraps ErrDigest.
// It never panics on arbitrary input (fuzzed in fuzz_test.go). Note what
// this does and does not prove: it catches transport corruption, but a
// worker that lies about its rows signs the lie consistently — only
// re-execution on an independent worker (the audit path) catches that.
func VerifyShardResult(res ShardResult) error {
	if res.Digest == "" {
		return fmt.Errorf("%w: shard %d carries no digest", ErrDigest, res.Index)
	}
	if len(res.RowSums) != len(res.Rows) {
		return fmt.Errorf("%w: shard %d has %d row checksums for %d rows", ErrDigest, res.Index, len(res.RowSums), len(res.Rows))
	}
	for i, r := range res.Rows {
		if RowSum(r) != res.RowSums[i] {
			return fmt.Errorf("%w: shard %d row %d does not match its checksum", ErrDigest, res.Index, i)
		}
	}
	if ShardDigest(res.Index, res.RowSums) != res.Digest {
		return fmt.Errorf("%w: shard %d digest does not cover its row checksums", ErrDigest, res.Index)
	}
	return nil
}

// rowsEqual reports whether two row slices are bit-exact: same length,
// every field identical. The audit comparison is exactly this — "close"
// is not a concept the merged map has.
func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffRows counts positions where two equal-length row slices disagree
// (length mismatch counts every row of the longer slice).
func diffRows(a, b []Row) int {
	if len(a) != len(b) {
		if len(a) > len(b) {
			return len(a)
		}
		return len(b)
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
