package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/runstate"
)

// looseJournal is memJournal without the duplicate-record check: the
// revocation and healing paths force-record (supersede) keys on purpose,
// which a real runstate.Journal allows and the strict memJournal calls a
// bug. Tests exercising those paths use this variant.
type looseJournal struct{ memJournal }

func newLooseJournal() *looseJournal {
	return &looseJournal{memJournal{m: map[string][]byte{}}}
}

func (j *looseJournal) Record(key string, val []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m[key] = append([]byte(nil), val...)
	return nil
}

// lyingIntercept answers shard jobs with plausible, correctly signed,
// wrong rows — the Byzantine worker the digest layer cannot catch.
func lyingIntercept(onFirst func()) func(http.ResponseWriter, *http.Request, *ShardSpec) bool {
	var once sync.Once
	return func(rw http.ResponseWriter, _ *http.Request, sh *ShardSpec) bool {
		once.Do(func() {
			if onFirst != nil {
				onFirst()
			}
		})
		rows := make([]Row, len(sh.Points))
		for i, pt := range sh.Points {
			rows[i] = Row{CSV: fmt.Sprintf("%.9g,%.9g,0.5,0,LIE", pt.Gi, pt.Gd)}
		}
		res := ShardResult{Index: sh.Index, Rows: rows}
		SignShardResult(&res)
		raw, _ := json.Marshal(shardArtifact{Key: "k", Kind: "shard", Shard: &res})
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write(raw)
		return true
	}
}

func assertNoLies(t *testing.T, j interface{ Keys() []string }, lookup func(string) ([]byte, bool)) {
	t.Helper()
	for _, key := range j.Keys() {
		if strings.HasPrefix(key, "shard-done:") {
			continue
		}
		if raw, ok := lookup(key); ok && strings.Contains(string(raw), "LIE") {
			t.Errorf("journal key %s still holds a Byzantine row: %s", key, raw)
		}
	}
}

func TestNewValidatesAuditFraction(t *testing.T) {
	for _, f := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := New(Config{Workers: []string{"http://a"}, AuditFraction: f}); err == nil {
			t.Errorf("audit fraction %v accepted", f)
		}
	}
	c, err := New(Config{Workers: []string{"http://a"}, AuditFraction: 1, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestAuditOutvotesAndQuarantinesByzantineWorker: three workers, one of
// them lying consistently (signed, plausible, wrong rows). With every
// shard audited, the first lie that reaches a quorum gets the liar
// quarantined, and no Byzantine row ever reaches the journal or the
// merged map.
func TestAuditOutvotesAndQuarantinesByzantineWorker(t *testing.T) {
	grid := testGrid(4) // 16 points, 8 shards at size 2
	liarTouched := make(chan struct{})
	liar := newFakeWorker(t, lyingIntercept(func() { close(liarTouched) }))
	// The honest workers hold their first responses until the liar has
	// received at least one shard, so the liar deterministically
	// participates in the sweep (work stealing guarantees it gets a job
	// while the others are parked).
	gate := func(http.ResponseWriter, *http.Request, *ShardSpec) bool {
		<-liarTouched
		return false
	}
	h1 := newFakeWorker(t, gate)
	h2 := newFakeWorker(t, gate)
	j := newMemJournal()
	c, err := New(Config{
		Workers: []string{liar.URL(), h1.URL(), h2.URL()}, ShardSize: 2,
		Journal: j, HeartbeatInterval: -1, AuditFraction: 1,
		RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
		MaxAttempts: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out.CSV), "fake") || strings.Contains(string(out.CSV), "LIE") {
		t.Errorf("merged CSV carries Byzantine rows:\n%s", out.CSV)
	}
	if string(out.CSV) != string(expectedCSV(grid)) {
		t.Error("merged CSV diverges from the honest single-node reference")
	}
	if got := c.m.AuditQuarantined.Value(); got != 1 {
		t.Errorf("cluster_audit_quarantined_workers_total = %d, want 1", got)
	}
	if got := c.m.AuditDivergent.Value(); got < 1 {
		t.Errorf("cluster_audit_divergent_shards_total = %d, want >= 1", got)
	}
	if got := c.m.AuditSampled.Value(); got < 8 {
		t.Errorf("cluster_audit_sampled_shards_total = %d, want >= 8", got)
	}
	if out.AuditedShards < 1 {
		t.Errorf("AuditedShards = %d, want >= 1", out.AuditedShards)
	}
	var liarSnap *WorkerBreakerStatus
	for _, s := range c.BreakerSnapshot() {
		if s.Worker == liar.URL() {
			s := s
			liarSnap = &s
		}
	}
	if liarSnap == nil || liarSnap.State != "quarantined" {
		t.Errorf("liar breaker snapshot = %+v, want quarantined", liarSnap)
	}
	if got := c.m.BreakerState.With(liar.URL()).Value(); got != breakerQuarantined {
		t.Errorf("liar breaker state gauge = %v, want quarantined (%v)", got, breakerQuarantined)
	}
	assertNoLies(t, j, j.Lookup)
}

// TestQuarantineRevokesUnauditedShards: the liar merges shards while
// auditing is dormant; once a later shard is sampled and the quorum
// convicts it, everything it merged without an audit is revoked,
// re-executed on honest workers, and the journal records superseded.
func TestQuarantineRevokesUnauditedShards(t *testing.T) {
	grid := testGrid(4) // 16 points, 16 shards at size 1
	var armed atomic.Bool
	armedCh := make(chan struct{})
	var liarJobs atomic.Int64
	var once sync.Once
	lie := lyingIntercept(nil)
	liar := newFakeWorker(t, func(rw http.ResponseWriter, r *http.Request, sh *ShardSpec) bool {
		if liarJobs.Add(1) > 2 {
			// From the third job on, hold the response until the test has
			// armed auditing — so exactly two lying shards merge unaudited.
			<-armedCh
		}
		return lie(rw, r, sh)
	})
	gate := func(http.ResponseWriter, *http.Request, *ShardSpec) bool {
		<-armedCh
		return false
	}
	h1 := newFakeWorker(t, gate)
	h2 := newFakeWorker(t, gate)
	j := newLooseJournal()
	c, err := New(Config{
		Workers: []string{liar.URL(), h1.URL(), h2.URL()}, ShardSize: 1,
		Journal: j, HeartbeatInterval: -1,
		RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
		MaxAttempts: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.cfg.auditFor = func(int) bool { return armed.Load() }

	done := make(chan struct{})
	var out *Output
	var runErr error
	go func() {
		defer close(done)
		out, runErr = c.Run(context.Background(), grid)
	}()

	// Wait until two Byzantine shards are durably merged, then arm the
	// audit and release everyone.
	waitFor(t, "two lying shards in the journal", func() bool {
		lies := 0
		for _, key := range j.Keys() {
			if raw, ok := j.Lookup(key); ok && strings.Contains(string(raw), "LIE") {
				lies++
			}
		}
		return lies >= 2
	})
	armed.Store(true)
	once.Do(func() { close(armedCh) })
	<-done

	if runErr != nil {
		t.Fatal(runErr)
	}
	if string(out.CSV) != string(expectedCSV(grid)) {
		t.Error("merged CSV diverges from the honest reference after revocation")
	}
	if out.Fresh != 16 {
		t.Errorf("Fresh = %d, want 16", out.Fresh)
	}
	if got := c.m.AuditQuarantined.Value(); got != 1 {
		t.Errorf("cluster_audit_quarantined_workers_total = %d, want 1", got)
	}
	if got := c.m.AuditRevoked.Value(); got != 2 {
		t.Errorf("cluster_audit_revoked_shards_total = %d, want 2", got)
	}
	assertNoLies(t, j, j.Lookup)
}

// TestDigestFailureIsTransientAndRetried: a result corrupted between
// worker and coordinator (valid envelope, broken signature) is retried
// on the same worker instead of condemning it.
func TestDigestFailureIsTransientAndRetried(t *testing.T) {
	grid := testGrid(3) // 9 points, one shard at size 64
	var corruptOnce atomic.Bool
	w := newFakeWorker(t, func(rw http.ResponseWriter, _ *http.Request, sh *ShardSpec) bool {
		if !corruptOnce.CompareAndSwap(false, true) {
			return false
		}
		res := ShardResult{Index: sh.Index, Rows: fakeRows(sh.Points)}
		SignShardResult(&res)
		res.Digest = strings.Repeat("0", 64) // in-flight corruption
		raw, _ := json.Marshal(shardArtifact{Key: "k", Kind: "shard", Shard: &res})
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write(raw)
		return true
	})
	c, err := New(Config{
		Workers: []string{w.URL()}, ShardSize: 64, HeartbeatInterval: -1,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond, MaxAttempts: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.CSV) != string(expectedCSV(grid)) {
		t.Error("CSV diverges after digest retry")
	}
	if got := c.m.DigestFailures.Value(); got != 1 {
		t.Errorf("cluster_digest_failures_total = %d, want 1", got)
	}
	if got := c.m.Retries.Value(); got != 1 {
		t.Errorf("cluster_dispatch_retries_total = %d, want 1", got)
	}
	if got := w.requests.Load(); got != 2 {
		t.Errorf("worker saw %d requests, want 2 (corrupted then clean)", got)
	}
}

// TestCloseAbortsBackoffMidWait (satellite: bounded drain latency): a
// coordinator closed while a dispatch sits in a long jittered backoff
// returns immediately instead of finishing the wait.
func TestCloseAbortsBackoffMidWait(t *testing.T) {
	grid := testGrid(3) // one shard
	w := newFakeWorker(t, func(rw http.ResponseWriter, _ *http.Request, _ *ShardSpec) bool {
		rw.Header().Set("Retry-After", "30")
		rw.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(rw, `{"error":"shed","reason":"shed"}`)
		return true
	})
	c, err := New(Config{
		Workers: []string{w.URL()}, ShardSize: 64, HeartbeatInterval: -1,
		RetryBase: time.Second, RetryCap: time.Minute, MaxAttempts: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), grid)
		done <- err
	}()
	waitFor(t, "first dispatch attempt", func() bool { return w.requests.Load() >= 1 })
	began := time.Now()
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, runstate.ErrInterrupted) {
			t.Errorf("Run after Close = %v, want ErrInterrupted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run still blocked 5s after Close; backoff wait not aborted")
	}
	if drain := time.Since(began); drain > time.Second {
		t.Errorf("Close-to-return latency %v, want well under the 30s Retry-After window", drain)
	}
}

// TestScanJournalHealsInvalidRows (satellite: schema drift): a journal
// record whose CRC was fine but whose payload no longer re-validates as
// a row is counted, re-executed, and overwritten — never resurrected.
func TestScanJournalHealsInvalidRows(t *testing.T) {
	grid := testGrid(4) // 16 points, 4 shards at size 4
	fp, _, shards, err := PlanShards(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	j := newLooseJournal()
	marshal := func(r Row) []byte {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	// Shard 0: fully journaled and sealed — pure replay.
	for i, key := range shards[0].Keys {
		j.put(key, marshal(fakeRow(shards[0].Points[i])))
	}
	j.put(DoneKey(fp, shards[0].Index), []byte(`{"index":0,"points":4}`))
	// Shard 1: sealed, but one record decodes to an empty row (written by
	// an older build whose schema drifted). The CRC layer passed it; spec
	// re-validation must not.
	j.put(shards[1].Keys[0], []byte(`{"bogus":true}`))
	for i := 1; i < len(shards[1].Keys); i++ {
		j.put(shards[1].Keys[i], marshal(fakeRow(shards[1].Points[i])))
	}
	j.put(DoneKey(fp, shards[1].Index), []byte(`{"index":1,"points":4}`))

	w := newFakeWorker(t, nil)
	c, err := New(Config{Workers: []string{w.URL()}, ShardSize: 4, Journal: j, HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.CSV) != string(expectedCSV(grid)) {
		t.Error("CSV diverges after invalid-row healing")
	}
	if out.Replayed != 7 || out.OrphanShards != 1 || out.Fresh != 9 {
		t.Errorf("out = %+v, want 7 replayed, 1 orphan, 9 fresh", out)
	}
	if got := c.m.InvalidRows.Value(); got != 1 {
		t.Errorf("cluster_journal_invalid_rows_total = %d, want 1", got)
	}
	if got := w.evaluated.Load(); got != 9 {
		t.Errorf("worker evaluated %d points, want exactly the 9 missing or invalid", got)
	}
	// The drifted record was superseded by a valid one.
	raw, ok := j.Lookup(shards[1].Keys[0])
	if !ok || !validRowBytes(raw) {
		t.Errorf("invalid record not healed: %s", raw)
	}
	// A rerun replays everything without touching a worker.
	before := w.requests.Load()
	out2, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Replayed != 16 || w.requests.Load() != before {
		t.Errorf("rerun = %+v with %d extra requests, want full replay", out2, w.requests.Load()-before)
	}
}

// TestAuditDecisionZeroAllocWhenDisabled: with auditing off, the
// per-shard audit decision on the merge hot path costs nothing.
func TestAuditDecisionZeroAllocWhenDisabled(t *testing.T) {
	c, err := New(Config{Workers: []string{"http://w0"}, HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := &sweepState{}
	sr := &shardRun{shard: Shard{Index: 3}}
	res := ShardResult{Index: 3}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		v := c.audit(ctx, st, 0, sr, res)
		if !v.merge || v.audited {
			t.Fatal("audit-off verdict must be merge-unaudited")
		}
	})
	if allocs != 0 {
		t.Errorf("audit-off decision allocates %v times per shard, want 0", allocs)
	}
}

func BenchmarkAuditDecisionDisabled(b *testing.B) {
	c, err := New(Config{Workers: []string{"http://w0"}, HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	st := &sweepState{}
	sr := &shardRun{shard: Shard{Index: 3}}
	res := ShardResult{Index: 3}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := c.audit(ctx, st, 0, sr, res)
		if !v.merge {
			b.Fatal("unexpected verdict")
		}
	}
}
