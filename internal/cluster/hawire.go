package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Wire vocabulary of the coordinator high-availability protocol (see
// DESIGN.md §5i). Three parties speak it:
//
//   - candidates/leaders POST /v1/lease to every worker (the witnesses)
//     to win or renew a term lease;
//   - workers reject shard dispatches whose Bcn-Term header is below
//     the highest term their witness has granted (fencing);
//   - the leader streams journal records to standby replicas over
//     POST /v1/replicate, and a lagging standby catches up with a full
//     GET /v1/journal snapshot.
const (
	// TermHeader stamps a shard dispatch with the sending leader's term,
	// and rides back on fencing rejections carrying the term that won.
	TermHeader = "Bcn-Term"
	// NotLeaderHeader accompanies a 421 from a standby replica, hinting
	// at the last known leader URL (may be empty when none is known).
	NotLeaderHeader = "Bcn-Not-Leader"
	// StaleTermReason is the errorBody reason of a fenced dispatch.
	StaleTermReason = "stale-term"
	// NotLeaderReason is the clusterError reason of a 421 redirect.
	NotLeaderReason = "not-leader"
)

// ErrStaleTerm marks a dispatch fenced by a worker that has witnessed a
// higher leadership term: the sending coordinator is deposed.
var ErrStaleTerm = errors.New("cluster: dispatch fenced by a higher term")

// ErrLeaseLost marks a merge refused because the coordinator's
// leadership lease lapsed while the shard was in flight.
var ErrLeaseLost = errors.New("cluster: leadership lease lost")

// Lease TTL bounds accepted by a witness: below the floor a lease
// could expire inside one network round trip; above the ceiling a dead
// leader would block the fleet for minutes.
const (
	MinLeaseTTL = 50 * time.Millisecond
	MaxLeaseTTL = 5 * time.Minute
)

// LeaseRequest asks one witness for (or renews) a term lease.
type LeaseRequest struct {
	// Candidate is the advertised base URL of the requesting replica —
	// its stable identity across the fleet and the redirect target
	// standbys hand to clients.
	Candidate string `json:"candidate"`
	// Term is the term number being requested. Witnesses grant
	// monotonically: a new holder needs a term strictly above the
	// highest granted; the incumbent renews at its own term.
	Term uint64 `json:"term"`
	// TTLMs is the lease duration in milliseconds.
	TTLMs int64 `json:"ttl_ms"`
}

// Validate bounds-checks one lease request.
func (r *LeaseRequest) Validate() error {
	if r.Candidate == "" {
		return fmt.Errorf("cluster: lease request without candidate")
	}
	if len(r.Candidate) > 512 {
		return fmt.Errorf("cluster: candidate URL exceeds 512 bytes")
	}
	if r.Term == 0 {
		return fmt.Errorf("cluster: lease term must be positive")
	}
	ttl := time.Duration(r.TTLMs) * time.Millisecond
	if ttl < MinLeaseTTL || ttl > MaxLeaseTTL {
		return fmt.Errorf("cluster: lease ttl %s outside [%s, %s]", ttl, MinLeaseTTL, MaxLeaseTTL)
	}
	return nil
}

// LeaseResponse is one witness's verdict. On a denial, Term and Holder
// tell the candidate what to beat and where the seat currently is.
type LeaseResponse struct {
	Granted bool `json:"granted"`
	// Term is the highest term this witness has ever granted — its
	// fencing floor, reported on grants and denials alike.
	Term uint64 `json:"term"`
	// Holder is the current lease holder ("" when the lease has
	// expired and the seat is open).
	Holder string `json:"holder"`
	// TTLMsLeft is the remaining validity of the current lease.
	TTLMsLeft int64 `json:"ttl_ms_left"`
}

// DecodeLeaseRequest parses and validates one lease request body.
func DecodeLeaseRequest(r io.Reader) (LeaseRequest, error) {
	var req LeaseRequest
	dec := json.NewDecoder(io.LimitReader(r, 4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return LeaseRequest{}, fmt.Errorf("cluster: decode lease request: %w", err)
	}
	if err := req.Validate(); err != nil {
		return LeaseRequest{}, err
	}
	return req, nil
}

// ReplicateRecord is one journal record in flight from leader to
// standby. Key is the journal's content-hash key, so applying a batch
// twice (or applying records that a snapshot already delivered) is
// idempotent by construction.
type ReplicateRecord struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// ReplicateRequest carries an ordered batch of journal records.
type ReplicateRequest struct {
	// Term is the sender's leadership term; a receiver that has seen a
	// higher term rejects the batch so a deposed leader's stragglers
	// cannot interleave with the new leader's writes.
	Term uint64 `json:"term"`
	// From is the sender's advertised URL (leader hint for the
	// receiver's client redirects).
	From    string            `json:"from"`
	Records []ReplicateRecord `json:"records"`
}

// ReplicateResponse acknowledges a batch.
type ReplicateResponse struct {
	// Applied counts records newly written to the receiver's journal
	// (records already present count as applied work done earlier).
	Applied int `json:"applied"`
	// Term is the receiver's highest seen term; a sender seeing its own
	// term exceeded learns it is deposed.
	Term uint64 `json:"term"`
}

// DecodeReplicateRequest parses one replication batch, bounded by the
// wire ceiling shared with every other cluster payload.
func DecodeReplicateRequest(r io.Reader) (ReplicateRequest, error) {
	var req ReplicateRequest
	dec := json.NewDecoder(io.LimitReader(r, MaxWireBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return ReplicateRequest{}, fmt.Errorf("cluster: decode replicate request: %w", err)
	}
	if req.Term == 0 {
		return ReplicateRequest{}, fmt.Errorf("cluster: replicate batch without term")
	}
	for i := range req.Records {
		if req.Records[i].Key == "" {
			return ReplicateRequest{}, fmt.Errorf("cluster: replicate record %d without key", i)
		}
		if !json.Valid(req.Records[i].Val) {
			return ReplicateRequest{}, fmt.Errorf("cluster: replicate record %s carries invalid JSON", req.Records[i].Key)
		}
	}
	return req, nil
}

// SweepGridKey is the journal key under which a leader records an
// accepted sweep's full grid, so a successor can decode and resume it.
func SweepGridKey(fp string) string { return "sweep-grid:" + fp }

// SweepDoneKey marks a sweep fully merged and published.
func SweepDoneKey(fp string) string { return "sweep-done:" + fp }
