package cluster

import (
	"reflect"
	"testing"
	"time"
)

func TestDedupeWorkers(t *testing.T) {
	got, err := dedupeWorkers([]string{"http://a", "http://b", "http://a", "http://c", "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a", "http://b", "http://c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupeWorkers = %v, want %v", got, want)
	}
	if _, err := dedupeWorkers([]string{"http://a", ""}); err == nil {
		t.Error("empty worker URL accepted")
	}
	if _, err := dedupeWorkers([]string{"\t "}); err == nil {
		t.Error("whitespace worker URL accepted")
	}
	if _, err := dedupeWorkers(nil); err == nil {
		t.Error("empty fleet accepted")
	}
}

// TestRingDedupeWeight is the satellite-2 guarantee: a worker URL
// repeated on the command line must not carry double placement weight.
// The ring built from the deduped list is *identical* to one built
// from the unique list, so every key's owner — and therefore every
// worker's share — is exactly what a clean invocation yields.
func TestRingDedupeWeight(t *testing.T) {
	unique := []string{"http://w0", "http://w1", "http://w2"}
	doubled := []string{"http://w0", "http://w0", "http://w1", "http://w0", "http://w2"}
	deduped, err := dedupeWorkers(doubled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deduped, unique) {
		t.Fatalf("dedupeWorkers(%v) = %v, want %v", doubled, deduped, unique)
	}
	clean, fromDup := newRing(unique), newRing(deduped)
	shares := make([]int, len(unique))
	for i := 0; i < 500; i++ {
		k := DoneKey("fp-ring-weight", i)
		a, b := clean.owner(k, nil), fromDup.owner(k, nil)
		if a != b {
			t.Fatalf("key %s: owner %d from unique list, %d after dedupe", k, a, b)
		}
		shares[a]++
	}
	// Sanity: the duplicated worker did not end up with a majority of
	// the keyspace (with doubled weight w0 would own ~half; deduped it
	// owns ~a third).
	if shares[0] > 300 {
		t.Errorf("worker 0 owns %d/500 keys; duplicate entries still inflate weight?", shares[0])
	}
}

// TestHeartbeatMonotonicDeadline is the satellite-1 guarantee: a
// worker is marked lost only when BOTH HeartbeatMisses consecutive
// probes failed AND the monotonic clock (time.Since a time.Time
// captured at the last healthy probe) covers that many intervals. A
// burst of back-to-back failures — what a stalled ticker or a
// wall-clock step produces — cannot take a recently-healthy worker
// down.
func TestHeartbeatMonotonicDeadline(t *testing.T) {
	c, err := New(Config{
		Workers:           []string{"http://w0", "http://w1"},
		HeartbeatInterval: -1, // loop disabled; we drive noteHeartbeat directly
		HeartbeatMisses:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.cfg.HeartbeatInterval = 50 * time.Millisecond
	deadline := 3 * c.cfg.HeartbeatInterval
	probeErr := errContext("probe failed")

	// A burst of failures with a fresh lastSeen: misses saturate but the
	// monotonic deadline has not passed, so the worker stays up.
	c.mu.Lock()
	c.lastSeen[0] = time.Now()
	c.mu.Unlock()
	for i := 0; i < 5; i++ {
		c.noteHeartbeat(0, time.Now(), WorkerStatus{}, probeErr)
	}
	c.mu.Lock()
	alive, misses := c.alive[0], c.misses[0]
	c.mu.Unlock()
	if !alive {
		t.Fatalf("worker lost after %d back-to-back failures inside one interval", misses)
	}
	if misses < 3 {
		t.Fatalf("misses = %d after 5 failures, want >= 3", misses)
	}

	// Same miss count with the monotonic deadline genuinely elapsed: lost.
	c.mu.Lock()
	c.lastSeen[0] = time.Now().Add(-deadline)
	c.mu.Unlock()
	c.noteHeartbeat(0, time.Now(), WorkerStatus{}, probeErr)
	c.mu.Lock()
	alive = c.alive[0]
	c.mu.Unlock()
	if alive {
		t.Fatal("worker still up with misses and monotonic deadline both exceeded")
	}

	// A healthy probe resets both the counter and the epoch.
	tick := time.Now()
	c.noteHeartbeat(0, tick, WorkerStatus{}, nil)
	c.mu.Lock()
	alive, misses = c.alive[0], c.misses[0]
	seen := c.lastSeen[0]
	c.mu.Unlock()
	if !alive || misses != 0 || !seen.Equal(tick) {
		t.Fatalf("recovery: alive=%v misses=%d lastSeen=%v, want true/0/%v", alive, misses, seen, tick)
	}

	// Deadline elapsed but misses below threshold (e.g. probes that
	// succeeded in between): stays up.
	c.mu.Lock()
	c.lastSeen[1] = time.Now().Add(-10 * deadline)
	c.misses[1] = 0
	c.mu.Unlock()
	c.noteHeartbeat(1, time.Now(), WorkerStatus{}, probeErr)
	c.mu.Lock()
	alive = c.alive[1]
	c.mu.Unlock()
	if !alive {
		t.Fatal("worker lost on a single miss; consecutive-miss threshold ignored")
	}
}

// errContext is a trivial error type so the test does not depend on a
// specific probe error.
type errContext string

func (e errContext) Error() string { return string(e) }

func TestLeaseRequestValidate(t *testing.T) {
	ok := LeaseRequest{Candidate: "http://c0", Term: 1, TTLMs: 3000}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []LeaseRequest{
		{Candidate: "", Term: 1, TTLMs: 3000},
		{Candidate: "http://c0", Term: 0, TTLMs: 3000},
		{Candidate: "http://c0", Term: 1, TTLMs: 1},
		{Candidate: "http://c0", Term: 1, TTLMs: int64(MaxLeaseTTL/time.Millisecond) + 1},
	}
	for i, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("case %d: invalid lease request %+v accepted", i, req)
		}
	}
}

// TestReplJournalIdempotent: repeated writes of one key through the
// replicating journal append exactly once. memJournal (cluster_test.go)
// errors on a duplicate Record, so any double-append fails the test.
func TestReplJournalIdempotent(t *testing.T) {
	mem := newMemJournal()
	rj := &replJournal{j: mem, repl: newReplicator(nil, "self", nil, func() uint64 { return 1 })}
	defer rj.repl.close()
	for i := 0; i < 10; i++ {
		if err := rj.Record("k", []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := rj.Lookup("k"); !ok {
		t.Error("recorded key not visible through Lookup")
	}
	if got := len(rj.Keys()); got != 1 {
		t.Errorf("journal holds %d keys after 10 writes of one key, want 1", got)
	}
}
