package cluster

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeSweepRequest hammers the coordinator's grid-submission
// decoder with arbitrary bytes. The contract is the 400-vs-500
// boundary: every rejection wraps ErrWire, never panics, and every
// accepted grid must fingerprint, enumerate and shard-plan cleanly —
// otherwise a malformed submission could reach the dispatch loop.
func FuzzDecodeSweepRequest(f *testing.F) {
	seeds := []string{
		`{"b_over_q0":5,"gi_lo":0.05,"gi_hi":12.8,"gd_lo":0.0009765625,"gd_hi":0.5,"steps":10}`,
		`{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":2,"invariants":"record"}`,
		// The classic rejects.
		``, `null`, `[1]`, `{{{`,
		`{"steps":1}`,
		`{"b_over_q0":0.5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}`,
		`{"b_over_q0":5,"gi_lo":-1,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}`,
		`{"b_over_q0":5,"gi_lo":1e999,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3}`,
		`{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":4096}`,
		`{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3,"invariants":"dance"}`,
		`{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3,"bogus":1}`,
		`{"b_over_q0":5,"gi_lo":0.05,"gi_hi":1,"gd_lo":0.001,"gd_hi":0.1,"steps":3} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		g, err := DecodeSweepRequest(bytes.NewReader(body), MaxWireBytes)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("rejection does not wrap ErrWire (handler would 500, not 400): %v", err)
			}
			return
		}
		fp, points, shards, err := PlanShards(g, DefaultShardSize)
		if err != nil {
			t.Fatalf("accepted grid does not plan: %v", err)
		}
		if len(fp) != 64 {
			t.Fatalf("accepted grid has malformed fingerprint %q", fp)
		}
		if len(points) != g.Steps*g.Steps {
			t.Fatalf("accepted grid enumerates %d points, want %d", len(points), g.Steps*g.Steps)
		}
		total := 0
		for _, sh := range shards {
			if len(sh.Points) == 0 || len(sh.Points) != len(sh.Keys) || len(sh.Points) != len(sh.GridIdx) {
				t.Fatalf("malformed shard %d: %d points, %d keys, %d indices",
					sh.Index, len(sh.Points), len(sh.Keys), len(sh.GridIdx))
			}
			spec := &ShardSpec{Grid: g, Index: sh.Index, Points: sh.Points}
			if err := spec.Validate(); err != nil {
				t.Fatalf("planned shard %d fails its own wire validation: %v", sh.Index, err)
			}
			total += len(sh.Points)
		}
		if total != len(points) {
			t.Fatalf("shards cover %d of %d points", total, len(points))
		}
	})
}

// FuzzDecodeShardArtifact hammers the worker-artifact decoder: no
// panic, every rejection wraps ErrWire, and every accepted result
// matches the assignment it claims to answer.
func FuzzDecodeShardArtifact(f *testing.F) {
	seeds := []string{
		`{"key":"k","kind":"shard","shard":{"index":0,"rows":[{"CSV":"a"},{"CSV":"b"}]}}`,
		`{"kind":"shard","shard":{"index":0,"rows":[{"CSV":"a","Violations":3,"FirstPred":"q_in_range"},{"CSV":"b"}]}}`,
		// Rejects: wrong kind, index mismatch, row-count mismatch, empty
		// row, garbage.
		`{"kind":"solve","solve":{}}`,
		`{"kind":"shard","shard":{"index":7,"rows":[{"CSV":"a"},{"CSV":"b"}]}}`,
		`{"kind":"shard","shard":{"index":0,"rows":[{"CSV":"a"}]}}`,
		`{"kind":"shard","shard":{"index":0,"rows":[{"CSV":""},{"CSV":"b"}]}}`,
		`{"kind":"shard"}`, ``, `null`, `{{{`, `[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	want := &ShardSpec{
		Grid:   GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 0.001, GdHi: 0.1, Steps: 2},
		Index:  0,
		Points: []GainPoint{{Gi: 0.05, Gd: 0.001}, {Gi: 0.05, Gd: 0.1}},
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		res, err := DecodeShardArtifact(raw, want)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("rejection does not wrap ErrWire: %v", err)
			}
			return
		}
		if res.Index != want.Index || len(res.Rows) != len(want.Points) {
			t.Fatalf("accepted result does not match assignment: %+v", res)
		}
		for i, r := range res.Rows {
			if r.CSV == "" {
				t.Fatalf("accepted result row %d is empty", i)
			}
		}
	})
}

// FuzzDecodeWorkerStatus hammers the heartbeat decoder: no panic, no
// accepted status with negative occupancy.
func FuzzDecodeWorkerStatus(f *testing.F) {
	seeds := []string{
		`{"draining":false,"workers":4,"queued":0,"in_flight":1,"active_jobs":1,"utilization":0.25}`,
		`{"draining":true}`,
		`{"unknown_future_field":1,"workers":2}`,
		`{"workers":-1}`, `{"queued":-3}`,
		``, `null`, `true`, `"status"`, `{{{`, `[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		st, err := DecodeWorkerStatus(raw)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("rejection does not wrap ErrWire: %v", err)
			}
			return
		}
		if st.Workers < 0 || st.Queued < 0 || st.InFlight < 0 {
			t.Fatalf("accepted status with negative occupancy: %+v", st)
		}
	})
}
