package cluster

import "bcnphase/internal/telemetry"

// Metrics is the coordinator's cluster-level instrument set, registered
// on the coordinator's registry and served by its /metrics endpoint.
// The cluster series answer the questions the single-node serve_*
// family cannot: how many points the whole fleet has merged, how often
// shards had to move, and which workers are quarantined.
type Metrics struct {
	// Points counts fresh points merged into the map (monotonic).
	Points *telemetry.Counter
	// ReplayedPoints counts points answered from the coordinator journal
	// instead of being dispatched.
	ReplayedPoints *telemetry.Counter
	// ShardsDone counts shards whose done marker has been journaled.
	ShardsDone *telemetry.Counter
	// Reassigned counts shard moves off their planned worker: lease
	// expiry, dispatch failure, worker loss, or redistribution of a dead
	// worker's queue.
	Reassigned *telemetry.Counter
	// Stolen counts shards taken by an idle worker from another worker's
	// queue (the work-stealing path, a subset of healthy completions).
	Stolen *telemetry.Counter
	// OrphanShards counts journal-replay shards whose rows were present
	// without a final done marker (or vice versa) and were re-executed.
	OrphanShards *telemetry.Counter
	// StrayRecords counts journal records that belong to neither the
	// grid's points nor its shard markers (stale fingerprints).
	StrayRecords *telemetry.Counter
	// Retries counts dispatch attempts beyond the first.
	Retries *telemetry.Counter
	// WorkerErrors counts failed dispatch attempts by worker.
	WorkerErrors *telemetry.CounterVec
	// Sweeps and SweepsShed count grid submissions accepted and shed by
	// the coordinator's admission control.
	Sweeps     *telemetry.Counter
	SweepsShed *telemetry.Counter
	// BreakerTransitions counts per-worker breaker state changes by
	// destination state; BreakerState is the live per-worker state
	// (0 closed, 1 half-open, 2 open).
	BreakerTransitions *telemetry.CounterVec
	BreakerState       *telemetry.GaugeVec
	// AuditSampled counts freshly completed shards re-executed on a
	// second worker for a bit-exact comparison; AuditMatched counts the
	// ones that agreed, AuditDivergent the ones that did not (with
	// AuditDivergentRows the row-level disagreement count), and
	// AuditInconclusive the divergences no third worker could settle.
	// AuditSkipped counts sampled shards with no second worker available.
	AuditSampled       *telemetry.Counter
	AuditMatched       *telemetry.Counter
	AuditDivergent     *telemetry.Counter
	AuditDivergentRows *telemetry.Counter
	AuditInconclusive  *telemetry.Counter
	AuditSkipped       *telemetry.Counter
	// AuditQuarantined counts workers quarantined after losing a tiebreak
	// quorum; AuditRevoked counts their unaudited merged shards that were
	// revoked and re-executed.
	AuditQuarantined *telemetry.Counter
	AuditRevoked     *telemetry.Counter
	// DigestFailures counts shard results rejected on receipt because
	// their rows did not match their signed checksums (in-flight
	// corruption; retried as transient).
	DigestFailures *telemetry.Counter
	// InvalidRows counts journal-replay point records whose CRC was valid
	// but whose payload failed row re-validation (schema drift); they are
	// re-executed and superseded, never resurrected.
	InvalidRows *telemetry.Counter
	// WorkerUp is 1 while a worker's heartbeats are healthy.
	WorkerUp *telemetry.GaugeVec
	// PointsPerSecond is the fresh-point merge rate of the last sweep.
	PointsPerSecond *telemetry.Gauge
	// ShardSeconds is the wall-clock latency of one successful shard
	// dispatch (queue, execution and transfer included).
	ShardSeconds *telemetry.Histogram
}

// NewMetrics registers the cluster family on reg (nil-safe: a nil
// registry yields no-op instruments).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Points:         reg.Counter("cluster_points_total", "fresh grid points merged into the map"),
		ReplayedPoints: reg.Counter("cluster_replayed_points_total", "points answered from the coordinator journal"),
		ShardsDone:     reg.Counter("cluster_shards_done_total", "shards completed and journaled with a done marker"),
		Reassigned:     reg.Counter("cluster_reassigned_shards_total", "shards re-assigned after lease expiry, dispatch failure or worker loss"),
		Stolen:         reg.Counter("cluster_stolen_shards_total", "shards stolen from another worker's queue"),
		OrphanShards:   reg.Counter("cluster_journal_orphan_shards_total", "journal shards missing their done marker, surfaced and re-executed"),
		StrayRecords:   reg.Counter("cluster_journal_stray_records_total", "journal records outside the grid's key space (stale fingerprints)"),
		Retries:        reg.Counter("cluster_dispatch_retries_total", "shard dispatch attempts beyond the first"),
		WorkerErrors:   reg.CounterVec("cluster_worker_errors_total", "failed shard dispatch attempts by worker", "worker"),
		Sweeps:         reg.Counter("cluster_sweeps_total", "grid submissions accepted by the coordinator"),
		SweepsShed:     reg.Counter("cluster_sweeps_shed_total", "grid submissions shed by coordinator admission control"),
		BreakerTransitions: reg.CounterVec("cluster_worker_breaker_transitions_total",
			"per-worker circuit-breaker state transitions by destination state", "state"),
		AuditSampled:       reg.Counter("cluster_audit_sampled_shards_total", "completed shards re-executed on a second worker for audit"),
		AuditMatched:       reg.Counter("cluster_audit_matched_shards_total", "audited shards whose re-execution matched bit-exactly"),
		AuditDivergent:     reg.Counter("cluster_audit_divergent_shards_total", "audited shards whose re-execution diverged"),
		AuditDivergentRows: reg.Counter("cluster_audit_divergent_rows_total", "row-level disagreements found by shard audits"),
		AuditInconclusive:  reg.Counter("cluster_audit_inconclusive_shards_total", "divergent shards no tiebreak worker could settle (re-executed from scratch)"),
		AuditSkipped:       reg.Counter("cluster_audit_skipped_shards_total", "sampled shards with no second worker available to audit"),
		AuditQuarantined:   reg.Counter("cluster_audit_quarantined_workers_total", "workers quarantined after losing an audit tiebreak quorum"),
		AuditRevoked:       reg.Counter("cluster_audit_revoked_shards_total", "unaudited shards revoked and re-executed after their worker was quarantined"),
		DigestFailures:     reg.Counter("cluster_digest_failures_total", "shard results rejected on receipt for checksum or digest mismatch"),
		InvalidRows:        reg.Counter("cluster_journal_invalid_rows_total", "CRC-valid journal rows that failed re-validation on replay (schema drift)"),
		BreakerState: reg.GaugeVec("cluster_worker_breaker_state",
			"per-worker breaker state: 0 closed, 1 half-open, 2 open, 3 quarantined", "worker"),
		WorkerUp:        reg.GaugeVec("cluster_worker_up", "1 while the worker's heartbeats are healthy", "worker"),
		PointsPerSecond: reg.Gauge("cluster_points_per_second", "fresh points merged per wall-clock second (last sweep)"),
		ShardSeconds: reg.Histogram("cluster_shard_seconds",
			"wall-clock latency of one successful shard dispatch", nil),
	}
}

// HAMetrics is the high-availability replica's instrument set: who
// leads, at what term, and how far the replication stream lags.
type HAMetrics struct {
	// Term is the term this replica most recently led; IsLeader is 1
	// while it believes it holds the lease.
	Term     *telemetry.Gauge
	IsLeader *telemetry.Gauge
	// Elections counts terms won; StepDowns counts leaderships
	// relinquished (expired lease, higher term witnessed, shutdown).
	Elections *telemetry.Counter
	StepDowns *telemetry.Counter
	// ReplicatedRecords counts journal records acknowledged by a
	// standby; ReplDropped counts records dropped from the stream
	// (queue overflow, send failure, deposed sender) and left for
	// snapshot catch-up; AppliedRecords counts records this replica
	// applied from a peer; SnapshotSyncs counts full-journal catch-up
	// fetches completed.
	ReplicatedRecords *telemetry.Counter
	ReplDropped       *telemetry.Counter
	AppliedRecords    *telemetry.Counter
	SnapshotSyncs     *telemetry.Counter
}

// NewHAMetrics registers the HA family on reg; lag, when non-nil,
// backs the live cluster_replication_lag_records gauge.
func NewHAMetrics(reg *telemetry.Registry, lag func() float64) *HAMetrics {
	m := &HAMetrics{
		Term:              reg.Gauge("cluster_term", "leadership term this replica most recently led"),
		IsLeader:          reg.Gauge("cluster_is_leader", "1 while this replica holds the leadership lease"),
		Elections:         reg.Counter("cluster_elections_total", "leadership terms won by this replica"),
		StepDowns:         reg.Counter("cluster_stepdowns_total", "leaderships relinquished by this replica"),
		ReplicatedRecords: reg.Counter("cluster_replicated_records_total", "journal records acknowledged by a standby"),
		ReplDropped:       reg.Counter("cluster_replication_dropped_total", "journal records dropped from the replication stream (healed by snapshot)"),
		AppliedRecords:    reg.Counter("cluster_applied_records_total", "journal records applied from a peer (stream or snapshot)"),
		SnapshotSyncs:     reg.Counter("cluster_snapshot_syncs_total", "full-journal catch-up fetches completed"),
	}
	if lag != nil {
		reg.GaugeFunc("cluster_replication_lag_records",
			"journal records queued for standbys and not yet sent", lag)
	}
	return m
}
