package cluster

import (
	"context"
	"fmt"
	"math"
	"strings"

	"bcnphase/internal/analytic"
	"bcnphase/internal/core"
	"bcnphase/internal/invariant"
	"bcnphase/internal/linear"
	"bcnphase/internal/runstate"
)

// GainGrid describes one gain-plane sweep: the geometric (Gi, Gd) grid
// cmd/bcnsweep evaluates, plus the invariant policy that shapes every
// row. It is also the coordinator's submit wire message (POST
// /v1/sweeps). The JSON field names match serve.SweepSpec so operators
// write one request shape everywhere.
type GainGrid struct {
	// BOverQ0 sets the buffer as a multiple of q0 (must leave B > q0).
	BOverQ0 float64 `json:"b_over_q0"`
	// GiLo, GiHi, GdLo, GdHi bound the geometric gain axes.
	GiLo float64 `json:"gi_lo"`
	GiHi float64 `json:"gi_hi"`
	GdLo float64 `json:"gd_lo"`
	GdHi float64 `json:"gd_hi"`
	// Steps is the per-axis resolution (Steps² grid points).
	Steps int `json:"steps"`
	// Invariants is the runtime invariant policy applied to every point
	// ("off", "record", "strict", "clamp"); empty means off. It is part
	// of the grid's identity: rows computed under one policy must never
	// replay under another.
	Invariants string `json:"invariants,omitempty"`
	// Analytic selects the row engine ("on", "auto", "off"); empty means
	// on. On/auto rows come from the sampling-free closed-form engine
	// (internal/analytic) and report exact extrema; off rows come from
	// the classic sampled core.Solve. The analytic engine carries no
	// invariant instrumentation, so any non-off Invariants policy forces
	// the classic path regardless of this field. Like Invariants it is
	// part of the grid's identity: max_q_bits differs between exact and
	// sampled extrema, so rows from one engine must never replay as the
	// other's.
	Analytic string `json:"analytic,omitempty"`
}

// MaxClusterSteps caps the per-axis resolution a coordinator accepts
// over the wire (MaxClusterSteps² points). Local bcnsweep runs are not
// bound by it.
const MaxClusterSteps = 64

// GainPoint is one (Gi, Gd) grid point.
type GainPoint struct {
	Gi float64 `json:"gi"`
	Gd float64 `json:"gd"`
}

// Row is one evaluated grid point. The exported field names are frozen:
// they are the JSON shape of both the shard result envelope and the
// journal records cmd/bcnsweep has written since the resume PR, so a
// coordinator journal and a bcnsweep -resume journal are
// interchangeable.
type Row struct {
	// CSV is the rendered output line.
	CSV string
	// Violations and FirstPred summarize the point's runtime invariant
	// tallies for sweep-level aggregation.
	Violations uint64
	FirstPred  string
}

// InvariantViolations implements sweep.InvariantReporter.
func (r Row) InvariantViolations() (uint64, string) { return r.Violations, r.FirstPred }

// CSVHeader is the merged map.csv header row, identical to
// cmd/bcnsweep's.
const CSVHeader = "gi,gd,case,linear_stable,theorem1_ok,theorem1_bound_bits,outcome,strongly_stable,max_q_bits,rho,violations,first_violation"

// gridIdentity fingerprints everything that shapes a row's value. The
// struct (field names, order, values) is byte-compatible with the
// sweepIdentity cmd/bcnsweep has hashed since format 2, so grids keep
// their journal keys no matter which side of the cluster evaluates
// them. Execution knobs (workers, shard size, timeouts) are
// deliberately excluded — they do not affect results.
type gridIdentity struct {
	Experiment string
	Format     int // bump when the CSV row layout changes
	BOverQ0    float64
	GiLo, GiHi float64
	GdLo, GdHi float64
	Steps      int
	Invariants string
	Analytic   string
}

// Validate checks the grid's structural and physical feasibility.
func (g GainGrid) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("cluster: grid: %s", fmt.Sprintf(format, args...))
	}
	if g.Steps < 2 {
		return fail("steps=%d must be >= 2", g.Steps)
	}
	for _, b := range []struct {
		name string
		v    float64
	}{
		{"b_over_q0", g.BOverQ0},
		{"gi_lo", g.GiLo}, {"gi_hi", g.GiHi},
		{"gd_lo", g.GdLo}, {"gd_hi", g.GdHi},
	} {
		if math.IsNaN(b.v) || math.IsInf(b.v, 0) || b.v <= 0 {
			return fail("%s=%v must be positive and finite", b.name, b.v)
		}
	}
	if g.BOverQ0 <= 1 {
		return fail("b_over_q0=%v leaves B <= q0", g.BOverQ0)
	}
	if _, err := invariant.ParsePolicy(g.Invariants); err != nil {
		return fail("%v", err)
	}
	if _, err := analytic.ParseMode(g.Analytic); err != nil {
		return fail("%v", err)
	}
	return nil
}

// Policy returns the grid's parsed invariant policy (Off for empty).
// The grid must have passed Validate.
func (g GainGrid) Policy() invariant.Policy {
	pol, _ := invariant.ParsePolicy(g.Invariants)
	return pol
}

// AnalyticMode returns the grid's parsed engine mode (ModeOn for
// empty). The grid must have passed Validate.
func (g GainGrid) AnalyticMode() analytic.Mode {
	m, _ := analytic.ParseMode(g.Analytic)
	return m
}

// analyticActive reports whether rows come from the closed-form engine:
// the mode allows it and no invariant instrumentation is requested.
func (g GainGrid) analyticActive() bool {
	return g.AnalyticMode() != analytic.ModeOff && g.Policy() == invariant.Off
}

// Base materializes the shared parameter set every point perturbs: the
// figure example with the grid's buffer multiple, exactly as
// cmd/bcnsweep builds it.
func (g GainGrid) Base() core.Params {
	p := core.FigureExample()
	p.B = g.BOverQ0 * p.Q0
	return p
}

// Points enumerates the grid in row-major order (all Gd values for the
// first Gi, then the next Gi) — the order map.csv rows appear in.
func (g GainGrid) Points() []GainPoint {
	pts := make([]GainPoint, 0, g.Steps*g.Steps)
	for i := 0; i < g.Steps; i++ {
		gi := geomAt(g.GiLo, g.GiHi, i, g.Steps)
		for j := 0; j < g.Steps; j++ {
			pts = append(pts, GainPoint{Gi: gi, Gd: geomAt(g.GdLo, g.GdHi, j, g.Steps)})
		}
	}
	return pts
}

// Fingerprint is the grid's identity hash: the root of every point and
// shard key. A journal written for one fingerprint can never poison a
// run with another (stale-journal guard).
func (g GainGrid) Fingerprint() (string, error) {
	pol, err := invariant.ParsePolicy(g.Invariants)
	if err != nil {
		return "", fmt.Errorf("cluster: %v", err)
	}
	mode, err := analytic.ParseMode(g.Analytic)
	if err != nil {
		return "", fmt.Errorf("cluster: %v", err)
	}
	return runstate.HashJSON(gridIdentity{
		Experiment: "bcnsweep/gainmap",
		// Format 3: rows may come from the analytic engine (exact extrema
		// in max_q_bits), so the engine mode joins the identity and every
		// pre-engine journal key is retired.
		Format:  3,
		BOverQ0: g.BOverQ0,
		GiLo:    g.GiLo, GiHi: g.GiHi,
		GdLo: g.GdLo, GdHi: g.GdHi,
		Steps:      g.Steps,
		Invariants: pol.String(),
		Analytic:   mode.String(),
	})
}

// PointKey is the journal key of one grid point under the grid
// fingerprint — the same content key cmd/bcnsweep journals rows under.
func PointKey(fingerprint string, pt GainPoint) string {
	key, err := runstate.HashJSON(struct {
		FP     string
		Gi, Gd float64
	}{fingerprint, pt.Gi, pt.Gd})
	if err != nil { // unreachable for plain floats; fail closed as a cache miss
		return fmt.Sprintf("unhashable:%g,%g", pt.Gi, pt.Gd)
	}
	return key
}

// EvalMetrics bundles the per-engine instruments a row evaluation may
// touch. The zero value is inert.
type EvalMetrics struct {
	// Solve instruments the classic sampled path (core.Solve).
	Solve *core.SolveMetrics
	// Analytic instruments the closed-form engine path.
	Analytic *analytic.Metrics
}

// rowFormat is the Sprintf layout of one map.csv row; both engines
// render through it so the column shapes cannot drift apart.
const rowFormat = "%g,%g,%d,%v,%v,%g,%s,%v,%g,%g,%d,%s"

// Eval evaluates one grid point to its CSV row: the linear criterion of
// [4], the Theorem 1 sufficient condition, and the phase-plane ground
// truth. It is the single canonical row evaluation — bcnsweep, the
// shard executor in internal/serve, and the chaos tests all call it,
// which is what makes "byte-identical to a single-node run" a property
// instead of a hope.
//
// When the grid's engine mode is on/auto and its invariant policy is
// off, the verdict comes from the sampling-free closed-form engine
// (internal/analytic) and the linear columns from the Routh–Hurwitz
// criterion directly — no sampled trajectory is built at all, which is
// where the sweep's order-of-magnitude speedup lives. Otherwise the row
// runs the classic instrumented core.Solve.
func (g GainGrid) Eval(ctx context.Context, pt GainPoint, m EvalMetrics) (Row, error) {
	// Cooperative cancellation point: a drained point fails with ctx.Err
	// (and is not journaled) instead of racing the shutdown.
	if err := ctx.Err(); err != nil {
		return Row{}, err
	}
	p := g.Base()
	p.Gi = pt.Gi
	p.Gd = pt.Gd
	if g.analyticActive() {
		res, err := analytic.SolveOne(p, analytic.Options{
			Mode:    g.AnalyticMode(),
			Metrics: m.Analytic,
		})
		if err != nil {
			return Row{}, err
		}
		return analyticRow(p, pt, res), nil
	}
	v, err := linear.Compare(p)
	if err != nil {
		return Row{}, err
	}
	tr, err := core.Solve(p, core.SolveOptions{
		Invariants: invariant.NewPolicy(g.Policy()),
		Telemetry:  m.Solve,
	})
	if err != nil {
		return Row{}, err
	}
	return Row{
		CSV: fmt.Sprintf(rowFormat,
			pt.Gi, pt.Gd, int(p.Case()), v.LinearStable, v.Theorem1OK,
			core.Theorem1Bound(p), tr.Outcome, tr.Outcome.StronglyStable(),
			tr.MaxQueue(), tr.Rho, tr.Violations.Total, tr.Violations.FirstPredicate()),
		Violations: tr.Violations.Total,
		FirstPred:  tr.Violations.FirstPredicate(),
	}, nil
}

// analyticRow renders one closed-form verdict as a map.csv row. The
// linear columns are computed directly: LinearStable is the pure
// Routh–Hurwitz criterion of [4] (no trajectory needed) and Theorem1OK
// the paper's closed-form sufficient condition — exactly the values
// linear.Compare reports, minus its redundant inner solve. The
// invariant columns are structurally zero because the analytic path
// only runs under the off policy.
func analyticRow(p core.Params, pt GainPoint, res analytic.Result) Row {
	linStable := linear.SubsystemStable(p, core.Increase) && linear.SubsystemStable(p, core.Decrease)
	return Row{
		CSV: fmt.Sprintf(rowFormat,
			pt.Gi, pt.Gd, int(p.Case()), linStable, core.Theorem1Satisfied(p),
			core.Theorem1Bound(p), res.Outcome, res.Outcome.StronglyStable(),
			res.MaxQueue(p), res.Rho, uint64(0), ""),
	}
}

// EvalBatch evaluates a contiguous span of grid points, writing the row
// of pts[i] into out[i] (len(out) must equal len(pts)). It is Eval's
// batch shape — sweep.BatchFunc compatible — and is where the analytic
// engine's buffer reuse pays off: one warm Solver serves the whole span
// instead of a pool round-trip per point. Rows are byte-identical to
// per-point Eval calls.
func (g GainGrid) EvalBatch(ctx context.Context, pts []GainPoint, out []Row, m EvalMetrics) error {
	if len(out) != len(pts) {
		return fmt.Errorf("cluster: eval batch: %d outputs for %d points", len(out), len(pts))
	}
	if !g.analyticActive() {
		for i, pt := range pts {
			row, err := g.Eval(ctx, pt, m)
			if err != nil {
				return err
			}
			out[i] = row
		}
		return nil
	}
	s := analytic.NewSolver()
	opts := analytic.Options{Mode: g.AnalyticMode(), Metrics: m.Analytic}
	base := g.Base()
	for i, pt := range pts {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := base
		p.Gi = pt.Gi
		p.Gd = pt.Gd
		res, err := s.Solve(p, opts)
		if err != nil {
			return err
		}
		out[i] = analyticRow(p, pt, res)
	}
	return nil
}

// RenderCSV assembles the merged map.csv from rows in grid order.
func RenderCSV(rows []Row) []byte {
	var b strings.Builder
	fmt.Fprintln(&b, CSVHeader)
	for _, r := range rows {
		fmt.Fprintln(&b, r.CSV)
	}
	return []byte(b.String())
}

func geomAt(lo, hi float64, i, n int) float64 {
	f := float64(i) / float64(n-1)
	return lo * math.Pow(hi/lo, f)
}
