package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"bcnphase/internal/telemetry"
)

// This file implements the highly-available coordinator (DESIGN.md
// §5i): N replicas, of which at most one — the holder of a
// majority-of-witnesses term lease — merges shards at any moment.
//
// The design has no external consensus store. The worker fleet itself
// is the electorate: each worker's witness (internal/serve) grants
// term leases under rules that never double-grant an unexpired term,
// so two replicas cannot both hold majorities at overlapping times.
// Fencing closes the remaining window: every shard dispatch carries
// its term, workers reject terms below the highest they have
// witnessed, and a leader re-checks its lease (monotonic clock) before
// every merge.
//
// Durability is journal-first, replication-second. The leader appends
// to its own journal synchronously — exactly like a single
// coordinator — and streams each record to standbys asynchronously.
// The stream is allowed to lose records under backpressure because
// correctness never depends on it: a successor re-executes whatever
// its journal lacks (zero lost points) and every write path is
// Lookup-before-Record on content-hash keys (zero duplicated
// records). Replication exists to make takeover cheap, not correct.

// HA roles.
const (
	RoleFollower = "follower"
	RoleLeader   = "leader"
)

// HAJournal is the durable store an HA replica requires: the
// coordinator Journal contract plus key enumeration for snapshots and
// takeover scans. runstate.Journal satisfies it.
type HAJournal interface {
	Journal
	Keys() []string
}

// HAConfig configures one coordinator replica.
type HAConfig struct {
	// Self is this replica's advertised base URL — its lease identity
	// across the fleet and the redirect hint standbys hand to clients.
	Self string
	// Peers are the other replicas' base URLs (replication and
	// snapshot targets).
	Peers []string
	// Workers is the worker fleet; its witnesses are the electorate.
	Workers []string
	// LeaseTTL is the leadership lease duration (default 3s). Smaller
	// means faster failover and more lease traffic.
	LeaseTTL time.Duration
	// ElectionInterval paces a follower's campaigns (default
	// LeaseTTL/2, jittered so rival candidates desynchronize).
	ElectionInterval time.Duration
	// RenewInterval paces the leader's lease renewals (default
	// LeaseTTL/3: two full retries fit inside one TTL).
	RenewInterval time.Duration
	// SnapshotInterval paces a follower's journal catch-up fetches from
	// the known leader (default 4×LeaseTTL).
	SnapshotInterval time.Duration
	// Journal is this replica's durable journal (required).
	Journal HAJournal
	// Coordinator templates the per-term coordinator; Workers, Journal,
	// Term, LeaseValid, Registry, Client and CompactJournal are
	// overridden per term.
	Coordinator Config
	// MaxSweeps and SweepTimeout configure the leader's sweep server.
	MaxSweeps    int
	SweepTimeout time.Duration
	// Registry receives cluster_term, cluster_is_leader,
	// cluster_replication_lag_records and friends; nil creates one.
	Registry *telemetry.Registry
	// Client is used for leases, replication and snapshots; nil uses a
	// default.
	Client *http.Client
	// Log, when non-nil, receives one line per HA event.
	Log io.Writer
	// Seed makes election jitter deterministic in tests.
	Seed int64
	// OnShardDone, when non-nil, observes every merged shard together
	// with the term it merged under (the split-brain soak's
	// fencing-order assertion); it replaces Coordinator.OnShardDone.
	OnShardDone func(term uint64, worker string, shard Shard)
}

// HANode is one coordinator replica. Create with NewHANode, mount
// Handler on an HTTP server, stop with Close.
type HANode struct {
	cfg      HAConfig
	m        *HAMetrics
	client   *http.Client
	registry *telemetry.Registry
	repl     *replicator
	rng      *lockedRand

	// applyMu serializes journal writes that arrive from peers
	// (replication batches, snapshot lines) so their check-then-append
	// is atomic.
	applyMu sync.Mutex

	// mu guards the role state. Peer applies hold it shared for their
	// whole write so a leadership flip (exclusive) cannot interleave a
	// takeover's merges with a deposed leader's stragglers.
	mu           sync.RWMutex
	role         string
	term         uint64 // term currently led (meaningful while leader)
	maxSeen      uint64 // highest term observed anywhere
	leaderHint   string // best known leader URL ("" when unknown)
	leaseUntil   time.Time
	coord        *Coordinator
	srv          *Server
	leaderCancel context.CancelFunc
	lastSnap     time.Time

	stop chan struct{}
	done chan struct{}
}

// NewHANode builds and starts one replica: its election loop begins
// immediately.
func NewHANode(cfg HAConfig) (*HANode, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: HA replica needs -self, its advertised URL")
	}
	if cfg.Journal == nil {
		return nil, fmt.Errorf("cluster: HA replica needs a durable journal")
	}
	workers, err := dedupeWorkers(cfg.Workers)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * time.Second
	}
	if cfg.LeaseTTL < MinLeaseTTL || cfg.LeaseTTL > MaxLeaseTTL {
		return nil, fmt.Errorf("cluster: lease ttl %s outside [%s, %s]", cfg.LeaseTTL, MinLeaseTTL, MaxLeaseTTL)
	}
	if cfg.ElectionInterval <= 0 {
		cfg.ElectionInterval = cfg.LeaseTTL / 2
	}
	if cfg.RenewInterval <= 0 {
		cfg.RenewInterval = cfg.LeaseTTL / 3
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 4 * cfg.LeaseTTL
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	n := &HANode{
		cfg:      cfg,
		client:   cfg.Client,
		registry: cfg.Registry,
		rng:      newLockedRand(cfg.Seed),
		role:     RoleFollower,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	n.repl = newReplicator(cfg.Peers, cfg.Self, n.client, n.senderTerm)
	n.m = NewHAMetrics(cfg.Registry, n.repl.lag)
	n.repl.m = n.m
	go n.run()
	return n, nil
}

// Registry exposes the replica's metrics registry.
func (n *HANode) Registry() *telemetry.Registry { return n.registry }

func (n *HANode) logf(format string, args ...any) {
	if n.cfg.Log == nil {
		return
	}
	fmt.Fprintf(n.cfg.Log, "ha: "+format+"\n", args...)
}

// quorum is the witness majority: strictly more than half the fleet.
func (n *HANode) quorum() int { return len(n.cfg.Workers)/2 + 1 }

// IsLeader reports whether this replica currently believes it leads.
func (n *HANode) IsLeader() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.role == RoleLeader
}

// Term returns the term this replica led most recently (0 if never).
func (n *HANode) Term() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.term
}

// senderTerm is the replicator's view: the live term while leading, 0
// otherwise (a deposed leader's queued batches are dropped unsent).
func (n *HANode) senderTerm() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.role != RoleLeader {
		return 0
	}
	return n.term
}

// Close stops the replica: the election loop exits, leadership (if
// held) is relinquished, running sweeps are cancelled without drain —
// deliberately crash-shaped, so tests exercising takeover see the same
// journal state a SIGKILL would leave.
func (n *HANode) Close() {
	select {
	case <-n.stop:
		return
	default:
	}
	close(n.stop)
	<-n.done
	n.stepDown("shutdown")
	n.repl.close()
}

// run is the replica's single control loop: campaign while following,
// renew while leading.
func (n *HANode) run() {
	defer close(n.done)
	for {
		var wait time.Duration
		if n.IsLeader() {
			wait = n.cfg.RenewInterval
		} else {
			// Jitter desynchronizes rival candidates so split elections
			// converge instead of colliding forever.
			wait = n.cfg.ElectionInterval + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionInterval)/2+1))
		}
		select {
		case <-n.stop:
			return
		case <-time.After(wait):
		}
		if n.IsLeader() {
			n.renew()
		} else {
			n.maybeSnapshotSync()
			n.campaign()
		}
	}
}

// campaign attempts to win the next term. Against a healthy leader
// this is harmless: witnesses deny higher terms while their lease is
// live, and the denials teach the candidate the current term and
// holder.
func (n *HANode) campaign() {
	n.mu.RLock()
	term := max(n.maxSeen, n.term) + 1
	n.mu.RUnlock()
	start := time.Now() // before any request: the conservative lease epoch
	grants, hiTerm, hiHolder := n.requestLeases(term)
	n.mu.Lock()
	if hiTerm > n.maxSeen {
		n.maxSeen = hiTerm
	}
	if hiHolder != "" {
		n.leaderHint = hiHolder
	}
	n.mu.Unlock()
	if grants >= n.quorum() {
		n.becomeLeader(term, start)
	}
}

// renew extends the leadership lease. Losing a round is tolerated
// while the old lease still runs (a network blip must not depose a
// healthy leader); losing it past expiry — or seeing a higher term —
// is a deposition.
func (n *HANode) renew() {
	n.mu.RLock()
	term := n.term
	n.mu.RUnlock()
	start := time.Now()
	grants, hiTerm, _ := n.requestLeases(term)
	if grants >= n.quorum() {
		n.mu.Lock()
		if n.role == RoleLeader && n.term == term {
			n.leaseUntil = start.Add(n.cfg.LeaseTTL)
		}
		n.mu.Unlock()
		return
	}
	n.mu.RLock()
	lapsed := !time.Now().Before(n.leaseUntil)
	n.mu.RUnlock()
	if hiTerm > term {
		n.stepDown(fmt.Sprintf("witnessed term %d above own %d", hiTerm, term))
	} else if lapsed {
		n.stepDown(fmt.Sprintf("lease expired with %d/%d grants", grants, n.quorum()))
	}
}

// requestLeases asks every witness for term concurrently and tallies
// grants, the highest term seen, and that term's holder.
func (n *HANode) requestLeases(term uint64) (grants int, hiTerm uint64, hiHolder string) {
	body, err := json.Marshal(LeaseRequest{
		Candidate: n.cfg.Self, Term: term, TTLMs: int64(n.cfg.LeaseTTL / time.Millisecond)})
	if err != nil {
		return 0, 0, ""
	}
	timeout := n.cfg.ElectionInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	results := make(chan *LeaseResponse, len(n.cfg.Workers))
	for _, w := range n.cfg.Workers {
		go func(w string) {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, w+"/v1/lease", bytes.NewReader(body))
			if err != nil {
				results <- nil
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := n.client.Do(req)
			if err != nil {
				results <- nil
				return
			}
			defer resp.Body.Close()
			var lr LeaseResponse
			if resp.StatusCode != http.StatusOK || json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&lr) != nil {
				results <- nil
				return
			}
			results <- &lr
		}(w)
	}
	for range n.cfg.Workers {
		lr := <-results
		if lr == nil {
			continue
		}
		if lr.Granted {
			grants++
		}
		if lr.Term > hiTerm {
			hiTerm, hiHolder = lr.Term, lr.Holder
		} else if lr.Term == hiTerm && hiHolder == "" {
			hiHolder = lr.Holder
		}
	}
	return grants, hiTerm, hiHolder
}

// leaseValidFor builds the merge gate for one term: leadership of
// exactly that term, lease unexpired on the monotonic clock. The
// lease epoch is captured before the first lease request went out, so
// this node's view always expires no later than any witness's.
func (n *HANode) leaseValidFor(term uint64) func() bool {
	return func() bool {
		n.mu.RLock()
		defer n.mu.RUnlock()
		return n.role == RoleLeader && n.term == term && time.Now().Before(n.leaseUntil)
	}
}

// becomeLeader installs the per-term coordinator and sweep server and
// kicks off takeover resumption. It holds mu exclusively, which waits
// out any in-flight replicate/snapshot applies — from the first merge
// of this term onward, no peer write can interleave.
func (n *HANode) becomeLeader(term uint64, start time.Time) {
	n.mu.Lock()
	if n.role == RoleLeader || n.isStopped() {
		n.mu.Unlock()
		return
	}
	rj := &replJournal{j: n.cfg.Journal, repl: n.repl}
	ccfg := n.cfg.Coordinator
	ccfg.Workers = n.cfg.Workers
	ccfg.Journal = rj
	ccfg.Term = term
	ccfg.LeaseValid = n.leaseValidFor(term)
	ccfg.Registry = n.registry
	ccfg.Client = n.client
	ccfg.CompactJournal = true
	if ccfg.Log == nil {
		ccfg.Log = n.cfg.Log
	}
	if n.cfg.OnShardDone != nil {
		hook := n.cfg.OnShardDone
		ccfg.OnShardDone = func(worker string, sh Shard) { hook(term, worker, sh) }
	}
	coord, err := New(ccfg)
	if err != nil {
		n.mu.Unlock()
		n.logf("%s won term %d but cannot build a coordinator: %v", n.cfg.Self, term, err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := NewServer(ServerConfig{
		Coordinator:  coord,
		MaxSweeps:    n.cfg.MaxSweeps,
		SweepTimeout: n.cfg.SweepTimeout,
		Log:          n.cfg.Log,
		BaseContext:  ctx,
		OnSweepAccepted: func(fp string, grid GainGrid) error {
			return n.recordSweepGrid(rj, fp, grid)
		},
		OnSweepDone: func(fp string, out *Output) {
			n.recordSweepDone(rj, fp, out)
		},
	})
	if err != nil {
		coord.Close()
		cancel()
		n.mu.Unlock()
		n.logf("%s won term %d but cannot build a server: %v", n.cfg.Self, term, err)
		return
	}
	n.role = RoleLeader
	n.term = term
	n.maxSeen = max(n.maxSeen, term)
	n.leaderHint = n.cfg.Self
	n.leaseUntil = start.Add(n.cfg.LeaseTTL)
	n.coord = coord
	n.srv = srv
	n.leaderCancel = cancel
	n.mu.Unlock()
	n.m.Term.Set(float64(term))
	n.m.IsLeader.Set(1)
	n.m.Elections.Inc()
	n.logf("%s leads at term %d (%d witnesses)", n.cfg.Self, term, len(n.cfg.Workers))
	go n.resumeSweeps(ctx, srv)
}

// stepDown relinquishes leadership: every running sweep's context is
// cancelled and the per-term coordinator is closed. The journal keeps
// everything merged so far; the next leader resumes from it.
func (n *HANode) stepDown(reason string) {
	n.mu.Lock()
	if n.role != RoleLeader {
		n.mu.Unlock()
		return
	}
	term := n.term
	coord, cancel := n.coord, n.leaderCancel
	n.role = RoleFollower
	n.coord, n.srv, n.leaderCancel = nil, nil, nil
	n.mu.Unlock()
	cancel()
	coord.Close()
	n.m.IsLeader.Set(0)
	n.m.StepDowns.Inc()
	n.logf("%s stepped down from term %d: %s", n.cfg.Self, term, reason)
}

func (n *HANode) isStopped() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// recordSweepGrid journals an accepted sweep's grid (replicated like
// every other record) so a successor can decode and resume it.
func (n *HANode) recordSweepGrid(j Journal, fp string, grid GainGrid) error {
	key := SweepGridKey(fp)
	if _, ok := j.Lookup(key); ok {
		return nil
	}
	raw, err := json.Marshal(grid)
	if err != nil {
		return err
	}
	return j.Record(key, raw)
}

// recordSweepDone seals a completed sweep. Failure is logged, not
// fatal: the worst case is a successor re-running a sweep whose every
// shard replays from the journal.
func (n *HANode) recordSweepDone(j Journal, fp string, out *Output) {
	key := SweepDoneKey(fp)
	if _, ok := j.Lookup(key); ok {
		return
	}
	raw, err := json.Marshal(struct {
		Points int `json:"points"`
	}{out.Points})
	if err == nil {
		err = j.Record(key, raw)
	}
	if err != nil {
		n.logf("sweep %0.12s done marker not journaled: %v", fp, err)
	}
}

// resumeSweeps scans the journal for sweeps that started (grid
// recorded) but never finished (no done marker) and re-runs them
// through the same coalescing path clients use — a client resubmitting
// after failover joins the resumed run instead of racing it. Shards
// already journaled replay; only the tail is re-executed.
func (n *HANode) resumeSweeps(ctx context.Context, srv *Server) {
	for _, key := range n.cfg.Journal.Keys() {
		fp, ok := strings.CutPrefix(key, "sweep-grid:")
		if !ok {
			continue
		}
		if _, done := n.cfg.Journal.Lookup(SweepDoneKey(fp)); done {
			continue
		}
		raw, ok := n.cfg.Journal.Lookup(key)
		if !ok {
			continue
		}
		var grid GainGrid
		if err := json.Unmarshal(raw, &grid); err != nil {
			n.logf("takeover: sweep %0.12s grid record undecodable: %v", fp, err)
			continue
		}
		n.logf("takeover: resuming sweep %0.12s", fp)
		go func(fp string, grid GainGrid) {
			for ctx.Err() == nil {
				_, err := srv.Submit(ctx, grid)
				switch {
				case err == nil:
					n.logf("takeover: sweep %0.12s resumed to completion", fp)
					return
				case errors.Is(err, ErrSweepsBusy):
					select {
					case <-time.After(n.cfg.RenewInterval):
					case <-ctx.Done():
						return
					}
				case ctx.Err() != nil:
					return
				default:
					n.logf("takeover: sweep %0.12s resume failed: %v", fp, err)
					return
				}
			}
		}(fp, grid)
	}
}

// applyRecords writes peer-delivered records into the local journal,
// idempotently (Lookup before Record on content-hash keys). It runs
// under mu held shared — a leadership flip excludes it — and applyMu —
// concurrent applies serialize. Only followers apply; the caller has
// checked the role under the same RLock.
func (n *HANode) applyRecords(recs []ReplicateRecord) (applied int, err error) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	for _, rec := range recs {
		if _, ok := n.cfg.Journal.Lookup(rec.Key); ok {
			continue
		}
		if err := n.cfg.Journal.Record(rec.Key, rec.Val); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// maybeSnapshotSync catches this follower up from the known leader's
// full journal snapshot, paced by SnapshotInterval. Live replication
// makes this a no-op in the common case; it exists for the standby
// that was down (or partitioned) while the stream moved on.
func (n *HANode) maybeSnapshotSync() {
	n.mu.RLock()
	hint := n.leaderHint
	due := time.Since(n.lastSnap) >= n.cfg.SnapshotInterval
	n.mu.RUnlock()
	if !due || hint == "" || hint == n.cfg.Self {
		return
	}
	n.mu.Lock()
	n.lastSnap = time.Now() // even on failure: do not hammer a dead hint
	n.mu.Unlock()
	if err := n.snapshotSync(hint); err != nil {
		n.logf("snapshot sync from %s failed: %v", hint, err)
	}
}

// snapshotSync streams src's journal and applies every record absent
// locally.
func (n *HANode) snapshotSync(src string) error {
	ctx, cancel := context.WithTimeout(context.Background(), max(4*n.cfg.LeaseTTL, 10*time.Second))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src+"/v1/journal", nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot source answered %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), MaxWireBytes+1)
	total := 0
	var batch []ReplicateRecord
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n.mu.RLock()
		if n.role == RoleLeader {
			n.mu.RUnlock()
			return fmt.Errorf("became leader mid-snapshot; aborting apply")
		}
		applied, err := n.applyRecords(batch)
		n.mu.RUnlock()
		total += applied
		batch = batch[:0]
		return err
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec ReplicateRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" || !json.Valid(rec.Val) {
			continue // one bad line must not void the rest of the snapshot
		}
		batch = append(batch, rec)
		if len(batch) >= 256 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	n.m.SnapshotSyncs.Inc()
	if total > 0 {
		n.m.AppliedRecords.Add(uint64(total))
		n.logf("snapshot sync from %s applied %d records", src, total)
	}
	return nil
}

// replJournal is the journal the leading coordinator writes through:
// local append first (durability), then an asynchronous fan-out to
// every standby. Its own Lookup-before-Record check (under mu) makes
// concurrent writers of the same key append once.
type replJournal struct {
	mu   sync.Mutex
	j    HAJournal
	repl *replicator
}

func (r *replJournal) Lookup(key string) ([]byte, bool) { return r.j.Lookup(key) }
func (r *replJournal) Keys() []string                   { return r.j.Keys() }

func (r *replJournal) Record(key string, val []byte) error {
	r.mu.Lock()
	if _, ok := r.j.Lookup(key); ok {
		r.mu.Unlock()
		return nil
	}
	if err := r.j.Record(key, val); err != nil {
		r.mu.Unlock()
		return err
	}
	r.mu.Unlock()
	r.repl.enqueue(key, val)
	return nil
}

// replicator fans journal records out to standbys: one ordered,
// bounded queue per peer (order preserves rows-before-done-marker per
// shard), batched sends, drop-on-overflow. Dropped or failed batches
// are healed by snapshot catch-up; the lag gauge is the live queue
// depth.
type replicator struct {
	peers  []string
	self   string
	client *http.Client
	term   func() uint64 // live leadership term; 0 silences the stream
	m      *HAMetrics
	queues []chan ReplicateRecord
	stop   chan struct{}
	wg     sync.WaitGroup
}

const (
	replQueueCap = 8192
	replBatchMax = 256
)

func newReplicator(peers []string, self string, client *http.Client, term func() uint64) *replicator {
	r := &replicator{
		peers:  peers,
		self:   self,
		client: client,
		term:   term,
		queues: make([]chan ReplicateRecord, len(peers)),
		stop:   make(chan struct{}),
	}
	for i := range peers {
		r.queues[i] = make(chan ReplicateRecord, replQueueCap)
		r.wg.Add(1)
		go r.pump(i)
	}
	return r
}

func (r *replicator) close() {
	close(r.stop)
	r.wg.Wait()
}

// lag is the total records queued and not yet sent, across peers.
func (r *replicator) lag() float64 {
	total := 0
	for i := range r.queues {
		total += len(r.queues[i])
	}
	return float64(total)
}

func (r *replicator) enqueue(key string, val []byte) {
	if len(r.queues) == 0 {
		return
	}
	rec := ReplicateRecord{Key: key, Val: append(json.RawMessage(nil), val...)}
	for i := range r.queues {
		select {
		case r.queues[i] <- rec:
		default:
			// Peer too far behind: drop from the stream, count it, and
			// let the snapshot path heal it. Blocking here would let one
			// dead standby stall every merge.
			if r.m != nil {
				r.m.ReplDropped.Inc()
			}
		}
	}
}

func (r *replicator) pump(i int) {
	defer r.wg.Done()
	for {
		var batch []ReplicateRecord
		select {
		case rec := <-r.queues[i]:
			batch = append(batch, rec)
		case <-r.stop:
			return
		}
	drain:
		for len(batch) < replBatchMax {
			select {
			case rec := <-r.queues[i]:
				batch = append(batch, rec)
			default:
				break drain
			}
		}
		r.send(i, batch)
	}
}

func (r *replicator) send(i int, batch []ReplicateRecord) {
	term := r.term()
	if term == 0 {
		// Not leading (anymore): a deposed leader must not stream its
		// stragglers into the new leader's journal epoch.
		if r.m != nil {
			r.m.ReplDropped.Add(uint64(len(batch)))
		}
		return
	}
	body, err := json.Marshal(ReplicateRequest{Term: term, From: r.self, Records: batch})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.peers[i]+"/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		if r.m != nil {
			r.m.ReplDropped.Add(uint64(len(batch)))
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if r.m != nil {
			r.m.ReplicatedRecords.Add(uint64(len(batch)))
		}
	} else if r.m != nil {
		r.m.ReplDropped.Add(uint64(len(batch)))
	}
}

// SnapshotRecords lists a journal's records sorted by key — the
// /v1/journal payload shape shared by server and tests.
func SnapshotRecords(j HAJournal) []ReplicateRecord {
	keys := j.Keys()
	sort.Strings(keys)
	out := make([]ReplicateRecord, 0, len(keys))
	for _, k := range keys {
		if v, ok := j.Lookup(k); ok {
			out = append(out, ReplicateRecord{Key: k, Val: v})
		}
	}
	return out
}
