package cluster

import (
	"context"
	"fmt"
)

// This file is the coordinator's result-integrity audit: digests (see
// digest.go) catch corruption in flight, but a worker that lies —
// bit-rot, a bad build, partial invariant clamping — signs its lies
// consistently, so a sample of completed shards is re-executed on a
// *different* worker and compared bit-exactly before anything reaches
// the journal. Divergence is settled by a third worker: whoever the
// quorum outvotes is quarantined (breaker state that never half-opens),
// its leases are discarded, its queued shards move, and every shard it
// merged without an audit is revoked and re-executed.

// auditVerdict is what the audit concludes about one completed shard.
type auditVerdict struct {
	// merge reports whether res should be merged at all; false means the
	// shard was requeued (inconclusive quorum) or abandoned (sweep
	// cancelled) and the caller must not touch it again.
	merge bool
	// res is the rows to merge — the producer's, or the quorum majority's
	// when the producer was outvoted.
	res ShardResult
	// winner is the worker credited with res.
	winner int
	// audited reports whether a second worker confirmed res bit-exactly.
	audited bool
}

// shouldAudit decides whether one freshly completed shard is sampled for
// re-execution. With auditing off this is a two-comparison fast path —
// the merge hot path must not pay for a feature that is disabled.
func (c *Coordinator) shouldAudit(index int) bool {
	if f := c.cfg.auditFor; f != nil {
		return f(index)
	}
	f := c.cfg.AuditFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	return c.rng.Float64() < f
}

// nextReplica returns the shard's next distinct eligible worker on the
// consistent-hash ring, excluding the listed workers (the producer, and
// the auditor during a tiebreak). Placement is as stable as the worker
// set allows: the same shard audits on the same replica across retries
// and restarts.
func (c *Coordinator) nextReplica(fp string, index int, exclude ...int) int {
	return c.ring.owner(DoneKey(fp, index), func(w int) bool {
		for _, x := range exclude {
			if w == x {
				return false
			}
		}
		return c.eligible(w)
	})
}

// auditDispatch re-executes sr on worker w for comparison, with the same
// lease/retry discipline as a primary dispatch, and settles the breaker
// bookkeeping the worker loop would normally do.
func (c *Coordinator) auditDispatch(ctx context.Context, st *sweepState, w int, sr *shardRun) (ShardResult, error) {
	res, err := c.dispatch(ctx, st, w, sr)
	switch {
	case err == nil:
		c.breaker.Success(w)
	case sweepWindingDown(ctx, err):
		c.breaker.Release(w)
	default:
		c.breaker.Failure(w)
		c.m.WorkerErrors.With(c.cfg.Workers[w]).Inc()
	}
	return res, err
}

// sweepWindingDown reports whether err is the sweep winding down (context
// cancelled or coordinator closed) rather than a worker failing.
func sweepWindingDown(ctx context.Context, err error) bool {
	return ctx.Err() != nil || err == errCoordinatorClosed
}

// audit samples sr's completed result for re-execution. It runs before
// merge — synchronously in the producing worker's dispatch goroutine —
// so divergent rows are settled (or the shard requeued) before anything
// reaches the journal.
func (c *Coordinator) audit(ctx context.Context, st *sweepState, w int, sr *shardRun, res ShardResult) auditVerdict {
	if !c.shouldAudit(sr.shard.Index) {
		return auditVerdict{merge: true, res: res, winner: w}
	}
	c.m.AuditSampled.Inc()
	v := c.nextReplica(st.fp, sr.shard.Index, w)
	if v < 0 {
		// No second worker to compare against (single-worker fleet, or
		// everyone else down). Merge unaudited and say so — revocation
		// still covers it if w is later quarantined.
		c.m.AuditSkipped.Inc()
		return auditVerdict{merge: true, res: res, winner: w}
	}
	vres, err := c.auditDispatch(ctx, st, v, sr)
	if err != nil {
		if sweepWindingDown(ctx, err) {
			// Sweep winding down: leave the shard unmerged; dispatchAll
			// reports the interruption.
			return auditVerdict{}
		}
		// The auditor failed, not the producer. Merge unaudited rather
		// than stalling progress on a degraded fleet.
		c.m.AuditSkipped.Inc()
		c.logf("audit: shard %d auditor %s unavailable (%v); merging unaudited", sr.shard.Index, c.cfg.Workers[v], err)
		return auditVerdict{merge: true, res: res, winner: w}
	}
	if rowsEqual(res.Rows, vres.Rows) {
		c.m.AuditMatched.Inc()
		return auditVerdict{merge: true, res: res, winner: w, audited: true}
	}
	div := diffRows(res.Rows, vres.Rows)
	c.m.AuditDivergent.Inc()
	c.m.AuditDivergentRows.Add(uint64(div))
	c.logf("audit: shard %d diverges between %s and %s (%d rows); tiebreaking",
		sr.shard.Index, c.cfg.Workers[w], c.cfg.Workers[v], div)

	u := c.nextReplica(st.fp, sr.shard.Index, w, v)
	if u < 0 {
		// Two workers, two answers, nobody to break the tie. Trust
		// neither: requeue the shard for a fresh execution.
		c.m.AuditInconclusive.Inc()
		c.requeueAudit(st, sr, w)
		return auditVerdict{}
	}
	ures, err := c.auditDispatch(ctx, st, u, sr)
	if err != nil {
		if sweepWindingDown(ctx, err) {
			return auditVerdict{}
		}
		c.m.AuditInconclusive.Inc()
		c.requeueAudit(st, sr, w)
		return auditVerdict{}
	}
	switch {
	case rowsEqual(ures.Rows, res.Rows):
		// Producer and tiebreaker agree: the auditor lied.
		c.quarantine(v, "outvoted 2-1 auditing shard")
		return auditVerdict{merge: true, res: res, winner: w, audited: true}
	case rowsEqual(ures.Rows, vres.Rows):
		// Auditor and tiebreaker agree: the producer lied. Merge the
		// majority's rows, credited to the auditor.
		c.quarantine(w, "outvoted 2-1 producing shard")
		return auditVerdict{merge: true, res: vres, winner: v, audited: true}
	default:
		// Three workers, three answers. No quorum, no blame — requeue.
		c.m.AuditInconclusive.Inc()
		c.requeueAudit(st, sr, w)
		return auditVerdict{}
	}
}

// requeueAudit hands an unsettled shard back for a fresh execution,
// charging its re-assignment budget so a fleet that can never agree
// fails loudly instead of looping forever.
func (c *Coordinator) requeueAudit(st *sweepState, sr *shardRun, producer int) {
	sr.assignments++
	if sr.assignments >= c.cfg.MaxAssignments {
		st.mu.Lock()
		if st.fatal == nil {
			st.fatal = fmt.Errorf("cluster: shard %d exhausted %d assignments without an audit quorum (workers cannot agree on its rows)",
				sr.shard.Index, sr.assignments)
		}
		st.mu.Unlock()
		st.cond.Broadcast()
		return
	}
	c.requeue(st, sr, producer)
}

// quarantine applies the quorum verdict to worker q: terminal breaker
// state, leases discarded, queued shards redistributed, and every shard
// merged from it without an audit revoked and re-executed. Idempotent —
// a worker outvoted twice concurrently is processed once.
func (c *Coordinator) quarantine(q int, why string) {
	if !c.breaker.Quarantine(q) {
		return
	}
	name := c.cfg.Workers[q]
	c.m.AuditQuarantined.Inc()
	c.logf("audit: worker %s quarantined (%s)", name, why)
	// Discard its uncommitted leases: in-flight dispatches to it fail now
	// instead of at lease expiry.
	c.mu.Lock()
	for cp := range c.inflight[q] {
		(*cp)()
	}
	c.mu.Unlock()
	// Its queued shards move to the remaining workers...
	c.redistribute(q)
	// ...and its unaudited history is withdrawn.
	c.revoke(q)
}

// revoke withdraws every shard worker q merged without an audit, across
// all in-flight sweeps: the rows leave the in-memory merge, the shard
// re-enters a queue marked revoked (so its re-merge force-records,
// superseding the distrusted journal values), and pending is restored.
func (c *Coordinator) revoke(q int) {
	c.mu.Lock()
	runs := make([]*sweepState, 0, len(c.runs))
	for st := range c.runs {
		runs = append(runs, st)
	}
	c.mu.Unlock()
	for _, st := range runs {
		st.mu.Lock()
		if st.finished() {
			// The sweep completed (or failed) between the verdict and
			// here; its dispatch loops are gone, so its merged rows are
			// final. The residual window of trusting an unaudited worker
			// is exactly the unsampled fraction — documented, not hidden.
			st.mu.Unlock()
			continue
		}
		srs := st.unaudited[q]
		delete(st.unaudited, q)
		revoked := 0
		for _, sr := range srs {
			sr.revoked = true
			for _, idx := range sr.shard.GridIdx {
				if st.have[idx] {
					st.have[idx] = false
					st.fresh--
				}
			}
			st.pending++
			revoked++
			c.m.AuditRevoked.Inc()
			target := c.ring.owner(DoneKey(st.fp, sr.shard.Index), func(w int) bool {
				return w != q && c.eligible(w)
			})
			if target < 0 {
				target = q // nobody eligible; parked until someone is
			} else {
				c.m.Reassigned.Inc()
			}
			st.queues[target] = append(st.queues[target], sr)
		}
		st.mu.Unlock()
		if revoked > 0 {
			c.logf("audit: revoked %d unaudited shards merged from %s; re-executing", revoked, c.cfg.Workers[q])
		}
		st.cond.Broadcast()
	}
}
