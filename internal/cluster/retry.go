package cluster

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// backoff paces retries of one shard dispatch: exponential growth with
// full jitter, capped, and overridden by the worker's explicit
// Retry-After feedback when present. Jitter matters as much as the
// exponent — N clients that shed together and retry on the same
// schedule re-collide forever (the oscillation the related work warns
// about); randomizing within the window decorrelates them.
type backoff struct {
	base, cap time.Duration
	attempt   int
	rng       *lockedRand
}

// next returns the wait before the next attempt. retryAfter is the
// worker's Retry-After hint (0 when absent): an explicit hint is
// honored — capped, with a small jitter so simultaneous retriers still
// spread — while absent hints fall back to jittered exponential growth.
func (b *backoff) next(retryAfter time.Duration) time.Duration {
	defer func() { b.attempt++ }()
	if retryAfter > 0 {
		if retryAfter > b.cap {
			retryAfter = b.cap
		}
		// Up to +25% jitter on top of the hint, never below it.
		return retryAfter + time.Duration(b.rng.Int63n(int64(retryAfter)/4+1))
	}
	d := b.base << b.attempt
	if d > b.cap || d <= 0 {
		d = b.cap
	}
	// Full jitter in [d/2, d].
	return d/2 + time.Duration(b.rng.Int63n(int64(d)/2+1))
}

// RetryPacer is the exported face of the dispatch backoff, for the
// client binaries (bcnd -post, bcnsweep -cluster): jittered exponential
// growth that honors explicit Retry-After feedback. A herd of clients
// shed together MUST each jitter independently — retrying on the shared
// hint verbatim re-collides the herd every cycle.
type RetryPacer struct {
	b backoff
}

// NewRetryPacer builds a pacer with the given base and cap (zeros get
// 200ms and 10s). seed 0 seeds from the clock; a fixed seed makes the
// jitter sequence reproducible for tests.
func NewRetryPacer(base, cap time.Duration, seed int64) *RetryPacer {
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	if cap <= 0 {
		cap = 10 * time.Second
	}
	return &RetryPacer{b: backoff{base: base, cap: cap, rng: newLockedRand(seed)}}
}

// Next returns the jittered wait before the next attempt. retryAfter is
// the server's Retry-After hint, 0 when absent.
func (p *RetryPacer) Next(retryAfter time.Duration) time.Duration {
	return p.b.next(retryAfter)
}

// RetryableStatus exposes the transient-status classification to the
// client binaries, so every retry loop shares one verdict table.
func RetryableStatus(code int) bool { return retryableStatus(code) }

// ParseRetryAfterHeader exposes Retry-After parsing (delay-seconds
// form only) to the client binaries.
func ParseRetryAfterHeader(h http.Header) time.Duration { return parseRetryAfter(h) }

// retryableStatus reports whether an HTTP status from a worker is worth
// retrying: overload shed (429), gateway failures (502, 504) and
// unavailability (503, e.g. a draining worker) are transient; anything
// else is a verdict about the request itself.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a Retry-After header as delay seconds (the only
// form the serving layer emits); malformed or HTTP-date values yield 0.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// lockedRand is a mutex-guarded rand.Rand: dispatch goroutines share
// one deterministic (seedable) jitter source without a data race.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63n(n)
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}
