package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/telemetry"
)

func testGrid(steps int) GainGrid {
	return GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 1, GdLo: 0.001, GdHi: 0.1, Steps: steps}
}

// memJournal is an in-memory Journal that enforces the coordinator's
// zero-duplicate contract: a second Record for the same key is an
// error, so any double-write surfaces as a fatal sweep failure in the
// test instead of silently overwriting.
type memJournal struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemJournal() *memJournal { return &memJournal{m: map[string][]byte{}} }

func (j *memJournal) Lookup(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.m[key]
	return v, ok
}

func (j *memJournal) Record(key string, val []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.m[key]; ok {
		return fmt.Errorf("duplicate journal record for %s", key)
	}
	j.m[key] = append([]byte(nil), val...)
	return nil
}

func (j *memJournal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.m))
	for k := range j.m {
		out = append(out, k)
	}
	return out
}

// put pre-seeds a record without the duplicate check (test setup only).
func (j *memJournal) put(key string, val []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m[key] = val
}

func fakeRow(pt GainPoint) Row {
	return Row{CSV: fmt.Sprintf("%.9g,%.9g,0.5,0,fake", pt.Gi, pt.Gd)}
}

func fakeRows(points []GainPoint) []Row {
	rows := make([]Row, len(points))
	for i, pt := range points {
		rows[i] = fakeRow(pt)
	}
	return rows
}

func expectedCSV(grid GainGrid) []byte { return RenderCSV(fakeRows(grid.Points())) }

// fakeWorker is an httptest bcnd stand-in answering shard jobs with
// deterministic fake rows. intercept, when non-nil, runs first and may
// take over the response (fault injection).
type fakeWorker struct {
	ts        *httptest.Server
	requests  atomic.Int64
	evaluated atomic.Int64
	mu        sync.Mutex
	indexes   map[int]int
	intercept func(w http.ResponseWriter, r *http.Request, sh *ShardSpec) bool
}

func newFakeWorker(t *testing.T, intercept func(http.ResponseWriter, *http.Request, *ShardSpec) bool) *fakeWorker {
	t.Helper()
	f := &fakeWorker{indexes: map[int]int{}, intercept: intercept}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleJob)
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"draining":false,"workers":2}`)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeWorker) URL() string { return f.ts.URL }

func (f *fakeWorker) handleJob(w http.ResponseWriter, r *http.Request) {
	var env jobEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil || env.Kind != "shard" || env.Shard == nil {
		http.Error(w, `{"error":"not a shard job"}`, http.StatusBadRequest)
		return
	}
	f.requests.Add(1)
	if f.intercept != nil && f.intercept(w, r, env.Shard) {
		return
	}
	f.evaluated.Add(int64(len(env.Shard.Points)))
	f.mu.Lock()
	f.indexes[env.Shard.Index]++
	f.mu.Unlock()
	res := ShardResult{Index: env.Shard.Index, Rows: fakeRows(env.Shard.Points)}
	SignShardResult(&res)
	raw, _ := json.Marshal(shardArtifact{Key: "k", Kind: "shard", Shard: &res})
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewValidatesWorkers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("coordinator without workers accepted")
	}
	if _, err := New(Config{Workers: []string{"http://a", ""}}); err == nil {
		t.Error("empty worker URL accepted")
	}
	if _, err := New(Config{Workers: []string{"http://a", "   "}}); err == nil {
		t.Error("blank worker URL accepted")
	}
	// Duplicates collapse to one seat instead of erroring: a repeated
	// -workers entry must not double a worker's placement weight.
	c2, err := New(Config{Workers: []string{"http://a", "http://a", "http://b"}, HeartbeatInterval: -1})
	if err != nil {
		t.Fatalf("duplicate worker URL rejected: %v", err)
	}
	if got := len(c2.cfg.Workers); got != 2 {
		t.Errorf("deduped worker list has %d entries, want 2", got)
	}
	c2.Close()
	c, err := New(Config{Workers: []string{"http://a"}, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
}

func TestRingOwnershipIsConsistent(t *testing.T) {
	names := []string{"http://w0", "http://w1", "http://w2"}
	r1, r2 := newRing(names), newRing(names)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = DoneKey("fp", i)
	}
	seen := map[int]int{}
	for _, k := range keys {
		o := r1.owner(k, nil)
		if o < 0 || o >= len(names) {
			t.Fatalf("owner(%s) = %d out of range", k, o)
		}
		if o2 := r2.owner(k, nil); o2 != o {
			t.Fatalf("ring assignment not deterministic: %d vs %d for %s", o, o2, k)
		}
		seen[o]++
	}
	if len(seen) != len(names) {
		t.Errorf("200 keys landed on only %d of %d workers: %v", len(seen), len(names), seen)
	}
	// Consistency: excluding one worker moves only that worker's keys.
	for _, k := range keys {
		o := r1.owner(k, nil)
		dead := (o + 1) % len(names)
		if got := r1.owner(k, func(w int) bool { return w != dead }); got != o {
			t.Fatalf("excluding uninvolved worker %d moved key %s: %d -> %d", dead, k, o, got)
		}
		if got := r1.owner(k, func(w int) bool { return w != o }); got == o {
			t.Fatalf("excluded owner still assigned key %s", k)
		}
	}
	if got := r1.owner(keys[0], func(int) bool { return false }); got != -1 {
		t.Errorf("owner with nobody eligible = %d, want -1", got)
	}
}

func TestBackoffGrowthCapAndRetryAfter(t *testing.T) {
	rng := newLockedRand(1)
	b := &backoff{base: 10 * time.Millisecond, cap: 80 * time.Millisecond, rng: rng}
	wantWindows := [][2]time.Duration{
		{5 * time.Millisecond, 10 * time.Millisecond},
		{10 * time.Millisecond, 20 * time.Millisecond},
		{20 * time.Millisecond, 40 * time.Millisecond},
		{40 * time.Millisecond, 80 * time.Millisecond},
		{40 * time.Millisecond, 80 * time.Millisecond}, // capped from here on
		{40 * time.Millisecond, 80 * time.Millisecond},
	}
	for i, win := range wantWindows {
		d := b.next(0)
		if d < win[0] || d > win[1] {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", i, d, win[0], win[1])
		}
	}
	// An explicit Retry-After hint is honored (never shortened), jittered
	// by at most 25%, and capped.
	hb := &backoff{base: time.Millisecond, cap: 80 * time.Millisecond, rng: rng}
	if d := hb.next(40 * time.Millisecond); d < 40*time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("hinted backoff %v outside [40ms, 50ms]", d)
	}
	if d := hb.next(10 * time.Second); d < 80*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("capped hint %v outside [80ms, 100ms]", d)
	}
}

func TestParseRetryAfterAndRetryableStatus(t *testing.T) {
	h := http.Header{}
	if d := parseRetryAfter(h); d != 0 {
		t.Errorf("absent header = %v", d)
	}
	for raw, want := range map[string]time.Duration{
		"3": 3 * time.Second, "0": 0, "-2": 0, "soon": 0,
		"Tue, 29 Oct 2024 16:56:32 GMT": 0,
	} {
		h.Set("Retry-After", raw)
		if d := parseRetryAfter(h); d != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", raw, d, want)
		}
	}
	for code, want := range map[int]bool{429: true, 502: true, 503: true, 504: true, 200: false, 400: false, 500: false} {
		if got := retryableStatus(code); got != want {
			t.Errorf("retryableStatus(%d) = %v", code, got)
		}
	}
}

func TestWorkerBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewMetrics(telemetry.NewRegistry())
	b := newWorkerBreaker([]string{"a", "b"}, 2, time.Second, func() time.Time { return now }, m)

	if ok, _ := b.Allow(0); !ok {
		t.Fatal("closed breaker denied dispatch")
	}
	b.Failure(0)
	if ok, _ := b.Allow(0); !ok {
		t.Fatal("one failure below threshold tripped the breaker")
	}
	b.Failure(0)
	ok, retryAfter := b.Allow(0)
	if ok || retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("tripped breaker: ok=%v retryAfter=%v", ok, retryAfter)
	}
	if !b.Open(0) {
		t.Fatal("tripped breaker not Open")
	}
	if b.Open(1) {
		t.Fatal("worker b quarantined by a's failures")
	}
	if got := m.BreakerState.With("a").Value(); got != breakerOpen {
		t.Errorf("breaker state gauge = %v, want open", got)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.Allow(0); !ok {
		t.Fatal("post-cooldown probe denied")
	}
	if ok, _ := b.Allow(0); ok {
		t.Fatal("second concurrent probe admitted")
	}
	// The probe fails: immediate re-open.
	b.Failure(0)
	if ok, _ := b.Allow(0); ok {
		t.Fatal("failed probe did not re-open the breaker")
	}

	// Next cooldown: probe succeeds, breaker closes.
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.Allow(0); !ok {
		t.Fatal("second probe denied")
	}
	b.Success(0)
	if b.Open(0) {
		t.Fatal("breaker open after successful probe")
	}
	if got := m.BreakerState.With("a").Value(); got != breakerClosed {
		t.Errorf("breaker state gauge = %v, want closed", got)
	}
	snap := b.Snapshot()
	if snap[0].State != "closed" || snap[0].Trips != 2 {
		t.Errorf("snapshot[0] = %+v, want closed with 2 trips", snap[0])
	}

	// Release: an abandoned (cancelled, not failed) probe frees the slot
	// for the next Allow instead of wedging the worker half-open forever.
	b.Failure(0)
	b.Failure(0)
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.Allow(0); !ok {
		t.Fatal("probe after re-trip denied")
	}
	b.Release(0)
	if ok, _ := b.Allow(0); !ok {
		t.Fatal("released probe slot not reclaimable")
	}
}

func TestPlanShardsIsDeterministicAndCovering(t *testing.T) {
	grid := testGrid(5)
	fp, points, shards, err := PlanShards(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 64 || len(points) != 25 || len(shards) != 7 {
		t.Fatalf("fp len %d, %d points, %d shards", len(fp), len(points), len(shards))
	}
	next := 0
	for _, sh := range shards {
		for i := range sh.Points {
			if sh.GridIdx[i] != next {
				t.Fatalf("shard %d covers grid index %d, want %d (grid order)", sh.Index, sh.GridIdx[i], next)
			}
			if want := PointKey(fp, points[next]); sh.Keys[i] != want {
				t.Fatalf("shard %d key %q, want %q", sh.Index, sh.Keys[i], want)
			}
			next++
		}
	}
	if next != len(points) {
		t.Fatalf("shards cover %d of %d points", next, len(points))
	}
	// The plan depends only on grid and size — replanning is identical.
	fp2, _, shards2, err := PlanShards(grid, 4)
	if err != nil || fp2 != fp || len(shards2) != len(shards) {
		t.Fatalf("replan diverged: %v %v", fp2, err)
	}
	for i := range shards {
		if shards2[i].Index != shards[i].Index || len(shards2[i].Points) != len(shards[i].Points) {
			t.Fatalf("replan shard %d diverged", i)
		}
	}
}

func TestClusterSweepMergesAndResumes(t *testing.T) {
	grid := testGrid(5) // 25 points, 7 shards at size 4
	w0 := newFakeWorker(t, nil)
	w1 := newFakeWorker(t, nil)
	j := newMemJournal()
	mapPath := filepath.Join(t.TempDir(), "map.csv")
	c, err := New(Config{
		Workers: []string{w0.URL(), w1.URL()}, ShardSize: 4,
		Journal: j, MapPath: mapPath, HeartbeatInterval: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	want := expectedCSV(grid)
	if !bytes.Equal(out.CSV, want) {
		t.Errorf("merged CSV diverges from single-node reference:\n%s\nwant:\n%s", out.CSV, want)
	}
	if out.Points != 25 || out.Fresh != 25 || out.Replayed != 0 || out.OrphanShards != 0 {
		t.Errorf("out = %+v, want 25 fresh points", out)
	}
	if disk, err := os.ReadFile(mapPath); err != nil || !bytes.Equal(disk, want) {
		t.Errorf("MapPath not written atomically: %v", err)
	}
	fp, _, _, _ := PlanShards(grid, 4)
	var doneKeys, pointKeys int
	for _, k := range j.Keys() {
		if strings.HasPrefix(k, "shard-done:") {
			if !strings.HasPrefix(k, "shard-done:"+fp+":") {
				t.Errorf("done marker under wrong fingerprint: %s", k)
			}
			doneKeys++
		} else {
			pointKeys++
		}
	}
	if doneKeys != 7 || pointKeys != 25 {
		t.Errorf("journal holds %d done markers and %d point records, want 7 and 25", doneKeys, pointKeys)
	}
	if got := c.m.Points.Value(); got != 25 {
		t.Errorf("cluster_points_total = %d, want 25", got)
	}
	if got := c.m.ShardsDone.Value(); got != 7 {
		t.Errorf("cluster_shards_done_total = %d, want 7", got)
	}
	if w0.requests.Load()+w1.requests.Load() < 7 {
		t.Errorf("workers saw %d+%d requests for 7 shards", w0.requests.Load(), w1.requests.Load())
	}

	// Restart: a fresh coordinator over the same journal replays the
	// whole sweep without touching a worker.
	before := w0.requests.Load() + w1.requests.Load()
	c2, err := New(Config{
		Workers: []string{w0.URL(), w1.URL()}, ShardSize: 4,
		Journal: j, HeartbeatInterval: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	out2, err := c2.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Fresh != 0 || out2.Replayed != 25 || out2.OrphanShards != 0 {
		t.Errorf("resume = %+v, want 25 replayed", out2)
	}
	if !bytes.Equal(out2.CSV, want) {
		t.Error("resumed CSV diverges from original")
	}
	if after := w0.requests.Load() + w1.requests.Load(); after != before {
		t.Errorf("resume dispatched %d shard jobs, want 0", after-before)
	}
}

func TestClusterHonorsRetryAfterOn429(t *testing.T) {
	grid := testGrid(3) // 9 points, one shard at size 64
	var times struct {
		mu   sync.Mutex
		seen []time.Time
	}
	var shed atomic.Bool
	w := newFakeWorker(t, func(rw http.ResponseWriter, _ *http.Request, _ *ShardSpec) bool {
		times.mu.Lock()
		times.seen = append(times.seen, time.Now())
		times.mu.Unlock()
		if shed.CompareAndSwap(false, true) {
			rw.Header().Set("Retry-After", "1")
			rw.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(rw, `{"error":"shed","reason":"shed"}`)
			return true
		}
		return false
	})
	c, err := New(Config{
		Workers: []string{w.URL()}, ShardSize: 64, HeartbeatInterval: -1,
		RetryBase: time.Millisecond, RetryCap: 30 * time.Millisecond, MaxAttempts: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.CSV, expectedCSV(grid)) {
		t.Error("CSV diverges after 429 retry")
	}
	if got := c.m.Retries.Value(); got != 1 {
		t.Errorf("cluster_dispatch_retries_total = %d, want 1", got)
	}
	times.mu.Lock()
	defer times.mu.Unlock()
	if len(times.seen) != 2 {
		t.Fatalf("worker saw %d requests, want 2 (shed then retry)", len(times.seen))
	}
	// Retry-After: 1 is capped to RetryCap (30ms) and never shortened.
	if gap := times.seen[1].Sub(times.seen[0]); gap < 30*time.Millisecond {
		t.Errorf("retry came %v after the 429, before the Retry-After window", gap)
	}
}

func TestClusterQuarantinesFailingWorkerAndReassigns(t *testing.T) {
	grid := testGrid(4) // 16 points, 8 shards at size 2
	badFailed := make(chan struct{})
	var failOnce sync.Once
	bad := newFakeWorker(t, func(rw http.ResponseWriter, _ *http.Request, _ *ShardSpec) bool {
		rw.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(rw, `{"error":"boom"}`)
		failOnce.Do(func() { close(badFailed) })
		return true
	})
	// The healthy worker holds its first responses until the bad worker
	// has failed once, so the bad worker deterministically receives (and
	// fails) at least one shard.
	good := newFakeWorker(t, func(http.ResponseWriter, *http.Request, *ShardSpec) bool {
		<-badFailed
		return false
	})
	c, err := New(Config{
		Workers: []string{bad.URL(), good.URL()}, ShardSize: 2, HeartbeatInterval: -1,
		MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Minute,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.CSV, expectedCSV(grid)) {
		t.Error("CSV diverges after worker failure")
	}
	if got := c.m.Reassigned.Value(); got < 1 {
		t.Errorf("cluster_reassigned_shards_total = %d, want >= 1", got)
	}
	if got := c.m.WorkerErrors.With(bad.URL()).Value(); got < 1 {
		t.Errorf("cluster_worker_errors_total{%s} = %d, want >= 1", bad.URL(), got)
	}
	if got := c.m.BreakerState.With(bad.URL()).Value(); got != breakerOpen {
		t.Errorf("failing worker's breaker state = %v, want open", got)
	}
	var badSnap *WorkerBreakerStatus
	snaps := c.BreakerSnapshot()
	for i := range snaps {
		if snaps[i].Worker == bad.URL() {
			badSnap = &snaps[i]
		}
	}
	if badSnap == nil || badSnap.State != "open" || badSnap.Trips < 1 {
		t.Errorf("breaker snapshot for failing worker = %+v, want open with trips", badSnap)
	}
	if bad.evaluated.Load() != 0 {
		t.Errorf("failing worker evaluated %d points", bad.evaluated.Load())
	}
}

func TestClusterOrphanShardsReExecuteOnlyMissingPoints(t *testing.T) {
	grid := testGrid(4) // 16 points, 4 shards at size 4
	fp, _, shards, err := PlanShards(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	j := newMemJournal()
	marshal := func(r Row) []byte {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	// Shard 0: every row journaled but the done marker missing (the
	// coordinator died between the last row and the seal) — orphan,
	// re-sealed without re-execution.
	for i, key := range shards[0].Keys {
		j.put(key, marshal(fakeRow(shards[0].Points[i])))
	}
	// Shard 1: two of four rows journaled, no done marker (a worker died
	// mid-shard) — orphan, only the missing half re-executes.
	for i := 0; i < 2; i++ {
		j.put(shards[1].Keys[i], marshal(fakeRow(shards[1].Points[i])))
	}
	// A done marker from a different grid: counted as stray, ignored.
	strayFP := strings.Repeat("0", 64)
	j.put(DoneKey(strayFP, 0), []byte(`{"index":0,"points":4}`))

	w := newFakeWorker(t, nil)
	c, err := New(Config{Workers: []string{w.URL()}, ShardSize: 4, Journal: j, HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.CSV, expectedCSV(grid)) {
		t.Error("CSV diverges after orphan replay")
	}
	if out.OrphanShards != 2 || out.Replayed != 6 || out.Fresh != 10 {
		t.Errorf("out = %+v, want 2 orphans, 6 replayed, 10 fresh", out)
	}
	if got := w.evaluated.Load(); got != 10 {
		t.Errorf("workers evaluated %d points, want exactly the 10 missing", got)
	}
	w.mu.Lock()
	if n, ok := w.indexes[0]; ok {
		t.Errorf("fully-journaled shard 0 was dispatched %d times", n)
	}
	w.mu.Unlock()
	if got := c.m.OrphanShards.Value(); got != 2 {
		t.Errorf("cluster_journal_orphan_shards_total = %d, want 2", got)
	}
	if got := c.m.StrayRecords.Value(); got != 1 {
		t.Errorf("cluster_journal_stray_records_total = %d, want 1", got)
	}
	// Every shard is sealed now; the stray marker survives untouched.
	for _, sh := range shards {
		if _, ok := j.Lookup(DoneKey(fp, sh.Index)); !ok {
			t.Errorf("shard %d missing its done marker after the run", sh.Index)
		}
	}
	if _, ok := j.Lookup(DoneKey(strayFP, 0)); !ok {
		t.Error("stray marker was removed")
	}
}

func TestClusterHeartbeatLossRedistributes(t *testing.T) {
	grid := testGrid(4) // 16 points, 8 shards at size 2
	// A worker that accepts connections and never answers: dispatches to
	// it park until the heartbeat monitor declares it lost and cancels
	// its leases.
	hangMux := http.NewServeMux()
	hangMux.HandleFunc("/", func(_ http.ResponseWriter, r *http.Request) {
		// Drain the body so the server notices the client abandoning the
		// connection (unread bodies suppress close detection).
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	hang := httptest.NewServer(hangMux)
	defer hang.Close()
	good := newFakeWorker(t, func(http.ResponseWriter, *http.Request, *ShardSpec) bool {
		time.Sleep(2 * time.Millisecond) // keep the sweep alive past the loss detection
		return false
	})
	c, err := New(Config{
		Workers: []string{hang.URL, good.URL()}, ShardSize: 2,
		HeartbeatInterval: 10 * time.Millisecond, HeartbeatMisses: 2,
		LeaseTimeout: 2 * time.Second, MaxAttempts: 1, BreakerThreshold: -1,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := c.Run(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.CSV, expectedCSV(grid)) {
		t.Error("CSV diverges after worker loss")
	}
	if got := c.m.WorkerUp.With(hang.URL).Value(); got != 0 {
		t.Errorf("cluster_worker_up{%s} = %v, want 0 after missed heartbeats", hang.URL, got)
	}
	if got := c.m.Reassigned.Value(); got < 1 {
		t.Errorf("cluster_reassigned_shards_total = %d, want >= 1", got)
	}
	health := c.WorkerSnapshot()
	if health[0].Up || !health[1].Up {
		t.Errorf("worker snapshot = %+v, want hang down and good up", health)
	}
}

// syncBuf is a goroutine-safe log sink for observing server decisions.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestCoordinatorServerShedCoalesceAndDetachedSweep(t *testing.T) {
	gridA, gridB := testGrid(3), testGrid(4)
	release := make(chan struct{})
	w := newFakeWorker(t, func(http.ResponseWriter, *http.Request, *ShardSpec) bool {
		<-release
		return false
	})
	c, err := New(Config{Workers: []string{w.URL()}, ShardSize: 64, Journal: newMemJournal(), HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	logs := &syncBuf{}
	s, err := NewServer(ServerConfig{Coordinator: c, MaxSweeps: 1, Log: logs})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	post := func(grid GainGrid, ctx context.Context) *httptest.ResponseRecorder {
		body, err := json.Marshal(grid)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/sweeps", bytes.NewReader(body))
		h.ServeHTTP(rec, req.WithContext(ctx))
		return rec
	}

	// Malformed grid: 400.
	recBad := httptest.NewRecorder()
	h.ServeHTTP(recBad, httptest.NewRequest(http.MethodPost, "/v1/sweeps", strings.NewReader(`{"steps":`)))
	if recBad.Code != http.StatusBadRequest {
		t.Errorf("malformed grid: %d, want 400", recBad.Code)
	}

	// Oversized body: 413 with the JSON error contract, not a 400 or a hang.
	recBig := httptest.NewRecorder()
	big := `{"steps": ` + strings.Repeat("9", MaxWireBytes) + `}`
	h.ServeHTTP(recBig, httptest.NewRequest(http.MethodPost, "/v1/sweeps", strings.NewReader(big)))
	if recBig.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized grid: %d, want 413", recBig.Code)
	}
	var bigBody clusterError
	if err := json.Unmarshal(recBig.Body.Bytes(), &bigBody); err != nil || bigBody.Reason != "body-too-large" {
		t.Errorf("oversized body = %s", recBig.Body.Bytes())
	}

	// Submit grid A; the worker holds it, so the sweep stays active.
	ctx1, cancel1 := context.WithCancel(context.Background())
	var rec1 *httptest.ResponseRecorder
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		rec1 = post(gridA, ctx1)
	}()
	waitFor(t, "sweep A active", func() bool { return s.Status().ActiveSweeps == 1 })

	// A different grid is shed: the one-sweep budget is taken.
	rec2 := post(gridB, context.Background())
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("second grid: %d, want 429", rec2.Code)
	}
	if rec2.Header().Get("Retry-After") == "" {
		t.Error("shed response without Retry-After")
	}
	var shedBody clusterError
	if err := json.Unmarshal(rec2.Body.Bytes(), &shedBody); err != nil || shedBody.Reason != "shed" {
		t.Errorf("shed body = %s", rec2.Body.Bytes())
	}

	// Client A hangs up: 408 with the resubmit hint, sweep keeps running.
	cancel1()
	<-done1
	if rec1.Code != http.StatusRequestTimeout {
		t.Fatalf("abandoned client: %d, want 408", rec1.Code)
	}
	var hungBody clusterError
	if err := json.Unmarshal(rec1.Body.Bytes(), &hungBody); err != nil || hungBody.Reason != "client-timeout" {
		t.Errorf("abandoned-client body = %s", rec1.Body.Bytes())
	}
	if s.Status().ActiveSweeps != 1 {
		t.Fatal("sweep died with its client")
	}

	// An identical resubmission coalesces onto the running sweep.
	var rec3 *httptest.ResponseRecorder
	done3 := make(chan struct{})
	go func() {
		defer close(done3)
		rec3 = post(gridA, context.Background())
	}()
	waitFor(t, "resubmission coalesced", func() bool { return strings.Contains(logs.String(), "coalesced") })
	close(release)
	<-done3
	if rec3.Code != http.StatusOK {
		t.Fatalf("coalesced collect: %d body %s", rec3.Code, rec3.Body.Bytes())
	}
	if got := rec3.Header().Get("Bcn-Points"); got != "9" {
		t.Errorf("Bcn-Points = %q, want 9", got)
	}
	if got := rec3.Header().Get("Bcn-Fresh"); got != "9" {
		t.Errorf("Bcn-Fresh = %q, want 9", got)
	}
	if fp := rec3.Header().Get("Bcn-Fingerprint"); len(fp) != 64 {
		t.Errorf("Bcn-Fingerprint = %q", fp)
	}
	if got := rec3.Header().Get("Bcn-Audited-Shards"); got != "0" {
		t.Errorf("Bcn-Audited-Shards = %q, want 0 (auditing off)", got)
	}
	if !bytes.Equal(rec3.Body.Bytes(), expectedCSV(gridA)) {
		t.Error("served CSV diverges from single-node reference")
	}
	if got := c.m.Sweeps.Value(); got != 1 {
		t.Errorf("cluster_sweeps_total = %d, want 1 (coalesced, not re-run)", got)
	}
	if got := c.m.SweepsShed.Value(); got != 1 {
		t.Errorf("cluster_sweeps_shed_total = %d, want 1", got)
	}

	// Operational surface: statusz, healthz, metrics.
	recSt := httptest.NewRecorder()
	h.ServeHTTP(recSt, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	var st CoordinatorStatus
	if err := json.Unmarshal(recSt.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz: %v", err)
	}
	if st.MaxSweeps != 1 || len(st.Workers) != 1 || len(st.Breakers) != 1 || !st.Workers[0].Up {
		t.Errorf("statusz = %+v", st)
	}
	recHz := httptest.NewRecorder()
	h.ServeHTTP(recHz, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if recHz.Code != http.StatusOK {
		t.Errorf("healthz = %d", recHz.Code)
	}
	recM := httptest.NewRecorder()
	h.ServeHTTP(recM, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, series := range []string{"cluster_points_total", "cluster_reassigned_shards_total", "cluster_worker_breaker_state", "cluster_worker_up"} {
		if !strings.Contains(recM.Body.String(), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	// Drain: no new sweeps, health reports it.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := post(gridB, context.Background()); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining submit: %d, want 503", rec.Code)
	}
	recHz2 := httptest.NewRecorder()
	h.ServeHTTP(recHz2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if recHz2.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", recHz2.Code)
	}
}
