package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bcnphase/internal/qos"
)

// ServerConfig configures the coordinator's HTTP front end.
type ServerConfig struct {
	// Coordinator executes the sweeps (required).
	Coordinator *Coordinator
	// MaxSweeps bounds concurrently running sweeps; submissions beyond it
	// are shed with 429 + Retry-After (default 2).
	MaxSweeps int
	// SweepTimeout bounds one sweep end to end (default 0: unbounded,
	// leases and re-assignment budgets still apply).
	SweepTimeout time.Duration
	// Log, when non-nil, receives one line per submission outcome.
	Log io.Writer
	// BaseContext, when non-nil, parents every sweep's context. Sweeps
	// deliberately outlive their submitting connections, so by default
	// they run under context.Background; the HA layer passes its
	// leadership context instead, cancelling every running sweep the
	// moment the replica stops being leader.
	BaseContext context.Context
	// OnSweepAccepted, when non-nil, runs once per admitted sweep
	// before execution starts; an error fails the submission. The HA
	// layer journals the grid here so a successor can resume the sweep.
	OnSweepAccepted func(fp string, grid GainGrid) error
	// OnSweepDone, when non-nil, observes every successfully completed
	// sweep (the HA layer records the sweep-done marker).
	OnSweepDone func(fp string, out *Output)
}

// Server is the coordinator's HTTP layer: POST /v1/sweeps submits a
// gain grid and streams back the merged map.csv; /statusz, /healthz and
// /metrics mirror the worker daemon's operational surface. Identical
// grids submitted concurrently coalesce onto one cluster sweep — the
// fleet computes each fingerprint once no matter how many clients ask.
type Server struct {
	cfg ServerConfig
	sem chan struct{}

	mu       sync.Mutex
	draining bool
	active   map[string]*sweepCall
	wg       sync.WaitGroup
}

// sweepCall is one in-flight sweep that late identical submissions
// attach to.
type sweepCall struct {
	done chan struct{}
	out  *Output
	err  error
}

// NewServer wraps a Coordinator in its HTTP front end.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Coordinator == nil {
		return nil, fmt.Errorf("cluster: server needs a coordinator")
	}
	if cfg.MaxSweeps <= 0 {
		cfg.MaxSweeps = 2
	}
	return &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxSweeps),
		active: make(map[string]*sweepCall),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "cluster: "+format+"\n", args...)
}

// Handler returns the coordinator's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.cfg.Coordinator.Registry().Handler())
	return mux
}

// Drain stops admitting sweeps and waits (bounded by ctx) for running
// ones to finish.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain cut short: %w", ctx.Err())
	}
}

// clusterError is the JSON shape of every non-2xx coordinator response
// (same contract as the worker daemon's errorBody).
type clusterError struct {
	Error         string `json:"error"`
	Reason        string `json:"reason"`
	RetryAfterSec int64  `json:"retry_after_sec,omitempty"`
}

func (s *Server) reject(w http.ResponseWriter, status int, retryAfter time.Duration, body clusterError) {
	if retryAfter > 0 {
		secs := int64(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body.RetryAfterSec = secs
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	c := s.cfg.Coordinator
	// QoS wire protocol: the tenant key rides into dispatch (workers bill
	// shards to it) and the deadline budget, decremented by one hop
	// margin, bounds the whole sweep. A budget that cannot cover even the
	// hop is answered now, before any shard is cut.
	tenant, terr := qos.ParseTenant(r.Header.Get(qos.TenantHeader))
	if terr != nil {
		s.reject(w, http.StatusBadRequest, 0, clusterError{
			Error: fmt.Sprintf("%s: %v", qos.TenantHeader, terr), Reason: "malformed-qos-header"})
		return
	}
	budget, hasDeadline, derr := qos.ParseDeadline(r.Header.Get(qos.DeadlineHeader))
	if derr != nil {
		s.reject(w, http.StatusBadRequest, 0, clusterError{
			Error: fmt.Sprintf("%s: %v", qos.DeadlineHeader, derr), Reason: "malformed-qos-header"})
		return
	}
	if hasDeadline && qos.Doomed(budget, qos.DefaultHopMargin) {
		s.reject(w, http.StatusGatewayTimeout, 0, clusterError{
			Error: "deadline budget cannot cover the sweep", Reason: "deadline-doomed"})
		return
	}
	grid, err := DecodeSweepRequest(http.MaxBytesReader(w, r.Body, MaxWireBytes), MaxWireBytes)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, http.StatusRequestEntityTooLarge, 0, clusterError{
				Error:  fmt.Sprintf("request body exceeds %d bytes", int64(MaxWireBytes)),
				Reason: "body-too-large"})
			return
		}
		s.reject(w, http.StatusBadRequest, 0, clusterError{Error: err.Error(), Reason: "malformed-grid"})
		return
	}
	fp, err := grid.Fingerprint()
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, clusterError{Error: err.Error(), Reason: "malformed-grid"})
		return
	}

	call, rej := s.begin(fp, grid, tenant, budget, hasDeadline)
	if rej != nil {
		if rej.body.Reason == "shed" {
			c.m.SweepsShed.Inc()
		}
		s.reject(w, rej.status, rej.retryAfter, rej.body)
		return
	}
	s.respond(w, r, fp, call)
}

// beginReject is a refused admission: the HTTP verdict begin would
// have handleSweep write.
type beginReject struct {
	status     int
	retryAfter time.Duration
	body       clusterError
}

// begin admits one sweep (or coalesces onto the identical one already
// running) through every path into the coordinator — HTTP submissions
// and HA takeover resumption alike share its draining check,
// concurrency bound, coalescing map and bookkeeping hooks.
func (s *Server) begin(fp string, grid GainGrid, tenant string, budget time.Duration, hasDeadline bool) (*sweepCall, *beginReject) {
	c := s.cfg.Coordinator
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &beginReject{http.StatusServiceUnavailable, time.Second, clusterError{
			Error: "coordinator is draining", Reason: "draining"}}
	}
	if call, ok := s.active[fp]; ok {
		// Identical grid already running: ride along instead of paying
		// for a second sweep (the journal would dedup it anyway, but
		// coalescing avoids even the dispatch round-trips).
		s.mu.Unlock()
		s.logf("sweep %0.12s coalesced onto running submission", fp)
		return call, nil
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.mu.Unlock()
		return nil, &beginReject{http.StatusTooManyRequests, 2 * time.Second, clusterError{
			Error:  fmt.Sprintf("coordinator at its limit of %d concurrent sweeps", s.cfg.MaxSweeps),
			Reason: "shed"}}
	}
	call := &sweepCall{done: make(chan struct{})}
	s.active[fp] = call
	s.wg.Add(1)
	s.mu.Unlock()

	c.m.Sweeps.Inc()
	go func() {
		defer func() {
			s.mu.Lock()
			delete(s.active, fp)
			s.mu.Unlock()
			<-s.sem
			s.wg.Done()
			close(call.done)
		}()
		// Bookkeeping before the first shard is cut: a crash after this
		// point leaves a journaled grid a successor can resume.
		if s.cfg.OnSweepAccepted != nil {
			if err := s.cfg.OnSweepAccepted(fp, grid); err != nil {
				call.err = fmt.Errorf("cluster: sweep bookkeeping: %w", err)
				return
			}
		}
		base := s.cfg.BaseContext
		if base == nil {
			base = context.Background()
		}
		ctx := qos.WithTenant(base, tenant)
		if s.cfg.SweepTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.SweepTimeout)
			defer cancel()
		}
		if hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = qos.WithBudget(ctx, qos.Forward(budget, qos.DefaultHopMargin))
			defer cancel()
		}
		// The sweep deliberately outlives the submitting connection: a
		// client that gives up does not strand a half-journaled grid, and
		// a resubmission replays the finished work from the journal.
		call.out, call.err = c.Run(ctx, grid)
		if call.err == nil && s.cfg.OnSweepDone != nil {
			s.cfg.OnSweepDone(fp, call.out)
		}
	}()
	return call, nil
}

// ErrSweepsBusy is Submit's refusal when the concurrent-sweep bound or
// a drain blocks admission; callers retry later.
var ErrSweepsBusy = errors.New("cluster: coordinator cannot admit the sweep now")

// Submit runs (or joins) a sweep through the same coalescing and
// bookkeeping path as POST /v1/sweeps. The HA layer resumes journaled
// sweeps with it after a leadership takeover, so a client resubmitting
// the same grid coalesces onto the resumed run instead of racing it.
func (s *Server) Submit(ctx context.Context, grid GainGrid) (*Output, error) {
	fp, err := grid.Fingerprint()
	if err != nil {
		return nil, err
	}
	call, rej := s.begin(fp, grid, "", 0, false)
	if rej != nil {
		return nil, fmt.Errorf("%w: %s", ErrSweepsBusy, rej.body.Error)
	}
	select {
	case <-call.done:
		return call.out, call.err
	case <-ctx.Done():
		// The sweep keeps running, exactly as it would for a hung-up
		// HTTP client; only this waiter gives up.
		return nil, ctx.Err()
	}
}

// respond waits for the sweep (or the client hanging up) and writes the
// merged CSV.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, fp string, call *sweepCall) {
	select {
	case <-call.done:
	case <-r.Context().Done():
		// The sweep keeps running; tell the client how to pick it up.
		s.reject(w, http.StatusRequestTimeout, 0, clusterError{
			Error:  "client went away; sweep continues — resubmit the same grid to collect it",
			Reason: "client-timeout"})
		return
	}
	if call.err != nil {
		s.logf("sweep %0.12s failed: %v", fp, call.err)
		s.reject(w, http.StatusInternalServerError, 0, clusterError{Error: call.err.Error(), Reason: "sweep-failed"})
		return
	}
	out := call.out
	h := w.Header()
	h.Set("Content-Type", "text/csv; charset=utf-8")
	h.Set("Bcn-Fingerprint", out.Fingerprint)
	h.Set("Bcn-Points", strconv.Itoa(out.Points))
	h.Set("Bcn-Fresh", strconv.Itoa(out.Fresh))
	h.Set("Bcn-Replayed", strconv.Itoa(out.Replayed))
	h.Set("Bcn-Orphan-Shards", strconv.Itoa(out.OrphanShards))
	h.Set("Bcn-Audited-Shards", strconv.Itoa(out.AuditedShards))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.CSV)
}

// CoordinatorStatus is the /statusz document.
type CoordinatorStatus struct {
	Draining     bool                  `json:"draining"`
	ActiveSweeps int                   `json:"active_sweeps"`
	MaxSweeps    int                   `json:"max_sweeps"`
	Workers      []WorkerHealth        `json:"workers"`
	Breakers     []WorkerBreakerStatus `json:"breakers"`
}

// Status snapshots the coordinator for /statusz.
func (s *Server) Status() CoordinatorStatus {
	s.mu.Lock()
	st := CoordinatorStatus{
		Draining:     s.draining,
		ActiveSweeps: len(s.active),
		MaxSweeps:    s.cfg.MaxSweeps,
	}
	s.mu.Unlock()
	st.Workers = s.cfg.Coordinator.WorkerSnapshot()
	st.Breakers = s.cfg.Coordinator.BreakerSnapshot()
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(s.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.reject(w, http.StatusServiceUnavailable, time.Second, clusterError{
			Error: "draining", Reason: "draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}
