package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrWire wraps every coordinator wire-message validation failure;
// handlers map it to HTTP 400.
var ErrWire = errors.New("cluster: invalid wire message")

// MaxShardPoints caps the points one shard assignment may carry.
const MaxShardPoints = 512

// MaxWireBytes bounds any single coordinator wire message.
const MaxWireBytes = 4 << 20

// ShardSpec is one shard assignment: the coordinator → worker payload,
// carried as the "shard" body of an ordinary bcnd job spec, so a worker
// needs no cluster-specific endpoint — admission control, supervision
// and journal dedup all apply unchanged. Grid travels whole (not just
// the base parameters) so the shard's dedup key pins the full sweep
// identity, and Index makes two different chunks of the same grid
// distinct artifacts.
type ShardSpec struct {
	Grid   GainGrid    `json:"grid"`
	Index  int         `json:"index"`
	Points []GainPoint `json:"points"`
}

// Validate checks a shard assignment's feasibility.
func (s *ShardSpec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: shard: %s", ErrWire, fmt.Sprintf(format, args...))
	}
	if err := s.Grid.Validate(); err != nil {
		return fmt.Errorf("%w: shard: %v", ErrWire, err)
	}
	if s.Grid.Steps > MaxClusterSteps {
		return fail("grid steps=%d exceeds cluster cap %d", s.Grid.Steps, MaxClusterSteps)
	}
	if s.Index < 0 {
		return fail("index=%d must be non-negative", s.Index)
	}
	if len(s.Points) == 0 || len(s.Points) > MaxShardPoints {
		return fail("%d points, want 1..%d", len(s.Points), MaxShardPoints)
	}
	for i, pt := range s.Points {
		for _, v := range []float64{pt.Gi, pt.Gd} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return fail("point %d gain %v must be positive and finite", i, v)
			}
		}
	}
	return nil
}

// ShardResult is the worker → coordinator result envelope: one Row per
// assigned point, in assignment order, plus the integrity envelope the
// worker signs over them (digest.go). The integrity fields live only on
// the wire — journal point records stay plain Rows, so coordinator
// journals remain interchangeable with cmd/bcnsweep -resume journals.
type ShardResult struct {
	Index int   `json:"index"`
	Rows  []Row `json:"rows"`
	// RowSums[i] is RowSum(Rows[i]), computed by the evaluating worker.
	RowSums []string `json:"row_sums,omitempty"`
	// Digest is ShardDigest(Index, RowSums).
	Digest string `json:"digest,omitempty"`
}

// Shard is one planned unit of distribution: a grid-order chunk of
// points with their global grid indices and journal keys.
type Shard struct {
	Index  int
	Points []GainPoint
	// GridIdx[i] is Points[i]'s position in the full grid enumeration.
	GridIdx []int
	// Keys[i] is Points[i]'s journal key.
	Keys []string
}

// DoneKey is the journal key of a shard's completion marker: the record
// the coordinator appends after every row of the shard is durable. A
// shard with rows but no done marker is an orphan — a worker or
// coordinator died mid-shard — and must be re-executed, not trusted.
func DoneKey(fingerprint string, index int) string {
	return fmt.Sprintf("shard-done:%s:%d", fingerprint, index)
}

// doneMarker is the done record's JSON value.
type doneMarker struct {
	Index  int `json:"index"`
	Points int `json:"points"`
}

// PlanShards enumerates the grid and chunks it into shards of at most
// size points, in grid order. The plan depends only on the grid and the
// shard size — never on the worker set — so shard composition (and with
// it every done-marker key) is stable across restarts and worker churn.
func PlanShards(grid GainGrid, size int) (fingerprint string, points []GainPoint, shards []Shard, err error) {
	if err := grid.Validate(); err != nil {
		return "", nil, nil, err
	}
	if size <= 0 {
		size = DefaultShardSize
	}
	if size > MaxShardPoints {
		size = MaxShardPoints
	}
	fingerprint, err = grid.Fingerprint()
	if err != nil {
		return "", nil, nil, err
	}
	points = grid.Points()
	for lo := 0; lo < len(points); lo += size {
		hi := lo + size
		if hi > len(points) {
			hi = len(points)
		}
		sh := Shard{
			Index:  len(shards),
			Points: points[lo:hi:hi],
		}
		for i := lo; i < hi; i++ {
			sh.GridIdx = append(sh.GridIdx, i)
			sh.Keys = append(sh.Keys, PointKey(fingerprint, points[i]))
		}
		shards = append(shards, sh)
	}
	return fingerprint, points, shards, nil
}

// DecodeSweepRequest reads one grid submission from r (POST /v1/sweeps),
// rejecting unknown fields, trailing data, oversized bodies and
// anything that fails validation or exceeds the cluster resolution cap.
// It never panics on arbitrary input (fuzzed in fuzz_test.go); every
// failure wraps ErrWire.
func DecodeSweepRequest(r io.Reader, maxBytes int64) (GainGrid, error) {
	if maxBytes <= 0 {
		maxBytes = MaxWireBytes
	}
	// Limit to maxBytes+1 and double-wrap the decode failure so a typed
	// *http.MaxBytesError from a MaxBytesReader-wrapped body survives to
	// the handler (which maps it to 413); truncating exactly at the budget
	// would turn it into a generic unexpected-EOF 400.
	dec := json.NewDecoder(io.LimitReader(r, maxBytes+1))
	dec.DisallowUnknownFields()
	var g GainGrid
	if err := dec.Decode(&g); err != nil {
		return GainGrid{}, fmt.Errorf("%w: %w", ErrWire, err)
	}
	if dec.More() {
		return GainGrid{}, fmt.Errorf("%w: trailing data after sweep request", ErrWire)
	}
	if err := g.Validate(); err != nil {
		return GainGrid{}, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if g.Steps > MaxClusterSteps {
		return GainGrid{}, fmt.Errorf("%w: grid steps=%d exceeds cluster cap %d", ErrWire, g.Steps, MaxClusterSteps)
	}
	return g, nil
}

// jobEnvelope is the bcnd job spec the coordinator posts to a worker's
// /v1/jobs. It mirrors serve.Spec's JSON shape for the shard kind;
// keeping a local copy here (instead of importing internal/serve) keeps
// the dependency arrow pointing serve → cluster.
type jobEnvelope struct {
	Kind      string     `json:"kind"`
	TimeoutMs int64      `json:"timeout_ms,omitempty"`
	Shard     *ShardSpec `json:"shard"`
}

// EncodeShardJob renders the bcnd job spec submitting sh as a shard job
// with the given wall-clock budget.
func EncodeShardJob(sh *ShardSpec, timeoutMs int64) ([]byte, error) {
	body, err := json.Marshal(jobEnvelope{Kind: "shard", TimeoutMs: timeoutMs, Shard: sh})
	if err != nil {
		return nil, fmt.Errorf("cluster: encode shard job: %w", err)
	}
	return body, nil
}

// shardArtifact is the coordinator's view of a worker's artifact JSON.
// Decoding is deliberately lenient about extra fields — the serving
// layer may grow its artifact envelope — but strict about the parts the
// merge depends on.
type shardArtifact struct {
	Key   string       `json:"key"`
	Kind  string       `json:"kind"`
	Shard *ShardResult `json:"shard"`
}

// DecodeShardArtifact parses a worker's job artifact into its
// ShardResult, validating it against the assignment it answers: same
// shard index, exactly one Row per assigned point, every row non-empty.
// It never panics on arbitrary input (fuzzed in fuzz_test.go).
func DecodeShardArtifact(raw []byte, want *ShardSpec) (ShardResult, error) {
	if int64(len(raw)) > MaxWireBytes {
		return ShardResult{}, fmt.Errorf("%w: artifact of %d bytes exceeds cap", ErrWire, len(raw))
	}
	var art shardArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		return ShardResult{}, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if art.Kind != "shard" || art.Shard == nil {
		return ShardResult{}, fmt.Errorf("%w: artifact kind %q is not a shard result", ErrWire, art.Kind)
	}
	res := *art.Shard
	if want != nil {
		if res.Index != want.Index {
			return ShardResult{}, fmt.Errorf("%w: shard result index %d answers assignment %d", ErrWire, res.Index, want.Index)
		}
		if len(res.Rows) != len(want.Points) {
			return ShardResult{}, fmt.Errorf("%w: shard result has %d rows for %d assigned points", ErrWire, len(res.Rows), len(want.Points))
		}
	}
	for i := range res.Rows {
		if res.Rows[i].CSV == "" {
			return ShardResult{}, fmt.Errorf("%w: shard result row %d is empty", ErrWire, i)
		}
	}
	return res, nil
}

// WorkerStatus is the heartbeat envelope: the slice of a worker's
// /statusz the coordinator acts on. Unknown fields are ignored (the
// serving layer adds fields over time); what is present must be typed
// correctly.
type WorkerStatus struct {
	Draining    bool    `json:"draining"`
	Workers     int     `json:"workers"`
	Queued      int     `json:"queued"`
	InFlight    int     `json:"in_flight"`
	ActiveJobs  int     `json:"active_jobs"`
	Utilization float64 `json:"utilization"`
}

// DecodeWorkerStatus parses one heartbeat response. It never panics on
// arbitrary input (fuzzed in fuzz_test.go).
func DecodeWorkerStatus(raw []byte) (WorkerStatus, error) {
	if int64(len(raw)) > MaxWireBytes {
		return WorkerStatus{}, fmt.Errorf("%w: status of %d bytes exceeds cap", ErrWire, len(raw))
	}
	var st WorkerStatus
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&st); err != nil {
		return WorkerStatus{}, fmt.Errorf("%w: %v", ErrWire, err)
	}
	if st.Workers < 0 || st.Queued < 0 || st.InFlight < 0 {
		return WorkerStatus{}, fmt.Errorf("%w: negative occupancy in worker status", ErrWire)
	}
	return st, nil
}
