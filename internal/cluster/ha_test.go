package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcnphase/internal/chaosnet"
	"bcnphase/internal/cluster"
	"bcnphase/internal/core"
	"bcnphase/internal/runstate"
	"bcnphase/internal/sweep"
)

// handlerHolder lets an httptest server exist before the HANode whose
// Handler it will serve (the node needs the server's URL as Self).
type handlerHolder struct{ v atomic.Value }

func (h *handlerHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if hd, ok := h.v.Load().(http.Handler); ok {
		hd.ServeHTTP(w, r)
		return
	}
	http.Error(w, "replica booting", http.StatusServiceUnavailable)
}

// haReplica is one coordinator replica under test: the node, its HTTP
// front, its private journal, and its private chaos proxies to the
// shared worker fleet (so one replica can be partitioned from the
// workers without touching the others).
type haReplica struct {
	idx     int
	node    *cluster.HANode
	ts      *httptest.Server
	journal string
	mapPath string
	proxies []*chaosnet.Proxy
	off     sync.Once
}

// kill is the SIGKILL-equivalent: sever every client connection, drop
// the listener, and tear the node down without any drain.
func (r *haReplica) kill() {
	r.off.Do(func() {
		r.ts.CloseClientConnections()
		r.ts.Close()
		r.node.Close()
	})
}

func (r *haReplica) partition(on bool) {
	for _, p := range r.proxies {
		p.SetPartitioned(on)
	}
}

// mergeEvent is one shard merge as observed through OnShardDone: which
// replica merged, under which term.
type mergeEvent struct {
	replica int
	term    uint64
	shard   int
}

// TestHAFailoverSoak is the coordinator-availability acceptance test
// (DESIGN.md §5i): three coordinator replicas over three real bcnd
// worker stacks, the elected leader SIGKILL-killed mid-sweep, its
// successor partitioned from the worker fleet mid-term — and the
// surviving leader must still complete the sweep with a map.csv
// byte-identical to a clean single-coordinator run, zero lost or
// duplicated journal records, and a merge log proving no deposed
// leader ever merged after its successor (fencing terms
// non-decreasing, one leader per term). Run it under -race.
func TestHAFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("HA failover soak: skipped with -short")
	}
	grid := cluster.GainGrid{BOverQ0: 5, GiLo: 0.05, GiHi: 12.8, GdLo: 0.0009765625, GdHi: 0.5, Steps: 17}
	points := grid.Points()
	fp, err := grid.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Clean single-coordinator reference, same evaluator the workers run.
	sm := core.NewSolveMetrics(nil)
	refRes, err := sweep.Run(context.Background(), points,
		func(ctx context.Context, pt cluster.GainPoint) (cluster.Row, error) {
			return grid.Eval(ctx, pt, cluster.EvalMetrics{Solve: sm})
		}, sweep.Options{Workers: 8})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	refRows := make([]cluster.Row, len(points))
	for i, r := range refRes {
		if r.Err != nil {
			t.Fatalf("reference point %d: %v", i, r.Err)
		}
		refRows[i] = r.Value
	}
	want := cluster.RenderCSV(refRows)

	// Three real worker stacks — the witness electorate.
	workers := []*chaosWorker{newChaosWorker(t), newChaosWorker(t), newChaosWorker(t)}

	// The fault schedule, driven by merge progress so both failures land
	// in the thick of a sweep, never at a tidy boundary: after the first
	// leader's 3rd merged shard it is killed; after its successor's 3rd
	// merged shard the successor is partitioned from every worker.
	var (
		logMu             sync.Mutex
		merges            []mergeEvent
		killed            = -1
		severed           = -1
		replicas          [3]*haReplica
		killOnce, sevOnce sync.Once
	)
	perLeader := map[int]int{}
	onShardDone := func(idx int) func(term uint64, worker string, sh cluster.Shard) {
		return func(term uint64, _ string, sh cluster.Shard) {
			logMu.Lock()
			merges = append(merges, mergeEvent{replica: idx, term: term, shard: sh.Index})
			perLeader[idx]++
			n := perLeader[idx]
			victim := replicas[idx]
			logMu.Unlock()
			if n < 3 {
				return
			}
			logMu.Lock()
			isFirst := killed == -1
			isSecond := !isFirst && severed == -1 && idx != killed
			if isFirst {
				killed = idx
			}
			if isSecond {
				severed = idx
			}
			logMu.Unlock()
			if isFirst {
				killOnce.Do(func() { go victim.kill() })
			}
			if isSecond {
				sevOnce.Do(func() { go victim.partition(true) })
			}
		}
	}

	const leaseTTL = 300 * time.Millisecond
	dir := t.TempDir()
	// Listeners and per-replica worker proxies first: every replica
	// needs the full peer URL list before any node starts campaigning.
	var holders [3]*handlerHolder
	var workerViews [3][]string
	for i := range replicas {
		holders[i] = &handlerHolder{}
		ts := httptest.NewServer(holders[i])
		t.Cleanup(ts.Close)
		proxies := make([]*chaosnet.Proxy, len(workers))
		proxyURLs := make([]string, len(workers))
		for w, wk := range workers {
			// A few ms of injected latency per dispatch keeps the sweep
			// long enough that the asynchronous kill and partition always
			// land mid-sweep, never after a too-fast completion.
			p, err := chaosnet.New(chaosnet.Config{
				Target: wk.ts.URL, Seed: int64(100*i + w),
				Latency: 4 * time.Millisecond, Jitter: 4 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			pts := httptest.NewServer(p.Handler())
			t.Cleanup(pts.Close)
			proxies[w], proxyURLs[w] = p, pts.URL
		}
		workerViews[i] = proxyURLs
		replicas[i] = &haReplica{
			idx:     i,
			ts:      ts,
			journal: filepath.Join(dir, fmt.Sprintf("replica%d-%s", i, runstate.JournalFileName)),
			mapPath: filepath.Join(dir, fmt.Sprintf("replica%d-map.csv", i)),
			proxies: proxies,
		}
	}
	for i, r := range replicas {
		j, err := runstate.OpenJournal(r.journal)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() })
		var peers []string
		for k, other := range replicas {
			if k != i {
				peers = append(peers, other.ts.URL)
			}
		}
		node, err := cluster.NewHANode(cluster.HAConfig{
			Self:             r.ts.URL,
			Peers:            peers,
			Workers:          workerViews[i],
			LeaseTTL:         leaseTTL,
			ElectionInterval: leaseTTL / 2,
			RenewInterval:    leaseTTL / 3,
			SnapshotInterval: 2 * leaseTTL,
			Journal:          j,
			Seed:             int64(i + 1),
			MaxSweeps:        2,
			SweepTimeout:     2 * time.Minute,
			OnShardDone:      onShardDone(i),
			Coordinator: cluster.Config{
				ShardSize:         8, // 37 shards for 289 points
				LeaseTimeout:      10 * time.Second,
				HeartbeatInterval: 25 * time.Millisecond,
				HeartbeatMisses:   2,
				RetryBase:         5 * time.Millisecond,
				RetryCap:          50 * time.Millisecond,
				MaxAttempts:       2,
				BreakerThreshold:  2,
				BreakerCooldown:   100 * time.Millisecond,
				MapPath:           r.mapPath,
				Seed:              1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.node = node
		t.Cleanup(node.Close)
		holders[i].v.Store(node.Handler())
	}

	body, err := json.Marshal(grid)
	if err != nil {
		t.Fatal(err)
	}

	// The failing-over client: rotate across every replica until one —
	// whichever currently leads — answers 200 with the merged map.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var got []byte
	winner := -1
	client := &http.Client{}
	for got == nil {
		if ctx.Err() != nil {
			logMu.Lock()
			t.Fatalf("no replica completed the sweep in time; merges so far: %v", merges)
		}
		for i, r := range replicas {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.ts.URL+"/v1/sweeps", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				continue // dead or killed replica: fail over
			}
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				continue // not the leader, or its leadership died mid-sweep
			}
			got, winner = data, i
			break
		}
		if got == nil {
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
		}
	}

	// Byte-identical to the clean single-coordinator run, in memory and
	// on the winner's disk.
	if !bytes.Equal(got, want) {
		t.Errorf("failed-over sweep returned %d bytes, reference is %d; maps diverge", len(got), len(want))
	}
	if disk, err := os.ReadFile(replicas[winner].mapPath); err != nil || !bytes.Equal(disk, want) {
		t.Errorf("winner's map.csv on disk diverges: %v", err)
	}

	logMu.Lock()
	events := append([]mergeEvent(nil), merges...)
	killedIdx, severedIdx := killed, severed
	logMu.Unlock()

	// Both failures actually happened mid-sweep.
	if killedIdx == -1 {
		t.Fatal("no leader was ever killed; the soak never exercised failover")
	}
	if severedIdx == -1 {
		t.Error("no successor was partitioned; the split-brain leg never ran")
	}
	if winner == killedIdx {
		t.Errorf("the killed replica %d answered the final sweep", winner)
	}

	// Fencing: merge terms never decrease — a deposed leader never
	// merged after its successor — and no term was shared by two
	// replicas.
	termOwner := map[uint64]int{}
	var last uint64
	for i, ev := range events {
		if ev.term < last {
			t.Fatalf("merge %d: term %d after term %d — a deposed leader merged behind its successor (%v)", i, ev.term, last, events)
		}
		last = ev.term
		if owner, ok := termOwner[ev.term]; ok && owner != ev.replica {
			t.Fatalf("term %d merged by replicas %d and %d — two leaders in one term", ev.term, owner, ev.replica)
		}
		termOwner[ev.term] = ev.replica
	}
	if len(termOwner) < 2 {
		t.Errorf("all merges under %d term(s); failover never changed leaders mid-sweep", len(termOwner))
	}

	// Zero lost, zero duplicated: the winner's on-disk journal holds
	// every key at most once, includes the sweep bookkeeping, and a
	// fresh coordinator over that journal replays the entire grid
	// without dispatching a single shard.
	raw, err := os.ReadFile(replicas[winner].journal)
	if err != nil {
		t.Fatal(err)
	}
	keyCount := map[string]int{}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unparseable journal line: %s", line)
		}
		keyCount[rec.Key]++
	}
	for key, n := range keyCount {
		if n != 1 {
			t.Errorf("winner's journal records key %s %d times", key, n)
		}
	}
	if keyCount[cluster.SweepGridKey(fp)] != 1 || keyCount[cluster.SweepDoneKey(fp)] != 1 {
		t.Errorf("winner's journal lacks sweep bookkeeping: grid=%d done=%d",
			keyCount[cluster.SweepGridKey(fp)], keyCount[cluster.SweepDoneKey(fp)])
	}

	// Replay over a copy of the winner's journal (the original is still
	// owned by its node): a fresh coordinator must reproduce the whole
	// map from the journal alone.
	replayDir := t.TempDir()
	replayPath := filepath.Join(replayDir, runstate.JournalFileName)
	if err := os.WriteFile(replayPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := runstate.OpenJournal(replayPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2, err := cluster.New(cluster.Config{
		Workers: []string{workers[2].ts.URL}, ShardSize: 8, Journal: j2, HeartbeatInterval: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	out2, err := c2.Run(context.Background(), grid)
	if err != nil {
		t.Fatalf("replay over the winner's journal: %v", err)
	}
	if out2.Fresh != 0 || out2.Replayed != len(points) {
		t.Errorf("replay = fresh %d replayed %d, want 0 and %d: the failover lost or refetched points",
			out2.Fresh, out2.Replayed, len(points))
	}
	if !bytes.Equal(out2.CSV, want) {
		t.Error("replay over the winner's journal diverges from the reference map")
	}

	// Leadership telemetry: the winner reports itself leader at the
	// final term.
	st := replicas[winner].node.Status()
	if st.Role != cluster.RoleLeader {
		t.Errorf("winner's role = %s, want leader", st.Role)
	}
	if st.Term != last {
		t.Errorf("winner's term = %d, last merge term = %d", st.Term, last)
	}
}
