package cluster

import (
	"encoding/json"
	"net/http"
	"time"
)

// HAStatus is the /statusz document of one HA replica: leadership
// first (this is what operators and failing-over clients look at),
// then the inner coordinator status while leading.
type HAStatus struct {
	Self           string   `json:"self"`
	Role           string   `json:"role"`
	Term           uint64   `json:"term"`
	MaxTermSeen    uint64   `json:"max_term_seen"`
	Leader         string   `json:"leader,omitempty"`
	LeaseMsLeft    int64    `json:"lease_ms_left,omitempty"`
	Peers          []string `json:"peers"`
	Workers        int      `json:"workers"`
	JournalRecords int      `json:"journal_records"`
	ReplicationLag int      `json:"replication_lag_records"`

	Coordinator *CoordinatorStatus `json:"coordinator,omitempty"`
}

// Status snapshots the replica for /statusz.
func (n *HANode) Status() HAStatus {
	n.mu.RLock()
	st := HAStatus{
		Self:           n.cfg.Self,
		Role:           n.role,
		Term:           n.term,
		MaxTermSeen:    n.maxSeen,
		Leader:         n.leaderHint,
		Peers:          n.cfg.Peers,
		Workers:        len(n.cfg.Workers),
		JournalRecords: len(n.cfg.Journal.Keys()),
		ReplicationLag: int(n.repl.lag()),
	}
	var srv *Server
	if n.role == RoleLeader {
		srv = n.srv
		if left := time.Until(n.leaseUntil); left > 0 {
			st.LeaseMsLeft = int64(left / time.Millisecond)
		}
	}
	n.mu.RUnlock()
	if srv != nil {
		cs := srv.Status()
		st.Coordinator = &cs
	}
	return st
}

// Handler is the replica's HTTP surface: the coordinator sweep API
// (delegated while leading, redirected while following) plus the HA
// internals — lease-peer replication and journal snapshots.
func (n *HANode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", n.handleSweeps)
	mux.HandleFunc("POST /v1/replicate", n.handleReplicate)
	mux.HandleFunc("GET /v1/journal", n.handleJournal)
	mux.HandleFunc("GET /statusz", n.handleStatusz)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.Handle("GET /metrics", n.registry.Handler())
	return mux
}

func haWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleSweeps delegates to the leading coordinator's sweep handler,
// or answers 421 with a Bcn-Not-Leader hint so the client can fail
// over without guessing. The srv pointer is captured under the lock
// but the (long-lived) request runs outside it; a mid-request
// deposition cancels the sweep through the leadership context, not
// through this handler.
func (n *HANode) handleSweeps(w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	srv := n.srv
	hint := n.leaderHint
	leading := n.role == RoleLeader
	n.mu.RUnlock()
	if !leading || srv == nil {
		if hint != "" && hint != n.cfg.Self {
			w.Header().Set(NotLeaderHeader, hint)
		}
		haWriteJSON(w, http.StatusMisdirectedRequest, clusterError{
			Error:  "this replica is not the leader",
			Reason: NotLeaderReason,
		})
		return
	}
	srv.handleSweep(w, r)
}

// handleReplicate applies a leader's streamed journal records. A
// replica that is itself leading refuses: accepting would let a
// deposed predecessor write into the new epoch. The role check and
// the apply share one read-hold of mu, so a leadership flip
// (exclusive) cannot land between them.
func (n *HANode) handleReplicate(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeReplicateRequest(r.Body)
	if err != nil {
		haWriteJSON(w, http.StatusBadRequest, clusterError{Error: err.Error(), Reason: "malformed-replicate"})
		return
	}
	n.mu.RLock()
	if n.role == RoleLeader {
		n.mu.RUnlock()
		haWriteJSON(w, http.StatusConflict, clusterError{
			Error:  "replica is leading; refusing peer stream",
			Reason: NotLeaderReason,
		})
		return
	}
	if req.Term > n.maxSeen || (req.Term == n.maxSeen && n.leaderHint == "") {
		// Learn the leader from its own stream — cheaper than waiting
		// for a denied campaign to report it.
		defer func(term uint64, from string) {
			n.mu.Lock()
			if term > n.maxSeen {
				n.maxSeen = term
			}
			if from != "" {
				n.leaderHint = from
			}
			n.mu.Unlock()
		}(req.Term, req.From)
	}
	applied, aerr := n.applyRecords(req.Records)
	n.mu.RUnlock()
	if applied > 0 {
		n.m.AppliedRecords.Add(uint64(applied))
	}
	if aerr != nil {
		haWriteJSON(w, http.StatusInternalServerError, clusterError{Error: aerr.Error(), Reason: "journal-write-failed"})
		return
	}
	haWriteJSON(w, http.StatusOK, ReplicateResponse{Applied: applied, Term: req.Term})
}

// handleJournal streams this replica's full journal as NDJSON
// ReplicateRecord lines, sorted by key — the snapshot a lagging
// standby catches up from.
func (n *HANode) handleJournal(w http.ResponseWriter, _ *http.Request) {
	recs := SnapshotRecords(n.cfg.Journal)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return
		}
	}
}

func (n *HANode) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	haWriteJSON(w, http.StatusOK, n.Status())
}

// handleHealthz is liveness, not leadership: a healthy standby is a
// healthy process. Clients that need the leader use /statusz or the
// 421 redirect.
func (n *HANode) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	haWriteJSON(w, http.StatusOK, struct {
		OK   bool   `json:"ok"`
		Role string `json:"role"`
	}{true, func() string { n.mu.RLock(); defer n.mu.RUnlock(); return n.role }()})
}
