package cluster

import (
	"sync"
	"time"

	"bcnphase/internal/telemetry"
)

// Breaker state encoding for the cluster_worker_breaker_state gauge.
const (
	breakerClosed      = 0.0
	breakerHalfOpen    = 1.0
	breakerOpen        = 2.0
	breakerQuarantined = 3.0
)

// workerBreaker is a per-worker circuit breaker over shard dispatch
// outcomes — the PR 4 breaker shape (consecutive-failure threshold,
// cooldown quarantine, single half-open probe) applied to workers
// instead of parameter regions. A flapping worker is quarantined: the
// coordinator stops routing shards to it, lets the other workers steal
// its queue, and probes it once per cooldown instead of hammering a
// node that is already failing — damping, not amplifying, the retry
// loop.
type workerBreaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	names     []string
	states    []breakerState

	transitions *telemetry.CounterVec
	stateGauge  *telemetry.GaugeVec
}

type breakerState struct {
	consecutive int
	openUntil   time.Time
	probing     bool
	trips       uint64
	// quarantined is the audit verdict: the worker was outvoted in a
	// result-integrity quorum. Unlike an open breaker it never half-opens
	// — wrong answers are a correctness problem, not a load problem, and
	// only an operator restart clears it.
	quarantined bool
}

// WorkerBreakerStatus is one worker's breaker snapshot for /statusz.
type WorkerBreakerStatus struct {
	Worker      string `json:"worker"`
	State       string `json:"state"` // "closed", "open", "half-open", "quarantined"
	Consecutive int    `json:"consecutive_failures"`
	Trips       uint64 `json:"trips"`
	// RetryAfterSec is the remaining cooldown for an open worker.
	RetryAfterSec int64 `json:"retry_after_sec,omitempty"`
}

// newWorkerBreaker builds a breaker for the named workers. threshold
// <= 0 disables tripping (Allow always true); now == nil uses time.Now.
func newWorkerBreaker(names []string, threshold int, cooldown time.Duration, now func() time.Time, m *Metrics) *workerBreaker {
	if now == nil {
		now = time.Now
	}
	b := &workerBreaker{
		threshold:   threshold,
		cooldown:    cooldown,
		now:         now,
		names:       names,
		states:      make([]breakerState, len(names)),
		transitions: m.BreakerTransitions,
		stateGauge:  m.BreakerState,
	}
	// Every worker's state series exists from startup, so a dashboard
	// sees "closed" rather than an absent series before the first trip.
	for _, name := range names {
		b.stateGauge.With(name).Set(breakerClosed)
	}
	return b
}

// Allow reports whether a shard may be dispatched to worker w now. An
// open worker rejects with its remaining cooldown; once the cooldown
// elapses exactly one probe dispatch is admitted.
func (b *workerBreaker) Allow(w int) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.states[w]
	if s.quarantined {
		// Quarantine outranks everything, including a disabled breaker:
		// it is an integrity verdict, not load management.
		return false, time.Hour
	}
	if b.threshold <= 0 {
		return true, 0
	}
	if s.openUntil.IsZero() {
		return true, 0
	}
	if rem := s.openUntil.Sub(b.now()); rem > 0 {
		return false, rem
	}
	if s.probing {
		return false, b.cooldown / 4
	}
	s.probing = true
	b.transitions.With("half-open").Inc()
	b.stateGauge.With(b.names[w]).Set(breakerHalfOpen)
	return true, 0
}

// Success records a completed dispatch on worker w, closing it. A
// quarantined worker stays quarantined: answering *something* is not
// evidence of answering *correctly*.
func (b *workerBreaker) Success(w int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.states[w]
	if s.quarantined || b.threshold <= 0 {
		return
	}
	if !s.openUntil.IsZero() || s.probing {
		b.transitions.With("closed").Inc()
	}
	s.consecutive = 0
	s.openUntil = time.Time{}
	s.probing = false
	b.stateGauge.With(b.names[w]).Set(breakerClosed)
}

// Failure records a failed dispatch on worker w, opening it at the
// threshold — and immediately re-opening a half-open worker whose probe
// failed.
func (b *workerBreaker) Failure(w int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.states[w]
	if s.quarantined || b.threshold <= 0 {
		return
	}
	s.consecutive++
	if s.probing || s.consecutive >= b.threshold {
		s.openUntil = b.now().Add(b.cooldown)
		s.probing = false
		s.trips++
		b.transitions.With("open").Inc()
		b.stateGauge.With(b.names[w]).Set(breakerOpen)
	}
}

// Release abandons a half-open probe on worker w without a verdict
// (the dispatch was cancelled, not failed): the probe slot reopens so
// the next Allow can claim it.
func (b *workerBreaker) Release(w int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.states[w]
	if s.quarantined || b.threshold <= 0 {
		return
	}
	if s.probing {
		s.probing = false
		b.stateGauge.With(b.names[w]).Set(breakerOpen)
	}
}

// Open reports whether worker w is currently barred from new dispatches
// (no probe admissible right now).
func (b *workerBreaker) Open(w int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.states[w]
	if s.quarantined {
		return true
	}
	if b.threshold <= 0 {
		return false
	}
	if s.openUntil.IsZero() {
		return false
	}
	return s.openUntil.Sub(b.now()) > 0 || s.probing
}

// Quarantine places worker w in the terminal quarantined state: Allow
// and Open bar it permanently, Success/Failure/Release are no-ops, and
// no cooldown or probe ever reopens it. Returns false when w was already
// quarantined, so callers can make the quorum verdict idempotent.
func (b *workerBreaker) Quarantine(w int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.states[w]
	if s.quarantined {
		return false
	}
	s.quarantined = true
	s.probing = false
	s.trips++
	b.transitions.With("quarantined").Inc()
	b.stateGauge.With(b.names[w]).Set(breakerQuarantined)
	return true
}

// Quarantined reports whether worker w has been quarantined.
func (b *workerBreaker) Quarantined(w int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.states[w].quarantined
}

// Snapshot lists every worker's breaker state for /statusz.
func (b *workerBreaker) Snapshot() []WorkerBreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]WorkerBreakerStatus, len(b.names))
	for w, name := range b.names {
		s := b.states[w]
		st := WorkerBreakerStatus{Worker: name, State: "closed", Consecutive: s.consecutive, Trips: s.trips}
		if s.quarantined {
			st.State = "quarantined"
			out[w] = st
			continue
		}
		if !s.openUntil.IsZero() {
			if rem := s.openUntil.Sub(b.now()); rem > 0 {
				st.State = "open"
				st.RetryAfterSec = int64(rem/time.Second) + 1
			} else {
				st.State = "half-open"
			}
		}
		out[w] = st
	}
	return out
}
