// Package cluster shards a gain-plane sweep across N bcnd workers from
// a fault-tolerant coordinator, turning the single-process sweep engine
// into a horizontally scaled service.
//
// The unit of distribution is the shard: a deterministic grid-order
// chunk of (Gi, Gd) points, keyed — like every durable object in this
// repository — by runstate.HashJSON content hashes. Workers are plain
// bcnd servers: a shard travels as an ordinary job spec (kind "shard")
// through the same admission control, supervision, circuit breaking and
// journal-backed dedup every other job gets, so cross-cluster dedup and
// crash-safe resume fall out of the existing machinery for free.
//
// Robustness is the design center, and the failure handling is shaped
// by the related-work warnings the ROADMAP cites. Every dispatch holds
// a lease (a hard per-attempt deadline): a worker that dies mid-shard
// — SIGKILL, partition, or silent hang — loses the lease and the shard
// is re-assigned. Re-assignment is damped, not amplified ("Oscillations
// with TCP-like Flow Control in Networks of Queues" warns that naive
// multi-node retry loops oscillate): retries are bounded with
// exponential backoff plus jitter, 429/502/503/504 responses honor the
// worker's explicit Retry-After feedback (the RCP-style signal the
// serving layer already emits), and a flapping worker is quarantined by
// a per-worker circuit breaker with half-open probes. Idle workers
// steal queued shards from stragglers, so one slow node lengthens the
// tail by a shard, not by its whole queue.
//
// Durability mirrors internal/runstate's WAL discipline. The
// coordinator journals every merged point row under the same content
// key cmd/bcnsweep uses — a coordinator journal and a bcnsweep -resume
// journal are interchangeable — and closes each shard with a final
// "done" marker record. On resume, a shard whose rows are present but
// whose done marker is missing is an orphan: it is surfaced (counted in
// cluster_journal_orphan_shards_total) and re-executed rather than
// silently trusted, and only the missing points are re-paid. The merged
// map.csv is byte-identical to a single-node run's.
package cluster
