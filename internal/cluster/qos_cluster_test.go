package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bcnphase/internal/qos"
)

// TestQoSHeadersPropagateToWorkers: a sweep submitted with a tenant key
// and a deadline budget reaches every worker with the tenant intact and
// the budget decremented by at least one hop margin — the coordinator
// spends budget, it never forwards more time than it was given.
func TestQoSHeadersPropagateToWorkers(t *testing.T) {
	var mu sync.Mutex
	var tenants []string
	var budgets []int64
	w := newFakeWorker(t, func(_ http.ResponseWriter, r *http.Request, _ *ShardSpec) bool {
		mu.Lock()
		defer mu.Unlock()
		tenants = append(tenants, r.Header.Get(qos.TenantHeader))
		ms, _ := strconv.ParseInt(r.Header.Get(qos.DeadlineHeader), 10, 64)
		budgets = append(budgets, ms)
		return false
	})
	c, err := New(Config{Workers: []string{w.URL()}, ShardSize: 4, Journal: newMemJournal(), HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewServer(ServerConfig{Coordinator: c})
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(testGrid(3))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sweeps", bytes.NewReader(body))
	req.Header.Set(qos.TenantHeader, "acme")
	req.Header.Set(qos.DeadlineHeader, "30000")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep with deadline: %d body %s", rec.Code, rec.Body.Bytes())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(tenants) == 0 {
		t.Fatal("no shard dispatches observed")
	}
	for i, tenant := range tenants {
		if tenant != "acme" {
			t.Errorf("dispatch %d: tenant %q, want acme", i, tenant)
		}
		// Two hops (client->coordinator, coordinator->worker) each cost a
		// margin; what the worker sees must be positive but strictly less
		// than the client's budget minus one margin.
		if budgets[i] <= 0 || budgets[i] > 30000-int64(qos.DefaultHopMargin/time.Millisecond) {
			t.Errorf("dispatch %d: forwarded budget %dms, want in (0, %d]", i, budgets[i],
				30000-int64(qos.DefaultHopMargin/time.Millisecond))
		}
	}
}

// TestQoSSweepHeaderValidation: garbage tenant headers are 400s and a
// budget inside the hop margin is doomed 504 — both before any shard is
// cut.
func TestQoSSweepHeaderValidation(t *testing.T) {
	w := newFakeWorker(t, nil)
	c, err := New(Config{Workers: []string{w.URL()}, ShardSize: 4, Journal: newMemJournal(), HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewServer(ServerConfig{Coordinator: c})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(testGrid(3))
	if err != nil {
		t.Fatal(err)
	}

	post := func(hdr map[string]string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweeps", bytes.NewReader(body))
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}

	if rec := post(map[string]string{qos.TenantHeader: "bad tenant!"}); rec.Code != http.StatusBadRequest ||
		!strings.Contains(rec.Body.String(), "malformed-qos-header") {
		t.Errorf("bad tenant: %d body %s", rec.Code, rec.Body.Bytes())
	}
	if rec := post(map[string]string{qos.DeadlineHeader: "later"}); rec.Code != http.StatusBadRequest ||
		!strings.Contains(rec.Body.String(), "malformed-qos-header") {
		t.Errorf("bad deadline: %d body %s", rec.Code, rec.Body.Bytes())
	}
	if rec := post(map[string]string{qos.DeadlineHeader: "10"}); rec.Code != http.StatusGatewayTimeout ||
		!strings.Contains(rec.Body.String(), "deadline-doomed") {
		t.Errorf("doomed deadline: %d body %s", rec.Code, rec.Body.Bytes())
	}
	if got := w.requests.Load(); got != 0 {
		t.Errorf("%d shard dispatches for rejected sweeps, want 0", got)
	}
}

// TestDispatchDoomsShardOnDrainedBudget: once the sweep context's
// budget is inside the hop margin, dispatch refuses to post the shard
// at all — the worker never sees doomed work.
func TestDispatchDoomsShardOnDrainedBudget(t *testing.T) {
	w := newFakeWorker(t, nil)
	c, err := New(Config{Workers: []string{w.URL()}, ShardSize: 4, Journal: newMemJournal(), HeartbeatInterval: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), qos.DefaultHopMargin/2)
	defer cancel()
	if _, err := c.Run(ctx, testGrid(3)); err == nil {
		t.Fatal("sweep inside the hop margin succeeded")
	}
	if got := w.requests.Load(); got != 0 {
		t.Errorf("%d dispatches under a drained budget, want 0", got)
	}
}

// TestRetryPacerJittersHint: two pacers given the same Retry-After hint
// must not wait identically (herd decorrelation), and every jittered
// wait honors the hint as a floor.
func TestRetryPacerJittersHint(t *testing.T) {
	hint := 4 * time.Second
	a := NewRetryPacer(0, 0, 11)
	b := NewRetryPacer(0, 0, 22)
	differ := false
	for i := 0; i < 8; i++ {
		wa, wb := a.Next(hint), b.Next(hint)
		if wa < hint || wb < hint {
			t.Fatalf("jittered wait below the hint: %v %v", wa, wb)
		}
		if wa > hint+hint/4 || wb > hint+hint/4 {
			t.Fatalf("jitter beyond +25%%: %v %v", wa, wb)
		}
		if wa != wb {
			differ = true
		}
	}
	if !differ {
		t.Error("independently-seeded pacers never diverged on a shared hint")
	}
	// Without a hint the pacer grows exponentially under its cap.
	p := NewRetryPacer(100*time.Millisecond, time.Second, 7)
	prevMax := time.Duration(0)
	for i := 0; i < 6; i++ {
		d := p.Next(0)
		if d > time.Second {
			t.Fatalf("wait %v beyond cap", d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < 250*time.Millisecond {
		t.Errorf("backoff never grew: max %v", prevMax)
	}
}
