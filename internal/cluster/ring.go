package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker indices. Each worker owns
// ringReplicas virtual nodes, so shard keys spread evenly and the death
// of one worker moves only that worker's keys — the other assignments
// stay put, which keeps worker-loss re-assignment from reshuffling the
// whole sweep (re-assignment storms are exactly what the coordinator
// must damp).
type ring struct {
	nodes []ringNode // sorted by pos
}

type ringNode struct {
	pos    uint64
	worker int
}

const ringReplicas = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// Splitmix64 finalizer: FNV alone leaves the positions of short,
	// near-identical inputs (worker URLs differing in one port digit,
	// replica suffixes "#0".."#63", sequential shard keys) correlated
	// enough that one worker can end up owning almost no arc. The
	// avalanche decorrelates them; nothing durable depends on these
	// positions, so the mix is free to change the placement.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing places n workers (identified by their stable names, typically
// URLs) on the ring. Names, not indices, are hashed, so the assignment
// of a given shard key is stable across runs with the same worker set.
func newRing(names []string) *ring {
	r := &ring{nodes: make([]ringNode, 0, len(names)*ringReplicas)}
	for w, name := range names {
		for i := 0; i < ringReplicas; i++ {
			r.nodes = append(r.nodes, ringNode{pos: hash64(fmt.Sprintf("%s#%d", name, i)), worker: w})
		}
	}
	sort.Slice(r.nodes, func(i, j int) bool {
		if r.nodes[i].pos != r.nodes[j].pos {
			return r.nodes[i].pos < r.nodes[j].pos
		}
		return r.nodes[i].worker < r.nodes[j].worker
	})
	return r
}

// owner returns the worker owning key: the first clockwise virtual node
// whose worker passes the eligible filter (nil means all are eligible).
// Returns -1 when no worker is eligible.
func (r *ring) owner(key string, eligible func(worker int) bool) int {
	if len(r.nodes) == 0 {
		return -1
	}
	pos := hash64(key)
	start := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].pos >= pos })
	for i := 0; i < len(r.nodes); i++ {
		n := r.nodes[(start+i)%len(r.nodes)]
		if eligible == nil || eligible(n.worker) {
			return n.worker
		}
	}
	return -1
}
