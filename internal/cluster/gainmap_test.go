package cluster

import (
	"context"
	"strings"
	"testing"

	"bcnphase/internal/core"
)

// TestEvalAnalyticAgreesWithClassic compares the closed-form row engine
// against the classic sampled one across a small grid: the verdict
// columns (case, linear, Theorem 1, outcome, strong stability) must be
// identical — the engines share the arc formulas bit for bit — while
// max_q_bits may differ only by the sampling resolution the analytic
// engine removed.
func TestEvalAnalyticAgreesWithClassic(t *testing.T) {
	fast := testGrid(4) // Analytic defaults to on
	slow := testGrid(4)
	slow.Analytic = "off"
	ctx := context.Background()
	for _, pt := range fast.Points() {
		fr, err := fast.Eval(ctx, pt, EvalMetrics{})
		if err != nil {
			t.Fatalf("analytic eval %+v: %v", pt, err)
		}
		sr, err := slow.Eval(ctx, pt, EvalMetrics{})
		if err != nil {
			t.Fatalf("classic eval %+v: %v", pt, err)
		}
		ff := strings.Split(fr.CSV, ",")
		sf := strings.Split(sr.CSV, ",")
		if len(ff) != 12 || len(sf) != 12 {
			t.Fatalf("column count: analytic %d classic %d", len(ff), len(sf))
		}
		// gi, gd, case, linear_stable, theorem1_ok, theorem1_bound_bits,
		// outcome, strongly_stable must be byte-identical.
		for _, i := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
			if ff[i] != sf[i] {
				t.Errorf("point %+v column %d: analytic %q classic %q", pt, i, ff[i], sf[i])
			}
		}
		if ff[10] != "0" || ff[11] != "" {
			t.Errorf("point %+v: analytic invariant columns %q,%q, want 0 and empty", pt, ff[10], ff[11])
		}
		if fr.Violations != 0 || fr.FirstPred != "" {
			t.Errorf("point %+v: analytic row carries violations %d %q", pt, fr.Violations, fr.FirstPred)
		}
	}
}

// TestEvalBatchMatchesEval requires span evaluation to be byte-identical
// to per-point evaluation under both engines — EvalBatch is the shard
// executors' and bcnsweep's hot path, and the merged map must not
// depend on which path computed a row.
func TestEvalBatchMatchesEval(t *testing.T) {
	for _, engine := range []string{"", "off"} {
		g := testGrid(3)
		g.Analytic = engine
		pts := g.Points()
		ctx := context.Background()
		rows := make([]Row, len(pts))
		if err := g.EvalBatch(ctx, pts, rows, EvalMetrics{}); err != nil {
			t.Fatalf("engine %q: batch: %v", engine, err)
		}
		for i, pt := range pts {
			want, err := g.Eval(ctx, pt, EvalMetrics{})
			if err != nil {
				t.Fatalf("engine %q: eval: %v", engine, err)
			}
			if rows[i] != want {
				t.Errorf("engine %q point %d: batch row %+v, eval row %+v", engine, i, rows[i], want)
			}
		}
	}
}

// TestEvalBatchRejectsLengthMismatch guards the BatchFunc contract.
func TestEvalBatchRejectsLengthMismatch(t *testing.T) {
	g := testGrid(2)
	if err := g.EvalBatch(context.Background(), g.Points(), make([]Row, 1), EvalMetrics{}); err == nil {
		t.Fatal("mismatched out length accepted")
	}
}

// TestGridFingerprintSeparatesEngines: rows computed by one engine must
// never replay as the other's — max_q_bits is exact on one side and
// sampled on the other — so the engine mode is part of the identity.
func TestGridFingerprintSeparatesEngines(t *testing.T) {
	on := testGrid(3)
	off := testGrid(3)
	off.Analytic = "off"
	fpOn, err := on.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpOff, err := off.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpOn == fpOff {
		t.Error("analytic on and off share a fingerprint")
	}
	explicit := testGrid(3)
	explicit.Analytic = "on"
	fpExplicit, err := explicit.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpExplicit != fpOn {
		t.Error(`Analytic "" and "on" must share a fingerprint (same rows)`)
	}
}

// TestGridValidateRejectsBadAnalytic covers the new mode field.
func TestGridValidateRejectsBadAnalytic(t *testing.T) {
	g := testGrid(3)
	g.Analytic = "fast"
	if err := g.Validate(); err == nil {
		t.Fatal(`Analytic "fast" accepted`)
	}
	if _, err := g.Fingerprint(); err == nil {
		t.Fatal(`Fingerprint accepted Analytic "fast"`)
	}
}

// TestEvalInvariantPolicyForcesClassicPath: the analytic engine has no
// invariant instrumentation, so a grid that asks for invariant checking
// must get the classic path — byte-identically to Analytic "off" —
// regardless of the engine field.
func TestEvalInvariantPolicyForcesClassicPath(t *testing.T) {
	checked := testGrid(3)
	checked.Invariants = "record"
	classic := checked
	classic.Analytic = "off"
	sm := core.NewSolveMetrics(nil)
	ctx := context.Background()
	for _, pt := range checked.Points() {
		a, err := checked.Eval(ctx, pt, EvalMetrics{Solve: sm})
		if err != nil {
			t.Fatal(err)
		}
		b, err := classic.Eval(ctx, pt, EvalMetrics{Solve: sm})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("point %+v: record-policy rows differ by engine field: %+v vs %+v", pt, a, b)
		}
	}
}
