package bcn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		DA:    MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		SA:    MAC{0x02, 0x00, 0x00, 0x00, 0xff, 0xfe},
		Flags: FlagSevere,
		CPID:  0xdeadbeef01,
		Sigma: -1.5e6,
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(data) != MessageLen {
		t.Fatalf("encoded %d bytes, want %d", len(data), MessageLen)
	}
	var got Message
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.DA != m.DA || got.SA != m.SA || got.Flags != m.Flags || got.CPID != m.CPID {
		t.Errorf("fields mismatch: %+v vs %+v", got, m)
	}
	// σ round-trips within the quantization step.
	if math.Abs(got.Sigma-m.Sigma) > FBUnit/2 {
		t.Errorf("sigma = %v, want %v ± %v", got.Sigma, m.Sigma, FBUnit/2)
	}
	if got.Positive() {
		t.Error("negative message misreported as positive")
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	var m Message
	if err := m.UnmarshalBinary(make([]byte, 10)); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short: err = %v", err)
	}
	data := make([]byte, MessageLen)
	if err := m.UnmarshalBinary(data); !errors.Is(err, ErrBadEtherType) {
		t.Errorf("bad ethertype: err = %v", err)
	}
}

// TestQuickMessageRoundTrip: arbitrary field values survive the wire.
func TestQuickMessageRoundTrip(t *testing.T) {
	prop := func(da, sa [6]byte, flags uint16, cpid uint64, sigmaRaw int32) bool {
		m := &Message{DA: MAC(da), SA: MAC(sa), Flags: flags, CPID: CPID(cpid), Sigma: float64(sigmaRaw)}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var got Message
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.DA == m.DA && got.SA == m.SA && got.Flags == m.Flags &&
			got.CPID == m.CPID && math.Abs(got.Sigma-m.Sigma) <= FBUnit/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeFBSaturates(t *testing.T) {
	if got := quantizeFB(1e30); got != math.MaxInt32 {
		t.Errorf("positive saturation = %v", got)
	}
	if got := quantizeFB(-1e30); got != math.MinInt32 {
		t.Errorf("negative saturation = %v", got)
	}
	if got := quantizeFB(FBUnit * 3); got != 3 {
		t.Errorf("quantizeFB(3 units) = %v", got)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xab, 0xcd, 0, 1, 2, 3}
	if got := m.String(); got != "ab:cd:00:01:02:03" {
		t.Errorf("MAC.String() = %q", got)
	}
}

func validCPConfig() CPConfig {
	return CPConfig{
		CPID: 1, SA: MAC{2, 0, 0, 0, 0, 1},
		Q0: 1e5, Qsc: 8e5, W: 2, Pm: 0.01,
	}
}

func TestCPConfigValidate(t *testing.T) {
	good := validCPConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	muts := []func(*CPConfig){
		func(c *CPConfig) { c.CPID = 0 },
		func(c *CPConfig) { c.Q0 = 0 },
		func(c *CPConfig) { c.Qsc = c.Q0 / 2 },
		func(c *CPConfig) { c.W = 0 },
		func(c *CPConfig) { c.Pm = 0 },
		func(c *CPConfig) { c.Pm = 2 },
	}
	for i, mut := range muts {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCongestionPointSamplingInterval(t *testing.T) {
	cfg := validCPConfig()
	cfg.Pm = 0.25 // sample every 4th frame
	cp, err := NewCongestionPoint(cfg)
	if err != nil {
		t.Fatalf("NewCongestionPoint: %v", err)
	}
	src := MAC{9, 9, 9, 9, 9, 9}
	var sampled int
	for i := 0; i < 40; i++ {
		// Keep the queue far above q0 so every sample yields a
		// negative message.
		if m := cp.OnArrival(Arrival{SizeBits: 1e5, Src: src}); m != nil {
			sampled++
			if m.Sigma >= 0 {
				t.Errorf("expected negative σ while overloaded, got %v", m.Sigma)
			}
			if m.DA != src {
				t.Errorf("message DA = %v, want sampled source", m.DA)
			}
			if m.CPID != cfg.CPID {
				t.Errorf("message CPID = %v", m.CPID)
			}
		}
	}
	if sampled != 10 {
		t.Errorf("sampled %d frames out of 40 at Pm=0.25, want 10", sampled)
	}
	s, _, neg := cp.Stats()
	if s != 10 || neg != 10 {
		t.Errorf("stats = %d samples, %d neg; want 10, 10", s, neg)
	}
}

func TestCongestionPointQueueTracking(t *testing.T) {
	cp, err := NewCongestionPoint(validCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cp.OnArrival(Arrival{SizeBits: 5000})
	cp.OnArrival(Arrival{SizeBits: 3000})
	if got := cp.QueueBits(); got != 8000 {
		t.Errorf("QueueBits = %v, want 8000", got)
	}
	cp.OnDeparture(5000)
	if got := cp.QueueBits(); got != 3000 {
		t.Errorf("QueueBits = %v, want 3000", got)
	}
	cp.OnDeparture(1e9) // cannot go negative
	if got := cp.QueueBits(); got != 0 {
		t.Errorf("QueueBits = %v, want clamped 0", got)
	}
}

func TestCongestionPointSigmaFormula(t *testing.T) {
	// One frame per sample (Pm=1) makes σ easy to predict:
	// σ = (q0 − q) − w·Δq with Δq = arrivals − departures since the
	// previous sample.
	cfg := validCPConfig()
	cfg.Pm = 1
	cfg.Qsc = 0
	cp, err := NewCongestionPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := cp.OnArrival(Arrival{SizeBits: 2e5})
	// q = 2e5, Δq = 2e5: σ = (1e5 − 2e5) − 2·2e5 = −5e5.
	if m == nil || math.Abs(m.Sigma-(-5e5)) > 1e-9 {
		t.Fatalf("first sample σ = %+v, want −5e5", m)
	}
	cp.OnDeparture(1.5e5)
	m = cp.OnArrival(Arrival{SizeBits: 1e4})
	// q = 2e5 − 1.5e5 + 1e4 = 6e4; Δq = 1e4 − 1.5e5 = −1.4e5.
	// σ = (1e5 − 6e4) − 2·(−1.4e5) = 4e4 + 2.8e5 = 3.2e5 > 0 — but the
	// frame carries no matching RRT, so no positive message is sent.
	if m != nil {
		t.Fatalf("positive message without RRT: %+v", m)
	}
	// Same situation with a matching RRT and q < q0 → positive message.
	cp.OnDeparture(5e4)
	m = cp.OnArrival(Arrival{SizeBits: 1e4, RRT: cfg.CPID})
	if m == nil || m.Sigma <= 0 {
		t.Fatalf("expected positive message with matching RRT, got %+v", m)
	}
}

func TestCongestionPointSevere(t *testing.T) {
	cfg := validCPConfig()
	cp, err := NewCongestionPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Severe() {
		t.Error("empty queue severe")
	}
	cfg2 := cfg
	cfg2.Pm = 1
	cp2, err := NewCongestionPoint(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	m := cp2.OnArrival(Arrival{SizeBits: 9e5}) // above Qsc = 8e5
	if !cp2.Severe() {
		t.Error("queue above Qsc not severe")
	}
	if m == nil || m.Flags&FlagSevere == 0 {
		t.Errorf("severe flag not set: %+v", m)
	}
}

func validRPConfig() RPConfig {
	return RPConfig{Ru: 8e6, Gi: 4, Gd: 1.0 / 128, MinRate: 1e6, MaxRate: 1e9, Mode: ModeFluid}
}

func TestRPConfigValidate(t *testing.T) {
	good := validRPConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	muts := []func(*RPConfig){
		func(c *RPConfig) { c.Ru = 0 },
		func(c *RPConfig) { c.Gi = -1 },
		func(c *RPConfig) { c.Gd = 0 },
		func(c *RPConfig) { c.MinRate = 0 },
		func(c *RPConfig) { c.MaxRate = c.MinRate },
		func(c *RPConfig) { c.Mode = GainMode(9) },
	}
	for i, mut := range muts {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewReactionPoint(good, 1e10); err == nil {
		t.Error("initial rate above MaxRate accepted")
	}
	if _, err := NewReactionPoint(good, 0); err == nil {
		t.Error("initial rate below MinRate accepted")
	}
}

func TestReactionPointFluidModeZOH(t *testing.T) {
	rp, err := NewReactionPoint(validRPConfig(), 5e8)
	if err != nil {
		t.Fatal(err)
	}
	// Before any message the rate is constant.
	if got := rp.Rate(1.0); got != 5e8 {
		t.Errorf("rate before feedback = %v, want unchanged", got)
	}
	// A negative message holds σ; afterwards the rate decays as
	// r(t) = r0·exp(Gd·σ·Δt).
	rp.OnMessage(&Message{CPID: 7, Sigma: -1e5}, 1.0)
	if rp.Associated() != 7 || rp.Tag() != 7 {
		t.Errorf("not associated after negative message")
	}
	want := 5e8 * math.Exp((1.0/128)*(-1e5)*1e-3)
	if got := rp.Rate(1.001); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("decayed rate = %v, want %v", got, want)
	}
	// A positive message re-bases the rate and holds the new σ:
	// r grows linearly at Gi·Ru·σ.
	base := rp.Rate(1.002)
	rp.OnMessage(&Message{CPID: 7, Sigma: 2e4}, 1.002)
	want = base + 4*8e6*2e4*1e-3
	if got := rp.Rate(1.003); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("grown rate = %v, want %v", got, want)
	}
	inc, dec := rp.Stats()
	if inc != 1 || dec != 1 {
		t.Errorf("stats = %d inc, %d dec", inc, dec)
	}
}

func TestReactionPointFluidMatchesODE(t *testing.T) {
	// With σ held constant the ZOH law is the exact solution of the
	// fluid equations; verify both branches against small-step Euler.
	cfg := validRPConfig()
	rp, err := NewReactionPoint(cfg, 4e8)
	if err != nil {
		t.Fatal(err)
	}
	sigma := -5e4
	rp.OnMessage(&Message{CPID: 1, Sigma: sigma}, 0)
	r := 4e8
	h := 1e-6
	for tt := 0.0; tt < 0.01; tt += h {
		r += h * cfg.Gd * sigma * r
	}
	if got := rp.Rate(0.01); math.Abs(got-r)/r > 5e-3 {
		t.Errorf("decrease branch: ZOH %v vs Euler %v", got, r)
	}
}

func TestReactionPointDraftMode(t *testing.T) {
	cfg := validRPConfig()
	cfg.Mode = ModeDraft
	rp, err := NewReactionPoint(cfg, 5e8)
	if err != nil {
		t.Fatal(err)
	}
	// Negative: r *= 1 + Gd·fb, fb = σ/FBUnit saturated.
	rp.OnMessage(&Message{CPID: 3, Sigma: -10 * FBUnit}, 0)
	want := 5e8 * (1 + (1.0/128)*(-10))
	if got := rp.Rate(0); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("draft decrease: rate = %v, want %v", got, want)
	}
	// Rate is constant between messages in draft mode.
	if got := rp.Rate(100); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("draft rate drifted: %v", got)
	}
	// Positive: r += Gi·Ru·fb.
	before := rp.Rate(1e-3)
	rp.OnMessage(&Message{CPID: 3, Sigma: 2 * FBUnit}, 1e-3)
	want = before + 4*8e6*2
	if got := rp.Rate(1e-3); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("draft increase: rate = %v, want %v", got, want)
	}
}

func TestReactionPointClampsAndRelease(t *testing.T) {
	cfg := validRPConfig()
	cfg.Mode = ModeDraft
	rp, err := NewReactionPoint(cfg, 9.99e8)
	if err != nil {
		t.Fatal(err)
	}
	rp.OnMessage(&Message{CPID: 5, Sigma: -FBUnit}, 0)
	if rp.Associated() != 5 {
		t.Fatal("association missing")
	}
	// Huge positive feedback saturates to the line rate and releases
	// the association.
	rp.OnMessage(&Message{CPID: 5, Sigma: 1e12}, 1)
	if got := rp.Rate(1); got != cfg.MaxRate {
		t.Errorf("rate = %v, want clamped to MaxRate", got)
	}
	if rp.Associated() != 0 {
		t.Error("association not released at full rate")
	}
	// Massive negative feedback floors at MinRate (via the 0.1-factor
	// guard applied repeatedly).
	for i := 0; i < 50; i++ {
		rp.OnMessage(&Message{CPID: 5, Sigma: -1e12}, float64(i+2))
	}
	if got := rp.Rate(60); got != cfg.MinRate {
		t.Errorf("rate = %v, want floored at MinRate", got)
	}
}

func TestReactionPointFluidClamps(t *testing.T) {
	cfg := validRPConfig()
	rp, err := NewReactionPoint(cfg, 5e8)
	if err != nil {
		t.Fatal(err)
	}
	// Positive σ held for a long time saturates at the line rate and
	// releases the association at the next materialization.
	rp.OnMessage(&Message{CPID: 2, Sigma: -100}, 0) // associate first
	rp.OnMessage(&Message{CPID: 2, Sigma: 1e6}, 1)
	if got := rp.Rate(100); got != cfg.MaxRate {
		t.Errorf("rate = %v, want MaxRate", got)
	}
	rp.OnMessage(&Message{CPID: 2, Sigma: 1e6}, 100)
	if rp.Associated() != 0 {
		t.Error("association not released at line rate")
	}
	// Negative σ held forever floors at MinRate.
	rp.OnMessage(&Message{CPID: 2, Sigma: -1e9}, 101)
	if got := rp.Rate(1e6); got != cfg.MinRate {
		t.Errorf("rate = %v, want MinRate", got)
	}
}

func TestReactionPointZeroSigmaIgnored(t *testing.T) {
	rp, err := NewReactionPoint(validRPConfig(), 5e8)
	if err != nil {
		t.Fatal(err)
	}
	rp.OnMessage(&Message{CPID: 1, Sigma: 0}, 0)
	if rp.Rate(10) != 5e8 || rp.Associated() != 0 {
		t.Error("zero-σ message should be a no-op")
	}
}

// TestQuickRateStaysInBounds: the regulator never leaves [MinRate,
// MaxRate] no matter the message sequence or query time.
func TestQuickRateStaysInBounds(t *testing.T) {
	prop := func(sigmas []int32, draft bool) bool {
		cfg := validRPConfig()
		if draft {
			cfg.Mode = ModeDraft
		}
		rp, err := NewReactionPoint(cfg, 5e8)
		if err != nil {
			return false
		}
		for i, s := range sigmas {
			now := float64(i) * 1e-4
			rp.OnMessage(&Message{CPID: 1, Sigma: float64(s)}, now)
			r := rp.Rate(now + 5e-5)
			if r < cfg.MinRate || r > cfg.MaxRate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSaturatedFB(t *testing.T) {
	if got := saturatedFB(FBUnit * 1e6); got != FBSat {
		t.Errorf("positive saturation = %v", got)
	}
	if got := saturatedFB(-FBUnit * 1e6); got != -FBSat {
		t.Errorf("negative saturation = %v", got)
	}
	if got := saturatedFB(FBUnit * 2); got != 2 {
		t.Errorf("saturatedFB(2 units) = %v", got)
	}
}
