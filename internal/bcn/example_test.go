package bcn_test

import (
	"fmt"

	"bcnphase/internal/bcn"
)

// Example_feedbackLoop walks one round of the BCN control loop: the
// congestion point samples an arriving frame, computes σ, and the
// reaction point applies the feedback.
func Example_feedbackLoop() {
	cp, err := bcn.NewCongestionPoint(bcn.CPConfig{
		CPID: 1, SA: bcn.MAC{0x02, 0, 0, 0, 0, 0xFE},
		Q0: 1e5, W: 2, Pm: 1, // sample every frame
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rp, err := bcn.NewReactionPoint(bcn.RPConfig{
		Ru: 8e6, Gi: 4, Gd: 1.0 / 128,
		MinRate: 1e6, MaxRate: 1e9,
		Mode: bcn.ModeFluid,
	}, 5e8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// A 300 kbit burst lands on a queue with a 100 kbit reference:
	// the sampled frame triggers a negative BCN message.
	src := bcn.MAC{0x02, 0, 0, 0, 0, 1}
	msg := cp.OnArrival(bcn.Arrival{SizeBits: 3e5, Src: src})
	fmt.Printf("negative message: %v (sigma %.0f bits)\n", msg.Sigma < 0, msg.Sigma)

	// The source applies it and is now associated (tags its frames).
	rp.OnMessage(msg, 0)
	fmt.Printf("associated with CPID %d\n", rp.Associated())
	// Output:
	// negative message: true (sigma -800000 bits)
	// associated with CPID 1
}

// ExampleMessage_MarshalBinary shows the 28-byte wire format of Fig. 2.
func ExampleMessage_MarshalBinary() {
	m := &bcn.Message{
		DA:    bcn.MAC{0x02, 0, 0, 0, 0, 0x01},
		SA:    bcn.MAC{0x02, 0, 0, 0, 0, 0xFE},
		CPID:  7,
		Sigma: -512 * 100, // -100 quantization units
	}
	data, err := m.MarshalBinary()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d bytes, ethertype %02x%02x\n", len(data), data[12], data[13])
	var rx bcn.Message
	if err := rx.UnmarshalBinary(data); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sigma round-trips: %.0f\n", rx.Sigma)
	// Output:
	// 28 bytes, ethertype 88ff
	// sigma round-trips: -51200
}
