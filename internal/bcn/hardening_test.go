package bcn

import (
	"errors"
	"math"
	"testing"
)

func TestMessageValidate(t *testing.T) {
	ok := Message{CPID: 1, Sigma: -1e5, Flags: FlagSevere}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	bad := []Message{
		{CPID: 0, Sigma: 1},                // zero CPID
		{CPID: 1, Sigma: math.NaN()},       // NaN feedback
		{CPID: 1, Sigma: math.Inf(1)},      // infinite feedback
		{CPID: 1, Sigma: 1, Flags: 1 << 3}, // reserved flag bit
		{CPID: 1, Sigma: 1, Flags: 0xFFFE}, // many reserved bits
	}
	for i, m := range bad {
		err := m.Validate()
		if err == nil {
			t.Errorf("message %d accepted: %+v", i, m)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("message %d error %v not ErrMalformed", i, err)
		}
	}
}

func TestReactionPointRejectsMalformed(t *testing.T) {
	cfg := RPConfig{Ru: 8e6, Gi: 4, Gd: 1.0 / 128, MinRate: 1e6, MaxRate: 1e9, Mode: ModeFluid}
	rp, err := NewReactionPoint(cfg, 5e8)
	if err != nil {
		t.Fatal(err)
	}
	rp.OnMessage(nil, 0.1)
	rp.OnMessage(&Message{CPID: 1, Sigma: math.NaN()}, 0.2)
	rp.OnMessage(&Message{CPID: 1, Sigma: math.Inf(-1)}, 0.3)
	rp.OnMessage(&Message{CPID: 1, Sigma: -1e5}, math.NaN())
	rp.OnMessage(&Message{CPID: 1, Sigma: -1e5}, math.Inf(1))
	if got := rp.Rejected(); got != 5 {
		t.Errorf("Rejected() = %d, want 5", got)
	}
	if inc, dec := rp.Stats(); inc != 0 || dec != 0 {
		t.Errorf("malformed messages were applied: inc=%d dec=%d", inc, dec)
	}
	if r := rp.Rate(1); r != 5e8 {
		t.Errorf("rate moved to %v on malformed input", r)
	}
	// A well-formed message still works afterwards.
	rp.OnMessage(&Message{CPID: 1, Sigma: -1e5}, 0.5)
	if _, dec := rp.Stats(); dec != 1 {
		t.Errorf("well-formed message not applied after rejections")
	}
}

func TestCongestionPointRejectsBadSizes(t *testing.T) {
	cp, err := NewCongestionPoint(CPConfig{CPID: 1, Q0: 1e5, W: 2, Pm: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := MAC{0x02, 0, 0, 0, 0, 1}
	for _, size := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -12000} {
		if m := cp.OnArrival(Arrival{SizeBits: size, Src: src}); m != nil {
			t.Errorf("size %v produced a message", size)
		}
		cp.OnDeparture(size)
	}
	if got := cp.Rejected(); got != 10 {
		t.Errorf("Rejected() = %d, want 10", got)
	}
	if q := cp.QueueBits(); q != 0 {
		t.Errorf("queue accounting poisoned: %v", q)
	}
	// Sane traffic still flows.
	if m := cp.OnArrival(Arrival{SizeBits: 2e5, Src: src}); m == nil || m.Sigma >= 0 {
		t.Error("well-formed arrival after rejections produced no negative message")
	}
}
